// Dynamic-federation churn benchmark: the 64-node WAN-of-LANs scenario
// overlaid with crash waves, flapping WAN links and diurnal latency drift
// (workload/churn_scenario.h), run on the sequential engine, the parallel
// engine at 1 shard, and the parallel engine at `--shards N` (default 4).
//
// Two jobs in one binary, mirroring bench_scale_federation:
//  * Throughput: PerfRecorder captures tuples/s under churn per engine
//    config (the interesting number is how much fairness and throughput
//    survive node failures and link drift).
//  * Determinism: the printed report contains only simulated quantities —
//    tuple/message/event counts, SIC statistics, churn counters — so its
//    bytes are a pure function of the scenario. The binary itself fails if
//    the shards=1 parallel run differs from the sequential run, and CI
//    byte-diffs two full invocations to pin run-to-run determinism at
//    every shard count. Unlike the static scale bench, the multi-shard
//    report may legitimately differ from the single-shard one: crash
//    re-placement is shard-scoped (orphans stay on their shard), so the
//    candidate set depends on the shard map.
//
// Flags (besides the PerfRecorder ones): --shards N, --nodes N,
// --queries N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "federation/churn_federation.h"
#include "metrics/reporter.h"

namespace {

int FlagValue(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_churn_federation");
  std::printf("Federation churn run: node crash waves + link drift on the "
              "dynamic runtime, per engine.\n");

  ChurnScenarioOptions co;
  co.scale.nodes = FlagValue(argc, argv, "--nodes", 64);
  co.scale.queries = FlagValue(argc, argv, "--queries", 96);
  co.scale.source_rate = 150.0;
  SimDuration measure = Seconds(10);
  if (perf.quick()) {
    co.scale.queries = FlagValue(argc, argv, "--queries", 64);
    co.crash_waves = 2;
    co.churn_horizon = Seconds(16);
    measure = Seconds(6);
  }
  const int parallel_shards = FlagValue(argc, argv, "--shards", 4);
  ChurnScenario scenario = MakeChurnScenario(co);

  Reporter reporter(
      "Churn federation (" + std::to_string(co.scale.nodes) + " nodes, " +
          std::to_string(co.scale.queries) + " queries, " +
          std::to_string(scenario.events.size()) + " topology events)",
      {"engine", "processed", "shed", "replaced", "dropQ", "mean_SIC",
       "jain"});

  struct EngineConfig {
    std::string name;
    int shards;
    bool force_parsim;
  };
  std::vector<EngineConfig> configs = {
      {"sequential", 1, false},
      {"shards=1", 1, true},
  };
  if (parallel_shards > 1) {
    configs.push_back(
        {"shards=" + std::to_string(parallel_shards), parallel_shards, false});
  }

  std::string first_report;
  bool identity_ok = true;
  for (const EngineConfig& config : configs) {
    FspsOptions fo;
    fo.shards = config.shards;
    fo.force_parsim_engine = config.force_parsim;
    auto fsps = MakeChurnFederation(scenario, fo);
    perf.BeginRun(config.name);
    ChurnRunResult r = RunChurnScenario(fsps.get(), scenario, measure);
    perf.EndRun(r.scale.tuples_processed);

    // One deterministic line per config; the sequential / shards=1 pair
    // must match byte-for-byte (single-shard parallel fast path).
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "processed=%llu shed=%llu messages=%llu events=%llu "
        "crashes=%llu restores=%llu latency_updates=%llu replaced=%llu "
        "dropped_queries=%llu dead_drops=%llu mean_sic=%.9f jain=%.9f",
        static_cast<unsigned long long>(r.scale.tuples_processed),
        static_cast<unsigned long long>(r.scale.tuples_shed),
        static_cast<unsigned long long>(r.scale.messages),
        static_cast<unsigned long long>(r.scale.events),
        static_cast<unsigned long long>(r.crashes),
        static_cast<unsigned long long>(r.restores),
        static_cast<unsigned long long>(r.latency_updates),
        static_cast<unsigned long long>(r.replaced_fragments),
        static_cast<unsigned long long>(r.dropped_queries),
        static_cast<unsigned long long>(r.tuples_dropped_dead),
        r.scale.mean_sic, r.scale.jain);
    std::printf("[%s] %s\n", config.name.c_str(), line);
    if (first_report.empty()) {
      first_report = line;
    } else if (config.force_parsim && first_report != line) {
      identity_ok = false;
    }

    reporter.AddRow(config.name,
                    {static_cast<double>(r.scale.tuples_processed),
                     static_cast<double>(r.scale.tuples_shed),
                     static_cast<double>(r.replaced_fragments),
                     static_cast<double>(r.dropped_queries),
                     r.scale.mean_sic, r.scale.jain});
  }
  reporter.Print();

  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel engine at shards=1 diverged from the "
                 "sequential engine under churn\n");
    return 1;
  }
  std::printf("churn run at shards=1 byte-identical to sequential: OK\n");
  return 0;
}
