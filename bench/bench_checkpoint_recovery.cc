// Checkpoint-recovery benchmark: the crash-state ablation behind ROADMAP
// item 4. The churn scenario (crash waves + link drift) runs with *wide*
// 8 s windows — so a crash mid-pane destroys a visible amount of
// accumulated operator state — once per crash-state mode and checkpoint
// cadence / error-bound point, with the recovery tracker measuring each
// wave's SIC dip depth, censored MTTR and area-under-dip.
//
// Three jobs in one binary:
//  * Trade-off sweep: legacy shared-graph inheritance (the pre-PR-10
//    artifact: crash survival for free), honest reset (cold standby), and
//    checkpoint restore at cadences 2000/500/250 ms plus an approximate
//    (error-bound) point — recovery quality vs serialized-byte overhead.
//  * Gates (in-binary, deterministic): capture overhead stays monotone in
//    cadence; the approximate point skips captures and writes fewer bytes
//    than its exact twin; checkpoint restore dips no deeper than reset.
//  * Determinism: enabling capture without ever restoring must leave the
//    simulated run byte-identical to the checkpoint-off run, and parsim@1
//    with capture + restore on must match its sequential twin. CI
//    byte-diffs two full invocations on top (run-to-run identity at
//    shards 1 and the sharded config).
//
// Flags (besides the PerfRecorder ones): --shards N, --nodes N,
// --queries N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "federation/churn_federation.h"
#include "metrics/recovery_tracker.h"
#include "metrics/reporter.h"

namespace {

int FlagValue(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_checkpoint_recovery");
  std::printf("Checkpoint recovery run: crash-state modes x checkpoint "
              "cadence/error-bound under churn, wide (8 s) windows.\n");

  ChurnScenarioOptions co;
  co.scale.nodes = FlagValue(argc, argv, "--nodes", 32);
  co.scale.clusters = 4;
  co.scale.queries = FlagValue(argc, argv, "--queries", 48);
  co.scale.arrival_wave = 12;
  co.scale.source_rate = 150.0;
  // The point of the exercise: windows much longer than the checkpoint
  // cadence, so the three crash-state modes genuinely diverge in how much
  // pane state survives a mid-pane crash.
  co.scale.window = Seconds(8);
  // Deep waves after the arrival ramp and a full STW (see bench_recovery):
  // each query's pre-fault baseline is its steady state, and the measure
  // tail leaves the last restore a full STW to climb back.
  co.crashes_per_wave = 4;
  co.downtime = Seconds(3);
  co.churn_start = Seconds(18);
  co.churn_horizon = Seconds(30);
  SimDuration measure = Seconds(12);
  if (perf.quick()) {
    co.scale.queries = FlagValue(argc, argv, "--queries", 32);
    co.crash_waves = 2;
    co.churn_horizon = Seconds(26);
  }
  const int parallel_shards = FlagValue(argc, argv, "--shards", 4);
  ChurnScenario scenario = MakeChurnScenario(co);

  Reporter reporter(
      "Crash recovery vs checkpoint cadence (" +
          std::to_string(co.scale.nodes) + " nodes, " +
          std::to_string(co.scale.queries) + " queries, 8 s windows)",
      {"mode", "processed", "affected", "mean_dip", "cens_mttr_ms",
       "mean_area", "ckpt_kb"});

  struct ModeConfig {
    std::string name;
    CrashStateMode crash_state;
    bool capture;
    SimDuration cadence;
    double error_bound;
    int shards;
    bool force_parsim;
  };
  std::vector<ModeConfig> configs = {
      {"legacy-shared", CrashStateMode::kLegacyShared, false, 0, 0.0, 1,
       false},
      // Same simulated run as legacy-shared, but capturing: the identity
      // gate proving capture does zero simulated work.
      {"legacy+capture", CrashStateMode::kLegacyShared, true, Millis(250),
       0.0, 1, false},
      {"reset", CrashStateMode::kReset, false, 0, 0.0, 1, false},
      {"ckpt/2000ms", CrashStateMode::kCheckpoint, true, Millis(2000), 0.0, 1,
       false},
      {"ckpt/500ms", CrashStateMode::kCheckpoint, true, Millis(500), 0.0, 1,
       false},
      {"ckpt/250ms", CrashStateMode::kCheckpoint, true, Millis(250), 0.0, 1,
       false},
      {"ckpt/250ms/approx", CrashStateMode::kCheckpoint, true, Millis(250),
       0.5, 1, false},
      {"ckpt/250ms/parsim1", CrashStateMode::kCheckpoint, true, Millis(250),
       0.0, 1, true},
  };
  if (parallel_shards > 1) {
    configs.push_back({"ckpt/250ms/shards=" + std::to_string(parallel_shards),
                       CrashStateMode::kCheckpoint, true, Millis(250), 0.0,
                       parallel_shards, false});
  }

  struct ModeOutcome {
    std::string line;  // deterministic result line (identity comparisons)
    RecoverySummary waves;
    CheckpointStore::Stats ckpt;  // summed over all node stores
  };
  std::map<std::string, ModeOutcome> outcomes;

  for (const ModeConfig& config : configs) {
    FspsOptions fo;
    fo.crash_state = config.crash_state;
    fo.checkpoint.enabled = config.capture;
    fo.checkpoint.cadence =
        config.cadence > 0 ? config.cadence : Millis(500);
    fo.checkpoint.error_bound = config.error_bound;
    fo.shards = config.shards;
    fo.force_parsim_engine = config.force_parsim;
    fo.recovery.enabled = true;
    fo.recovery.recover_fraction = 0.85;
    auto fsps = MakeChurnFederation(scenario, fo);
    perf.BeginRun(config.name);
    ChurnRunResult r = RunChurnScenario(fsps.get(), scenario, measure);
    perf.EndRun(r.scale.tuples_processed);

    const RecoveryTracker& tracker = fsps->recovery_tracker();
    RecoverySummary waves = tracker.Summarize(DisturbanceKind::kCrashWave);
    CheckpointStore::Stats ckpt;
    for (NodeId id : fsps->node_ids()) {
      const CheckpointStore::Stats& s =
          fsps->node(id)->checkpoint_store()->stats();
      ckpt.taken += s.taken;
      ckpt.skipped_clean += s.skipped_clean;
      ckpt.restores += s.restores;
      ckpt.missed += s.missed;
      ckpt.bytes_written += s.bytes_written;
    }
    perf.AddMetric("mean_dip_depth", waves.mean_dip_depth);
    perf.AddMetric("mean_censored_ttr_ms", waves.mean_censored_ttr_ms);
    perf.AddMetric("mean_area_under_dip", waves.mean_area_under_dip);
    perf.AddMetric("unrecovered", waves.unrecovered);
    perf.AddMetric("min_jain", waves.min_jain);
    perf.AddMetric("ckpt_taken", static_cast<double>(ckpt.taken));
    perf.AddMetric("ckpt_skipped_clean",
                   static_cast<double>(ckpt.skipped_clean));
    perf.AddMetric("ckpt_restores", static_cast<double>(ckpt.restores));
    perf.AddMetric("ckpt_bytes_written",
                   static_cast<double>(ckpt.bytes_written));

    // The deterministic result line. Checkpoint counters are printed on a
    // separate line: the legacy+capture identity gate compares *simulated
    // results* against the capture-off run, which by design has different
    // capture counters.
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "processed=%llu shed=%llu events=%llu replaced=%llu dropped=%llu "
        "waves=%d affected=%d unrecovered=%d mean_dip=%.9f max_dip=%.9f "
        "censored_mttr_ms=%.3f mean_area=%.9f min_jain=%.9f final_jain=%.9f",
        static_cast<unsigned long long>(r.scale.tuples_processed),
        static_cast<unsigned long long>(r.scale.tuples_shed),
        static_cast<unsigned long long>(r.scale.events),
        static_cast<unsigned long long>(r.replaced_fragments),
        static_cast<unsigned long long>(r.dropped_queries), waves.disturbances,
        waves.affected, waves.unrecovered, waves.mean_dip_depth,
        waves.max_dip_depth, waves.mean_censored_ttr_ms,
        waves.mean_area_under_dip, waves.min_jain, waves.final_jain);
    std::printf("[%s] %s\n", config.name.c_str(), line);
    std::printf("[%s] ckpt taken=%llu skipped_clean=%llu restores=%llu "
                "missed=%llu bytes=%llu\n",
                config.name.c_str(),
                static_cast<unsigned long long>(ckpt.taken),
                static_cast<unsigned long long>(ckpt.skipped_clean),
                static_cast<unsigned long long>(ckpt.restores),
                static_cast<unsigned long long>(ckpt.missed),
                static_cast<unsigned long long>(ckpt.bytes_written));

    outcomes[config.name] = {line, waves, ckpt};
    reporter.AddRow(config.name,
                    {static_cast<double>(r.scale.tuples_processed),
                     static_cast<double>(waves.affected),
                     waves.mean_dip_depth, waves.mean_censored_ttr_ms,
                     waves.mean_area_under_dip,
                     static_cast<double>(ckpt.bytes_written) / 1024.0});
  }
  reporter.Print();

  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    std::printf("%s: %s\n", what, ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  };

  const ModeOutcome& legacy = outcomes.at("legacy-shared");
  const ModeOutcome& captured = outcomes.at("legacy+capture");
  const ModeOutcome& reset = outcomes.at("reset");
  const ModeOutcome& c2000 = outcomes.at("ckpt/2000ms");
  const ModeOutcome& c500 = outcomes.at("ckpt/500ms");
  const ModeOutcome& c250 = outcomes.at("ckpt/250ms");
  const ModeOutcome& approx = outcomes.at("ckpt/250ms/approx");
  const ModeOutcome& parsim1 = outcomes.at("ckpt/250ms/parsim1");

  // Determinism: capture with no restore perturbs nothing, bit for bit.
  gate(captured.ckpt.taken > 0 && captured.line == legacy.line,
       "capture-only run byte-identical to checkpoint-off");
  // Determinism: single-shard parallel fast path with capture + restore.
  gate(parsim1.line == c250.line,
       "checkpoint run at shards=1 byte-identical to sequential");
  // Overhead is monotone in cadence, and the approximate point skips
  // captures (writing strictly fewer bytes than its exact twin).
  gate(c250.ckpt.bytes_written > c500.ckpt.bytes_written &&
           c500.ckpt.bytes_written > c2000.ckpt.bytes_written &&
           c2000.ckpt.bytes_written > 0,
       "serialized bytes monotone in capture cadence");
  gate(approx.ckpt.skipped_clean > 0 &&
           approx.ckpt.bytes_written < c250.ckpt.bytes_written,
       "error-bound point skips clean captures and writes fewer bytes");
  // Recovery: every crash wave restored from images, and the restored runs
  // dip no deeper (and lose no more SIC-seconds) than the cold reset.
  gate(c250.ckpt.restores > 0 && c250.ckpt.missed == 0,
       "every re-placed operator restored from an image at 250 ms");
  gate(c250.waves.mean_dip_depth <= reset.waves.mean_dip_depth,
       "250 ms checkpoint restore dips no deeper than reset");
  gate(c250.waves.mean_area_under_dip <= reset.waves.mean_area_under_dip,
       "250 ms checkpoint restore loses no more SIC-seconds than reset");

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d checkpoint-recovery gate(s) failed\n",
                 failures);
    return 1;
  }
  return 0;
}
