// Elastic-federation benchmark: the 64-node WAN-of-LANs churn scenario
// overlaid with §7.4 bursts AND a diurnal load swing, with the autoscaler
// loop (federation/autoscaler.h) growing, shrinking and re-balancing the
// federation through the TopologyPlan control plane while crash waves and
// link drift keep perturbing it. Run on the sequential engine, the
// parallel engine at 1 shard, and the parallel engine at `--shards N`
// (default 4).
//
// Two jobs in one binary, mirroring bench_churn_federation:
//  * Throughput: PerfRecorder captures tuples/s per engine config; CI
//    gates shards=4 at >= 1.5x the shards=1 wall-clock throughput — the
//    parallel win must survive mid-run joins, migrations and re-balances.
//  * Determinism: the printed report contains only simulated quantities,
//    so its bytes are a pure function of the scenario. The binary fails if
//    the shards=1 parallel run differs from the sequential run, and CI
//    byte-diffs two full invocations for run-to-run identity at every
//    shard count. Per the elastic determinism exception (see
//    federation/elastic_federation.h), the multi-shard report may
//    legitimately differ from the single-shard one: a re-balance re-homes
//    in-flight deliveries, and the landing epoch depends on the shard map.
//
// Flags (besides the PerfRecorder ones): --shards N, --nodes N,
// --queries N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "federation/elastic_federation.h"
#include "metrics/reporter.h"

namespace {

int FlagValue(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_elastic_federation");
  std::printf("Elastic federation run: autoscaler + shard re-balancing over "
              "churn with diurnal + burst load, per engine.\n");

  ElasticScenarioOptions eo;
  eo.churn.scale.nodes = FlagValue(argc, argv, "--nodes", 64);
  eo.churn.scale.queries = FlagValue(argc, argv, "--queries", 96);
  eo.churn.scale.source_rate = 150.0;
  // Size the base federation so the diurnal + burst swing crosses BOTH
  // autoscaler thresholds per period: the loop has to grow into the peaks
  // and give capacity back in the troughs, not ratchet one way.
  eo.churn.scale.overload_factor = 0.4;
  eo.diurnal_amplitude = 0.8;
  eo.diurnal_period = Seconds(32);
  eo.autoscaler.shrink_utilization = 0.7;
  eo.autoscaler.max_added_nodes = 16;
  SimDuration measure = Seconds(10);
  if (perf.quick()) {
    eo.churn.scale.queries = FlagValue(argc, argv, "--queries", 64);
    eo.churn.crash_waves = 2;
    eo.churn.churn_horizon = Seconds(16);
    eo.autoscaler.max_added_nodes = 8;
    measure = Seconds(6);
  }
  const int parallel_shards = FlagValue(argc, argv, "--shards", 4);
  ElasticScenario scenario = MakeElasticScenario(eo);

  Reporter reporter(
      "Elastic federation (" + std::to_string(eo.churn.scale.nodes) +
          " nodes, " + std::to_string(eo.churn.scale.queries) + " queries, " +
          std::to_string(scenario.churn.events.size()) + " topology events)",
      {"engine", "processed", "shed", "added", "rebal", "migr", "live",
       "mean_SIC", "jain"});

  struct EngineConfig {
    std::string name;
    int shards;
    bool force_parsim;
  };
  std::vector<EngineConfig> configs = {
      {"sequential", 1, false},
      {"shards=1", 1, true},
  };
  if (parallel_shards > 1) {
    configs.push_back(
        {"shards=" + std::to_string(parallel_shards), parallel_shards, false});
  }

  std::string first_report;
  bool identity_ok = true;
  for (const EngineConfig& config : configs) {
    FspsOptions fo;
    fo.shards = config.shards;
    fo.force_parsim_engine = config.force_parsim;
    auto fsps = MakeElasticFederation(scenario, fo);
    perf.BeginRun(config.name);
    ElasticRunResult r = RunElasticScenario(fsps.get(), scenario, measure);
    perf.EndRun(r.churn.scale.tuples_processed);
    perf.AddMetric("nodes_added", static_cast<double>(r.nodes_added));
    perf.AddMetric("rebalances", static_cast<double>(r.rebalances));
    perf.AddMetric("final_live_nodes",
                   static_cast<double>(r.final_live_nodes));
    perf.AddMetric("mean_sic", r.churn.scale.mean_sic);

    // One deterministic line per config; the sequential / shards=1 pair
    // must match byte-for-byte (single-shard parallel fast path).
    char line[400];
    std::snprintf(
        line, sizeof(line),
        "processed=%llu shed=%llu messages=%llu events=%llu crashes=%llu "
        "restores=%llu added=%llu rebalances=%llu migrated=%llu "
        "grow=%llu shrink=%llu restored=%llu decom=%llu live=%d "
        "util=%.6f mean_sic=%.9f jain=%.9f",
        static_cast<unsigned long long>(r.churn.scale.tuples_processed),
        static_cast<unsigned long long>(r.churn.scale.tuples_shed),
        static_cast<unsigned long long>(r.churn.scale.messages),
        static_cast<unsigned long long>(r.churn.scale.events),
        static_cast<unsigned long long>(r.churn.crashes),
        static_cast<unsigned long long>(r.churn.restores),
        static_cast<unsigned long long>(r.nodes_added),
        static_cast<unsigned long long>(r.rebalances),
        static_cast<unsigned long long>(r.migrated_nodes),
        static_cast<unsigned long long>(r.autoscaler.grow_actions),
        static_cast<unsigned long long>(r.autoscaler.shrink_actions),
        static_cast<unsigned long long>(r.autoscaler.nodes_restored),
        static_cast<unsigned long long>(r.autoscaler.nodes_decommissioned),
        r.final_live_nodes, r.final_utilization, r.churn.scale.mean_sic,
        r.churn.scale.jain);
    std::printf("[%s] %s\n", config.name.c_str(), line);
    if (first_report.empty()) {
      first_report = line;
    } else if (config.force_parsim && first_report != line) {
      identity_ok = false;
    }

    reporter.AddRow(config.name,
                    {static_cast<double>(r.churn.scale.tuples_processed),
                     static_cast<double>(r.churn.scale.tuples_shed),
                     static_cast<double>(r.nodes_added),
                     static_cast<double>(r.rebalances),
                     static_cast<double>(r.migrated_nodes),
                     static_cast<double>(r.final_live_nodes),
                     r.churn.scale.mean_sic, r.churn.scale.jain});
  }
  reporter.Print();

  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel engine at shards=1 diverged from the "
                 "sequential engine on the elastic scenario\n");
    return 1;
  }
  std::printf("elastic run at shards=1 byte-identical to sequential: OK\n");
  return 0;
}
