// Figure 8: single-node BALANCE-SIC fairness while the number of deployed
// complex-workload queries grows from 30 to 330.
//
// Expected shape: mean SIC decreases with load (more tuples shed) while
// Jain's index stays close to 1 — even under extreme overload the shedding
// remains balanced.
#include <cstdio>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig08_single_node");
  std::printf("Reproduces Figure 8 of the THEMIS paper (single-node "
              "fairness).\n");

  Reporter reporter("Figure 8: single-node fairness vs number of queries",
                    {"queries", "mean_SIC", "jain_index"});
  const int step = perf.quick() ? 300 : 60;
  for (int queries = 30; queries <= 330; queries += step) {
    MixConfig cfg;
    cfg.num_queries = queries;
    cfg.nodes = 1;
    cfg.fragments_min = cfg.fragments_max = 1;
    cfg.sources_per_fragment = 2;
    cfg.source_rate = 40.0;
    // Capacity fixed at what ~60 queries need: 30 queries run almost
    // unshedded, 330 drop most of their input (the paper's sweep shape).
    double fixed_capacity_rate = 60 * 2 * 40.0;
    cfg.overload_factor =
        (queries * 2 * 40.0) / fixed_capacity_rate;
    cfg.warmup = Seconds(20);
    cfg.measure = Seconds(15);
    cfg.seed = 100 + queries;
    if (perf.quick()) {
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
    }
    perf.BeginRun("queries=" + std::to_string(queries));
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    reporter.AddRow(std::to_string(queries), {r.mean_sic, r.jain});
  }
  reporter.Print();
  return 0;
}
