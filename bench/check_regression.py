#!/usr/bin/env python3
"""Compare a merged BENCH_results.json against a committed baseline.

Usage: check_regression.py RESULTS_JSON [BASELINE_JSON] [--tolerance 0.20]
           [--min-speedup BENCH:FAST_CONFIG:BASE_CONFIG:RATIO ...]
           [--max-metric-ratio BENCH:CONFIG_A:CONFIG_B:METRIC:RATIO ...]

For every (bench, config) run present in both files with a non-zero
throughput, fail (exit 1) when the measured tuples/s — normalized by each
file's `calib_ops_per_sec` CPU score, which cancels machine-class and host-
load differences — falls more than TOLERANCE below the baseline. Configs
missing from either side are reported but not fatal (benches evolve);
zero-throughput runs (no tuple notion) are skipped.

--min-speedup gates a within-results ratio: the *wall-clock* tuples/s of
FAST_CONFIG must be at least RATIO times BASE_CONFIG's (both runs of BENCH
in RESULTS_JSON). CI uses it to pin the parallel engine's speedup
(bench_scale_federation:shards=4:shards=1:1.5); wall-clock is deliberate —
a parallel run burns more CPU-seconds than it saves. BASELINE_JSON may be
omitted for a speedup-only check (no baseline comparison), which CI does
against a dedicated full-length bench run for a less noise-sensitive
measurement than the --quick smoke.

--max-metric-ratio gates a within-results ratio over the *simulated-domain*
metrics a bench attached via PerfRecorder::AddMetric (the `"metrics"`
object on a run): CONFIG_A's METRIC must be at most RATIO times
CONFIG_B's. Unlike throughput these values are deterministic, so the gate
is exact. CI uses it to pin that SIC-aware orphan re-placement recovers no
slower than the round-robin cursor
(bench_recovery:sic-aware:round-robin:mean_censored_ttr_ms:1.0).

A bench present in the baseline but absent from the results entirely (no
runs at all — the binary crashed, was skipped, or stopped emitting JSON) is
fatal: per-config gaps degrade gracefully, whole-bench gaps mean the gate
silently stopped gating.

--summary prints a calibration-normalized markdown table of every run in
RESULTS_JSON (and exits 0 when no baseline/gates are given); the nightly
workflow appends it to the job summary as the cross-run trend line.

Refresh the baseline with `bench/run_benches.sh build bench/baseline.json
--quick` (see EXPERIMENTS.md, "Refreshing the baseline").
"""

import argparse
import json
import sys


def load_runs(path):
    """Returns {(bench, config): calibration-normalized throughput}.

    Prefers tuples per CPU second (robust against host contention); falls
    back to wall-clock throughput for files written before cpu_s existed.
    """
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    runs = {}
    for entry in entries:
        calib = entry.get("calib_ops_per_sec", 0.0)
        for run in entry.get("runs", []):
            tps = run.get("tuples_per_cpu_sec", 0.0) or run.get(
                "tuples_per_sec", 0.0
            )
            runs[(entry["bench"], run["config"])] = (
                tps / calib if calib > 0 else 0.0,
                run.get("cpu_s", run.get("wall_s", 0.0)),
            )
    return runs


def load_wall_tps(path):
    """Returns {(bench, config): wall-clock tuples_per_sec}."""
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    return {
        (entry["bench"], run["config"]): run.get("tuples_per_sec", 0.0)
        for entry in entries
        for run in entry.get("runs", [])
    }


def load_metrics(path):
    """Returns {(bench, config, metric): value} from runs' `metrics`."""
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    return {
        (entry["bench"], run["config"], name): value
        for entry in entries
        for run in entry.get("runs", [])
        for name, value in run.get("metrics", {}).items()
    }


def check_metric_ratios(results_path, specs):
    """Evaluates BENCH:A:B:METRIC:RATIO specs; returns a list of failures."""
    if not specs:
        return []
    metrics = load_metrics(results_path)
    failures = []
    for spec in specs:
        try:
            bench, config_a, config_b, metric, ratio_s = spec.split(":")
            max_ratio = float(ratio_s)
        except ValueError:
            failures.append(f"malformed --max-metric-ratio spec: {spec!r}")
            continue
        key_a = (bench, config_a, metric)
        key_b = (bench, config_b, metric)
        if key_a not in metrics or key_b not in metrics:
            failures.append(
                f"{bench}: missing metric {metric!r} for ratio check "
                f"({config_a}: {key_a in metrics}, "
                f"{config_b}: {key_b in metrics})")
            continue
        a, b = metrics[key_a], metrics[key_b]
        ok = a <= max_ratio * b
        print(f"metric {bench} {metric}: {config_a}={a:.3f} vs "
              f"{config_b}={b:.3f} (need <= {max_ratio:.2f}x) "
              f"{'OK' if ok else 'FAIL'}")
        if not ok:
            failures.append(
                f"{bench}: {metric} of {config_a} ({a:.3f}) exceeds "
                f"{max_ratio:.2f}x of {config_b} ({b:.3f})")
    return failures


def check_speedups(results_path, specs):
    """Evaluates BENCH:FAST:BASE:RATIO specs; returns a list of failures."""
    wall = load_wall_tps(results_path)
    failures = []
    for spec in specs:
        try:
            bench, fast_config, base_config, ratio_s = spec.split(":")
            min_ratio = float(ratio_s)
        except ValueError:
            failures.append(f"malformed --min-speedup spec: {spec!r}")
            continue
        fast = wall.get((bench, fast_config), 0.0)
        base = wall.get((bench, base_config), 0.0)
        if base <= 0 or fast <= 0:
            failures.append(
                f"{bench}: missing run(s) for speedup check "
                f"({fast_config}={fast:.1f}, {base_config}={base:.1f})")
            continue
        ratio = fast / base
        status = "OK" if ratio >= min_ratio else "FAIL"
        print(f"speedup {bench} {fast_config} vs {base_config}: "
              f"{ratio:.2f}x (wall-clock, need >= {min_ratio:.2f}x) {status}")
        if ratio < min_ratio:
            failures.append(
                f"{bench}: {fast_config} is {ratio:.2f}x of {base_config}, "
                f"below the required {min_ratio:.2f}x")
    return failures


def print_summary(results_path):
    """Prints a calibration-normalized markdown table of every run."""
    with open(results_path, encoding="utf-8") as f:
        entries = json.load(f)
    print("| bench | config | tuples/s | tuples/cpu-s | normalized |")
    print("|---|---|---:|---:|---:|")
    for entry in entries:
        calib = entry.get("calib_ops_per_sec", 0.0)
        for run in entry.get("runs", []):
            cpu_tps = run.get("tuples_per_cpu_sec", 0.0)
            norm = cpu_tps / calib if calib > 0 else 0.0
            print(f"| {entry['bench']} | {run['config']} "
                  f"| {run.get('tuples_per_sec', 0.0):.0f} "
                  f"| {cpu_tps:.0f} | {norm:.4f} |")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("results")
    parser.add_argument("baseline", nargs="?", default=None)
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument(
        "--min-cpu-s", type=float, default=0.1,
        help="skip runs whose baseline burned less CPU than this "
             "(too short to measure reliably)")
    parser.add_argument(
        "--min-speedup", action="append", default=[],
        metavar="BENCH:FAST_CONFIG:BASE_CONFIG:RATIO",
        help="require FAST_CONFIG's wall-clock tuples/s to be at least "
             "RATIO x BASE_CONFIG's within the results file")
    parser.add_argument(
        "--max-metric-ratio", action="append", default=[],
        metavar="BENCH:CONFIG_A:CONFIG_B:METRIC:RATIO",
        help="require CONFIG_A's METRIC (PerfRecorder::AddMetric) to be at "
             "most RATIO x CONFIG_B's within the results file")
    parser.add_argument(
        "--summary", action="store_true",
        help="print a calibration-normalized markdown table of all runs "
             "(the nightly job appends it to the job summary)")
    args = parser.parse_args()

    if args.summary:
        print_summary(args.results)

    if args.baseline is None:
        failures = check_speedups(args.results, args.min_speedup)
        failures += check_metric_ratios(args.results, args.max_metric_ratio)
        if failures:
            print(f"\n{len(failures)} gate failure(s):", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        if not args.min_speedup and not args.max_metric_ratio:
            if args.summary:
                return 0
            print("error: no baseline and no --min-speedup/"
                  "--max-metric-ratio: nothing to check",
                  file=sys.stderr)
            return 1
        print("\nOK: all gates passed")
        return 0

    results = load_runs(args.results)
    baseline = load_runs(args.baseline)

    # A whole bench vanishing from the results is fatal (the binary crashed
    # or stopped emitting JSON); individual configs may come and go.
    results_benches = {bench for bench, _ in results}
    missing_benches = sorted(
        {bench for bench, _ in baseline} - results_benches)
    for bench in missing_benches:
        print(f"error: bench {bench!r} has no entry in {args.results}",
              file=sys.stderr)

    regressions = []
    compared = 0
    print("(throughputs below are tuples per CPU-second divided by each "
          "file's CPU calibration score)")
    print(f"{'bench/config':<60} {'base':>12} {'now':>12} {'ratio':>7}")
    for key, (base_tps, base_cpu) in sorted(baseline.items()):
        if base_tps <= 0:
            continue
        if base_cpu < args.min_cpu_s:
            print(f"{key[0] + '/' + key[1]:<60} <too short to gate "
                  f"({base_cpu:.3f}s cpu)>")
            continue
        if key not in results:
            print(f"{key[0] + '/' + key[1]:<60} {'<missing in results>'}")
            continue
        now_tps, _ = results[key]
        if now_tps <= 0:
            continue
        ratio = now_tps / base_tps
        compared += 1
        marker = " REGRESSION" if ratio < 1.0 - args.tolerance else ""
        print(
            f"{key[0] + '/' + key[1]:<60} {base_tps:>12.4f} {now_tps:>12.4f}"
            f" {ratio:>6.2f}x{marker}"
        )
        if marker:
            regressions.append((key, ratio))

    for key in sorted(set(results) - set(baseline)):
        print(f"{key[0] + '/' + key[1]:<60} <new, no baseline>")

    speedup_failures = check_speedups(args.results, args.min_speedup)
    speedup_failures += check_metric_ratios(args.results,
                                            args.max_metric_ratio)

    if compared == 0:
        print("error: no comparable runs between results and baseline",
              file=sys.stderr)
        return 1
    if missing_benches:
        print(f"\n{len(missing_benches)} bench(es) missing from results: "
              f"{', '.join(missing_benches)}", file=sys.stderr)
        return 1
    if speedup_failures:
        print(f"\n{len(speedup_failures)} gate failure(s):",
              file=sys.stderr)
        for failure in speedup_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.tolerance:.0%} tolerance:", file=sys.stderr)
        for (bench, config), ratio in regressions:
            print(f"  {bench}/{config}: {ratio:.2f}x of baseline",
                  file=sys.stderr)
        return 1
    print(f"\nOK: {compared} run(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
