// Figure 14: BALANCE-SIC fairness with bursty sources and wide-area
// latencies. 4 nodes; LAN (5 ms) vs FSPS/WAN (50 ms links), with and
// without bursty sources (10% of seconds at 10x rate), for 20 and 40
// two-fragment queries.
//
// Expected shape: mean SIC is similar across all four deployments — the
// algorithm tolerates burstiness and latency variation.
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig14_burst_wan");
  std::printf("Reproduces Figure 14 of the THEMIS paper (burstiness and "
              "wide-area networks).\n");

  Reporter reporter("Figure 14: mean SIC across deployments",
                    {"deployment", "mean_SIC_20q", "jain_20q", "mean_SIC_40q",
                     "jain_40q"});
  struct Deployment {
    const char* name;
    SimDuration latency;
    double burst_prob;
  };
  const Deployment deployments[] = {
      {"LAN", Millis(5), 0.0},
      {"FSPS", Millis(50), 0.0},
      {"LAN-bursty", Millis(5), 0.1},
      {"FSPS-bursty", Millis(50), 0.1},
  };
  const size_t num_deployments = perf.quick() ? 1 : 4;
  for (size_t di = 0; di < num_deployments; ++di) {
    const Deployment& d = deployments[di];
    double row[4];
    int i = 0;
    for (int queries : {20, 40}) {
      MixConfig cfg;
      cfg.num_queries = queries;
      cfg.nodes = 4;
      cfg.fragments_min = cfg.fragments_max = 2;
      cfg.placement = PlacementPolicy::kUniformRandom;
      cfg.sources_per_fragment = 2;
      cfg.source_rate = 40.0;
      cfg.link_latency = d.latency;
      cfg.burst_prob = d.burst_prob;
      // Capacity fixed at what 20 queries need at 2x overload.
      cfg.overload_factor = 2.0 * queries / 20.0;
      cfg.warmup = Seconds(20);
      cfg.measure = Seconds(15);
      cfg.seed = 700 + queries;
      if (perf.quick()) {
        cfg.warmup = Seconds(8);
        cfg.measure = Seconds(8);
      }
      perf.BeginRun(std::string(d.name) + "/queries=" +
                    std::to_string(queries));
      MixResult r = RunComplexMix(cfg);
      perf.EndRun(r.tuples_processed);
      row[i++] = r.mean_sic;
      row[i++] = r.jain;
    }
    reporter.AddRow(d.name, {row[0], row[1], row[2], row[3]});
  }
  reporter.Print();
  return 0;
}
