#!/usr/bin/env bash
# Runs every bench binary found in a build tree sequentially, merging their
# machine-readable output into one JSON file (see EXPERIMENTS.md).
#
# Usage: bench/run_benches.sh BUILD_DIR OUT_JSON [--quick] [EXTRA_ARGS...]
#
# EXTRA_ARGS are passed through to every bench invocation; the literal
# token `{bench}` inside an extra arg is replaced with the bench's name,
# so e.g.
#   bench/run_benches.sh build out.json --quick --metrics=/tmp/{bench}.prom
# writes one telemetry snapshot per bench. Benches ignore flags they do not
# know, so e.g.
#   bench/run_benches.sh build out.json --quick --columnar
# runs the whole suite with the columnar data plane wherever it exists
# (bench_dataplane's SoA variant + parity gate, bench_scale_federation's
# columnar sources) and leaves the other benches untouched.
#
# Sequential on purpose: the benches merge into one file, and concurrent
# writers would race. Refresh bench/baseline.json with:
#   bench/run_benches.sh build bench/baseline.json --quick
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 BUILD_DIR OUT_JSON [--quick] [EXTRA_ARGS...]" >&2
  exit 2
fi

build_dir=$1
out_json=$2
shift 2
quick_flag=
if [[ ${1:-} == "--quick" ]]; then
  quick_flag=--quick
  shift
fi
extra_args=("$@")

bench_dir="$build_dir/bench"
if [[ ! -d "$bench_dir" ]]; then
  echo "error: $bench_dir does not exist (build the benches first)" >&2
  exit 1
fi

rm -f "$out_json"
for bin in "$bench_dir"/bench_*; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name=$(basename "$bin")
  args=()
  for a in "${extra_args[@]+"${extra_args[@]}"}"; do
    args+=("${a//\{bench\}/$name}")
  done
  if [[ "$name" == "bench_sec76_overhead" ]]; then
    # Google-Benchmark binary: no PerfRecorder JSON; run it for smoke only
    # (extra args are PerfRecorder flags, so they are not passed here).
    echo "== $name (no JSON) =="
    "$bin" ${quick_flag:+--quick} > /dev/null
    continue
  fi
  echo "== $name =="
  "$bin" ${quick_flag:+--quick} --json "$out_json" \
    "${args[@]+"${args[@]}"}" > /dev/null
  # A bench that runs but never lands an entry in the merged JSON would
  # silently drop out of the regression gate; fail loudly instead.
  if ! grep -q "\"bench\":\"$name\"" "$out_json" 2>/dev/null; then
    echo "error: $name wrote no entry into $out_json" >&2
    exit 1
  fi
done

echo "merged results written to $out_json"
