#include "bench/harness.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "metrics/jain.h"

namespace themis {
namespace bench {

namespace {

// Estimated simulated cost (us) of pushing one source tuple through a
// complex-workload pipeline at cpu_speed 1 (receiver + merge/filter +
// windowed aggregate shares). Used only to derive cpu_speed for a target
// overload factor; the cost model measures the true value online.
constexpr double kPipelineCostUs = 1.6;

}  // namespace

double CpuSpeedForOverload(double total_tuples_per_sec, int nodes,
                           double overload_factor) {
  double needed_us_per_sec = total_tuples_per_sec * kPipelineCostUs;
  double available_us_per_sec = 1e6 * nodes * overload_factor;
  return needed_us_per_sec / available_us_per_sec;
}

MixResult RunComplexMix(const MixConfig& config) {
  Rng rng(config.seed);

  FspsOptions opts;
  opts.policy = config.policy;
  opts.balance = config.balance;
  opts.seed = config.seed;
  opts.default_link_latency = config.link_latency;
  opts.source_link_latency = config.link_latency;
  opts.node.shed_interval = config.shed_interval;
  opts.node.stw = config.stw;
  opts.coordinator.stw = config.stw;
  opts.coordinator.update_interval = config.shed_interval;
  opts.coordinator.disseminate = config.disseminate;

  // Pre-compute the aggregate source rate to hit the overload target.
  Rng frag_rng = rng.Fork();
  std::vector<int> frags_per_query(config.num_queries);
  std::vector<ComplexKind> kind_per_query(config.num_queries);
  double total_rate = 0.0;
  for (int i = 0; i < config.num_queries; ++i) {
    if (config.multi_fragment_ratio >= 0.0) {
      frags_per_query[i] =
          frag_rng.NextDouble() < config.multi_fragment_ratio
              ? config.multi_fragments
              : 1;
    } else {
      frags_per_query[i] = static_cast<int>(
          frag_rng.UniformInt(config.fragments_min, config.fragments_max));
    }
    kind_per_query[i] =
        static_cast<ComplexKind>(frag_rng.UniformInt(0, 2));
    int per_fragment;
    switch (kind_per_query[i]) {
      case ComplexKind::kCov:
        per_fragment = 2;
        break;
      case ComplexKind::kTop5:
        per_fragment = 2 * config.sources_per_fragment;
        break;
      default:
        per_fragment = config.sources_per_fragment;
        break;
    }
    total_rate += per_fragment * frags_per_query[i] * config.source_rate;
  }
  double cpu_speed = CpuSpeedForOverload(total_rate, config.nodes,
                                         config.overload_factor);
  opts.node.cpu_speed = cpu_speed;

  Fsps fsps(opts);
  for (int i = 0; i < config.nodes; ++i) fsps.AddNode();

  WorkloadFactory factory(config.seed);
  Rng place_rng = rng.Fork();
  for (QueryId q = 0; q < config.num_queries; ++q) {
    ComplexQueryOptions co;
    co.fragments = frags_per_query[q];
    co.sources_per_fragment = kind_per_query[q] == ComplexKind::kTop5
                                  ? 2 * config.sources_per_fragment
                                  : config.sources_per_fragment;
    co.source_rate = config.source_rate;
    co.batches_per_sec = config.batches_per_sec;
    co.dataset = config.dataset;
    co.burst_prob = config.burst_prob;
    BuiltQuery built = factory.MakeComplex(kind_per_query[q], q, co);
    auto placement = PlaceFragments(*built.graph, fsps.node_ids(),
                                    config.placement, config.zipf_s,
                                    &place_rng);
    Status st = fsps.Deploy(std::move(built.graph), placement);
    THEMIS_CHECK(st.ok());
    st = fsps.AttachSources(q, built.sources);
    THEMIS_CHECK(st.ok());
  }

  fsps.RunFor(config.warmup);

  MixResult result;
  int samples = std::max(config.samples, 1);
  SimDuration step = config.measure / samples;
  std::vector<std::vector<double>> per_query(config.num_queries);
  for (int s = 0; s < samples; ++s) {
    fsps.RunFor(step);
    std::vector<double> sics = fsps.AllQuerySics();
    for (int q = 0; q < config.num_queries && q < static_cast<int>(sics.size());
         ++q) {
      per_query[q].push_back(sics[q]);
    }
  }
  std::vector<double> time_means, time_stds;
  time_means.reserve(per_query.size());
  for (const auto& series : per_query) {
    time_means.push_back(Mean(series));
    time_stds.push_back(StdDev(series));
  }
  result.mean_sic = Mean(time_means);
  result.jain = JainIndex(time_means);
  result.std_sic = StdDev(time_means);
  result.temporal_std = Mean(time_stds);
  NodeStats totals = fsps.TotalNodeStats();
  result.tuples_shed = totals.tuples_shed;
  result.tuples_processed = totals.tuples_processed;
  double cap = 0.0;
  for (NodeId n : fsps.node_ids()) cap += fsps.node(n)->CurrentCapacity();
  result.avg_capacity = cap / config.nodes;
  return result;
}

CorrelationRun RunCorrelation(CorrelationQuery type, Dataset dataset,
                              int num_queries, double cpu_speed,
                              SimDuration run_time, uint64_t seed) {
  FspsOptions opts;
  opts.policy = SheddingPolicy::kRandom;  // §7.1 uses a random shedder
  opts.seed = seed;
  opts.coordinator.record_results = true;
  // cpu_speed <= 0 requests the perfect (never-overloaded) reference run.
  opts.node.cpu_speed = cpu_speed > 0.0 ? cpu_speed : 1000.0;

  Fsps fsps(opts);
  fsps.AddNode();
  WorkloadFactory factory(seed);

  for (QueryId q = 0; q < num_queries; ++q) {
    BuiltQuery built;
    switch (type) {
      case CorrelationQuery::kAvg: {
        AggregateQueryOptions ao;
        ao.dataset = dataset;
        ao.source_rate = 200.0;
        built = factory.MakeAvg(q, ao);
        break;
      }
      case CorrelationQuery::kMax: {
        AggregateQueryOptions ao;
        ao.dataset = dataset;
        ao.source_rate = 200.0;
        built = factory.MakeMax(q, ao);
        break;
      }
      case CorrelationQuery::kCount: {
        AggregateQueryOptions ao;
        ao.dataset = dataset;
        ao.source_rate = 200.0;
        built = factory.MakeCount(q, ao);
        break;
      }
      case CorrelationQuery::kTop5: {
        ComplexQueryOptions co;
        co.fragments = 1;
        co.sources_per_fragment = 12;
        co.source_rate = 20.0;  // §7.1 runs TOP-5 at a low per-source rate
        co.dataset = dataset;
        built = factory.MakeTop5(q, co);
        break;
      }
      case CorrelationQuery::kCov: {
        ComplexQueryOptions co;
        co.fragments = 1;
        co.source_rate = 200.0;
        co.dataset = dataset;
        built = factory.MakeCov(q, co);
        break;
      }
    }
    std::map<FragmentId, NodeId> placement;
    for (FragmentId f : built.graph->fragment_ids()) placement[f] = 0;
    Status st = fsps.Deploy(std::move(built.graph), placement);
    THEMIS_CHECK(st.ok());
    st = fsps.AttachSources(q, built.sources);
    THEMIS_CHECK(st.ok());
  }

  fsps.RunFor(run_time);

  CorrelationRun run;
  for (QueryId q = 0; q < num_queries; ++q) {
    QueryResultSeries series;
    series.final_sic = fsps.QuerySic(q);
    series.records = fsps.coordinator(q)->results();
    run.queries.push_back(std::move(series));
  }
  return run;
}

std::vector<TimedValue> ScalarSeries(const std::vector<ResultRecord>& records) {
  std::vector<TimedValue> out;
  out.reserve(records.size());
  for (const ResultRecord& r : records) {
    if (r.values.empty()) continue;
    out.push_back({r.time, AsDouble(r.values[0])});
  }
  return out;
}

std::map<SimTime, std::vector<int64_t>> IdListsByTime(
    const std::vector<ResultRecord>& records) {
  std::map<SimTime, std::vector<int64_t>> out;
  for (const ResultRecord& r : records) {
    if (r.values.empty()) continue;
    out[r.time].push_back(AsInt(r.values[0]));
  }
  return out;
}

}  // namespace bench
}  // namespace themis
