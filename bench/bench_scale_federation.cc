// Federation-scale engine benchmark: the 64-node WAN-of-LANs scenario
// (workload/scale_scenario.h) run on the sequential engine, the parallel
// engine at 1 shard, and the parallel engine at `--shards N` (default 4).
//
// Two jobs in one binary:
//  * Throughput: PerfRecorder captures tuples/s per engine config; CI gates
//    the parallel speedup (shards=N vs shards=1) via
//    bench/check_regression.py --min-speedup.
//  * Determinism: the printed report contains only simulated quantities
//    (tuple/message/event counts, SIC statistics) — never wall-clock — so
//    its bytes are a pure function of the scenario. The binary itself fails
//    if the shards=1 parallel run differs from the sequential run, and CI
//    byte-diffs two full invocations (and the per-config report blocks
//    against each other) to pin run-to-run determinism at every shard
//    count.
//
// Flags (besides the PerfRecorder ones): --shards N, --nodes N,
// --queries N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "federation/scale_federation.h"
#include "metrics/reporter.h"

namespace {

int FlagValue(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_scale_federation");
  std::printf("Federation-scale run: parallel engine (themis_parsim) vs the "
              "sequential engine.\n");

  ScaleScenarioOptions so;
  so.nodes = FlagValue(argc, argv, "--nodes", 64);
  so.queries = FlagValue(argc, argv, "--queries", 96);
  // Heavier batches than the scenario default: more data-plane work per
  // epoch makes the parallel-efficiency measurement robust against barrier
  // overhead (and matches Table 2's higher-rate test-beds).
  so.source_rate = 150.0;
  SimDuration measure = Seconds(20);
  if (perf.quick()) {
    so.queries = FlagValue(argc, argv, "--queries", 64);
    measure = Seconds(10);
  }
  const int parallel_shards = FlagValue(argc, argv, "--shards", 4);
  // Columnar data plane. Every figure this bench prints is simulated-domain
  // state, so the output must be byte-identical with the flag on or off —
  // CI diffs the two invocations to pin the columnar/row parity end-to-end.
  bool columnar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--columnar") == 0) columnar = true;
  }
  ScaleScenario scenario = MakeScaleScenario(so);

  Reporter reporter(
      "Scale federation (" + std::to_string(so.nodes) + " nodes, " +
          std::to_string(so.queries) + " queries, " +
          std::to_string(so.clusters) + " LAN clusters over WAN)",
      {"engine", "processed", "shed", "messages", "events", "mean_SIC",
       "jain"});

  struct EngineConfig {
    std::string name;
    int shards;
    bool force_parsim;
  };
  std::vector<EngineConfig> configs = {
      {"sequential", 1, false},
      {"shards=1", 1, true},
  };
  if (parallel_shards > 1) {
    // With --shards 1 the parallel engine is already covered by the config
    // above; adding it again would emit two runs under one label.
    configs.push_back(
        {"shards=" + std::to_string(parallel_shards), parallel_shards, false});
  }

  std::string first_report;
  bool identity_ok = true;
  for (const EngineConfig& config : configs) {
    FspsOptions fo;
    fo.shards = config.shards;
    fo.force_parsim_engine = config.force_parsim;
    fo.columnar = columnar;
    auto fsps = MakeScaleFederation(scenario, fo);
    perf.BeginRun(config.name);
    ScaleRunResult r = RunScaleScenario(fsps.get(), scenario, measure);
    perf.EndRun(r.tuples_processed);

    // One deterministic line per config; the sequential / shards=1 pair
    // must match byte-for-byte (single-shard parallel fast path).
    char line[256];
    std::snprintf(line, sizeof(line),
                  "processed=%llu shed=%llu messages=%llu events=%llu "
                  "mean_sic=%.9f jain=%.9f",
                  static_cast<unsigned long long>(r.tuples_processed),
                  static_cast<unsigned long long>(r.tuples_shed),
                  static_cast<unsigned long long>(r.messages),
                  static_cast<unsigned long long>(r.events), r.mean_sic,
                  r.jain);
    std::printf("[%s] %s\n", config.name.c_str(), line);
    if (first_report.empty()) {
      first_report = line;
    } else if (config.force_parsim && first_report != line) {
      identity_ok = false;
    }

    reporter.AddRow(config.name,
                    {static_cast<double>(r.tuples_processed),
                     static_cast<double>(r.tuples_shed),
                     static_cast<double>(r.messages),
                     static_cast<double>(r.events), r.mean_sic, r.jain});
  }
  reporter.Print();

  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel engine at shards=1 diverged from the "
                 "sequential engine\n");
    return 1;
  }
  std::printf("shards=1 parallel run byte-identical to sequential: OK\n");
  return 0;
}
