// Figure 13: scalability in the number of queries — 180 to 900 queries on a
// fixed 18-node deployment.
//
// Expected shape: mean SIC decreases as more queries strain the fixed
// capacity; Jain's index stays near 1 throughout.
#include <cstdio>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig13_queries");
  std::printf("Reproduces Figure 13 of the THEMIS paper (scalability in "
              "queries).\n");

  Reporter reporter("Figure 13: fairness vs number of queries (18 nodes)",
                    {"queries", "mean_SIC", "jain_index"});
  const int kBaselineQueries = 180;  // capacity calibrated at the low end
  const int last = perf.quick() ? 180 : 900;
  for (int queries = 180; queries <= last; queries += 180) {
    MixConfig cfg;
    cfg.num_queries = queries;
    cfg.nodes = 18;
    cfg.fragments_min = 1;
    cfg.fragments_max = 6;
    cfg.placement = PlacementPolicy::kZipf;
    cfg.zipf_s = 0.5;  // mild skew; see bench_fig12_nodes.cc
    cfg.sources_per_fragment = 2;
    cfg.source_rate = 20.0;
    // Fixed cluster capacity: overload grows linearly with query count.
    cfg.overload_factor = 1.3 * queries / kBaselineQueries;
    cfg.warmup = Seconds(20);
    cfg.measure = Seconds(15);
    cfg.seed = 600 + queries;
    if (perf.quick()) {
      cfg.num_queries = queries / 2;
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
    }
    perf.BeginRun("queries=" + std::to_string(queries));
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    reporter.AddRow(std::to_string(queries), {r.mean_sic, r.jain});
  }
  reporter.Print();
  return 0;
}
