// Figure 7: SIC correlation with result correctness for the complex
// workload — (a) TOP-5 measured with the normalised Kendall distance against
// the perfect top-5 lists, (b) COV measured with the standard deviation of
// the degraded sample-covariance series.
//
// Expected shape: Kendall distance falls as SIC rises; COV deviation is
// larger on the non-stationary planetlab trace than on synthetic data.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/perf.h"
#include "common/stats.h"
#include "metrics/kendall.h"
#include "metrics/reporter.h"

namespace themis {
namespace bench {
namespace {

std::vector<Dataset> BenchDatasets(const PerfRecorder& perf) {
  if (perf.quick()) return {Dataset::kGaussian};
  return {Dataset::kGaussian, Dataset::kUniform, Dataset::kExponential,
          Dataset::kMixed, Dataset::kPlanetLab};
}

void RunTop5(PerfRecorder* perf) {
  const SimDuration run_time = perf->quick() ? Seconds(10) : Seconds(40);
  Reporter reporter("Figure 7(a): TOP-5 — SIC vs Kendall's distance",
                    {"dataset", "mean_SIC", "kendall_distance"});
  const int kQueries = 6;
  const double saturation = kQueries * 12 * 20.0 * 2.0e-6;
  std::vector<double> keep_levels = {0.2, 0.4, 0.6, 0.8, 1.5};
  if (perf->quick()) keep_levels = {0.4, 1.5};
  for (Dataset d : BenchDatasets(*perf)) {
    perf->BeginRun(std::string("top5/") + DatasetName(d));
    CorrelationRun perfect = RunCorrelation(CorrelationQuery::kTop5, d,
                                            kQueries, 0.0, run_time, 11);
    for (double keep : keep_levels) {
      CorrelationRun degraded =
          RunCorrelation(CorrelationQuery::kTop5, d, kQueries,
                         saturation * keep, run_time, 11);
      std::vector<double> sics, distances;
      for (int q = 0; q < kQueries; ++q) {
        sics.push_back(degraded.queries[q].final_sic);
        auto deg_lists = IdListsByTime(degraded.queries[q].records);
        auto perf_lists = IdListsByTime(perfect.queries[q].records);
        std::vector<double> ds;
        for (const auto& [t, perf_ids] : perf_lists) {
          auto it = deg_lists.find(t);
          // A window with no degraded output at all is a full mismatch.
          if (it == deg_lists.end()) {
            ds.push_back(1.0);
          } else {
            ds.push_back(KendallTopKDistance(it->second, perf_ids));
          }
        }
        if (!ds.empty()) distances.push_back(Mean(ds));
      }
      reporter.AddRow(DatasetName(d), {Mean(sics), Mean(distances)});
    }
    perf->EndRun(0);
  }
  reporter.Print();
}

void RunCov(PerfRecorder* perf) {
  const SimDuration run_time = perf->quick() ? Seconds(10) : Seconds(40);
  Reporter reporter("Figure 7(b): COV — SIC vs std of covariance series",
                    {"dataset", "mean_SIC", "std"});
  const int kQueries = 10;
  const double saturation = kQueries * 2 * 200.0 * 1.3e-6;
  std::vector<double> keep_levels = {0.2, 0.4, 0.6, 0.8, 1.5};
  if (perf->quick()) keep_levels = {0.4, 1.5};
  for (Dataset d : BenchDatasets(*perf)) {
    perf->BeginRun(std::string("cov/") + DatasetName(d));
    for (double keep : keep_levels) {
      CorrelationRun degraded = RunCorrelation(
          CorrelationQuery::kCov, d, kQueries, saturation * keep, run_time,
          13);
      std::vector<double> sics, stds;
      for (int q = 0; q < kQueries; ++q) {
        sics.push_back(degraded.queries[q].final_sic);
        std::vector<double> values;
        for (const TimedValue& tv : ScalarSeries(degraded.queries[q].records)) {
          values.push_back(tv.value);
        }
        if (values.size() > 2) stds.push_back(StdDev(values));
      }
      reporter.AddRow(DatasetName(d), {Mean(sics), Mean(stds)});
    }
    perf->EndRun(0);
  }
  reporter.Print();
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  themis::bench::PerfRecorder perf(argc, argv,
                                   "bench_fig07_complex_correlation");
  std::printf("Reproduces Figure 7 of the THEMIS paper (SIC correlation, "
              "complex workload).\n");
  themis::bench::RunTop5(&perf);
  themis::bench::RunCov(&perf);
  return 0;
}
