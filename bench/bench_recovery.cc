// Recovery benchmark: the churn + burst interaction scenario (crash waves
// and link drift while sources spike at 10x, workload/churn_scenario.h)
// with the recovery tracker enabled, comparing the two orphan re-placement
// policies — the PR 4 round-robin cursor vs the SIC-aware least-loaded
// chooser (federation/placement.h).
//
// Three jobs in one binary:
//  * Observability: for every crash wave the report lists each affected
//    query's SIC dip depth and time-to-recover (MTTR), plus per-wave and
//    whole-run summaries with the federation-wide Jain-over-time extremes.
//  * Fairness gate: SIC-aware re-placement must recover no slower than
//    round-robin — censored mean TTR over crash waves, compared in-binary
//    (the bench fails otherwise) and re-checked in CI from the emitted
//    BENCH_results.json metrics (check_regression.py --max-metric-ratio).
//  * Determinism: the report contains only simulated quantities, so its
//    bytes are a pure function of the scenario; the binary fails if a
//    parsim@1 run diverges from its sequential twin, and CI byte-diffs two
//    full invocations (covering the multi-shard run-to-run case too).
//
// Flags (besides the PerfRecorder ones): --shards N, --nodes N,
// --queries N.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "federation/churn_federation.h"
#include "metrics/recovery_tracker.h"
#include "metrics/reporter.h"

namespace {

int FlagValue(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_recovery");
  std::printf("Recovery run: churn + burst stress with per-query SIC "
              "dip/MTTR tracking, per re-placement policy.\n");

  ChurnScenarioOptions co;
  co.scale.nodes = FlagValue(argc, argv, "--nodes", 64);
  co.scale.queries = FlagValue(argc, argv, "--queries", 96);
  co.scale.source_rate = 150.0;
  // Deep waves: an eighth of the federation fails at once (the cluster-
  // majority invariant still holds), so the survivors lose real capacity
  // and the SIC dip / recovery arc is actually visible — the shallow
  // default waves vanish inside the 10 s STW smoothing. The waves start
  // only after the arrival ramp AND a full STW have passed (arrivals end
  // at ~8 s, STW is 10 s), so each query's pre-fault baseline is its
  // steady-state SIC, not a transient the load ramp would never return
  // to; the measure tail then leaves a full STW after the last restore
  // for SIC to climb back.
  co.crashes_per_wave = 8;
  co.downtime = Seconds(3);
  co.churn_start = Seconds(18);
  co.churn_horizon = Seconds(33);
  SimDuration measure = Seconds(15);
  if (perf.quick()) {
    co.scale.queries = FlagValue(argc, argv, "--queries", 64);
    co.crash_waves = 2;
    co.churn_horizon = Seconds(28);
  }
  const int parallel_shards = FlagValue(argc, argv, "--shards", 4);
  ChurnScenario scenario = MakeChurnBurstScenario(co);

  Reporter reporter(
      "Recovery under churn + burst (" + std::to_string(co.scale.nodes) +
          " nodes, " + std::to_string(co.scale.queries) + " queries, " +
          std::to_string(scenario.events.size()) + " topology events)",
      {"policy", "processed", "affected", "unrecov", "mean_dip",
       "cens_mttr_ms", "min_jain"});

  struct PolicyConfig {
    std::string name;
    ReplacementPolicy policy;
    int shards;
    bool force_parsim;
  };
  std::vector<PolicyConfig> configs = {
      {"round-robin", ReplacementPolicy::kRoundRobin, 1, false},
      {"round-robin/parsim1", ReplacementPolicy::kRoundRobin, 1, true},
      {"sic-aware", ReplacementPolicy::kSicAware, 1, false},
      {"sic-aware/parsim1", ReplacementPolicy::kSicAware, 1, true},
  };
  if (parallel_shards > 1) {
    configs.push_back({"sic-aware/shards=" + std::to_string(parallel_shards),
                       ReplacementPolicy::kSicAware, parallel_shards, false});
  }

  // Per-policy report line of the sequential run, for the parsim identity
  // check, plus the crash-wave summaries of the two headline policies for
  // the fairness gate.
  std::string seq_report[2];
  RecoverySummary headline[2];
  bool identity_ok = true;

  for (const PolicyConfig& config : configs) {
    FspsOptions fo;
    fo.replacement = config.policy;
    fo.shards = config.shards;
    fo.force_parsim_engine = config.force_parsim;
    fo.recovery.enabled = true;
    fo.recovery.recover_fraction = 0.85;
    auto fsps = MakeChurnFederation(scenario, fo);
    perf.BeginRun(config.name);
    ChurnRunResult r = RunChurnScenario(fsps.get(), scenario, measure);
    perf.EndRun(r.scale.tuples_processed);

    const RecoveryTracker& tracker = fsps->recovery_tracker();
    RecoverySummary waves = tracker.Summarize(DisturbanceKind::kCrashWave);
    perf.AddMetric("mean_censored_ttr_ms", waves.mean_censored_ttr_ms);
    perf.AddMetric("mean_ttr_ms", waves.mean_ttr_ms);
    perf.AddMetric("mean_dip_depth", waves.mean_dip_depth);
    perf.AddMetric("unrecovered", waves.unrecovered);
    perf.AddMetric("min_jain", waves.min_jain);
    // Fairness recovery (ROADMAP item 5): censored mean time for the Jain
    // index to regain jain_recover_fraction of its pre-fault value.
    perf.AddMetric("mean_jain_ttr_ms", waves.mean_jain_ttr_ms);
    perf.AddMetric("jain_dips", waves.jain_dips);

    // One deterministic line per config; a parsim@1 run must match its
    // sequential twin byte-for-byte (single-shard parallel fast path).
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "processed=%llu shed=%llu events=%llu replaced=%llu dropped=%llu "
        "samples=%llu waves=%d affected=%d unrecovered=%d "
        "mean_dip=%.9f max_dip=%.9f mttr_ms=%.3f censored_mttr_ms=%.3f "
        "mean_area=%.9f min_jain=%.9f final_jain=%.9f",
        static_cast<unsigned long long>(r.scale.tuples_processed),
        static_cast<unsigned long long>(r.scale.tuples_shed),
        static_cast<unsigned long long>(r.scale.events),
        static_cast<unsigned long long>(r.replaced_fragments),
        static_cast<unsigned long long>(r.dropped_queries),
        static_cast<unsigned long long>(tracker.samples()), waves.disturbances,
        waves.affected, waves.unrecovered, waves.mean_dip_depth,
        waves.max_dip_depth, waves.mean_ttr_ms, waves.mean_censored_ttr_ms,
        waves.mean_area_under_dip, waves.min_jain, waves.final_jain);
    std::printf("[%s] %s\n", config.name.c_str(), line);

    // Per-query dip depth and time-to-recover, listed for every crash wave
    // (only queries whose SIC actually dipped below the recovery
    // threshold; link-change disturbances are tracked too but summarized
    // rather than listed).
    int wave_index = 0;
    for (const Disturbance& d : tracker.disturbances()) {
      if (d.kind != DisturbanceKind::kCrashWave) continue;
      std::printf("[%s] wave %d t_ms=%lld crashes=%d:", config.name.c_str(),
                  wave_index, static_cast<long long>(d.time / kMillisecond),
                  d.events);
      int listed = 0;
      for (const QueryDip& dip : d.dips) {
        if (!dip.dipped) continue;
        std::printf(" q%d dip=%.4f ttr_ms=%lld", dip.query, dip.dip_depth,
                    static_cast<long long>(
                        dip.time_to_recover < 0
                            ? -1
                            : dip.time_to_recover / kMillisecond));
        ++listed;
      }
      if (listed == 0) std::printf(" (no query dipped)");
      std::printf("\n");
      ++wave_index;
    }

    bool sequential = !config.force_parsim && config.shards == 1;
    size_t slot = config.policy == ReplacementPolicy::kSicAware ? 1 : 0;
    if (sequential) {
      seq_report[slot] = line;
      headline[slot] = waves;
    } else if (config.force_parsim && seq_report[slot] != line) {
      identity_ok = false;
    }

    reporter.AddRow(config.name,
                    {static_cast<double>(r.scale.tuples_processed),
                     static_cast<double>(waves.affected),
                     static_cast<double>(waves.unrecovered),
                     waves.mean_dip_depth, waves.mean_censored_ttr_ms,
                     waves.min_jain});
  }
  reporter.Print();

  if (!identity_ok) {
    std::fprintf(stderr,
                 "FAIL: parallel engine at shards=1 diverged from the "
                 "sequential engine on the recovery scenario\n");
    return 1;
  }
  std::printf("recovery run at shards=1 byte-identical to sequential: OK\n");

  // The fairness gate: moving orphans to the least-loaded live node must
  // recover fairness no slower than the blind cursor. Censored MTTR, so
  // "never recovered" cannot hide from the mean. Deterministic quantities:
  // no tolerance needed.
  const RecoverySummary& rr = headline[0];
  const RecoverySummary& sic = headline[1];
  std::printf("crash-wave censored MTTR: sic-aware %.3f ms vs round-robin "
              "%.3f ms\n",
              sic.mean_censored_ttr_ms, rr.mean_censored_ttr_ms);
  if (sic.mean_censored_ttr_ms > rr.mean_censored_ttr_ms) {
    std::fprintf(stderr,
                 "FAIL: SIC-aware re-placement recovered slower than "
                 "round-robin\n");
    return 1;
  }
  std::printf("sic-aware recovers no slower than round-robin: OK\n");
  return 0;
}
