// Figure 12: scalability in the number of nodes — 500 queries (fragments
// drawn 1–6, Zipf-placed) over 9/12/18/24 nodes.
//
// Expected shape: mean SIC rises with the node count (more capacity for the
// same workload) while Jain's index stays near 1.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig12_nodes");
  std::printf("Reproduces Figure 12 of the THEMIS paper (scalability in "
              "nodes).\n");

  Reporter reporter("Figure 12: fairness vs number of nodes (500 queries)",
                    {"nodes", "mean_SIC", "jain_index"});
  const int kQueries = 250;         // scaled from the paper's 500
  const int kCapacityBaseline = 9;  // overload calibrated at 9 nodes
  std::vector<int> node_counts = {9, 12, 18, 24};
  if (perf.quick()) node_counts = {9};
  for (int nodes : node_counts) {
    MixConfig cfg;
    cfg.num_queries = kQueries;
    cfg.nodes = nodes;
    cfg.fragments_min = 1;
    cfg.fragments_max = 6;
    // Mild Zipf skew (C1). A strong skew would leave tail nodes idle and
    // their queries pinned at SIC 1 — unfairness inherent to the deployment
    // that no shedding policy can remove, since underloaded nodes process
    // everything (§6).
    cfg.placement = PlacementPolicy::kZipf;
    cfg.zipf_s = 0.5;
    cfg.sources_per_fragment = 2;
    cfg.source_rate = 20.0;
    // Keep the workload constant: per-node capacity is fixed, so the
    // effective overload shrinks as nodes are added.
    cfg.overload_factor = 6.0 * kCapacityBaseline / nodes;
    cfg.warmup = Seconds(20);
    cfg.measure = Seconds(15);
    cfg.seed = 500 + nodes;
    if (perf.quick()) {
      cfg.num_queries = kQueries / 2;
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
    }
    perf.BeginRun("nodes=" + std::to_string(nodes));
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    reporter.AddRow(std::to_string(nodes), {r.mean_sic, r.jain});
  }
  reporter.Print();
  return 0;
}
