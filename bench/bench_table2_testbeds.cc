// Table 2: the experimental test-beds, reproduced as simulator presets.
// Prints both presets and runs a short smoke deployment on each to show the
// derived capacities.
#include <cstdio>

#include "bench/perf.h"
#include "federation/testbeds.h"
#include "metrics/reporter.h"
#include "workload/workloads.h"

int main(int argc, char** argv) {
  using namespace themis;
  bench::PerfRecorder perf(argc, argv, "bench_table2_testbeds");
  std::printf("Reproduces Table 2 of the THEMIS paper (test-bed set-ups) as "
              "simulator presets.\n");

  Reporter reporter("Table 2: test-bed presets",
                    {"testbed", "proc_nodes", "src_rate_t/s", "batches/s",
                     "link_ms", "cpu_speed"});
  for (const TestbedSpec& spec : {LocalTestbed(), EmulabTestbed(18)}) {
    reporter.AddRow(spec.name,
                    {static_cast<double>(spec.processing_nodes),
                     spec.source_rate,
                     static_cast<double>(spec.batches_per_sec),
                     static_cast<double>(spec.link_latency) / kMillisecond,
                     spec.cpu_speed});
  }
  reporter.Print();

  // Smoke run: one AVG query per preset, verifying the preset wiring.
  Reporter smoke("Table 2: smoke deployment (one AVG query, 10 s)",
                 {"testbed", "query_SIC"});
  for (const TestbedSpec& spec : {LocalTestbed(), EmulabTestbed(3)}) {
    auto fsps = MakeTestbed(spec, {});
    WorkloadFactory f(1);
    AggregateQueryOptions ao;
    ao.source_rate = spec.source_rate;
    ao.batches_per_sec = spec.batches_per_sec;
    auto built = f.MakeAvg(1, ao);
    std::map<FragmentId, NodeId> placement = {{0, 0}};
    if (!fsps->Deploy(std::move(built.graph), placement).ok()) continue;
    if (!fsps->AttachSources(1, built.sources).ok()) continue;
    perf.BeginRun(std::string("smoke/") + spec.name);
    fsps->RunFor(perf.quick() ? Seconds(5) : Seconds(15));
    perf.EndRun(fsps->TotalNodeStats().tuples_processed);
    smoke.AddRow(spec.name, {fsps->QuerySic(1)});
  }
  smoke.Print();
  return 0;
}
