// Machine-readable performance recording for the bench binaries.
//
// Every bench constructs a PerfRecorder from its argv and brackets each
// experiment run with BeginRun()/EndRun(). The recorder measures wall-clock
// time and (via the opt-in counting allocator linked into the bench harness)
// heap allocations per run, plus the process peak RSS, and writes one entry
// per bench into a merged JSON file.
//
// Command line / environment:
//   --quick            run a seconds-scale smoke configuration (each bench
//                      decides what to shrink; figure output is NOT the
//                      paper figure in this mode)
//   --json PATH        write/merge results into PATH
//   THEMIS_BENCH_JSON  same as --json (flag wins); JSON is only written when
//                      one of the two is present, so plain runs and parallel
//                      ctest invocations never race on a shared file
//   --trace PATH       install a Telemetry for the whole bench and write a
//                      Chrome-trace JSON of its spans to PATH on exit
//   --metrics PATH     same install; write a Prometheus-style metric
//                      snapshot to PATH on exit (both flags also accept
//                      --flag=PATH). When either is given, the bench's
//                      BENCH_results.json entry gains a "telemetry" object.
//
// See EXPERIMENTS.md ("BENCH_results.json") for the schema and the baseline
// refresh workflow.
#ifndef THEMIS_BENCH_PERF_H_
#define THEMIS_BENCH_PERF_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace themis {
namespace bench {

/// \brief Records per-run perf metrics and merges them into a JSON file.
class PerfRecorder {
 public:
  /// Parses `--quick` and `--json PATH` from argv (unknown flags ignored).
  PerfRecorder(int argc, char** argv, std::string bench_name);
  /// Writes the merged JSON on destruction (when a path is configured).
  ~PerfRecorder();

  PerfRecorder(const PerfRecorder&) = delete;
  PerfRecorder& operator=(const PerfRecorder&) = delete;

  /// True when the binary should run its seconds-scale smoke configuration.
  bool quick() const { return quick_; }

  /// Telemetry installed by this recorder for the bench's lifetime, or
  /// null when neither --trace nor --metrics was given.
  telemetry::Telemetry* telemetry() const { return telemetry_.get(); }

  /// Starts timing one experiment run labelled `config`.
  void BeginRun(std::string config);
  /// Finishes the current run. `tuples_processed` drives the tuples/s
  /// throughput metric; pass 0 when the run has no tuple-count notion.
  void EndRun(uint64_t tuples_processed);

  /// Attaches a named simulated-domain metric (e.g. MTTR in milliseconds,
  /// dip depth) to the current run — or, after EndRun, to the run that just
  /// closed. Emitted as a `"metrics"` object on the run's JSON entry;
  /// check_regression.py gates ratios between configs with
  /// --max-metric-ratio. Deterministic metrics only: these are compared
  /// exactly across runs, unlike the wall-clock fields.
  void AddMetric(const std::string& name, double value);

 private:
  struct Run {
    std::string config;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    uint64_t tuples_processed = 0;
    uint64_t allocations = 0;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string bench_name_;
  bool quick_ = false;
  std::string json_path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::vector<Run> runs_;
  // Fixed-work CPU score measured at construction; the regression gate
  // divides throughput by it, cancelling machine-class and coarse host-load
  // differences between a results file and the committed baseline.
  double calib_ops_per_sec_ = 0.0;

  bool run_open_ = false;
  std::string open_config_;
  // Metrics added while a run is open, moved into it at EndRun.
  std::vector<std::pair<std::string, double>> pending_metrics_;
  std::chrono::steady_clock::time_point run_start_;
  double run_start_cpu_s_ = 0.0;
  uint64_t run_start_allocs_ = 0;
};

}  // namespace bench
}  // namespace themis

#endif  // THEMIS_BENCH_PERF_H_
