// Figure 6: correlation of the SIC metric with result correctness for the
// aggregate workload (AVG, COUNT, MAX) across five datasets.
//
// Method (§7.1): identical queries on one node with a RANDOM shedder; the
// degree of overload is swept by scaling node capacity. For each level we
// report the achieved mean SIC and the mean absolute relative error of the
// degraded results against a never-overloaded perfect run with identical
// (deterministic) source data. Expected shape: error decreases as SIC
// approaches 1; COUNT shows the strongest correlation (error ~ shed
// fraction), AVG/MAX the weakest on stationary synthetic data.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/perf.h"
#include "common/stats.h"
#include "metrics/reporter.h"

namespace themis {
namespace bench {
namespace {

constexpr int kQueries = 12;
constexpr double kSourceRate = 200.0;

// Per-tuple pipeline cost of the aggregate queries is ~1.1 us (receiver +
// aggregate shares); node saturation speed for the deployed load.
double SaturationSpeed() { return kQueries * kSourceRate * 1.3e-6; }

void RunOne(CorrelationQuery type, const char* type_name,
            PerfRecorder* perf) {
  Reporter reporter(std::string("Figure 6: ") + type_name +
                        " — SIC vs mean absolute error",
                    {"dataset", "mean_SIC", "mean_abs_error"});
  std::vector<Dataset> datasets = {Dataset::kGaussian, Dataset::kUniform,
                                   Dataset::kExponential, Dataset::kMixed,
                                   Dataset::kPlanetLab};
  std::vector<double> keep_levels = {0.15, 0.3, 0.5, 0.75, 1.5};
  SimDuration run_time = Seconds(40);
  if (perf->quick()) {
    datasets = {Dataset::kGaussian};
    keep_levels = {0.3, 1.5};
    run_time = Seconds(10);
  }

  for (Dataset d : datasets) {
    perf->BeginRun(std::string(type_name) + "/" + DatasetName(d));
    CorrelationRun perfect =
        RunCorrelation(type, d, kQueries, /*cpu_speed=*/0.0, run_time, 7);
    for (double keep : keep_levels) {
      CorrelationRun degraded = RunCorrelation(
          type, d, kQueries, SaturationSpeed() * keep, run_time, 7);
      std::vector<double> sics, errors;
      for (int q = 0; q < kQueries; ++q) {
        sics.push_back(degraded.queries[q].final_sic);
        auto pairs = AlignByTime(ScalarSeries(degraded.queries[q].records),
                                 ScalarSeries(perfect.queries[q].records));
        if (!pairs.empty()) errors.push_back(MeanAbsoluteError(pairs));
      }
      reporter.AddRow(DatasetName(d), {Mean(sics), Mean(errors)});
    }
    perf->EndRun(0);
  }
  reporter.Print();
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  using themis::bench::CorrelationQuery;
  themis::bench::PerfRecorder perf(argc, argv, "bench_fig06_sic_correlation");
  std::printf("Reproduces Figure 6 of the THEMIS paper (SIC correlation, "
              "aggregate workload).\n");
  themis::bench::RunOne(CorrelationQuery::kAvg, "AVG", &perf);
  if (!perf.quick()) {
    themis::bench::RunOne(CorrelationQuery::kCount, "COUNT", &perf);
    themis::bench::RunOne(CorrelationQuery::kMax, "MAX", &perf);
  }
  return 0;
}
