// Figure 6: correlation of the SIC metric with result correctness for the
// aggregate workload (AVG, COUNT, MAX) across five datasets.
//
// Method (§7.1): identical queries on one node with a RANDOM shedder; the
// degree of overload is swept by scaling node capacity. For each level we
// report the achieved mean SIC and the mean absolute relative error of the
// degraded results against a never-overloaded perfect run with identical
// (deterministic) source data. Expected shape: error decreases as SIC
// approaches 1; COUNT shows the strongest correlation (error ~ shed
// fraction), AVG/MAX the weakest on stationary synthetic data.
#include <cstdio>

#include "bench/harness.h"
#include "common/stats.h"
#include "metrics/reporter.h"

namespace themis {
namespace bench {
namespace {

constexpr int kQueries = 12;
constexpr double kSourceRate = 200.0;
const SimDuration kRunTime = Seconds(40);

// Per-tuple pipeline cost of the aggregate queries is ~1.1 us (receiver +
// aggregate shares); node saturation speed for the deployed load.
double SaturationSpeed() { return kQueries * kSourceRate * 1.3e-6; }

void RunOne(CorrelationQuery type, const char* type_name) {
  Reporter reporter(std::string("Figure 6: ") + type_name +
                        " — SIC vs mean absolute error",
                    {"dataset", "mean_SIC", "mean_abs_error"});
  const Dataset datasets[] = {Dataset::kGaussian, Dataset::kUniform,
                              Dataset::kExponential, Dataset::kMixed,
                              Dataset::kPlanetLab};
  const double keep_levels[] = {0.15, 0.3, 0.5, 0.75, 1.5};

  for (Dataset d : datasets) {
    CorrelationRun perfect =
        RunCorrelation(type, d, kQueries, /*cpu_speed=*/0.0, kRunTime, 7);
    for (double keep : keep_levels) {
      CorrelationRun degraded = RunCorrelation(
          type, d, kQueries, SaturationSpeed() * keep, kRunTime, 7);
      std::vector<double> sics, errors;
      for (int q = 0; q < kQueries; ++q) {
        sics.push_back(degraded.queries[q].final_sic);
        auto pairs = AlignByTime(ScalarSeries(degraded.queries[q].records),
                                 ScalarSeries(perfect.queries[q].records));
        if (!pairs.empty()) errors.push_back(MeanAbsoluteError(pairs));
      }
      reporter.AddRow(DatasetName(d), {Mean(sics), Mean(errors)});
    }
  }
  reporter.Print();
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main() {
  std::printf("Reproduces Figure 6 of the THEMIS paper (SIC correlation, "
              "aggregate workload).\n");
  themis::bench::RunOne(themis::bench::CorrelationQuery::kAvg, "AVG");
  themis::bench::RunOne(themis::bench::CorrelationQuery::kCount, "COUNT");
  themis::bench::RunOne(themis::bench::CorrelationQuery::kMax, "MAX");
  return 0;
}
