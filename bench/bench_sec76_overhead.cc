// §7.6: overhead of the BALANCE-SIC shedder — per-invocation execution time
// of the fair shedder vs the random baseline over realistic input buffers,
// plus the meta-data byte counts the paper reports (10-byte batch header,
// 30-byte coordinator update message).
//
// The paper measures 0.088 ms (fair) vs 0.079 ms (random) per batch, an 11%
// overhead; absolute numbers differ on other hardware but the ratio should
// stay small.
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "shedding/balance_sic_shedder.h"
#include "shedding/random_shedder.h"

namespace themis {
namespace {

// Builds an input buffer resembling a loaded node in the mixed workload:
// `queries` queries, several batches each, mixed sizes and SIC values.
std::deque<Batch> MakeBuffer(int queries, int batches_per_query, Rng* rng) {
  std::deque<Batch> ib;
  for (int q = 0; q < queries; ++q) {
    for (int b = 0; b < batches_per_query; ++b) {
      size_t n = static_cast<size_t>(rng->UniformInt(20, 80));
      std::vector<Tuple> tuples;
      tuples.reserve(n);
      double per_tuple = 1.0 / (10.0 * (1 + q % 5)) / 100.0;
      for (size_t i = 0; i < n; ++i) {
        tuples.push_back(Tuple(0, per_tuple, {Value(0.0)}));
      }
      Batch batch = MakeBatch(q, 0, 0, 0, std::move(tuples));
      batch.header.source = static_cast<SourceId>(q * 4 + b % 4);
      ib.push_back(std::move(batch));
    }
  }
  return ib;
}

std::map<QueryId, double> MakeQuerySic(int queries, Rng* rng) {
  std::map<QueryId, double> out;
  for (int q = 0; q < queries; ++q) out[q] = rng->Uniform(0.0, 0.6);
  return out;
}

void BM_BalanceSicShedder(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  Rng rng(1);
  std::deque<Batch> ib = MakeBuffer(queries, 8, &rng);
  auto qsic = MakeQuerySic(queries, &rng);
  size_t total = 0;
  for (const Batch& b : ib) total += b.size();

  BalanceSicShedder shedder{Rng(2)};
  ShedContext ctx;
  ctx.capacity_tuples = total / 4;
  ctx.query_sic = &qsic;
  for (auto _ : state) {
    auto keep = shedder.SelectBatchesToKeep(ib, ctx);
    benchmark::DoNotOptimize(keep);
  }
  state.counters["batches"] = static_cast<double>(ib.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ib.size()));
}
BENCHMARK(BM_BalanceSicShedder)->Arg(10)->Arg(50)->Arg(200);

void BM_RandomShedder(benchmark::State& state) {
  int queries = static_cast<int>(state.range(0));
  Rng rng(1);
  std::deque<Batch> ib = MakeBuffer(queries, 8, &rng);
  size_t total = 0;
  for (const Batch& b : ib) total += b.size();

  RandomShedder shedder{Rng(2)};
  ShedContext ctx;
  ctx.capacity_tuples = total / 4;
  for (auto _ : state) {
    auto keep = shedder.SelectBatchesToKeep(ib, ctx);
    benchmark::DoNotOptimize(keep);
  }
  state.counters["batches"] = static_cast<double>(ib.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ib.size()));
}
BENCHMARK(BM_RandomShedder)->Arg(10)->Arg(50)->Arg(200);

// Meta-data sizes the paper reports in §7.6 (constants of the design, not
// timed): asserts them at benchmark start-up via a custom reporter line.
void BM_MetadataBytes(benchmark::State& state) {
  for (auto _ : state) {
    int dummy = 0;
    benchmark::DoNotOptimize(dummy);
  }
  state.counters["sic_header_bytes_per_batch"] = 10;
  state.counters["coordinator_update_bytes"] = 30;
}
BENCHMARK(BM_MetadataBytes)->Iterations(1);

}  // namespace
}  // namespace themis

// Custom main instead of BENCHMARK_MAIN(): Google Benchmark aborts on
// unknown flags, so the harness-wide `--quick` / `--json PATH` arguments are
// stripped before Initialize(). Quick mode needs no further scaling — the
// default min_time already finishes in seconds.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(argc);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) continue;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;  // skip the path operand too
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
