// Data-plane microbenchmark: raw tuple throughput through one node, with no
// overload and no network, plus the steady-state allocation rate of the
// batch -> ingress-stamping -> window -> aggregate -> result pipeline. This
// is the purest regression signal for the zero-allocation data plane (Value
// scalars, inline tuple payloads, BatchPool recycling, slab event queue);
// the figure benches measure the same machinery under full simulations.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/perf.h"
#include "common/alloc_counter.h"
#include "node/node.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "shedding/random_shedder.h"
#include "sim/event_queue.h"

namespace themis {
namespace bench {
namespace {

// Swallows results; the microbench counts them and folds them into a digest
// so the row and columnar variants can be compared bit-for-bit.
class NullRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId, SimTime, const std::vector<Tuple>& r) override {
    results += r.size();
    for (const Tuple& t : r) {
      if (!t.values.empty()) value_digest += AsDouble(t.values[0]);
      sic_digest += t.sic;
    }
  }
  uint64_t results = 0;
  double value_digest = 0.0;
  double sic_digest = 0.0;
};

// Single-fragment AVG query: receiver -> avg(1s window) -> output.
std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src) {
  QueryBuilder b(q, "avg");
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

struct Outcome {
  uint64_t tuples = 0;
  uint64_t allocations = 0;
  uint64_t results = 0;
  double value_digest = 0.0;
  double sic_digest = 0.0;
  double wall_s = 0.0;
};

// Pushes `batches` batches of `batch_size` tuples through the node, driving
// the event queue to completion after each simulated batch interval. With a
// fast CPU there is no overload, so every tuple is processed. `columnar`
// selects the batch representation; results must be bit-identical either way
// (main() enforces it on the digests).
Outcome Drive(uint64_t batches, size_t batch_size, bool columnar = false) {
  EventQueue queue;
  NullRouter router;
  NodeOptions options;
  options.cpu_speed = 1000.0;  // never overloaded: pure data-plane path
  Node node(0, options, &queue, &router,
            std::make_unique<RandomShedder>(Rng(7)));
  auto graph = MakeAvgGraph(/*q=*/0, /*src=*/0);
  node.HostFragment(graph.get(), 0);
  node.Start();

  const SimDuration interval = Millis(10);
  Outcome out;
  uint64_t warmup = batches / 10;
  auto wall_start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < batches; ++i) {
    if (i == warmup) {
      // Pools, window buffers and the event slab are warm; what follows is
      // the steady state the zero-allocation design targets.
      out.allocations = AllocCounter::allocations();
      out.tuples = node.stats().tuples_processed;
      wall_start = std::chrono::steady_clock::now();
    }
    Batch b;
    if (columnar) {
      b = node.batch_pool()->AcquireColumnar();
      b.columnar->ReserveRows(batch_size);
    } else {
      b = node.batch_pool()->Acquire();
    }
    b.header.query_id = 0;
    b.header.dest_op = 0;
    b.header.dest_port = 0;
    b.header.source = 0;
    b.header.created = queue.now();
    if (columnar) {
      for (size_t t = 0; t < batch_size; ++t) {
        b.columnar->AppendRow(queue.now(), 0.0, static_cast<double>(t));
      }
    } else {
      for (size_t t = 0; t < batch_size; ++t) {
        Tuple& tup = b.tuples.emplace_back();
        tup.timestamp = queue.now();
        tup.values.push_back(static_cast<double>(t));
      }
    }
    node.Receive(std::move(b));
    queue.RunUntil(queue.now() + interval);
  }
  queue.RunUntil(queue.now() + Seconds(2));  // drain the last windows
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
  out.allocations = AllocCounter::allocations() - out.allocations;
  out.tuples = node.stats().tuples_processed - out.tuples;
  out.results = router.results;
  out.value_digest = router.value_digest;
  out.sic_digest = router.sic_digest;
  return out;
}

// Bitwise double comparison: parity means the same bits, not "close".
bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_dataplane");
  bool with_telemetry = false;
  bool columnar = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--with-telemetry") == 0) with_telemetry = true;
    if (std::strcmp(argv[i], "--columnar") == 0) columnar = true;
  }
  std::printf("Data-plane microbenchmark: single node, AVG pipeline, no "
              "overload.\n");

  const uint64_t batches = perf.quick() ? 60000 : 200000;
  Outcome row_out[2];
  size_t idx = 0;
  for (size_t batch_size : {8, 80}) {
    std::string config = "batch_size=" + std::to_string(batch_size);
    perf.BeginRun(config);
    Outcome out = Drive(batches, batch_size);
    perf.EndRun(out.tuples);
    row_out[idx++] = out;
    double per_tuple = out.tuples > 0 ? static_cast<double>(out.allocations) /
                                            static_cast<double>(out.tuples)
                                      : 0.0;
    std::printf("%-16s tuples=%-10llu steady-state allocs/tuple=%.4f%s\n",
                config.c_str(),
                static_cast<unsigned long long>(out.tuples), per_tuple,
                AllocCounter::active() ? "" : " (alloc counting inactive)");
  }

  // Opt-in columnar variant (the default stdout above stays byte-stable):
  // the same pipeline fed SoA batches. Beyond the speedup, this doubles as
  // an in-binary parity gate — result count and digests must match the row
  // runs bit-for-bit, or the bench fails.
  if (columnar) {
    std::printf("Columnar variant: SoA batches, same pipeline (results "
                "checked bit-for-bit against the row runs).\n");
    idx = 0;
    for (size_t batch_size : {8, 80}) {
      std::string config =
          "batch_size=" + std::to_string(batch_size) + "+columnar";
      perf.BeginRun(config);
      Outcome out = Drive(batches, batch_size, /*columnar=*/true);
      perf.EndRun(out.tuples);
      const Outcome& row = row_out[idx++];
      double per_tuple = out.tuples > 0
                             ? static_cast<double>(out.allocations) /
                                   static_cast<double>(out.tuples)
                             : 0.0;
      double speedup = out.wall_s > 0.0 ? row.wall_s / out.wall_s : 0.0;
      std::printf(
          "%-24s tuples=%-10llu steady-state allocs/tuple=%.4f "
          "speedup=%.2fx\n",
          config.c_str(), static_cast<unsigned long long>(out.tuples),
          per_tuple, speedup);
      if (out.results != row.results ||
          !SameBits(out.value_digest, row.value_digest) ||
          !SameBits(out.sic_digest, row.sic_digest)) {
        std::fprintf(stderr,
                     "PARITY MISMATCH %s: results %llu vs %llu, "
                     "value_digest %.17g vs %.17g, sic_digest %.17g vs "
                     "%.17g\n",
                     config.c_str(),
                     static_cast<unsigned long long>(out.results),
                     static_cast<unsigned long long>(row.results),
                     out.value_digest, row.value_digest, out.sic_digest,
                     row.sic_digest);
        return 1;
      }
    }
  }

  // Opt-in overhead probe (CI gates it within 5% of the plain run): the
  // same hot path with a Telemetry installed, so every per-batch accepted-
  // mass hook and shed-tick hook takes its enabled branch. Default
  // invocations skip this block entirely, keeping their stdout bytes
  // unchanged.
  if (with_telemetry) {
    std::unique_ptr<telemetry::Telemetry> local;
    if (telemetry::Get() == nullptr) {
      local = std::make_unique<telemetry::Telemetry>();
      telemetry::Install(local.get());
    }
    perf.BeginRun("batch_size=80+telemetry");
    Outcome out = Drive(batches, 80);
    perf.EndRun(out.tuples);
    if (local != nullptr) telemetry::Uninstall();
    std::printf("batch_size=80+telemetry tuples=%llu\n",
                static_cast<unsigned long long>(out.tuples));
  }
  return 0;
}
