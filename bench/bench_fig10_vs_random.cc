// Figure 10: BALANCE-SIC vs random shedding over an 18-node FSPS with
// ~2000 query fragments, sweeping fragments-per-query from 2 to 6 plus the
// mixed (random 1–6) configuration. Reports (a) Jain's index, (b) std of
// query SIC values, (c) mean SIC — for both policies.
//
// Expected shape: BALANCE-SIC dominates random on Jain (paper: 33% better
// in the mixed case), with lower std and higher mean.
//
// Also runs the DESIGN.md §5 ablation: --selection=fifo disables the
// max(x_SIC) batch ordering.
#include <cstdio>
#include <cstring>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig10_vs_random");
  bool fifo = argc > 1 && std::strcmp(argv[1], "--selection=fifo") == 0;
  std::printf("Reproduces Figure 10 of the THEMIS paper (BALANCE-SIC vs "
              "random, 18 nodes, ~2000 fragments)%s.\n",
              fifo ? " [ablation: FIFO selection]" : "");

  const int kTotalFragments = 600;  // scaled from the paper's ~2000
  Reporter reporter(
      "Figure 10: BALANCE-SIC vs random shedding",
      {"fragments", "jain_fair", "jain_random", "std_fair", "std_random",
       "mean_fair", "mean_random"});

  auto run = [&](int frag_min, int frag_max, const std::string& label) {
    double avg_frags = (frag_min + frag_max) / 2.0;
    int queries = static_cast<int>(kTotalFragments / avg_frags);
    MixResult results[2];
    for (int i = 0; i < 2; ++i) {
      MixConfig cfg;
      cfg.num_queries = queries;
      cfg.nodes = 18;
      cfg.fragments_min = frag_min;
      cfg.fragments_max = frag_max;
      cfg.sources_per_fragment = 2;
      cfg.source_rate = 25.0;
      cfg.overload_factor = 3.0;
      // Fragments land on uniformly random nodes: node loads are skewed
      // (characteristic C1), which is precisely where blind random shedding
      // becomes unfair across queries.
      cfg.placement = PlacementPolicy::kUniformRandom;
      cfg.policy =
          i == 0 ? SheddingPolicy::kBalanceSic : SheddingPolicy::kRandom;
      cfg.balance.prefer_high_sic = !fifo;
      cfg.warmup = Seconds(20);
      cfg.measure = Seconds(15);
      cfg.seed = 300 + frag_min * 10 + frag_max;
      if (perf.quick()) {
        cfg.num_queries = queries / 2;
        cfg.warmup = Seconds(8);
        cfg.measure = Seconds(8);
      }
      perf.BeginRun("frags=" + label + (i == 0 ? "/fair" : "/random"));
      results[i] = RunComplexMix(cfg);
      perf.EndRun(results[i].tuples_processed);
    }
    reporter.AddRow(label,
                    {results[0].jain, results[1].jain, results[0].std_sic,
                     results[1].std_sic, results[0].mean_sic,
                     results[1].mean_sic});
  };

  if (perf.quick()) {
    run(2, 2, "2");
  } else {
    for (int f = 2; f <= 6; ++f) run(f, f, std::to_string(f));
    run(1, 6, "mixed");
  }
  reporter.Print();
  return 0;
}
