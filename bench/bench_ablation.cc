// Ablation study of the design choices DESIGN.md calls out — §4b
// implementation refinements and Algorithm 1's max(x_SIC) rule — plus the
// extended shedding-policy comparison (tail-drop, head-drop, proportional).
//
// One fixed scenario (6 nodes, mixed complex workload, 3x overload), each
// knob toggled off individually. Expected: every ablation costs fairness
// (Jain) and/or mean SIC relative to the full configuration.
#include <cstdio>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

namespace themis {
namespace bench {
namespace {

MixConfig BaseConfig() {
  MixConfig cfg;
  cfg.num_queries = 80;
  cfg.nodes = 6;
  cfg.fragments_min = 1;
  cfg.fragments_max = 3;
  cfg.placement = PlacementPolicy::kUniformRandom;
  cfg.sources_per_fragment = 4;
  cfg.source_rate = 30.0;
  cfg.overload_factor = 6.0;
  cfg.warmup = Seconds(20);
  cfg.measure = Seconds(15);
  cfg.samples = 10;
  cfg.seed = 4242;
  return cfg;
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_ablation");
  std::printf("Ablations of the BALANCE-SIC implementation (DESIGN.md "
              "sections 4b/5) on a fixed 6-node mixed scenario.\n");

  Reporter reporter("Ablation study",
                    {"configuration", "jain", "mean_SIC", "std"});

  auto add = [&](const char* label, MixConfig cfg) {
    if (perf.quick()) {
      cfg.num_queries = 40;
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
      cfg.samples = 3;
    }
    perf.BeginRun(label);
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    reporter.AddRow(label, {r.jain, r.mean_sic, r.std_sic});
  };

  add("full (BALANCE-SIC)", BaseConfig());

  if (perf.quick()) {
    // Quick smoke: the full configuration plus one ablation and one
    // baseline policy exercise all code paths in seconds.
    MixConfig cfg = BaseConfig();
    cfg.balance.prefer_high_sic = false;
    add("no max(x_SIC) (FIFO selection)", cfg);
    cfg = BaseConfig();
    cfg.policy = SheddingPolicy::kRandom;
    add("policy: random", cfg);
    reporter.Print();
    return 0;
  }

  {
    MixConfig cfg = BaseConfig();
    cfg.balance.prefer_high_sic = false;
    add("no max(x_SIC) (FIFO selection)", cfg);
  }
  {
    MixConfig cfg = BaseConfig();
    cfg.balance.project_local_shedding = false;
    add("no local projection", cfg);
  }
  {
    MixConfig cfg = BaseConfig();
    cfg.balance.interleave_sources = false;
    add("no source interleaving", cfg);
  }
  {
    MixConfig cfg = BaseConfig();
    cfg.balance.window_group = 0;
    add("no window grouping", cfg);
  }
  {
    MixConfig cfg = BaseConfig();
    cfg.disseminate = false;
    add("no updateSIC dissemination", cfg);
  }

  // Extended policy comparison on the same scenario.
  for (SheddingPolicy policy :
       {SheddingPolicy::kRandom, SheddingPolicy::kDropNewest,
        SheddingPolicy::kDropOldest, SheddingPolicy::kProportional}) {
    MixConfig cfg = BaseConfig();
    cfg.policy = policy;
    add(("policy: " + SheddingPolicyName(policy)).c_str(), cfg);
  }

  reporter.Print();
  return 0;
}
