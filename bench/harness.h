// Shared experiment harness for the figure/table regeneration binaries.
//
// Scaling note (documented per experiment in EXPERIMENTS.md): simulated
// source rates and per-fragment source counts are scaled down from Table 2
// so that every figure regenerates in seconds of wall-clock time. The
// quantities the paper reports (SIC values, Jain's index, relative
// comparisons) are ratios of load to capacity and are preserved; the
// `overload_factor` knob below pins that ratio explicitly.
#ifndef THEMIS_BENCH_HARNESS_H_
#define THEMIS_BENCH_HARNESS_H_

#include <functional>
#include <map>
#include <vector>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "metrics/error_metrics.h"
#include "workload/workloads.h"

namespace themis {
namespace bench {

/// Configuration of one complex-workload deployment run.
struct MixConfig {
  int num_queries = 100;
  /// Fragments per query drawn uniformly from [fragments_min, fragments_max].
  int fragments_min = 1;
  int fragments_max = 1;
  int nodes = 1;
  /// Per-fragment sources for AVG-all; TOP-5 fragments use twice this (CPU +
  /// memory pairs) and COV always uses 2 — preserving the paper's 10/20/2
  /// heterogeneity at reduced scale. The heterogeneity matters: with
  /// identical per-query rates random shedding is fair by construction and
  /// the Fig. 10 comparison degenerates.
  int sources_per_fragment = 4;
  double source_rate = 50.0;
  int batches_per_sec = 5;
  Dataset dataset = Dataset::kPlanetLab;
  double burst_prob = 0.0;

  /// Desired aggregate-load / cluster-capacity ratio; node cpu_speed is
  /// derived from it. 1.0 = saturation, >1 = permanent overload (C2).
  double overload_factor = 3.0;

  SheddingPolicy policy = SheddingPolicy::kBalanceSic;
  BalanceSicOptions balance;
  bool disseminate = true;                ///< coordinator updateSIC on/off
  SimDuration shed_interval = Millis(250);
  SimDuration stw = Seconds(10);
  SimDuration link_latency = Millis(5);

  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  double zipf_s = 1.0;

  /// Fraction of queries built with `multi_fragments` fragments instead of 1
  /// (Fig. 11); negative disables and uses the uniform fragment draw above.
  double multi_fragment_ratio = -1.0;
  int multi_fragments = 3;

  SimDuration warmup = Seconds(20);
  SimDuration measure = Seconds(15);
  int samples = 6;                        ///< fairness samples over `measure`
  uint64_t seed = 42;
};

/// Aggregated outcome of one run. Per-query SIC values are first averaged
/// over the measurement window (the paper reports results over minutes of
/// execution); Jain/std are computed over those per-query means, so they
/// capture persistent (un)fairness rather than instantaneous batch noise.
struct MixResult {
  double mean_sic = 0.0;      ///< mean over queries of time-averaged SIC
  double jain = 0.0;          ///< Jain's index over per-query time means
  double std_sic = 0.0;       ///< std over per-query time means
  double temporal_std = 0.0;  ///< mean over queries of within-run SIC std
  uint64_t tuples_shed = 0;
  uint64_t tuples_processed = 0;
  double avg_capacity = 0.0;
};

/// Builds, deploys, runs and measures one complex-workload mix.
MixResult RunComplexMix(const MixConfig& config);

/// Derives the node cpu_speed that yields `overload_factor` given the
/// aggregate source tuple rate and an estimated per-tuple pipeline cost.
double CpuSpeedForOverload(double total_tuples_per_sec, int nodes,
                           double overload_factor);

/// Per-query result series captured from a correlation run.
struct QueryResultSeries {
  double final_sic = 0.0;
  std::vector<ResultRecord> records;
};

/// Outcome of one §7.1 correlation run (one query type, one dataset, one
/// overload level): per-query SIC and result series.
struct CorrelationRun {
  std::vector<QueryResultSeries> queries;
};

/// Which aggregate-workload query to run in a correlation experiment.
enum class CorrelationQuery { kAvg, kMax, kCount, kTop5, kCov };

/// Runs `num_queries` identical queries of the given type on one node with
/// RANDOM shedding (as §7.1 does) at the given cpu speed; cpu_speed <= 0
/// disables overload (perfect run).
CorrelationRun RunCorrelation(CorrelationQuery type, Dataset dataset,
                              int num_queries, double cpu_speed,
                              SimDuration run_time, uint64_t seed);

/// Extracts (time, field-0 value) pairs from a result series.
std::vector<TimedValue> ScalarSeries(const std::vector<ResultRecord>& records);

/// Groups TOP-K result records by emission time into ranked id lists
/// (records preserve the top-k operator's descending order).
std::map<SimTime, std::vector<int64_t>> IdListsByTime(
    const std::vector<ResultRecord>& records);

}  // namespace bench
}  // namespace themis

#endif  // THEMIS_BENCH_HARNESS_H_
