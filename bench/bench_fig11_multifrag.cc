// Figure 11: effect of multi-fragmentation — the ratio of three-fragment to
// single-fragment queries varies from 0.1 to 1.0 over 10 nodes at a constant
// total fragment count.
//
// Expected shape: fairness (Jain) improves as more queries span multiple
// nodes, because overlapping fragments propagate shedding information across
// the federation.
//
// Ablation (--no-coordinator): disables updateSIC dissemination, reproducing
// the Fig. 4 "without updateSIC(Q)" divergence.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig11_multifrag");
  bool no_coord = argc > 1 && std::strcmp(argv[1], "--no-coordinator") == 0;
  std::printf("Reproduces Figure 11 of the THEMIS paper (multi-fragment "
              "ratio)%s.\n",
              no_coord ? " [ablation: no updateSIC dissemination]" : "");

  const int kTotalFragments = 400;  // scaled from the paper's ~2000
  Reporter reporter("Figure 11: fairness vs ratio of 3-fragment queries",
                    {"ratio", "mean_SIC", "jain_index"});
  std::vector<double> ratios = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  if (perf.quick()) ratios = {0.4};
  for (double ratio : ratios) {
    // Total fragments constant: q * (r*3 + (1-r)*1) = kTotalFragments.
    int queries = static_cast<int>(kTotalFragments / (1.0 + 2.0 * ratio));
    MixConfig cfg;
    cfg.num_queries = queries;
    cfg.nodes = 10;
    cfg.multi_fragment_ratio = ratio;
    cfg.multi_fragments = 3;
    cfg.sources_per_fragment = 2;
    cfg.source_rate = 25.0;
    cfg.overload_factor = 3.0;
    cfg.disseminate = !no_coord;
    cfg.warmup = Seconds(20);
    cfg.measure = Seconds(15);
    cfg.seed = 400 + static_cast<int>(ratio * 10);
    if (perf.quick()) {
      cfg.num_queries = queries / 2;
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
    }
    perf.BeginRun("ratio=" + std::to_string(ratio));
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", ratio);
    reporter.AddRow(label, {r.mean_sic, r.jain});
  }
  reporter.Print();
  return 0;
}
