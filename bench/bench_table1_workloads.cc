// Table 1: the query workloads. Prints, for each query of the aggregate and
// complex workloads, its fragment structure, operator count per fragment and
// source counts — the quantities Table 1 reports (e.g. 13 ops per AVG-all
// fragment, 29 for TOP-5 incl. separate window operators, 5 for COV).
#include <cstdio>

#include "bench/perf.h"
#include "metrics/reporter.h"
#include "workload/workloads.h"

int main(int argc, char** argv) {
  using namespace themis;
  // Table 1 is structural (no simulation); quick and full runs coincide.
  bench::PerfRecorder perf(argc, argv, "bench_table1_workloads");
  perf.BeginRun("build-workloads");
  std::printf("Reproduces Table 1 of the THEMIS paper (query workloads).\n");
  std::printf("Note: the paper counts time-window operators separately; this "
              "implementation embeds windows in each operator, so TOP-5 "
              "shows 27 ops/fragment instead of 29.\n");

  Reporter reporter("Table 1: workload query shapes",
                    {"query", "fragments", "sources", "ops_per_fragment",
                     "total_ops"});
  WorkloadFactory f(1);

  auto report = [&](const char* name, const BuiltQuery& built) {
    const QueryGraph& g = *built.graph;
    size_t ops_frag0 = g.fragment_ops(g.fragment_ids().front()).size();
    reporter.AddRow(name, {static_cast<double>(g.num_fragments()),
                           static_cast<double>(g.num_sources()),
                           static_cast<double>(ops_frag0),
                           static_cast<double>(g.num_operators())});
  };

  report("AVG", f.MakeAvg(1));
  report("MAX", f.MakeMax(2));
  report("COUNT", f.MakeCount(3));

  ComplexQueryOptions avg_all;
  avg_all.fragments = 3;
  avg_all.sources_per_fragment = 10;
  report("AVG-all(3 frags)", f.MakeAvgAll(4, avg_all));

  ComplexQueryOptions top5;
  top5.fragments = 2;
  top5.sources_per_fragment = 20;
  report("TOP-5(2 frags)", f.MakeTop5(5, top5));

  ComplexQueryOptions cov;
  cov.fragments = 2;
  report("COV(2 frags)", f.MakeCov(6, cov));

  reporter.Print();
  perf.EndRun(0);
  return 0;
}
