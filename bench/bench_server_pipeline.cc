// Wall-clock benchmark of the real-time server pipeline (themis_server).
// Three configurations:
//
//   throughput     closed-loop ingest through a 3-operator AVG query on
//                  live worker threads, source-backpressured by the IB
//                  watermarks. The regression gate pins the calibration-
//                  normalized tuples/s via bench/baseline.json; the repo
//                  targets >= 2M wall-clock tuples/s on an unloaded host.
//   overload-*     open-loop 3x overload with a CPU-burning receiver, once
//                  under BALANCE-SIC and once under random shedding.
//                  Reports Jain's index over per-query accepted SIC
//                  (report-only: wall-clock runs are not deterministic).
//   oracle         deterministic self-check: the server in modeled/paced
//                  mode on a manual clock must reproduce the discrete-event
//                  Node bit for bit on a pinned overloaded scenario. Any
//                  mismatch fails the bench (exit 1).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench/perf.h"
#include "node/node.h"
#include "runtime/clock.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "server/oracle_driver.h"
#include "server/server_pipeline.h"
#include "shedding/balance_sic_shedder.h"
#include "shedding/random_shedder.h"
#include "sim/event_queue.h"

namespace themis {
namespace bench {
namespace {

std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src) {
  QueryBuilder b(q, "avg");
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

Batch SourceBatch(QueryId q, SourceId src, SimTime now, size_t n) {
  std::vector<Tuple> ts;
  ts.reserve(n);
  for (size_t i = 0; i < n; ++i) ts.push_back(Tuple(now, 0.0, {Value(1.0)}));
  Batch b = MakeBatch(q, /*op=*/0, /*port=*/0, now, std::move(ts));
  b.header.source = src;
  return b;
}

// ---------------------------------------------------------------------
// Config 1: closed-loop throughput.
// ---------------------------------------------------------------------

void RunThroughput(PerfRecorder& perf, bool quick,
                   const char* config = "throughput") {
  const uint64_t kBatchTuples = 1024;
  const uint64_t kBatches = quick ? 2000 : 10000;

  WallClock clock;
  ServerOptions opts;
  opts.workers = 4;
  opts.ib_high_watermark = 48 * 1024;
  opts.ib_low_watermark = 16 * 1024;
  ServerPipeline p(opts, &clock, std::make_unique<BalanceSicShedder>(Rng(1)));
  auto graph = MakeAvgGraph(1, /*src=*/10);
  p.AddQuery(graph.get());
  p.Start();

  perf.BeginRun(config);
  for (uint64_t i = 0; i < kBatches; ++i) {
    p.Push(SourceBatch(1, 10, clock.NowMicros(), kBatchTuples));
  }
  // Drain: wait until everything admitted so far has been executed.
  while (p.ib_tuples() > 0) std::this_thread::yield();
  p.WaitIdle();
  uint64_t processed = p.stats().tuples_processed;
  perf.EndRun(processed);
  p.Stop();

  std::printf("%s: %llu of %llu tuples processed\n", config,
              static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(kBatches * kBatchTuples));
}

// ---------------------------------------------------------------------
// Config 2: overload fairness, BALANCE-SIC vs random.
// ---------------------------------------------------------------------

// Receiver that burns real CPU per ingested tuple: the wall-clock stand-in
// for an expensive user operator, driving genuine (measured) overload.
class SpinReceiverOp : public ReceiverOp {
 public:
  explicit SpinReceiverOp(double spin_us) : spin_us_(spin_us) {}
  void Ingest(const std::vector<Tuple>& tuples, int port) override {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(static_cast<int64_t>(
                     spin_us_ * 1e3 * static_cast<double>(tuples.size())));
    while (std::chrono::steady_clock::now() < until) {
    }
    ReceiverOp::Ingest(tuples, port);
  }

 private:
  double spin_us_;
};

std::unique_ptr<QueryGraph> MakeSpinGraph(QueryId q, SourceId src,
                                          double spin_us) {
  QueryBuilder b(q, "spin-avg");
  OperatorId recv = b.Add(std::make_unique<SpinReceiverOp>(spin_us), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

double Jain(const std::vector<double>& xs) {
  double sum = 0.0, sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

void RunOverload(PerfRecorder& perf, bool quick, bool balance) {
  // Three steady queries plus one that bursts 4x through the middle of the
  // measurement window. The burst outruns the query's trailing rate
  // estimate, so its tuples carry stale (inflated) SIC and it floods the
  // input buffer; blind random shedding keeps tuples in proportion and
  // hands the bursty query an outsized accepted-SIC share, while
  // BALANCE-SIC water-fills it back to the equal share (the paper's §7.5
  // burst story, on the wall clock).
  const int kQueries = 4;
  const double kSteadyRate = 12.0;  // batches/s per query
  const int kBurstQuery = 3;
  const double kBurstFactor = 4.0;
  const size_t kBatchTuples = 500;
  const double kSpinUs = 160.0;  // ~12.5k tuples/s drain on 2 workers
  const double kWarmSeconds = quick ? 0.75 : 2.0;
  const double kSeconds = quick ? 1.5 : 4.0;

  WallClock clock;
  ServerOptions opts;
  opts.workers = 2;
  std::unique_ptr<Shedder> shedder;
  if (balance) {
    shedder = std::make_unique<BalanceSicShedder>(Rng(7));
  } else {
    shedder = std::make_unique<RandomShedder>(Rng(7));
  }
  ServerPipeline p(opts, &clock, std::move(shedder));
  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kQueries; ++q) {
    graphs.push_back(MakeSpinGraph(q, 10 + q, kSpinUs));
    p.AddQuery(graphs.back().get());
  }
  p.Start();

  // Merged open-loop schedule: (due microsecond offset, query). The warmup
  // phase (steady rates, not measured) converges the per-source rate
  // estimators; the bursty query then runs at kBurstFactor x through the
  // middle third of the measurement window.
  const int64_t warm_us = static_cast<int64_t>(kWarmSeconds * 1e6);
  const int64_t end_us = warm_us + static_cast<int64_t>(kSeconds * 1e6);
  std::vector<std::pair<int64_t, int>> schedule;
  for (int q = 0; q < kQueries; ++q) {
    const int64_t period = static_cast<int64_t>(1e6 / kSteadyRate);
    const int64_t burst_period =
        static_cast<int64_t>(1e6 / (kSteadyRate * kBurstFactor));
    const int64_t burst_from = warm_us + (end_us - warm_us) / 3;
    const int64_t burst_to = warm_us + 2 * (end_us - warm_us) / 3;
    int64_t t = period;
    while (t < end_us) {
      schedule.emplace_back(t, q);
      bool bursting =
          q == kBurstQuery && t >= burst_from && t < burst_to;
      t += bursting ? burst_period : period;
    }
  }
  std::sort(schedule.begin(), schedule.end());

  perf.BeginRun(balance ? "overload-balance-sic" : "overload-random");
  auto start = std::chrono::steady_clock::now();
  std::vector<double> warm_sic(kQueries, 0.0);
  bool warm_taken = false;
  for (const auto& [due, q] : schedule) {
    if (!warm_taken && due >= warm_us) {
      for (int i = 0; i < kQueries; ++i) warm_sic[i] = p.AcceptedSicTotal(i);
      warm_taken = true;
    }
    std::this_thread::sleep_until(start + std::chrono::microseconds(due));
    p.Push(SourceBatch(q, 10 + q, clock.NowMicros(), kBatchTuples));
  }
  // Let the final shed interval elapse so late arrivals get adjudicated.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Processed-tuple throughput here is a function of shed decisions and
  // thread interleaving (1.5x run-to-run swings are normal), so keep these
  // configs out of the throughput gate: 0 = "no tuple-count notion". The
  // fairness metrics below are the runs' actual output.
  perf.EndRun(0);

  std::vector<double> accepted;
  for (int q = 0; q < kQueries; ++q) {
    accepted.push_back(p.AcceptedSicTotal(q) - warm_sic[q]);
  }
  p.Stop();

  double jain = Jain(accepted);
  double mean = 0.0;
  for (double a : accepted) mean += a;
  mean /= kQueries;
  perf.AddMetric("jain", jain);
  perf.AddMetric("mean_accepted_sic", mean);
  std::printf("%s: jain=%.4f mean_accepted_sic=%.4f shed=%llu accepted=[",
              balance ? "overload-balance-sic" : "overload-random", jain,
              mean, static_cast<unsigned long long>(p.stats().tuples_shed));
  for (int q = 0; q < kQueries; ++q) {
    std::printf("%s%.4f", q ? " " : "", accepted[q]);
  }
  std::printf("]\n");
}

// ---------------------------------------------------------------------
// Config 3: oracle self-check against the discrete-event Node.
// ---------------------------------------------------------------------

// Pinned scenario; see tests/server_oracle_test.cc for why these constants
// make DES/server equality exact (integral modeled work, per-batch work
// under the shed interval, arrival periods coprime with the tick grid).
constexpr double kOracleCpuSpeed = 0.01;
constexpr int kOracleQueries = 4;
constexpr SimDuration kOraclePeriods[kOracleQueries] = {Millis(13), Millis(17),
                                                        Millis(19), Millis(23)};

std::vector<TimedBatch> MakeOracleArrivals(SimTime horizon) {
  std::vector<TimedBatch> arrivals;
  for (SimTime t = 0; t <= horizon; t += Millis(1)) {
    for (int q = 0; q < kOracleQueries; ++q) {
      if (t % kOraclePeriods[q] != 0) continue;
      arrivals.push_back(TimedBatch{t, SourceBatch(q, 10 + q, t, 100)});
    }
  }
  return arrivals;
}

class NullRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId, SimTime, const std::vector<Tuple>&) override {}
};

int RunOracle(PerfRecorder& perf, bool quick) {
  const SimTime kHorizon = quick ? Millis(1600) : Millis(3200);

  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kOracleQueries; ++q) {
    graphs.push_back(MakeAvgGraph(q, 10 + q));
  }

  perf.BeginRun("oracle");
  EventQueue queue;
  NullRouter router;
  NodeOptions node_options;
  node_options.cpu_speed = kOracleCpuSpeed;
  Node node(0, node_options, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) node.HostFragment(g.get(), 0);
  node.Start();
  std::vector<TimedBatch> des_arrivals = MakeOracleArrivals(kHorizon);
  for (TimedBatch& a : des_arrivals) {
    Batch* b = &a.batch;
    queue.Schedule(a.at, [&node, b] { node.Receive(std::move(*b)); });
  }
  queue.RunUntil(kHorizon);

  ManualClock clock;
  ServerOptions opts;
  opts.workers = 0;
  opts.cpu_speed = kOracleCpuSpeed;
  opts.accounting = CostAccounting::kModeled;
  opts.pace_admission = true;
  opts.disseminate_sic = false;
  opts.channel_capacity = 1 << 20;
  ServerPipeline pipeline(opts, &clock,
                          std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) pipeline.AddQuery(g.get());
  pipeline.Start();
  std::vector<TimedBatch> arrivals = MakeOracleArrivals(kHorizon);
  DriveDeterministic(&pipeline, &clock, &arrivals, kHorizon);
  pipeline.Stop();
  perf.EndRun(pipeline.stats().tuples_processed);

  int mismatches = 0;
  for (int q = 0; q < kOracleQueries; ++q) {
    if (pipeline.AcceptedTuplesTotal(q) != node.AcceptedTuplesTotal(q) ||
        pipeline.AcceptedSicTotal(q) != node.AcceptedSicTotal(q)) {
      std::fprintf(stderr,
                   "oracle MISMATCH query %d: server %llu tuples "
                   "(sic %.17g) vs DES %llu tuples (sic %.17g)\n",
                   q,
                   static_cast<unsigned long long>(
                       pipeline.AcceptedTuplesTotal(q)),
                   pipeline.AcceptedSicTotal(q),
                   static_cast<unsigned long long>(node.AcceptedTuplesTotal(q)),
                   node.AcceptedSicTotal(q));
      ++mismatches;
    }
  }
  if (pipeline.stats().tuples_processed != node.stats().tuples_processed ||
      pipeline.stats().tuples_shed != node.stats().tuples_shed ||
      pipeline.stats().shed_invocations != node.stats().shed_invocations) {
    std::fprintf(stderr,
                 "oracle MISMATCH totals: server %llu/%llu/%llu vs "
                 "DES %llu/%llu/%llu (processed/shed/invocations)\n",
                 static_cast<unsigned long long>(
                     pipeline.stats().tuples_processed),
                 static_cast<unsigned long long>(pipeline.stats().tuples_shed),
                 static_cast<unsigned long long>(
                     pipeline.stats().shed_invocations),
                 static_cast<unsigned long long>(
                     node.stats().tuples_processed),
                 static_cast<unsigned long long>(node.stats().tuples_shed),
                 static_cast<unsigned long long>(
                     node.stats().shed_invocations));
    ++mismatches;
  }
  if (node.stats().tuples_shed == 0) {
    std::fprintf(stderr, "oracle scenario did not shed: not a valid check\n");
    ++mismatches;
  }
  perf.AddMetric("oracle_match", mismatches == 0 ? 1.0 : 0.0);
  std::printf("oracle: %s (processed=%llu shed=%llu)\n",
              mismatches == 0 ? "server == DES, bit for bit" : "MISMATCH",
              static_cast<unsigned long long>(node.stats().tuples_processed),
              static_cast<unsigned long long>(node.stats().tuples_shed));
  return mismatches;
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_server_pipeline");
  bool with_telemetry = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--with-telemetry") == 0) with_telemetry = true;
  }
  std::printf("Real-time server pipeline: wall-clock throughput, overload "
              "fairness, DES oracle check.\n");

  RunThroughput(perf, perf.quick());
  // Opt-in overhead probe (CI gates it within 5% of the plain run): the
  // same closed-loop drive with a Telemetry installed, so the per-stage
  // wall-clock histograms and per-batch accepted hooks take their enabled
  // branches. Default invocations skip this, keeping stdout unchanged.
  if (with_telemetry) {
    std::unique_ptr<themis::telemetry::Telemetry> local;
    if (themis::telemetry::Get() == nullptr) {
      local = std::make_unique<themis::telemetry::Telemetry>();
      themis::telemetry::Install(local.get());
    }
    RunThroughput(perf, perf.quick(), "throughput+telemetry");
    if (local != nullptr) themis::telemetry::Uninstall();
  }
  RunOverload(perf, perf.quick(), /*balance=*/true);
  RunOverload(perf, perf.quick(), /*balance=*/false);
  int mismatches = RunOracle(perf, perf.quick());
  if (mismatches > 0) {
    std::fprintf(stderr, "bench_server_pipeline: oracle check FAILED\n");
    return 1;
  }
  return 0;
}
