// Figure 9: effect of the shedding interval (25–250 ms) on BALANCE-SIC
// fairness. 200 complex queries with 1–3 fragments over 6 nodes.
//
// Expected shape: mean SIC and Jain's index are stable across intervals —
// the algorithm converges regardless of the shedder invocation period.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/reporter.h"

int main(int argc, char** argv) {
  using namespace themis;
  using namespace themis::bench;
  PerfRecorder perf(argc, argv, "bench_fig09_interval");
  std::printf("Reproduces Figure 9 of the THEMIS paper (shedding "
              "interval).\n");

  Reporter reporter("Figure 9: fairness vs shedding interval",
                    {"interval_ms", "mean_SIC", "jain_index"});
  std::vector<int> intervals = {25, 50, 100, 150, 200, 250};
  if (perf.quick()) intervals = {250};
  for (int interval_ms : intervals) {
    MixConfig cfg;
    cfg.num_queries = 200;
    cfg.nodes = 6;
    cfg.fragments_min = 1;
    cfg.fragments_max = 3;
    cfg.sources_per_fragment = 2;
    cfg.source_rate = 30.0;
    cfg.overload_factor = 3.0;
    cfg.shed_interval = Millis(interval_ms);
    cfg.warmup = Seconds(20);
    cfg.measure = Seconds(15);
    cfg.seed = 200 + interval_ms;
    if (perf.quick()) {
      cfg.num_queries = 120;
      cfg.warmup = Seconds(8);
      cfg.measure = Seconds(8);
    }
    perf.BeginRun("interval_ms=" + std::to_string(interval_ms));
    MixResult r = RunComplexMix(cfg);
    perf.EndRun(r.tuples_processed);
    reporter.AddRow(std::to_string(interval_ms), {r.mean_sic, r.jain});
  }
  reporter.Print();
  return 0;
}
