#include "bench/perf.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/alloc_counter.h"

namespace themis {
namespace bench {

namespace {

long PeakRssKb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return ru.ru_maxrss;  // KiB on Linux
}

// Process CPU time (user + system). Throughput per CPU second is far less
// sensitive to host contention than wall-clock, so the regression gate
// prefers it.
double CpuSeconds() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

// Fixed-work CPU calibration: a short xorshift loop whose rate captures how
// fast this machine is right now. Reported next to the throughput numbers so
// the regression gate can compare machine-normalized values.
double CalibrateOpsPerSec() {
  constexpr uint64_t kIters = 60'000'000;  // ~50 ms on current hardware
  uint64_t x = 88172645463325252ull;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kIters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  auto end = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(end - start).count();
  // Fold the result into the observable output so the loop cannot be
  // optimized away.
  if (x == 0) std::fprintf(stderr, "calibration degenerated\n");
  return secs > 0.0 ? static_cast<double>(kIters) / secs : 0.0;
}

// Minimal JSON string escaping for config labels (quotes and backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

PerfRecorder::PerfRecorder(int argc, char** argv, std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick_ = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path_ = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path_ = argv[++i];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path_ = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path_ = argv[++i];
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path_ = argv[i] + 10;
    }
  }
  if (!trace_path_.empty() || !metrics_path_.empty()) {
    telemetry_ = std::make_unique<telemetry::Telemetry>();
    telemetry::Install(telemetry_.get());
  }
  if (json_path_.empty()) {
    if (const char* env = std::getenv("THEMIS_BENCH_JSON"); env != nullptr) {
      json_path_ = env;
    }
  }
  // Arm the counting allocator (linked into the bench harness) so per-run
  // allocation counts are meaningful.
  ForceLinkAllocCounter();
  if (!json_path_.empty()) calib_ops_per_sec_ = CalibrateOpsPerSec();
}

void PerfRecorder::BeginRun(std::string config) {
  open_config_ = std::move(config);
  run_open_ = true;
  run_start_allocs_ = AllocCounter::allocations();
  run_start_cpu_s_ = CpuSeconds();
  run_start_ = std::chrono::steady_clock::now();
}

void PerfRecorder::AddMetric(const std::string& name, double value) {
  if (run_open_) {
    // Attach on EndRun: the Run object does not exist yet.
    pending_metrics_.emplace_back(name, value);
    return;
  }
  if (!runs_.empty()) runs_.back().metrics.emplace_back(name, value);
}

void PerfRecorder::EndRun(uint64_t tuples_processed) {
  auto end = std::chrono::steady_clock::now();
  double end_cpu_s = CpuSeconds();
  if (!run_open_) return;
  run_open_ = false;
  Run run;
  run.config = std::move(open_config_);
  run.wall_s = std::chrono::duration<double>(end - run_start_).count();
  run.cpu_s = end_cpu_s - run_start_cpu_s_;
  run.tuples_processed = tuples_processed;
  run.allocations = AllocCounter::allocations() - run_start_allocs_;
  run.metrics = std::move(pending_metrics_);
  pending_metrics_.clear();
  runs_.push_back(std::move(run));
}

PerfRecorder::~PerfRecorder() {
  std::string telemetry_json;
  if (telemetry_ != nullptr) {
    // Benches destroy the recorder after their runs finish and their
    // threads join, so the tracer/registry are quiescent here.
    telemetry::Uninstall();
    if (!trace_path_.empty()) {
      std::string trace;
      telemetry_->tracer().ExportChromeTrace(&trace);
      std::ofstream out(trace_path_, std::ios::trunc);
      if (out) {
        out << trace << "\n";
      } else {
        std::fprintf(stderr, "perf: cannot write %s\n", trace_path_.c_str());
      }
    }
    if (!metrics_path_.empty()) {
      std::string prom;
      telemetry_->metrics().ExportProm(&prom);
      std::ofstream out(metrics_path_, std::ios::trunc);
      if (out) {
        out << prom;
      } else {
        std::fprintf(stderr, "perf: cannot write %s\n",
                     metrics_path_.c_str());
      }
    }
    telemetry_->metrics().ExportJson(&telemetry_json);
  }

  if (json_path_.empty()) return;

  // One entry (line) per bench; the file is a JSON array. Re-writing keeps
  // every other bench's line, so sequentially running the bench suite into
  // one path yields the merged BENCH_results.json.
  std::ostringstream entry;
  char calib[64];
  std::snprintf(calib, sizeof(calib), "%.0f", calib_ops_per_sec_);
  entry << "{\"bench\":\"" << JsonEscape(bench_name_) << "\""
        << ",\"quick\":" << (quick_ ? "true" : "false")
        << ",\"peak_rss_kb\":" << PeakRssKb()
        << ",\"calib_ops_per_sec\":" << calib << ",\"alloc_counting\":"
        << (AllocCounter::active() ? "true" : "false") << ",\"runs\":[";
  for (size_t i = 0; i < runs_.size(); ++i) {
    const Run& r = runs_[i];
    double tps = r.wall_s > 0.0
                     ? static_cast<double>(r.tuples_processed) / r.wall_s
                     : 0.0;
    double apt = r.tuples_processed > 0
                     ? static_cast<double>(r.allocations) /
                           static_cast<double>(r.tuples_processed)
                     : 0.0;
    double cpu_tps = r.cpu_s > 0.0
                         ? static_cast<double>(r.tuples_processed) / r.cpu_s
                         : 0.0;
    if (i > 0) entry << ",";
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "{\"config\":\"%s\",\"wall_s\":%.6f,\"cpu_s\":%.6f,"
                  "\"tuples_processed\":%llu,\"tuples_per_sec\":%.1f,"
                  "\"tuples_per_cpu_sec\":%.1f,"
                  "\"allocations\":%llu,\"allocs_per_tuple\":%.4f",
                  JsonEscape(r.config).c_str(), r.wall_s, r.cpu_s,
                  static_cast<unsigned long long>(r.tuples_processed), tps,
                  cpu_tps,
                  static_cast<unsigned long long>(r.allocations), apt);
    entry << buf;
    if (!r.metrics.empty()) {
      entry << ",\"metrics\":{";
      for (size_t m = 0; m < r.metrics.size(); ++m) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%.6f",
                      m > 0 ? "," : "", JsonEscape(r.metrics[m].first).c_str(),
                      r.metrics[m].second);
        entry << buf;
      }
      entry << "}";
    }
    entry << "}";
  }
  entry << "]";
  if (!telemetry_json.empty()) {
    entry << ",\"telemetry\":" << telemetry_json;
  }
  entry << "}";

  // Merge: keep existing entries of other benches (the writer emits exactly
  // one entry per line, so a line-based merge is sufficient).
  std::vector<std::string> kept;
  {
    std::ifstream in(json_path_);
    std::string line;
    const std::string self_tag = "{\"bench\":\"" + JsonEscape(bench_name_) +
                                 "\"";
    while (std::getline(in, line)) {
      if (line.empty() || line == "[" || line == "]") continue;
      std::string body = line;
      if (!body.empty() && body.back() == ',') body.pop_back();
      if (body.rfind(self_tag, 0) == 0) continue;  // replaced below
      if (body.rfind("{\"bench\":\"", 0) != 0) continue;  // junk
      kept.push_back(body);
    }
  }
  kept.push_back(entry.str());

  std::ofstream out(json_path_, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "perf: cannot write %s\n", json_path_.c_str());
    return;
  }
  out << "[\n";
  for (size_t i = 0; i < kept.size(); ++i) {
    out << kept[i] << (i + 1 < kept.size() ? ",\n" : "\n");
  }
  out << "]\n";
}

}  // namespace bench
}  // namespace themis
