// §7.5: comparison against related work.
//
// (1) FIT [34]: the simple two-node set-up of their evaluation — 60 AVG-all
//     queries of two fragments with all source-connected operators
//     co-located. Solving their weighted-throughput LP shows the unfairness
//     the paper reports: a few queries keep all input, most are starved.
// (2) Zhao et al. [44]: the same simple set-up solved with log utilities
//     yields a fair allocation; a complex 60-query/4-node deployment is
//     less fair than BALANCE-SIC (paper: Jain 0.87 vs 0.97).
#include <cstdio>

#include "bench/harness.h"
#include "bench/perf.h"
#include "metrics/jain.h"
#include "metrics/reporter.h"
#include "solver/fit_baseline.h"
#include "solver/network_utility.h"

namespace themis {
namespace bench {
namespace {

// 60 two-fragment AVG-all queries on 2 nodes, leaf fragments on node 0,
// roots on node 1 (FIT assumes identical layouts). `cost_spread` controls
// per-tuple cost heterogeneity: FIT needs realistic spread to exhibit its
// cheapest-first starvation; the Zhao comparison uses near-identical costs
// (the paper's 60 identical AVG-all queries).
std::vector<FitQuery> SimpleSetup(Rng* rng, double cost_spread) {
  std::vector<FitQuery> queries(60);
  for (size_t q = 0; q < queries.size(); ++q) {
    queries[q].weight = 1.0;
    queries[q].input_rate = 10 * 150.0;  // 10 sources at 150 t/s
    double leaf_cost = 1.0e-5 * (1.0 + cost_spread * rng->NextDouble());
    double root_cost = 2.0e-6;
    queries[q].cost_per_node = {leaf_cost, root_cost};
  }
  return queries;
}

// Leaf-node capacity: demand averages ~1.8 cpu-sec/sec, so this is a heavy
// (~15x) overload, matching the paper's constantly overloaded regime.
const std::vector<double> kSimpleCapacity = {0.12, 1.0};

void RunFitComparison() {
  Rng rng(1);
  auto queries = SimpleSetup(&rng, /*cost_spread=*/2.0);
  auto fit = SolveFit(queries, kSimpleCapacity);
  if (!fit.ok()) {
    std::printf("FIT solve failed: %s\n", fit.status().ToString().c_str());
    return;
  }
  int full = 0, partial = 0, starved = 0;
  for (double x : fit->keep_fraction) {
    if (x > 0.999) {
      ++full;
    } else if (x > 1e-6) {
      ++partial;
    } else {
      ++starved;
    }
  }
  Reporter reporter("Sec 7.5: FIT [34] throughput-max allocation (60 AVG-all "
                    "queries, 2 nodes)",
                    {"metric", "value"});
  reporter.AddRow("queries_kept_fully", {static_cast<double>(full)});
  reporter.AddRow("queries_kept_partially", {static_cast<double>(partial)});
  reporter.AddRow("queries_fully_starved", {static_cast<double>(starved)});
  reporter.AddRow("jain_of_keep_fractions", {JainIndex(fit->keep_fraction)});
  reporter.Print();
  std::printf("(Paper: 3 queries process everything, 1 partially, the rest "
              "discard all input — clearly unfair.)\n");
}

void RunZhaoSimple() {
  Rng rng(1);
  auto queries = SimpleSetup(&rng, /*cost_spread=*/0.05);
  auto num = SolveLogUtility(queries, kSimpleCapacity);
  if (!num.ok()) {
    std::printf("NUM solve failed: %s\n", num.status().ToString().c_str());
    return;
  }
  Reporter reporter("Sec 7.5: Zhao [44] log-utility allocation, simple set-up",
                    {"metric", "value"});
  reporter.AddRow("jain_of_keep_fractions", {JainIndex(num->keep_fraction)});
  reporter.AddRow("jain_of_normalized_utilities",
                  {JainIndex(num->normalized_utility)});
  reporter.Print();
  std::printf("(Paper: the simple set-up is fair under [44], matching "
              "BALANCE-SIC.)\n");
}

void RunComplexComparison(PerfRecorder* perf) {
  // Complex deployment: 20 AVG-all (3 fragments), 20 COV and 20 TOP-5
  // (2 fragments each) with fragments randomly placed on 4 nodes.
  Rng rng(3);
  std::vector<FitQuery> queries(60);
  for (size_t q = 0; q < queries.size(); ++q) {
    queries[q].weight = 1.0;
    queries[q].cost_per_node.assign(4, 0.0);
    int fragments;
    double rate_per_fragment;
    double cost_scale;
    if (q < 20) {  // AVG-all
      fragments = 3;
      rate_per_fragment = 10 * 150.0;
      cost_scale = 1.0e-5;
    } else if (q < 40) {  // COV
      fragments = 2;
      rate_per_fragment = 2 * 150.0;
      cost_scale = 2.5e-5;
    } else {  // TOP-5
      fragments = 2;
      rate_per_fragment = 20 * 150.0;
      cost_scale = 2.0e-5;
    }
    queries[q].input_rate = rate_per_fragment * fragments;
    for (int f = 0; f < fragments; ++f) {
      int node = static_cast<int>(rng.UniformInt(0, 3));
      queries[q].cost_per_node[node] +=
          cost_scale * (1.0 + 0.3 * rng.NextDouble()) / fragments;
    }
  }
  std::vector<double> capacity(4, 1.0);

  auto num = SolveLogUtility(queries, capacity);
  double zhao_jain = num.ok() ? JainIndex(num->normalized_utility) : 0.0;

  // BALANCE-SIC on the equivalent simulated deployment.
  MixConfig cfg;
  cfg.num_queries = 60;
  cfg.nodes = 4;
  cfg.fragments_min = 2;
  cfg.fragments_max = 3;
  cfg.placement = PlacementPolicy::kUniformRandom;
  cfg.sources_per_fragment = 4;
  cfg.source_rate = 30.0;
  cfg.overload_factor = 2.5;
  cfg.warmup = Seconds(20);
  cfg.measure = Seconds(15);
  cfg.seed = 75;
  if (perf->quick()) {
    cfg.warmup = Seconds(8);
    cfg.measure = Seconds(8);
  }
  perf->BeginRun("complex-vs-zhao");
  MixResult balance = RunComplexMix(cfg);
  perf->EndRun(balance.tuples_processed);

  Reporter reporter("Sec 7.5: complex deployment, Zhao [44] vs BALANCE-SIC",
                    {"approach", "jain_index"});
  reporter.AddRow("zhao_log_utility", {zhao_jain});
  reporter.AddRow("balance_sic", {balance.jain});
  reporter.Print();
  std::printf("(Paper: 0.87 for [44] vs 0.97 for BALANCE-SIC.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace themis

int main(int argc, char** argv) {
  themis::bench::PerfRecorder perf(argc, argv, "bench_sec75_related_work");
  std::printf("Reproduces the Sec 7.5 related-work comparison of the THEMIS "
              "paper.\n");
  perf.BeginRun("solvers");
  themis::bench::RunFitComparison();
  themis::bench::RunZhaoSimple();
  perf.EndRun(0);
  themis::bench::RunComplexComparison(&perf);
  return 0;
}
