// Custom (user-defined) operators — the property §4 is built around: THEMIS
// treats queries as black boxes, so SIC propagation and BALANCE-SIC fair
// shedding work for operators the system has never seen.
//
//   $ ./build/examples/custom_operator
//
// Defines an exponentially-weighted anomaly-score operator by subclassing
// WindowedOperator. The base class applies Eq. (3) automatically: the
// operator only computes payloads.
#include <cmath>
#include <cstdio>
#include <memory>

#include "federation/fsps.h"
#include "runtime/operator.h"
#include "runtime/operators/receiver.h"
#include "runtime/query_graph.h"
#include "workload/sources.h"

namespace {

using namespace themis;

// Emits, once per window, an anomaly score: |window mean - long-run EWMA|
// normalised by the running deviation. Stateful across windows — exactly
// the kind of user-defined operator semantic shedding schemes cannot model,
// and SIC handles for free.
class AnomalyScoreOp : public WindowedOperator {
 public:
  explicit AnomalyScoreOp(WindowSpec spec, double alpha = 0.1)
      : WindowedOperator("anomaly", spec, /*cost_us_per_tuple=*/1.2),
        alpha_(alpha) {}

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override {
    if (pane.tuples.empty()) return;
    double sum = 0.0;
    for (const Tuple& t : pane.tuples) sum += AsDouble(t.values[0]);
    double mean = sum / static_cast<double>(pane.tuples.size());

    if (!initialised_) {
      level_ = mean;
      deviation_ = 1.0;
      initialised_ = true;
    }
    double score = std::abs(mean - level_) / std::max(deviation_, 1e-9);
    deviation_ = alpha_ * std::abs(mean - level_) + (1 - alpha_) * deviation_;
    level_ = alpha_ * mean + (1 - alpha_) * level_;

    Tuple result;
    result.values.push_back(score);
    out->push_back(std::move(result));  // SIC assigned by the base (Eq. 3)
  }

 private:
  double alpha_;
  double level_ = 0.0;
  double deviation_ = 1.0;
  bool initialised_ = false;
};

}  // namespace

int main() {
  std::printf("Custom operator demo: anomaly scoring with automatic SIC "
              "propagation.\n\n");

  FspsOptions opts;
  opts.seed = 5;
  opts.node.cpu_speed = 0.002;  // overloaded: shedding will happen
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  NodeId node = fsps.AddNode();

  // Several identical anomaly queries — under overload, BALANCE-SIC must
  // treat the custom operator like any other black box.
  const int kQueries = 8;
  Rng rng(9);
  for (QueryId q = 0; q < kQueries; ++q) {
    QueryBuilder b(q, "anomaly");
    OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
    OperatorId anomaly = b.Add(
        std::make_unique<AnomalyScoreOp>(WindowSpec::TumblingTime(kSecond)), 0);
    OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
    SourceId src = 1000 + q;
    b.Connect(recv, anomaly).Connect(anomaly, out).BindSource(src, recv);
    b.SetRoot(out);
    auto graph = b.Build();
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    if (!fsps.Deploy(std::move(graph).TakeValue(), {{0, node}}).ok()) return 1;

    SourceModel model;
    model.tuples_per_sec = 300.0;
    model.dataset = Dataset::kPlanetLab;  // drifting signal -> anomalies
    if (!fsps.AttachSources(q, {{src, model}}).ok()) return 1;
  }

  fsps.RunFor(Seconds(30));

  std::printf("%-8s %-10s %-14s %s\n", "query", "SIC", "result tuples",
              "last anomaly score");
  for (QueryId q = 0; q < kQueries; ++q) {
    const auto& results = fsps.coordinator(q)->results();
    double last = results.empty() ? 0.0 : AsDouble(results.back().values[0]);
    std::printf("%-8d %-10.3f %-14zu %.3f\n", q, fsps.QuerySic(q),
                results.size(), last);
  }
  std::printf("\ntuples shed: %llu — shedding balanced the custom queries "
              "without knowing their semantics.\n",
              static_cast<unsigned long long>(
                  fsps.TotalNodeStats().tuples_shed));
  return 0;
}
