// Urban micro-climate monitoring — the paper's Figure 1 scenario: an FSPS
// spanning three autonomous sites (Rome, Paris, Mexico) connected by
// wide-area links, processing environmental sensor streams for different
// user groups.
//
//   $ ./build/examples/urban_microclimate
//
// Unlike the other examples this one builds query graphs by hand with
// QueryBuilder, showing the operator-level public API: a federated "highest
// carbon-monoxide readings" query whose fragments span two sites, and a
// local covariance query between temperature and airflow.
#include <cstdio>
#include <memory>

#include "federation/fsps.h"
#include "metrics/jain.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/covariance.h"
#include "runtime/operators/filter_map.h"
#include "runtime/operators/receiver.h"
#include "runtime/operators/topk.h"
#include "runtime/query_graph.h"
#include "workload/sources.h"
#include "workload/workloads.h"

namespace {

using namespace themis;

// "The 10 highest carbon-monoxide concentration measurements on highways in
// Mexico every minute" — scaled to 1 s windows and top-3 for the demo.
// Fragment 0 (Mexico) filters highway sensors and pre-ranks locally;
// fragment 1 (Paris, where the issuing agency runs) merges and emits.
std::unique_ptr<QueryGraph> BuildCoQuery(QueryId id,
                                         const std::vector<SourceId>& sensors) {
  QueryBuilder b(id, "top-co");
  WindowSpec win = WindowSpec::TumblingTime(kSecond);
  const FragmentId mexico = 0, paris = 1;

  OperatorId merge = b.Add(std::make_unique<UnionOp>(), mexico);
  // Highway sensors report (sensor id, co ppm); keep readings above a floor.
  OperatorId highway_filter = b.Add(
      std::make_unique<FilterOp>(
          [](const Tuple& t) {
            return t.values.size() > 1 && AsDouble(t.values[1]) > 5.0;
          },
          win),
      mexico);
  OperatorId local_rank = b.Add(
      std::make_unique<TopKOp>(3, /*value_field=*/1, /*key_field=*/0, win),
      mexico);
  OperatorId global_rank = b.Add(
      std::make_unique<TopKOp>(3, /*value_field=*/1, /*key_field=*/0, win),
      paris);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), paris);
  b.Connect(merge, highway_filter)
      .Connect(highway_filter, local_rank)
      .Connect(local_rank, global_rank)
      .Connect(global_rank, out)
      .SetRoot(out);
  for (SourceId s : sensors) {
    OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), mexico);
    b.Connect(recv, merge).BindSource(s, recv);
  }
  auto graph = b.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return nullptr;
  }
  return std::move(graph).TakeValue();
}

// "Covariance between temperature and airflow in Paris" — single fragment.
std::unique_ptr<QueryGraph> BuildCovQuery(QueryId id, SourceId temperature,
                                          SourceId airflow) {
  QueryBuilder b(id, "temp-airflow-cov");
  WindowSpec win = WindowSpec::TumblingTime(kSecond);
  const FragmentId paris = 0;
  OperatorId t_recv = b.Add(std::make_unique<ReceiverOp>(), paris);
  OperatorId a_recv = b.Add(std::make_unique<ReceiverOp>(), paris);
  OperatorId cov = b.Add(std::make_unique<CovarianceOp>(0, 0, win), paris);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), paris);
  b.Connect(t_recv, cov, /*port=*/0)
      .Connect(a_recv, cov, /*port=*/1)
      .Connect(cov, out)
      .BindSource(temperature, t_recv)
      .BindSource(airflow, a_recv)
      .SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

// Sensor payload: (sensor id, reading). CO sensors hover around `mean` ppm.
SourceModel SensorModel(int64_t sensor, double mean, double rate, Rng rng) {
  SourceModel m;
  m.tuples_per_sec = rate;
  m.batches_per_sec = 5;
  auto gen = std::make_shared<Rng>(rng);
  m.payload = [sensor, mean, gen](SimTime) -> ValueList {
    return {Value(sensor), Value(std::max(0.0, gen->Gaussian(mean, mean / 3)))};
  };
  // Rush hour: 10% of seconds the sensors report at 10x the rate.
  m.burst_prob = 0.1;
  return m;
}

}  // namespace

int main() {
  std::printf("Urban micro-climate FSPS: sites Rome(0), Paris(1), Mexico(2) "
              "over 50 ms WAN links.\n\n");

  FspsOptions opts;
  opts.default_link_latency = Millis(50);  // intercontinental links
  opts.source_link_latency = Millis(5);    // sensors reach their local site
  opts.node.cpu_speed = 0.0015;            // sites are resource-starved (C2)
  opts.seed = 3;
  Fsps fsps(opts);
  NodeId rome = fsps.AddNode();
  NodeId paris = fsps.AddNode();
  NodeId mexico = fsps.AddNode();
  (void)rome;

  Rng rng(17);
  // Federated CO query: 8 highway sensors in Mexico, result in Paris.
  std::vector<SourceId> co_sensors;
  std::map<SourceId, SourceModel> co_models;
  for (SourceId s = 0; s < 8; ++s) {
    co_sensors.push_back(s);
    co_models[s] = SensorModel(s, /*mean ppm=*/8.0, /*rate=*/120.0, rng.Fork());
  }
  auto co_query = BuildCoQuery(1, co_sensors);
  if (co_query == nullptr) return 1;
  if (!fsps.Deploy(std::move(co_query), {{0, mexico}, {1, paris}}).ok()) {
    return 1;
  }
  if (!fsps.AttachSources(1, co_models).ok()) return 1;

  // Local Paris covariance query between two sensors.
  SourceId temp = 100, airflow = 101;
  auto cov_query = BuildCovQuery(2, temp, airflow);
  std::map<SourceId, SourceModel> cov_models = {
      {temp, SensorModel(0, 20.0, 200.0, rng.Fork())},
      {airflow, SensorModel(1, 35.0, 200.0, rng.Fork())},
  };
  if (!fsps.Deploy(std::move(cov_query), {{0, paris}}).ok()) return 1;
  if (!fsps.AttachSources(2, cov_models).ok()) return 1;

  // A batch of local Mexican aggregate queries competing for the same site.
  WorkloadFactory factory(23);
  for (QueryId q = 10; q < 22; ++q) {
    AggregateQueryOptions ao;
    ao.source_rate = 150.0;
    BuiltQuery built = factory.MakeAvg(q, ao);
    if (!fsps.Deploy(std::move(built.graph), {{0, mexico}}).ok()) return 1;
    if (!fsps.AttachSources(q, built.sources).ok()) return 1;
  }

  for (int minute = 1; minute <= 3; ++minute) {
    fsps.RunFor(Seconds(20));
    auto sics = fsps.AllQuerySics();
    std::printf("t=%2ds  federated-CO=%.3f  paris-cov=%.3f  "
                "mexico-local(mean of 12)=%.3f  Jain=%.3f\n",
                minute * 20, fsps.QuerySic(1), fsps.QuerySic(2),
                [&] {
                  double m = 0;
                  for (QueryId q = 10; q < 22; ++q) m += fsps.QuerySic(q);
                  return m / 12;
                }(),
                themis::JainIndex(sics));
  }

  auto totals = fsps.TotalNodeStats();
  std::printf("\nshed %llu of %llu received tuples; the federated query is "
              "not starved by Mexico's local load.\n",
              static_cast<unsigned long long>(totals.tuples_shed),
              static_cast<unsigned long long>(totals.tuples_received));
  return 0;
}
