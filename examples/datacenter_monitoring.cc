// Data-centre monitoring under overload — the paper's complex workload
// (Table 1) on a federated deployment, comparing BALANCE-SIC against random
// shedding.
//
//   $ ./build/examples/datacenter_monitoring
//
// Deploys a mix of AVG-all, TOP-5 and COV health-monitoring queries over a
// 6-node federation that is ~3x overloaded, and shows how the two policies
// distribute the pain: BALANCE-SIC equalises result SIC across queries,
// random shedding lets single-fragment queries crowd out federated ones.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "metrics/jain.h"
#include "workload/workloads.h"

namespace {

using namespace themis;

struct RunOutcome {
  std::vector<double> sics;        // per query, time-averaged
  std::vector<std::string> label;  // query kind + fragment count
};

RunOutcome RunWith(SheddingPolicy policy) {
  FspsOptions opts;
  opts.policy = policy;
  opts.seed = 42;
  opts.node.cpu_speed = 0.0012;  // ~3x overloaded for this workload
  Fsps fsps(opts);
  const int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) fsps.AddNode();

  WorkloadFactory factory(7);
  Rng place_rng(11);
  const int kQueries = 36;
  RunOutcome outcome;
  for (QueryId q = 0; q < kQueries; ++q) {
    ComplexQueryOptions co;
    co.fragments = 1 + (q % 3);  // 1-3 fragments
    ComplexKind kind = static_cast<ComplexKind>(q % 3);
    co.sources_per_fragment = kind == ComplexKind::kTop5 ? 8 : 4;
    co.source_rate = 50.0;
    BuiltQuery built = factory.MakeComplex(kind, q, co);
    outcome.label.push_back(ComplexKindName(kind) + "/" +
                            std::to_string(co.fragments) + "f");
    auto placement =
        PlaceFragments(*built.graph, fsps.node_ids(),
                       PlacementPolicy::kUniformRandom, 0.0, &place_rng);
    if (!fsps.Deploy(std::move(built.graph), placement).ok()) return outcome;
    if (!fsps.AttachSources(q, built.sources).ok()) return outcome;
  }

  // Warm up, then time-average each query's SIC over 10 samples.
  fsps.RunFor(Seconds(20));
  outcome.sics.assign(kQueries, 0.0);
  const int kSamples = 10;
  for (int s = 0; s < kSamples; ++s) {
    fsps.RunFor(Millis(1500));
    auto now_sics = fsps.AllQuerySics();
    for (int q = 0; q < kQueries; ++q) {
      outcome.sics[q] += now_sics[q] / kSamples;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf("Data-centre monitoring: 36 queries (AVG-all/TOP-5/COV, 1-3 "
              "fragments) on 6 nodes, ~3x overload.\n\n");

  RunOutcome fair = RunWith(SheddingPolicy::kBalanceSic);
  RunOutcome random = RunWith(SheddingPolicy::kRandom);

  std::printf("%-12s %12s %12s\n", "query", "BALANCE-SIC", "random");
  for (size_t q = 0; q < fair.sics.size(); ++q) {
    std::printf("%-12s %12.3f %12.3f\n", fair.label[q].c_str(), fair.sics[q],
                random.sics[q]);
  }
  std::printf("\n%-12s %12.3f %12.3f\n", "Jain index",
              themis::JainIndex(fair.sics), themis::JainIndex(random.sics));
  auto minmax_fair = std::minmax_element(fair.sics.begin(), fair.sics.end());
  auto minmax_rand =
      std::minmax_element(random.sics.begin(), random.sics.end());
  std::printf("%-12s %6.3f-%-6.3f %6.3f-%-6.3f\n", "SIC range",
              *minmax_fair.first, *minmax_fair.second, *minmax_rand.first,
              *minmax_rand.second);
  std::printf("\nBALANCE-SIC keeps every query near the common water level; "
              "random shedding\nlets locally-cheap queries win and starves "
              "federated multi-fragment ones.\n");
  return 0;
}
