// Quickstart: deploy one aggregate query on a single-node THEMIS deployment,
// run it under light load, and read back its result SIC (Eq. 4).
//
//   $ ./build/examples/quickstart
//
// Walks through the three steps every THEMIS program performs:
//   1. build an Fsps (the simulated federation) and add nodes,
//   2. build queries (here via the Table 1 workload factory) and deploy
//      them with a fragment placement,
//   3. attach sources and run simulated time.
#include <cstdio>

#include "federation/fsps.h"
#include "workload/workloads.h"

int main() {
  using namespace themis;

  // 1. A federation with a single processing node. Default options follow
  //    the paper: 250 ms shedding interval, 10 s source time window,
  //    BALANCE-SIC shedding policy.
  Fsps fsps;
  NodeId node = fsps.AddNode();

  // 2. An AVG query (Table 1): one source at 400 tuples/sec, averaged over
  //    1-second windows. Single fragment, placed on our node.
  WorkloadFactory factory(/*seed=*/1);
  BuiltQuery query = factory.MakeAvg(/*query id=*/1);
  std::map<FragmentId, NodeId> placement = {{0, node}};
  Status st = fsps.Deploy(std::move(query.graph), placement);
  if (!st.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Attach the query's source and run 30 simulated seconds.
  st = fsps.AttachSources(1, query.sources);
  if (!st.ok()) {
    std::fprintf(stderr, "sources failed: %s\n", st.ToString().c_str());
    return 1;
  }
  fsps.RunFor(Seconds(30));

  // The node is underloaded, so no tuples were shed and the query's source
  // information content is ~1: every source tuple of the last STW
  // contributed to the result.
  std::printf("query SIC after 30 s: %.3f (1.0 = perfect processing)\n",
              fsps.QuerySic(1));
  std::printf("tuples processed: %llu, tuples shed: %llu\n",
              static_cast<unsigned long long>(
                  fsps.TotalNodeStats().tuples_processed),
              static_cast<unsigned long long>(
                  fsps.TotalNodeStats().tuples_shed));
  return 0;
}
