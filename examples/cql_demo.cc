// CQL front-end demo: the Table 1 queries written verbatim in the paper's
// CQL-like syntax, compiled and executed on an overloaded node.
//
//   $ ./build/examples/cql_demo
#include <cstdio>
#include <memory>

#include "federation/fsps.h"
#include "metrics/jain.h"
#include "query/compiler.h"
#include "workload/sources.h"

int main() {
  using namespace themis;
  std::printf("Compiling Table 1 queries from CQL text and running them "
              "under overload.\n\n");

  QueryCompiler compiler;
  compiler.RegisterStream("Src", Schema::SingleValue());
  compiler.RegisterStream("S1", Schema::SingleValue());
  compiler.RegisterStream("S2", Schema::SingleValue());

  const char* statements[] = {
      "Select Avg(Src.v) From Src[Range 1 sec]",
      "Select Max(Src.v) From Src[Range 1 sec]",
      "Select Count(Src.v) From Src[Range 1 sec] Having Src.v >= 50",
      "Select Cov(S1.v, S2.v) From S1[Range 1 sec], S2[Range 1 sec]",
  };

  FspsOptions opts;
  opts.seed = 12;
  opts.node.cpu_speed = 0.0008;  // force shedding
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  NodeId node = fsps.AddNode();

  SourceId next_source = 0;
  for (QueryId q = 0; q < 4; ++q) {
    auto compiled = compiler.CompileString(q, statements[q], &next_source);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    std::map<FragmentId, NodeId> placement;
    for (FragmentId f : compiled->graph->fragment_ids()) placement[f] = node;
    if (!fsps.Deploy(std::move(compiled->graph), placement).ok()) return 1;

    SourceModel model;
    model.tuples_per_sec = 200;
    model.dataset = Dataset::kGaussian;
    if (!fsps.AttachSources(q, {}, model).ok()) return 1;
  }

  fsps.RunFor(Seconds(30));

  std::printf("%-70s %-7s %s\n", "query", "SIC", "last result");
  for (QueryId q = 0; q < 4; ++q) {
    const auto& results = fsps.coordinator(q)->results();
    double last = results.empty() ? 0.0 : AsDouble(results.back().values[0]);
    std::printf("%-70s %-7.3f %.2f\n", statements[q], fsps.QuerySic(q), last);
  }
  std::printf("\nJain's index across the four queries: %.3f "
              "(shed %llu tuples)\n",
              JainIndex(fsps.AllQuerySics()),
              static_cast<unsigned long long>(
                  fsps.TotalNodeStats().tuples_shed));
  return 0;
}
