// Dynamic-federation churn tests: node crash/restore mid-run with in-flight
// batches, coordinator-driven re-placement of orphaned fragments, deferred
// link-latency edits, lookahead re-derivation on the sharded engine, and
// the churn scenario generator's invariants. Mirrors the mid-flight
// Undeploy tests in lifecycle_test.cc: everything in flight must drain
// without leaks (the ASan job covers this file) or pooled-batch
// double-recycles.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "federation/churn_federation.h"
#include "federation/fsps.h"
#include "workload/churn_scenario.h"
#include "workload/workloads.h"

namespace themis {
namespace {

// Two nodes over a fat WAN pipe: with 800 ms links (source links included)
// and ~10 source batches/sec per node there are *always* deliveries in
// flight towards each node, so a crash is guaranteed to race them.
class ChurnTest : public ::testing::Test {
 protected:
  ChurnTest() : factory_(9) {
    FspsOptions opts;
    opts.seed = 77;
    opts.default_link_latency = Millis(800);
    opts.source_link_latency = Millis(800);
    fsps_ = std::make_unique<Fsps>(opts);
    node0_ = fsps_->AddNode();
    node1_ = fsps_->AddNode();
  }

  // Deploys a two-fragment COV query across both nodes.
  Status DeployCov(QueryId q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    BuiltQuery built = factory_.MakeCov(q, co);
    std::map<FragmentId, NodeId> placement = {{0, node0_}, {1, node1_}};
    THEMIS_RETURN_NOT_OK(fsps_->Deploy(std::move(built.graph), placement));
    return fsps_->AttachSources(q, built.sources);
  }

  WorkloadFactory factory_;
  std::unique_ptr<Fsps> fsps_;
  NodeId node0_ = 0, node1_ = 0;
};

TEST_F(ChurnTest, CrashUnknownNodeIsNotFound) {
  EXPECT_TRUE(fsps_->CrashNode(42).IsNotFound());
  EXPECT_TRUE(fsps_->RestoreNode(42).IsNotFound());
}

TEST_F(ChurnTest, DoubleCrashAndDoubleRestoreAreRejected) {
  ASSERT_TRUE(fsps_->CrashNode(node1_).ok());
  EXPECT_TRUE(fsps_->CrashNode(node1_).IsFailedPrecondition());
  ASSERT_TRUE(fsps_->RestoreNode(node1_).ok());
  EXPECT_TRUE(fsps_->RestoreNode(node1_).IsFailedPrecondition());
}

TEST_F(ChurnTest, LiveNodeIdsExcludesCrashed) {
  ASSERT_TRUE(fsps_->CrashNode(node0_).ok());
  EXPECT_EQ(fsps_->live_node_ids(), (std::vector<NodeId>{node1_}));
  EXPECT_FALSE(fsps_->node_alive(node0_));
  EXPECT_TRUE(fsps_->node_alive(node1_));
  ASSERT_TRUE(fsps_->RestoreNode(node0_).ok());
  EXPECT_EQ(fsps_->live_node_ids().size(), 2u);
}

TEST_F(ChurnTest, CrashWithInFlightBatchesReplacesAndDrains) {
  ASSERT_TRUE(DeployCov(1).ok());
  // Stop mid-interval so batches, shed timers and dissemination messages
  // are all strictly in flight towards node1 when it dies.
  fsps_->RunFor(Millis(5130));
  ASSERT_TRUE(fsps_->CrashNode(node1_).ok());

  // The orphaned fragment re-placed onto the only live node: the query
  // survives, co-located (the distinct-node guarantee yields to a 1-node
  // live set).
  EXPECT_EQ(fsps_->query_ids(), (std::vector<QueryId>{1}));
  EXPECT_EQ(fsps_->churn_stats().replaced_fragments, 1u);
  EXPECT_EQ(fsps_->churn_stats().dropped_queries, 0u);
  EXPECT_EQ(fsps_->node(node1_)->input_buffer().num_batches(), 0u);
  EXPECT_TRUE(fsps_->node(node1_)->HostedQueries().empty());

  // Everything in flight (>= 800 ms of WAN deliveries) drains; arrivals at
  // the dead node are dropped at ingress and recycled, never processed.
  uint64_t results_before = fsps_->coordinator(1)->result_tuples();
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->node(node1_)->stats().batches_dropped_dead, 0u);
  EXPECT_GT(fsps_->coordinator(1)->result_tuples(), results_before);
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
  // The dead node does nothing after the crash.
  EXPECT_EQ(fsps_->node(node1_)->input_buffer().num_batches(), 0u);
}

TEST_F(ChurnTest, CrashOfCoordinatorHomeMovesIt) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Millis(3370));
  NodeId home = fsps_->coordinator(1)->home();
  ASSERT_TRUE(fsps_->CrashNode(home).ok());
  NodeId survivor = home == node0_ ? node1_ : node0_;
  EXPECT_EQ(fsps_->coordinator(1)->home(), survivor);
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
}

TEST_F(ChurnTest, CrashDropsQueryWhenNoLiveCandidates) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Millis(4210));
  ASSERT_TRUE(fsps_->CrashNode(node0_).ok());
  // node1 is the only live node left; crashing it strands the query with
  // no candidate host, forcing a departure.
  ASSERT_TRUE(fsps_->CrashNode(node1_).ok());
  EXPECT_TRUE(fsps_->query_ids().empty());
  EXPECT_EQ(fsps_->churn_stats().dropped_queries, 1u);
  // The wire drains quietly: no sources, no dissemination, no processing.
  fsps_->RunFor(Seconds(3));
  uint64_t messages_after_drain = fsps_->network()->messages_sent();
  fsps_->RunFor(Seconds(10));
  EXPECT_EQ(fsps_->network()->messages_sent(), messages_after_drain);
}

TEST_F(ChurnTest, RestoredNodeRejoinsEmptyAndHostsNewQueries) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(5));
  ASSERT_TRUE(fsps_->CrashNode(node1_).ok());
  fsps_->RunFor(Seconds(5));
  ASSERT_TRUE(fsps_->RestoreNode(node1_).ok());
  EXPECT_TRUE(fsps_->node(node1_)->HostedQueries().empty());
  // A fresh query can span both nodes again.
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Seconds(15));
  EXPECT_GT(fsps_->coordinator(2)->result_tuples(), 0u);
  EXPECT_GT(fsps_->node(node1_)->stats().batches_processed, 0u);
}

TEST_F(ChurnTest, DeployOnCrashedNodeIsRejected) {
  ASSERT_TRUE(fsps_->CrashNode(node1_).ok());
  ComplexQueryOptions co;
  co.fragments = 2;
  BuiltQuery built = factory_.MakeCov(3, co);
  std::map<FragmentId, NodeId> placement = {{0, node0_}, {1, node1_}};
  EXPECT_TRUE(
      fsps_->Deploy(std::move(built.graph), placement).IsInvalidArgument());
}

TEST_F(ChurnTest, SetLinkLatencyValidates) {
  Status self = fsps_->SetLinkLatency(node0_, node0_, Millis(5));
  EXPECT_TRUE(self.IsInvalidArgument());
  Status unknown = fsps_->SetLinkLatency(node0_, 99, Millis(5));
  EXPECT_TRUE(unknown.IsInvalidArgument());
  Status negative = fsps_->SetLinkLatency(node0_, node1_, -1);
  EXPECT_TRUE(negative.IsInvalidArgument());
  EXPECT_TRUE(fsps_->SetLinkLatency(node0_, node1_, Millis(5)).ok());
  EXPECT_TRUE(fsps_->SetLinkLatency(kInvalidId, node1_, Millis(2)).ok());
}

TEST_F(ChurnTest, LinkEditDefersToNextRunBoundary) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(2));
  ASSERT_TRUE(fsps_->SetLinkLatency(node0_, node1_, Millis(100)).ok());
  // Queued, not applied: the wire still runs at the constructor default.
  EXPECT_EQ(fsps_->network()->Latency(node0_, node1_), Millis(800));
  fsps_->RunFor(Seconds(1));
  EXPECT_EQ(fsps_->network()->Latency(node0_, node1_), Millis(100));
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
}

// Sharded churn: four nodes on two shards. Crash re-placement stays on the
// crashed node's shard and the epoch width follows the mutated topology.
class ShardedChurnTest : public ::testing::Test {
 protected:
  ShardedChurnTest() {
    FspsOptions opts;
    opts.seed = 77;
    opts.shards = 2;
    opts.default_link_latency = Millis(50);
    fsps_ = std::make_unique<Fsps>(opts);
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(*fsps_->AddNode(opts.node, i / 2));  // 0,1 | 2,3
    }
  }

  std::unique_ptr<Fsps> fsps_;
  std::vector<NodeId> nodes_;
};

TEST_F(ShardedChurnTest, LookaheadFollowsLinkDriftAndCrashes) {
  // Tightest cross-shard link: (1, 2) at 20 ms; the rest default to 50 ms.
  ASSERT_TRUE(fsps_->network()->SetLatency(1, 2, Millis(20)).ok());
  fsps_->RunFor(Millis(100));
  EXPECT_EQ(fsps_->engine()->lookahead(), Millis(20));

  // Drift the tight link tighter; the epoch narrows at the next boundary.
  ASSERT_TRUE(fsps_->SetLinkLatency(1, 2, Millis(10)).ok());
  fsps_->RunFor(Millis(100));
  EXPECT_EQ(fsps_->engine()->lookahead(), Millis(10));

  // Crash an endpoint of the tight link: its links carry no traffic, so
  // the epoch widens back to the 50 ms default.
  ASSERT_TRUE(fsps_->CrashNode(2).ok());
  fsps_->RunFor(Millis(100));
  EXPECT_EQ(fsps_->engine()->lookahead(), Millis(50));

  // Restore: the 10 ms link constrains the epoch again.
  ASSERT_TRUE(fsps_->RestoreNode(2).ok());
  fsps_->RunFor(Millis(100));
  EXPECT_EQ(fsps_->engine()->lookahead(), Millis(10));

  // Zero-latency edits are rejected on a sharded engine.
  EXPECT_TRUE(fsps_->SetLinkLatency(1, 2, 0).IsInvalidArgument());
}

TEST_F(ShardedChurnTest, ReplacementStaysOnTheCrashedNodesShard) {
  WorkloadFactory factory(9);
  ComplexQueryOptions co;
  co.fragments = 2;
  co.source_rate = 50;
  BuiltQuery built = factory.MakeCov(1, co);
  // Both fragments on shard 1 (nodes 2 and 3).
  std::map<FragmentId, NodeId> placement = {{0, nodes_[2]}, {1, nodes_[3]}};
  ASSERT_TRUE(fsps_->Deploy(std::move(built.graph), placement).ok());
  ASSERT_TRUE(fsps_->AttachSources(1, built.sources).ok());
  fsps_->RunFor(Seconds(5));

  ASSERT_TRUE(fsps_->CrashNode(nodes_[3]).ok());
  // The orphan lands on node 2 — the only live shard-1 node — never on
  // shard 0 (source drivers and the coordinator are pinned to shard 1).
  EXPECT_EQ(fsps_->churn_stats().replaced_fragments, 1u);
  EXPECT_EQ(fsps_->node(nodes_[2])->HostedQueries(),
            (std::vector<QueryId>{1}));
  EXPECT_TRUE(fsps_->node(nodes_[0])->HostedQueries().empty());
  EXPECT_TRUE(fsps_->node(nodes_[1])->HostedQueries().empty());
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
}

// --- churn scenario generator -------------------------------------------

ChurnScenarioOptions SmallChurnOptions() {
  ChurnScenarioOptions co;
  co.scale.nodes = 16;
  co.scale.clusters = 4;
  co.scale.queries = 12;
  co.scale.arrival_wave = 4;
  co.churn_horizon = Seconds(20);
  return co;
}

TEST(ChurnScenarioTest, GenerationIsSeedDeterministic) {
  ChurnScenario a = MakeChurnScenario(SmallChurnOptions());
  ChurnScenario b = MakeChurnScenario(SmallChurnOptions());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].a, b.events[i].a);
    EXPECT_EQ(a.events[i].b, b.events[i].b);
    EXPECT_EQ(a.events[i].latency, b.events[i].latency);
  }
  ChurnScenarioOptions other = SmallChurnOptions();
  other.scale.seed = 43;
  ChurnScenario c = MakeChurnScenario(other);
  bool any_difference = c.events.size() != a.events.size();
  for (size_t i = 0; !any_difference && i < a.events.size(); ++i) {
    any_difference = c.events[i].a != a.events[i].a ||
                     c.events[i].time != a.events[i].time;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChurnScenarioTest, EveryClusterKeepsALiveMajority) {
  ChurnScenario scenario = MakeChurnScenario(SmallChurnOptions());
  const ScaleScenario& base = scenario.base;
  int clusters = base.options.clusters;
  std::vector<int> cluster_size(clusters, 0);
  for (int cluster : base.cluster_of_node) cluster_size[cluster] += 1;
  std::vector<int> alive = cluster_size;
  SimTime prev = 0;
  for (const ChurnEvent& ev : scenario.events) {
    EXPECT_GE(ev.time, prev);  // sorted
    prev = ev.time;
    if (ev.kind == ChurnEventKind::kCrash) {
      alive[base.cluster_of_node[ev.a]] -= 1;
    } else if (ev.kind == ChurnEventKind::kRestore) {
      alive[base.cluster_of_node[ev.a]] += 1;
    } else {
      EXPECT_GT(ev.latency, 0);  // epoch width can never collapse
      EXPECT_NE(base.cluster_of_node[ev.a], base.cluster_of_node[ev.b]);
    }
    for (int c = 0; c < clusters; ++c) {
      EXPECT_GE(alive[c], (cluster_size[c] + 1) / 2) << "cluster " << c;
    }
  }
  // Every crash is eventually restored.
  for (int c = 0; c < clusters; ++c) EXPECT_EQ(alive[c], cluster_size[c]);
}

TEST(ChurnScenarioTest, BurstOverlayKeepsTheScheduleIdentical) {
  // Layering §7.4 bursts onto the churn scenario must only touch the
  // source models: the topology schedule is drawn from the same rng
  // stream, so every event matches the burst-free scenario's exactly.
  ChurnScenario plain = MakeChurnScenario(SmallChurnOptions());
  ChurnScenario burst = MakeChurnBurstScenario(SmallChurnOptions(), 0.2, 8.0);
  EXPECT_DOUBLE_EQ(burst.options.scale.burst_prob, 0.2);
  EXPECT_DOUBLE_EQ(burst.options.scale.burst_multiplier, 8.0);
  EXPECT_DOUBLE_EQ(plain.options.scale.burst_prob, 0.0);
  ASSERT_EQ(burst.events.size(), plain.events.size());
  for (size_t i = 0; i < plain.events.size(); ++i) {
    EXPECT_EQ(burst.events[i].time, plain.events[i].time);
    EXPECT_EQ(burst.events[i].kind, plain.events[i].kind);
    EXPECT_EQ(burst.events[i].a, plain.events[i].a);
    EXPECT_EQ(burst.events[i].b, plain.events[i].b);
    EXPECT_EQ(burst.events[i].latency, plain.events[i].latency);
  }
  // Same arrivals too: the burst knob lives beside the query stream, not
  // inside it.
  ASSERT_EQ(burst.base.queries.size(), plain.base.queries.size());
  EXPECT_EQ(burst.base.total_source_rate, plain.base.total_source_rate);
}

TEST(ChurnScenarioTest, BurstOverlayGeneratesMoreTuples) {
  // End-to-end: bursty sources actually spike. Same federation, same
  // schedule; the burst run must generate strictly more source tuples.
  ChurnScenarioOptions co = SmallChurnOptions();
  co.crashes_per_wave = 1;
  ChurnScenario plain = MakeChurnScenario(co);
  ChurnScenario burst = MakeChurnBurstScenario(co, 0.3, 6.0);
  auto plain_fsps = MakeChurnFederation(plain);
  auto burst_fsps = MakeChurnFederation(burst);
  ChurnRunResult pr = RunChurnScenario(plain_fsps.get(), plain, Seconds(4));
  ChurnRunResult br = RunChurnScenario(burst_fsps.get(), burst, Seconds(4));
  EXPECT_GT(br.scale.tuples_received + br.tuples_dropped_dead,
            pr.scale.tuples_received + pr.tuples_dropped_dead);
}

TEST(ChurnScenarioTest, EndToEndChurnRunStaysHealthy) {
  // A small federation survives its full churn schedule: queries keep
  // producing results, re-placements happen, nothing leaks (ASan).
  ChurnScenarioOptions co = SmallChurnOptions();
  co.crashes_per_wave = 1;
  ChurnScenario scenario = MakeChurnScenario(co);
  auto fsps = MakeChurnFederation(scenario);
  ChurnRunResult r = RunChurnScenario(fsps.get(), scenario, Seconds(5));
  EXPECT_GT(r.crashes, 0u);
  EXPECT_EQ(r.crashes, r.restores);
  EXPECT_GT(r.latency_updates, 0u);
  EXPECT_GT(r.scale.tuples_processed, 0u);
  EXPECT_GT(r.scale.mean_sic, 0.0);
  EXPECT_GT(r.scale.jain, 0.0);
  // All nodes are back up at the end.
  size_t total_nodes = static_cast<size_t>(co.scale.nodes);
  EXPECT_EQ(fsps->live_node_ids().size(), total_nodes);
}

}  // namespace
}  // namespace themis
