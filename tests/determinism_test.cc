// Reproducibility tests: the whole simulation is seed-deterministic, which
// is what makes every EXPERIMENTS.md number regenerable bit-for-bit.
#include <gtest/gtest.h>

#include "federation/churn_federation.h"
#include "federation/fsps.h"
#include "federation/placement.h"
#include "workload/workloads.h"

namespace themis {
namespace {

struct EngineChoice {
  int shards = 1;
  bool force_parsim = false;
};

std::vector<double> RunOnce(uint64_t seed, EngineChoice engine = {}) {
  FspsOptions opts;
  opts.seed = seed;
  opts.node.cpu_speed = 0.005;  // overloaded: shedding decisions involved
  opts.shards = engine.shards;
  opts.force_parsim_engine = engine.force_parsim;
  if (engine.shards > 1) {
    // A wider link keeps the epoch count modest for the multi-shard run;
    // multi-shard results are only compared against other multi-shard runs.
    opts.default_link_latency = Millis(50);
  }
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode();
  WorkloadFactory factory(seed);
  Rng place_rng(seed + 1);
  for (QueryId q = 0; q < 8; ++q) {
    ComplexQueryOptions co;
    co.fragments = 1 + (q % 2);
    co.sources_per_fragment = 4;
    co.source_rate = 80;
    BuiltQuery built = factory.MakeRandomComplex(q, co);
    auto placement = PlaceFragments(*built.graph, fsps.node_ids(),
                                    PlacementPolicy::kUniformRandom, 0.0,
                                    &place_rng);
    EXPECT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
    EXPECT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }
  fsps.RunFor(Seconds(25));
  return fsps.AllQuerySics();
}

TEST(DeterminismTest, SameSeedSameOutcome) {
  auto a = RunOnce(101);
  auto b = RunOnce(101);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "query " << i;
  }
}

TEST(DeterminismTest, DifferentSeedDifferentOutcome) {
  auto a = RunOnce(101);
  auto b = RunOnce(202);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(DeterminismTest, ParsimSingleShardMatchesSequentialEngine) {
  // The parallel engine's single-shard fast path must be byte-identical to
  // the sequential engine — same events, same order, same doubles.
  auto seq = RunOnce(101);
  auto par = RunOnce(101, {.shards = 1, .force_parsim = true});
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "query " << i;
  }
}

TEST(DeterminismTest, ParsimMultiShardIsDeterministic) {
  // Two shards, nodes split across them: repeated runs must agree exactly
  // (the conservative epoch merge is interleaving-independent).
  auto a = RunOnce(101, {.shards = 2});
  auto b = RunOnce(101, {.shards = 2});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "query " << i;
  }
}

// One small churn run: crash waves, restores and link drift on a 16-node
// federation, returning every deterministic aggregate.
ChurnRunResult RunChurnOnce(uint64_t seed, EngineChoice engine = {}) {
  ChurnScenarioOptions co;
  co.scale.nodes = 16;
  co.scale.clusters = 4;
  co.scale.queries = 16;
  co.scale.arrival_wave = 8;
  co.scale.seed = seed;
  co.crashes_per_wave = 1;
  co.churn_horizon = Seconds(16);
  ChurnScenario scenario = MakeChurnScenario(co);
  FspsOptions fo;
  fo.shards = engine.shards;
  fo.force_parsim_engine = engine.force_parsim;
  auto fsps = MakeChurnFederation(scenario, fo);
  return RunChurnScenario(fsps.get(), scenario, Seconds(5));
}

void ExpectChurnResultsEqual(const ChurnRunResult& a, const ChurnRunResult& b) {
  EXPECT_EQ(a.scale.tuples_processed, b.scale.tuples_processed);
  EXPECT_EQ(a.scale.tuples_shed, b.scale.tuples_shed);
  EXPECT_EQ(a.scale.messages, b.scale.messages);
  EXPECT_EQ(a.scale.events, b.scale.events);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.replaced_fragments, b.replaced_fragments);
  EXPECT_EQ(a.dropped_queries, b.dropped_queries);
  EXPECT_EQ(a.tuples_dropped_dead, b.tuples_dropped_dead);
  ASSERT_EQ(a.scale.final_sics.size(), b.scale.final_sics.size());
  for (size_t i = 0; i < a.scale.final_sics.size(); ++i) {
    EXPECT_EQ(a.scale.final_sics[i], b.scale.final_sics[i]) << "query " << i;
  }
}

TEST(DeterminismTest, ChurnRunIsSeedDeterministic) {
  ExpectChurnResultsEqual(RunChurnOnce(101), RunChurnOnce(101));
}

TEST(DeterminismTest, ChurnParsimSingleShardMatchesSequentialEngine) {
  // The dynamic control plane (crash drains, re-placement, deferred link
  // edits) must not open any divergence between the engines: same events,
  // same order, same doubles.
  EngineChoice parsim1{.shards = 1, .force_parsim = true};
  ExpectChurnResultsEqual(RunChurnOnce(101), RunChurnOnce(101, parsim1));
}

TEST(DeterminismTest, ChurnParsimMultiShardIsDeterministic) {
  // Repeated multi-shard churn runs agree exactly: topology mutation lands
  // only at epoch boundaries, so the conservative merge stays
  // interleaving-independent through crash waves and lookahead changes.
  ExpectChurnResultsEqual(RunChurnOnce(101, {.shards = 2}),
                          RunChurnOnce(101, {.shards = 2}));
}

TEST(DeterminismTest, WorkloadFactoryIsSeedStable) {
  WorkloadFactory f1(5), f2(5);
  for (int i = 0; i < 20; ++i) {
    ComplexQueryOptions co;
    co.fragments = 1 + i % 4;
    auto a = f1.MakeRandomComplex(i, co);
    auto b = f2.MakeRandomComplex(i, co);
    EXPECT_EQ(a.graph->label(), b.graph->label());
    EXPECT_EQ(a.graph->num_operators(), b.graph->num_operators());
    EXPECT_EQ(a.sources.size(), b.sources.size());
  }
}

}  // namespace
}  // namespace themis
