// Query lifecycle tests: dynamic arrival, departure (Undeploy), in-flight
// batch handling and state cleanup — the "queries' arrivals and departures"
// dynamics §5 mentions.
#include <gtest/gtest.h>

#include "federation/fsps.h"
#include "workload/workloads.h"

namespace themis {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest() : factory_(9) {
    FspsOptions opts;
    opts.seed = 77;
    fsps_ = std::make_unique<Fsps>(opts);
    node0_ = fsps_->AddNode();
    node1_ = fsps_->AddNode();
  }

  // Deploys a two-fragment COV query across both nodes.
  Status DeployCov(QueryId q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    BuiltQuery built = factory_.MakeCov(q, co);
    std::map<FragmentId, NodeId> placement = {{0, node0_}, {1, node1_}};
    THEMIS_RETURN_NOT_OK(fsps_->Deploy(std::move(built.graph), placement));
    return fsps_->AttachSources(q, built.sources);
  }

  WorkloadFactory factory_;
  std::unique_ptr<Fsps> fsps_;
  NodeId node0_ = 0, node1_ = 0;
};

TEST_F(LifecycleTest, UndeployUnknownQueryIsNotFound) {
  EXPECT_TRUE(fsps_->Undeploy(123).IsNotFound());
}

TEST_F(LifecycleTest, UndeployStopsResultsAndSources) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(10));
  uint64_t results_before = fsps_->coordinator(1)->result_tuples();
  EXPECT_GT(results_before, 0u);

  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  EXPECT_EQ(fsps_->coordinator(1), nullptr);
  EXPECT_EQ(fsps_->graph(1), nullptr);
  EXPECT_TRUE(fsps_->query_ids().empty());

  uint64_t received_before = fsps_->TotalNodeStats().tuples_received;
  fsps_->RunFor(Seconds(5));
  // Sources stopped: at most the already-scheduled batch trickles in.
  EXPECT_LE(fsps_->TotalNodeStats().tuples_received, received_before + 200);
}

TEST_F(LifecycleTest, UndeployDoesNotDisturbOtherQueries) {
  ASSERT_TRUE(DeployCov(1).ok());
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Seconds(10));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->QuerySic(2), 0.7);  // survivor unaffected
  EXPECT_EQ(fsps_->query_ids(), (std::vector<QueryId>{2}));
}

TEST_F(LifecycleTest, MidRunArrivalStartsProcessing) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(10));
  // New query arrives while the system is running (C3: collaborative sites
  // accept incoming queries at any time).
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Seconds(15));
  EXPECT_GT(fsps_->coordinator(2)->result_tuples(), 0u);
  EXPECT_GT(fsps_->QuerySic(2), 0.5);
}

TEST_F(LifecycleTest, RedeploySameIdAfterUndeploy) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(5));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(15));
  EXPECT_GT(fsps_->QuerySic(1), 0.5);
}

TEST_F(LifecycleTest, NodeStateIsPurgedOnUnhost) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(5));
  Node* n0 = fsps_->node(node0_);
  ASSERT_FALSE(n0->HostedQueries().empty());
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  EXPECT_TRUE(n0->HostedQueries().empty());
  EXPECT_EQ(n0->input_buffer().SicOfQuery(1), 0.0);
  EXPECT_EQ(n0->AcceptedSic(1, Seconds(5)), 0.0);
}

// Mid-flight undeployment: batches and coordinator timers referencing the
// query are still queued when Undeploy runs. They must drain safely — this
// pins the retirement contract in fsps.h (retired_coordinators_ /
// retired_graphs_ stay alive until the event queue drains past them).
class MidFlightUndeployTest : public ::testing::Test {
 protected:
  MidFlightUndeployTest() : factory_(9) {
    FspsOptions opts;
    opts.seed = 77;
    // A fat WAN pipe: with 800 ms links and 250 ms update intervals there
    // are *always* derived batches and dissemination messages in flight
    // between the two nodes, so Undeploy is guaranteed to race them.
    opts.default_link_latency = Millis(800);
    fsps_ = std::make_unique<Fsps>(opts);
    node0_ = fsps_->AddNode();
    node1_ = fsps_->AddNode();
  }

  Status DeployCov(QueryId q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    BuiltQuery built = factory_.MakeCov(q, co);
    std::map<FragmentId, NodeId> placement = {{0, node0_}, {1, node1_}};
    THEMIS_RETURN_NOT_OK(fsps_->Deploy(std::move(built.graph), placement));
    return fsps_->AttachSources(q, built.sources);
  }

  WorkloadFactory factory_;
  std::unique_ptr<Fsps> fsps_;
  NodeId node0_ = 0, node1_ = 0;
};

TEST_F(MidFlightUndeployTest, InFlightBatchesDrainAfterUndeploy) {
  ASSERT_TRUE(DeployCov(1).ok());
  // Stop at a point that is not a multiple of any timer period, so batches,
  // shed timers and coordinator timers are all strictly mid-interval.
  fsps_->RunFor(Millis(5130));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());

  // Everything in flight (including >= 800 ms of WAN deliveries) drains
  // without touching freed state; arriving batches for the retired query
  // are dropped at ingress.
  uint64_t processed_before = fsps_->TotalNodeStats().batches_processed;
  fsps_->RunFor(Seconds(5));
  EXPECT_EQ(fsps_->TotalNodeStats().batches_processed, processed_before);
  EXPECT_TRUE(fsps_->query_ids().empty());
  EXPECT_EQ(fsps_->node(node0_)->input_buffer().num_batches(), 0u);
  EXPECT_EQ(fsps_->node(node1_)->input_buffer().num_batches(), 0u);
}

TEST_F(MidFlightUndeployTest, CoordinatorTimersGoQuietAfterUndeploy) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Millis(3370));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  // Give the last scheduled dissemination timer and the in-flight messages
  // time to fire into the stopped coordinator, then verify silence: no
  // sources, no dissemination, no derived traffic.
  fsps_->RunFor(Seconds(3));
  uint64_t messages_after_drain = fsps_->network()->messages_sent();
  fsps_->RunFor(Seconds(10));
  EXPECT_EQ(fsps_->network()->messages_sent(), messages_after_drain);
}

TEST_F(MidFlightUndeployTest, RedeploySameIdWithBatchesStillInFlight) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Millis(4210));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  // Redeploy under the same id while the predecessor's batches are still
  // on the wire; the new incarnation must start cleanly regardless.
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(20));
  EXPECT_GT(fsps_->coordinator(1)->result_tuples(), 0u);
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
}

TEST_F(MidFlightUndeployTest, SurvivorUnaffectedByMidFlightDeparture) {
  ASSERT_TRUE(DeployCov(1).ok());
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Millis(7490));
  uint64_t survivor_results = fsps_->coordinator(2)->result_tuples();
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->coordinator(2)->result_tuples(), survivor_results);
}

TEST_F(LifecycleTest, ChurnLoopStaysHealthy) {
  // Repeated arrivals and departures must not leak state or crash.
  for (QueryId q = 0; q < 10; ++q) {
    ASSERT_TRUE(DeployCov(q).ok());
    fsps_->RunFor(Seconds(3));
    if (q >= 2) {
      ASSERT_TRUE(fsps_->Undeploy(q - 2).ok());
    }
  }
  fsps_->RunFor(Seconds(5));
  EXPECT_EQ(fsps_->query_ids().size(), 2u);
  for (QueryId q : fsps_->query_ids()) {
    EXPECT_GT(fsps_->QuerySic(q), 0.0);
  }
}

}  // namespace
}  // namespace themis
