// Query lifecycle tests: dynamic arrival, departure (Undeploy), in-flight
// batch handling and state cleanup — the "queries' arrivals and departures"
// dynamics §5 mentions.
#include <gtest/gtest.h>

#include "federation/fsps.h"
#include "workload/workloads.h"

namespace themis {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest() : factory_(9) {
    FspsOptions opts;
    opts.seed = 77;
    fsps_ = std::make_unique<Fsps>(opts);
    node0_ = fsps_->AddNode();
    node1_ = fsps_->AddNode();
  }

  // Deploys a two-fragment COV query across both nodes.
  Status DeployCov(QueryId q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    BuiltQuery built = factory_.MakeCov(q, co);
    std::map<FragmentId, NodeId> placement = {{0, node0_}, {1, node1_}};
    THEMIS_RETURN_NOT_OK(fsps_->Deploy(std::move(built.graph), placement));
    return fsps_->AttachSources(q, built.sources);
  }

  WorkloadFactory factory_;
  std::unique_ptr<Fsps> fsps_;
  NodeId node0_ = 0, node1_ = 0;
};

TEST_F(LifecycleTest, UndeployUnknownQueryIsNotFound) {
  EXPECT_TRUE(fsps_->Undeploy(123).IsNotFound());
}

TEST_F(LifecycleTest, UndeployStopsResultsAndSources) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(10));
  uint64_t results_before = fsps_->coordinator(1)->result_tuples();
  EXPECT_GT(results_before, 0u);

  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  EXPECT_EQ(fsps_->coordinator(1), nullptr);
  EXPECT_EQ(fsps_->graph(1), nullptr);
  EXPECT_TRUE(fsps_->query_ids().empty());

  uint64_t received_before = fsps_->TotalNodeStats().tuples_received;
  fsps_->RunFor(Seconds(5));
  // Sources stopped: at most the already-scheduled batch trickles in.
  EXPECT_LE(fsps_->TotalNodeStats().tuples_received, received_before + 200);
}

TEST_F(LifecycleTest, UndeployDoesNotDisturbOtherQueries) {
  ASSERT_TRUE(DeployCov(1).ok());
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Seconds(10));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->QuerySic(2), 0.7);  // survivor unaffected
  EXPECT_EQ(fsps_->query_ids(), (std::vector<QueryId>{2}));
}

TEST_F(LifecycleTest, MidRunArrivalStartsProcessing) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(10));
  // New query arrives while the system is running (C3: collaborative sites
  // accept incoming queries at any time).
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Seconds(15));
  EXPECT_GT(fsps_->coordinator(2)->result_tuples(), 0u);
  EXPECT_GT(fsps_->QuerySic(2), 0.5);
}

TEST_F(LifecycleTest, RedeploySameIdAfterUndeploy) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(5));
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(15));
  EXPECT_GT(fsps_->QuerySic(1), 0.5);
}

TEST_F(LifecycleTest, NodeStateIsPurgedOnUnhost) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(5));
  Node* n0 = fsps_->node(node0_);
  ASSERT_FALSE(n0->HostedQueries().empty());
  ASSERT_TRUE(fsps_->Undeploy(1).ok());
  EXPECT_TRUE(n0->HostedQueries().empty());
  EXPECT_EQ(n0->input_buffer().SicOfQuery(1), 0.0);
  EXPECT_EQ(n0->AcceptedSic(1, Seconds(5)), 0.0);
}

TEST_F(LifecycleTest, ChurnLoopStaysHealthy) {
  // Repeated arrivals and departures must not leak state or crash.
  for (QueryId q = 0; q < 10; ++q) {
    ASSERT_TRUE(DeployCov(q).ok());
    fsps_->RunFor(Seconds(3));
    if (q >= 2) {
      ASSERT_TRUE(fsps_->Undeploy(q - 2).ok());
    }
  }
  fsps_->RunFor(Seconds(5));
  EXPECT_EQ(fsps_->query_ids().size(), 2u);
  for (QueryId q : fsps_->query_ids()) {
    EXPECT_GT(fsps_->QuerySic(q), 0.0);
  }
}

}  // namespace
}  // namespace themis
