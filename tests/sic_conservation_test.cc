// Property tests of the central SIC invariant (§4): without shedding, the
// SIC mass entering a query equals the mass reaching its result — across
// randomly generated operator chains, fragmentations and deployments.
// This is the invariant that makes qSIC = 1 mean "perfect processing".
#include <gtest/gtest.h>

#include <memory>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "runtime/operators/statistics.h"
#include "runtime/query_graph.h"
#include "workload/sources.h"

namespace themis {
namespace {

// Builds a random chain query: receiver -> k mass-conserving operators ->
// output, split into `fragments` fragments. Only operators that emit at
// least one tuple per non-empty pane are used, so Eq. (3) conserves mass.
std::unique_ptr<QueryGraph> RandomChainQuery(QueryId id, Rng* rng,
                                             int num_ops, int fragments) {
  QueryBuilder b(id, "random-chain");
  WindowSpec win = WindowSpec::TumblingTime(kSecond);
  OperatorId prev = b.Add(std::make_unique<ReceiverOp>(), 0);
  SourceId src = 1000 + id;
  b.BindSource(src, prev);

  for (int i = 0; i < num_ops; ++i) {
    FragmentId frag = static_cast<FragmentId>(
        std::min<int64_t>(fragments - 1, i * fragments / num_ops));
    std::unique_ptr<Operator> op;
    switch (rng->UniformInt(0, 4)) {
      case 0:
        op = std::make_unique<AggregateOp>(AggregateKind::kAvg, 0, win);
        break;
      case 1:
        op = std::make_unique<AggregateOp>(AggregateKind::kMax, 0, win);
        break;
      case 2:
        op = std::make_unique<VarianceOp>(0, win);
        break;
      case 3:
        op = std::make_unique<EwmaOp>(0.4, 0, win);
        break;
      default:
        op = std::make_unique<UnionOp>();
        break;
    }
    OperatorId next = b.Add(std::move(op), frag);
    b.Connect(prev, next);
    prev = next;
  }
  OperatorId out = b.Add(std::make_unique<OutputOp>(),
                         static_cast<FragmentId>(fragments - 1));
  b.Connect(prev, out).SetRoot(out);
  auto graph = b.Build();
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return graph.ok() ? std::move(graph).TakeValue() : nullptr;
}

// Parameterised over seeds: each seed generates a different random DAG and
// deployment.
class SicConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(SicConservationTest, UnshededChainReachesFullSic) {
  int seed = GetParam();
  Rng rng(seed);
  FspsOptions opts;
  opts.seed = static_cast<uint64_t>(seed);
  // Plenty of capacity: nothing is shed, so any SIC loss would be a
  // propagation bug, not a policy decision.
  opts.node.cpu_speed = 100.0;
  Fsps fsps(opts);
  int nodes = 2 + seed % 3;
  for (int i = 0; i < nodes; ++i) fsps.AddNode();

  int num_ops = 2 + seed % 5;
  int fragments = 1 + seed % std::min(3, nodes);
  auto graph = RandomChainQuery(1, &rng, num_ops, fragments);
  ASSERT_NE(graph, nullptr);

  Rng place_rng(seed + 7);
  auto placement = PlaceFragments(*graph, fsps.node_ids(),
                                  PlacementPolicy::kUniformRandom, 0.0,
                                  &place_rng);
  ASSERT_TRUE(fsps.Deploy(std::move(graph), placement).ok());

  SourceModel model;
  model.tuples_per_sec = 100 + 50 * (seed % 4);
  model.batches_per_sec = 2 + seed % 4;
  ASSERT_TRUE(fsps.AttachSources(1, {}, model).ok());

  fsps.RunFor(Seconds(30));
  EXPECT_EQ(fsps.TotalNodeStats().tuples_shed, 0u);
  // After warm-up the rate estimate settles and each second delivers 1/10
  // of the STW mass to the result; small residual error comes from window
  // boundaries and the estimator, hence the tolerance.
  EXPECT_GT(fsps.QuerySic(1), 0.85) << "ops=" << num_ops
                                    << " frags=" << fragments;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SicConservationTest, ::testing::Range(1, 25));

// Mass conservation holds per-operator too: any mass-conserving operator fed
// arbitrary SIC values redistributes exactly the input mass.
class OperatorMassTest : public ::testing::TestWithParam<int> {};

TEST_P(OperatorMassTest, PaneMassInEqualsMassOut) {
  Rng rng(GetParam());
  WindowSpec win = WindowSpec::TumblingTime(kSecond);
  AggregateOp op(AggregateKind::kSum, 0, win);
  double in_mass = 0.0;
  std::vector<Tuple> tuples;
  int n = 1 + static_cast<int>(rng.UniformInt(0, 20));
  for (int i = 0; i < n; ++i) {
    double sic = rng.Uniform(0.0, 0.2);
    in_mass += sic;
    tuples.push_back(Tuple(1 + i, sic, {Value(rng.Uniform(0, 100))}));
  }
  op.Ingest(tuples, 0);
  std::vector<Tuple> out;
  op.Advance(kSecond, &out);
  double out_mass = 0.0;
  for (const Tuple& t : out) out_mass += t.sic;
  EXPECT_NEAR(out_mass, in_mass, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorMassTest, ::testing::Range(1, 16));

}  // namespace
}  // namespace themis
