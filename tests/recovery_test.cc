// Randomized fault-injection property tests: for a family of derived
// seeds, drive an Fsps (recovery tracker enabled) through a random
// crash/restore/link-flap schedule and assert the runtime's invariants
// after every RunFor segment —
//   * conservation: no tuple is accounted twice (a node's processed + shed
//     + still-buffered tuples never exceed what it received),
//   * liveness: crashed nodes host nothing and every deployed query is
//     hosted on at least one live node,
//   * the recovery tracker's clocks are monotone,
// and that the tracker's serialized output is bit-identical run-to-run at
// shards = 1 (sequential AND the parsim fast path) and at shards = 4.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "workload/workloads.h"

namespace themis {
namespace {

constexpr int kSeeds = 20;
constexpr uint64_t kBaseSeed = 20260731;

// The i-th derived seed (splitmix-style mix so neighbouring schedules share
// nothing).
uint64_t DeriveSeed(int i) {
  uint64_t z = kBaseSeed + 0x9e3779b97f4a7c15ULL * (i + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic digest of one run: the tracker's serialized state plus the
// aggregate simulation outcome.
struct RunDigest {
  std::string tracker;
  std::vector<double> sics;
  uint64_t messages = 0;
  uint64_t events = 0;
  uint64_t crashes = 0;
  uint64_t restores = 0;
  uint64_t replaced = 0;
  uint64_t dropped = 0;
};

void ExpectDigestsEqual(const RunDigest& a, const RunDigest& b,
                        const char* what) {
  EXPECT_EQ(a.tracker, b.tracker) << what;
  EXPECT_EQ(a.sics, b.sics) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.events, b.events) << what;
  EXPECT_EQ(a.crashes, b.crashes) << what;
  EXPECT_EQ(a.restores, b.restores) << what;
  EXPECT_EQ(a.replaced, b.replaced) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
}

void CheckInvariants(Fsps* fsps, SimTime* last_sample_seen) {
  // Conservation: every tuple a node received is processed, shed, still
  // buffered, or died with a crash — never two of those at once, so the
  // first three can never sum past the received count.
  for (NodeId id : fsps->node_ids()) {
    Node* n = fsps->node(id);
    const NodeStats& s = n->stats();
    uint64_t accounted = s.tuples_processed + s.tuples_shed +
                         n->input_buffer().num_tuples();
    EXPECT_LE(accounted, s.tuples_received) << "node " << id;
    EXPECT_LE(s.batches_processed + s.batches_shed +
                  n->input_buffer().num_batches(),
              s.batches_received)
        << "node " << id;
  }

  // Liveness: dead nodes host nothing; every deployed query has at least
  // one live host, and nothing hosted is undeployed.
  std::set<QueryId> deployed;
  for (QueryId q : fsps->query_ids()) deployed.insert(q);
  std::set<QueryId> hosted_on_live;
  for (NodeId id : fsps->node_ids()) {
    Node* n = fsps->node(id);
    if (!n->alive()) {
      EXPECT_TRUE(n->HostedQueries().empty()) << "dead node " << id;
      continue;
    }
    for (QueryId q : n->HostedQueries()) {
      EXPECT_EQ(deployed.count(q), 1u) << "zombie query " << q;
      hosted_on_live.insert(q);
    }
  }
  for (QueryId q : deployed) {
    EXPECT_EQ(hosted_on_live.count(q), 1u) << "orphaned query " << q;
  }

  // Tracker clocks are monotone: samples never step back across RunFor
  // segments and disturbances are recorded in time order.
  const RecoveryTracker& tracker = fsps->recovery_tracker();
  EXPECT_GE(tracker.last_sample_time(), *last_sample_seen);
  *last_sample_seen = tracker.last_sample_time();
  SimTime prev = -1;
  for (const Disturbance& d : tracker.disturbances()) {
    EXPECT_GE(d.time, prev);
    prev = d.time;
  }
}

RunDigest RunRandomFaultInjection(uint64_t seed, int shards,
                                  bool force_parsim) {
  FspsOptions opts;
  opts.seed = seed;
  opts.shards = shards;
  opts.force_parsim_engine = force_parsim;
  opts.default_link_latency = Millis(40);
  opts.source_link_latency = Millis(10);
  opts.node.cpu_speed = 0.005;  // overloaded: shedding decisions involved
  // Alternate the re-placement policy across seeds so both paths face the
  // fault injector.
  opts.replacement = (seed % 2 == 0) ? ReplacementPolicy::kRoundRobin
                                     : ReplacementPolicy::kSicAware;
  opts.recovery.enabled = true;
  opts.recovery.sample_interval = Millis(200);
  Fsps fsps(opts);
  constexpr int kNodes = 8;
  for (int i = 0; i < kNodes; ++i) fsps.AddNode();

  WorkloadFactory factory(seed);
  Rng place_rng(seed + 1);
  for (QueryId q = 0; q < 4; ++q) {
    ComplexQueryOptions co;
    co.fragments = 1 + (q % 2);
    co.sources_per_fragment = 3;
    co.source_rate = 50;
    BuiltQuery built = factory.MakeRandomComplex(q, co);
    auto placement =
        PlaceFragments(*built.graph, fsps.node_ids(),
                       PlacementPolicy::kUniformRandom, 0.0, &place_rng);
    EXPECT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
    EXPECT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }

  // The schedule rng drives segment lengths and fault choices; it depends
  // only on the seed and the (deterministic) live set, so two runs of the
  // same seed replay the exact same schedule.
  Rng rng(seed ^ 0xfa1737u);
  SimTime last_sample_seen = -1;
  for (int step = 0; step < 18; ++step) {
    fsps.RunFor(Millis(rng.UniformInt(150, 650)));
    CheckInvariants(&fsps, &last_sample_seen);

    switch (rng.UniformInt(0, 3)) {
      case 0: {  // crash a live node (keep at least two alive)
        std::vector<NodeId> live = fsps.live_node_ids();
        if (live.size() <= 2) break;
        NodeId victim = live[rng.UniformInt(
            0, static_cast<int64_t>(live.size()) - 1)];
        EXPECT_TRUE(fsps.CrashNode(victim).ok());
        break;
      }
      case 1: {  // restore a crashed node
        std::vector<NodeId> live = fsps.live_node_ids();
        if (live.size() == kNodes) break;
        std::set<NodeId> alive(live.begin(), live.end());
        for (NodeId id = 0; id < kNodes; ++id) {
          if (alive.count(id) == 0) {
            EXPECT_TRUE(fsps.RestoreNode(id).ok());
            break;
          }
        }
        break;
      }
      case 2: {  // flap a random link (always strictly positive latency)
        NodeId a = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
        NodeId b = static_cast<NodeId>(rng.UniformInt(0, kNodes - 1));
        if (a == b) break;
        EXPECT_TRUE(
            fsps.SetLinkLatency(a, b, Millis(rng.UniformInt(5, 120))).ok());
        break;
      }
      default:  // quiet segment
        break;
    }
  }
  fsps.RunFor(Seconds(2));
  CheckInvariants(&fsps, &last_sample_seen);

  RunDigest digest;
  digest.tracker = fsps.recovery_tracker().DebugString();
  digest.sics = fsps.AllQuerySics();
  digest.messages = fsps.network()->messages_sent();
  digest.events = fsps.engine()->executed();
  const FspsChurnStats& churn = fsps.churn_stats();
  digest.crashes = churn.crashes;
  digest.restores = churn.restores;
  digest.replaced = churn.replaced_fragments;
  digest.dropped = churn.dropped_queries;
  EXPECT_FALSE(digest.tracker.empty());
  return digest;
}

TEST(RecoveryPropertyTest, InvariantsAndDeterminismSequential) {
  for (int i = 0; i < kSeeds; ++i) {
    uint64_t seed = DeriveSeed(i);
    RunDigest a = RunRandomFaultInjection(seed, 1, false);
    RunDigest b = RunRandomFaultInjection(seed, 1, false);
    ExpectDigestsEqual(a, b, "run-to-run at shards=1");
    // The parallel engine's single-shard fast path must be byte-identical
    // to the sequential engine, recovery sampling included.
    RunDigest c = RunRandomFaultInjection(seed, 1, true);
    ExpectDigestsEqual(a, c, "sequential vs parsim@1");
    if (HasFailure()) {
      ADD_FAILURE() << "failing seed " << seed << " (index " << i << ")";
      break;
    }
  }
}

TEST(RecoveryPropertyTest, InvariantsAndDeterminismSharded) {
  for (int i = 0; i < kSeeds; ++i) {
    uint64_t seed = DeriveSeed(i);
    RunDigest a = RunRandomFaultInjection(seed, 4, false);
    RunDigest b = RunRandomFaultInjection(seed, 4, false);
    ExpectDigestsEqual(a, b, "run-to-run at shards=4");
    if (HasFailure()) {
      ADD_FAILURE() << "failing seed " << seed << " (index " << i << ")";
      break;
    }
  }
}

}  // namespace
}  // namespace themis
