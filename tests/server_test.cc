// Tests of the real-time runtime's building blocks: scheduler notify/run
// semantics, credit-based channel backpressure (pause on full, wake on
// grant, zero-credit starvation), shutdown while paused, and end-to-end
// pipeline behaviour on live worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/clock.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "server/channel.h"
#include "server/scheduler.h"
#include "server/server_pipeline.h"
#include "shedding/balance_sic_shedder.h"

namespace themis {
namespace {

Batch TestBatch(QueryId q, size_t n) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) ts.push_back(Tuple(0, 0.01, {Value(1.0)}));
  return MakeBatch(q, /*op=*/0, /*port=*/0, /*created=*/0, std::move(ts));
}

// A task that counts its slices and returns a scripted status.
class CountingTask : public Task {
 public:
  explicit CountingTask(RunStatus status = RunStatus::kIdle)
      : status_(status) {}
  RunStatus RunSlice() override {
    runs.fetch_add(1, std::memory_order_relaxed);
    return status_;
  }
  std::atomic<int> runs{0};

 private:
  RunStatus status_;
};

TEST(ServerSchedulerTest, NotifyCollapsesWhileQueued) {
  Scheduler sched(0);
  CountingTask t;
  sched.Notify(&t);
  sched.Notify(&t);
  sched.Notify(&t);
  sched.RunUntilIdle();
  EXPECT_EQ(t.runs.load(), 1);
}

TEST(ServerSchedulerTest, NotifyDuringRunRequeues) {
  Scheduler sched(0);
  // Self-notifying task: the notify lands while the slice runs, so the
  // scheduler must mark it dirty and run it once more.
  class SelfNotify : public Task {
   public:
    Scheduler* sched = nullptr;
    int runs = 0;
    RunStatus RunSlice() override {
      ++runs;
      if (runs == 1) sched->Notify(this);
      return RunStatus::kIdle;
    }
  };
  SelfNotify t;
  t.sched = &sched;
  sched.Notify(&t);
  sched.RunUntilIdle();
  EXPECT_EQ(t.runs, 2);
}

TEST(ServerSchedulerTest, MoreWorkRequeuesFifo) {
  Scheduler sched(0);
  class TwoSlices : public Task {
   public:
    int runs = 0;
    RunStatus RunSlice() override {
      ++runs;
      return runs < 2 ? RunStatus::kMoreWork : RunStatus::kIdle;
    }
  };
  TwoSlices a;
  CountingTask b;
  sched.Notify(&a);
  sched.Notify(&b);
  sched.RunUntilIdle();
  EXPECT_EQ(a.runs, 2);
  EXPECT_EQ(b.runs.load(), 1);
}

TEST(ServerChannelTest, CreditsBoundInFlightBatches) {
  Scheduler sched(0);
  CountingTask consumer;
  CountingTask producer;
  BatchChannel ch(/*capacity=*/2, &consumer);

  Batch b1 = TestBatch(1, 4);
  Batch b2 = TestBatch(1, 4);
  Batch b3 = TestBatch(1, 4);
  EXPECT_TRUE(ch.TryPush(&b1, &producer, &sched));
  EXPECT_TRUE(ch.TryPush(&b2, &producer, &sched));
  EXPECT_EQ(ch.credits(), 0u);
  // Full: push fails, the batch stays with the producer.
  EXPECT_FALSE(ch.TryPush(&b3, &producer, &sched));
  EXPECT_EQ(b3.size(), 4u);
  EXPECT_EQ(ch.queued(), 2u);

  // Popping does not return the credit — only GrantCredit does.
  auto popped = ch.TryPop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_FALSE(ch.TryPush(&b3, &producer, &sched));
  ch.GrantCredit(&sched);
  EXPECT_TRUE(ch.TryPush(&b3, &producer, &sched));
}

TEST(ServerChannelTest, GrantWakesPausedProducer) {
  Scheduler sched(0);
  CountingTask consumer;
  CountingTask producer;
  BatchChannel ch(/*capacity=*/1, &consumer);

  Batch b1 = TestBatch(1, 1);
  Batch b2 = TestBatch(1, 1);
  ASSERT_TRUE(ch.TryPush(&b1, &producer, &sched));
  ASSERT_FALSE(ch.TryPush(&b2, &producer, &sched));
  sched.RunUntilIdle();  // consumer slice from the first push
  int producer_runs_before = producer.runs.load();

  // The grant must wake the registered waiter through the scheduler.
  (void)ch.TryPop();
  ch.GrantCredit(&sched);
  sched.RunUntilIdle();
  EXPECT_GT(producer.runs.load(), producer_runs_before);
}

TEST(ServerChannelTest, ZeroCreditStarvationHoldsUntilGrant) {
  // A consumer that pops but never grants starves the producer: no amount
  // of notifies lets a push through until the credit comes back.
  Scheduler sched(0);
  CountingTask consumer;
  CountingTask producer;
  BatchChannel ch(/*capacity=*/1, &consumer);

  Batch b1 = TestBatch(1, 1);
  ASSERT_TRUE(ch.TryPush(&b1, &producer, &sched));
  (void)ch.TryPop();  // consumer holds the only credit
  Batch b2 = TestBatch(1, 1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(ch.TryPush(&b2, &producer, &sched));
    sched.RunUntilIdle();
  }
  ch.GrantCredit(&sched);
  EXPECT_TRUE(ch.TryPush(&b2, &producer, &sched));
}

TEST(ServerSchedulerTest, ShutdownWhilePausedJoinsCleanly) {
  // A producer blocked on a full channel (kBlocked, waiting for a credit
  // that never comes) must not prevent Stop() from joining the workers.
  Scheduler sched(2);
  CountingTask consumer;
  BatchChannel ch(/*capacity=*/1, &consumer);

  class BlockedProducer : public Task {
   public:
    BatchChannel* ch = nullptr;
    Scheduler* sched = nullptr;
    std::atomic<bool> blocked{false};
    RunStatus RunSlice() override {
      Batch b = TestBatch(1, 1);
      if (!ch->TryPush(&b, this, sched)) {
        blocked.store(true, std::memory_order_release);
        return RunStatus::kBlocked;
      }
      return RunStatus::kMoreWork;  // keep pushing until full
    }
  };
  BlockedProducer producer;
  producer.ch = &ch;
  producer.sched = &sched;

  sched.Start();
  sched.Notify(&producer);
  while (!producer.blocked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  sched.Stop();  // must return despite the paused producer
  EXPECT_EQ(ch.queued(), 1u);
}

// ---------------------------------------------------------------------
// Pipeline-level tests on live worker threads.
// ---------------------------------------------------------------------

std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src) {
  QueryBuilder b(q, "avg");
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

Batch SourceBatch(QueryId q, SourceId src, SimTime now, size_t n,
                  double value) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) ts.push_back(Tuple(now, 0.0, {Value(value)}));
  Batch b = MakeBatch(q, /*op=*/0, /*port=*/0, now, std::move(ts));
  b.header.source = src;
  return b;
}

TEST(ServerPipelineTest, ProcessesBatchesEndToEnd) {
  ManualClock clock;
  ServerOptions opts;
  opts.workers = 2;
  auto graph = MakeAvgGraph(1, /*src=*/10);
  ServerPipeline p(opts, &clock,
                   std::make_unique<BalanceSicShedder>(Rng(1)));
  p.AddQuery(graph.get());
  p.Start();

  // 2.5 simulated seconds of arrivals; windows close as the clock passes
  // them (the wall-clock ticker waits on the manual clock, so ticks fire
  // on AdvanceTo).
  for (int i = 0; i < 25; ++i) {
    clock.AdvanceTo(Millis(100) * i);
    ASSERT_TRUE(p.Push(SourceBatch(1, 10, clock.NowMicros(), 100, 42.0)));
    p.WaitIdle();
  }
  clock.AdvanceTo(Seconds(3));
  p.WaitIdle();
  // The ticker thread catches up on its own pace; wait for it to pump the
  // two closed 1 s windows through before stopping.
  for (int i = 0; i < 2000 && p.ResultTuplesTotal(1) < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.Stop();

  EXPECT_EQ(p.stats().tuples_received, 2500u);
  EXPECT_EQ(p.stats().tuples_processed, 2500u);
  EXPECT_EQ(p.stats().tuples_shed, 0u);
  EXPECT_EQ(p.AcceptedTuplesTotal(1), 2500u);
  // Two 1 s windows fully closed by the 3 s watermark -> >= 2 AVG results.
  EXPECT_GE(p.ResultTuplesTotal(1), 2u);
  EXPECT_GT(p.AcceptedSicTotal(1), 0.0);
}

TEST(ServerPipelineTest, PushAfterStopIsRejected) {
  ManualClock clock;
  ServerOptions opts;
  opts.workers = 1;
  auto graph = MakeAvgGraph(1, 10);
  ServerPipeline p(opts, &clock,
                   std::make_unique<BalanceSicShedder>(Rng(1)));
  p.AddQuery(graph.get());
  p.Start();
  EXPECT_TRUE(p.Push(SourceBatch(1, 10, 0, 10, 1.0)));
  p.Stop();
  EXPECT_FALSE(p.Push(SourceBatch(1, 10, 0, 10, 1.0)));
}

TEST(ServerPipelineTest, SourceBackpressureBlocksAndResumes) {
  // Deterministic variant: no workers, so the IB fills while the ingress
  // is not running, the gate closes, a second-thread Push blocks, and
  // draining the pipeline reopens the gate.
  ManualClock clock;
  ServerOptions opts;
  opts.workers = 0;
  opts.ib_high_watermark = 200;
  opts.ib_low_watermark = 50;
  auto graph = MakeAvgGraph(1, 10);
  ServerPipeline p(opts, &clock,
                   std::make_unique<BalanceSicShedder>(Rng(1)));
  p.AddQuery(graph.get());
  p.Start();

  // Fill past the high watermark (gate closes at >= 200 tuples).
  ASSERT_TRUE(p.Push(SourceBatch(1, 10, 0, 150, 1.0)));
  ASSERT_TRUE(p.Push(SourceBatch(1, 10, 0, 100, 1.0)));
  EXPECT_EQ(p.ib_tuples(), 250u);

  std::atomic<bool> unblocked{false};
  std::thread source([&] {
    EXPECT_TRUE(p.Push(SourceBatch(1, 10, 0, 10, 1.0)));
    unblocked.store(true, std::memory_order_release);
  });
  // The push must be blocked: the gate is closed until the IB drains.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load(std::memory_order_acquire));

  // Drain on this thread; passing the low watermark wakes the source.
  p.RunUntilIdle();
  source.join();
  EXPECT_TRUE(unblocked.load(std::memory_order_acquire));
  p.Stop();
  EXPECT_EQ(p.stats().tuples_received, 260u);
}

}  // namespace
}  // namespace themis
