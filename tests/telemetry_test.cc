// themis_telemetry tests: histogram bucket-boundary pins, deterministic
// merge (metric snapshots byte-identical run-to-run and across shard
// counts on a sharded scale scenario), zero allocations on the disabled
// path, tracer ring wraparound, the server-vs-DES snapshot oracle (the
// shared shed-seam hooks must make a kModeled server run's metric
// snapshot match the discrete-event Node's bit for bit), and the
// autoscaler's structured decision log captured through the logging sink.
//
// Every suite name starts with "Telemetry" so the TSan CI job's -R filter
// picks the whole file up: the registry's lanes and the tracer's rings
// are the layer's concurrency surface.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_counter.h"
#include "common/logging.h"
#include "federation/elastic_federation.h"
#include "federation/fsps.h"
#include "federation/scale_federation.h"
#include "node/node.h"
#include "node/telemetry_hooks.h"
#include "runtime/clock.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "server/oracle_driver.h"
#include "server/server_pipeline.h"
#include "shedding/balance_sic_shedder.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"
#include "workload/scale_scenario.h"

namespace themis {
namespace {

using telemetry::Counter;
using telemetry::FixedFromDouble;
using telemetry::FixedToDouble;
using telemetry::Histogram;
using telemetry::MetricRegistry;
using telemetry::SpanTracer;
using telemetry::Telemetry;

// RAII install so a failing assertion can't leak a dangling registry into
// the next test.
class ScopedInstall {
 public:
  explicit ScopedInstall(Telemetry* t) { telemetry::Install(t); }
  ~ScopedInstall() { telemetry::Uninstall(); }
};

// --- fixed point and histogram buckets ----------------------------------

TEST(TelemetryFixedPointTest, RoundTripsTypicalValues) {
  // Dyadic values with <= 20 fractional bits are exactly representable.
  for (double v : {0.0, 1.0, 0.5, 0.25, 1234.75, 1e6, 98765.4375}) {
    EXPECT_DOUBLE_EQ(FixedToDouble(FixedFromDouble(v)), v) << v;
    EXPECT_DOUBLE_EQ(FixedToDouble(FixedFromDouble(-v)), -v) << -v;
  }
  // Q44.20: one ulp is 2^-20.
  EXPECT_EQ(FixedFromDouble(1.0), int64_t{1} << 20);
}

TEST(TelemetryHistogramTest, BucketBoundaries) {
  // Nonpositive values land in bucket 0.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(-3.5), 0);
  // frexp exponent + bias: v in [2^(e-1), 2^e) -> bucket e + 32; exact
  // powers of two sit at the bottom of their bucket.
  EXPECT_EQ(Histogram::BucketOf(1.0), 33);
  EXPECT_EQ(Histogram::BucketOf(1.5), 33);
  EXPECT_EQ(Histogram::BucketOf(1.9999), 33);
  EXPECT_EQ(Histogram::BucketOf(2.0), 34);
  EXPECT_EQ(Histogram::BucketOf(0.5), 32);
  EXPECT_EQ(Histogram::BucketOf(0.25), 31);
  EXPECT_EQ(Histogram::BucketOf(100.0), 39);   // 2^6 <= 100 < 2^7
  EXPECT_EQ(Histogram::BucketOf(1024.0), 43);  // == 2^10
  // Clamp at both ends.
  EXPECT_EQ(Histogram::BucketOf(1e-30), 0);
  EXPECT_EQ(Histogram::BucketOf(1e30), Histogram::kBuckets - 1);
}

TEST(TelemetryHistogramTest, CountSumAndBucketsMerge) {
  Histogram h;
  telemetry::SetLane(0);
  h.Observe(1.5);
  h.Observe(1.25);
  telemetry::SetLane(3);
  h.Observe(100.0);
  telemetry::SetLane(0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 102.75);
  EXPECT_EQ(h.BucketCount(33), 2u);
  EXPECT_EQ(h.BucketCount(39), 1u);
}

// --- deterministic concurrent merge -------------------------------------

TEST(TelemetryMergeTest, ConcurrentLaneWritesMergeExactly) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("merge.counter");
  Histogram* h = registry.GetHistogram("merge.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      telemetry::SetLane(t);
      for (int i = 0; i < kPerThread; ++i) {
        c->Add(1);
        h->Observe(0.25);  // FixedFromDouble is exact: sums merge exactly
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->SumRaw(),
            int64_t{kThreads} * kPerThread * FixedFromDouble(0.25));
  EXPECT_EQ(h->BucketCount(Histogram::BucketOf(0.25)),
            uint64_t{kThreads} * kPerThread);
}

// One sharded scale run's metric snapshot, non-`infra.` lines only.
std::string ScaleSnapshot(int shards) {
  Telemetry telemetry;
  ScopedInstall install(&telemetry);
  ScaleScenarioOptions so;
  so.nodes = 16;
  so.clusters = 4;
  so.queries = 12;
  so.arrival_wave = 4;
  ScaleScenario scenario = MakeScaleScenario(so);
  FspsOptions fo;
  fo.shards = shards;
  auto fsps = MakeScaleFederation(scenario, fo);
  RunScaleScenario(fsps.get(), scenario, Seconds(5));
  std::string snapshot;
  telemetry.metrics().ExportProm(&snapshot, /*include_infra=*/false);
  return snapshot;
}

TEST(TelemetryMergeTest, ScaleSnapshotIdenticalAcrossShardCounts) {
  std::string at1 = ScaleSnapshot(1);
  EXPECT_FALSE(at1.empty());
  // The run actually exercised the instrumented seams.
  EXPECT_NE(at1.find("shed.ticks "), std::string::npos);
  EXPECT_NE(at1.find("query.0.accepted_tuples "), std::string::npos);
  EXPECT_EQ(ScaleSnapshot(4), at1);
  EXPECT_EQ(ScaleSnapshot(8), at1);
  // Run-to-run.
  EXPECT_EQ(ScaleSnapshot(4), ScaleSnapshot(4));
}

// --- disabled path is allocation-free ------------------------------------

std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src) {
  QueryBuilder b(q, "avg");
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

TEST(TelemetryDisabledTest, HooksAllocateNothingWhenUninstalled) {
  ForceLinkAllocCounter();
  ASSERT_TRUE(AllocCounter::active());
  ASSERT_EQ(telemetry::Get(), nullptr);
  QueryTelemetry queries;
  std::deque<Batch> ib;
  std::vector<size_t> keep;
  uint64_t before = AllocCounter::allocations();
  for (int i = 0; i < 1000; ++i) {
    Telemetry* tel = telemetry::Get();
    if (tel != nullptr) {
      queries.RecordAccepted(tel, 0, 1.0, 10);
      RecordShedTick(tel, 100, 50, true);
      RecordShedDrops(tel, &queries, ib, keep);
    }
    telemetry::TraceScope span("disabled.span");
  }
  EXPECT_EQ(AllocCounter::allocations(), before);
}

// --- span tracer ---------------------------------------------------------

TEST(TelemetryTracerTest, RingWrapsKeepingNewestSpans) {
  SpanTracer tracer(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    tracer.Record("span", static_cast<uint64_t>(i), 1);
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  std::string trace;
  tracer.ExportChromeTrace(&trace);
  // Only the 8 newest spans survive: starts 12..19 present, 11 evicted.
  for (int start = 12; start < 20; ++start) {
    std::string needle = "\"ts\":" + std::to_string(start) + ",";
    EXPECT_NE(trace.find(needle), std::string::npos) << start;
  }
  EXPECT_EQ(trace.find("\"ts\":11,"), std::string::npos);
}

TEST(TelemetryTracerTest, TraceScopeRecordsIntoInstalledTracer) {
  Telemetry telemetry;
  {
    ScopedInstall install(&telemetry);
    telemetry::TraceScope span("test.scope");
  }
  EXPECT_EQ(telemetry.tracer().recorded(), 1u);
  std::string trace;
  telemetry.tracer().ExportChromeTrace(&trace);
  EXPECT_NE(trace.find("\"name\":\"test.scope\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

// --- server-vs-DES snapshot oracle ---------------------------------------

// Pinned overloaded scenario; constants mirror tests/server_oracle_test.cc
// (integral modeled work, per-batch work under the shed interval, arrival
// periods coprime with the tick grid).
constexpr SimTime kOracleHorizon = Millis(3200);
constexpr double kOracleCpuSpeed = 0.01;
constexpr int kOracleQueries = 4;
constexpr SimDuration kOraclePeriods[kOracleQueries] = {
    Millis(13), Millis(17), Millis(19), Millis(23)};

Batch OracleBatch(QueryId q, SimTime now) {
  std::vector<Tuple> ts;
  ts.reserve(100);
  for (size_t i = 0; i < 100; ++i) {
    ts.push_back(Tuple(now, 0.0, {Value(static_cast<double>(q) + 1.0)}));
  }
  Batch b = MakeBatch(q, /*op=*/0, /*port=*/0, now, std::move(ts));
  b.header.source = 10 + q;
  return b;
}

std::vector<TimedBatch> OracleArrivals() {
  std::vector<TimedBatch> arrivals;
  for (SimTime t = 0; t <= kOracleHorizon; t += Millis(1)) {
    for (int q = 0; q < kOracleQueries; ++q) {
      if (t % kOraclePeriods[q] != 0) continue;
      arrivals.push_back(TimedBatch{t, OracleBatch(q, t)});
    }
  }
  return arrivals;
}

class NullRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId, SimTime, const std::vector<Tuple>&) override {}
};

std::string DesOracleSnapshot() {
  Telemetry telemetry;
  ScopedInstall install(&telemetry);
  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kOracleQueries; ++q) {
    graphs.push_back(MakeAvgGraph(q, 10 + q));
  }
  EventQueue queue;
  NullRouter router;
  NodeOptions options;
  options.cpu_speed = kOracleCpuSpeed;
  Node node(0, options, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) node.HostFragment(g.get(), 0);
  node.Start();
  std::vector<TimedBatch> arrivals = OracleArrivals();
  for (TimedBatch& a : arrivals) {
    Batch* b = &a.batch;
    queue.Schedule(a.at, [&node, b] { node.Receive(std::move(*b)); });
  }
  queue.RunUntil(kOracleHorizon);
  EXPECT_GT(node.stats().tuples_shed, 0u);  // a valid overloaded scenario
  std::string snapshot;
  telemetry.metrics().ExportProm(&snapshot, /*include_infra=*/false);
  return snapshot;
}

std::string ServerOracleSnapshot() {
  Telemetry telemetry;
  ScopedInstall install(&telemetry);
  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kOracleQueries; ++q) {
    graphs.push_back(MakeAvgGraph(q, 10 + q));
  }
  ManualClock clock;
  ServerOptions opts;
  opts.workers = 0;
  opts.cpu_speed = kOracleCpuSpeed;
  opts.accounting = CostAccounting::kModeled;
  opts.pace_admission = true;
  opts.disseminate_sic = false;
  opts.channel_capacity = 1 << 20;
  ServerPipeline pipeline(opts, &clock,
                          std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) pipeline.AddQuery(g.get());
  pipeline.Start();
  std::vector<TimedBatch> arrivals = OracleArrivals();
  DriveDeterministic(&pipeline, &clock, &arrivals, kOracleHorizon);
  pipeline.Stop();
  std::string snapshot;
  telemetry.metrics().ExportProm(&snapshot, /*include_infra=*/false);
  return snapshot;
}

TEST(TelemetryOracleTest, ServerModeledSnapshotMatchesDesBitForBit) {
  std::string des = DesOracleSnapshot();
  std::string server = ServerOracleSnapshot();
  EXPECT_FALSE(des.empty());
  EXPECT_NE(des.find("shed.dropped_tuples "), std::string::npos);
  EXPECT_NE(des.find("query.0.accepted_sic_fp "), std::string::npos);
  EXPECT_EQ(server, des);
}

// --- autoscaler decision log ---------------------------------------------

TEST(TelemetryAutoscalerLogTest, DecisionAuditLinesAreCaptured) {
  ScopedLogCapture capture(LogLevel::kDebug);
  Telemetry telemetry;
  ScopedInstall install(&telemetry);

  ElasticScenarioOptions eo;
  eo.churn.scale.nodes = 16;
  eo.churn.scale.clusters = 8;
  eo.churn.scale.queries = 12;
  eo.churn.scale.arrival_wave = 4;
  eo.churn.churn_horizon = Seconds(20);
  eo.churn.crashes_per_wave = 1;
  eo.diurnal_period = Seconds(8);
  eo.autoscaler.max_added_nodes = 8;
  ElasticScenario scenario = MakeElasticScenario(eo);
  FspsOptions fo;
  fo.shards = 1;
  auto fsps = MakeElasticFederation(scenario, fo);
  ElasticRunResult r = RunElasticScenario(fsps.get(), scenario, Seconds(5));
  ASSERT_GT(r.autoscaler.ticks, 0u);
  ASSERT_GT(r.autoscaler.grow_actions, 0u);

  // Every tick logged one structured decision line; grows were acted on.
  EXPECT_TRUE(capture.Contains("autoscaler decision t_us="));
  EXPECT_TRUE(capture.Contains("action=grow"));
  size_t decisions = 0;
  for (const CapturedLog& line : capture.lines()) {
    if (line.msg.find("autoscaler decision ") == 0) {
      ++decisions;
      EXPECT_NE(line.msg.find(" util="), std::string::npos);
      EXPECT_NE(line.msg.find(" action="), std::string::npos);
      EXPECT_NE(line.msg.find(" grow_streak="), std::string::npos);
    }
  }
  EXPECT_EQ(decisions, r.autoscaler.ticks);

  // The same decisions surfaced as registry counters.
  EXPECT_EQ(
      telemetry.metrics().GetCounter("autoscaler.ticks")->Value(),
      r.autoscaler.ticks);
  EXPECT_EQ(
      telemetry.metrics().GetCounter("autoscaler.grow_actions")->Value(),
      r.autoscaler.grow_actions);
}

// --- logging sink --------------------------------------------------------

TEST(TelemetryLogSinkTest, ScopedCaptureFiltersByLevelAndRestores) {
  {
    ScopedLogCapture capture(LogLevel::kInfo);
    THEMIS_LOG(Debug) << "below capture level";
    THEMIS_LOG(Info) << "captured info";
    THEMIS_LOG(Warn) << "captured warn";
    EXPECT_FALSE(capture.Contains("below capture level"));
    EXPECT_TRUE(capture.Contains("captured info"));
    EXPECT_TRUE(capture.Contains("captured warn"));
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].level, LogLevel::kInfo);
  }
  // Sink restored: logging after the capture must not crash (stderr sink)
  // and the level is back at its default.
  THEMIS_LOG(Info) << "after capture";
}

}  // namespace
}  // namespace themis
