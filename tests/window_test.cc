// Unit tests for the window model (runtime/window.h): tumbling, sliding and
// count windows, SIC mass conservation across panes, late-data policy.
#include <gtest/gtest.h>

#include "common/time_types.h"
#include "runtime/window.h"

namespace themis {
namespace {

Tuple MakeTuple(SimTime ts, double sic, double v = 0.0) {
  return Tuple(ts, sic, {Value(v)});
}

TEST(TumblingWindowTest, PanesCloseAtWatermark) {
  WindowBuffer w(WindowSpec::TumblingTime(kSecond));
  w.Add(MakeTuple(100, 0.1));
  w.Add(MakeTuple(900000, 0.1));          // same pane [0, 1s)
  w.Add(MakeTuple(kSecond + 1, 0.1));     // pane [1s, 2s)

  auto panes = w.Advance(kSecond);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_EQ(panes[0].start, 0);
  EXPECT_EQ(panes[0].end, kSecond);
  EXPECT_EQ(panes[0].tuples.size(), 2u);
  EXPECT_DOUBLE_EQ(panes[0].TotalSic(), 0.2);

  panes = w.Advance(2 * kSecond);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_EQ(panes[0].tuples.size(), 1u);
}

TEST(TumblingWindowTest, NoPaneBeforeWatermark) {
  WindowBuffer w(WindowSpec::TumblingTime(kSecond));
  w.Add(MakeTuple(100, 0.5));
  EXPECT_TRUE(w.Advance(kSecond - 1).empty());
  EXPECT_EQ(w.buffered(), 1u);
}

TEST(TumblingWindowTest, LateTupleFoldsIntoOpenPane) {
  WindowBuffer w(WindowSpec::TumblingTime(kSecond));
  w.Add(MakeTuple(500, 0.1));
  auto panes = w.Advance(kSecond);
  ASSERT_EQ(panes.size(), 1u);
  // A tuple whose timestamp is in the already-released window must not be
  // lost: it lands in the earliest still-open pane.
  w.Add(MakeTuple(600, 0.7));
  panes = w.Advance(2 * kSecond);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_DOUBLE_EQ(panes[0].TotalSic(), 0.7);
}

TEST(TumblingWindowTest, MultiplePanesReleasedInOrder) {
  WindowBuffer w(WindowSpec::TumblingTime(kSecond));
  for (int s = 0; s < 5; ++s) w.Add(MakeTuple(s * kSecond + 10, 0.1));
  auto panes = w.Advance(5 * kSecond);
  ASSERT_EQ(panes.size(), 5u);
  for (size_t i = 1; i < panes.size(); ++i) {
    EXPECT_LT(panes[i - 1].end, panes[i].end);
  }
}

TEST(SlidingWindowTest, OverlapDividesSic) {
  // range 2s, slide 1s: each tuple appears in 2 panes with half its SIC.
  WindowBuffer w(WindowSpec::SlidingTime(2 * kSecond, kSecond));
  w.Add(MakeTuple(kSecond / 2, 1.0));
  auto panes = w.Advance(3 * kSecond);
  double total = 0.0;
  size_t appearances = 0;
  for (const Pane& p : panes) {
    total += p.TotalSic();
    appearances += p.tuples.size();
  }
  EXPECT_EQ(appearances, 2u);
  EXPECT_DOUBLE_EQ(total, 1.0);  // SIC mass conserved across panes
}

TEST(SlidingWindowTest, PaneEndsAtSlideBoundaries) {
  WindowBuffer w(WindowSpec::SlidingTime(2 * kSecond, kSecond));
  w.Add(MakeTuple(100, 0.3));
  auto panes = w.Advance(2 * kSecond + 1);
  ASSERT_GE(panes.size(), 1u);
  for (const Pane& p : panes) {
    EXPECT_EQ(p.end % kSecond, 0);
    EXPECT_EQ(p.end - p.start, 2 * kSecond);
  }
}

TEST(CountWindowTest, EmitsWhenFull) {
  WindowBuffer w(WindowSpec::Count(3));
  w.Add(MakeTuple(1, 0.1));
  w.Add(MakeTuple(2, 0.1));
  EXPECT_TRUE(w.Advance(kSecond).empty());
  w.Add(MakeTuple(3, 0.1));
  auto panes = w.Advance(kSecond);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_EQ(panes[0].tuples.size(), 3u);
  EXPECT_EQ(w.buffered(), 0u);
}

TEST(CountWindowTest, MultipleFullPanes) {
  WindowBuffer w(WindowSpec::Count(2));
  for (int i = 0; i < 7; ++i) w.Add(MakeTuple(i, 1.0));
  auto panes = w.Advance(0);
  EXPECT_EQ(panes.size(), 3u);
  EXPECT_EQ(w.buffered(), 1u);
}

// Property sweep: SIC mass entering a window equals SIC mass leaving it once
// all panes are released, for any (range, slide) combination.
class SlidingConservationTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SlidingConservationTest, SicMassConserved) {
  auto [range_ms, slide_ms] = GetParam();
  WindowBuffer w(WindowSpec::SlidingTime(Millis(range_ms), Millis(slide_ms)));
  double in_mass = 0.0;
  for (int i = 0; i < 200; ++i) {
    double sic = 0.01 + (i % 7) * 0.001;
    w.Add(MakeTuple(Millis(10) * i, sic));
    in_mass += sic;
  }
  // Push the watermark far enough that every tuple has left every pane.
  auto panes = w.Advance(Millis(10) * 200 + Millis(range_ms) * 2);
  double out_mass = 0.0;
  for (const Pane& p : panes) out_mass += p.TotalSic();
  EXPECT_NEAR(out_mass, in_mass, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RangeSlideCombos, SlidingConservationTest,
    ::testing::Values(std::make_pair(1000, 250), std::make_pair(1000, 500),
                      std::make_pair(2000, 1000), std::make_pair(500, 100),
                      std::make_pair(250, 250)));

}  // namespace
}  // namespace themis
