// Tests for the per-query coordinator: STW accounting, dissemination timing
// and latency, result recording, stop semantics.
#include <gtest/gtest.h>

#include <memory>

#include "federation/coordinator.h"
#include "runtime/operators/receiver.h"
#include "shedding/random_shedder.h"

namespace themis {
namespace {

class NullRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId, SimTime, const std::vector<Tuple>&) override {}
};

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : network_(&queue_, Millis(5)) {
    QueryBuilder b(1, "q");
    OperatorId r = b.Add(std::make_unique<ReceiverOp>(), 0);
    OperatorId o = b.Add(std::make_unique<OutputOp>(), 1);
    b.Connect(r, o).SetRoot(o);
    graph_ = std::move(b.Build()).TakeValue();
  }

  Node* MakeHost(NodeId id) {
    nodes_.push_back(std::make_unique<Node>(id, NodeOptions{}, &queue_,
                                            &router_,
                                            std::make_unique<RandomShedder>(
                                                Rng(1))));
    return nodes_.back().get();
  }

  std::vector<Tuple> ResultTuples(double sic, int n = 1) {
    std::vector<Tuple> ts;
    for (int i = 0; i < n; ++i) {
      ts.push_back(Tuple(queue_.now(), sic / n, {Value(1.0)}));
    }
    return ts;
  }

  EventQueue queue_;
  Network network_;
  NullRouter router_;
  std::unique_ptr<QueryGraph> graph_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(CoordinatorTest, TracksSicOverStw) {
  QueryCoordinator::Options opts;
  opts.stw = Seconds(10);
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  queue_.RunUntil(Seconds(1));
  coord.OnResult(queue_.now(), ResultTuples(0.3));
  queue_.RunUntil(Seconds(2));
  coord.OnResult(queue_.now(), ResultTuples(0.4));
  EXPECT_NEAR(coord.CurrentSic(), 0.7, 1e-12);
  // After the STW passes the first contribution, only the second remains.
  queue_.RunUntil(Seconds(11) + 1);
  EXPECT_NEAR(coord.CurrentSic(), 0.4, 1e-12);
}

TEST_F(CoordinatorTest, DisseminatesToHostsWithLatency) {
  QueryCoordinator::Options opts;
  opts.update_interval = Millis(250);
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  coord.SetHome(0);
  Node* host = MakeHost(3);
  coord.AddHost(3, host);
  coord.Start();
  coord.OnResult(0, ResultTuples(0.5));

  // First update fires at 250 ms and arrives after the 5 ms link latency.
  queue_.RunUntil(Millis(254));
  EXPECT_TRUE(host->known_query_sic().empty());
  queue_.RunUntil(Millis(256));
  ASSERT_EQ(host->known_query_sic().count(1), 1u);
  EXPECT_NEAR(host->known_query_sic().at(1), 0.5, 1e-12);
}

TEST_F(CoordinatorTest, DisseminationCountsTraffic) {
  QueryCoordinator::Options opts;
  opts.update_interval = Millis(100);
  opts.update_message_bytes = 30;
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  coord.SetHome(0);
  coord.AddHost(1, MakeHost(1));
  coord.AddHost(2, MakeHost(2));
  coord.Start();
  queue_.RunUntil(Seconds(1));
  // 10 update rounds x 2 hosts, 30 bytes each (§7.6).
  EXPECT_EQ(network_.messages_sent(), 20u);
  EXPECT_EQ(network_.bytes_sent(), 600u);
}

TEST_F(CoordinatorTest, DisseminationCanBeDisabled) {
  QueryCoordinator::Options opts;
  opts.disseminate = false;
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  coord.SetHome(0);
  coord.AddHost(1, MakeHost(1));
  coord.Start();
  queue_.RunUntil(Seconds(2));
  EXPECT_EQ(network_.messages_sent(), 0u);
}

TEST_F(CoordinatorTest, StopHaltsUpdatesAndResults) {
  QueryCoordinator::Options opts;
  opts.update_interval = Millis(100);
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  coord.SetHome(0);
  coord.AddHost(1, MakeHost(1));
  coord.Start();
  queue_.RunUntil(Millis(350));
  uint64_t sent_before = network_.messages_sent();
  coord.Stop();
  coord.OnResult(queue_.now(), ResultTuples(0.9));
  queue_.RunUntil(Seconds(2));
  // At most the already-scheduled update fires after Stop().
  EXPECT_LE(network_.messages_sent(), sent_before + 1);
  EXPECT_EQ(coord.result_tuples(), 0u);
}

TEST_F(CoordinatorTest, RecordsResultsWhenEnabled) {
  QueryCoordinator::Options opts;
  opts.record_results = true;
  QueryCoordinator coord(graph_.get(), opts, &queue_, &network_);
  coord.OnResult(Seconds(1), ResultTuples(0.2, 3));
  EXPECT_EQ(coord.results().size(), 3u);
  EXPECT_EQ(coord.result_tuples(), 3u);
  EXPECT_NEAR(coord.results()[0].sic, 0.2 / 3, 1e-12);
}

TEST_F(CoordinatorTest, RecordingOffByDefault) {
  QueryCoordinator coord(graph_.get(), {}, &queue_, &network_);
  coord.OnResult(Seconds(1), ResultTuples(0.2, 3));
  EXPECT_TRUE(coord.results().empty());
  EXPECT_EQ(coord.result_tuples(), 3u);
}

}  // namespace
}  // namespace themis
