// Tests for the node input buffer: FIFO semantics, tuple accounting and
// shedder-driven retention.
#include <gtest/gtest.h>

#include "node/input_buffer.h"

namespace themis {
namespace {

Batch B(QueryId q, size_t n, double sic) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(Tuple(0, sic / static_cast<double>(n), {Value(0.0)}));
  }
  return MakeBatch(q, 0, 0, 0, std::move(ts));
}

TEST(InputBufferTest, FifoOrder) {
  InputBuffer ib;
  ib.Push(B(1, 2, 0.1));
  ib.Push(B(2, 3, 0.2));
  EXPECT_EQ(ib.num_batches(), 2u);
  EXPECT_EQ(ib.num_tuples(), 5u);
  auto first = ib.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.query_id, 1);
  EXPECT_EQ(ib.num_tuples(), 3u);
}

TEST(InputBufferTest, PopEmptyReturnsNullopt) {
  InputBuffer ib;
  EXPECT_FALSE(ib.Pop().has_value());
}

TEST(InputBufferTest, RetainIndicesKeepsOrderAndCountsDrops) {
  InputBuffer ib;
  for (int i = 0; i < 5; ++i) ib.Push(B(i, 10, 0.1));
  size_t dropped = ib.RetainIndices({1, 3});
  EXPECT_EQ(dropped, 30u);
  EXPECT_EQ(ib.num_batches(), 2u);
  EXPECT_EQ(ib.num_tuples(), 20u);
  EXPECT_EQ(ib.Pop()->header.query_id, 1);
  EXPECT_EQ(ib.Pop()->header.query_id, 3);
}

TEST(InputBufferTest, RetainAllAndNone) {
  InputBuffer ib;
  ib.Push(B(1, 4, 0.1));
  ib.Push(B(2, 6, 0.1));
  EXPECT_EQ(ib.RetainIndices({0, 1}), 0u);
  EXPECT_EQ(ib.num_tuples(), 10u);
  EXPECT_EQ(ib.RetainIndices({}), 10u);
  EXPECT_TRUE(ib.empty());
}

TEST(InputBufferTest, SicOfQuerySumsHeaders) {
  InputBuffer ib;
  ib.Push(B(1, 2, 0.1));
  ib.Push(B(2, 2, 0.2));
  ib.Push(B(1, 2, 0.3));
  EXPECT_NEAR(ib.SicOfQuery(1), 0.4, 1e-12);
  EXPECT_NEAR(ib.SicOfQuery(2), 0.2, 1e-12);
  EXPECT_EQ(ib.SicOfQuery(99), 0.0);
}

}  // namespace
}  // namespace themis
