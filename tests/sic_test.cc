// Tests for the SIC module: Eq. (1), the online rate estimator and the
// sliding-STW result tracker.
#include <gtest/gtest.h>

#include "sic/rate_estimator.h"
#include "sic/sic.h"
#include "sic/stw_tracker.h"

namespace themis {
namespace {

TEST(SourceTupleSicTest, Equation1) {
  // Fig. 3: a 30 t/s source over a 1 s STW in a 1-source query -> 1/30.
  EXPECT_DOUBLE_EQ(SourceTupleSic(30.0, 1), 1.0 / 30.0);
  // q4 of Fig. 3: 20 t/s source, 2 sources -> 1/40.
  EXPECT_DOUBLE_EQ(SourceTupleSic(20.0, 2), 1.0 / 40.0);
}

TEST(SourceTupleSicTest, DegenerateInputsAreZero) {
  EXPECT_EQ(SourceTupleSic(0.0, 3), 0.0);
  EXPECT_EQ(SourceTupleSic(10.0, 0), 0.0);
  EXPECT_EQ(SourceTupleSic(-5.0, 1), 0.0);
}

TEST(ClampQuerySicTest, ClampsToUnitInterval) {
  EXPECT_EQ(ClampQuerySic(-0.1), 0.0);
  EXPECT_EQ(ClampQuerySic(0.5), 0.5);
  EXPECT_EQ(ClampQuerySic(1.2), 1.0);
}

TEST(RateEstimatorTest, ConstantRateConverges) {
  RateEstimator est(Seconds(10));
  // 100 tuples/sec in 10-tuple batches every 100 ms, for 20 s.
  for (int i = 0; i < 200; ++i) est.Observe(Millis(100) * i, 10);
  SimTime now = Millis(100) * 199;
  // Expected: ~1000 tuples per 10 s STW.
  EXPECT_NEAR(est.TuplesPerStw(now), 1000.0, 20.0);
}

TEST(RateEstimatorTest, EarlyEstimateExtrapolates) {
  RateEstimator est(Seconds(10));
  est.Observe(0, 10);
  est.Observe(Millis(100), 10);
  est.Observe(Millis(200), 10);
  // 30 tuples over 200 ms extrapolates to 1500 per 10 s.
  EXPECT_NEAR(est.TuplesPerStw(Millis(200)), 1500.0, 1.0);
}

TEST(RateEstimatorTest, RateChangeTracksWithin) {
  RateEstimator est(Seconds(2));
  for (int i = 0; i < 20; ++i) est.Observe(Millis(100) * i, 10);   // 100 t/s
  for (int i = 20; i < 60; ++i) est.Observe(Millis(100) * i, 50);  // 500 t/s
  SimTime now = Millis(100) * 59;
  EXPECT_NEAR(est.TuplesPerStw(now), 1000.0, 60.0);  // 500 t/s * 2 s
}

TEST(RateEstimatorTest, EmptyIsZero) {
  RateEstimator est(Seconds(10));
  EXPECT_EQ(est.TuplesPerStw(Seconds(5)), 0.0);
}

TEST(RateEstimatorTest, ColdStartReturnsRawCount) {
  // A single instantaneous observation has no rate to extrapolate from;
  // the estimate is the raw batch count, corrected by the next batch.
  RateEstimator est(Seconds(10));
  est.Observe(Seconds(3), 25);
  EXPECT_EQ(est.TuplesPerStw(Seconds(3)), 25.0);
}

TEST(RateEstimatorTest, IdleGapResetsExtrapolation) {
  // Regression test: a source pauses (node crash) for longer than one STW
  // and rejoins. Before the idle reset, `first_observation_` stayed pinned
  // at the pre-gap epoch, `elapsed >= stw` disabled the warm-up
  // extrapolation, and the first post-gap estimates were one raw batch per
  // window — a ~100x underestimate that skewed the first overload
  // decision after the rejoin.
  RateEstimator est(Seconds(10));
  // 100 t/s for 2 s, then 30 s of silence, then the source rejoins.
  for (int i = 0; i < 20; ++i) est.Observe(Millis(100) * i, 10);
  SimTime rejoin = Seconds(32);
  est.Observe(rejoin, 10);
  EXPECT_EQ(est.TuplesPerStw(rejoin), 10.0);  // cold start again
  est.Observe(rejoin + Millis(100), 10);
  est.Observe(rejoin + Millis(200), 10);
  // Extrapolation restarted: 30 tuples over 200 ms -> ~1500 per 10 s,
  // not the raw 30 the stale epoch start used to produce.
  EXPECT_NEAR(est.TuplesPerStw(rejoin + Millis(200)), 1500.0, 1.0);
}

TEST(RateEstimatorTest, ExtrapolationIsClamped) {
  // Two samples one microsecond apart must not blow the estimate up by
  // stw/1us; the extrapolation span is floored at 1 ms.
  RateEstimator est(Seconds(10));
  est.Observe(0, 10);
  est.Observe(1, 10);
  // Unclamped this would be 20 * 10s / 1us = 2e8; the floor caps it at
  // 20 * 10s / 1ms = 2e5.
  EXPECT_NEAR(est.TuplesPerStw(1), 200000.0, 1.0);
}

TEST(StwTrackerTest, SumsWithinWindow) {
  StwTracker t(Seconds(10));
  t.AddResultSic(Seconds(1), 0.2);
  t.AddResultSic(Seconds(2), 0.3);
  EXPECT_DOUBLE_EQ(t.QuerySic(Seconds(2)), 0.5);
}

TEST(StwTrackerTest, OldEntriesExpire) {
  StwTracker t(Seconds(10));
  t.AddResultSic(Seconds(1), 0.4);
  t.AddResultSic(Seconds(12), 0.3);
  // At t=12s the entry from t=1s is outside (2, 12].
  EXPECT_DOUBLE_EQ(t.QuerySic(Seconds(12)), 0.3);
}

TEST(StwTrackerTest, ClampsAtOne) {
  StwTracker t(Seconds(10));
  t.AddResultSic(Seconds(1), 0.8);
  t.AddResultSic(Seconds(2), 0.6);
  EXPECT_DOUBLE_EQ(t.QuerySic(Seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(t.RawSum(Seconds(2)), 1.4);
}

TEST(StwTrackerTest, PerfectProcessingStaysNearOne) {
  // A query that receives 0.1 SIC every second over a 10 s STW holds ~1.0.
  StwTracker t(Seconds(10));
  for (int s = 1; s <= 60; ++s) t.AddResultSic(Seconds(s), 0.1);
  EXPECT_NEAR(t.QuerySic(Seconds(60)), 1.0, 1e-9);
}

}  // namespace
}  // namespace themis
