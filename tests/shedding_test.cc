// Tests for the shedding module: cost model, overload detector, random
// shedder and the BALANCE-SIC shedder — including the Figure 3 single-node
// scenario of the paper.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "metrics/jain.h"
#include "shedding/balance_sic_shedder.h"
#include "shedding/cost_model.h"
#include "shedding/overload_detector.h"
#include "shedding/random_shedder.h"

namespace themis {
namespace {

// Builds a single-tuple batch for query `q` with the given per-tuple SIC.
Batch B1(QueryId q, double sic) {
  Tuple t(0, sic, {Value(0.0)});
  return MakeBatch(q, /*op=*/0, /*port=*/0, /*created=*/0, {t});
}

// Builds an n-tuple batch with total SIC `sic`.
Batch Bn(QueryId q, size_t n, double sic) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) ts.push_back(Tuple(0, sic / n, {Value(0.0)}));
  return MakeBatch(q, 0, 0, 0, std::move(ts));
}

size_t KeptTuples(const std::deque<Batch>& ib,
                  const std::vector<size_t>& keep) {
  size_t n = 0;
  for (size_t i : keep) n += ib[i].size();
  return n;
}

std::map<QueryId, double> KeptSicPerQuery(const std::deque<Batch>& ib,
                                          const std::vector<size_t>& keep) {
  std::map<QueryId, double> out;
  for (const Batch& b : ib) out[b.header.query_id];  // ensure all queries
  for (size_t i : keep) out[ib[i].header.query_id] += ib[i].header.sic;
  return out;
}

TEST(CostModelTest, DefaultCapacityBeforeMeasurements) {
  CostModel cm(8, /*default_cost_us=*/50.0);
  EXPECT_FALSE(cm.has_measurements());
  EXPECT_EQ(cm.EstimateCapacity(Millis(250)), 5000u);
}

TEST(CostModelTest, LearnsPerTupleCost) {
  CostModel cm;
  cm.RecordInterval(100, Millis(100));  // 1 ms per tuple
  EXPECT_NEAR(cm.PerTupleUs(), 1000.0, 1e-9);
  EXPECT_EQ(cm.EstimateCapacity(Millis(250)), 250u);
}

TEST(CostModelTest, MovingAverageSmoothsChanges) {
  CostModel cm(4);
  cm.RecordInterval(100, Millis(100));  // 1000 us
  cm.RecordInterval(100, Millis(300));  // 3000 us
  EXPECT_NEAR(cm.PerTupleUs(), 2000.0, 1e-9);
}

TEST(CostModelTest, IgnoresEmptyIntervals) {
  CostModel cm;
  cm.RecordInterval(100, Millis(100));
  cm.RecordInterval(0, Millis(100));
  cm.RecordInterval(50, 0);
  EXPECT_NEAR(cm.PerTupleUs(), 1000.0, 1e-9);
}

TEST(CostModelTest, CapacityNeverBelowOne) {
  CostModel cm;
  cm.RecordInterval(1, Seconds(100));
  EXPECT_EQ(cm.EstimateCapacity(Millis(1)), 1u);
}

TEST(OverloadDetectorTest, ThresholdComparison) {
  OverloadDetector d;
  EXPECT_FALSE(d.IsOverloaded(100, 100));
  EXPECT_TRUE(d.IsOverloaded(101, 100));
}

TEST(OverloadDetectorTest, HeadroomDelaysDetection) {
  OverloadDetector d(1.5);
  EXPECT_FALSE(d.IsOverloaded(140, 100));
  EXPECT_TRUE(d.IsOverloaded(151, 100));
}

TEST(RandomShedderTest, RespectsCapacity) {
  RandomShedder shedder{Rng(1)};
  std::deque<Batch> ib;
  for (int i = 0; i < 20; ++i) ib.push_back(Bn(0, 10, 0.1));
  ShedContext ctx;
  ctx.capacity_tuples = 55;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  EXPECT_LE(KeptTuples(ib, keep), 55u);
  EXPECT_EQ(keep.size(), 5u);  // 10-tuple batches, 55 capacity -> 5 batches
}

TEST(RandomShedderTest, KeepsEverythingWhenItFits) {
  RandomShedder shedder{Rng(2)};
  std::deque<Batch> ib;
  for (int i = 0; i < 5; ++i) ib.push_back(Bn(0, 10, 0.1));
  ShedContext ctx;
  ctx.capacity_tuples = 1000;
  EXPECT_EQ(shedder.SelectBatchesToKeep(ib, ctx).size(), 5u);
}

TEST(RandomShedderTest, IndicesSortedAndUnique) {
  RandomShedder shedder{Rng(3)};
  std::deque<Batch> ib;
  for (int i = 0; i < 50; ++i) ib.push_back(B1(i % 5, 0.01));
  ShedContext ctx;
  ctx.capacity_tuples = 20;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  std::set<size_t> unique(keep.begin(), keep.end());
  EXPECT_EQ(unique.size(), keep.size());
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
}

// ---- BALANCE-SIC: the Figure 3 scenario --------------------------------
//
// Node capacity c = 10 tuples. Four queries with per-tuple SIC values
// 1/20 (q1), 1/30 (q2), 1/10 (q3), and q4 with two sources at 1/20 and
// 1/40. The algorithm must equalise accepted SIC at 0.1 per query, then
// spend the remaining capacity (the paper gives one extra tuple to a
// randomly chosen minimum query).
TEST(BalanceSicShedderTest, Figure3Scenario) {
  std::deque<Batch> ib;
  for (int i = 0; i < 20; ++i) ib.push_back(B1(1, 1.0 / 20));
  for (int i = 0; i < 30; ++i) ib.push_back(B1(2, 1.0 / 30));
  for (int i = 0; i < 10; ++i) ib.push_back(B1(3, 1.0 / 10));
  for (int i = 0; i < 10; ++i) ib.push_back(B1(4, 1.0 / 20));
  for (int i = 0; i < 20; ++i) ib.push_back(B1(4, 1.0 / 40));

  BalanceSicShedder shedder(Rng(42));
  ShedContext ctx;
  ctx.capacity_tuples = 10;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);

  // Full capacity used (enough tuples exist).
  EXPECT_EQ(KeptTuples(ib, keep), 10u);

  auto kept_sic = KeptSicPerQuery(ib, keep);
  ASSERT_EQ(kept_sic.size(), 4u);
  // Every query reaches at least the water level 0.1 and none exceeds it by
  // more than one tuple's worth.
  for (const auto& [q, sic] : kept_sic) {
    EXPECT_GE(sic, 0.1 - 1e-9) << "query " << q;
    EXPECT_LE(sic, 0.1 + 0.1 + 1e-9) << "query " << q;
  }
  // Balance: Jain's index of accepted SIC near 1. The paper's trace ends at
  // {0.1, 0.133, 0.1, 0.1} (J = 0.993); which min-query receives the two
  // leftover-capacity tuples is random, and the worst draw (both to q3,
  // whose tuples are worth 1/10) gives {0.2, 0.1, 0.1, 0.1} with J = 0.893.
  std::vector<double> sics;
  for (const auto& [q, s] : kept_sic) sics.push_back(s);
  EXPECT_GE(JainIndex(sics), 0.89);
  // At least three of the four queries sit exactly at the water level.
  int at_level = 0;
  for (double s : sics) {
    if (s <= 0.1 + 1.0 / 30 + 1e-9) ++at_level;
  }
  EXPECT_GE(at_level, 3);
}

TEST(BalanceSicShedderTest, PrefersHighestSicBatchesWithinQuery) {
  std::deque<Batch> ib;
  ib.push_back(B1(1, 0.01));
  ib.push_back(B1(1, 0.05));
  ib.push_back(B1(1, 0.03));
  BalanceSicShedder shedder(Rng(1));
  ShedContext ctx;
  ctx.capacity_tuples = 1;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 1u);  // the 0.05 batch
}

TEST(BalanceSicShedderTest, FifoAblationKeepsArrivalOrder) {
  std::deque<Batch> ib;
  ib.push_back(B1(1, 0.01));
  ib.push_back(B1(1, 0.05));
  BalanceSicOptions opts;
  opts.prefer_high_sic = false;
  BalanceSicShedder shedder(Rng(1), opts);
  ShedContext ctx;
  ctx.capacity_tuples = 1;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 0u);  // first-arrived, not highest-SIC
}

TEST(BalanceSicShedderTest, FavoursTheMostDegradedQuery) {
  // q1 already has result SIC 0.5; q2 has 0.0. With capacity for only part
  // of the buffer, q2's batches must be preferred.
  std::deque<Batch> ib;
  for (int i = 0; i < 10; ++i) ib.push_back(B1(1, 0.02));
  for (int i = 0; i < 10; ++i) ib.push_back(B1(2, 0.02));
  std::map<QueryId, double> qsic = {{1, 0.5}, {2, 0.0}};
  BalanceSicOptions opts;
  opts.project_local_shedding = false;  // use disseminated values directly
  BalanceSicShedder shedder(Rng(1), opts);
  ShedContext ctx;
  ctx.capacity_tuples = 10;
  ctx.query_sic = &qsic;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  auto kept = KeptSicPerQuery(ib, keep);
  EXPECT_GT(kept[2], kept[1]);
  EXPECT_NEAR(kept[2], 0.2, 1e-9);  // all of q2 accepted
}

TEST(BalanceSicShedderTest, ProjectionSubtractsBufferedSic) {
  // With projection on, a disseminated value of 0.2 and 0.2 SIC sitting in
  // the buffer gives a baseline of 0 — both queries then look equally
  // degraded and share capacity.
  std::deque<Batch> ib;
  for (int i = 0; i < 10; ++i) ib.push_back(B1(1, 0.02));
  for (int i = 0; i < 10; ++i) ib.push_back(B1(2, 0.02));
  std::map<QueryId, double> qsic = {{1, 0.2}, {2, 0.0}};
  BalanceSicShedder shedder(Rng(1));  // projection on by default
  ShedContext ctx;
  ctx.capacity_tuples = 10;
  ctx.query_sic = &qsic;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  auto kept = KeptSicPerQuery(ib, keep);
  EXPECT_NEAR(kept[1], kept[2], 0.021);  // within one tuple of each other
}

TEST(BalanceSicShedderTest, EmptyBufferAndZeroCapacity) {
  BalanceSicShedder shedder(Rng(1));
  ShedContext ctx;
  ctx.capacity_tuples = 10;
  EXPECT_TRUE(shedder.SelectBatchesToKeep({}, ctx).empty());
  std::deque<Batch> ib;
  ib.push_back(B1(1, 0.1));
  ctx.capacity_tuples = 0;
  EXPECT_TRUE(shedder.SelectBatchesToKeep(ib, ctx).empty());
}

TEST(BalanceSicShedderTest, KeepsEverythingWhenItFits) {
  std::deque<Batch> ib;
  for (int i = 0; i < 8; ++i) ib.push_back(B1(i % 3, 0.1));
  BalanceSicShedder shedder(Rng(1));
  ShedContext ctx;
  ctx.capacity_tuples = 100;
  EXPECT_EQ(shedder.SelectBatchesToKeep(ib, ctx).size(), 8u);
}

TEST(BalanceSicShedderTest, LargeBatchSkippedWhenItDoesNotFit) {
  std::deque<Batch> ib;
  ib.push_back(Bn(1, 8, 0.8));  // does not fit in capacity 5
  ib.push_back(Bn(1, 4, 0.1));  // fits
  BalanceSicShedder shedder(Rng(1));
  ShedContext ctx;
  ctx.capacity_tuples = 5;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  ASSERT_EQ(keep.size(), 1u);
  EXPECT_EQ(keep[0], 1u);
}

TEST(BalanceSicShedderTest, IndicesSortedUniqueWithinCapacity) {
  Rng data_rng(99);
  std::deque<Batch> ib;
  for (int i = 0; i < 200; ++i) {
    ib.push_back(Bn(static_cast<QueryId>(data_rng.UniformInt(0, 9)),
                    static_cast<size_t>(data_rng.UniformInt(1, 10)),
                    data_rng.Uniform(0.0, 0.05)));
  }
  BalanceSicShedder shedder(Rng(7));
  ShedContext ctx;
  ctx.capacity_tuples = 300;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  std::set<size_t> unique(keep.begin(), keep.end());
  EXPECT_EQ(unique.size(), keep.size());
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
  EXPECT_LE(KeptTuples(ib, keep), 300u);
}

// Property sweep: BALANCE-SIC always yields a fairer (Jain) accepted-SIC
// allocation than random shedding, across seeds and buffer mixes.
class FairnessComparisonTest : public ::testing::TestWithParam<int> {};

TEST_P(FairnessComparisonTest, BalanceSicBeatsRandomOnJain) {
  int seed = GetParam();
  Rng data_rng(seed);
  std::deque<Batch> ib;
  // Skewed per-query SIC values: some queries have cheap (low-SIC) tuples.
  for (QueryId q = 0; q < 8; ++q) {
    double per_tuple = 1.0 / (10.0 * (1 + q % 4));
    int count = 10 + static_cast<int>(data_rng.UniformInt(0, 30));
    for (int i = 0; i < count; ++i) ib.push_back(B1(q, per_tuple));
  }
  ShedContext ctx;
  ctx.capacity_tuples = 40;

  BalanceSicShedder fair{Rng(seed)};
  RandomShedder rnd{Rng(seed)};
  auto fair_keep = fair.SelectBatchesToKeep(ib, ctx);
  auto rnd_keep = rnd.SelectBatchesToKeep(ib, ctx);

  auto jain_of = [&](const std::vector<size_t>& keep) {
    std::vector<double> sics;
    for (const auto& [q, s] : KeptSicPerQuery(ib, keep)) sics.push_back(s);
    return JainIndex(sics);
  };
  EXPECT_GE(jain_of(fair_keep) + 1e-9, jain_of(rnd_keep));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessComparisonTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace themis
