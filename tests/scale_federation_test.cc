// Federation-scale scenario tests: scenario generation determinism, the
// cluster-aligned shard pinning, and the engine guarantees at Fsps level —
// the parallel engine's single-shard run byte-identical to the sequential
// engine, multi-shard runs deterministic, and query departure (Undeploy)
// working under the parallel engine.
#include <gtest/gtest.h>

#include <set>

#include "federation/scale_federation.h"

namespace themis {
namespace {

ScaleScenarioOptions SmallOptions() {
  ScaleScenarioOptions o;
  o.nodes = 16;
  o.clusters = 4;
  o.queries = 12;
  o.arrival_wave = 4;
  o.arrival_interval = Seconds(1);
  o.sources_per_fragment = 2;
  o.source_rate = 40.0;
  o.seed = 11;
  return o;
}

ScaleRunResult RunSmall(int shards, bool force_parsim = false,
                        uint64_t seed = 11) {
  ScaleScenarioOptions o = SmallOptions();
  o.seed = seed;
  ScaleScenario scenario = MakeScaleScenario(o);
  FspsOptions fo;
  fo.shards = shards;
  fo.force_parsim_engine = force_parsim;
  auto fsps = MakeScaleFederation(scenario, fo);
  return RunScaleScenario(fsps.get(), scenario, Seconds(5));
}

void ExpectIdentical(const ScaleRunResult& a, const ScaleRunResult& b) {
  EXPECT_EQ(a.tuples_received, b.tuples_received);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.tuples_shed, b.tuples_shed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.final_sics, b.final_sics);  // exact: no tolerance
  EXPECT_EQ(a.mean_sic, b.mean_sic);
  EXPECT_EQ(a.jain, b.jain);
}

TEST(ScaleScenarioTest, DeterministicInSeed) {
  ScaleScenario a = MakeScaleScenario(SmallOptions());
  ScaleScenario b = MakeScaleScenario(SmallOptions());
  ASSERT_EQ(a.queries.size(), b.queries.size());
  EXPECT_EQ(a.cluster_of_node, b.cluster_of_node);
  EXPECT_EQ(a.total_source_rate, b.total_source_rate);
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].kind, b.queries[i].kind);
    EXPECT_EQ(a.queries[i].fragments, b.queries[i].fragments);
    EXPECT_EQ(a.queries[i].arrival, b.queries[i].arrival);
    EXPECT_EQ(a.queries[i].home_cluster, b.queries[i].home_cluster);
    EXPECT_EQ(a.queries[i].peer_cluster, b.queries[i].peer_cluster);
  }
}

TEST(ScaleScenarioTest, StructureMatchesOptions) {
  ScaleScenarioOptions o;
  o.nodes = 64;
  o.clusters = 8;
  o.queries = 96;
  ScaleScenario s = MakeScaleScenario(o);

  // Contiguous, balanced clusters.
  ASSERT_EQ(s.cluster_of_node.size(), 64u);
  std::vector<int> per_cluster(o.clusters, 0);
  for (int n = 0; n < o.nodes; ++n) {
    ++per_cluster[s.cluster_of_node[n]];
    if (n > 0) {
      EXPECT_GE(s.cluster_of_node[n], s.cluster_of_node[n - 1]);
    }
  }
  for (int c = 0; c < o.clusters; ++c) EXPECT_EQ(per_cluster[c], 8);

  // Staggered arrivals in waves, some WAN-spanning queries, valid peers.
  std::set<SimTime> arrivals;
  int wan_queries = 0;
  for (const ScaleQuerySpec& q : s.queries) {
    arrivals.insert(q.arrival);
    if (q.peer_cluster >= 0) {
      ++wan_queries;
      EXPECT_NE(q.peer_cluster, q.home_cluster);
      EXPECT_LT(q.peer_cluster, o.clusters);
      EXPECT_GE(q.fragments, 2);
    }
  }
  EXPECT_EQ(arrivals.size(), static_cast<size_t>(96 / o.arrival_wave));
  EXPECT_GT(wan_queries, 0);
}

TEST(ScaleFederationTest, ClusterAlignedShardPinning) {
  ScaleScenario scenario = MakeScaleScenario(SmallOptions());
  FspsOptions fo;
  fo.shards = 2;
  auto fsps = MakeScaleFederation(scenario, fo);
  // 4 clusters over 2 shards: same cluster -> same shard, clusters 0/1 on
  // shard 0, clusters 2/3 on shard 1.
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(fsps->shard_of(n), scenario.cluster_of_node[n] / 2);
  }
}

TEST(ScaleFederationTest, SingleShardParsimIdenticalToSequential) {
  ScaleRunResult seq = RunSmall(/*shards=*/1);
  ScaleRunResult par = RunSmall(/*shards=*/1, /*force_parsim=*/true);
  EXPECT_GT(seq.tuples_processed, 0u);
  EXPECT_GT(seq.tuples_shed, 0u);  // overloaded: shedding exercised
  ExpectIdentical(seq, par);
}

TEST(ScaleFederationTest, MultiShardRunsAreDeterministic) {
  ScaleRunResult a = RunSmall(/*shards=*/4);
  ScaleRunResult b = RunSmall(/*shards=*/4);
  EXPECT_GT(a.tuples_processed, 0u);
  ExpectIdentical(a, b);
  ScaleRunResult c = RunSmall(/*shards=*/3);
  ScaleRunResult d = RunSmall(/*shards=*/3);
  ExpectIdentical(c, d);
}

TEST(ScaleFederationTest, DifferentSeedsDiverge) {
  ScaleRunResult a = RunSmall(1, false, 11);
  ScaleRunResult b = RunSmall(1, false, 12);
  EXPECT_NE(a.final_sics, b.final_sics);
}

TEST(ScaleFederationTest, UndeployBetweenSegmentsUnderParallelEngine) {
  ScaleScenario scenario = MakeScaleScenario(SmallOptions());
  FspsOptions fo;
  fo.shards = 4;
  auto fsps = MakeScaleFederation(scenario, fo);
  RunScaleScenario(fsps.get(), scenario, Seconds(3));
  ASSERT_EQ(fsps->query_ids().size(), scenario.queries.size());

  // Departure mid-run: WAN batches and coordinator timers of query 0 are
  // still in flight across shards; they must drain safely.
  ASSERT_TRUE(fsps->Undeploy(0).ok());
  fsps->RunFor(Seconds(5));
  EXPECT_EQ(fsps->query_ids().size(), scenario.queries.size() - 1);
  EXPECT_EQ(fsps->coordinator(0), nullptr);
  for (QueryId q : fsps->query_ids()) {
    EXPECT_GE(fsps->QuerySic(q), 0.0);
  }
  EXPECT_GT(fsps->TotalNodeStats().tuples_processed, 0u);
}

}  // namespace
}  // namespace themis
