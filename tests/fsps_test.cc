// End-to-end integration tests of the federated system: deployment
// validation, single- and multi-fragment execution, SIC convergence, policy
// comparison, coordinator dissemination (the Fig. 4 mechanism) and
// burstiness handling.
#include <gtest/gtest.h>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "federation/testbeds.h"
#include "metrics/jain.h"
#include "workload/workloads.h"

namespace themis {
namespace {

// Deploys `built` on `fsps`, spreading fragments round-robin over all nodes.
// `built` stays owned by the caller so its sources can still be attached.
Status DeploySpread(Fsps* fsps, BuiltQuery* built, Rng* rng) {
  auto placement = PlaceFragments(*built->graph, fsps->node_ids(),
                                  PlacementPolicy::kRoundRobin, 0.0, rng);
  THEMIS_RETURN_NOT_OK(fsps->Deploy(std::move(built->graph), placement));
  return Status::OK();
}

TEST(FspsDeployTest, RejectsMissingPlacement) {
  Fsps fsps;
  fsps.AddNode();
  WorkloadFactory f(1);
  auto built = f.MakeCov(1, {.fragments = 2});
  std::map<FragmentId, NodeId> placement = {{0, 0}};  // fragment 1 missing
  EXPECT_TRUE(
      fsps.Deploy(std::move(built.graph), placement).IsInvalidArgument());
}

TEST(FspsDeployTest, RejectsUnknownNode) {
  Fsps fsps;
  fsps.AddNode();
  WorkloadFactory f(1);
  auto built = f.MakeAvg(1);
  std::map<FragmentId, NodeId> placement = {{0, 99}};
  EXPECT_TRUE(
      fsps.Deploy(std::move(built.graph), placement).IsInvalidArgument());
}

TEST(FspsDeployTest, RejectsDuplicateQuery) {
  Fsps fsps;
  fsps.AddNode();
  WorkloadFactory f(1);
  auto b1 = f.MakeAvg(1);
  auto b2 = f.MakeAvg(1);
  std::map<FragmentId, NodeId> placement = {{0, 0}};
  ASSERT_TRUE(fsps.Deploy(std::move(b1.graph), placement).ok());
  EXPECT_TRUE(fsps.Deploy(std::move(b2.graph), placement).IsAlreadyExists());
}

TEST(FspsDeployTest, AttachSourcesRequiresDeployedQuery) {
  Fsps fsps;
  EXPECT_TRUE(fsps.AttachSources(42, {}).IsNotFound());
}

TEST(FspsIntegrationTest, UnderloadedQueryReachesFullSic) {
  FspsOptions opts;
  opts.seed = 7;
  Fsps fsps(opts);
  fsps.AddNode();
  WorkloadFactory f(1);
  AggregateQueryOptions ao;
  ao.source_rate = 200;
  auto built = f.MakeAvg(1, ao);
  std::map<FragmentId, NodeId> placement = {{0, 0}};
  ASSERT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
  ASSERT_TRUE(fsps.AttachSources(1, built.sources).ok());

  fsps.RunFor(Seconds(30));
  // Eq. (4): with no shedding the result SIC over the STW approaches 1.
  EXPECT_GT(fsps.QuerySic(1), 0.9);
  EXPECT_EQ(fsps.TotalNodeStats().tuples_shed, 0u);
}

TEST(FspsIntegrationTest, MultiFragmentQueryProducesResults) {
  FspsOptions opts;
  opts.seed = 11;
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode();
  fsps.AddNode();
  WorkloadFactory f(2);
  ComplexQueryOptions co;
  co.fragments = 3;
  co.source_rate = 50;
  auto built = f.MakeCov(5, co);
  std::map<FragmentId, NodeId> placement = {{0, 0}, {1, 1}, {2, 2}};
  ASSERT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
  ASSERT_TRUE(fsps.AttachSources(5, built.sources).ok());

  fsps.RunFor(Seconds(30));
  EXPECT_GT(fsps.coordinator(5)->result_tuples(), 10u);
  EXPECT_GT(fsps.QuerySic(5), 0.7);
}

TEST(FspsIntegrationTest, Top5QueryProducesRankedResults) {
  FspsOptions opts;
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode();
  WorkloadFactory f(3);
  ComplexQueryOptions co;
  co.fragments = 2;
  co.sources_per_fragment = 8;
  co.source_rate = 40;
  co.dataset = Dataset::kGaussian;
  auto built = f.MakeTop5(6, co);
  std::map<FragmentId, NodeId> placement = {{0, 0}, {1, 1}};
  ASSERT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
  ASSERT_TRUE(fsps.AttachSources(6, built.sources).ok());

  fsps.RunFor(Seconds(20));
  const auto& results = fsps.coordinator(6)->results();
  ASSERT_GT(results.size(), 5u);
  // Result tuples are (id, cpu, mem) rows.
  EXPECT_GE(results.back().values.size(), 2u);
}

TEST(FspsIntegrationTest, OverloadShedsButBalances) {
  // One node, many queries: permanent overload (C2). BALANCE-SIC must shed
  // while keeping the queries' SIC values balanced (Fig. 8 behaviour).
  FspsOptions opts;
  opts.seed = 13;
  opts.node.cpu_speed = 0.002;  // weak node -> heavy overload
  Fsps fsps(opts);
  fsps.AddNode();
  WorkloadFactory f(4);
  Rng rng(1);
  const int kQueries = 12;
  for (QueryId q = 0; q < kQueries; ++q) {
    ComplexQueryOptions co;
    co.fragments = 1;
    co.sources_per_fragment = 4;
    co.source_rate = 100;
    auto built = f.MakeRandomComplex(q, co);
    std::map<FragmentId, NodeId> placement;
    for (FragmentId frag : built.graph->fragment_ids()) placement[frag] = 0;
    ASSERT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
    ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }
  // Warm-up, then sample fairness over time as the paper reports it
  // (instantaneous SIC values are noisy at batch granularity).
  fsps.RunFor(Seconds(20));
  double jain_sum = 0.0, mean_sum = 0.0;
  const int kSamples = 10;
  for (int i = 0; i < kSamples; ++i) {
    fsps.RunFor(Seconds(3));
    auto sics = fsps.AllQuerySics();
    EXPECT_EQ(sics.size(), static_cast<size_t>(kQueries));
    jain_sum += JainIndex(sics);
    double m = 0;
    for (double s : sics) m += s;
    mean_sum += m / sics.size();
  }
  EXPECT_GT(fsps.TotalNodeStats().tuples_shed, 0u);
  double mean = mean_sum / kSamples;
  EXPECT_LT(mean, 0.95);                    // degraded
  EXPECT_GT(mean, 0.02);                    // but not starved
  EXPECT_GT(jain_sum / kSamples, 0.82);     // and balanced over time
}

TEST(FspsIntegrationTest, BalanceSicFairerThanRandomUnderOverload) {
  auto run = [](SheddingPolicy policy) {
    FspsOptions opts;
    opts.policy = policy;
    opts.seed = 17;
    opts.node.cpu_speed = 0.02;
    Fsps fsps(opts);
    fsps.AddNode();
    fsps.AddNode();
    WorkloadFactory f(6);
    Rng rng(2);
    for (QueryId q = 0; q < 10; ++q) {
      ComplexQueryOptions co;
      co.fragments = (q % 2) + 1;
      co.sources_per_fragment = 4;
      co.source_rate = 100;
      auto built = f.MakeRandomComplex(q, co);
      EXPECT_TRUE(DeploySpread(&fsps, &built, &rng).ok());
      EXPECT_TRUE(fsps.AttachSources(q, built.sources).ok());
    }
    fsps.RunFor(Seconds(40));
    return JainIndex(fsps.AllQuerySics());
  };
  double fair = run(SheddingPolicy::kBalanceSic);
  double random = run(SheddingPolicy::kRandom);
  EXPECT_GT(fair, random - 0.02);  // fair shedding should not be less fair
}

TEST(FspsIntegrationTest, BurstySourcesStillConverge) {
  FspsOptions opts;
  opts.seed = 23;
  opts.node.cpu_speed = 0.05;
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode();
  WorkloadFactory f(8);
  Rng rng(3);
  for (QueryId q = 0; q < 6; ++q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.sources_per_fragment = 2;
    co.source_rate = 80;
    co.burst_prob = 0.1;
    co.burst_multiplier = 10.0;
    auto built = f.MakeCov(q, co);
    ASSERT_TRUE(DeploySpread(&fsps, &built, &rng).ok());
    ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }
  fsps.RunFor(Seconds(40));
  auto sics = fsps.AllQuerySics();
  EXPECT_GT(JainIndex(sics), 0.75);
}

TEST(TestbedsTest, Table2Presets) {
  TestbedSpec local = LocalTestbed();
  EXPECT_EQ(local.processing_nodes, 1);
  EXPECT_DOUBLE_EQ(local.source_rate, 400.0);
  EXPECT_EQ(local.batches_per_sec, 5);

  TestbedSpec emulab = EmulabTestbed(18);
  EXPECT_EQ(emulab.processing_nodes, 18);
  EXPECT_DOUBLE_EQ(emulab.source_rate, 150.0);
  EXPECT_EQ(emulab.batches_per_sec, 3);
  EXPECT_EQ(emulab.link_latency, Millis(5));
}

TEST(TestbedsTest, MakeTestbedBuildsNodes) {
  auto fsps = MakeTestbed(EmulabTestbed(6), {});
  EXPECT_EQ(fsps->node_ids().size(), 6u);
  SourceModel m = ApplyTestbedRates(EmulabTestbed(6), {});
  EXPECT_DOUBLE_EQ(m.tuples_per_sec, 150.0);
}

TEST(PlacementTest, FragmentsOfOneQueryOnDistinctNodes) {
  WorkloadFactory f(1);
  auto built = f.MakeCov(1, {.fragments = 4});
  Rng rng(5);
  std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5};
  for (auto policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kUniformRandom,
        PlacementPolicy::kZipf}) {
    auto placement = PlaceFragments(*built.graph, nodes, policy, 1.0, &rng);
    ASSERT_EQ(placement.size(), 4u);
    std::set<NodeId> used;
    for (const auto& [frag, node] : placement) used.insert(node);
    EXPECT_EQ(used.size(), 4u);  // distinct nodes
  }
}

TEST(PlacementTest, WrapsWhenMoreFragmentsThanNodes) {
  WorkloadFactory f(1);
  auto built = f.MakeCov(1, {.fragments = 5});
  Rng rng(5);
  std::vector<NodeId> nodes = {0, 1};
  auto placement = PlaceFragments(*built.graph, nodes, PlacementPolicy::kZipf,
                                  1.0, &rng);
  EXPECT_EQ(placement.size(), 5u);
}

TEST(PlacementTest, WrapAroundStaysMaximallySpread) {
  // Regression test: when the live node list shrinks below the fragment
  // count (mid-run crashes), the wrap-around must still spread in rounds —
  // no node takes a third fragment while another has one. The old raw-draw
  // wrap could co-locate fragments on a hot node with others idle.
  WorkloadFactory f(1);
  auto built = f.MakeCov(1, {.fragments = 7});
  std::vector<NodeId> live = {0, 1, 2};
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto placement = PlaceFragments(*built.graph, live,
                                    PlacementPolicy::kZipf, 1.0, &rng);
    ASSERT_EQ(placement.size(), 7u);
    std::map<NodeId, int> load;
    for (const auto& [frag, node] : placement) ++load[node];
    // 7 fragments over 3 nodes: the only maximally-spread split is 3/2/2.
    for (const auto& [node, count] : load) {
      EXPECT_GE(count, 2) << "seed " << seed << " node " << node;
      EXPECT_LE(count, 3) << "seed " << seed << " node " << node;
    }
  }
}

TEST(PlacementTest, Seed42ZipfPlacementBytesArePinned) {
  // Golden placement for the canonical seed: any change to the draw order,
  // probe rule, or wrap policy shows up as a diff here before it can
  // silently shift every Zipf experiment.
  WorkloadFactory f(42);
  auto built = f.MakeCov(7, {.fragments = 4});
  Rng rng(42);
  std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  auto placement =
      PlaceFragments(*built.graph, nodes, PlacementPolicy::kZipf, 1.2, &rng);
  std::vector<FragmentId> frags = built.graph->fragment_ids();
  std::sort(frags.begin(), frags.end());
  ASSERT_EQ(frags.size(), 4u);
  std::vector<NodeId> got;
  for (FragmentId frag : frags) got.push_back(placement.at(frag));
  EXPECT_EQ(got, (std::vector<NodeId>{2, 3, 0, 5}));
}

TEST(PlacementTest, ZipfSkewsLoad) {
  WorkloadFactory f(1);
  Rng rng(5);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(i);
  std::map<NodeId, int> load;
  for (int q = 0; q < 300; ++q) {
    auto built = f.MakeAvg(q);
    auto placement =
        PlaceFragments(*built.graph, nodes, PlacementPolicy::kZipf, 1.2, &rng);
    for (const auto& [frag, node] : placement) ++load[node];
  }
  EXPECT_GT(load[0], load[9] * 2);  // head node clearly hotter
}

}  // namespace
}  // namespace themis
