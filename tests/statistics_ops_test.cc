// Tests for the extended statistics operators (variance, quantile, distinct
// count, EWMA, delta).
#include <gtest/gtest.h>

#include "runtime/operators/statistics.h"

namespace themis {
namespace {

Tuple T1(SimTime ts, double v, double sic = 0.1) {
  return Tuple(ts, sic, {Value(v)});
}

Tuple TK(SimTime ts, int64_t k, double sic = 0.1) {
  return Tuple(ts, sic, {Value(k)});
}

std::vector<Tuple> Advance(Operator& op, SimTime wm) {
  std::vector<Tuple> out;
  op.Advance(wm, &out);
  return out;
}

TEST(VarianceOpTest, PopulationVariance) {
  VarianceOp op(0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 2), T1(2, 4), T1(3, 4), T1(4, 4), T1(5, 5), T1(6, 5),
             T1(7, 7), T1(8, 9)},
            0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 4.0);  // stddev 2 -> var 4
  EXPECT_NEAR(out[0].sic, 0.8, 1e-12);                // Eq. (3): pane mass
}

TEST(VarianceOpTest, SingleValueIsZero) {
  VarianceOp op(0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 42)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 0.0);
}

TEST(QuantileOpTest, MedianNearestRank) {
  QuantileOp op(0.5, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 10), T1(2, 20), T1(3, 30), T1(4, 40), T1(5, 50)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  // Nearest rank: ceil(0.5*5) = 3rd smallest = 30.
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 30.0);
}

TEST(QuantileOpTest, ExtremeQuantiles) {
  QuantileOp p01(0.01, 0, WindowSpec::TumblingTime(kSecond));
  QuantileOp p99(0.99, 0, WindowSpec::TumblingTime(kSecond));
  std::vector<Tuple> in;
  for (int i = 1; i <= 100; ++i) in.push_back(T1(i, i));
  p01.Ingest(in, 0);
  p99.Ingest(in, 0);
  EXPECT_DOUBLE_EQ(AsDouble(Advance(p01, kSecond)[0].values[0]), 1.0);
  EXPECT_DOUBLE_EQ(AsDouble(Advance(p99, kSecond)[0].values[0]), 99.0);
}

TEST(DistinctCountOpTest, CountsUniqueKeys) {
  DistinctCountOp op(0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({TK(1, 7), TK(2, 7), TK(3, 9), TK(4, 7), TK(5, 3)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].values[0]), 3);
}

TEST(EwmaOpTest, SmoothsAcrossPanes) {
  EwmaOp op(0.5, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(100, 10)}, 0);
  auto out1 = Advance(op, kSecond);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out1[0].values[0]), 10.0);  // initialised

  op.Ingest({T1(kSecond + 100, 20)}, 0);
  auto out2 = Advance(op, 2 * kSecond);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out2[0].values[0]), 15.0);  // 0.5*20 + 0.5*10
}

TEST(DeltaOpTest, EmitsDifferenceOfConsecutivePaneMeans) {
  DeltaOp op(0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(100, 10), T1(200, 20)}, 0);  // mean 15
  EXPECT_TRUE(Advance(op, kSecond).empty());  // first pane: no predecessor

  op.Ingest({T1(kSecond + 100, 40)}, 0);  // mean 40
  auto out = Advance(op, 2 * kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 25.0);
}

TEST(DeltaOpTest, EmptyPanesDoNotDisturbState) {
  DeltaOp op(0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(100, 10)}, 0);
  Advance(op, kSecond);
  // Nothing arrives in windows 2-3; next data in window 4.
  op.Ingest({T1(3 * kSecond + 100, 25)}, 0);
  auto out = Advance(op, 4 * kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 15.0);
}

// Property: every statistics operator emits exactly one tuple per non-empty
// pane carrying the pane's full SIC mass (they are all 1-output aggregates).
class StatisticsSicTest : public ::testing::TestWithParam<int> {};

TEST_P(StatisticsSicTest, OneOutputWithPaneMass) {
  std::unique_ptr<Operator> op;
  switch (GetParam()) {
    case 0:
      op = std::make_unique<VarianceOp>(0, WindowSpec::TumblingTime(kSecond));
      break;
    case 1:
      op = std::make_unique<QuantileOp>(0.9, 0,
                                        WindowSpec::TumblingTime(kSecond));
      break;
    case 2:
      op = std::make_unique<DistinctCountOp>(0,
                                             WindowSpec::TumblingTime(kSecond));
      break;
    default:
      op = std::make_unique<EwmaOp>(0.3, 0, WindowSpec::TumblingTime(kSecond));
      break;
  }
  op->Ingest({T1(1, 1, 0.25), T1(2, 2, 0.25), T1(3, 3, 0.5)}, 0);
  std::vector<Tuple> out;
  op->Advance(kSecond, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].sic, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllStatsOps, StatisticsSicTest,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace themis
