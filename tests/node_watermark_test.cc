// Regression tests for the queue-aware watermark (DESIGN.md §4b item 4) and
// the node's accepted-SIC tracking: under overload, queue delay must not
// split a window's two join inputs across different panes.
#include <gtest/gtest.h>

#include <memory>

#include "node/node.h"
#include "runtime/operators/covariance.h"
#include "runtime/operators/receiver.h"
#include "shedding/balance_sic_shedder.h"

namespace themis {
namespace {

class ResultCounter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId query, SimTime,
                     const std::vector<Tuple>& results) override {
    counts[query] += results.size();
    for (const Tuple& t : results) sic[query] += t.sic;
  }
  std::map<QueryId, uint64_t> counts;
  std::map<QueryId, double> sic;
};

// Two-source covariance query in one fragment.
std::unique_ptr<QueryGraph> MakeCovGraph(QueryId q, SourceId s1, SourceId s2,
                                         double recv_cost_us) {
  QueryBuilder b(q, "cov");
  auto r1 = std::make_unique<ReceiverOp>();
  auto r2 = std::make_unique<ReceiverOp>();
  r1->set_cost_us_per_tuple(recv_cost_us);
  r2->set_cost_us_per_tuple(recv_cost_us);
  OperatorId recv1 = b.Add(std::move(r1), 0);
  OperatorId recv2 = b.Add(std::move(r2), 0);
  OperatorId cov = b.Add(
      std::make_unique<CovarianceOp>(0, 0, WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv1, cov, 0).Connect(recv2, cov, 1).Connect(cov, out);
  b.BindSource(s1, recv1).BindSource(s2, recv2).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

Batch SourceBatch(QueryId q, SourceId src, OperatorId dest, SimTime now,
                  size_t n, Rng* rng) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(Tuple(now, 0.0, {Value(rng->Uniform(0, 100))}));
  }
  Batch b = MakeBatch(q, dest, 0, now, std::move(ts));
  b.header.source = src;
  return b;
}

TEST(NodeWatermarkTest, QueueDelayDoesNotStarveBinaryOperators) {
  // Per-tuple cost 4 ms: a 20-tuple batch takes 80 ms, so with batches from
  // two sources every 100 ms the input buffer always holds ~2 intervals of
  // data. Without holding the watermark back to the oldest queued batch,
  // the covariance operator's two panes drift apart and nothing is emitted.
  EventQueue queue;
  ResultCounter router;
  NodeOptions options;
  options.window_grace = Millis(200);
  Node node(0, options, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(1)));
  auto graph = MakeCovGraph(1, 10, 11, /*recv_cost_us=*/4000.0);
  node.HostFragment(graph.get(), 0);
  node.Start();

  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    queue.Schedule(Millis(100) * i, [&, i] {
      node.Receive(SourceBatch(1, 10, 0, queue.now(), 20, &rng));
      node.Receive(SourceBatch(1, 11, 1, queue.now(), 20, &rng));
    });
  }
  queue.RunUntil(Seconds(25));

  // The node is saturated (shedding happens) but windows stay aligned and
  // covariance results keep flowing.
  EXPECT_GT(node.stats().tuples_shed, 0u);
  EXPECT_GT(router.counts[1], 10u);
}

TEST(NodeWatermarkTest, AcceptedSicTracksProcessedMass) {
  EventQueue queue;
  ResultCounter router;
  Node node(0, NodeOptions{}, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(1)));
  auto graph = MakeCovGraph(1, 10, 11, 0.5);
  node.HostFragment(graph.get(), 0);
  node.Start();

  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    queue.Schedule(Millis(100) * i, [&, i] {
      node.Receive(SourceBatch(1, 10, 0, queue.now(), 10, &rng));
      node.Receive(SourceBatch(1, 11, 1, queue.now(), 10, &rng));
    });
  }
  queue.RunUntil(Seconds(12));
  // Underloaded: every batch accepted, so the accepted mass over the STW is
  // ~1 (the full per-STW SIC budget of the query).
  EXPECT_EQ(node.stats().tuples_shed, 0u);
  EXPECT_NEAR(node.AcceptedSic(1, queue.now()), 1.0, 0.2);
  EXPECT_EQ(node.AcceptedSic(99, queue.now()), 0.0);
}

TEST(NodeWatermarkTest, WatermarkNeverPassesOldestQueuedBatch) {
  // White-box via behaviour: deliver a batch, let the node sit busy, then
  // confirm results of the batch's window are not lost even though sim time
  // advanced far past the window end before processing.
  EventQueue queue;
  ResultCounter router;
  NodeOptions options;
  options.window_grace = Millis(100);
  // Disable overload shedding: this test isolates lateness, not capacity.
  options.headroom = 1000.0;
  Node node(0, options, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(1)));
  // Expensive first batch keeps the node busy for 2 simulated seconds.
  auto graph = MakeCovGraph(1, 10, 11, /*recv_cost_us=*/100000.0);
  node.HostFragment(graph.get(), 0);
  node.Start();

  Rng rng(5);
  queue.Schedule(Millis(10), [&] {
    node.Receive(SourceBatch(1, 10, 0, queue.now(), 20, &rng));
    node.Receive(SourceBatch(1, 11, 1, queue.now(), 20, &rng));
  });
  queue.RunUntil(Seconds(10));
  // Both sides of the [0, 1s) window were processed seconds late, yet the
  // covariance still fired exactly once for that window.
  EXPECT_GE(router.counts[1], 1u);
  EXPECT_GT(router.sic[1], 0.0);
}

}  // namespace
}  // namespace themis
