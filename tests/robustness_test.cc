// Cross-cutting robustness tests: value/batch/schema edges, out-of-order
// ingestion, heterogeneous node capacities, policy naming, degenerate
// deployments.
#include <gtest/gtest.h>

#include "federation/fsps.h"
#include "runtime/batch.h"
#include "runtime/schema.h"
#include "runtime/value.h"
#include "runtime/window.h"
#include "workload/workloads.h"

namespace themis {
namespace {

TEST(ValueTest, NumericCoercions) {
  EXPECT_DOUBLE_EQ(AsDouble(Value(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(AsDouble(Value(int64_t{7})), 7.0);
  EXPECT_DOUBLE_EQ(AsDouble(Value(std::string("x"))), 0.0);
  EXPECT_EQ(AsInt(Value(int64_t{7})), 7);
  EXPECT_EQ(AsInt(Value(2.9)), 2);
  EXPECT_EQ(AsInt(Value(std::string("x"))), 0);
  EXPECT_EQ(ValueToString(Value(std::string("abc"))), "abc");
  EXPECT_EQ(ValueToString(Value(int64_t{3})), "3");
}

TEST(SchemaTest, LookupAndToString) {
  Schema s = Schema::IdCpuMem();
  EXPECT_EQ(s.num_fields(), 3u);
  auto idx = s.IndexOf("cpu");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
  EXPECT_EQ(s.ToString(), "id:int64, cpu:double, mem:double");
}

TEST(BatchTest, HeaderSicTracksTuples) {
  Batch b = MakeBatch(1, 2, 0, 100, {Tuple(1, 0.25, {Value(1.0)}),
                                     Tuple(2, 0.5, {Value(2.0)})});
  EXPECT_EQ(b.header.query_id, 1);
  EXPECT_EQ(b.header.dest_op, 2);
  EXPECT_EQ(b.header.created, 100);
  EXPECT_DOUBLE_EQ(b.header.sic, 0.75);
  b.tuples[0].sic = 0.75;
  EXPECT_DOUBLE_EQ(b.header.sic, 0.75);  // stale until refreshed
  b.RefreshHeaderSic();
  EXPECT_DOUBLE_EQ(b.header.sic, 1.25);
  EXPECT_DOUBLE_EQ(b.TotalSic(), 1.25);
}

TEST(WindowRobustnessTest, ShuffledIngestionConservesMass) {
  // Tuples ingested in random order (network reordering) still release
  // exactly once with full mass, as long as the watermark trails them.
  Rng rng(11);
  std::vector<Tuple> tuples;
  double in_mass = 0.0;
  for (int i = 0; i < 300; ++i) {
    double sic = rng.Uniform(0.001, 0.01);
    in_mass += sic;
    tuples.push_back(
        Tuple(rng.UniformInt(0, Seconds(5) - 1), sic, {Value(0.0)}));
  }
  rng.Shuffle(&tuples);
  WindowBuffer w(WindowSpec::TumblingTime(kSecond));
  for (const Tuple& t : tuples) w.Add(t);
  double out_mass = 0.0;
  size_t out_count = 0;
  for (const Pane& p : w.Advance(Seconds(10))) {
    out_mass += p.TotalSic();
    out_count += p.tuples.size();
  }
  EXPECT_EQ(out_count, 300u);
  EXPECT_NEAR(out_mass, in_mass, 1e-9);
}

TEST(SheddingPolicyTest, AllPoliciesNamed) {
  EXPECT_EQ(SheddingPolicyName(SheddingPolicy::kBalanceSic), "balance-sic");
  EXPECT_EQ(SheddingPolicyName(SheddingPolicy::kRandom), "random");
  EXPECT_EQ(SheddingPolicyName(SheddingPolicy::kDropNewest), "drop-newest");
  EXPECT_EQ(SheddingPolicyName(SheddingPolicy::kDropOldest), "drop-oldest");
  EXPECT_EQ(SheddingPolicyName(SheddingPolicy::kProportional), "proportional");
}

TEST(SheddingPolicyTest, EveryPolicyRunsEndToEnd) {
  for (SheddingPolicy policy :
       {SheddingPolicy::kBalanceSic, SheddingPolicy::kRandom,
        SheddingPolicy::kDropNewest, SheddingPolicy::kDropOldest,
        SheddingPolicy::kProportional}) {
    FspsOptions opts;
    opts.policy = policy;
    opts.node.cpu_speed = 0.0005;  // overloaded
    Fsps fsps(opts);
    fsps.AddNode();
    WorkloadFactory f(3);
    for (QueryId q = 0; q < 4; ++q) {
      AggregateQueryOptions ao;
      ao.source_rate = 300;
      auto built = f.MakeAvg(q, ao);
      ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, 0}}).ok());
      ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
    }
    fsps.RunFor(Seconds(15));
    EXPECT_GT(fsps.TotalNodeStats().tuples_shed, 0u)
        << SheddingPolicyName(policy);
    for (QueryId q = 0; q < 4; ++q) {
      EXPECT_GE(fsps.QuerySic(q), 0.0) << SheddingPolicyName(policy);
      EXPECT_LE(fsps.QuerySic(q), 1.0) << SheddingPolicyName(policy);
    }
  }
}

TEST(HeterogeneousNodesTest, SlowNodeShedsMore) {
  FspsOptions opts;
  opts.seed = 31;
  Fsps fsps(opts);
  NodeOptions fast;
  fast.cpu_speed = 0.01;
  NodeOptions slow;
  slow.cpu_speed = 0.0005;
  NodeId fast_node = fsps.AddNode(fast);
  NodeId slow_node = fsps.AddNode(slow);

  WorkloadFactory f(5);
  for (QueryId q = 0; q < 8; ++q) {
    AggregateQueryOptions ao;
    ao.source_rate = 300;
    auto built = f.MakeAvg(q, ao);
    NodeId target = (q % 2 == 0) ? fast_node : slow_node;
    ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, target}}).ok());
    ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }
  fsps.RunFor(Seconds(20));
  EXPECT_GT(fsps.node(slow_node)->stats().tuples_shed,
            fsps.node(fast_node)->stats().tuples_shed);
  // The slow node's capacity estimate is correspondingly smaller.
  EXPECT_LT(fsps.node(slow_node)->CurrentCapacity(),
            fsps.node(fast_node)->CurrentCapacity());
}

TEST(DegenerateDeploymentTest, NoNodesMeansNoPlacement) {
  Fsps fsps;
  WorkloadFactory f(1);
  auto built = f.MakeAvg(1);
  EXPECT_FALSE(fsps.Deploy(std::move(built.graph), {}).ok());
}

TEST(DegenerateDeploymentTest, RunWithoutQueriesIsStable) {
  Fsps fsps;
  fsps.AddNode();
  fsps.RunFor(Seconds(5));  // timers fire on an idle federation
  EXPECT_EQ(fsps.TotalNodeStats().tuples_received, 0u);
  EXPECT_TRUE(fsps.AllQuerySics().empty());
}

}  // namespace
}  // namespace themis
