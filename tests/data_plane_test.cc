// Tests of the zero-allocation data plane: the 16-byte tagged Value with
// StringPool interning, the inline-payload ValueList, BatchPool recycling,
// window-buffer recycling, the move-only UniqueFunction event callback, and
// an end-to-end steady-state allocation regression bound backed by the
// opt-in counting allocator.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/alloc_counter.h"
#include "common/function.h"
#include "federation/fsps.h"
#include "runtime/batch_pool.h"
#include "runtime/schema.h"
#include "runtime/string_pool.h"
#include "runtime/tuple.h"
#include "runtime/value.h"
#include "workload/workloads.h"

namespace themis {
namespace {

// ---------------------------------------------------------------------------
// StringPool + string Values
// ---------------------------------------------------------------------------

TEST(StringPoolTest, InternsAndDeduplicates) {
  StringPool pool;
  uint32_t a = pool.Intern("host-17");
  uint32_t b = pool.Intern("host-42");
  uint32_t a2 = pool.Intern("host-17");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.Get(a), "host-17");
  EXPECT_EQ(pool.Get(b), "host-42");
}

TEST(StringPoolTest, ValueEqualityIsContentEqualityWithinAPool) {
  StringPool pool;
  Value a(std::string_view("alpha"), &pool);
  Value b(std::string_view("alpha"), &pool);
  Value c(std::string_view("beta"), &pool);
  EXPECT_TRUE(a.is_string());
  EXPECT_EQ(a, b);  // same content -> same interned id
  EXPECT_NE(a, c);
  EXPECT_EQ(AsStringView(a, &pool), "alpha");
}

TEST(StringPoolTest, DefaultPoolBacksPlainStringValues) {
  Value v(std::string("gamma"));
  EXPECT_EQ(ValueToString(v), "gamma");
  EXPECT_EQ(v, Value(std::string("gamma")));
  // Strings coerce to 0 in numeric views (pre-existing contract).
  EXPECT_DOUBLE_EQ(AsDouble(v), 0.0);
  EXPECT_EQ(AsInt(v), 0);
}

TEST(StringPoolTest, SchemaOwnsASharedPool) {
  Schema s({{"name", FieldType::kString}});
  uint32_t id = s.pool().Intern("x");
  Schema copy = s;  // copies share the pool
  EXPECT_EQ(copy.pool().Intern("x"), id);

  // Sharing holds regardless of copy/first-use ordering: the pool is
  // created with the schema, not lazily on first access.
  Schema original({{"name", FieldType::kString}});
  Schema early_copy = original;
  uint32_t a = original.pool().Intern("y");
  EXPECT_EQ(early_copy.pool().Intern("y"), a);
}

TEST(ValueTest, StaysSixteenBytesAndKindAware) {
  static_assert(sizeof(Value) == 16);
  EXPECT_NE(Value(int64_t{7}), Value(7.0));  // kinds distinguish
  EXPECT_EQ(Value(int64_t{7}), Value(int64_t{7}));
  EXPECT_EQ(Value(7.0), Value(7.0));
}

// ---------------------------------------------------------------------------
// ValueList: inline vs spilled payloads
// ---------------------------------------------------------------------------

TEST(ValueListTest, InlinePayloadDoesNotSpill) {
  ValueList v;
  for (int i = 0; i < 4; ++i) v.push_back(Value(static_cast<double>(i)));
  EXPECT_EQ(v.size(), 4u);
  EXPECT_FALSE(v.spilled());
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(AsDouble(v[i]), static_cast<double>(i));
  }
}

TEST(ValueListTest, WidePayloadSpillsAndKeepsContents) {
  ValueList v;
  for (int i = 0; i < 9; ++i) v.push_back(Value(int64_t{i * 10}));
  EXPECT_EQ(v.size(), 9u);
  EXPECT_TRUE(v.spilled());
  for (int i = 0; i < 9; ++i) EXPECT_EQ(AsInt(v[i]), i * 10);
}

TEST(ValueListTest, CopyAndMoveAcrossTheSpillBoundary) {
  ValueList wide;
  for (int i = 0; i < 6; ++i) wide.push_back(Value(static_cast<double>(i)));

  ValueList copy = wide;  // deep copy of a spilled list
  EXPECT_EQ(copy, wide);

  ValueList moved = std::move(wide);  // steals the heap block
  EXPECT_EQ(moved, copy);
  EXPECT_EQ(wide.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd

  ValueList narrow{Value(1.0), Value(2.0)};
  ValueList narrow_copy = narrow;
  EXPECT_FALSE(narrow_copy.spilled());
  EXPECT_EQ(narrow_copy, narrow);

  // Assigning a small payload over a spilled one reuses/abandons the heap
  // block without losing values.
  copy = narrow;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(AsDouble(copy[1]), 2.0);
}

TEST(ValueListTest, InitializerListAndTupleConstruction) {
  Tuple t(5, 0.25, {Value(int64_t{1}), Value(2.5)});
  EXPECT_EQ(t.timestamp, 5);
  EXPECT_DOUBLE_EQ(t.sic, 0.25);
  ASSERT_EQ(t.values.size(), 2u);
  EXPECT_EQ(AsInt(t.values[0]), 1);
  EXPECT_DOUBLE_EQ(AsDouble(t.values[1]), 2.5);
}

// ---------------------------------------------------------------------------
// BatchPool recycling
// ---------------------------------------------------------------------------

TEST(BatchPoolTest, RecyclesTupleBufferCapacity) {
  BatchPool pool;
  Batch b = pool.Acquire();
  EXPECT_EQ(pool.misses(), 1u);
  for (int i = 0; i < 100; ++i) {
    b.tuples.push_back(Tuple(i, 0.1, {Value(1.0)}));
  }
  size_t cap = b.tuples.capacity();
  pool.Release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  Batch reused = pool.Acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(reused.tuples.empty());
  EXPECT_GE(reused.tuples.capacity(), cap);  // capacity survived the trip
}

TEST(BatchPoolTest, AcquiredBatchHasFreshHeaderAndRefreshableSic) {
  BatchPool pool;
  Batch b = pool.Acquire();
  b.header.query_id = 9;
  b.header.sic = 123.0;
  b.tuples.push_back(Tuple(0, 0.5, {Value(1.0)}));
  pool.Release(std::move(b));

  Batch r = pool.Acquire();
  // The recycled batch must not leak the previous header or tuples.
  EXPECT_EQ(r.header.query_id, kInvalidId);
  EXPECT_DOUBLE_EQ(r.header.sic, 0.0);
  EXPECT_TRUE(r.empty());

  r.tuples.push_back(Tuple(0, 0.25, {Value(1.0)}));
  r.tuples.push_back(Tuple(1, 0.5, {Value(2.0)}));
  r.RefreshHeaderSic();
  EXPECT_DOUBLE_EQ(r.header.sic, 0.75);
}

TEST(BatchPoolTest, BoundsThePooledBufferCount) {
  BatchPool pool(/*max_pooled=*/2);
  for (int i = 0; i < 5; ++i) {
    Batch b;
    b.tuples.push_back(Tuple(0, 0.0, {Value(1.0)}));
    pool.Release(std::move(b));
  }
  EXPECT_EQ(pool.pooled(), 2u);
}

// ---------------------------------------------------------------------------
// UniqueFunction (move-only event callbacks)
// ---------------------------------------------------------------------------

TEST(UniqueFunctionTest, RunsInlineAndHeapCallables) {
  int hits = 0;
  UniqueFunction small([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  // A capture larger than the inline buffer goes through the heap path.
  struct Big {
    char data[2 * UniqueFunction::kInlineSize] = {};
  };
  Big big;
  big.data[0] = 42;
  UniqueFunction heap([big, &hits] { hits += big.data[0]; });
  heap();
  EXPECT_EQ(hits, 43);
}

TEST(UniqueFunctionTest, MovesOwnershipAndPayload) {
  // Move-only payload: std::function could not hold this lambda at all.
  auto payload = std::make_unique<int>(7);
  int seen = 0;
  UniqueFunction f([p = std::move(payload), &seen] { seen = *p; });
  UniqueFunction g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(seen, 7);

  UniqueFunction h;
  h = std::move(g);
  h();
  EXPECT_EQ(seen, 7);
}

TEST(UniqueFunctionTest, DestroysTargetExactlyOnce) {
  struct Counter {
    explicit Counter(int* d) : dtors(d) {}
    Counter(Counter&& o) noexcept : dtors(o.dtors) { o.dtors = nullptr; }
    ~Counter() {
      if (dtors != nullptr) ++*dtors;
    }
    int* dtors;
    void operator()() const {}
  };
  int dtors = 0;
  {
    UniqueFunction f{Counter(&dtors)};
    UniqueFunction g = std::move(f);
    g();
  }
  EXPECT_EQ(dtors, 1);
}

// ---------------------------------------------------------------------------
// Steady-state allocation regression
// ---------------------------------------------------------------------------

// End-to-end single-node run: after warmup, the data plane (source batches,
// ingress stamping, windowing, aggregation, result delivery, pooled batch
// recycling, slab event queue) must run in (near-)zero-allocation steady
// state. The bound is per processed tuple and holds two orders of magnitude
// below the old vector<variant> data plane (which paid multiple allocations
// per tuple).
TEST(AllocationRegressionTest, SteadyStateSingleNodeRunIsAllocationFree) {
  ForceLinkAllocCounter();
  ASSERT_TRUE(AllocCounter::active());

  FspsOptions opts;
  opts.seed = 11;
  Fsps fsps(opts);
  fsps.AddNode();
  WorkloadFactory factory(11);
  for (QueryId q = 0; q < 4; ++q) {
    AggregateQueryOptions ao;
    ao.source_rate = 400.0;
    BuiltQuery built = factory.MakeAvg(q, ao);
    ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, 0}}).ok());
    ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
  }

  // Warm up pools, window buffers, trackers and the event slab.
  fsps.RunFor(Seconds(15));

  uint64_t tuples_before = fsps.TotalNodeStats().tuples_processed;
  uint64_t allocs_before = AllocCounter::allocations();
  fsps.RunFor(Seconds(15));
  uint64_t tuples = fsps.TotalNodeStats().tuples_processed - tuples_before;
  uint64_t allocs = AllocCounter::allocations() - allocs_before;

  ASSERT_GT(tuples, 10000u);
  double per_tuple =
      static_cast<double>(allocs) / static_cast<double>(tuples);
  // Measured ~0.01 allocs/tuple (deque block churn in the SIC trackers);
  // the old data plane paid >2 allocs/tuple. 0.2 leaves headroom without
  // ever letting per-tuple allocation churn back in.
  EXPECT_LT(per_tuple, 0.2) << "allocations per tuple regressed: allocs="
                            << allocs << " tuples=" << tuples;
}

}  // namespace
}  // namespace themis
