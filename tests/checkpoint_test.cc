// Checkpoint/restore seam tests (runtime/checkpoint.h): byte-exact
// round-trips of window state (tumbling, sliding, count), binary pending
// panes, pass-through buffers and cross-pane scalars; row/columnar twins of
// the aggregate and filter fast paths restored from the same image,
// including mode adoption when capture and restore straddle a columnar
// promotion; and the store semantics the federation relies on (approximate
// skip-if-clean, restore-or-reset, image hand-over, undeploy erasure,
// truncated-image degradation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "runtime/checkpoint.h"
#include "runtime/columnar.h"
#include "runtime/operator.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/filter_map.h"
#include "runtime/operators/join.h"
#include "runtime/operators/statistics.h"
#include "runtime/window.h"

namespace themis {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Deterministic but irregular doubles so bitwise comparisons have teeth.
double Wobble(int i) { return std::sin(i * 0.7315) * 1e3 + i * 0.001; }

Tuple T1(SimTime ts, double v, double sic = 0.1) {
  return Tuple(ts, sic, {Value(v)});
}

Tuple T2(SimTime ts, int64_t id, double v, double sic = 0.1) {
  return Tuple(ts, sic, {Value(id), Value(v)});
}

std::vector<Tuple> Advance(Operator& op, SimTime wm) {
  std::vector<Tuple> out;
  op.Advance(wm, &out);
  return out;
}

std::vector<uint8_t> Image(const Operator& op) {
  CheckpointWriter w;
  op.Checkpoint(&w);
  return w.Take();
}

void Restore(Operator* op, const std::vector<uint8_t>& image) {
  CheckpointReader r(image);
  op->RestoreFrom(&r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());
}

void ExpectBitIdentical(const std::vector<Tuple>& a,
                        const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp) << "tuple " << i;
    EXPECT_TRUE(SameBits(a[i].sic, b[i].sic)) << "tuple " << i;
    ASSERT_EQ(a[i].values.size(), b[i].values.size()) << "tuple " << i;
    for (size_t c = 0; c < a[i].values.size(); ++c) {
      EXPECT_EQ(a[i].values[c], b[i].values[c]) << "tuple " << i << " col " << c;
    }
  }
}

// --- window buffer round-trips -------------------------------------------

TEST(WindowCheckpointTest, TumblingMidPaneRoundTripIsBitIdentical) {
  WindowBuffer a(WindowSpec::TumblingTime(kSecond));
  for (int i = 0; i < 50; ++i) a.Add(T1(i * Millis(40), Wobble(i), 0.01 * i));
  a.Advance(kSecond);  // release pane 0, leave pane 1 open mid-fill

  CheckpointWriter w;
  a.Checkpoint(&w);
  std::vector<uint8_t> image = w.Take();

  WindowBuffer b(WindowSpec::TumblingTime(kSecond));
  b.Add(T1(7, 99.0));  // pre-existing state must be fully replaced
  CheckpointReader r(image);
  b.RestoreFrom(&r);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.AtEnd());

  // Identical continuation: same late adds, same watermark, same panes.
  a.Add(T1(2 * kSecond + 5, Wobble(77), 0.5));
  b.Add(T1(2 * kSecond + 5, Wobble(77), 0.5));
  auto pa = a.Advance(3 * kSecond);
  auto pb = b.Advance(3 * kSecond);
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_GE(pa.size(), 1u);
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].start, pb[i].start);
    EXPECT_EQ(pa[i].end, pb[i].end);
    ExpectBitIdentical(pa[i].tuples, pb[i].tuples);
  }
}

TEST(WindowCheckpointTest, RestoreRewindsTheWatermarkAndReEmits) {
  // The documented bounded-duplication semantics: panes released after the
  // capture re-emit on restore (there is no source replay).
  WindowBuffer a(WindowSpec::TumblingTime(kSecond));
  a.Add(T1(100, 1.5, 0.2));
  CheckpointWriter w;
  a.Checkpoint(&w);
  std::vector<uint8_t> image = w.Take();
  ASSERT_EQ(a.Advance(kSecond).size(), 1u);  // released after capture

  CheckpointReader r(image);
  a.RestoreFrom(&r);
  auto panes = a.Advance(kSecond);
  ASSERT_EQ(panes.size(), 1u);  // the same pane, again
  EXPECT_DOUBLE_EQ(panes[0].TotalSic(), 0.2);
}

TEST(WindowCheckpointTest, SlidingRoundTripKeepsSlideAlignment) {
  WindowBuffer a(WindowSpec::SlidingTime(2 * kSecond, kSecond));
  for (int i = 0; i < 40; ++i) a.Add(T1(i * Millis(100), Wobble(i), 0.013));
  a.Advance(2 * kSecond);  // sliding machinery initialised, panes in flight

  CheckpointWriter w;
  a.Checkpoint(&w);
  WindowBuffer b(WindowSpec::SlidingTime(2 * kSecond, kSecond));
  CheckpointReader r(w.bytes());
  b.RestoreFrom(&r);
  ASSERT_TRUE(r.ok());

  a.Add(T1(4 * kSecond + 3, 5.0, 0.4));
  b.Add(T1(4 * kSecond + 3, 5.0, 0.4));
  auto pa = a.Advance(8 * kSecond);
  auto pb = b.Advance(8 * kSecond);
  ASSERT_EQ(pa.size(), pb.size());
  double mass_a = 0.0, mass_b = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].end, pb[i].end);
    ExpectBitIdentical(pa[i].tuples, pb[i].tuples);
    mass_a += pa[i].TotalSic();
    mass_b += pb[i].TotalSic();
  }
  EXPECT_TRUE(SameBits(mass_a, mass_b));
}

TEST(WindowCheckpointTest, CountWindowRoundTripKeepsPartialFill) {
  WindowBuffer a(WindowSpec::Count(3));
  a.Add(T1(1, 1.0));
  a.Add(T1(2, 2.0));  // partial pane: 2 of 3
  CheckpointWriter w;
  a.Checkpoint(&w);
  WindowBuffer b(WindowSpec::Count(3));
  CheckpointReader r(w.bytes());
  b.RestoreFrom(&r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(b.buffered(), 2u);
  b.Add(T1(3, 3.0));
  auto panes = b.Advance(0);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_EQ(panes[0].tuples.size(), 3u);
}

TEST(WindowCheckpointTest, ResetStateMatchesAFreshBuffer) {
  WindowBuffer a(WindowSpec::TumblingTime(kSecond));
  for (int i = 0; i < 10; ++i) a.Add(T1(i * Millis(300), Wobble(i)));
  a.Advance(2 * kSecond);
  a.ResetState();
  EXPECT_EQ(a.buffered(), 0u);
  // The watermark rewound too: pane 0 fills and releases like new.
  a.Add(T1(100, 4.0, 0.3));
  auto panes = a.Advance(kSecond);
  ASSERT_EQ(panes.size(), 1u);
  EXPECT_EQ(panes[0].start, 0);
  EXPECT_DOUBLE_EQ(panes[0].TotalSic(), 0.3);
}

// --- operator round-trips -------------------------------------------------

TEST(OperatorCheckpointTest, BinaryPendingPanesSurviveRestore) {
  HashJoinOp a(0, 0, WindowSpec::TumblingTime(kSecond));
  HashJoinOp b(0, 0, WindowSpec::TumblingTime(kSecond));
  // Asymmetric ingestion: left runs two panes ahead of right, so window
  // state and the matched-pane machinery are both mid-flight at capture.
  a.Ingest({T2(100, 1, 10.0), T2(kSecond + 10, 2, 20.0)}, 0);
  a.Ingest({T2(200, 1, 100.0)}, 1);
  std::vector<Tuple> drained;
  a.Advance(Millis(500), &drained);  // nothing released yet

  Restore(&b, Image(a));
  a.Ingest({T2(kSecond + 20, 2, 200.0)}, 1);
  b.Ingest({T2(kSecond + 20, 2, 200.0)}, 1);
  ExpectBitIdentical(Advance(a, 3 * kSecond), Advance(b, 3 * kSecond));
}

TEST(OperatorCheckpointTest, PassThroughPendingSurvivesRestore) {
  PassThroughOperator a("union");
  PassThroughOperator b("union");
  a.Ingest({T1(1, 1.25, 0.3), T1(2, 2.5, 0.7)}, 0);
  Restore(&b, Image(a));
  ExpectBitIdentical(Advance(a, kSecond), Advance(b, kSecond));
}

TEST(OperatorCheckpointTest, GroupByAggregateRoundTripsMidPane) {
  GroupByAggregateOp a(AggregateKind::kAvg, 0, 1,
                       WindowSpec::TumblingTime(kSecond));
  GroupByAggregateOp b(AggregateKind::kAvg, 0, 1,
                       WindowSpec::TumblingTime(kSecond));
  a.Ingest({T2(1, 1, 10), T2(2, 1, 20), T2(3, 2, Wobble(3))}, 0);
  Restore(&b, Image(a));
  a.Ingest({T2(500, 2, Wobble(9))}, 0);
  b.Ingest({T2(500, 2, Wobble(9))}, 0);
  ExpectBitIdentical(Advance(a, kSecond), Advance(b, kSecond));
}

TEST(OperatorCheckpointTest, EwmaScalarCrossesTheImage) {
  EwmaOp a(0.25, 0, WindowSpec::TumblingTime(kSecond));
  EwmaOp b(0.25, 0, WindowSpec::TumblingTime(kSecond));
  a.Ingest({T1(1, 10.0), T1(2, 30.0)}, 0);
  ASSERT_EQ(Advance(a, kSecond).size(), 1u);  // EWMA initialised
  a.Ingest({T1(kSecond + 1, Wobble(4))}, 0);

  Restore(&b, Image(a));
  // Without the cross-pane scalar the restored twin would re-initialise its
  // EWMA from the next pane mean and diverge bit-wise.
  ExpectBitIdentical(Advance(a, 2 * kSecond), Advance(b, 2 * kSecond));
}

TEST(OperatorCheckpointTest, DeltaPreviousMeanCrossesTheImage) {
  DeltaOp a(0, WindowSpec::TumblingTime(kSecond));
  DeltaOp b(0, WindowSpec::TumblingTime(kSecond));
  a.Ingest({T1(1, Wobble(1))}, 0);
  ASSERT_TRUE(Advance(a, kSecond).empty());  // first pane has no predecessor
  a.Ingest({T1(kSecond + 1, Wobble(2))}, 0);

  Restore(&b, Image(a));
  auto out_a = Advance(a, 2 * kSecond);
  auto out_b = Advance(b, 2 * kSecond);
  ASSERT_EQ(out_a.size(), 1u);  // has a predecessor: the restored scalar
  ExpectBitIdentical(out_a, out_b);
}

// --- row/columnar twins (all five aggregate kinds) ------------------------

ColumnarBlock BlockOf(const std::vector<Tuple>& rows) {
  ColumnarBlock block;
  for (const Tuple& t : rows) {
    EXPECT_TRUE(block.AppendTuple(t));
  }
  return block;
}

std::vector<Tuple> MakeRows(int lo, int hi) {
  std::vector<Tuple> rows;
  for (int i = lo; i < hi; ++i) {
    rows.push_back(T1(i * Millis(25), Wobble(i), 0.001 * (i % 13 + 1)));
  }
  return rows;
}

class AggregateTwinCheckpointTest
    : public ::testing::TestWithParam<AggregateKind> {};

// One image, two modes: a columnar-mode capture restored into a never-
// promoted row twin must adopt columnar mode, and both twins — continuing
// on different representations of the same input — release bit-identical
// panes.
TEST_P(AggregateTwinCheckpointTest, TwinsRestoredFromOneImageMatchBitwise) {
  WindowSpec spec = WindowSpec::TumblingTime(kSecond);
  AggregateOp col_twin(GetParam(), 0, spec);
  col_twin.IngestColumnar(BlockOf(MakeRows(0, 60)), 0);  // promotes
  ASSERT_TRUE(col_twin.AcceptsColumnar(0));

  std::vector<uint8_t> image = Image(col_twin);
  AggregateOp row_twin(GetParam(), 0, spec);
  row_twin.Ingest(MakeRows(200, 210), 0);  // dirty row state, fully replaced
  Restore(&row_twin, image);

  // Continue both from the image: the row twin gets rows, the columnar twin
  // the same tuples as a block (mid-batch demotion/promotion indifference).
  std::vector<Tuple> more = MakeRows(60, 100);
  row_twin.Ingest(more, 0);
  col_twin.IngestColumnar(BlockOf(more), 0);
  ExpectBitIdentical(Advance(row_twin, 3 * kSecond),
                     Advance(col_twin, 3 * kSecond));
}

// The reverse direction: a row-mode image restored into a previously
// promoted operator demotes it back to the row path.
TEST_P(AggregateTwinCheckpointTest, RowImageDemotesAPromotedOperator) {
  WindowSpec spec = WindowSpec::TumblingTime(kSecond);
  AggregateOp row_source(GetParam(), 0, spec);
  row_source.Ingest(MakeRows(0, 30), 0);

  AggregateOp promoted(GetParam(), 0, spec);
  promoted.IngestColumnar(BlockOf(MakeRows(500, 540)), 0);
  ASSERT_TRUE(promoted.AcceptsColumnar(0));
  Restore(&promoted, Image(row_source));

  std::vector<Tuple> more = MakeRows(30, 80);
  row_source.Ingest(more, 0);
  promoted.Ingest(more, 0);
  ExpectBitIdentical(Advance(row_source, 3 * kSecond),
                     Advance(promoted, 3 * kSecond));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregateTwinCheckpointTest,
                         ::testing::Values(AggregateKind::kAvg,
                                           AggregateKind::kMax,
                                           AggregateKind::kMin,
                                           AggregateKind::kSum,
                                           AggregateKind::kCount));

TEST(FilterCheckpointTest, ColumnarSelectionStateRoundTrips) {
  FieldPredicate pred;
  pred.field = 0;
  pred.cmp = FieldPredicate::Cmp::kGe;
  pred.threshold = 0.0;
  FilterOp a(pred, WindowSpec::TumblingTime(kSecond));
  a.IngestColumnar(BlockOf(MakeRows(0, 60)), 0);  // promotes
  ASSERT_TRUE(a.AcceptsColumnar(0));

  FilterOp b(pred, WindowSpec::TumblingTime(kSecond));
  Restore(&b, Image(a));
  std::vector<Tuple> more = MakeRows(60, 90);
  a.IngestColumnar(BlockOf(more), 0);
  b.Ingest(more, 0);
  ExpectBitIdentical(Advance(a, 3 * kSecond), Advance(b, 3 * kSecond));
}

// --- store semantics ------------------------------------------------------

TEST(CheckpointStoreTest, ApproximateModeSkipsCleanOperators) {
  CheckpointStore store;
  AggregateOp op(AggregateKind::kSum, 0, WindowSpec::TumblingTime(kSecond));
  op.set_id(3);

  // First capture always lands, even on a clean operator.
  EXPECT_TRUE(MaybeCheckpointOperator(&op, 7, Millis(10), 1.0, &store));
  EXPECT_EQ(store.stats().taken, 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(op.checkpoint_dirt(), 0.0);

  // Dirt below the bound: the old image stays.
  op.Ingest({T1(1, 1.0, 0.4)}, 0);
  EXPECT_DOUBLE_EQ(op.checkpoint_dirt(), 0.4);
  EXPECT_FALSE(MaybeCheckpointOperator(&op, 7, Millis(20), 1.0, &store));
  EXPECT_EQ(store.stats().skipped_clean, 1u);
  EXPECT_DOUBLE_EQ(op.checkpoint_dirt(), 0.4);  // still pending

  // Dirt accumulates past the bound: re-capture, dirt clears.
  op.Ingest({T1(2, 2.0, 0.7)}, 0);
  EXPECT_TRUE(MaybeCheckpointOperator(&op, 7, Millis(30), 1.0, &store));
  EXPECT_EQ(store.stats().taken, 2u);
  EXPECT_DOUBLE_EQ(op.checkpoint_dirt(), 0.0);
  EXPECT_EQ(store.Find(7, 3)->taken_at, Millis(30));
  EXPECT_GT(store.resident_bytes(), 0u);
}

TEST(CheckpointStoreTest, RestoreOrResetFallsBackToReset) {
  CheckpointStore store;
  AggregateOp op(AggregateKind::kSum, 0, WindowSpec::TumblingTime(kSecond));
  op.set_id(0);
  op.Ingest({T1(1, 5.0, 0.2)}, 0);
  // No image: the operator must come back empty, not with live state.
  EXPECT_FALSE(RestoreOrResetOperator(&op, 9, &store));
  EXPECT_EQ(store.stats().missed, 1u);
  EXPECT_TRUE(Advance(op, kSecond).empty());

  // With an image: restore wins and counts.
  op.Ingest({T1(kSecond + 1, 5.0, 0.2)}, 0);
  ASSERT_TRUE(MaybeCheckpointOperator(&op, 9, Millis(5), 0.0, &store));
  op.ResetState();
  EXPECT_TRUE(RestoreOrResetOperator(&op, 9, &store));
  EXPECT_EQ(store.stats().restores, 1u);
  ASSERT_EQ(Advance(op, 2 * kSecond).size(), 1u);
}

TEST(CheckpointStoreTest, MoveEntryAndEraseQuery) {
  CheckpointStore src, dst;
  src.Put(1, 0, {1, 2, 3}, Millis(1));
  src.Put(1, 4, {4}, Millis(1));
  src.Put(2, 0, {5, 6}, Millis(1));

  src.MoveEntry(1, 0, &dst);
  src.MoveEntry(1, 99, &dst);  // no such image: no-op
  EXPECT_EQ(src.size(), 2u);
  ASSERT_NE(dst.Find(1, 0), nullptr);
  EXPECT_EQ(dst.Find(1, 0)->bytes.size(), 3u);

  src.EraseQuery(1);
  EXPECT_EQ(src.size(), 1u);
  EXPECT_EQ(src.Find(1, 4), nullptr);
  EXPECT_NE(src.Find(2, 0), nullptr);
  EXPECT_EQ(src.resident_bytes(), 2u);
}

TEST(CheckpointStoreTest, TruncatedImageDegradesToEmptyState) {
  AggregateOp a(AggregateKind::kAvg, 0, WindowSpec::TumblingTime(kSecond));
  a.Ingest(MakeRows(0, 20), 0);
  std::vector<uint8_t> image = Image(a);
  ASSERT_GT(image.size(), 8u);
  image.resize(image.size() / 2);  // simulate a torn write

  AggregateOp b(AggregateKind::kAvg, 0, WindowSpec::TumblingTime(kSecond));
  CheckpointReader r(image);
  b.RestoreFrom(&r);  // must not crash or read past the end
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace themis
