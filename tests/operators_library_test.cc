// Behavioural tests of the operator library (aggregates, filter/map, join,
// top-k, covariance, group-by).
#include <gtest/gtest.h>

#include <memory>

#include "runtime/operators/aggregates.h"
#include "runtime/operators/covariance.h"
#include "runtime/operators/filter_map.h"
#include "runtime/operators/join.h"
#include "runtime/operators/topk.h"

namespace themis {
namespace {

Tuple T1(SimTime ts, double v, double sic = 0.1) {
  return Tuple(ts, sic, {Value(v)});
}

Tuple T2(SimTime ts, int64_t id, double v, double sic = 0.1) {
  return Tuple(ts, sic, {Value(id), Value(v)});
}

std::vector<Tuple> Advance(Operator& op, SimTime wm) {
  std::vector<Tuple> out;
  op.Advance(wm, &out);
  return out;
}

TEST(AggregateOpTest, Average) {
  AggregateOp op(AggregateKind::kAvg, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 10), T1(2, 20), T1(3, 30)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 20.0);
  EXPECT_NEAR(out[0].sic, 0.3, 1e-12);  // full pane SIC on the single result
}

TEST(AggregateOpTest, MaxAndMinAndSum) {
  AggregateOp mx(AggregateKind::kMax, 0, WindowSpec::TumblingTime(kSecond));
  AggregateOp mn(AggregateKind::kMin, 0, WindowSpec::TumblingTime(kSecond));
  AggregateOp sm(AggregateKind::kSum, 0, WindowSpec::TumblingTime(kSecond));
  std::vector<Tuple> in = {T1(1, 5), T1(2, -3), T1(3, 12)};
  mx.Ingest(in, 0);
  mn.Ingest(in, 0);
  sm.Ingest(in, 0);
  EXPECT_DOUBLE_EQ(AsDouble(Advance(mx, kSecond)[0].values[0]), 12.0);
  EXPECT_DOUBLE_EQ(AsDouble(Advance(mn, kSecond)[0].values[0]), -3.0);
  EXPECT_DOUBLE_EQ(AsDouble(Advance(sm, kSecond)[0].values[0]), 14.0);
}

TEST(AggregateOpTest, CountWithHavingPredicate) {
  // Table 1 COUNT: count of tuples with v >= 50.
  AggregateOp op(AggregateKind::kCount, 0, WindowSpec::TumblingTime(kSecond),
                 [](const Tuple& t) { return AsDouble(t.values[0]) >= 50.0; });
  op.Ingest({T1(1, 10), T1(2, 50), T1(3, 80), T1(4, 49.9)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 2.0);
}

TEST(AggregateOpTest, CountEmitsZeroWhenAllFiltered) {
  AggregateOp op(AggregateKind::kCount, 0, WindowSpec::TumblingTime(kSecond),
                 [](const Tuple&) { return false; });
  op.Ingest({T1(1, 10)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 0.0);
  // The count-0 result still carries the pane's SIC (tuples were processed).
  EXPECT_NEAR(out[0].sic, 0.1, 1e-12);
}

TEST(AggregateOpTest, EmptyPaneEmitsNothing) {
  AggregateOp op(AggregateKind::kAvg, 0, WindowSpec::TumblingTime(kSecond));
  EXPECT_TRUE(Advance(op, 5 * kSecond).empty());
}

TEST(FilterOpTest, PassesMatchingAndRedistributesSic) {
  FilterOp op([](const Tuple& t) { return AsDouble(t.values[0]) > 10.0; },
              WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 5, 0.2), T1(2, 15, 0.2), T1(3, 25, 0.2)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 2u);
  // Eq. (3): the whole 0.6 pane mass spreads over the 2 passing tuples.
  EXPECT_DOUBLE_EQ(out[0].sic, 0.3);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 15.0);
}

TEST(FilterOpTest, NothingPassesLosesPaneSic) {
  FilterOp op([](const Tuple&) { return false; },
              WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 5, 0.2)}, 0);
  EXPECT_TRUE(Advance(op, kSecond).empty());
}

TEST(MapOpTest, TransformsPayload) {
  MapOp op(
      [](const Tuple& t) -> ValueList {
        return {Value(AsDouble(t.values[0]) * 2.0)};
      },
      WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 21, 0.4)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[0]), 42.0);
  EXPECT_DOUBLE_EQ(out[0].sic, 0.4);
}

TEST(HashJoinOpTest, JoinsOnKey) {
  HashJoinOp op(0, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 1, 10.0), T2(2, 2, 20.0)}, 0);
  op.Ingest({T2(3, 2, 200.0), T2(4, 3, 300.0)}, 1);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);  // only id 2 matches
  EXPECT_EQ(AsInt(out[0].values[0]), 2);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[1]), 20.0);   // left value
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[2]), 200.0);  // right value
  // Union of both panes' SIC (4 x 0.1) on the single output.
  EXPECT_NEAR(out[0].sic, 0.4, 1e-12);
}

TEST(HashJoinOpTest, MultiMatchProducesCrossPairs) {
  HashJoinOp op(0, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 7, 1.0), T2(2, 7, 2.0)}, 0);
  op.Ingest({T2(3, 7, 3.0)}, 1);
  auto out = Advance(op, kSecond);
  EXPECT_EQ(out.size(), 2u);
}

TEST(HashJoinOpTest, DisjointKeysProduceNothing) {
  HashJoinOp op(0, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 1, 1.0)}, 0);
  op.Ingest({T2(2, 2, 2.0)}, 1);
  EXPECT_TRUE(Advance(op, kSecond).empty());
}

TEST(TopKOpTest, SelectsDescendingByValue) {
  TopKOp op(2, /*value_field=*/1, /*key_field=*/0,
            WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 1, 30), T2(2, 2, 10), T2(3, 3, 50), T2(4, 4, 20)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(AsInt(out[0].values[0]), 3);
  EXPECT_EQ(AsInt(out[1].values[0]), 1);
  // Total pane SIC (0.4) split across the k outputs.
  EXPECT_NEAR(out[0].sic + out[1].sic, 0.4, 1e-12);
}

TEST(TopKOpTest, TiesBreakOnSmallerId) {
  TopKOp op(2, 1, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 9, 10), T2(2, 4, 10), T2(3, 6, 10)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(AsInt(out[0].values[0]), 4);
  EXPECT_EQ(AsInt(out[1].values[0]), 6);
}

TEST(TopKOpTest, FewerThanKInputs) {
  TopKOp op(5, 1, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 1, 10)}, 0);
  EXPECT_EQ(Advance(op, kSecond).size(), 1u);
}

TEST(CovarianceOpTest, ComputesSampleCovariance) {
  CovarianceOp op(0, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 1), T1(2, 2), T1(3, 3), T1(4, 4)}, 0);
  op.Ingest({T1(1, 2), T1(2, 4), T1(3, 6), T1(4, 8)}, 1);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(AsDouble(out[0].values[0]), 2.0 * 5.0 / 3.0, 1e-9);
}

TEST(CovarianceOpTest, SingleSampleEmitsNothing) {
  CovarianceOp op(0, 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 1)}, 0);
  op.Ingest({T1(1, 2)}, 1);
  EXPECT_TRUE(Advance(op, kSecond).empty());
}

TEST(GroupByAggregateOpTest, PerGroupAverage) {
  GroupByAggregateOp op(AggregateKind::kAvg, 0, 1,
                        WindowSpec::TumblingTime(kSecond));
  op.Ingest({T2(1, 1, 10), T2(2, 1, 20), T2(3, 2, 100)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(AsInt(out[0].values[0]), 1);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].values[1]), 15.0);
  EXPECT_EQ(AsInt(out[1].values[0]), 2);
  EXPECT_DOUBLE_EQ(AsDouble(out[1].values[1]), 100.0);
}

// Property sweep: for every aggregate kind, one pane in -> exactly one tuple
// out carrying the full pane SIC (Eq. 2/3 consistency at operator level).
class AggregateSicTest : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(AggregateSicTest, SingleOutputCarriesPaneSic) {
  AggregateOp op(GetParam(), 0, WindowSpec::TumblingTime(kSecond));
  op.Ingest({T1(1, 42, 0.125), T1(2, 7, 0.125), T1(3, 13, 0.25)}, 0);
  auto out = Advance(op, kSecond);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].sic, 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggregateSicTest,
                         ::testing::Values(AggregateKind::kAvg,
                                           AggregateKind::kMax,
                                           AggregateKind::kMin,
                                           AggregateKind::kSum,
                                           AggregateKind::kCount));

}  // namespace
}  // namespace themis
