// Tests for the CQL-like front-end: lexer, parser and compiler, including
// end-to-end execution of the Table 1 statements through the FSPS.
#include <gtest/gtest.h>

#include "federation/fsps.h"
#include "query/compiler.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "workload/sources.h"

namespace themis {
namespace {

// ---- lexer ---------------------------------------------------------------

TEST(LexerTest, TokenisesTable1Query) {
  auto tokens = Lex("Select Avg(t.v) From Src[Range 1 sec]");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 12u);
  EXPECT_TRUE((*tokens)[0].IsWord("select"));
  EXPECT_TRUE((*tokens)[1].IsWord("avg"));
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, OperatorsAndNumbers) {
  auto tokens = Lex("a >= 50.5 and b != 3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 50.5);
  EXPECT_EQ((*tokens)[5].text, "!=");
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Lex("select #").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
}

TEST(LexerTest, CaseInsensitiveKeywords) {
  auto tokens = Lex("SELECT sElEcT select");
  ASSERT_TRUE(tokens.ok());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE((*tokens)[i].IsWord("Select"));
}

// ---- parser ----------------------------------------------------------------

TEST(ParserTest, ParsesAvgQuery) {
  auto stmt = ParseQuery("Select Avg(t.v) From Src[Range 1 sec]");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->func.name, "avg");
  ASSERT_EQ(stmt->func.args.size(), 1u);
  EXPECT_EQ(stmt->func.args[0].stream, "t");
  EXPECT_EQ(stmt->func.args[0].field, "v");
  ASSERT_EQ(stmt->streams.size(), 1u);
  EXPECT_EQ(stmt->streams[0].name, "Src");
  EXPECT_EQ(stmt->streams[0].range, kSecond);
  EXPECT_TRUE(stmt->where.empty());
  EXPECT_TRUE(stmt->having.empty());
}

TEST(ParserTest, ParsesCountWithHaving) {
  auto stmt = ParseQuery(
      "Select Count(t.v) From Src[Range 1 sec] Having t.v >= 50");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->func.name, "count");
  ASSERT_EQ(stmt->having.size(), 1u);
  EXPECT_EQ(stmt->having[0].op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(stmt->having[0].rhs.literal, 50.0);
}

TEST(ParserTest, ParsesTop5JoinQuery) {
  auto stmt = ParseQuery(
      "Select Top5(CPU.id, CPU.v) From CPU[Range 1 sec], Mem[Range 1 sec] "
      "Where Mem.free >= 100000 and CPU.id = Mem.id");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->func.name, "top");
  EXPECT_EQ(stmt->func.top_k, 5);
  ASSERT_EQ(stmt->streams.size(), 2u);
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_FALSE(stmt->where[0].IsJoin());
  EXPECT_TRUE(stmt->where[1].IsJoin());
}

TEST(ParserTest, ParsesCovQuery) {
  auto stmt = ParseQuery(
      "Select Cov(S1.value, S2.value) From S1[Range 1 sec], S2[Range 1 sec]");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->func.name, "cov");
  ASSERT_EQ(stmt->func.args.size(), 2u);
}

TEST(ParserTest, WindowUnits) {
  auto ms = ParseQuery("Select Avg(t.v) From S[Range 250 ms]");
  ASSERT_TRUE(ms.ok());
  EXPECT_EQ(ms->streams[0].range, Millis(250));
  auto min = ParseQuery("Select Avg(t.v) From S[Range 10 min]");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->streams[0].range, 600 * kSecond);
}

TEST(ParserTest, SyntaxErrorsArePositioned) {
  for (const char* bad : {
           "Avg(t.v) From S[Range 1 sec]",          // missing Select
           "Select Avg t.v From S[Range 1 sec]",    // missing parens
           "Select Avg(t.v) S[Range 1 sec]",        // missing From
           "Select Avg(t.v) From S[1 sec]",         // missing Range
           "Select Avg(t.v) From S[Range 1 sec",    // missing ]
           "Select Avg(t.v) From S[Range 1 hr]",    // bad unit
           "Select Avg(t.v) From S[Range 1 sec] Where t.v", // dangling cond
           "Select Avg(t.v) From S[Range 1 sec] extra",     // trailing
       }) {
    auto stmt = ParseQuery(bad);
    EXPECT_FALSE(stmt.ok()) << bad;
    EXPECT_TRUE(stmt.status().IsInvalidArgument()) << bad;
  }
}

// ---- compiler ---------------------------------------------------------------

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() {
    compiler_.RegisterStream("Src", Schema::SingleValue());
    compiler_.RegisterStream("S1", Schema::SingleValue());
    compiler_.RegisterStream("S2", Schema::SingleValue());
    compiler_.RegisterStream("CPU", Schema::IdValue());
    Schema mem({{"id", FieldType::kInt64}, {"free", FieldType::kDouble}});
    compiler_.RegisterStream("Mem", mem);
    // The aggregate workload refers to tuples as `t`; alias it to Src's
    // schema so Table 1 statements compile verbatim.
    compiler_.RegisterStream("t", Schema::SingleValue());
  }

  Result<CompiledQuery> Compile(const std::string& text) {
    return compiler_.CompileString(1, text, &next_source_);
  }

  QueryCompiler compiler_;
  SourceId next_source_ = 0;
};

TEST_F(CompilerTest, CompilesAvg) {
  auto q = Compile("Select Src.v From X[Range 1 sec]");
  EXPECT_FALSE(q.ok());  // malformed on purpose: not a function call

  auto avg = Compile("Select Avg(Src.v) From Src[Range 1 sec]");
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  EXPECT_EQ(avg->graph->num_operators(), 3u);  // recv -> avg -> out
  EXPECT_EQ(avg->stream_sources.size(), 1u);
}

TEST_F(CompilerTest, CompilesCountHaving) {
  auto q = Compile(
      "Select Count(Src.v) From Src[Range 1 sec] Having Src.v >= 50");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->graph->num_operators(), 3u);  // having folds into the count
}

TEST_F(CompilerTest, CompilesWhereAsFilter) {
  auto q = Compile(
      "Select Max(Src.v) From Src[Range 1 sec] Where Src.v >= 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->graph->num_operators(), 4u);  // recv -> filter -> max -> out
}

TEST_F(CompilerTest, CompilesCov) {
  auto q = Compile(
      "Select Cov(S1.v, S2.v) From S1[Range 1 sec], S2[Range 1 sec]");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->graph->num_operators(), 4u);  // 2 recv -> cov -> out
  EXPECT_EQ(q->stream_sources.size(), 2u);
}

TEST_F(CompilerTest, CompilesTop5Join) {
  auto q = Compile(
      "Select Top5(CPU.id, CPU.v) From CPU[Range 1 sec], Mem[Range 1 sec] "
      "Where Mem.free >= 100000 and CPU.id = Mem.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // recv, recv, filter(Mem), join, top5, out.
  EXPECT_EQ(q->graph->num_operators(), 6u);
}

TEST_F(CompilerTest, RejectsUnknownStreamAndField) {
  EXPECT_TRUE(Compile("Select Avg(Nope.v) From Nope[Range 1 sec]")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(Compile("Select Avg(Src.nope) From Src[Range 1 sec]")
                  .status()
                  .IsNotFound());
}

TEST_F(CompilerTest, RejectsUnknownFunction) {
  EXPECT_TRUE(Compile("Select Median(Src.v) From Src[Range 1 sec]")
                  .status()
                  .IsUnimplemented());
}

TEST_F(CompilerTest, RejectsArityMismatches) {
  EXPECT_FALSE(
      Compile("Select Cov(S1.v, S2.v) From S1[Range 1 sec]").ok());
  EXPECT_FALSE(
      Compile("Select Avg(S1.v, S2.v) From S1[Range 1 sec], S2[Range 1 sec]")
          .ok());
  EXPECT_FALSE(Compile("Select Top5(CPU.id) From CPU[Range 1 sec]").ok());
}

TEST_F(CompilerTest, RejectsJoinWithoutCondition) {
  EXPECT_FALSE(
      Compile("Select Top5(CPU.id, CPU.v) From CPU[Range 1 sec], "
              "Mem[Range 1 sec]")
          .ok());
}

// ---- end-to-end: compiled queries run on the FSPS -------------------------

TEST_F(CompilerTest, CompiledCountRunsEndToEnd) {
  auto q = Compile(
      "Select Count(Src.v) From Src[Range 1 sec] Having Src.v >= 50");
  ASSERT_TRUE(q.ok());

  FspsOptions opts;
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  NodeId node = fsps.AddNode();
  std::map<FragmentId, NodeId> placement = {{0, node}};
  ASSERT_TRUE(fsps.Deploy(std::move(q->graph), placement).ok());

  SourceModel model;
  model.tuples_per_sec = 100;
  model.dataset = Dataset::kUniform;  // uniform(0, 100): ~half >= 50
  ASSERT_TRUE(fsps.AttachSources(1, {}, model).ok());
  fsps.RunFor(Seconds(20));

  EXPECT_GT(fsps.QuerySic(1), 0.9);
  const auto& results = fsps.coordinator(1)->results();
  ASSERT_GT(results.size(), 10u);
  double avg_count = 0;
  for (const auto& r : results) avg_count += AsDouble(r.values[0]);
  avg_count /= results.size();
  EXPECT_NEAR(avg_count, 50.0, 10.0);  // ~half of 100 t/s pass the Having
}

TEST_F(CompilerTest, CompiledTop5RunsEndToEnd) {
  auto q = Compile(
      "Select Top5(CPU.id, CPU.v) From CPU[Range 1 sec], Mem[Range 1 sec] "
      "Where Mem.free >= 0 and CPU.id = Mem.id");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  FspsOptions opts;
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  NodeId node = fsps.AddNode();
  ASSERT_TRUE(fsps.Deploy(std::move(q->graph), {{0, node}}).ok());

  // Eight monitored ids on each stream.
  Rng rng(3);
  auto gen = std::make_shared<Rng>(rng.Fork());
  SourceModel cpu;
  cpu.tuples_per_sec = 80;
  cpu.payload = [gen](SimTime) -> ValueList {
    return {Value(gen->UniformInt(0, 7)), Value(gen->Uniform(0, 100))};
  };
  SourceModel mem = cpu;
  auto gen2 = std::make_shared<Rng>(rng.Fork());
  mem.payload = [gen2](SimTime) -> ValueList {
    return {Value(gen2->UniformInt(0, 7)), Value(gen2->Uniform(0, 1e6))};
  };
  SourceId cpu_src = q->stream_sources.at("CPU");
  SourceId mem_src = q->stream_sources.at("Mem");
  ASSERT_TRUE(fsps.AttachSources(1, {{cpu_src, cpu}, {mem_src, mem}}).ok());
  fsps.RunFor(Seconds(20));

  EXPECT_GT(fsps.QuerySic(1), 0.8);
  EXPECT_GT(fsps.coordinator(1)->result_tuples(), 20u);
}

}  // namespace
}  // namespace themis
