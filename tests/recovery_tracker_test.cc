// RecoveryTracker math in isolation (metrics/recovery_tracker.h): dip
// depth, time-to-recover and area-under-dip against hand-computed series,
// the never-recovers (open dip at end of run) and unaffected (settled by
// the onset window) lifecycles, back-to-back overlapping dips with
// independent baselines, ring eviction, Jain-over-time, and the
// idempotence/coalescing rules the Fsps control plane relies on.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "metrics/recovery_tracker.h"

namespace themis {
namespace {

using Sics = std::vector<std::pair<QueryId, double>>;

RecoveryTrackerOptions SmallOptions() {
  RecoveryTrackerOptions opts;
  opts.enabled = true;
  opts.sample_interval = Millis(250);
  opts.recover_fraction = 0.9;
  opts.dip_onset_window = Seconds(2);
  return opts;
}

TEST(RecoveryTrackerTest, DipDepthTtrAndAreaMatchHandComputedSeries) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  // 1 s steps: 0.5 (dip opens), 0.2 (deepest), 0.95 (recovered).
  tracker.Sample(Seconds(2), Sics{{0, 0.5}});
  tracker.Sample(Seconds(3), Sics{{0, 0.2}});
  tracker.Sample(Seconds(4), Sics{{0, 0.95}});

  ASSERT_EQ(tracker.disturbances().size(), 1u);
  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_FALSE(d.open);
  ASSERT_EQ(d.dips.size(), 1u);
  const QueryDip& dip = d.dips[0];
  EXPECT_DOUBLE_EQ(dip.baseline, 1.0);
  EXPECT_DOUBLE_EQ(dip.threshold, 0.9);
  EXPECT_TRUE(dip.dipped);
  EXPECT_TRUE(dip.recovered);
  EXPECT_DOUBLE_EQ(dip.dip_depth, 0.8);
  // (1-0.5)*1s + (1-0.2)*1s + (1-0.95)*1s = 1.35 SIC-seconds.
  EXPECT_DOUBLE_EQ(dip.area_under_dip, 1.35);
  EXPECT_EQ(dip.recover_time, Seconds(4));
  EXPECT_EQ(dip.time_to_recover, Seconds(3));

  RecoverySummary s = tracker.Summarize(DisturbanceKind::kCrashWave);
  EXPECT_EQ(s.disturbances, 1);
  EXPECT_EQ(s.affected, 1);
  EXPECT_EQ(s.unrecovered, 0);
  EXPECT_DOUBLE_EQ(s.mean_dip_depth, 0.8);
  EXPECT_DOUBLE_EQ(s.max_dip_depth, 0.8);
  EXPECT_DOUBLE_EQ(s.mean_ttr_ms, 3000.0);
  EXPECT_DOUBLE_EQ(s.max_ttr_ms, 3000.0);
  EXPECT_DOUBLE_EQ(s.mean_censored_ttr_ms, 3000.0);
  EXPECT_DOUBLE_EQ(s.mean_area_under_dip, 1.35);
}

TEST(RecoveryTrackerTest, NeverRecoversStaysOpenAndIsCensored) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.Sample(Seconds(2), Sics{{0, 0.3}});
  tracker.Sample(Seconds(3), Sics{{0, 0.4}});
  tracker.Sample(Seconds(4), Sics{{0, 0.5}});  // still < 0.9 at end of run

  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_TRUE(d.open);
  const QueryDip& dip = d.dips[0];
  EXPECT_TRUE(dip.dipped);
  EXPECT_FALSE(dip.recovered);
  EXPECT_EQ(dip.time_to_recover, -1);
  EXPECT_DOUBLE_EQ(dip.dip_depth, 0.7);

  RecoverySummary s = tracker.SummarizeAll();
  EXPECT_EQ(s.affected, 1);
  EXPECT_EQ(s.unrecovered, 1);
  EXPECT_DOUBLE_EQ(s.mean_ttr_ms, 0.0);  // nothing recovered
  // Censored at end of run: 4 s - 1 s = 3000 ms elapsed open time.
  EXPECT_DOUBLE_EQ(s.mean_censored_ttr_ms, 3000.0);
}

TEST(RecoveryTrackerTest, LateDipAtRunEndIsFlooredAtTheOnsetWindow) {
  // A disturbance landing in the final moments of a run has almost no
  // elapsed open time; counting the raw 250 ms would *deflate* the censored
  // mean below what the dip is known to cost (it is still developing when
  // the run ends). Both censored means floor such dips at the onset window.
  RecoveryTracker tracker(SmallOptions());  // onset window 2 s
  tracker.Sample(Seconds(1), Sics{{0, 1.0}, {1, 1.0}});
  tracker.Sample(Seconds(2), Sics{{0, 1.0}, {1, 1.0}});
  tracker.MarkDisturbance(Seconds(2), DisturbanceKind::kCrashWave);
  // Run ends one sample later: q1 collapsed (jain ~ 0.599 < 0.95 dips the
  // fairness index too), open for only 2250 ms - 2000 ms = 250 ms.
  tracker.Sample(Millis(2250), Sics{{0, 1.0}, {1, 0.1}});

  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_TRUE(d.open);
  EXPECT_TRUE(d.jain_dipped);
  EXPECT_FALSE(d.jain_recovered);

  RecoverySummary s = tracker.Summarize(DisturbanceKind::kCrashWave);
  EXPECT_EQ(s.affected, 1);
  EXPECT_EQ(s.unrecovered, 1);
  EXPECT_EQ(s.jain_unrecovered, 1);
  // Hand-computed: raw open time is 250 ms, floored to the 2000 ms onset
  // window for both the per-query and the fairness censored means.
  EXPECT_DOUBLE_EQ(s.mean_censored_ttr_ms, 2000.0);
  EXPECT_DOUBLE_EQ(s.mean_jain_ttr_ms, 2000.0);
}

TEST(RecoveryTrackerTest, UntouchedQuerySettlesAfterTheOnsetWindow) {
  RecoveryTracker tracker(SmallOptions());  // onset window 2 s
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  // Never below the 0.9 threshold: the STW-smoothed dent must appear
  // within the onset window or the query settles as unaffected.
  tracker.Sample(Seconds(2), Sics{{0, 0.96}});
  tracker.Sample(Seconds(3), Sics{{0, 0.93}});
  EXPECT_TRUE(tracker.disturbances()[0].open);  // still armed at 2 s
  tracker.Sample(Seconds(4), Sics{{0, 0.95}});  // 3 s > onset window
  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_FALSE(d.open);
  EXPECT_FALSE(d.dips[0].dipped);
  EXPECT_FALSE(d.dips[0].recovered);
  // Sub-threshold wobble still integrates as (small) dip depth/area, but
  // the pair is not "affected".
  EXPECT_NEAR(d.dips[0].dip_depth, 0.07, 1e-12);
  RecoverySummary s = tracker.SummarizeAll();
  EXPECT_EQ(s.affected, 0);
  EXPECT_EQ(s.unrecovered, 0);
}

TEST(RecoveryTrackerTest, OverlappingDisturbancesTrackIndependentBaselines) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.Sample(Seconds(2), Sics{{0, 0.4}});  // first dip open
  // Second fault lands while the first dip is still open: its baseline is
  // the already-dipped 0.4, threshold 0.36.
  tracker.MarkDisturbance(Seconds(2), DisturbanceKind::kCrashWave);
  tracker.Sample(Seconds(3), Sics{{0, 0.2}});  // below both thresholds
  tracker.Sample(Seconds(4), Sics{{0, 0.5}});  // recovers d2 only
  tracker.Sample(Seconds(5), Sics{{0, 0.95}});  // recovers d1 too

  ASSERT_EQ(tracker.disturbances().size(), 2u);
  const QueryDip& d1 = tracker.disturbances()[0].dips[0];
  const QueryDip& d2 = tracker.disturbances()[1].dips[0];
  EXPECT_DOUBLE_EQ(d1.baseline, 1.0);
  EXPECT_DOUBLE_EQ(d2.baseline, 0.4);
  EXPECT_TRUE(d1.recovered);
  EXPECT_TRUE(d2.recovered);
  EXPECT_EQ(d1.time_to_recover, Seconds(4));  // 1 s -> 5 s
  EXPECT_EQ(d2.time_to_recover, Seconds(2));  // 2 s -> 4 s
  EXPECT_DOUBLE_EQ(d1.dip_depth, 0.8);
  EXPECT_DOUBLE_EQ(d2.dip_depth, 0.2);
  // d1 integrates from 1 s: 0.6 + 0.8 + 0.5 + 0.05; d2 from its own mark
  // at 2 s against the lower baseline: 0.2 * 1 s only.
  EXPECT_DOUBLE_EQ(d1.area_under_dip, 1.95);
  EXPECT_DOUBLE_EQ(d2.area_under_dip, 0.2);
}

TEST(RecoveryTrackerTest, SameInstantSamplesAndMarksAreDeduplicated) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.Sample(Seconds(1), Sics{{0, 0.1}});  // ignored: first wins
  EXPECT_EQ(tracker.samples(), 1u);
  ASSERT_NE(tracker.query_series(0), nullptr);
  EXPECT_EQ(tracker.query_series(0)->size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.query_series(0)->back().value, 1.0);

  // A wave of control-plane calls at one instant is one disturbance.
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kRestore);
  ASSERT_EQ(tracker.disturbances().size(), 2u);
  EXPECT_EQ(tracker.disturbances()[0].events, 2);
  EXPECT_EQ(tracker.disturbances()[1].events, 1);
  EXPECT_EQ(tracker.disturbances()[1].kind, DisturbanceKind::kRestore);
}

TEST(RecoveryTrackerTest, RingEvictsOldestButStatsStayExact) {
  RecoveryTrackerOptions opts = SmallOptions();
  opts.ring_capacity = 4;
  RecoveryTracker tracker(opts);
  tracker.Sample(Seconds(1), Sics{{0, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  for (int i = 2; i <= 10; ++i) {
    tracker.Sample(Seconds(i), Sics{{0, i < 10 ? 0.5 : 0.95}});
  }
  const SicRing* ring = tracker.query_series(0);
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->size(), 4u);  // evicted down to capacity
  EXPECT_EQ(ring->pushed(), 10u);
  EXPECT_EQ(ring->At(0).time, Seconds(7));  // oldest retained
  EXPECT_EQ(ring->back().time, Seconds(10));
  // Dip statistics accumulated online, unaffected by eviction:
  // 8 samples at 0.5 -> area 0.5 * 8 s, recovery at t = 10 s.
  const QueryDip& dip = tracker.disturbances()[0].dips[0];
  EXPECT_TRUE(dip.recovered);
  EXPECT_EQ(dip.time_to_recover, Seconds(9));
  EXPECT_DOUBLE_EQ(dip.dip_depth, 0.5);
  EXPECT_DOUBLE_EQ(dip.area_under_dip, 0.5 * 8 + 0.05);
}

TEST(RecoveryTrackerTest, JainSeriesTracksFairnessOverTime) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 0.5}, {1, 0.5}});
  tracker.Sample(Seconds(2), Sics{{0, 0.8}, {1, 0.2}});
  tracker.Sample(Seconds(3), Sics{{0, 0.5}, {1, 0.4}});
  ASSERT_EQ(tracker.jain_series().size(), 3u);
  EXPECT_DOUBLE_EQ(tracker.jain_series().At(0).value, 1.0);
  // (0.8+0.2)^2 / (2 * (0.64+0.04)) = 1 / 1.36.
  EXPECT_NEAR(tracker.jain_series().At(1).value, 1.0 / 1.36, 1e-12);
  EXPECT_NEAR(tracker.min_jain(), 1.0 / 1.36, 1e-12);
  EXPECT_NEAR(tracker.SummarizeAll().final_jain,
              tracker.jain_series().back().value, 1e-12);
}

TEST(RecoveryTrackerTest, DepartedQueryStaysUnrecovered) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}, {1, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.Sample(Seconds(2), Sics{{0, 0.1}, {1, 1.0}});  // q0 dips
  // q0 force-undeploys: it vanishes from later samples. Its dip can never
  // close, so it reports as unrecovered; q1 settles unaffected at the
  // onset window.
  tracker.Sample(Seconds(3), Sics{{1, 1.0}});
  tracker.Sample(Seconds(4), Sics{{1, 1.0}});
  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_TRUE(d.open);
  EXPECT_TRUE(d.dips[0].dipped);
  EXPECT_FALSE(d.dips[0].recovered);
  EXPECT_FALSE(d.dips[1].dipped);
  RecoverySummary s = tracker.SummarizeAll();
  EXPECT_EQ(s.affected, 1);
  EXPECT_EQ(s.unrecovered, 1);
}

TEST(RecoveryTrackerTest, MonotoneClocksAndDeterministicDebugString) {
  auto run = [] {
    RecoveryTracker tracker(SmallOptions());
    tracker.Sample(Seconds(1), Sics{{0, 0.9}, {1, 0.7}});
    tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
    tracker.Sample(Seconds(2), Sics{{0, 0.3}, {1, 0.6}});
    tracker.MarkDisturbance(Seconds(2), DisturbanceKind::kLinkChange);
    tracker.Sample(Seconds(3), Sics{{0, 0.88}, {1, 0.7}});
    return tracker;
  };
  RecoveryTracker a = run();
  RecoveryTracker b = run();
  EXPECT_EQ(a.last_sample_time(), Seconds(3));
  SimTime prev = -1;
  for (const Disturbance& d : a.disturbances()) {
    EXPECT_GE(d.time, prev);
    prev = d.time;
  }
  EXPECT_FALSE(a.DebugString().empty());
  EXPECT_EQ(a.DebugString(), b.DebugString());
}

TEST(RecoveryTrackerTest, JainDipFollowsTheArmedDippedRecoveredLifecycle) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}, {1, 1.0}});  // jain = 1
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  // Query 1 collapses: jain = 1.1^2 / (2 * 1.01) ~ 0.599 < 0.95.
  tracker.Sample(Seconds(2), Sics{{0, 1.0}, {1, 0.1}});
  // Back near parity: jain = 1.9^2 / (2 * 1.81) ~ 0.997 >= 0.95.
  tracker.Sample(Seconds(3), Sics{{0, 1.0}, {1, 0.9}});

  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_DOUBLE_EQ(d.jain_baseline, 1.0);
  EXPECT_DOUBLE_EQ(d.jain_threshold, 0.95);
  EXPECT_TRUE(d.jain_dipped);
  EXPECT_TRUE(d.jain_recovered);
  EXPECT_TRUE(d.jain_settled);
  EXPECT_EQ(d.jain_time_to_recover, Seconds(2));

  RecoverySummary s = tracker.Summarize(DisturbanceKind::kCrashWave);
  EXPECT_EQ(s.jain_dips, 1);
  EXPECT_EQ(s.jain_unrecovered, 0);
  EXPECT_DOUBLE_EQ(s.mean_jain_ttr_ms, 2000.0);
}

TEST(RecoveryTrackerTest, UnrecoveredJainDipIsCensoredIntoTheMean) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}, {1, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  tracker.Sample(Seconds(2), Sics{{0, 1.0}, {1, 0.1}});
  tracker.Sample(Seconds(4), Sics{{0, 1.0}, {1, 0.2}});  // still unfair

  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_TRUE(d.jain_dipped);
  EXPECT_FALSE(d.jain_recovered);
  EXPECT_TRUE(d.open);
  EXPECT_EQ(d.jain_time_to_recover, -1);

  // Censored: the open dip counts its elapsed time (4s - 1s = 3s).
  RecoverySummary s = tracker.Summarize(DisturbanceKind::kCrashWave);
  EXPECT_EQ(s.jain_dips, 1);
  EXPECT_EQ(s.jain_unrecovered, 1);
  EXPECT_DOUBLE_EQ(s.mean_jain_ttr_ms, 3000.0);
}

TEST(RecoveryTrackerTest, SteadyJainSettlesAfterTheOnsetWindow) {
  RecoveryTracker tracker(SmallOptions());
  tracker.Sample(Seconds(1), Sics{{0, 1.0}, {1, 1.0}});
  tracker.MarkDisturbance(Seconds(1), DisturbanceKind::kCrashWave);
  // Both queries dip together: SIC dips open but fairness never dents.
  tracker.Sample(Seconds(2), Sics{{0, 0.5}, {1, 0.5}});
  tracker.Sample(Seconds(4), Sics{{0, 0.95}, {1, 0.95}});  // past onset

  const Disturbance& d = tracker.disturbances()[0];
  EXPECT_FALSE(d.jain_dipped);
  EXPECT_TRUE(d.jain_settled);
  RecoverySummary s = tracker.Summarize(DisturbanceKind::kCrashWave);
  EXPECT_EQ(s.jain_dips, 0);
  EXPECT_DOUBLE_EQ(s.mean_jain_ttr_ms, 0.0);
}

}  // namespace
}  // namespace themis
