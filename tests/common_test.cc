// Unit tests for src/common: Status/Result, stats accumulators, RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time_types.h"

namespace themis {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

Status FailsThenPropagates() {
  THEMIS_RETURN_NOT_OK(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);  // classic example
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, CovarianceOfPerfectlyCorrelated) {
  std::vector<double> xs = {1, 2, 3, 4};
  std::vector<double> ys = {2, 4, 6, 8};
  // cov(x, 2x) = 2 var(x); sample variance of {1..4} is 5/3.
  EXPECT_NEAR(Covariance(xs, ys), 2.0 * 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, CovarianceSizeMismatchIsZero) {
  EXPECT_EQ(Covariance({1, 2}, {1, 2, 3}), 0.0);
}

TEST(EwmaTest, FirstObservationInitialises) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  EXPECT_DOUBLE_EQ(e.Update(10.0), 10.0);
  EXPECT_DOUBLE_EQ(e.Update(20.0), 15.0);
}

TEST(MovingAverageTest, SlidesOverCapacity) {
  MovingAverage m(3);
  m.Update(1);
  m.Update(2);
  m.Update(3);
  EXPECT_DOUBLE_EQ(m.value(), 2.0);
  m.Update(10);  // evicts 1
  EXPECT_DOUBLE_EQ(m.value(), 5.0);
}

TEST(RunningStatsTest, TracksMinMaxMeanStd) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(123), b(123);
  Rng fa = a.Fork(), fb = b.Fork();
  EXPECT_EQ(fa.UniformInt(0, 1 << 30), fb.UniformInt(0, 1 << 30));
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double x = r.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    int64_t k = r.UniformInt(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(RngTest, GaussianMeanConverges) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Gaussian(50.0, 10.0);
  EXPECT_NEAR(sum / n, 50.0, 0.5);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng r(17);
  const int n = 10000;
  int rank0 = 0, rank9 = 0;
  for (int i = 0; i < n; ++i) {
    int64_t k = r.Zipf(10, 1.0);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 10);
    if (k == 0) ++rank0;
    if (k == 9) ++rank9;
  }
  EXPECT_GT(rank0, 5 * rank9);  // heavy head
}

TEST(RngTest, ZipfZeroSkewIsUniformish) {
  Rng r(19);
  const int n = 30000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < n; ++i) ++counts[r.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 40);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng r(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(TimeTypesTest, Conversions) {
  EXPECT_EQ(Millis(250), 250000);
  EXPECT_EQ(Seconds(10), 10000000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
}

}  // namespace
}  // namespace themis
