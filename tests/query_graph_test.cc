// Tests for QueryGraph / QueryBuilder: DAG validation, fragment bookkeeping,
// topological ordering, ingress discovery.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "runtime/query_graph.h"

namespace themis {
namespace {

std::unique_ptr<Operator> Recv() { return std::make_unique<ReceiverOp>(); }
std::unique_ptr<Operator> Out() { return std::make_unique<OutputOp>(); }
std::unique_ptr<Operator> Avg() {
  return std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                       WindowSpec::TumblingTime(kSecond));
}

TEST(QueryBuilderTest, BuildsLinearQuery) {
  QueryBuilder b(7, "avg");
  OperatorId r = b.Add(Recv(), 0);
  OperatorId a = b.Add(Avg(), 0);
  OperatorId o = b.Add(Out(), 0);
  b.Connect(r, a).Connect(a, o).BindSource(100, r).SetRoot(o);
  auto g = b.Build();
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto graph = std::move(g).TakeValue();
  EXPECT_EQ(graph->id(), 7);
  EXPECT_EQ(graph->label(), "avg");
  EXPECT_EQ(graph->num_operators(), 3u);
  EXPECT_EQ(graph->num_fragments(), 1u);
  EXPECT_EQ(graph->num_sources(), 1u);
  EXPECT_EQ(graph->root(), o);
  EXPECT_EQ(graph->fragment_of(r), 0);
  ASSERT_EQ(graph->out_edges(r).size(), 1u);
  EXPECT_EQ(graph->out_edges(r)[0].to, a);
}

TEST(QueryBuilderTest, RejectsCycle) {
  QueryBuilder b(1, "cyclic");
  OperatorId x = b.Add(Avg(), 0);
  OperatorId y = b.Add(Avg(), 0);
  b.Connect(x, y).Connect(y, x).SetRoot(x);
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(QueryBuilderTest, RejectsMissingRoot) {
  QueryBuilder b(1, "rootless");
  b.Add(Recv(), 0);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsEmptyGraph) {
  QueryBuilder b(1, "empty");
  b.SetRoot(0);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsBadPort) {
  QueryBuilder b(1, "badport");
  OperatorId r = b.Add(Recv(), 0);
  OperatorId a = b.Add(Avg(), 0);
  b.Connect(r, a, /*port=*/5).SetRoot(a);  // AggregateOp has a single port
  auto g = b.Build();
  EXPECT_FALSE(g.ok());
}

TEST(QueryBuilderTest, RejectsOutOfRangeIds) {
  QueryBuilder b(1, "oob");
  OperatorId r = b.Add(Recv(), 0);
  b.Connect(r, 42).SetRoot(r);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryGraphTest, FragmentOpsAreTopologicallyOrdered) {
  QueryBuilder b(2, "chain");
  OperatorId o1 = b.Add(Recv(), 0);
  OperatorId o2 = b.Add(Avg(), 0);
  OperatorId o3 = b.Add(Avg(), 0);
  OperatorId o4 = b.Add(Out(), 0);
  // Add edges "backwards" to ensure ordering comes from topology, not ids.
  b.Connect(o3, o4).Connect(o2, o3).Connect(o1, o2).SetRoot(o4);
  auto graph = std::move(b.Build()).TakeValue();
  const auto& ops = graph->fragment_ops(0);
  ASSERT_EQ(ops.size(), 4u);
  // o1 must come before o2, o2 before o3, o3 before o4.
  auto pos = [&](OperatorId id) {
    return std::find(ops.begin(), ops.end(), id) - ops.begin();
  };
  EXPECT_LT(pos(o1), pos(o2));
  EXPECT_LT(pos(o2), pos(o3));
  EXPECT_LT(pos(o3), pos(o4));
}

TEST(QueryGraphTest, MultiFragmentBookkeeping) {
  QueryBuilder b(3, "two-frag");
  OperatorId r = b.Add(Recv(), 0);
  OperatorId a1 = b.Add(Avg(), 0);
  OperatorId a2 = b.Add(Avg(), 1);
  OperatorId o = b.Add(Out(), 1);
  b.Connect(r, a1).Connect(a1, a2).Connect(a2, o);
  b.BindSource(5, r).SetRoot(o);
  auto graph = std::move(b.Build()).TakeValue();

  EXPECT_EQ(graph->num_fragments(), 2u);
  EXPECT_EQ(graph->root_fragment(), 1);
  auto frags = graph->fragment_ids();
  EXPECT_EQ(frags, (std::vector<FragmentId>{0, 1}));

  // Fragment 0 ingress: the source-bound receiver. Fragment 1 ingress: a2
  // (fed from fragment 0).
  auto in0 = graph->FragmentIngressOps(0);
  ASSERT_EQ(in0.size(), 1u);
  EXPECT_EQ(in0[0], r);
  auto in1 = graph->FragmentIngressOps(1);
  ASSERT_EQ(in1.size(), 1u);
  EXPECT_EQ(in1[0], a2);
}

TEST(QueryGraphTest, OpLookupOutOfRangeIsNull) {
  QueryBuilder b(4, "one");
  OperatorId r = b.Add(Recv(), 0);
  b.SetRoot(r);
  auto graph = std::move(b.Build()).TakeValue();
  EXPECT_EQ(graph->op(99), nullptr);
  EXPECT_EQ(graph->op(-1), nullptr);
  EXPECT_TRUE(graph->out_edges(99).empty());
  EXPECT_EQ(graph->fragment_of(99), kInvalidId);
}

}  // namespace
}  // namespace themis
