// Tests for the solver module: simplex LP, FIT throughput maximisation and
// the Zhao-style log-utility allocation.
#include <gtest/gtest.h>

#include "metrics/jain.h"
#include "solver/fit_baseline.h"
#include "solver/network_utility.h"
#include "solver/simplex.h"

namespace themis {
namespace {

TEST(SimplexTest, SolvesBasicLp) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  x=2, y=2, obj=10.
  LinearProgram lp;
  lp.objective = {3, 2};
  lp.a = {{1, 1}, {1, 0}};
  lp.b = {4, 2};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->objective, 10.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 2.0, 1e-9);
}

TEST(SimplexTest, BindingUpperBounds) {
  // max x + y, x <= 1, y <= 1.
  LinearProgram lp;
  lp.objective = {1, 1};
  lp.a = {{1, 0}, {0, 1}};
  lp.b = {1, 1};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 2.0, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  LinearProgram lp;
  lp.objective = {1};
  lp.a = {};
  lp.b = {};
  auto sol = SolveLp(lp);
  EXPECT_FALSE(sol.ok());
}

TEST(SimplexTest, RejectsMalformedInput) {
  LinearProgram lp;
  lp.objective = {};
  EXPECT_FALSE(SolveLp(lp).ok());

  LinearProgram lp2;
  lp2.objective = {1};
  lp2.a = {{1, 2}};  // wrong row width
  lp2.b = {1};
  EXPECT_FALSE(SolveLp(lp2).ok());

  LinearProgram lp3;
  lp3.objective = {1};
  lp3.a = {{1}};
  lp3.b = {-1};  // negative rhs unsupported
  EXPECT_FALSE(SolveLp(lp3).ok());
}

TEST(SimplexTest, ZeroObjectiveIsFeasible) {
  LinearProgram lp;
  lp.objective = {0, 0};
  lp.a = {{1, 1}};
  lp.b = {1};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
}

TEST(SimplexTest, DegenerateTiesTerminate) {
  // Multiple identical constraints force degenerate pivots; Bland's rule
  // must still terminate.
  LinearProgram lp;
  lp.objective = {1, 1, 1};
  lp.a = {{1, 1, 1}, {1, 1, 1}, {1, 0, 0}};
  lp.b = {1, 1, 1};
  auto sol = SolveLp(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective, 1.0, 1e-9);
}

TEST(FitBaselineTest, ThroughputMaxStarvesExpensiveQueries) {
  // One node with capacity 1 cpu-sec/sec. Query A: cheap (0.001 s/tuple),
  // query B: expensive (0.01 s/tuple), equal weights and rates. Throughput
  // maximisation keeps all of A and only the leftover of B.
  std::vector<FitQuery> queries(2);
  queries[0].input_rate = 500;
  queries[0].cost_per_node = {0.001};
  queries[1].input_rate = 500;
  queries[1].cost_per_node = {0.01};
  auto sol = SolveFit(queries, {1.0});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol->keep_fraction[0], 1.0, 1e-6);
  EXPECT_NEAR(sol->keep_fraction[1], 0.1, 1e-6);  // (1 - 0.5)/5
}

TEST(FitBaselineTest, UnderloadedKeepsEverything) {
  std::vector<FitQuery> queries(3);
  for (auto& q : queries) {
    q.input_rate = 10;
    q.cost_per_node = {0.001};
  }
  auto sol = SolveFit(queries, {1.0});
  ASSERT_TRUE(sol.ok());
  for (double x : sol->keep_fraction) EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(FitBaselineTest, WeightsBias) {
  // Same cost, one query weighted 10x: it wins the whole capacity.
  std::vector<FitQuery> queries(2);
  queries[0] = {10.0, 100, {0.01}};
  queries[1] = {1.0, 100, {0.01}};
  auto sol = SolveFit(queries, {1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->keep_fraction[0], 1.0, 1e-6);
  EXPECT_NEAR(sol->keep_fraction[1], 0.0, 1e-6);
}

TEST(FitBaselineTest, RejectsBadInput) {
  EXPECT_FALSE(SolveFit({}, {1.0}).ok());
  std::vector<FitQuery> q(1);
  q[0].cost_per_node = {0.1, 0.2};  // 2 nodes declared, 1 capacity given
  EXPECT_FALSE(SolveFit(q, {1.0}).ok());
}

TEST(NetworkUtilityTest, SymmetricQueriesShareEqually) {
  std::vector<FitQuery> queries(4);
  for (auto& q : queries) {
    q.input_rate = 100;
    q.cost_per_node = {0.01};  // full load would need 4 cpu-sec/sec
  }
  auto sol = SolveLogUtility(queries, {2.0});
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  for (double x : sol->keep_fraction) EXPECT_NEAR(x, 0.5, 0.05);
  EXPECT_NEAR(JainIndex(sol->normalized_utility), 1.0, 1e-6);
}

TEST(NetworkUtilityTest, LogUtilityNeverStarves) {
  // Same asymmetric instance that FIT starves: log utility keeps a non-zero
  // share for the expensive query (proportional fairness).
  std::vector<FitQuery> queries(2);
  queries[0].input_rate = 500;
  queries[0].cost_per_node = {0.001};
  queries[1].input_rate = 500;
  queries[1].cost_per_node = {0.01};
  auto sol = SolveLogUtility(queries, {1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->keep_fraction[1], 0.05);
}

TEST(NetworkUtilityTest, RespectsCapacity) {
  std::vector<FitQuery> queries(3);
  for (auto& q : queries) {
    q.input_rate = 100;
    q.cost_per_node = {0.01};
  }
  auto sol = SolveLogUtility(queries, {1.5});
  ASSERT_TRUE(sol.ok());
  double load = 0;
  for (double x : sol->keep_fraction) load += x * 100 * 0.01;
  EXPECT_LE(load, 1.5 * 1.05);  // small tolerance for the penalty method
}

TEST(NetworkUtilityTest, RejectsBadInput) {
  EXPECT_FALSE(SolveLogUtility({}, {1.0}).ok());
  std::vector<FitQuery> q(1);
  q[0].input_rate = 0.0;
  q[0].cost_per_node = {0.1};
  EXPECT_FALSE(SolveLogUtility(q, {1.0}).ok());
}

}  // namespace
}  // namespace themis
