// Orphan re-placement policy tests (federation/placement.h +
// Fsps::CrashNode): the pure ChooseLeastLoaded chooser, the SIC-aware
// policy's picks on a hand-built overload scenario, the pin that the
// default kRoundRobin policy reproduces PR 4's cursor behaviour (and that
// the seed-42 Zipf deploy placement bytes are untouched by the new knob),
// and the no-live-candidate force-undeploy path under both policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "federation/fsps.h"
#include "federation/placement.h"
#include "workload/workloads.h"

namespace themis {
namespace {

TEST(ChooseLeastLoadedTest, PicksSmallestLoadWithIdTieBreak) {
  std::vector<ReplacementCandidate> candidates = {
      {1, 0.5}, {2, 0.2}, {3, 0.2}, {4, 0.9}};
  EXPECT_EQ(ChooseLeastLoaded(candidates, {}), 2);       // tie 2 vs 3 -> 2
  EXPECT_EQ(ChooseLeastLoaded(candidates, {2}), 3);      // next least
  EXPECT_EQ(ChooseLeastLoaded(candidates, {2, 3}), 1);   // 0.5 beats 0.9
  // Every candidate occupied: co-location last resort, least loaded wins.
  EXPECT_EQ(ChooseLeastLoaded(candidates, {1, 2, 3, 4}), 2);
  EXPECT_EQ(ChooseLeastLoaded({}, {}), kInvalidId);
}

TEST(ChooseLeastLoadedTest, PolicyNames) {
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kRoundRobin),
            "round-robin");
  EXPECT_EQ(ReplacementPolicyName(ReplacementPolicy::kSicAware), "sic-aware");
}

// Four nodes with deliberately unequal load: q1 (two fragments, busy
// sources) on nodes 0+1, q2 (one fragment, busy) on node 2, node 3 idle.
// After 5 s of traffic nodes 0-2 carry accepted-SIC mass and node 3 none,
// so crashing node 1 discriminates the policies: the round-robin cursor
// walks to the first unoccupied candidate (node 2, already busy) while the
// SIC-aware chooser picks the idle node 3.
std::unique_ptr<Fsps> BuildOverloadFederation(ReplacementPolicy policy) {
  FspsOptions opts;
  opts.seed = 11;
  opts.replacement = policy;
  auto fsps = std::make_unique<Fsps>(opts);
  for (int i = 0; i < 4; ++i) fsps->AddNode();

  WorkloadFactory factory(3);
  ComplexQueryOptions heavy;
  heavy.fragments = 2;
  heavy.source_rate = 200;
  BuiltQuery q1 = factory.MakeCov(1, heavy);
  EXPECT_TRUE(fsps->Deploy(std::move(q1.graph), {{0, 0}, {1, 1}}).ok());
  EXPECT_TRUE(fsps->AttachSources(1, q1.sources).ok());

  ComplexQueryOptions light;
  light.fragments = 1;
  light.source_rate = 200;
  BuiltQuery q2 = factory.MakeCov(2, light);
  EXPECT_TRUE(fsps->Deploy(std::move(q2.graph), {{0, 2}}).ok());
  EXPECT_TRUE(fsps->AttachSources(2, q2.sources).ok());

  fsps->RunFor(Seconds(5));
  return fsps;
}

bool Hosts(Fsps* fsps, NodeId node, QueryId q) {
  std::vector<QueryId> hosted = fsps->node(node)->HostedQueries();
  return std::find(hosted.begin(), hosted.end(), q) != hosted.end();
}

TEST(ReplacementPolicyTest, SicAwarePicksTheIdleNode) {
  auto fsps = BuildOverloadFederation(ReplacementPolicy::kSicAware);
  ASSERT_TRUE(fsps->CrashNode(1).ok());
  EXPECT_EQ(fsps->churn_stats().replaced_fragments, 1u);
  EXPECT_TRUE(Hosts(fsps.get(), 3, 1));   // idle node won
  EXPECT_FALSE(Hosts(fsps.get(), 2, 1));  // busy node skipped
  EXPECT_FALSE(Hosts(fsps.get(), 1, 1));
  fsps->RunFor(Seconds(5));
  EXPECT_GT(fsps->QuerySic(1), 0.0);
}

TEST(ReplacementPolicyTest, RoundRobinCursorReproducesPr4Pick) {
  auto fsps = BuildOverloadFederation(ReplacementPolicy::kRoundRobin);
  ASSERT_TRUE(fsps->CrashNode(1).ok());
  // PR 4 cursor semantics, pinned: candidates are the live nodes {0, 2, 3}
  // in ascending order, the cursor starts at 0, node 0 is occupied by the
  // surviving fragment, so the first free candidate is node 2 — blind to
  // its load.
  EXPECT_EQ(fsps->churn_stats().replaced_fragments, 1u);
  EXPECT_TRUE(Hosts(fsps.get(), 2, 1));
  EXPECT_FALSE(Hosts(fsps.get(), 3, 1));
}

TEST(ReplacementPolicyTest, DefaultPolicyIsRoundRobin) {
  FspsOptions opts;
  EXPECT_EQ(opts.replacement, ReplacementPolicy::kRoundRobin);
  EXPECT_FALSE(opts.recovery.enabled);  // recovery sampling is opt-in too
}

TEST(ReplacementPolicyTest, Seed42ZipfDeployBytesUntouchedByPolicyKnob) {
  // The deploy-time Zipf golden of fsps_test, re-pinned here under both
  // replacement policies: the new knob only steers crash re-placement and
  // must leave PR 4's seed-42 deployment bytes alone.
  for (auto policy :
       {ReplacementPolicy::kRoundRobin, ReplacementPolicy::kSicAware}) {
    (void)policy;  // PlaceFragments has no policy input — same goldens
    WorkloadFactory f(42);
    auto built = f.MakeCov(7, {.fragments = 4});
    Rng rng(42);
    std::vector<NodeId> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
    auto placement = PlaceFragments(*built.graph, nodes,
                                    PlacementPolicy::kZipf, 1.2, &rng);
    std::vector<FragmentId> frags = built.graph->fragment_ids();
    std::sort(frags.begin(), frags.end());
    ASSERT_EQ(frags.size(), 4u);
    std::vector<NodeId> got;
    for (FragmentId frag : frags) got.push_back(placement.at(frag));
    EXPECT_EQ(got, (std::vector<NodeId>{2, 3, 0, 5}));
  }
}

TEST(ReplacementPolicyTest, ForceUndeployWhenNoLiveCandidateBothPolicies) {
  for (auto policy :
       {ReplacementPolicy::kRoundRobin, ReplacementPolicy::kSicAware}) {
    FspsOptions opts;
    opts.seed = 7;
    opts.replacement = policy;
    Fsps fsps(opts);
    fsps.AddNode();
    fsps.AddNode();
    WorkloadFactory factory(3);
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 60;
    BuiltQuery built = factory.MakeCov(1, co);
    ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, 0}, {1, 1}}).ok());
    ASSERT_TRUE(fsps.AttachSources(1, built.sources).ok());
    fsps.RunFor(Seconds(3));

    ASSERT_TRUE(fsps.CrashNode(0).ok());
    EXPECT_EQ(fsps.query_ids(), (std::vector<QueryId>{1}));
    ASSERT_TRUE(fsps.CrashNode(1).ok());
    // No live candidate anywhere: the query departs under either policy.
    EXPECT_TRUE(fsps.query_ids().empty())
        << ReplacementPolicyName(policy);
    EXPECT_EQ(fsps.churn_stats().dropped_queries, 1u);
    fsps.RunFor(Seconds(3));  // the wire drains quietly (ASan watches)
  }
}

}  // namespace
}  // namespace themis
