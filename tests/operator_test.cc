// Tests of the Eq. (3) SIC propagation machinery (runtime/operator.h),
// including the paper's Figure 2 worked example.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/operator.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"

namespace themis {
namespace {

Tuple T(SimTime ts, double sic, double v = 0.0) {
  return Tuple(ts, sic, {Value(v)});
}

// A windowed operator that halves its pane (used to observe Eq. 3 shares).
class HalveOp : public WindowedOperator {
 public:
  explicit HalveOp(WindowSpec spec) : WindowedOperator("halve", spec, 1.0) {}

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override {
    for (size_t i = 0; i < pane.tuples.size() / 2; ++i) {
      Tuple t;
      t.values = pane.tuples[i].values;
      out->push_back(std::move(t));
    }
  }
};

TEST(WindowedOperatorTest, Eq3DistributesSicEqually) {
  HalveOp op(WindowSpec::TumblingTime(kSecond));
  op.Ingest({T(10, 0.1), T(20, 0.2), T(30, 0.3), T(40, 0.4)}, 0);
  std::vector<Tuple> out;
  op.Advance(kSecond, &out);
  ASSERT_EQ(out.size(), 2u);
  // Eq. (3): each derived tuple gets (0.1+0.2+0.3+0.4)/2.
  EXPECT_DOUBLE_EQ(out[0].sic, 0.5);
  EXPECT_DOUBLE_EQ(out[1].sic, 0.5);
  // Derived tuples are stamped with the pane end (emission time).
  EXPECT_EQ(out[0].timestamp, kSecond);
}

TEST(WindowedOperatorTest, EmptyOutputLosesSic) {
  // An operator that produces nothing from a pane: the pane's SIC mass does
  // not reach the result — exactly the "derived tuple not generated" case of
  // Fig. 2.
  class DropAllOp : public WindowedOperator {
   public:
    DropAllOp()
        : WindowedOperator("drop", WindowSpec::TumblingTime(kSecond), 1) {}

   protected:
    void ProcessPane(const Pane&, std::vector<Tuple>*) override {}
  };
  DropAllOp op;
  op.Ingest({T(10, 0.5)}, 0);
  std::vector<Tuple> out;
  op.Advance(kSecond, &out);
  EXPECT_TRUE(out.empty());
}

TEST(PassThroughOperatorTest, ForwardsTuplesWithSicUntouched) {
  PassThroughOperator op("pt", 0.1);
  op.Ingest({T(10, 0.25, 1.0), T(20, 0.125, 2.0)}, 0);
  std::vector<Tuple> out;
  op.Advance(0, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].sic, 0.25);
  EXPECT_DOUBLE_EQ(out[1].sic, 0.125);
  // Second advance emits nothing (buffer drained).
  out.clear();
  op.Advance(0, &out);
  EXPECT_TRUE(out.empty());
}

// The Figure 2 example: a query with operators a (root), b, c over 2 sources.
// During one STW, b receives 4 source tuples (SIC 0.125 each), c receives
// 2 source tuples (SIC 0.25 each); b emits 2 derived tuples, c emits 2;
// a receives the 4 derived tuples and emits 2 result tuples.
class Fig2Op : public WindowedOperator {
 public:
  Fig2Op(std::string name, size_t outputs)
      : WindowedOperator(std::move(name), WindowSpec::TumblingTime(kSecond), 1),
        outputs_(outputs) {}

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override {
    if (pane.tuples.empty()) return;
    for (size_t i = 0; i < outputs_; ++i) out->push_back(Tuple());
  }

 private:
  size_t outputs_;
};

TEST(SicPropagationTest, Figure2PerfectProcessing) {
  Fig2Op b("b", 2), c("c", 2), a("a", 2);

  b.Ingest({T(1, 0.125), T(2, 0.125), T(3, 0.125), T(4, 0.125)}, 0);
  c.Ingest({T(1, 0.25), T(2, 0.25)}, 0);

  std::vector<Tuple> mid;
  b.Advance(kSecond, &mid);
  c.Advance(kSecond, &mid);
  ASSERT_EQ(mid.size(), 4u);
  // b's deriveds carry 0.25 each, c's carry 0.25 each (Fig. 2 middle row).
  for (const Tuple& t : mid) EXPECT_DOUBLE_EQ(t.sic, 0.25);

  a.Ingest(mid, 0);
  std::vector<Tuple> result;
  a.Advance(2 * kSecond, &result);
  ASSERT_EQ(result.size(), 2u);
  double q_sic = result[0].sic + result[1].sic;
  EXPECT_DOUBLE_EQ(result[0].sic, 0.5);
  EXPECT_DOUBLE_EQ(q_sic, 1.0);  // perfect processing
}

TEST(SicPropagationTest, Figure2WithShedding) {
  // Operator b sheds two of its input tuples; operator a sheds one of its
  // input (derived) tuples. Result SIC must be 0.5.
  Fig2Op b("b", 1), c("c", 2), a("a", 1);

  // b keeps only 2 of its 4 source tuples (shed before ingestion) and now
  // emits 1 derived tuple for the thinner pane.
  b.Ingest({T(1, 0.125), T(2, 0.125)}, 0);
  c.Ingest({T(1, 0.25), T(2, 0.25)}, 0);

  std::vector<Tuple> mid;
  b.Advance(kSecond, &mid);   // 1 tuple, SIC 0.25
  c.Advance(kSecond, &mid);   // 2 tuples, SIC 0.25 each
  ASSERT_EQ(mid.size(), 3u);

  // a sheds one of c's derived tuples: ingest only b's tuple and one of c's.
  a.Ingest({mid[0], mid[1]}, 0);
  std::vector<Tuple> result;
  a.Advance(2 * kSecond, &result);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_DOUBLE_EQ(result[0].sic, 0.5);  // q_SIC = 0.5, as in the paper
}

TEST(BinaryWindowedOperatorTest, PairsPanesByEnd) {
  class ConcatOp : public BinaryWindowedOperator {
   public:
    ConcatOp()
        : BinaryWindowedOperator("cc", WindowSpec::TumblingTime(kSecond), 1) {}
    int left_count = -1, right_count = -1;

   protected:
    void ProcessPanes(const Pane& l, const Pane& r,
                      std::vector<Tuple>* out) override {
      left_count = static_cast<int>(l.tuples.size());
      right_count = static_cast<int>(r.tuples.size());
      out->push_back(Tuple());
    }
  };
  ConcatOp op;
  op.Ingest({T(10, 0.3)}, 0);
  op.Ingest({T(20, 0.3), T(30, 0.4)}, 1);
  std::vector<Tuple> out;
  op.Advance(kSecond, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(op.left_count, 1);
  EXPECT_EQ(op.right_count, 2);
  EXPECT_DOUBLE_EQ(out[0].sic, 1.0);  // union of both panes' SIC
}

TEST(BinaryWindowedOperatorTest, SilentSideYieldsEmptyPane) {
  class CountSidesOp : public BinaryWindowedOperator {
   public:
    CountSidesOp()
        : BinaryWindowedOperator("cs", WindowSpec::TumblingTime(kSecond), 1) {}
    int calls = 0;
    size_t last_left = 99, last_right = 99;

   protected:
    void ProcessPanes(const Pane& l, const Pane& r,
                      std::vector<Tuple>* out) override {
      ++calls;
      last_left = l.tuples.size();
      last_right = r.tuples.size();
      out->push_back(Tuple());
    }
  };
  CountSidesOp op;
  op.Ingest({T(10, 0.5)}, 0);  // nothing on port 1
  std::vector<Tuple> out;
  op.Advance(kSecond, &out);
  EXPECT_EQ(op.calls, 1);
  EXPECT_EQ(op.last_left, 1u);
  EXPECT_EQ(op.last_right, 0u);
}

}  // namespace
}  // namespace themis
