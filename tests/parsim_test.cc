// Tests for the conservative parallel engine (themis_parsim): single-shard
// byte-identity with the sequential engine, cross-shard delivery through
// the epoch barriers, and the deterministic (deliver_time, from_shard,
// ring_seq) merge order.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "federation/fsps.h"
#include "parsim/parallel_engine.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace themis {
namespace {

// Execution trace entry: (simulated time, event tag).
using Trace = std::vector<std::pair<SimTime, int>>;

void ScheduleMixedEvents(Engine* engine, Trace* trace) {
  EventQueue* q = engine->queue(0);
  for (int i = 0; i < 5; ++i) {
    q->ScheduleAfter(Millis(10 * (5 - i)),
                     [trace, q, i] { trace->push_back({q->now(), i}); });
  }
  // Equal-time ties must stay FIFO.
  q->Schedule(Millis(30), [trace, q] { trace->push_back({q->now(), 100}); });
  q->Schedule(Millis(30), [trace, q] { trace->push_back({q->now(), 101}); });
}

TEST(ParallelEngineTest, SingleShardMatchesSequentialEngine) {
  SequentialEngine seq;
  ParallelEngine par(1);
  Trace seq_trace, par_trace;
  ScheduleMixedEvents(&seq, &seq_trace);
  ScheduleMixedEvents(&par, &par_trace);
  seq.RunUntil(Millis(60));
  par.RunUntil(Millis(60));
  EXPECT_EQ(seq_trace, par_trace);
  EXPECT_EQ(seq.now(), par.now());
  EXPECT_EQ(seq.executed(), par.executed());
}

TEST(ParallelEngineTest, ShardsAdvanceTogetherWithoutCrossTraffic) {
  ParallelEngine engine(3);
  std::vector<int> fired(3, 0);
  for (int s = 0; s < 3; ++s) {
    EventQueue* q = engine.queue(s);
    q->Schedule(Millis(10 * (s + 1)), [&fired, s] { ++fired[s]; });
    q->Schedule(Millis(90), [&fired, s] { ++fired[s]; });
  }
  // Default lookahead (-1): no cross-shard traffic declared, one stretch.
  engine.RunUntil(Millis(50));
  EXPECT_EQ(fired, (std::vector<int>{1, 1, 1}));
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(engine.queue(s)->now(), Millis(50));
  }
  engine.RunUntil(Millis(100));
  EXPECT_EQ(fired, (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(engine.executed(), 6u);
}

// One latency override, applied before the shard plan freezes the topology.
struct LinkSpec {
  NodeId a;
  NodeId b;
  SimDuration latency;
};

// Two-shard fixture: node 0 on shard 0, node 1 on shard 1, 10 ms default
// link latency (also the lookahead — overrides must not go below it).
struct TwoShardNet {
  ParallelEngine engine{2};
  Network net{engine.queue(0), Millis(10)};

  explicit TwoShardNet(std::vector<LinkSpec> links = {}) {
    for (const LinkSpec& link : links) {
      net.SetLatency(link.a, link.b, link.latency);
    }
    ShardPlan plan;
    plan.shard_of_node = {0, 1};
    plan.queues = {engine.queue(0), engine.queue(1)};
    plan.sink = engine.sink();
    net.InstallShardPlan(std::move(plan));
    engine.SetLookahead(Millis(10));
  }
};

TEST(ParallelEngineTest, CrossShardDeliveryRespectsLatency) {
  TwoShardNet f;
  SimTime delivered_at = -1;
  f.engine.queue(0)->Schedule(Millis(7), [&] {
    f.net.Send(0, 1, 25, [&] { delivered_at = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(100));
  EXPECT_EQ(delivered_at, Millis(17));
  EXPECT_EQ(f.net.messages_sent(), 1u);
  EXPECT_EQ(f.net.bytes_sent(), 25u);
}

TEST(ParallelEngineTest, SameShardTrafficSkipsTheRings) {
  // Source pseudo-node traffic (from == kInvalidId) runs on the
  // destination's shard and must stay shard-local.
  TwoShardNet f({{kInvalidId, 1, Millis(3)}});
  SimTime delivered_at = -1;
  f.engine.queue(1)->Schedule(Millis(5), [&] {
    f.net.Send(kInvalidId, 1, 10,
               [&] { delivered_at = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(100));
  EXPECT_EQ(delivered_at, Millis(8));
}

TEST(ParallelEngineTest, CrossShardOrderIsDeterministic) {
  auto run = [] {
    TwoShardNet f;
    std::vector<int> order;  // only ever touched by shard 1
    for (int i = 0; i < 24; ++i) {
      f.engine.queue(0)->Schedule(Millis(i % 6), [&f, &order, i] {
        f.net.Send(0, 1, 1, [&order, i] { order.push_back(i); });
      });
    }
    f.engine.RunUntil(Millis(200));
    return order;
  };
  std::vector<int> first = run();
  EXPECT_EQ(first.size(), 24u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(run(), first);
  }
  // Same send latency: deliveries keep send-time order; equal send times
  // keep scheduling order.
  std::vector<int> expected;
  for (int t = 0; t < 6; ++t) {
    for (int i = t; i < 24; i += 6) expected.push_back(i);
  }
  EXPECT_EQ(first, expected);
}

TEST(ParallelEngineTest, MergeOrdersByTimeThenShard) {
  // Three shards: shards 0 and 1 both send to node 2 (shard 2) with equal
  // delivery times. The merge must order by (deliver_time, from_shard),
  // regardless of wall-clock interleaving.
  ParallelEngine engine(3);
  Network net(engine.queue(0), Millis(10));
  ShardPlan plan;
  plan.shard_of_node = {0, 1, 2};
  plan.queues = {engine.queue(0), engine.queue(1), engine.queue(2)};
  plan.sink = engine.sink();
  net.InstallShardPlan(std::move(plan));
  engine.SetLookahead(Millis(10));

  std::vector<int> order;  // only touched by shard 2
  for (int i = 0; i < 4; ++i) {
    engine.queue(1)->Schedule(Millis(i), [&net, &order, i] {
      net.Send(1, 2, 1, [&order, i] { order.push_back(10 + i); });
    });
    engine.queue(0)->Schedule(Millis(i), [&net, &order, i] {
      net.Send(0, 2, 1, [&order, i] { order.push_back(i); });
    });
  }
  engine.RunUntil(Millis(100));
  // Per delivery time: shard 0's message first, then shard 1's.
  EXPECT_EQ(order, (std::vector<int>{0, 10, 1, 11, 2, 12, 3, 13}));
}

TEST(ParallelEngineTest, RemoteDeliveryBeyondOneEpoch) {
  // A 100 ms WAN link with a 10 ms lookahead: the delivery crosses many
  // epoch boundaries and must still arrive exactly once, at the right time.
  TwoShardNet f({{0, 1, Millis(100)}});
  int delivered = 0;
  SimTime at = -1;
  f.engine.queue(0)->Schedule(Millis(3), [&] {
    f.net.Send(0, 1, 1, [&] {
      ++delivered;
      at = f.engine.queue(1)->now();
    });
  });
  f.engine.RunUntil(Millis(50));  // not yet delivered
  EXPECT_EQ(delivered, 0);
  f.engine.RunUntil(Millis(200));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(at, Millis(103));
}

TEST(ParallelEngineTest, DeliveryAtExactRunUntilTarget) {
  // Regression test: a send at exactly the run's start time over a link
  // whose latency equals the lookahead delivers at the first epoch's own
  // end. The zero-width boundary epoch merges it before the destination
  // runs past that time — matching SequentialEngine, which executes events
  // at an inclusive RunUntil target.
  TwoShardNet f;
  SimTime delivered_at = -1;
  f.engine.queue(0)->Schedule(0, [&] {
    f.net.Send(0, 1, 1, [&] { delivered_at = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(10));  // target == delivery time exactly
  EXPECT_EQ(delivered_at, Millis(10));
}

TEST(ParallelEngineTest, DeliveryAtBoundaryOfResumedRun) {
  // Same boundary case, but at the start of a *second* RunUntil: an event
  // scheduled between runs at the current clock sends with latency ==
  // lookahead, due exactly one epoch into the resumed run.
  TwoShardNet f;
  f.engine.RunUntil(Millis(25));
  SimTime delivered_at = -1;
  f.engine.queue(0)->Schedule(Millis(25), [&] {
    f.net.Send(0, 1, 1, [&] { delivered_at = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(35));
  EXPECT_EQ(delivered_at, Millis(35));
}

TEST(ParallelEngineTest, RunForZeroRunsEventsAtCurrentClock) {
  // RunUntil(now) mirrors EventQueue::RunUntil semantics: events at the
  // current clock run, including ones that send cross-shard (their
  // deliveries queue up for the next run).
  TwoShardNet f;
  f.engine.RunUntil(Millis(20));
  bool ran = false;
  SimTime delivered_at = -1;
  f.engine.queue(0)->Schedule(Millis(20), [&] {
    ran = true;
    f.net.Send(0, 1, 1, [&] { delivered_at = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(20));
  EXPECT_TRUE(ran);
  EXPECT_EQ(delivered_at, -1);  // due at 30 ms, not yet
  f.engine.RunUntil(Millis(40));
  EXPECT_EQ(delivered_at, Millis(30));
}

TEST(ParallelEngineTest, TopologyFrozenUnderShardPlan) {
  // Outcome 1 of a late topology edit: the immediate setters reject it
  // with a Status error (no more process abort) and the matrix is
  // untouched.
  TwoShardNet f;
  EXPECT_TRUE(f.net.SetLatency(0, 1, Millis(1)).IsFailedPrecondition());
  EXPECT_TRUE(f.net.SetDefaultLatency(Millis(1)).IsFailedPrecondition());
  EXPECT_EQ(f.net.Latency(0, 1), Millis(10));
}

TEST(ParallelEngineTest, QueuedTopologyEditDefersToEpochBoundary) {
  // Outcome 2: the edit queues and only lands when ApplyQueuedMutations
  // drains the queue at an epoch boundary — messages sent before the drain
  // still travel at the old latency.
  TwoShardNet f;
  f.net.QueueSetLatency(0, 1, Millis(30));
  EXPECT_TRUE(f.net.has_queued_mutations());
  EXPECT_EQ(f.net.Latency(0, 1), Millis(10));  // not yet applied

  SimTime first = -1;
  f.engine.queue(0)->Schedule(0, [&] {
    f.net.Send(0, 1, 1, [&] { first = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(20));
  EXPECT_EQ(first, Millis(10));  // old latency

  EXPECT_EQ(f.net.ApplyQueuedMutations(), 1u);
  EXPECT_FALSE(f.net.has_queued_mutations());
  EXPECT_EQ(f.net.Latency(0, 1), Millis(30));
  // The caller re-derives the lookahead from the mutated matrix before
  // resuming (Fsps::ApplyTopologyMutations does this at RunFor time).
  EXPECT_EQ(f.net.MinCrossShardLatency({0, 1}), Millis(30));
  f.engine.SetLookahead(Millis(30));
  EXPECT_EQ(f.engine.lookahead(), Millis(30));

  SimTime second = -1;
  f.engine.queue(0)->Schedule(Millis(20), [&] {
    f.net.Send(0, 1, 1, [&] { second = f.engine.queue(1)->now(); });
  });
  f.engine.RunUntil(Millis(100));
  EXPECT_EQ(second, Millis(50));  // new latency
}

TEST(ParallelEngineTest, MinCrossShardLatencySkipsDeadNodes) {
  // Lookahead re-derivation after a crash: links touching a dead node
  // carry no future traffic and must not narrow the epoch.
  EventQueue q;
  Network net(&q, Millis(50));
  net.SetLatency(0, 3, Millis(5));  // the tightest link, endpoint 3
  std::vector<int> shard_of_node = {0, 0, 1, 1};
  EXPECT_EQ(net.MinCrossShardLatency(shard_of_node), Millis(5));
  EXPECT_EQ(net.MinCrossShardLatency(shard_of_node, {1, 1, 1, 0}), Millis(50));
  // Restore: the link constrains the epoch again.
  EXPECT_EQ(net.MinCrossShardLatency(shard_of_node, {1, 1, 1, 1}), Millis(5));
}

// --- mid-run AddNode admission (Fsps control plane over this engine) ----

TEST(ParallelEngineTest, AddNodeAfterStartRejectedWithoutElastic) {
  FspsOptions opts;
  opts.shards = 2;
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode(opts.node, 1);
  fsps.RunFor(Millis(100));  // Start(): the non-elastic shard plan freezes
  Result<NodeId> late = fsps.AddNode(opts.node, 0);
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsFailedPrecondition());
  // Before the engine starts the same call is fine, and a bad shard is an
  // argument error, not a precondition.
  Fsps fresh(opts);
  fresh.AddNode();
  EXPECT_TRUE(fresh.AddNode(opts.node, 1).ok());
  EXPECT_TRUE(fresh.AddNode(opts.node, 7).status().IsInvalidArgument());
  EXPECT_TRUE(fresh.AddNode(opts.node, -2).status().IsInvalidArgument());
}

TEST(ParallelEngineTest, AddNodeAfterStartAdmittedWhenElastic) {
  FspsOptions opts;
  opts.shards = 2;
  opts.elastic = true;
  Fsps fsps(opts);
  fsps.AddNode();
  fsps.AddNode(opts.node, 1);
  fsps.RunFor(Millis(100));
  Result<NodeId> late = fsps.AddNode(opts.node, 1);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(*late, 2);
  EXPECT_TRUE(fsps.node_alive(*late));
  EXPECT_EQ(fsps.shard_of(*late), 1);
  // The join's source-link wiring defers to the next run boundary, like
  // any sharded topology edit; the node is schedulable right after it.
  fsps.RunFor(Millis(100));
  EXPECT_EQ(fsps.live_node_ids().size(), 3u);
  // Sequential engines always admitted late joins; elastic keeps that.
  FspsOptions seq_opts;
  Fsps seq(seq_opts);
  seq.AddNode();
  seq.RunFor(Millis(100));
  EXPECT_TRUE(seq.AddNode(seq_opts.node, 0).ok());
}

TEST(ParallelEngineTest, PingPongAcrossShards) {
  // Messages bouncing 0 -> 1 -> 0 -> ... for many epochs.
  TwoShardNet f;
  std::vector<SimTime> hops;  // alternately touched, never concurrently
  std::function<void(int)> bounce = [&](int at_node) {
    hops.push_back(f.engine.queue(at_node)->now());
    if (hops.size() >= 8) return;
    f.net.Send(at_node, 1 - at_node, 1, [&bounce, at_node] {
      bounce(1 - at_node);
    });
  };
  f.engine.queue(0)->Schedule(0, [&] { bounce(0); });
  f.engine.RunUntil(Millis(500));
  ASSERT_EQ(hops.size(), 8u);
  for (size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i], Millis(10) * static_cast<SimDuration>(i));
  }
}

}  // namespace
}  // namespace themis
