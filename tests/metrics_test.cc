// Tests for the metrics module: Jain's index, Kendall top-k distance, error
// metrics, reporter formatting.
#include <gtest/gtest.h>

#include "metrics/error_metrics.h"
#include "metrics/jain.h"
#include "metrics/kendall.h"
#include "metrics/reporter.h"

namespace themis {
namespace {

TEST(JainIndexTest, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(JainIndex({0.3, 0.3, 0.3, 0.3}), 1.0);
}

TEST(JainIndexTest, SingleWinnerIsOneOverN) {
  EXPECT_DOUBLE_EQ(JainIndex({1.0, 0.0, 0.0, 0.0}), 0.25);
}

TEST(JainIndexTest, KnownValue) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(JainIndex({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndexTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 1.0);
}

TEST(JainIndexTest, ScaleInvariant) {
  std::vector<double> xs = {0.1, 0.4, 0.2};
  std::vector<double> scaled = {1.0, 4.0, 2.0};
  EXPECT_NEAR(JainIndex(xs), JainIndex(scaled), 1e-12);
}

TEST(KendallTest, IdenticalListsZero) {
  EXPECT_DOUBLE_EQ(KendallTopKDistance({1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}), 0.0);
}

TEST(KendallTest, ReversedListsOne) {
  EXPECT_DOUBLE_EQ(KendallTopKDistance({1, 2, 3}, {3, 2, 1}), 1.0);
}

TEST(KendallTest, SingleSwapPartial) {
  // {1,2,3} vs {2,1,3}: one of three comparable pairs disagrees.
  EXPECT_NEAR(KendallTopKDistance({1, 2, 3}, {2, 1, 3}), 1.0 / 3.0, 1e-12);
}

TEST(KendallTest, DisjointListsOne) {
  EXPECT_DOUBLE_EQ(KendallTopKDistance({1, 2}, {3, 4}), 1.0);
}

TEST(KendallTest, MissingElementPenalised) {
  // B misses element 3 but keeps the order of 1, 2.
  double d = KendallTopKDistance({1, 2, 3}, {1, 2, 4});
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

TEST(KendallTest, EmptyLists) {
  EXPECT_DOUBLE_EQ(KendallTopKDistance({}, {}), 0.0);
}

TEST(KendallTest, SymmetricInArguments) {
  std::vector<int64_t> a = {5, 1, 9, 2}, b = {2, 9, 5, 7};
  EXPECT_DOUBLE_EQ(KendallTopKDistance(a, b), KendallTopKDistance(b, a));
}

TEST(MeanAbsoluteErrorTest, ExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({{10, 10}, {20, 20}}), 0.0);
}

TEST(MeanAbsoluteErrorTest, RelativeError) {
  // |8-10|/10 = 0.2 and |30-20|/20 = 0.5 -> mean 0.35.
  EXPECT_NEAR(MeanAbsoluteError({{8, 10}, {30, 20}}), 0.35, 1e-12);
}

TEST(MeanAbsoluteErrorTest, SkipsZeroPerfectValues) {
  EXPECT_NEAR(MeanAbsoluteError({{8, 10}, {5, 0}}), 0.2, 1e-12);
}

TEST(AlignByTimeTest, PairsMatchingTimes) {
  std::vector<TimedValue> degraded = {{Seconds(1), 9}, {Seconds(2), 19}};
  std::vector<TimedValue> perfect = {{Seconds(1), 10},
                                     {Seconds(2), 20},
                                     {Seconds(3), 30}};
  auto pairs = AlignByTime(degraded, perfect);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, 9);
  EXPECT_EQ(pairs[0].second, 10);
}

TEST(AlignByTimeTest, UnmatchedTimesDropped) {
  std::vector<TimedValue> degraded = {{Seconds(5), 1}};
  std::vector<TimedValue> perfect = {{Seconds(1), 2}};
  EXPECT_TRUE(AlignByTime(degraded, perfect).empty());
}

TEST(ReporterTest, CollectsRows) {
  Reporter r("test", {"x", "y"});
  r.AddRow({1.0, 2.0});
  r.AddRow("mixed", {3.0});
  ASSERT_EQ(r.rows().size(), 2u);
  EXPECT_EQ(r.rows()[1][0], "mixed");
  r.Print();  // smoke: must not crash
}

}  // namespace
}  // namespace themis
