// Tests for the discrete-event core: event ordering, clock semantics,
// network latency and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/network.h"

namespace themis {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Millis(30), [&] { order.push_back(3); });
  q.Schedule(Millis(10), [&] { order.push_back(1); });
  q.Schedule(Millis(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Millis(30));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Millis(10), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(Millis(10), [&] { ++fired; });
  q.Schedule(Millis(20), [&] { ++fired; });
  q.Schedule(Millis(30), [&] { ++fired; });
  q.RunUntil(Millis(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Millis(20));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.ScheduleAfter(Millis(1), recurse);
  };
  q.Schedule(0, recurse);
  q.RunUntil(Millis(100));
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.Schedule(Millis(50), [] {});
  q.RunAll();
  bool ran = false;
  q.Schedule(Millis(10), [&] { ran = true; });  // in the past
  q.RunUntil(Millis(50));
  EXPECT_TRUE(ran);
}

TEST(NetworkTest, DefaultLatencyApplied) {
  EventQueue q;
  Network net(&q, Millis(5));
  SimTime delivered_at = -1;
  net.Send(0, 1, 100, [&] { delivered_at = q.now(); });
  q.RunAll();
  EXPECT_EQ(delivered_at, Millis(5));
}

TEST(NetworkTest, PerLinkOverride) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(0, 1, Millis(50));
  SimTime t01 = -1, t02 = -1;
  net.Send(0, 1, 10, [&] { t01 = q.now(); });
  net.Send(0, 2, 10, [&] { t02 = q.now(); });
  q.RunAll();
  EXPECT_EQ(t01, Millis(50));
  EXPECT_EQ(t02, Millis(5));
}

TEST(NetworkTest, LatencyIsSymmetric) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(3, 1, Millis(42));
  EXPECT_EQ(net.Latency(1, 3), Millis(42));
  EXPECT_EQ(net.Latency(3, 1), Millis(42));
}

TEST(NetworkTest, SelfDeliveryIsImmediate) {
  EventQueue q;
  Network net(&q, Millis(5));
  EXPECT_EQ(net.Latency(2, 2), 0);
}

TEST(NetworkTest, CountsTraffic) {
  EventQueue q;
  Network net(&q, Millis(1));
  net.Send(0, 1, 100, [] {});
  net.Send(0, 1, 150, [] {});
  q.RunAll();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 250u);
}

TEST(NetworkTest, JitterStaysWithinBound) {
  EventQueue q;
  Network net(&q, Millis(10));
  net.SetJitter(Millis(5));
  for (int i = 0; i < 50; ++i) {
    SimTime sent = q.now();
    SimTime got = -1;
    net.Send(0, 1, 1, [&] { got = q.now(); });
    q.RunAll();
    EXPECT_GE(got - sent, Millis(10));
    EXPECT_LE(got - sent, Millis(15));
  }
}

}  // namespace
}  // namespace themis
