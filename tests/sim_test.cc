// Tests for the discrete-event core: event ordering, clock semantics,
// network latency and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/network.h"

namespace themis {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Millis(30), [&] { order.push_back(3); });
  q.Schedule(Millis(10), [&] { order.push_back(1); });
  q.Schedule(Millis(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Millis(30));
}

TEST(EventQueueTest, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Millis(10), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.Schedule(Millis(10), [&] { ++fired; });
  q.Schedule(Millis(20), [&] { ++fired; });
  q.Schedule(Millis(30), [&] { ++fired; });
  q.RunUntil(Millis(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Millis(20));
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.ScheduleAfter(Millis(1), recurse);
  };
  q.Schedule(0, recurse);
  q.RunUntil(Millis(100));
  EXPECT_EQ(depth, 5);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  q.Schedule(Millis(50), [] {});
  q.RunAll();
  bool ran = false;
  q.Schedule(Millis(10), [&] { ran = true; });  // in the past
  q.RunUntil(Millis(50));
  EXPECT_TRUE(ran);
}

TEST(NetworkTest, DefaultLatencyApplied) {
  EventQueue q;
  Network net(&q, Millis(5));
  SimTime delivered_at = -1;
  net.Send(0, 1, 100, [&] { delivered_at = q.now(); });
  q.RunAll();
  EXPECT_EQ(delivered_at, Millis(5));
}

TEST(NetworkTest, PerLinkOverride) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(0, 1, Millis(50));
  SimTime t01 = -1, t02 = -1;
  net.Send(0, 1, 10, [&] { t01 = q.now(); });
  net.Send(0, 2, 10, [&] { t02 = q.now(); });
  q.RunAll();
  EXPECT_EQ(t01, Millis(50));
  EXPECT_EQ(t02, Millis(5));
}

TEST(NetworkTest, LatencyIsSymmetric) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(3, 1, Millis(42));
  EXPECT_EQ(net.Latency(1, 3), Millis(42));
  EXPECT_EQ(net.Latency(3, 1), Millis(42));
}

TEST(NetworkTest, SelfDeliveryIsImmediate) {
  EventQueue q;
  Network net(&q, Millis(5));
  EXPECT_EQ(net.Latency(2, 2), 0);
}

TEST(NetworkTest, CountsTraffic) {
  EventQueue q;
  Network net(&q, Millis(1));
  net.Send(0, 1, 100, [] {});
  net.Send(0, 1, 150, [] {});
  q.RunAll();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 250u);
}

TEST(NetworkTest, JitterStaysWithinBound) {
  EventQueue q;
  Network net(&q, Millis(10));
  net.SetJitter(Millis(5));
  for (int i = 0; i < 50; ++i) {
    SimTime sent = q.now();
    SimTime got = -1;
    net.Send(0, 1, 1, [&] { got = q.now(); });
    q.RunAll();
    EXPECT_GE(got - sent, Millis(10));
    EXPECT_LE(got - sent, Millis(15));
  }
}

TEST(NetworkTest, JitterStreamFollowsSeed) {
  // Two networks with the same seed draw identical jitter sequences; a
  // different seed gives a different sequence (Fsps derives the seed from
  // FspsOptions::seed so instances never share a stream).
  auto draw = [](uint64_t seed) {
    EventQueue q;
    Network net(&q, Millis(10), seed);
    net.SetJitter(Millis(8));
    std::vector<SimTime> deltas;
    for (int i = 0; i < 20; ++i) {
      SimTime sent = q.now();
      net.Send(0, 1, 1, [&, sent] { deltas.push_back(q.now() - sent); });
      q.RunAll();
    }
    return deltas;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(NetworkTest, LatencyMatrixGrowsWithNodeIds) {
  // The dense matrix grows on demand and keeps earlier overrides; ids
  // beyond any override still resolve to the default.
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(0, 1, Millis(11));
  net.SetLatency(40, 90, Millis(70));  // forces regrowth
  EXPECT_EQ(net.Latency(0, 1), Millis(11));
  EXPECT_EQ(net.Latency(90, 40), Millis(70));
  EXPECT_EQ(net.Latency(0, 90), Millis(5));
  EXPECT_EQ(net.Latency(500, 501), Millis(5));  // never stored: default
}

TEST(NetworkTest, SourcePseudoNodeLatency) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(kInvalidId, 2, Millis(9));
  EXPECT_EQ(net.Latency(kInvalidId, 2), Millis(9));
  EXPECT_EQ(net.Latency(kInvalidId, 3), Millis(5));
}

TEST(NetworkTest, UnshardedSettersApplyImmediately) {
  EventQueue q;
  Network net(&q, Millis(5));
  EXPECT_TRUE(net.SetLatency(0, 1, Millis(20)).ok());
  EXPECT_TRUE(net.SetDefaultLatency(Millis(9)).ok());
  EXPECT_EQ(net.Latency(0, 1), Millis(20));
  EXPECT_EQ(net.Latency(0, 2), Millis(9));
}

TEST(NetworkTest, MutationQueueAppliesInFifoOrder) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.QueueSetLatency(0, 1, Millis(20));
  net.QueueSetLatency(0, 1, Millis(30));  // later edit wins
  net.QueueSetDefaultLatency(Millis(7));
  EXPECT_TRUE(net.has_queued_mutations());
  EXPECT_EQ(net.Latency(0, 1), Millis(5));  // nothing applied yet
  EXPECT_EQ(net.ApplyQueuedMutations(), 3u);
  EXPECT_FALSE(net.has_queued_mutations());
  EXPECT_EQ(net.Latency(0, 1), Millis(30));
  EXPECT_EQ(net.Latency(2, 3), Millis(7));
  EXPECT_EQ(net.ApplyQueuedMutations(), 0u);  // drained
}

TEST(NetworkTest, QueuedMutationGrowsMatrixIncrementally) {
  EventQueue q;
  Network net(&q, Millis(5));
  net.SetLatency(0, 1, Millis(11));
  net.QueueSetLatency(80, 120, Millis(70));  // forces regrowth on apply
  net.ApplyQueuedMutations();
  EXPECT_EQ(net.Latency(0, 1), Millis(11));  // earlier override preserved
  EXPECT_EQ(net.Latency(120, 80), Millis(70));
  EXPECT_EQ(net.Latency(0, 120), Millis(5));
}

TEST(NetworkTest, MinCrossShardLatency) {
  EventQueue q;
  Network net(&q, Millis(50));
  net.SetLatency(0, 1, Millis(5));   // same shard: must not count
  net.SetLatency(2, 3, Millis(20));  // cross shard
  std::vector<int> shard_of_node = {0, 0, 0, 1};
  EXPECT_EQ(net.MinCrossShardLatency(shard_of_node), Millis(20));
  // All nodes on one shard: no cross-shard pair.
  EXPECT_EQ(net.MinCrossShardLatency({0, 0, 0, 0}), -1);
  // An overridden link that crosses shards caps the lookahead.
  EXPECT_EQ(net.MinCrossShardLatency({0, 1}), Millis(5));
  // Unlisted cross-shard pairs fall back to the default latency.
  Network fresh(&q, Millis(50));
  EXPECT_EQ(fresh.MinCrossShardLatency({0, 1}), Millis(50));
}

TEST(ShardPlanTest, ShardOfDefaultsToZero) {
  ShardPlan plan;
  plan.shard_of_node = {0, 1, 1};
  EXPECT_EQ(plan.ShardOf(0), 0);
  EXPECT_EQ(plan.ShardOf(2), 1);
  EXPECT_EQ(plan.ShardOf(kInvalidId), 0);
  EXPECT_EQ(plan.ShardOf(99), 0);
}

TEST(SequentialEngineTest, WrapsSingleQueue) {
  SequentialEngine engine;
  ASSERT_EQ(engine.num_shards(), 1);
  int fired = 0;
  engine.queue(0)->Schedule(Millis(10), [&] { ++fired; });
  engine.queue(0)->Schedule(Millis(30), [&] { ++fired; });
  engine.RunUntil(Millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), Millis(20));
  EXPECT_EQ(engine.executed(), 1u);
}

}  // namespace
}  // namespace themis
