// Oracle equivalence: the real-time server in deterministic mode (manual
// clock, modeled cost accounting, paced admission) must reproduce the
// discrete-event Node's schedule exactly — same admissions, same shed
// decisions, same accepted-SIC totals, bit for bit — on a pinned overloaded
// multi-query scenario. Run both caller-driven (0 workers) and on one real
// worker thread.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "node/node.h"
#include "runtime/checkpoint.h"
#include "runtime/clock.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "server/oracle_driver.h"
#include "server/server_pipeline.h"
#include "shedding/balance_sic_shedder.h"
#include "sim/event_queue.h"

namespace themis {
namespace {

// The pinned scenario. Constraints that make DES/server equality exact:
//  - every operator cost divided by cpu_speed is an integral microsecond
//    count (the DES truncates per-admission work sums once, the server
//    truncates per charge; integral pieces make both exact),
//  - per-batch work stays below the 250 ms shed interval (ticks then always
//    precede same-time admissions, as the event queue schedules them),
//  - arrival times avoid the 250 ms tick grid (coprime periods; first
//    collision at 3.25 s, past the 3.2 s horizon).
constexpr SimTime kHorizon = Millis(3200);
constexpr double kCpuSpeed = 0.01;  // 1 us/tuple costs become 100 us/tuple
constexpr int kQueries = 4;
constexpr SimDuration kPeriods[kQueries] = {Millis(13), Millis(17),
                                            Millis(19), Millis(23)};
constexpr size_t kBatchTuples = 100;

std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src) {
  QueryBuilder b(q, "avg");
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

Batch SourceBatch(QueryId q, SourceId src, SimTime now, size_t n) {
  std::vector<Tuple> ts;
  ts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(Tuple(now, 0.0, {Value(static_cast<double>(q) + 1.0)}));
  }
  Batch b = MakeBatch(q, /*op=*/0, /*port=*/0, now, std::move(ts));
  b.header.source = src;
  return b;
}

// Arrival timeline, sorted ascending; same-time order is query order (the
// DES schedules its events in exactly this order, so FIFO ties match).
std::vector<TimedBatch> MakeArrivals() {
  std::vector<TimedBatch> arrivals;
  for (SimTime t = 0; t <= kHorizon; t += Millis(1)) {
    for (int q = 0; q < kQueries; ++q) {
      if (t % kPeriods[q] != 0) continue;
      arrivals.push_back(
          TimedBatch{t, SourceBatch(q, /*src=*/10 + q, t, kBatchTuples)});
    }
  }
  return arrivals;
}

struct DesRun {
  std::map<QueryId, double> accepted_sic;
  std::map<QueryId, uint64_t> accepted_tuples;
  uint64_t tuples_processed = 0;
  uint64_t tuples_shed = 0;
  uint64_t shed_invocations = 0;
};

class NullRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId, QueryId, FragmentId, Batch) override {}
  void DeliverResult(QueryId, SimTime, const std::vector<Tuple>&) override {}
};

DesRun RunDes(const std::vector<std::unique_ptr<QueryGraph>>& graphs) {
  EventQueue queue;
  NullRouter router;
  NodeOptions options;
  options.cpu_speed = kCpuSpeed;
  Node node(0, options, &queue, &router,
            std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) node.HostFragment(g.get(), 0);
  node.Start();  // first tick scheduled before any arrival: ties tick-first

  std::vector<TimedBatch> arrivals = MakeArrivals();
  for (TimedBatch& a : arrivals) {
    Batch* b = &a.batch;
    queue.Schedule(a.at, [&node, b] { node.Receive(std::move(*b)); });
  }
  queue.RunUntil(kHorizon);

  DesRun out;
  for (int q = 0; q < kQueries; ++q) {
    out.accepted_sic[q] = node.AcceptedSicTotal(q);
    out.accepted_tuples[q] = node.AcceptedTuplesTotal(q);
  }
  out.tuples_processed = node.stats().tuples_processed;
  out.tuples_shed = node.stats().tuples_shed;
  out.shed_invocations = node.stats().shed_invocations;
  return out;
}

void RunServerAndCompare(size_t workers) {
  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kQueries; ++q) {
    graphs.push_back(MakeAvgGraph(q, 10 + q));
  }
  DesRun des = RunDes(graphs);
  // Sanity: the scenario genuinely overloads the node and sheds.
  ASSERT_GT(des.tuples_shed, 0u);
  ASSERT_GT(des.tuples_processed, 0u);

  ManualClock clock;
  ServerOptions opts;
  opts.workers = workers;
  opts.cpu_speed = kCpuSpeed;
  opts.accounting = CostAccounting::kModeled;
  opts.pace_admission = true;
  opts.disseminate_sic = false;  // the DES twin has no coordinator either
  opts.channel_capacity = 1 << 20;  // never backpressure the oracle
  ServerPipeline pipeline(opts, &clock,
                          std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : graphs) pipeline.AddQuery(g.get());
  pipeline.Start();

  std::vector<TimedBatch> arrivals = MakeArrivals();
  DriveDeterministic(&pipeline, &clock, &arrivals, kHorizon);
  pipeline.Stop();

  for (int q = 0; q < kQueries; ++q) {
    SCOPED_TRACE(q);
    EXPECT_EQ(pipeline.AcceptedTuplesTotal(q), des.accepted_tuples[q]);
    EXPECT_DOUBLE_EQ(pipeline.AcceptedSicTotal(q), des.accepted_sic[q]);
  }
  EXPECT_EQ(pipeline.stats().tuples_processed, des.tuples_processed);
  EXPECT_EQ(pipeline.stats().tuples_shed, des.tuples_shed);
  EXPECT_EQ(pipeline.stats().shed_invocations, des.shed_invocations);
}

TEST(ServerOracleTest, CallerDrivenMatchesDes) { RunServerAndCompare(0); }

TEST(ServerOracleTest, SingleWorkerThreadMatchesDes) { RunServerAndCompare(1); }

// --- server checkpoint seam ----------------------------------------------

// Capture rides the server's tick exactly like the DES shed tick: enabling
// checkpoints in deterministic mode must not change a single accepted
// tuple, SIC total or shed decision.
TEST(ServerCheckpointTest, CaptureIsByteIdenticalToOff) {
  auto run = [](CheckpointStore* store) {
    std::vector<std::unique_ptr<QueryGraph>> graphs;
    for (int q = 0; q < kQueries; ++q) {
      graphs.push_back(MakeAvgGraph(q, 10 + q));
    }
    ManualClock clock;
    ServerOptions opts;
    opts.workers = 0;
    opts.cpu_speed = kCpuSpeed;
    opts.accounting = CostAccounting::kModeled;
    opts.pace_admission = true;
    opts.disseminate_sic = false;
    opts.channel_capacity = 1 << 20;
    ServerPipeline pipeline(opts, &clock,
                            std::make_unique<BalanceSicShedder>(Rng(7)));
    for (const auto& g : graphs) pipeline.AddQuery(g.get());
    if (store != nullptr) {
      CheckpointConfig config;
      config.enabled = true;
      config.cadence = Millis(500);
      pipeline.EnableCheckpoints(store, config);
    }
    pipeline.Start();
    std::vector<TimedBatch> arrivals = MakeArrivals();
    DriveDeterministic(&pipeline, &clock, &arrivals, kHorizon);
    pipeline.Stop();
    DesRun out;
    for (int q = 0; q < kQueries; ++q) {
      out.accepted_sic[q] = pipeline.AcceptedSicTotal(q);
      out.accepted_tuples[q] = pipeline.AcceptedTuplesTotal(q);
    }
    out.tuples_processed = pipeline.stats().tuples_processed;
    out.tuples_shed = pipeline.stats().tuples_shed;
    out.shed_invocations = pipeline.stats().shed_invocations;
    return out;
  };

  CheckpointStore store;
  DesRun off = run(nullptr);
  DesRun on = run(&store);
  ASSERT_GT(store.stats().taken, 0u);  // genuinely captured
  for (int q = 0; q < kQueries; ++q) {
    SCOPED_TRACE(q);
    EXPECT_EQ(on.accepted_tuples[q], off.accepted_tuples[q]);
    EXPECT_DOUBLE_EQ(on.accepted_sic[q], off.accepted_sic[q]);
  }
  EXPECT_EQ(on.tuples_processed, off.tuples_processed);
  EXPECT_EQ(on.tuples_shed, off.tuples_shed);
  EXPECT_EQ(on.shed_invocations, off.shed_invocations);
}

// Process-restart model: a fresh pipeline hosting twin graphs restores the
// previous incarnation's operator state from the shared store before
// Start(). The twins' re-serialized images are byte-equal to the stored
// ones — the restore hit every (query, operator) pair, none were missed.
TEST(ServerCheckpointTest, RestartRestoresEveryOperatorFromTheStore) {
  std::vector<std::unique_ptr<QueryGraph>> graphs;
  for (int q = 0; q < kQueries; ++q) {
    graphs.push_back(MakeAvgGraph(q, 10 + q));
  }
  ManualClock clock;
  ServerOptions opts;
  opts.workers = 0;
  opts.cpu_speed = kCpuSpeed;
  opts.accounting = CostAccounting::kModeled;
  opts.pace_admission = true;
  opts.disseminate_sic = false;
  opts.channel_capacity = 1 << 20;

  CheckpointStore store;
  CheckpointConfig config;
  config.enabled = true;
  config.cadence = Millis(250);
  {
    ServerPipeline pipeline(opts, &clock,
                            std::make_unique<BalanceSicShedder>(Rng(7)));
    for (const auto& g : graphs) pipeline.AddQuery(g.get());
    pipeline.EnableCheckpoints(&store, config);
    pipeline.Start();
    std::vector<TimedBatch> arrivals = MakeArrivals();
    DriveDeterministic(&pipeline, &clock, &arrivals, kHorizon);
    pipeline.Stop();
  }
  // Every operator of every query has an image (3 ops per avg graph).
  ASSERT_EQ(store.size(), static_cast<size_t>(3 * kQueries));

  // "Restart": twin graphs (same builder, same ids), fresh pipeline, same
  // durable store.
  std::vector<std::unique_ptr<QueryGraph>> twins;
  for (int q = 0; q < kQueries; ++q) {
    twins.push_back(MakeAvgGraph(q, 10 + q));
  }
  ManualClock clock2;
  ServerPipeline restarted(opts, &clock2,
                           std::make_unique<BalanceSicShedder>(Rng(7)));
  for (const auto& g : twins) restarted.AddQuery(g.get());
  restarted.EnableCheckpoints(&store, config);
  restarted.RestoreHostedFromStore();
  EXPECT_EQ(store.stats().restores, static_cast<uint64_t>(3 * kQueries));
  EXPECT_EQ(store.stats().missed, 0u);

  for (int q = 0; q < kQueries; ++q) {
    const QueryGraph* twin = twins[q].get();
    for (FragmentId frag : twin->fragment_ids()) {
      for (OperatorId oid : twin->fragment_ops(frag)) {
        SCOPED_TRACE(testing::Message() << "q=" << q << " op=" << oid);
        const CheckpointStore::Entry* entry = store.Find(q, oid);
        ASSERT_NE(entry, nullptr);
        CheckpointWriter w;
        twin->op(oid)->Checkpoint(&w);
        EXPECT_EQ(w.bytes(), entry->bytes);
      }
    }
  }
}

}  // namespace
}  // namespace themis
