// Federation-level checkpoint/recovery tests (ROADMAP item 4): crash-time
// state semantics (kLegacyShared vs kReset vs kCheckpoint), capture riding
// the shed tick, the byte-compat contract (enabling checkpoints perturbs
// nothing while no restore happens; sequential == parsim@1 with the feature
// on), and query-retirement hygiene — panes return to the BatchPool,
// images leave every store, repeated deploy/undeploy cycles do not
// accumulate allocations (the ASan job covers this file too).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/alloc_counter.h"
#include "federation/fsps.h"
#include "workload/workloads.h"

namespace themis {
namespace {

// One crash-mid-pane experiment, repeated per crash-state mode. An 8 s
// tumbling AVG window accumulates ~5 s of tuples on node 1, the node dies
// mid-pane, the orphaned fragment re-places onto node 0, and the pane
// releases at 8 s — so the released result's SIC mass is a direct probe of
// what state survived the crash.
struct CrashRun {
  double sic = 0.0;              // Eq. 4 (clamped): health probe only
  double result_sic_mass = 0.0;  // cumulative delivered SIC: the state probe
  uint64_t result_tuples = 0;
  CheckpointStore::Stats crashed_store;   // stats of the crashed node's store
  size_t survivor_images = 0;             // images moved to the new host
  std::vector<double> all_sics;
  NodeStats node_totals;
};

constexpr SimDuration kWindow = Seconds(8);
constexpr SimTime kCrashAt = Millis(5130);      // strictly mid-pane
constexpr SimDuration kDrain = Millis(7870);    // to 13 s: pane released

CrashRun RunCrashExperiment(CrashStateMode mode, bool checkpoints,
                            double error_bound = 0.0,
                            bool force_parsim = false) {
  FspsOptions opts;
  opts.seed = 77;
  opts.crash_state = mode;
  opts.checkpoint.enabled = checkpoints;
  opts.checkpoint.cadence = Millis(250);
  opts.checkpoint.error_bound = error_bound;
  opts.force_parsim_engine = force_parsim;
  // Eq. 4 clamps to [0, 1] and this unshedded scenario pins it there; the
  // recorded per-result SIC mass is the unclamped probe of surviving state.
  opts.coordinator.record_results = true;
  Fsps fsps(opts);
  NodeId survivor = fsps.AddNode();
  NodeId victim = fsps.AddNode();

  WorkloadFactory factory(9);
  AggregateQueryOptions ao;
  ao.window = kWindow;
  BuiltQuery built = factory.MakeAvg(1, ao);
  EXPECT_TRUE(fsps.Deploy(std::move(built.graph), {{0, victim}}).ok());
  EXPECT_TRUE(fsps.AttachSources(1, built.sources).ok());

  fsps.RunFor(kCrashAt);
  EXPECT_TRUE(fsps.CrashNode(victim).ok());
  fsps.RunFor(kDrain);

  CrashRun r;
  r.sic = fsps.QuerySic(1);
  for (const ResultRecord& rec : fsps.coordinator(1)->results()) {
    r.result_sic_mass += rec.sic;
  }
  r.result_tuples = fsps.coordinator(1)->result_tuples();
  r.crashed_store = fsps.node(victim)->checkpoint_store()->stats();
  r.survivor_images = fsps.node(survivor)->checkpoint_store()->size();
  r.all_sics = fsps.AllQuerySics();
  r.node_totals = fsps.TotalNodeStats();
  return r;
}

// Satellite 1: the legacy shared-graph artifact, pinned as explicit policy.
// kLegacyShared lets the re-placed fragment inherit the crashed node's
// window contents through the shared QueryGraph (crash-survival for free —
// physically wrong, historically the only behaviour); kReset models an
// actual cold standby, so the released pane carries strictly less SIC.
TEST(CrashStateModeTest, LegacyInheritsStateResetLosesIt) {
  CrashRun legacy =
      RunCrashExperiment(CrashStateMode::kLegacyShared, /*checkpoints=*/false);
  CrashRun reset =
      RunCrashExperiment(CrashStateMode::kReset, /*checkpoints=*/false);

  // Both runs survive the crash and deliver the released pane.
  ASSERT_GT(legacy.result_tuples, 0u);
  ASSERT_GT(reset.result_tuples, 0u);
  ASSERT_GT(reset.sic, 0.0);
  ASSERT_GT(reset.result_sic_mass, 0.0);
  // The inherited pane holds ~5 s of pre-crash tuples the reset run lost.
  EXPECT_GT(legacy.result_sic_mass, reset.result_sic_mass);
}

// The tentpole: kCheckpoint restores the re-placed fragment from the
// crashed node's store. With a 250 ms cadence the last image is at most one
// shed tick older than the crash, so the restored pane recovers almost all
// of the SIC mass a reset run forfeits.
TEST(CrashStateModeTest, CheckpointRestoreRecoversMostOfTheLostState) {
  CrashRun ckpt = RunCrashExperiment(CrashStateMode::kCheckpoint,
                                     /*checkpoints=*/true);
  CrashRun reset =
      RunCrashExperiment(CrashStateMode::kReset, /*checkpoints=*/false);

  // The crashed node had been capturing all along...
  EXPECT_GT(ckpt.crashed_store.taken, 0u);
  EXPECT_GT(ckpt.crashed_store.bytes_written, 0u);
  // ...every orphaned operator restored from an image (none missed)...
  EXPECT_GT(ckpt.crashed_store.restores, 0u);
  EXPECT_EQ(ckpt.crashed_store.missed, 0u);
  // ...and the images migrated to the new host's store with the fragment.
  EXPECT_GT(ckpt.survivor_images, 0u);

  ASSERT_GT(ckpt.result_tuples, 0u);
  EXPECT_GT(ckpt.result_sic_mass, reset.result_sic_mass);
}

// Approximate mode: an absurdly large error bound skips every re-capture
// after the mandatory first image, and the restored state is accordingly
// stale — still at least as good as a cold reset (the first image may be
// nearly empty, never worse than empty).
TEST(CrashStateModeTest, ApproximateModeSkipsRecapturesAndStillRestores) {
  CrashRun approx = RunCrashExperiment(CrashStateMode::kCheckpoint,
                                       /*checkpoints=*/true,
                                       /*error_bound=*/1e18);
  CrashRun exact = RunCrashExperiment(CrashStateMode::kCheckpoint,
                                      /*checkpoints=*/true,
                                      /*error_bound=*/0.0);

  EXPECT_GT(approx.crashed_store.skipped_clean, 0u);
  // Exact mode re-captures dirty operators at every sweep; the approximate
  // run writes strictly fewer images and strictly fewer bytes.
  EXPECT_LT(approx.crashed_store.taken, exact.crashed_store.taken);
  EXPECT_LT(approx.crashed_store.bytes_written,
            exact.crashed_store.bytes_written);
  EXPECT_GT(approx.crashed_store.restores, 0u);
  // Staleness costs SIC: the bounded-error image cannot beat the fresh one.
  EXPECT_LE(approx.result_sic_mass, exact.result_sic_mass);
  ASSERT_GT(approx.result_tuples, 0u);
}

// Byte-compat contract half 1: with crash_state = kLegacyShared, turning
// checkpoint capture ON must change nothing observable — capture does zero
// simulated work and nothing ever restores, so every figure (SIC, result
// count, node totals) is bit-identical to the checkpoint-off run.
TEST(CheckpointDeterminismTest, CaptureAloneIsByteIdenticalToOff) {
  CrashRun off =
      RunCrashExperiment(CrashStateMode::kLegacyShared, /*checkpoints=*/false);
  CrashRun on =
      RunCrashExperiment(CrashStateMode::kLegacyShared, /*checkpoints=*/true);

  // The on-run genuinely captured (this is not a vacuous comparison)...
  EXPECT_GT(on.crashed_store.taken, 0u);
  // ...yet the simulation is untouched, bit for bit.
  ASSERT_EQ(on.all_sics.size(), off.all_sics.size());
  for (size_t i = 0; i < off.all_sics.size(); ++i) {
    EXPECT_EQ(on.all_sics[i], off.all_sics[i]) << "query index " << i;
  }
  EXPECT_EQ(on.result_tuples, off.result_tuples);
  EXPECT_EQ(on.result_sic_mass, off.result_sic_mass);
  EXPECT_EQ(on.node_totals.tuples_processed, off.node_totals.tuples_processed);
  EXPECT_EQ(on.node_totals.tuples_shed, off.node_totals.tuples_shed);
}

// Byte-compat contract half 2: sequential == parsim@1, bit for bit, with
// capture AND restore on the hot path (crash_state = kCheckpoint).
TEST(CheckpointDeterminismTest, SequentialMatchesParsimWithRestores) {
  CrashRun seq = RunCrashExperiment(CrashStateMode::kCheckpoint,
                                    /*checkpoints=*/true, /*error_bound=*/0.0,
                                    /*force_parsim=*/false);
  CrashRun par = RunCrashExperiment(CrashStateMode::kCheckpoint,
                                    /*checkpoints=*/true, /*error_bound=*/0.0,
                                    /*force_parsim=*/true);

  ASSERT_GT(seq.crashed_store.restores, 0u);
  ASSERT_EQ(par.all_sics.size(), seq.all_sics.size());
  for (size_t i = 0; i < seq.all_sics.size(); ++i) {
    EXPECT_EQ(par.all_sics[i], seq.all_sics[i]) << "query index " << i;
  }
  EXPECT_EQ(par.result_tuples, seq.result_tuples);
  EXPECT_EQ(par.result_sic_mass, seq.result_sic_mass);
  EXPECT_EQ(par.node_totals.tuples_processed, seq.node_totals.tuples_processed);
  EXPECT_EQ(par.node_totals.tuples_shed, seq.node_totals.tuples_shed);
  EXPECT_EQ(par.crashed_store.taken, seq.crashed_store.taken);
  EXPECT_EQ(par.crashed_store.bytes_written, seq.crashed_store.bytes_written);
}

// Run-to-run bit-identity on the sharded engine with a checkpoint-restoring
// crash: the restore path must not introduce any iteration-order or timing
// nondeterminism.
TEST(CheckpointDeterminismTest, ShardedCrashRestoreIsRunToRunDeterministic) {
  auto run = [] {
    FspsOptions opts;
    opts.seed = 77;
    opts.shards = 2;
    opts.default_link_latency = Millis(50);
    opts.crash_state = CrashStateMode::kCheckpoint;
    opts.checkpoint.enabled = true;
    opts.checkpoint.cadence = Millis(250);
    Fsps fsps(opts);
    std::vector<NodeId> nodes;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(*fsps.AddNode(opts.node, i / 2));  // 0,1 | 2,3
    }
    WorkloadFactory factory(9);
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    co.window = Seconds(4);
    BuiltQuery built = factory.MakeCov(1, co);
    std::map<FragmentId, NodeId> placement = {{0, nodes[2]}, {1, nodes[3]}};
    EXPECT_TRUE(fsps.Deploy(std::move(built.graph), placement).ok());
    EXPECT_TRUE(fsps.AttachSources(1, built.sources).ok());
    fsps.RunFor(Millis(3370));
    EXPECT_TRUE(fsps.CrashNode(nodes[3]).ok());
    fsps.RunFor(Seconds(8));
    return std::make_pair(fsps.AllQuerySics(),
                          fsps.node(nodes[3])->checkpoint_store()->stats());
  };
  auto [sics_a, stats_a] = run();
  auto [sics_b, stats_b] = run();
  ASSERT_GT(stats_a.restores, 0u);
  ASSERT_EQ(sics_a.size(), sics_b.size());
  for (size_t i = 0; i < sics_a.size(); ++i) {
    EXPECT_EQ(sics_a[i], sics_b[i]) << "query index " << i;
  }
  EXPECT_EQ(stats_a.taken, stats_b.taken);
  EXPECT_EQ(stats_a.bytes_written, stats_b.bytes_written);
}

// Capture wiring: with checkpoints enabled every node sweeps its hosted
// operators on the cadence grid; exact mode (error_bound 0) re-captures any
// dirty operator, approximate mode skips clean ones.
TEST(CheckpointCaptureTest, NodesCaptureOnTheCadenceGrid) {
  FspsOptions opts;
  opts.seed = 11;
  opts.checkpoint.enabled = true;
  opts.checkpoint.cadence = Millis(500);
  Fsps fsps(opts);
  NodeId n = fsps.AddNode();
  WorkloadFactory factory(11);
  BuiltQuery built = factory.MakeAvg(1);
  ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, n}}).ok());
  ASSERT_TRUE(fsps.AttachSources(1, built.sources).ok());
  fsps.RunFor(Seconds(5));

  CheckpointStore* store = fsps.node(n)->checkpoint_store();
  // ~10 sweeps over 3 stateful-seam operators: many images, all resident.
  EXPECT_GT(store->stats().taken, 3u);
  EXPECT_GT(store->size(), 0u);
  EXPECT_GT(store->resident_bytes(), 0u);
  EXPECT_EQ(store->stats().restores, 0u);
}

// Satellite 2, part 1: Undeploy hands the retired graph's window panes and
// batch buffers back to the hosting node's BatchPool instead of stranding
// them in the retired graph until federation teardown.
TEST(RetirementTest, UndeployReturnsWindowPanesToThePool) {
  FspsOptions opts;
  opts.seed = 11;
  opts.checkpoint.enabled = true;  // also exercises store hygiene below
  Fsps fsps(opts);
  NodeId n = fsps.AddNode();
  WorkloadFactory factory(11);
  AggregateQueryOptions ao;
  ao.window = Seconds(4);
  BuiltQuery built = factory.MakeAvg(1, ao);
  ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, n}}).ok());
  ASSERT_TRUE(fsps.AttachSources(1, built.sources).ok());
  // Stop mid-pane: the 4 s window is open with ~2 s of buffered tuples.
  fsps.RunFor(Millis(2130));

  ASSERT_GT(fsps.node(n)->checkpoint_store()->size(), 0u);
  uint64_t released_before = fsps.node(n)->batch_pool()->stats().row_released;
  ASSERT_TRUE(fsps.Undeploy(1).ok());
  // The open pane's tuple buffer came back to the free list...
  EXPECT_GT(fsps.node(n)->batch_pool()->stats().row_released,
            released_before);
  // ...and the query's images left every store.
  EXPECT_EQ(fsps.node(n)->checkpoint_store()->size(), 0u);

  // The drained federation keeps running cleanly (ASan covers leaks).
  fsps.RunFor(Seconds(2));
  EXPECT_TRUE(fsps.query_ids().empty());
}

// Satellite 2, part 2: repeated deploy / run / undeploy cycles reuse pooled
// buffers instead of allocating fresh ones each round. Retired graphs and
// coordinators accumulate by design (in-flight events may still point at
// them), so the assertion is on per-cycle allocation *flatness*, not on
// live bytes.
TEST(RetirementTest, DeployCyclesDoNotAccumulateAllocationChurn) {
  ForceLinkAllocCounter();
  ASSERT_TRUE(AllocCounter::active());

  FspsOptions opts;
  opts.seed = 11;
  Fsps fsps(opts);
  NodeId n = fsps.AddNode();
  WorkloadFactory factory(11);

  std::vector<uint64_t> cycle_allocs;
  for (QueryId q = 1; q <= 6; ++q) {
    uint64_t before = AllocCounter::allocations();
    BuiltQuery built = factory.MakeAvg(q);
    ASSERT_TRUE(fsps.Deploy(std::move(built.graph), {{0, n}}).ok());
    ASSERT_TRUE(fsps.AttachSources(q, built.sources).ok());
    fsps.RunFor(Seconds(3));
    ASSERT_TRUE(fsps.Undeploy(q).ok());
    cycle_allocs.push_back(AllocCounter::allocations() - before);
  }
  // Cycle 1 warms the pools; later cycles must not out-allocate the warm
  // second cycle by more than slack (1.25x absorbs map-node jitter).
  ASSERT_GT(cycle_allocs[1], 0u);
  for (size_t i = 2; i < cycle_allocs.size(); ++i) {
    EXPECT_LT(static_cast<double>(cycle_allocs[i]),
              1.25 * static_cast<double>(cycle_allocs[1]))
        << "cycle " << i << " allocated " << cycle_allocs[i] << " vs warm "
        << cycle_allocs[1];
  }
  // And the pool genuinely recycled retired panes.
  EXPECT_GT(fsps.node(n)->batch_pool()->stats().row_released, 0u);
  EXPECT_GT(fsps.node(n)->batch_pool()->hits(), 0u);
}

}  // namespace
}  // namespace themis
