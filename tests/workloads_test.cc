// Tests for the Table 1 workload factory: query shapes, operator counts,
// source counts, fragment layouts and value distributions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workload/distributions.h"
#include "workload/planetlab.h"
#include "workload/workloads.h"

namespace themis {
namespace {

TEST(WorkloadFactoryTest, AggregateQueriesAreSingleFragment) {
  WorkloadFactory f(1);
  std::vector<BuiltQuery> queries;
  queries.push_back(f.MakeAvg(1));
  queries.push_back(f.MakeMax(2));
  queries.push_back(f.MakeCount(3));
  for (auto& built : queries) {
    ASSERT_NE(built.graph, nullptr);
    EXPECT_EQ(built.graph->num_fragments(), 1u);
    EXPECT_EQ(built.graph->num_sources(), 1u);
    EXPECT_EQ(built.graph->num_operators(), 3u);  // recv -> agg -> out
    EXPECT_EQ(built.sources.size(), 1u);
  }
}

TEST(WorkloadFactoryTest, SourceIdsAreGloballyUnique) {
  WorkloadFactory f(1);
  auto a = f.MakeAvg(1);
  auto b = f.MakeTop5(2, {});
  auto c = f.MakeCov(3, {});
  std::set<SourceId> all;
  for (const auto* built : {&a, &b, &c}) {
    for (const auto& [src, model] : built->sources) {
      EXPECT_TRUE(all.insert(src).second) << "duplicate source id " << src;
    }
  }
}

TEST(WorkloadFactoryTest, AvgAllFragmentLayout) {
  WorkloadFactory f(1);
  ComplexQueryOptions opts;
  opts.fragments = 3;
  opts.sources_per_fragment = 10;
  auto built = f.MakeAvgAll(7, opts);
  EXPECT_EQ(built.graph->num_fragments(), 3u);
  EXPECT_EQ(built.graph->num_sources(), 30u);
  // Non-root fragments carry 13 operators (10 receivers + union + avg +
  // forward), matching Table 1; the root adds final-avg and output.
  EXPECT_EQ(built.graph->fragment_ops(1).size(), 13u);
  EXPECT_EQ(built.graph->fragment_ops(2).size(), 13u);
  EXPECT_EQ(built.graph->fragment_ops(0).size(), 15u);
  EXPECT_EQ(built.graph->root_fragment(), 0);
}

TEST(WorkloadFactoryTest, Top5FragmentLayout) {
  WorkloadFactory f(1);
  ComplexQueryOptions opts;
  opts.fragments = 2;
  opts.sources_per_fragment = 20;  // 10 CPU/memory pairs
  auto built = f.MakeTop5(8, opts);
  EXPECT_EQ(built.graph->num_fragments(), 2u);
  EXPECT_EQ(built.graph->num_sources(), 40u);
  // 20 receivers + 2 merges + filter + 2 group-by-avgs + join + top-k = 27
  // per fragment (the paper's 29 counts window operators separately; ours
  // embed windows in each operator). The last fragment adds the output op.
  EXPECT_EQ(built.graph->fragment_ops(0).size(), 27u);
  EXPECT_EQ(built.graph->fragment_ops(1).size(), 28u);
  EXPECT_EQ(built.graph->root_fragment(), 1);
}

TEST(WorkloadFactoryTest, CovFragmentLayout) {
  WorkloadFactory f(1);
  ComplexQueryOptions opts;
  opts.fragments = 4;
  auto built = f.MakeCov(9, opts);
  EXPECT_EQ(built.graph->num_fragments(), 4u);
  EXPECT_EQ(built.graph->num_sources(), 8u);  // 2 per fragment
  // 2 receivers + cov + merge + forward = 5 operators (Table 1).
  EXPECT_EQ(built.graph->fragment_ops(0).size(), 5u);
  EXPECT_EQ(built.graph->fragment_ops(3).size(), 6u);  // + output
  EXPECT_EQ(built.graph->root_fragment(), 3);
}

TEST(WorkloadFactoryTest, ChainQueriesLinkConsecutiveFragments) {
  WorkloadFactory f(1);
  ComplexQueryOptions opts;
  opts.fragments = 3;
  auto built = f.MakeCov(10, opts);
  // There must be a cross-fragment edge from fragment i to fragment i+1.
  int cross_edges = 0;
  for (size_t op = 0; op < built.graph->num_operators(); ++op) {
    for (const Edge& e : built.graph->out_edges(static_cast<OperatorId>(op))) {
      FragmentId from = built.graph->fragment_of(e.from);
      FragmentId to = built.graph->fragment_of(e.to);
      if (from != to) {
        EXPECT_EQ(to, from + 1);
        ++cross_edges;
      }
    }
  }
  EXPECT_EQ(cross_edges, 2);
}

TEST(WorkloadFactoryTest, BurstinessPropagatesToSourceModels) {
  WorkloadFactory f(1);
  ComplexQueryOptions opts;
  opts.burst_prob = 0.1;
  opts.burst_multiplier = 10.0;
  auto built = f.MakeCov(11, opts);
  for (const auto& [src, model] : built.sources) {
    EXPECT_DOUBLE_EQ(model.burst_prob, 0.1);
    EXPECT_DOUBLE_EQ(model.burst_multiplier, 10.0);
  }
}

TEST(WorkloadFactoryTest, RandomComplexIsDeterministicPerSeed) {
  WorkloadFactory f1(5), f2(5);
  ComplexQueryOptions opts;
  for (int i = 0; i < 10; ++i) {
    auto a = f1.MakeRandomComplex(i, opts);
    auto b = f2.MakeRandomComplex(i, opts);
    EXPECT_EQ(a.graph->label(), b.graph->label());
  }
}

TEST(DistributionsTest, MeansRoughlyFifty) {
  for (Dataset d : {Dataset::kGaussian, Dataset::kUniform,
                    Dataset::kExponential, Dataset::kMixed}) {
    auto gen = ValueGenerator::Make(d, Rng(3), 50.0);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += gen->Next(Millis(i));
    EXPECT_NEAR(sum / n, 50.0, 3.0) << DatasetName(d);
  }
}

TEST(DistributionsTest, NamesMatchFigureLegends) {
  EXPECT_EQ(DatasetName(Dataset::kGaussian), "gaussian");
  EXPECT_EQ(DatasetName(Dataset::kPlanetLab), "planetlab");
}

TEST(PlanetLabTraceTest, StaysInRangeAndAutocorrelated) {
  PlanetLabTrace trace(Rng(9));
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(trace.Next(Millis(100) * i));
  double lag1 = 0, var = 0, mean = 0;
  for (double x : xs) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 100.0);
    mean += x;
  }
  mean /= xs.size();
  for (size_t i = 1; i < xs.size(); ++i) {
    lag1 += (xs[i] - mean) * (xs[i - 1] - mean);
    var += (xs[i] - mean) * (xs[i] - mean);
  }
  // AR(1) with phi=0.95 should show strong positive lag-1 autocorrelation,
  // unlike the i.i.d. synthetic datasets.
  EXPECT_GT(lag1 / var, 0.5);
}

TEST(ComplexKindNameTest, AllNamed) {
  EXPECT_EQ(ComplexKindName(ComplexKind::kAvgAll), "AVG-all");
  EXPECT_EQ(ComplexKindName(ComplexKind::kTop5), "TOP-5");
  EXPECT_EQ(ComplexKindName(ComplexKind::kCov), "COV");
}

}  // namespace
}  // namespace themis
