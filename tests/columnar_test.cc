// Columnar data-plane tests: the SoA ColumnarBlock must hold exactly the
// same logical content as a row tuple vector (bit-for-bit on every double),
// the vectorized kernels must reproduce the row loops' arithmetic, the
// columnar fast paths in AggregateOp/FilterOp must emit byte-identical
// results — including mid-stream switches from row buffering — and the
// whole stack must stay allocation-free in steady state via BatchPool
// block recycling. The end-to-end pin: the federation-scale scenario run
// with FspsOptions::columnar on equals the row run in every simulated
// quantity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "common/alloc_counter.h"
#include "federation/scale_federation.h"
#include "runtime/batch_pool.h"
#include "runtime/columnar.h"
#include "runtime/columnar_kernels.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/filter_map.h"
#include "runtime/string_pool.h"

namespace themis {
namespace {

bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

Tuple MakeTuple(SimTime ts, double sic, ValueList values) {
  Tuple t;
  t.timestamp = ts;
  t.sic = sic;
  t.values = std::move(values);
  return t;
}

// Deterministic but irregular doubles (no "nice" fractions) so bitwise
// comparisons have teeth.
double Wobble(int i) { return std::sin(i * 0.7315) * 1e3 + i * 0.001; }

TEST(ColumnarBlock, RoundTripsMixedPayloadsExactly) {
  std::vector<Tuple> rows;
  for (int i = 0; i < 137; ++i) {
    ValueList vals;
    vals.push_back(Value(static_cast<int64_t>(i * 3)));
    vals.push_back(Value(Wobble(i)));
    rows.push_back(MakeTuple(i * 10, Wobble(i + 1000), std::move(vals)));
  }
  ColumnarBlock block;
  for (const Tuple& t : rows) ASSERT_TRUE(block.AppendTuple(t));
  ASSERT_EQ(block.rows(), rows.size());
  ASSERT_EQ(block.width(), 2u);

  std::vector<Tuple> back;
  block.MaterializeInto(&back);
  ASSERT_EQ(back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(back[i].timestamp, rows[i].timestamp);
    EXPECT_TRUE(SameBits(back[i].sic, rows[i].sic));
    ASSERT_EQ(back[i].values.size(), rows[i].values.size());
    for (size_t c = 0; c < rows[i].values.size(); ++c) {
      EXPECT_EQ(back[i].values[c], rows[i].values[c]);
    }
  }
}

// Regression: a lazily-activated column must back-fill only the rows that
// existed BEFORE the append that created it. The first payload row on a
// fresh block previously read a spurious zero (the row spine grew before
// Activate counted existing rows), shifting every value by one row.
TEST(ColumnarBlock, FirstPayloadRowIsNotShifted) {
  ColumnarBlock block;
  ValueList vals;
  vals.push_back(Value(static_cast<int64_t>(7)));
  vals.push_back(Value(123.25));
  ASSERT_TRUE(block.AppendTuple(MakeTuple(5, 0.0, std::move(vals))));
  ASSERT_EQ(block.rows(), 1u);
  Tuple t;
  block.MaterializeRow(0, &t);
  ASSERT_EQ(t.values.size(), 2u);
  EXPECT_EQ(AsInt(t.values[0]), 7);
  EXPECT_TRUE(SameBits(AsDouble(t.values[1]), 123.25));
}

TEST(ColumnarBlock, ValidityBitmapsEncodeVariableWidths) {
  ColumnarBlock block;
  // Width grows 1 -> 3 -> back to 1: later columns must read as missing on
  // narrow rows, and rows appended before a column existed must read as
  // missing too (prefix-dense payloads).
  ValueList narrow;
  narrow.push_back(Value(1.5));
  ASSERT_TRUE(block.AppendTuple(MakeTuple(0, 0.0, narrow)));
  ValueList wide;
  wide.push_back(Value(2.5));
  wide.push_back(Value(static_cast<int64_t>(9)));
  wide.push_back(Value(3.5));
  ASSERT_TRUE(block.AppendTuple(MakeTuple(1, 0.0, std::move(wide))));
  ASSERT_TRUE(block.AppendTuple(MakeTuple(2, 0.0, narrow)));

  ASSERT_EQ(block.width(), 3u);
  EXPECT_TRUE(block.col(0).IsValid(0));
  EXPECT_FALSE(block.col(1).IsValid(0));
  EXPECT_TRUE(block.col(1).IsValid(1));
  EXPECT_FALSE(block.col(1).IsValid(2));
  EXPECT_FALSE(block.col(2).IsValid(2));

  std::vector<Tuple> back;
  block.MaterializeInto(&back);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].values.size(), 1u);
  EXPECT_EQ(back[1].values.size(), 3u);
  EXPECT_EQ(back[2].values.size(), 1u);
  EXPECT_EQ(AsInt(back[1].values[1]), 9);
}

TEST(ColumnarBlock, StringColumnsCarryDictionaryCodesVerbatim) {
  StringPool& pool = StringPool::Default();
  ColumnarBlock block;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5; ++i) {
    Value v(std::string("host-") + std::to_string(i % 3));
    ids.push_back(v.string_id());
    ValueList vals;
    vals.push_back(v);
    ASSERT_TRUE(block.AppendTuple(MakeTuple(i, 0.0, std::move(vals))));
  }
  // Stored as dictionary codes, not copies: repeated strings share an id.
  EXPECT_EQ(block.col(0).str[0], block.col(0).str[3]);
  std::vector<Tuple> back;
  block.MaterializeInto(&back);
  for (size_t i = 0; i < back.size(); ++i) {
    ASSERT_TRUE(back[i].values[0].is_string());
    EXPECT_EQ(back[i].values[0].string_id(), ids[i]);
    EXPECT_EQ(AsStringView(back[i].values[0], &pool),
              std::string("host-") + std::to_string(i % 3));
  }
}

TEST(ColumnarBlock, AppendTupleRefusesKindClashWithoutMutating) {
  ColumnarBlock block;
  ValueList d;
  d.push_back(Value(1.0));
  ASSERT_TRUE(block.AppendTuple(MakeTuple(0, 0.0, std::move(d))));
  ValueList i;
  i.push_back(Value(static_cast<int64_t>(2)));
  EXPECT_FALSE(block.AppendTuple(MakeTuple(1, 0.0, std::move(i))));
  EXPECT_EQ(block.rows(), 1u);  // failed append left the block intact
}

TEST(ColumnarKernels, StampSicsMatchesRowLoopBitForBit) {
  const double sic = 0.123456789123;
  std::vector<Tuple> rows(1000);
  ColumnarBlock block;
  for (int i = 0; i < 1000; ++i) {
    rows[i].sic = 0.0;
    block.AppendRow(i, 0.0, Wobble(i));
  }
  double row_sum = 0.0;
  for (Tuple& t : rows) {
    t.sic = sic;
    row_sum += sic;
  }
  double col_sum =
      columnar::StampSics(block.sics().data(), block.sics().size(), sic);
  EXPECT_TRUE(SameBits(row_sum, col_sum));
  for (double s : block.sics()) EXPECT_TRUE(SameBits(s, sic));
}

TEST(ColumnarKernels, SelectWhereMatchesScalarPredicate) {
  ColumnarBlock block;
  for (int i = 0; i < 257; ++i) block.AppendRow(i, 0.0, Wobble(i));
  SelectionVector sel;
  const double threshold = 100.0;
  columnar::SelectWhere(block.col(0).f64.data(), block.rows(),
                        [&](double v) { return v >= threshold; }, &sel);
  std::vector<uint32_t> expect;
  for (uint32_t i = 0; i < block.rows(); ++i) {
    if (block.col(0).f64[i] >= threshold) expect.push_back(i);
  }
  EXPECT_EQ(sel, expect);
  // GatherInto keeps exactly the selected rows, like InputBuffer's
  // RetainIndices keeps batches: ascending, no re-ordering.
  ColumnarBlock picked;
  block.GatherInto(sel, &picked);
  ASSERT_EQ(picked.rows(), sel.size());
  for (size_t i = 0; i < sel.size(); ++i) {
    EXPECT_TRUE(SameBits(picked.col(0).f64[i], block.col(0).f64[sel[i]]));
    EXPECT_EQ(picked.timestamps()[i], block.timestamps()[sel[i]]);
  }
}

// Drives a row-mode twin and a columnar-mode twin of the same operator and
// requires byte-identical emissions at every watermark.
template <typename MakeOp>
void ExpectOperatorParity(MakeOp make_op, int phases) {
  auto row_op = make_op();
  auto col_op = make_op();
  std::vector<Tuple> row_out, col_out;
  int next_val = 0;
  for (int phase = 0; phase < phases; ++phase) {
    // One batch per phase; odd phases also exercise mixed row ingest on the
    // columnar twin (mid-stream sources can demote to rows at any time).
    ColumnarBlock block;
    std::vector<Tuple> rows;
    for (int i = 0; i < 40; ++i, ++next_val) {
      SimTime ts = phase * 700 + i * 20;
      double v = Wobble(next_val);
      double sic = 0.01 * (next_val % 7);
      block.AppendRow(ts, sic, v);
      ValueList vals;
      vals.push_back(Value(v));
      rows.push_back(MakeTuple(ts, sic, std::move(vals)));
    }
    if (phase % 2 == 0) {
      col_op->IngestColumnar(block, 0);
    } else {
      col_op->Ingest(rows, 0);
    }
    row_op->Ingest(rows, 0);
    SimTime wm = (phase + 1) * 700;
    row_op->Advance(wm, &row_out);
    col_op->Advance(wm, &col_out);
    ASSERT_EQ(row_out.size(), col_out.size()) << "phase " << phase;
    for (size_t i = 0; i < row_out.size(); ++i) {
      EXPECT_EQ(row_out[i].timestamp, col_out[i].timestamp);
      EXPECT_TRUE(SameBits(row_out[i].sic, col_out[i].sic));
      ASSERT_EQ(row_out[i].values.size(), col_out[i].values.size());
      for (size_t c = 0; c < row_out[i].values.size(); ++c) {
        EXPECT_TRUE(SameBits(AsDouble(row_out[i].values[c]),
                             AsDouble(col_out[i].values[c])));
      }
    }
    row_out.clear();
    col_out.clear();
  }
}

TEST(ColumnarOperators, AggregateFastPathMatchesRowPath) {
  for (AggregateKind kind :
       {AggregateKind::kAvg, AggregateKind::kSum, AggregateKind::kCount,
        AggregateKind::kMax, AggregateKind::kMin}) {
    ExpectOperatorParity(
        [kind] {
          return std::make_unique<AggregateOp>(
              kind, 0, WindowSpec::TumblingTime(500));
        },
        6);
  }
}

TEST(ColumnarOperators, AggregateModeSwitchMidStreamMatchesRowPath) {
  // Row batches first (buffered in the WindowBuffer), then columnar blocks:
  // the switch must migrate open panes without changing a single bit.
  auto row_op = std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                              WindowSpec::TumblingTime(500));
  auto col_op = std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                              WindowSpec::TumblingTime(500));
  std::vector<Tuple> rows;
  ColumnarBlock block;
  for (int i = 0; i < 60; ++i) {
    SimTime ts = i * 15;  // spans several 500-tick panes, last ones open
    ValueList vals;
    vals.push_back(Value(Wobble(i)));
    rows.push_back(MakeTuple(ts, 0.02, std::move(vals)));
  }
  row_op->Ingest(rows, 0);
  col_op->Ingest(rows, 0);  // both in row mode, panes open past wm=600
  std::vector<Tuple> row_out, col_out;
  row_op->Advance(600, &row_out);
  col_op->Advance(600, &col_out);
  ASSERT_EQ(row_out.size(), col_out.size());

  for (int i = 0; i < 60; ++i) {
    block.AppendRow(900 + i * 15, 0.03, Wobble(1000 + i));
  }
  ASSERT_TRUE(col_op->AcceptsColumnar(0));
  col_op->IngestColumnar(block, 0);  // triggers the mode switch
  block.MaterializeInto(&rows);
  std::vector<Tuple> tail(rows.begin() + 60, rows.end());
  row_op->Ingest(tail, 0);
  row_op->Advance(4000, &row_out);
  col_op->Advance(4000, &col_out);
  ASSERT_EQ(row_out.size(), col_out.size());
  for (size_t i = 0; i < row_out.size(); ++i) {
    EXPECT_EQ(row_out[i].timestamp, col_out[i].timestamp);
    EXPECT_TRUE(SameBits(row_out[i].sic, col_out[i].sic));
    EXPECT_TRUE(SameBits(AsDouble(row_out[i].values[0]),
                         AsDouble(col_out[i].values[0])));
  }
}

TEST(ColumnarOperators, FilterFastPathMatchesRowPath) {
  FieldPredicate pred;
  pred.field = 0;
  pred.cmp = FieldPredicate::Cmp::kGe;
  pred.threshold = 0.0;
  ExpectOperatorParity(
      [&pred] {
        return std::make_unique<FilterOp>(pred,
                                          WindowSpec::TumblingTime(500));
      },
      6);
}

TEST(ColumnarPool, BlocksRecycleThroughBatchPool) {
  BatchPool pool;
  Batch a = pool.AcquireColumnar();
  ASSERT_NE(a.columnar, nullptr);
  ColumnarBlock* raw = a.columnar.get();
  for (int i = 0; i < 100; ++i) a.columnar->AppendRow(i, 0.0, 1.0);
  pool.Release(std::move(a));
  Batch b = pool.AcquireColumnar();
  EXPECT_EQ(b.columnar.get(), raw);  // same block, recycled
  EXPECT_EQ(b.columnar->rows(), 0u);  // cleared...
  b.columnar->AppendRow(0, 0.0, 2.0);
  EXPECT_GE(b.columnar->col(0).f64.capacity(), 100u);  // ...capacity kept
  pool.Release(std::move(b));
  BatchPool::Stats s = pool.stats();
  EXPECT_EQ(s.columnar_hits, 1u);
  EXPECT_EQ(s.columnar_misses, 1u);
  EXPECT_EQ(s.columnar_released, 2u);
  EXPECT_EQ(s.columnar_pooled, 1u);
}

TEST(ColumnarPool, SteadyStateAppendIsAllocationFree) {
  ForceLinkAllocCounter();
  BatchPool pool;
  const size_t kRows = 512;
  // Warm: one acquire/fill/release cycle sizes every array.
  {
    Batch b = pool.AcquireColumnar();
    b.columnar->ReserveRows(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      b.columnar->AppendRow(static_cast<SimTime>(i), 0.0, Wobble(i));
    }
    pool.Release(std::move(b));
  }
  const uint64_t before = AllocCounter::allocations();
  uint64_t tuples = 0;
  for (int iter = 0; iter < 50; ++iter) {
    Batch b = pool.AcquireColumnar();
    b.columnar->ReserveRows(kRows);
    for (size_t i = 0; i < kRows; ++i, ++tuples) {
      b.columnar->AppendRow(static_cast<SimTime>(i), 0.0, Wobble(i));
    }
    pool.Release(std::move(b));
  }
  const uint64_t allocs = AllocCounter::allocations() - before;
  if (AllocCounter::active()) {
    EXPECT_LT(static_cast<double>(allocs) / static_cast<double>(tuples), 0.2)
        << allocs << " allocations for " << tuples << " tuples";
  }
}

// End-to-end pin: the federation-scale scenario must produce identical
// simulated results with the columnar data plane on and off — same
// processed/shed counts, same messages and events, same SIC vector bits.
TEST(ColumnarScaleParity, ScaleScenarioMatchesRowRunExactly) {
  ScaleScenarioOptions o;
  o.nodes = 16;
  o.clusters = 4;
  o.queries = 12;
  o.arrival_wave = 4;
  o.arrival_interval = Seconds(1);
  o.sources_per_fragment = 2;
  o.source_rate = 40.0;
  o.seed = 11;
  ScaleScenario scenario = MakeScaleScenario(o);
  ScaleRunResult results[2];
  for (int columnar = 0; columnar < 2; ++columnar) {
    FspsOptions fo;
    fo.columnar = columnar != 0;
    auto fsps = MakeScaleFederation(scenario, fo);
    results[columnar] = RunScaleScenario(fsps.get(), scenario, Seconds(5));
  }
  EXPECT_EQ(results[0].tuples_received, results[1].tuples_received);
  EXPECT_EQ(results[0].tuples_processed, results[1].tuples_processed);
  EXPECT_EQ(results[0].tuples_shed, results[1].tuples_shed);
  EXPECT_EQ(results[0].messages, results[1].messages);
  EXPECT_EQ(results[0].bytes, results[1].bytes);
  EXPECT_EQ(results[0].events, results[1].events);
  EXPECT_EQ(results[0].final_sics, results[1].final_sics);
  EXPECT_EQ(results[0].mean_sic, results[1].mean_sic);
  EXPECT_EQ(results[0].jain, results[1].jain);
}

}  // namespace
}  // namespace themis
