// Elastic-federation tests: shard re-balancing mid-churn (entity migration
// with traffic in flight), the TopologyPlan control plane's validate-then-
// commit contract, mid-run AddNode on a started sharded engine, the
// autoscaler loop, and the determinism contract across re-balances —
// sequential == parsim@1 byte-for-byte, and bit-identical run-to-run at
// every shard count. The ASan/TSan jobs cover this file: migration moves
// live timer chains, inbox rings and pooled batches between shards.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "federation/elastic_federation.h"
#include "federation/fsps.h"
#include "workload/workloads.h"

namespace themis {
namespace {

// --- control-plane fixture ----------------------------------------------
//
// Three nodes on two shards (0,1 | 2) over 50 ms links: crashing node 2
// empties shard 1 of live nodes, the canonical starvation shape.
class ElasticShardTest : public ::testing::Test {
 protected:
  ElasticShardTest() : factory_(9) {
    FspsOptions opts;
    opts.seed = 77;
    opts.shards = 2;
    opts.elastic = true;
    opts.default_link_latency = Millis(50);
    opts.source_link_latency = Millis(50);
    options_ = opts;
    fsps_ = std::make_unique<Fsps>(opts);
    nodes_.push_back(fsps_->AddNode());                  // shard 0
    nodes_.push_back(fsps_->AddNode());                  // shard 0
    nodes_.push_back(*fsps_->AddNode(opts.node, 1));     // shard 1
  }

  // Two-fragment COV query on shard-0 nodes (survives a shard-1 crash).
  Status DeployCov(QueryId q) {
    ComplexQueryOptions co;
    co.fragments = 2;
    co.source_rate = 50;
    BuiltQuery built = factory_.MakeCov(q, co);
    std::map<FragmentId, NodeId> placement = {{0, nodes_[0]}, {1, nodes_[1]}};
    THEMIS_RETURN_NOT_OK(fsps_->Deploy(std::move(built.graph), placement));
    return fsps_->AttachSources(q, built.sources);
  }

  WorkloadFactory factory_;
  FspsOptions options_;
  std::unique_ptr<Fsps> fsps_;
  std::vector<NodeId> nodes_;
};

TEST_F(ElasticShardTest, PlanValidatesAsAWholeAndCommitsNothingOnError) {
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(1));
  // Crash is staged before the invalid op, but the plan validates as a
  // whole: nothing commits, node 2 stays alive.
  Status s = fsps_->PlanTopology()
                 .Crash(nodes_[2])
                 .SetLinkLatency(nodes_[0], nodes_[0], Millis(5))
                 .Apply();
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_TRUE(fsps_->node_alive(nodes_[2]));
  EXPECT_EQ(fsps_->churn_stats().crashes, 0u);
}

TEST_F(ElasticShardTest, PlanValidatesAgainstStagedStateNotCurrentState) {
  // Crash + restore of the same node in one plan: the restore is valid
  // only against the staged (post-crash) liveness, and both commit.
  ASSERT_TRUE(
      fsps_->PlanTopology().Crash(nodes_[2]).Restore(nodes_[2]).Apply().ok());
  EXPECT_TRUE(fsps_->node_alive(nodes_[2]));
  EXPECT_EQ(fsps_->churn_stats().crashes, 1u);
  EXPECT_EQ(fsps_->churn_stats().restores, 1u);
  // A double crash inside one plan is caught up front.
  Status s = fsps_->PlanTopology().Crash(nodes_[2]).Crash(nodes_[2]).Apply();
  EXPECT_TRUE(s.IsFailedPrecondition());
  EXPECT_TRUE(fsps_->node_alive(nodes_[2]));
}

TEST_F(ElasticShardTest, PlanRejectsDoubleApply) {
  TopologyPlan plan = fsps_->PlanTopology();
  plan.SetLinkLatency(nodes_[0], nodes_[1], Millis(20));
  ASSERT_TRUE(plan.Apply().ok());
  EXPECT_TRUE(plan.Apply().IsFailedPrecondition());
}

TEST_F(ElasticShardTest, PlannedAddNodeIdIsUsableWithinTheSamePlan) {
  fsps_->RunFor(Seconds(1));
  TopologyPlan plan = fsps_->PlanTopology();
  NodeId id = plan.AddNode(options_.node, 1);
  EXPECT_EQ(id, static_cast<NodeId>(nodes_.size()));
  plan.SetLinkLatency(id, nodes_[2], Millis(5));
  ASSERT_TRUE(plan.Apply().ok());
  EXPECT_TRUE(fsps_->node_alive(id));
  EXPECT_EQ(fsps_->shard_of(id), 1);
  EXPECT_EQ(fsps_->churn_stats().nodes_added, 1u);
  // The queued link edit lands at the next boundary, like any other edit.
  fsps_->RunFor(Seconds(1));
  EXPECT_EQ(fsps_->network()->Latency(id, nodes_[2]), Millis(5));
}

TEST_F(ElasticShardTest, RebalanceValidatesGroupsAndEpochWidth) {
  // Before Start() there is nothing to re-balance.
  EXPECT_TRUE(fsps_->PlanTopology().Rebalance().Apply().IsFailedPrecondition());
  ASSERT_TRUE(DeployCov(1).ok());
  fsps_->RunFor(Seconds(2));
  // Wrong group-map size.
  EXPECT_TRUE(fsps_->PlanTopology()
                  .Rebalance({0, 1})
                  .Apply()
                  .IsInvalidArgument());
  // A single group would leave no cross-shard links (lookahead undefined).
  EXPECT_TRUE(fsps_->PlanTopology()
                  .Rebalance({0, 0, 0})
                  .Apply()
                  .IsInvalidArgument());
}

TEST_F(ElasticShardTest, StarvedShardRebalancesBackToBothShards) {
  ASSERT_TRUE(DeployCov(1).ok());
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Millis(5130));  // mid-interval: traffic strictly in flight

  // Crash the only shard-1 node: every live entity now sits on shard 0 and
  // the parallel engine runs effectively single-shard.
  ASSERT_TRUE(fsps_->PlanTopology().Crash(nodes_[2]).Apply().ok());
  uint64_t results_before = fsps_->coordinator(1)->result_tuples() +
                            fsps_->coordinator(2)->result_tuples();

  // Re-balance with per-node groups: the two live (loaded) nodes must land
  // on different shards — parallelism restored, dead node wherever.
  ASSERT_TRUE(fsps_->PlanTopology().Rebalance().Apply().ok());
  EXPECT_EQ(fsps_->churn_stats().rebalances, 1u);
  EXPECT_GE(fsps_->churn_stats().migrated_nodes, 1u);
  EXPECT_NE(fsps_->shard_of(nodes_[0]), fsps_->shard_of(nodes_[1]));

  // The migrated node keeps producing: queries survive with phase intact,
  // in-flight deliveries re-forward to the new shard, nothing is lost.
  fsps_->RunFor(Seconds(10));
  EXPECT_GT(fsps_->coordinator(1)->result_tuples() +
                fsps_->coordinator(2)->result_tuples(),
            results_before);
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
  EXPECT_GT(fsps_->QuerySic(2), 0.0);
}

TEST_F(ElasticShardTest, MidChurnRebalancePreservesConservationAndLiveness) {
  ASSERT_TRUE(DeployCov(1).ok());
  ASSERT_TRUE(DeployCov(2).ok());
  fsps_->RunFor(Millis(5130));

  // Crash + re-balance in one plan, with deliveries in flight.
  ASSERT_TRUE(fsps_->PlanTopology().Crash(nodes_[2]).Rebalance().Apply().ok());
  fsps_->RunFor(Seconds(5));
  // Restore + re-balance again: the revived node re-enters the map.
  ASSERT_TRUE(
      fsps_->PlanTopology().Restore(nodes_[2]).Rebalance().Apply().ok());
  fsps_->RunFor(Seconds(10));

  EXPECT_EQ(fsps_->churn_stats().rebalances, 2u);
  EXPECT_EQ(fsps_->live_node_ids().size(), 3u);
  // Conservation: every tuple a node accepted was either processed or
  // shed; the remainder is still buffered, never silently lost.
  NodeStats stats = fsps_->TotalNodeStats();
  EXPECT_GE(stats.tuples_received,
            stats.tuples_processed + stats.tuples_shed);
  EXPECT_GT(stats.tuples_processed, 0u);
  EXPECT_GT(fsps_->QuerySic(1), 0.0);
  EXPECT_GT(fsps_->QuerySic(2), 0.0);
}

TEST_F(ElasticShardTest, RebalanceRequiresElasticOnShardedEngine) {
  FspsOptions opts = options_;
  opts.elastic = false;
  Fsps rigid(opts);
  rigid.AddNode();
  rigid.AddNode(opts.node, 1);
  rigid.RunFor(Seconds(1));
  EXPECT_TRUE(rigid.PlanTopology().Rebalance().Apply().IsFailedPrecondition());
}

// --- scenario-level determinism -----------------------------------------

ElasticScenarioOptions SmallElasticOptions() {
  ElasticScenarioOptions eo;
  eo.churn.scale.nodes = 16;
  eo.churn.scale.clusters = 8;
  eo.churn.scale.queries = 12;
  eo.churn.scale.arrival_wave = 4;
  eo.churn.churn_horizon = Seconds(20);
  eo.churn.crashes_per_wave = 1;
  eo.diurnal_period = Seconds(8);
  eo.autoscaler.max_added_nodes = 8;
  return eo;
}

// Serialises every deterministic field of an elastic run.
std::string Digest(const ElasticRunResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "recv=%llu proc=%llu shed=%llu msg=%llu ev=%llu crash=%llu rest=%llu "
      "lat=%llu repl=%llu dropq=%llu skip=%llu dead=%llu added=%llu "
      "rebal=%llu migr=%llu ticks=%llu grow=%llu shrink=%llu asadd=%llu "
      "asrest=%llu asdecom=%llu live=%d util=%.17g sic=%.17g jain=%.17g",
      static_cast<unsigned long long>(r.churn.scale.tuples_received),
      static_cast<unsigned long long>(r.churn.scale.tuples_processed),
      static_cast<unsigned long long>(r.churn.scale.tuples_shed),
      static_cast<unsigned long long>(r.churn.scale.messages),
      static_cast<unsigned long long>(r.churn.scale.events),
      static_cast<unsigned long long>(r.churn.crashes),
      static_cast<unsigned long long>(r.churn.restores),
      static_cast<unsigned long long>(r.churn.latency_updates),
      static_cast<unsigned long long>(r.churn.replaced_fragments),
      static_cast<unsigned long long>(r.churn.dropped_queries),
      static_cast<unsigned long long>(r.churn.skipped_arrivals),
      static_cast<unsigned long long>(r.churn.tuples_dropped_dead),
      static_cast<unsigned long long>(r.nodes_added),
      static_cast<unsigned long long>(r.rebalances),
      static_cast<unsigned long long>(r.migrated_nodes),
      static_cast<unsigned long long>(r.autoscaler.ticks),
      static_cast<unsigned long long>(r.autoscaler.grow_actions),
      static_cast<unsigned long long>(r.autoscaler.shrink_actions),
      static_cast<unsigned long long>(r.autoscaler.nodes_added),
      static_cast<unsigned long long>(r.autoscaler.nodes_restored),
      static_cast<unsigned long long>(r.autoscaler.nodes_decommissioned),
      r.final_live_nodes, r.final_utilization, r.churn.scale.mean_sic,
      r.churn.scale.jain);
  std::string out = buf;
  for (double sic : r.churn.scale.final_sics) {
    std::snprintf(buf, sizeof(buf), " %.17g", sic);
    out += buf;
  }
  return out;
}

ElasticRunResult RunOnce(const ElasticScenario& scenario, int shards,
                         bool force_parsim) {
  FspsOptions fo;
  fo.shards = shards;
  fo.force_parsim_engine = force_parsim;
  auto fsps = MakeElasticFederation(scenario, fo);
  return RunElasticScenario(fsps.get(), scenario, Seconds(5));
}

TEST(ElasticScenarioTest, SequentialMatchesParsimAtOneShardAcrossRebalance) {
  ElasticScenario scenario = MakeElasticScenario(SmallElasticOptions());
  ElasticRunResult seq = RunOnce(scenario, 1, false);
  ElasticRunResult par = RunOnce(scenario, 1, true);
  EXPECT_EQ(Digest(seq), Digest(par));
}

TEST(ElasticScenarioTest, RunToRunDigestIdentityAtEveryShardCount) {
  ElasticScenario scenario = MakeElasticScenario(SmallElasticOptions());
  for (int shards : {1, 4, 8}) {
    ElasticRunResult a = RunOnce(scenario, shards, false);
    ElasticRunResult b = RunOnce(scenario, shards, false);
    EXPECT_EQ(Digest(a), Digest(b)) << "shards=" << shards;
    if (shards > 1) {
      EXPECT_GT(a.rebalances, 0u) << "shards=" << shards;
      EXPECT_GT(a.migrated_nodes, 0u) << "shards=" << shards;
    }
  }
}

TEST(ElasticScenarioTest, AutoscalerTracksLoad) {
  // The small scenario is permanently overloaded (overload_factor 2), so
  // the loop must grow the federation; diurnal troughs and the burst gaps
  // pull utilization back down, so hysteresis must gate the actions.
  ElasticScenario scenario = MakeElasticScenario(SmallElasticOptions());
  ElasticRunResult r = RunOnce(scenario, 4, false);
  EXPECT_GT(r.autoscaler.ticks, 0u);
  EXPECT_GT(r.autoscaler.grow_actions, 0u);
  EXPECT_GT(r.nodes_added, 0u);
  EXPECT_GT(r.final_live_nodes, 16);
  EXPECT_LE(r.autoscaler.nodes_added, 8u);  // max_added_nodes cap
  EXPECT_GT(r.churn.scale.tuples_processed, 0u);
  EXPECT_GT(r.churn.scale.mean_sic, 0.0);
}

TEST(ElasticScenarioTest, ScenarioGenerationIsSeedDeterministic) {
  ElasticScenario a = MakeElasticScenario(SmallElasticOptions());
  ElasticScenario b = MakeElasticScenario(SmallElasticOptions());
  ASSERT_EQ(a.churn.events.size(), b.churn.events.size());
  ASSERT_EQ(a.churn.base.queries.size(), b.churn.base.queries.size());
  // Diurnal + burst knobs land on the scale options the sources are
  // generated from, and the topology schedule matches the plain one.
  EXPECT_GT(a.churn.base.options.diurnal_amplitude, 0.0);
  EXPECT_GT(a.churn.base.options.burst_prob, 0.0);
  ChurnScenario plain = MakeChurnScenario(SmallElasticOptions().churn);
  ASSERT_EQ(a.churn.events.size(), plain.events.size());
  for (size_t i = 0; i < plain.events.size(); ++i) {
    EXPECT_EQ(a.churn.events[i].time, plain.events[i].time);
    EXPECT_EQ(a.churn.events[i].a, plain.events[i].a);
  }
}

}  // namespace
}  // namespace themis
