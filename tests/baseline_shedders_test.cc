// Tests for the extended baseline shedders (drop-newest, drop-oldest,
// proportional).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "shedding/baseline_shedders.h"

namespace themis {
namespace {

Batch B(QueryId q, size_t n, double sic = 0.1) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(Tuple(0, sic / static_cast<double>(n), {Value(0.0)}));
  }
  return MakeBatch(q, 0, 0, 0, std::move(ts));
}

size_t KeptTuples(const std::deque<Batch>& ib,
                  const std::vector<size_t>& keep) {
  size_t n = 0;
  for (size_t i : keep) n += ib[i].size();
  return n;
}

TEST(DropNewestShedderTest, KeepsFifoPrefix) {
  DropNewestShedder shedder;
  std::deque<Batch> ib;
  for (int i = 0; i < 10; ++i) ib.push_back(B(i, 10));
  ShedContext ctx;
  ctx.capacity_tuples = 35;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  EXPECT_EQ(keep, (std::vector<size_t>{0, 1, 2}));
}

TEST(DropOldestShedderTest, KeepsFifoSuffix) {
  DropOldestShedder shedder;
  std::deque<Batch> ib;
  for (int i = 0; i < 10; ++i) ib.push_back(B(i, 10));
  ShedContext ctx;
  ctx.capacity_tuples = 35;
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  EXPECT_EQ(keep, (std::vector<size_t>{7, 8, 9}));
}

TEST(ProportionalShedderTest, EqualKeepFractions) {
  ProportionalShedder shedder;
  std::deque<Batch> ib;
  // Query 1: 100 tuples in 10 batches; query 2: 50 tuples in 5 batches.
  for (int i = 0; i < 10; ++i) ib.push_back(B(1, 10));
  for (int i = 0; i < 5; ++i) ib.push_back(B(2, 10));
  ShedContext ctx;
  ctx.capacity_tuples = 75;  // half of 150
  auto keep = shedder.SelectBatchesToKeep(ib, ctx);
  size_t q1 = 0, q2 = 0;
  for (size_t i : keep) {
    (ib[i].header.query_id == 1 ? q1 : q2) += ib[i].size();
  }
  EXPECT_EQ(q1, 50u);  // half of query 1's input
  EXPECT_EQ(q2, 20u);  // half of query 2's input, rounded to batches
}

TEST(ProportionalShedderTest, UnderloadedKeepsEverything) {
  ProportionalShedder shedder;
  std::deque<Batch> ib;
  ib.push_back(B(1, 10));
  ib.push_back(B(2, 10));
  ShedContext ctx;
  ctx.capacity_tuples = 100;
  EXPECT_EQ(shedder.SelectBatchesToKeep(ib, ctx).size(), 2u);
}

TEST(BaselineSheddersTest, AllRespectCapacityOnMixedSizes) {
  std::deque<Batch> ib;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    ib.push_back(
        B(i % 4, static_cast<size_t>(rng.UniformInt(1, 25))));
  }
  ShedContext ctx;
  ctx.capacity_tuples = 120;

  DropNewestShedder dn;
  DropOldestShedder dold;
  ProportionalShedder prop;
  for (Shedder* s :
       std::vector<Shedder*>{&dn, &dold, &prop}) {
    auto keep = s->SelectBatchesToKeep(ib, ctx);
    EXPECT_LE(KeptTuples(ib, keep), 120u) << s->name();
    EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end())) << s->name();
  }
}

TEST(BaselineSheddersTest, EmptyBufferYieldsEmptyKeep) {
  ShedContext ctx;
  ctx.capacity_tuples = 10;
  DropNewestShedder dn;
  DropOldestShedder dold;
  ProportionalShedder prop;
  EXPECT_TRUE(dn.SelectBatchesToKeep({}, ctx).empty());
  EXPECT_TRUE(dold.SelectBatchesToKeep({}, ctx).empty());
  EXPECT_TRUE(prop.SelectBatchesToKeep({}, ctx).empty());
}

}  // namespace
}  // namespace themis
