// Tests of a single THEMIS node: SIC stamping at ingress, batch processing
// through a fragment, cost-model-driven capacity, overload shedding.
#include <gtest/gtest.h>

#include <memory>

#include "node/node.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/receiver.h"
#include "shedding/balance_sic_shedder.h"
#include "sim/event_queue.h"

namespace themis {
namespace {

// Captures everything the node routes out.
class FakeRouter : public BatchRouter {
 public:
  void RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                  Batch batch) override {
    (void)from;
    routed.push_back({query, to_fragment, std::move(batch)});
  }
  void DeliverResult(QueryId query, SimTime now,
                     const std::vector<Tuple>& results) override {
    for (const Tuple& t : results) {
      result_sic[query] += t.sic;
      if (now >= Seconds(5)) post_warmup_sic[query] += t.sic;
      result_tuples[query] += 1;
      last_values[query] = t.values;
    }
  }

  struct Routed {
    QueryId query;
    FragmentId fragment;
    Batch batch;
  };
  std::vector<Routed> routed;
  std::map<QueryId, double> result_sic;
  std::map<QueryId, double> post_warmup_sic;
  std::map<QueryId, int> result_tuples;
  std::map<QueryId, ValueList> last_values;
};

// Single-fragment AVG query: receiver -> avg(1s window) -> output.
std::unique_ptr<QueryGraph> MakeAvgGraph(QueryId q, SourceId src,
                                         double op_cost_us = 1.0) {
  QueryBuilder b(q, "avg");
  auto recv_op = std::make_unique<ReceiverOp>();
  recv_op->set_cost_us_per_tuple(op_cost_us);
  OperatorId recv = b.Add(std::move(recv_op), 0);
  OperatorId avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0,
                                    WindowSpec::TumblingTime(kSecond)),
      0);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), 0);
  b.Connect(recv, avg).Connect(avg, out).BindSource(src, recv).SetRoot(out);
  return std::move(b.Build()).TakeValue();
}

Batch SourceBatch(QueryId q, SourceId src, OperatorId dest, SimTime now,
                  size_t n, double value) {
  std::vector<Tuple> ts;
  for (size_t i = 0; i < n; ++i) ts.push_back(Tuple(now, 0.0, {Value(value)}));
  Batch b = MakeBatch(q, dest, 0, now, std::move(ts));
  b.header.source = src;
  return b;
}

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() {
    options_.shed_interval = Millis(250);
    options_.stw = Seconds(10);
    options_.window_grace = Millis(200);
  }

  Node& MakeNode() {
    node_ = std::make_unique<Node>(0, options_, &queue_, &router_,
                                   std::make_unique<BalanceSicShedder>(Rng(1)));
    return *node_;
  }

  EventQueue queue_;
  FakeRouter router_;
  NodeOptions options_;
  std::unique_ptr<Node> node_;
};

TEST_F(NodeTest, StampsSourceTuplesWithEq1Sic) {
  auto graph = MakeAvgGraph(1, /*src=*/10);
  Node& node = MakeNode();
  node.HostFragment(graph.get(), 0);
  node.Start();

  // 100-tuple batches every 100 ms: 1000 t/s, STW 10 s -> |T_s| = 10000,
  // 1 source -> per-tuple SIC 1e-4 after the estimate settles.
  for (int i = 0; i < 300; ++i) {
    queue_.Schedule(Millis(100) * i, [&, i] {
      node.Receive(SourceBatch(1, 10, 0, queue_.now(), 100, 50.0));
    });
  }
  queue_.RunUntil(Seconds(30));

  // Underloaded: everything processed, results emitted with qSIC ~ 1 per STW
  // (0.1 SIC arriving at the result per second).
  EXPECT_GT(router_.result_tuples[1], 20);
  EXPECT_EQ(node.stats().tuples_shed, 0u);
  // Once the rate estimate has settled (first few seconds inflate per-tuple
  // SIC because |T_s| is still underestimated), the result accumulates
  // 0.1 SIC mass per second: ~2.5 over the 25 post-warmup seconds.
  EXPECT_NEAR(router_.post_warmup_sic[1], 2.5, 0.4);
}

TEST_F(NodeTest, ComputesCorrectAverages) {
  auto graph = MakeAvgGraph(1, 10);
  Node& node = MakeNode();
  node.HostFragment(graph.get(), 0);
  node.Start();
  for (int i = 0; i < 50; ++i) {
    queue_.Schedule(Millis(100) * i, [&] {
      node.Receive(SourceBatch(1, 10, 0, queue_.now(), 10, 42.0));
    });
  }
  queue_.RunUntil(Seconds(8));
  ASSERT_GT(router_.result_tuples[1], 0);
  EXPECT_DOUBLE_EQ(AsDouble(router_.last_values[1][0]), 42.0);
}

TEST_F(NodeTest, OverloadTriggersShedding) {
  // Make tuples expensive: 3000 us per tuple at the receiver -> capacity
  // ~83 tuples per 250 ms interval, while 500 t/s arrive.
  auto graph = MakeAvgGraph(1, 10, /*op_cost_us=*/3000.0);
  Node& node = MakeNode();
  node.HostFragment(graph.get(), 0);
  node.Start();
  for (int i = 0; i < 100; ++i) {
    queue_.Schedule(Millis(100) * i, [&] {
      node.Receive(SourceBatch(1, 10, 0, queue_.now(), 50, 50.0));
    });
  }
  queue_.RunUntil(Seconds(12));
  EXPECT_GT(node.stats().tuples_shed, 0u);
  EXPECT_GT(node.stats().shed_invocations, 0u);
  // The node still makes progress.
  EXPECT_GT(router_.result_tuples[1], 0);
  // Processed tuple rate respects the learned capacity (within slack).
  EXPECT_LT(node.stats().tuples_processed, node.stats().tuples_received);
}

TEST_F(NodeTest, CapacityConvergesToCostModel) {
  auto graph = MakeAvgGraph(1, 10, /*op_cost_us=*/1000.0);
  Node& node = MakeNode();
  node.HostFragment(graph.get(), 0);
  node.Start();
  for (int i = 0; i < 100; ++i) {
    queue_.Schedule(Millis(100) * i, [&] {
      node.Receive(SourceBatch(1, 10, 0, queue_.now(), 20, 50.0));
    });
  }
  queue_.RunUntil(Seconds(11));
  // 1000 us/tuple (+ small downstream cost) -> c close to 250 per 250 ms.
  EXPECT_GT(node.CurrentCapacity(), 150u);
  EXPECT_LE(node.CurrentCapacity(), 260u);
}

TEST_F(NodeTest, UpdateQuerySicIsVisibleToShedder) {
  auto graph = MakeAvgGraph(1, 10);
  Node& node = MakeNode();
  node.HostFragment(graph.get(), 0);
  node.UpdateQuerySic(1, 0.75);
  EXPECT_DOUBLE_EQ(node.known_query_sic().at(1), 0.75);
}

TEST_F(NodeTest, HostedQueriesListsDeployments) {
  auto g1 = MakeAvgGraph(1, 10);
  auto g2 = MakeAvgGraph(2, 11);
  Node& node = MakeNode();
  node.HostFragment(g1.get(), 0);
  node.HostFragment(g2.get(), 0);
  auto qs = node.HostedQueries();
  EXPECT_EQ(qs, (std::vector<QueryId>{1, 2}));
}

TEST_F(NodeTest, UnknownQueryBatchIsDroppedGracefully) {
  Node& node = MakeNode();
  node.Start();
  node.Receive(SourceBatch(99, 5, 0, 0, 10, 1.0));
  queue_.RunUntil(Seconds(1));
  EXPECT_EQ(node.stats().batches_received, 1u);
  // Processed (popped) but produced no work or results.
  EXPECT_TRUE(router_.result_sic.empty());
}

}  // namespace
}  // namespace themis
