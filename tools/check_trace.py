#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file emitted by themis_telemetry.

Usage: check_trace.py TRACE_JSON [--require SPAN_NAME ...] [--min-events N]

Checks that the file parses as JSON, carries a `traceEvents` list, and that
every event is a well-formed complete ("ph":"X") span: string `name`,
numeric non-negative `ts`/`dur`, numeric `pid`/`tid`. Each --require names
a span that must appear at least once (repeatable); --min-events pins a
lower bound on the total span count. Exits non-zero, listing every
violation, when any check fails — CI runs this against the traces written
by `themis_sim --trace` and the bench `--trace` flag so the exporter
cannot silently drift away from the Perfetto-loadable format.
"""

import argparse
import json
import numbers
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("trace")
    parser.add_argument(
        "--require", action="append", default=[], metavar="SPAN_NAME",
        help="span name that must appear at least once (repeatable)")
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="minimum number of trace events (default 1)")
    args = parser.parse_args()

    errors = []
    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 1

    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        print(f"error: {args.trace}: no traceEvents list", file=sys.stderr)
        return 1

    names = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
        else:
            names.add(name)
        if ev.get("ph") != "X":
            errors.append(f"{where}: ph is {ev.get('ph')!r}, expected 'X'")
        for field in ("ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, numbers.Real) or isinstance(v, bool):
                errors.append(f"{where}: {field} is not numeric: {v!r}")
            elif v < 0:
                errors.append(f"{where}: {field} is negative: {v!r}")
        for field in ("pid", "tid"):
            v = ev.get(field)
            if not isinstance(v, numbers.Real) or isinstance(v, bool):
                errors.append(f"{where}: {field} is not numeric: {v!r}")

    if len(events) < args.min_events:
        errors.append(
            f"only {len(events)} event(s), need >= {args.min_events}")
    for required in args.require:
        if required not in names:
            errors.append(f"required span {required!r} never recorded")

    if errors:
        print(f"{args.trace}: {len(errors)} problem(s):", file=sys.stderr)
        for e in errors[:50]:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"{args.trace}: OK ({len(events)} events, "
          f"{len(names)} distinct spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
