// themis_sim — command-line runner for custom federation scenarios.
//
//   $ themis_sim --nodes=6 --queries=80 --fragments=3 --overload=3
//
// with optional flags --policy=balance-sic|random|fifo --seconds=40
// --zipf=1.0 --seed=42 --interval-ms=250 --burst=0.1 --csv --shards=N
// --trace=PATH --metrics=PATH
//
// Deploys a mixed complex workload (AVG-all / TOP-5 / COV) with the given
// shape and prints per-second fairness metrics, so deployments can be
// explored without writing C++. --trace writes a Chrome-trace JSON of the
// run's spans (open in Perfetto); --metrics writes a Prometheus-style
// snapshot whose non-`infra.` lines are bit-identical at any --shards (the
// CI cross-shard gate diffs them at shards 1 vs 4).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/stats.h"
#include "federation/fsps.h"
#include "federation/placement.h"
#include "metrics/jain.h"
#include "telemetry/telemetry.h"
#include "workload/workloads.h"

namespace {

using namespace themis;

struct Flags {
  int nodes = 4;
  int queries = 40;
  int fragments = 2;
  double overload = 3.0;
  std::string policy = "balance-sic";
  int seconds = 40;
  double zipf = 0.0;
  uint64_t seed = 42;
  int interval_ms = 250;
  double burst = 0.0;
  bool csv = false;
  int shards = 1;
  std::string trace_path;
  std::string metrics_path;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "nodes", &v)) {
      flags->nodes = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "queries", &v)) {
      flags->queries = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "fragments", &v)) {
      flags->fragments = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "overload", &v)) {
      flags->overload = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "policy", &v)) {
      flags->policy = v;
    } else if (ParseFlag(argv[i], "seconds", &v)) {
      flags->seconds = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "zipf", &v)) {
      flags->zipf = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "seed", &v)) {
      flags->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "interval-ms", &v)) {
      flags->interval_ms = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "burst", &v)) {
      flags->burst = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "shards", &v)) {
      flags->shards = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "trace", &v)) {
      flags->trace_path = v;
    } else if (ParseFlag(argv[i], "metrics", &v)) {
      flags->metrics_path = v;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      flags->csv = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

Result<SheddingPolicy> PolicyFromName(const std::string& name) {
  for (SheddingPolicy p :
       {SheddingPolicy::kBalanceSic, SheddingPolicy::kRandom,
        SheddingPolicy::kDropNewest, SheddingPolicy::kDropOldest,
        SheddingPolicy::kProportional}) {
    if (SheddingPolicyName(p) == name) return p;
  }
  return Status::InvalidArgument("unknown policy '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    std::fprintf(
        stderr,
        "usage: themis_sim [--nodes=N] [--queries=N] [--fragments=N]\n"
        "                  [--overload=X] [--policy=balance-sic|random|\n"
        "                   drop-newest|drop-oldest|proportional]\n"
        "                  [--seconds=N] [--zipf=S] [--seed=N]\n"
        "                  [--interval-ms=N] [--burst=P] [--csv]\n"
        "                  [--shards=N] [--trace=PATH] [--metrics=PATH]\n");
    return 2;
  }
  auto policy = PolicyFromName(flags.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }

  const double kSourceRate = 30.0;
  const int kSourcesPerFragment = 4;

  // Install telemetry for the whole run when an export path was given; the
  // non-`infra.` snapshot lines are a pure function of the scenario, so
  // they match at any --shards value.
  telemetry::Telemetry telemetry;
  const bool telemetry_on =
      !flags.trace_path.empty() || !flags.metrics_path.empty();
  if (telemetry_on) telemetry::Install(&telemetry);

  FspsOptions opts;
  opts.policy = *policy;
  opts.seed = flags.seed;
  opts.shards = flags.shards;
  opts.node.shed_interval = Millis(flags.interval_ms);
  opts.coordinator.update_interval = Millis(flags.interval_ms);

  // Derive cpu speed for the requested overload factor.
  WorkloadFactory factory(flags.seed);
  Rng rng(flags.seed);
  double total_rate =
      static_cast<double>(flags.queries) * flags.fragments *
      kSourcesPerFragment * kSourceRate;
  opts.node.cpu_speed =
      total_rate * 1.6e-6 / (1e6 / 1e6 * flags.nodes * flags.overload);

  Fsps fsps(opts);
  for (int i = 0; i < flags.nodes; ++i) fsps.AddNode();

  Rng place_rng = rng.Fork();
  for (QueryId q = 0; q < flags.queries; ++q) {
    ComplexQueryOptions co;
    co.fragments = flags.fragments;
    co.sources_per_fragment = kSourcesPerFragment;
    co.source_rate = kSourceRate;
    co.burst_prob = flags.burst;
    BuiltQuery built = factory.MakeRandomComplex(q, co);
    auto placement = PlaceFragments(
        *built.graph, fsps.node_ids(),
        flags.zipf > 0 ? PlacementPolicy::kZipf
                       : PlacementPolicy::kUniformRandom,
        flags.zipf, &place_rng);
    Status st = fsps.Deploy(std::move(built.graph), placement);
    if (!st.ok()) {
      std::fprintf(stderr, "deploy: %s\n", st.ToString().c_str());
      return 1;
    }
    st = fsps.AttachSources(q, built.sources);
    if (!st.ok()) {
      std::fprintf(stderr, "sources: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (flags.csv) {
    std::printf("second,mean_sic,jain,std,shed_tuples\n");
  } else {
    std::printf("%-8s %-10s %-8s %-8s %s\n", "second", "mean_SIC", "jain",
                "std", "shed");
  }
  uint64_t last_shed = 0;
  for (int s = 1; s <= flags.seconds; ++s) {
    fsps.RunFor(Seconds(1));
    auto sics = fsps.AllQuerySics();
    uint64_t shed = fsps.TotalNodeStats().tuples_shed;
    if (flags.csv) {
      std::printf("%d,%.4f,%.4f,%.4f,%llu\n", s, Mean(sics), JainIndex(sics),
                  StdDev(sics),
                  static_cast<unsigned long long>(shed - last_shed));
    } else if (s % 5 == 0) {
      std::printf("%-8d %-10.4f %-8.4f %-8.4f %llu\n", s, Mean(sics),
                  JainIndex(sics), StdDev(sics),
                  static_cast<unsigned long long>(shed - last_shed));
    }
    last_shed = shed;
  }

  if (telemetry_on) {
    telemetry::Uninstall();
    if (!flags.trace_path.empty()) {
      std::string trace;
      telemetry.tracer().ExportChromeTrace(&trace);
      std::ofstream out(flags.trace_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", flags.trace_path.c_str());
        return 1;
      }
      out << trace << "\n";
    }
    if (!flags.metrics_path.empty()) {
      std::string prom;
      telemetry.metrics().ExportProm(&prom);
      std::ofstream out(flags.metrics_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", flags.metrics_path.c_str());
        return 1;
      }
      out << prom;
    }
  }
  return 0;
}
