// Discrete-event simulation core. Single-threaded, deterministic: events at
// the same simulated time run in scheduling (FIFO) order.
//
// This is the substitute for the paper's Emulab/local test-beds (DESIGN.md
// §2): nodes, sources, coordinators and the network schedule callbacks here
// instead of running on real machines.
#ifndef THEMIS_SIM_EVENT_QUEUE_H_
#define THEMIS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/function.h"
#include "common/time_types.h"

namespace themis {

/// \brief Priority queue of timed callbacks with a simulated clock.
///
/// Callbacks are move-only UniqueFunctions: events can own their payload
/// (e.g. an in-flight Batch) and small callables are stored inline, so
/// scheduling does not allocate in steady state.
class EventQueue {
 public:
  using Callback = UniqueFunction;

  /// Schedules `cb` at absolute simulated time `t` (clamped to now()).
  void Schedule(SimTime t, Callback cb);
  /// Schedules `cb` after `delay` from now.
  void ScheduleAfter(SimDuration delay, Callback cb);

  /// Runs the earliest event; returns false when the queue is empty.
  bool RunNext();
  /// Runs all events with time <= t, then advances the clock to t.
  void RunUntil(SimTime t);
  /// Runs until the queue drains (use with care: sources self-reschedule).
  void RunAll();

  SimTime now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  /// Total events executed (diagnostics).
  uint64_t executed() const { return executed_; }

 private:
  // Heap entries are 24-byte PODs; the callbacks live in a slab of stable
  // slots on the side. Heap sifts therefore memcpy small entries instead of
  // vtable-relocating UniqueFunctions, and retired slots recycle so
  // scheduling is allocation-free in steady state.
  struct Event {
    SimTime time;
    uint64_t seq;   // tie-break: FIFO among equal-time events
    uint32_t slot;  // index into slots_
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Callback> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace themis

#endif  // THEMIS_SIM_EVENT_QUEUE_H_
