// Simulation engine abstraction. The federation layer drives a simulation
// through this interface instead of a raw EventQueue, so the same deployment
// code runs on the single-threaded SequentialEngine (the historical
// behaviour, bit-for-bit) or on the sharded parallel engine in
// src/parsim (themis_parsim), which partitions nodes across worker-thread
// shards synchronized in conservative barrier epochs.
//
// Vocabulary shared by both engines:
//   * shard      — one EventQueue plus the entities pinned to it. Entities
//                  on the same shard may interact directly; entities on
//                  different shards may only interact through Network::Send,
//                  whose link latency bounds how far one shard can run ahead
//                  of another (the lookahead).
//   * ShardPlan  — the node->shard map plus per-shard queues and the
//                  cross-shard message sink, installed into the Network
//                  before the first run.
#ifndef THEMIS_SIM_ENGINE_H_
#define THEMIS_SIM_ENGINE_H_

#include <vector>

#include "common/function.h"
#include "common/time_types.h"
#include "runtime/ids.h"
#include "sim/event_queue.h"

namespace themis {

/// \brief Receiver of cross-shard messages (implemented by ParallelEngine).
///
/// A shard calling Network::Send with a destination on another shard hands
/// the delivery callback here instead of scheduling it directly; the engine
/// buffers it in a per-(from, to) shard-pair inbox ring and merges all rings
/// deterministically at the next epoch barrier.
class CrossShardSink {
 public:
  virtual ~CrossShardSink() = default;

  /// Buffers a delivery for `to_shard` at simulated time `deliver_time`.
  /// Must be called from the thread currently running `from_shard`.
  virtual void EnqueueRemote(int from_shard, int to_shard,
                             SimTime deliver_time, UniqueFunction cb) = 0;
};

/// \brief Node-to-shard assignment plus the per-shard delivery endpoints.
struct ShardPlan {
  /// Shard of each node, indexed by NodeId. Nodes beyond the vector (and
  /// the pseudo source node kInvalidId) resolve to shard 0 via ShardOf —
  /// callers that care (Network::Send) substitute the destination node for
  /// kInvalidId senders, since source drivers are pinned to their
  /// destination node's shard.
  std::vector<int> shard_of_node;
  /// Event queue of each shard (owned by the engine).
  std::vector<EventQueue*> queues;
  /// Cross-shard delivery sink; null when there is only one shard.
  CrossShardSink* sink = nullptr;

  int ShardOf(NodeId id) const {
    if (id < 0 || static_cast<size_t>(id) >= shard_of_node.size()) return 0;
    return shard_of_node[id];
  }
};

/// \brief Discrete-event execution engine: one or more EventQueue shards
/// advanced together to a common target time.
class Engine {
 public:
  virtual ~Engine() = default;

  virtual int num_shards() const = 0;
  /// The event queue of `shard` (0 <= shard < num_shards()). Entities pinned
  /// to a shard schedule their callbacks on its queue.
  virtual EventQueue* queue(int shard) = 0;

  /// Sets the conservative lookahead (minimum cross-shard link latency):
  /// the barrier-epoch width of the parallel engine. `lookahead <= 0` means
  /// "no cross-shard traffic exists" and lets shards run to the target in
  /// one stretch. No-op on the sequential engine. Must be called before the
  /// first RunUntil when cross-shard links exist — and may be called again
  /// between RunUntil calls (epoch boundaries) after a topology mutation
  /// re-derives the minimum cross-shard latency.
  virtual void SetLookahead(SimDuration lookahead) = 0;

  /// Current lookahead (epoch width); -1 on engines without one.
  virtual SimDuration lookahead() const { return -1; }

  /// Declares that the node->shard map may change between runs (elastic
  /// federation). Call before the first RunUntil. The migration protocol —
  /// every step happens between RunUntil calls, where all shard clocks are
  /// equal and the cross-shard inbox rings are provably empty (the final
  /// epoch's merge runs before RunUntil returns):
  ///   1. Entities re-point their timer chains at the new shard's queue,
  ///      bumping a generation counter so events still queued on the old
  ///      shard no-op when they fire there (generations are only written
  ///      between runs, so worker-thread reads are race-free).
  ///   2. The Network's shard map is swapped in place (jitter lanes and
  ///      traffic counters stay with their shards).
  ///   3. In-flight deliveries scheduled before the re-balance fire on the
  ///      shard that held the destination at send time; the Network's
  ///      elastic trampoline re-forwards them through EnqueueRemote to the
  ///      destination's current shard, where they land at the next epoch
  ///      barrier. On an elastic engine EnqueueRemote therefore tolerates
  ///      lookahead <= 0 (a re-forward may outlive the last cross-shard
  ///      link); such stragglers merge at the end of the stretch instead.
  /// Re-forwarded deliveries land up to one epoch late, so elastic runs at
  /// different shard counts may diverge from each other — run-to-run
  /// determinism at a fixed shard count and sequential == parsim@1 are
  /// still exact (a one-shard map never changes).
  virtual void EnableElastic() {}

  /// Cross-shard message sink, or nullptr for engines without one.
  virtual CrossShardSink* sink() { return nullptr; }

  /// Advances every shard to simulated time `t` (inclusive: events at `t`
  /// run). Returns with all shard clocks equal to `t` and all cross-shard
  /// inboxes drained. Only the driver thread may call this; observation and
  /// control-plane mutation (deploy/undeploy) are only legal between calls.
  virtual void RunUntil(SimTime t) = 0;

  /// Common simulated time of all shards (between RunUntil calls).
  virtual SimTime now() const = 0;

  /// Total events executed across all shards (diagnostics).
  virtual uint64_t executed() const = 0;
};

/// \brief The single-threaded engine: one shard, one EventQueue, events at
/// equal times in FIFO order — the pre-parsim simulator, bit-for-bit.
class SequentialEngine : public Engine {
 public:
  int num_shards() const override { return 1; }
  EventQueue* queue(int) override { return &queue_; }
  void SetLookahead(SimDuration) override {}
  void RunUntil(SimTime t) override { queue_.RunUntil(t); }
  SimTime now() const override { return queue_.now(); }
  uint64_t executed() const override { return queue_.executed(); }

 private:
  EventQueue queue_;
};

}  // namespace themis

#endif  // THEMIS_SIM_ENGINE_H_
