#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace themis {

void EventQueue::Schedule(SimTime t, Callback cb) {
  queue_.push({std::max(t, now_), next_seq_++, std::move(cb)});
}

void EventQueue::ScheduleAfter(SimDuration delay, Callback cb) {
  Schedule(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

bool EventQueue::RunNext() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.cb();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) RunNext();
  now_ = std::max(now_, t);
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace themis
