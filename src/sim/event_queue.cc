#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace themis {

void EventQueue::Schedule(SimTime t, Callback cb) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(cb);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(cb));
  }
  queue_.push({std::max(t, now_), next_seq_++, slot});
}

void EventQueue::ScheduleAfter(SimDuration delay, Callback cb) {
  Schedule(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

bool EventQueue::RunNext() {
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  // Move the callback out before running: the callback may schedule new
  // events, which may reuse the freed slot.
  Callback cb = std::move(slots_[ev.slot]);
  free_slots_.push_back(ev.slot);
  cb();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) RunNext();
  now_ = std::max(now_, t);
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace themis
