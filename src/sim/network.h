// Simulated network: point-to-point links with configurable latency (the
// paper's 5 ms LAN star topology, or 50 ms WAN links for §7.4) plus optional
// jitter. Counts messages and payload bytes for the §7.6 overhead report.
//
// Link latencies live in a dense (n+1)x(n+1) matrix indexed by node id
// (row/column 0 is the pseudo source node kInvalidId), so the per-message
// Latency() lookup on the data-plane hot path is one multiply and one load
// instead of a std::map walk.
//
// Sharded operation: after InstallShardPlan, Send routes same-shard traffic
// straight onto the executing shard's queue and hands cross-shard traffic to
// the engine's CrossShardSink. Per-shard "lanes" keep the traffic counters
// and the jitter RNG stream thread-local to the executing shard, so the
// parallel engine runs without locks; without a plan there is exactly one
// lane and behaviour is byte-identical to the historical single-queue path.
//
// Dynamic topology: once a shard plan is installed the immediate setters
// reject edits (the parallel engine's lookahead is derived from the
// topology; mutating it under a running epoch would let messages undercut
// the epoch width). Instead, edits go through the mutation queue
// (QueueSetLatency / QueueSetDefaultLatency) and are applied in FIFO order
// by ApplyQueuedMutations(), which the federation layer calls at an epoch
// boundary — between engine runs, with every shard clock synchronized —
// before re-deriving the conservative lookahead. Each queued edit updates
// the dense matrix incrementally (two cells, plus growth when a new node id
// appears); the matrix is never rebuilt from scratch.
#ifndef THEMIS_SIM_NETWORK_H_
#define THEMIS_SIM_NETWORK_H_

#include <cstdint>
#include <vector>

#include "common/function.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time_types.h"
#include "runtime/ids.h"
#include "sim/engine.h"
#include "sim/event_queue.h"

namespace themis {

/// \brief Latency-modelled message delivery between FSPS nodes.
class Network {
 public:
  /// Historical jitter stream seed; kept as the default so pre-existing
  /// configurations reproduce their figures byte-for-byte.
  static constexpr uint64_t kDefaultJitterSeed = 7;

  /// \param queue event queue delivering messages (single-shard operation)
  /// \param default_latency link latency when no override is set
  /// \param jitter_seed seed of the per-message jitter stream
  Network(EventQueue* queue, SimDuration default_latency = Millis(5),
          uint64_t jitter_seed = kDefaultJitterSeed);

  /// Overrides the latency of the (a, b) link, both directions. Topology is
  /// frozen once a shard plan is installed — late edits return
  /// FailedPrecondition instead of applying; queue them (QueueSetLatency)
  /// to defer them to the next epoch boundary.
  Status SetLatency(NodeId a, NodeId b, SimDuration latency);
  Status SetDefaultLatency(SimDuration latency);
  /// Uniform jitter in [0, jitter] added per message (0 disables).
  void SetJitter(SimDuration jitter) { jitter_ = jitter; }

  /// Defers a link-latency edit to the next ApplyQueuedMutations() call.
  /// Legal at any time, sharded or not; edits apply in FIFO order.
  void QueueSetLatency(NodeId a, NodeId b, SimDuration latency);
  /// Deferred counterpart of SetDefaultLatency.
  void QueueSetDefaultLatency(SimDuration latency);
  /// Applies every queued edit and returns how many were applied. With a
  /// shard plan installed this must only run at an epoch boundary (between
  /// engine runs), and the caller must re-derive the engine lookahead from
  /// MinCrossShardLatency afterwards before resuming.
  size_t ApplyQueuedMutations();
  bool has_queued_mutations() const { return !pending_.empty(); }

  SimDuration Latency(NodeId a, NodeId b) const {
    if (a == b) return 0;
    size_t ia = Index(a), ib = Index(b);
    if (ia < dim_ && ib < dim_) {
      SimDuration v = matrix_[ia * dim_ + ib];
      if (v != kNoOverride) return v;
    }
    return default_latency_;
  }

  /// Minimum base latency over node pairs assigned to different shards in
  /// `shard_of_node` (indexed by NodeId, covering all nodes); this is the
  /// safe conservative lookahead for a sharded run. Returns -1 when no pair
  /// crosses shards. Jitter only adds latency, so it never tightens this.
  ///
  /// `alive`, when non-empty (indexed by NodeId like `shard_of_node`),
  /// restricts the scan to pairs of live nodes: links touching a crashed
  /// node carry no future traffic, so they must not narrow the epoch.
  SimDuration MinCrossShardLatency(const std::vector<int>& shard_of_node,
                                   const std::vector<char>& alive = {}) const;

  /// Switches Send to shard-aware routing (see class comment). The plan's
  /// queues replace the constructor queue; call before the first event runs.
  void InstallShardPlan(ShardPlan plan);

  /// Replaces the node->shard map of the installed plan in place — the
  /// elastic re-balance path. Unlike InstallShardPlan it keeps the per-shard
  /// lanes (jitter RNG streams and traffic counters stay with their shards),
  /// so a re-balance never rewinds or reseeds a jitter stream. Only legal
  /// between engine runs, with a plan installed.
  void UpdateShardMap(std::vector<int> shard_of_node);

  /// Elastic mode: every sharded delivery is wrapped so that a message in
  /// flight across a re-balance boundary — scheduled on the shard that held
  /// its destination at send time — re-forwards itself to the destination's
  /// current shard instead of firing on the stale one (see
  /// Engine::EnableElastic for the protocol). Call before the first send;
  /// adds one wrapper per message, so it is opt-in.
  void EnableElastic() { elastic_ = true; }

  /// Delivers `on_delivery` at the destination after the link latency.
  /// `payload_bytes` only feeds the traffic statistics. The callback may own
  /// its payload (move-only): batches move through the network, not copy.
  /// With a shard plan installed, must be called from the thread currently
  /// running the sending entity's shard (`from`'s shard; source drivers use
  /// from == kInvalidId and run on the destination's shard).
  void Send(NodeId from, NodeId to, size_t payload_bytes,
            UniqueFunction on_delivery);

  uint64_t messages_sent() const;
  uint64_t bytes_sent() const;

 private:
  // kInvalidId (-1) maps to row/column 0; node i to i+1.
  static size_t Index(NodeId id) { return static_cast<size_t>(id + 1); }
  static constexpr SimDuration kNoOverride = INT64_MIN;

  /// One deferred topology edit; a == b == kInvalidId encodes a default-
  /// latency change (self-links are never stored, so the encoding is free).
  struct PendingMutation {
    NodeId a;
    NodeId b;
    SimDuration latency;
  };

  /// Wraps a sharded delivery callback for elastic mode: fires `inner` if
  /// the destination still lives on `via_shard`, else re-forwards it (re-
  /// wrapped) to the destination's current shard through the sink.
  UniqueFunction WrapElastic(NodeId to, int via_shard, UniqueFunction inner);

  /// Grows the matrix to cover ids up to `need - 2` (index dimension
  /// `need`), preserving existing overrides.
  void EnsureDim(size_t need);
  /// Unconditional (freeze-exempt) matrix write shared by the immediate
  /// setter and the queue drain.
  void ApplyLatency(NodeId a, NodeId b, SimDuration latency);

  /// Per-shard mutable state, padded so two shards' counters never share a
  /// cache line. Lane 0 doubles as the single-shard state.
  struct alignas(64) Lane {
    Rng jitter_rng;
    uint64_t messages = 0;
    uint64_t bytes = 0;
    explicit Lane(uint64_t seed) : jitter_rng(seed) {}
  };

  EventQueue* queue_;
  SimDuration default_latency_;
  SimDuration jitter_ = 0;
  uint64_t jitter_seed_;
  std::vector<SimDuration> matrix_;  // dim_ x dim_, kNoOverride = default
  size_t dim_ = 0;
  std::vector<PendingMutation> pending_;
  std::vector<Lane> lanes_;
  ShardPlan plan_;
  bool sharded_ = false;
  bool elastic_ = false;
};

}  // namespace themis

#endif  // THEMIS_SIM_NETWORK_H_
