// Simulated network: point-to-point links with configurable latency (the
// paper's 5 ms LAN star topology, or 50 ms WAN links for §7.4) plus optional
// jitter. Counts messages and payload bytes for the §7.6 overhead report.
#ifndef THEMIS_SIM_NETWORK_H_
#define THEMIS_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <utility>

#include "common/function.h"
#include "common/rng.h"
#include "common/time_types.h"
#include "runtime/ids.h"
#include "sim/event_queue.h"

namespace themis {

/// \brief Latency-modelled message delivery between FSPS nodes.
class Network {
 public:
  /// \param queue event queue delivering messages
  /// \param default_latency link latency when no override is set
  Network(EventQueue* queue, SimDuration default_latency = Millis(5))
      : queue_(queue), default_latency_(default_latency), jitter_rng_(7) {}

  /// Overrides the latency of the (a, b) link, both directions.
  void SetLatency(NodeId a, NodeId b, SimDuration latency);
  void SetDefaultLatency(SimDuration latency) { default_latency_ = latency; }
  /// Uniform jitter in [0, jitter] added per message (0 disables).
  void SetJitter(SimDuration jitter) { jitter_ = jitter; }

  SimDuration Latency(NodeId a, NodeId b) const;

  /// Delivers `on_delivery` at the destination after the link latency.
  /// `payload_bytes` only feeds the traffic statistics. The callback may own
  /// its payload (move-only): batches move through the network, not copy.
  void Send(NodeId from, NodeId to, size_t payload_bytes,
            UniqueFunction on_delivery);

  uint64_t messages_sent() const { return messages_; }
  uint64_t bytes_sent() const { return bytes_; }

 private:
  static std::pair<NodeId, NodeId> Key(NodeId a, NodeId b);

  EventQueue* queue_;
  SimDuration default_latency_;
  SimDuration jitter_ = 0;
  std::map<std::pair<NodeId, NodeId>, SimDuration> links_;
  Rng jitter_rng_;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace themis

#endif  // THEMIS_SIM_NETWORK_H_
