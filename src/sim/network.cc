#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace themis {

Network::Network(EventQueue* queue, SimDuration default_latency,
                 uint64_t jitter_seed)
    : queue_(queue),
      default_latency_(default_latency),
      jitter_seed_(jitter_seed) {
  lanes_.emplace_back(jitter_seed);
}

void Network::EnsureDim(size_t need) {
  if (need <= dim_) return;
  size_t new_dim = std::max<size_t>(std::max(need, dim_ * 2), 8);
  std::vector<SimDuration> grown(new_dim * new_dim, kNoOverride);
  for (size_t a = 0; a < dim_; ++a) {
    for (size_t b = 0; b < dim_; ++b) {
      grown[a * new_dim + b] = matrix_[a * dim_ + b];
    }
  }
  matrix_ = std::move(grown);
  dim_ = new_dim;
}

void Network::ApplyLatency(NodeId a, NodeId b, SimDuration latency) {
  size_t ia = Index(a), ib = Index(b);
  EnsureDim(std::max(ia, ib) + 1);
  matrix_[ia * dim_ + ib] = latency;
  matrix_[ib * dim_ + ia] = latency;
}

Status Network::SetLatency(NodeId a, NodeId b, SimDuration latency) {
  if (sharded_) {
    return Status::FailedPrecondition(
        "topology frozen under a shard plan; queue the edit "
        "(QueueSetLatency) for the next epoch boundary instead");
  }
  ApplyLatency(a, b, latency);
  return Status::OK();
}

Status Network::SetDefaultLatency(SimDuration latency) {
  if (sharded_) {
    return Status::FailedPrecondition(
        "topology frozen under a shard plan; queue the edit "
        "(QueueSetDefaultLatency) for the next epoch boundary instead");
  }
  default_latency_ = latency;
  return Status::OK();
}

void Network::QueueSetLatency(NodeId a, NodeId b, SimDuration latency) {
  pending_.push_back({a, b, latency});
}

void Network::QueueSetDefaultLatency(SimDuration latency) {
  pending_.push_back({kInvalidId, kInvalidId, latency});
}

size_t Network::ApplyQueuedMutations() {
  size_t applied = pending_.size();
  for (const PendingMutation& m : pending_) {
    if (m.a == kInvalidId && m.b == kInvalidId) {
      default_latency_ = m.latency;
    } else {
      ApplyLatency(m.a, m.b, m.latency);
    }
  }
  pending_.clear();
  return applied;
}

SimDuration Network::MinCrossShardLatency(
    const std::vector<int>& shard_of_node,
    const std::vector<char>& alive) const {
  SimDuration min_latency = -1;
  size_t n = shard_of_node.size();
  auto is_alive = [&alive](size_t node) {
    return alive.empty() || (node < alive.size() && alive[node] != 0);
  };
  for (size_t a = 0; a + 1 < n; ++a) {
    if (!is_alive(a)) continue;
    for (size_t b = a + 1; b < n; ++b) {
      if (shard_of_node[a] == shard_of_node[b] || !is_alive(b)) continue;
      SimDuration lat = Latency(static_cast<NodeId>(a), static_cast<NodeId>(b));
      if (min_latency < 0 || lat < min_latency) min_latency = lat;
    }
  }
  return min_latency;
}

void Network::InstallShardPlan(ShardPlan plan) {
  plan_ = std::move(plan);
  sharded_ = true;
  // One lane per shard. Lane 0 keeps the primary jitter stream (so a
  // one-shard plan is byte-identical to the unsharded path); the other lanes
  // fork deterministic per-shard streams off the same seed.
  size_t shards = plan_.queues.size();
  lanes_.clear();
  lanes_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    lanes_.emplace_back(jitter_seed_ + 0x9e3779b97f4a7c15ULL * s);
  }
}

void Network::UpdateShardMap(std::vector<int> shard_of_node) {
  THEMIS_CHECK(sharded_);
  plan_.shard_of_node = std::move(shard_of_node);
}

UniqueFunction Network::WrapElastic(NodeId to, int via_shard,
                                    UniqueFunction inner) {
  return UniqueFunction(
      [this, to, via_shard, inner = std::move(inner)]() mutable {
        int cur = plan_.ShardOf(to);
        if (cur == via_shard || plan_.sink == nullptr) {
          inner();
          return;
        }
        // The destination migrated while this delivery was in flight:
        // re-forward it (re-wrapped, in case it migrates again) to its
        // current shard. It merges at the next epoch barrier and fires
        // there — up to one epoch late, deterministically.
        SimTime now = plan_.queues[via_shard]->now();
        plan_.sink->EnqueueRemote(via_shard, cur, now,
                                  WrapElastic(to, cur, std::move(inner)));
      });
}

uint64_t Network::messages_sent() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.messages;
  return total;
}

uint64_t Network::bytes_sent() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.bytes;
  return total;
}

void Network::Send(NodeId from, NodeId to, size_t payload_bytes,
                   UniqueFunction on_delivery) {
  // The executing shard: `from`'s, except for the pseudo source node
  // (kInvalidId), whose drivers are pinned to the destination's shard.
  int shard = sharded_ ? plan_.ShardOf(from != kInvalidId ? from : to) : 0;
  Lane& lane = lanes_[shard];
  ++lane.messages;
  lane.bytes += payload_bytes;
  SimDuration lat = Latency(from, to);
  if (jitter_ > 0) {
    lat += static_cast<SimDuration>(lane.jitter_rng.UniformInt(0, jitter_));
  }
  if (!sharded_) {
    queue_->ScheduleAfter(lat, std::move(on_delivery));
    return;
  }
  EventQueue* src_queue = plan_.queues[shard];
  SimTime deliver = src_queue->now() + std::max<SimDuration>(lat, 0);
  int dest_shard = plan_.ShardOf(to);
  if (elastic_) {
    // The destination may migrate before `deliver`; the wrapper re-checks
    // its shard at fire time and re-forwards if it moved.
    on_delivery = WrapElastic(to, dest_shard, std::move(on_delivery));
  }
  if (dest_shard == shard || plan_.sink == nullptr) {
    plan_.queues[dest_shard]->Schedule(deliver, std::move(on_delivery));
  } else {
    plan_.sink->EnqueueRemote(shard, dest_shard, deliver,
                              std::move(on_delivery));
  }
}

}  // namespace themis
