#include "sim/network.h"

namespace themis {

std::pair<NodeId, NodeId> Network::Key(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Network::SetLatency(NodeId a, NodeId b, SimDuration latency) {
  links_[Key(a, b)] = latency;
}

SimDuration Network::Latency(NodeId a, NodeId b) const {
  if (a == b) return 0;
  auto it = links_.find(Key(a, b));
  return it == links_.end() ? default_latency_ : it->second;
}

void Network::Send(NodeId from, NodeId to, size_t payload_bytes,
                   UniqueFunction on_delivery) {
  ++messages_;
  bytes_ += payload_bytes;
  SimDuration lat = Latency(from, to);
  if (jitter_ > 0) {
    lat += static_cast<SimDuration>(jitter_rng_.UniformInt(0, jitter_));
  }
  queue_->ScheduleAfter(lat, std::move(on_delivery));
}

}  // namespace themis
