// Synthetic value distributions of §7 (gaussian / uniform / exponential with
// mean 50, plus the "mixed" dataset) and the PlanetLab-like trace substitute.
#ifndef THEMIS_WORKLOAD_DISTRIBUTIONS_H_
#define THEMIS_WORKLOAD_DISTRIBUTIONS_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/time_types.h"

namespace themis {

/// Datasets used across the §7.1 correlation experiments.
enum class Dataset { kGaussian, kUniform, kExponential, kMixed, kPlanetLab };

/// Dataset name as printed in figure legends ("gaussian", "planetlab", ...).
std::string DatasetName(Dataset d);

/// \brief Stateful per-source value generator.
///
/// Synthetic datasets are i.i.d. draws with mean 50 (matching §7); kMixed
/// picks one of the three synthetic distributions per draw; kPlanetLab is
/// the AR(1)+spikes trace from workload/planetlab.h.
class ValueGenerator {
 public:
  virtual ~ValueGenerator() = default;
  /// Next sample at simulated time `now`.
  virtual double Next(SimTime now) = 0;

  /// Factory keyed by dataset; `rng` seeds the generator's private stream.
  static std::unique_ptr<ValueGenerator> Make(Dataset d, Rng rng,
                                              double mean = 50.0);
};

}  // namespace themis

#endif  // THEMIS_WORKLOAD_DISTRIBUTIONS_H_
