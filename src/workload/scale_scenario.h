// Federation-scale scenario generator: the workload side of the ROADMAP's
// "hundreds of nodes, thousands of queries" north star. A ScaleScenario
// describes a WAN-of-LANs federation — nodes grouped into LAN clusters
// joined by long WAN links — plus a staggered stream of complex-workload
// query arrivals, as a pure data structure. The federation layer
// (federation/scale_federation.h) assembles an Fsps from it; keeping the
// generator here lets workload-level tests pin scenario determinism without
// pulling in the federation.
//
// The WAN/LAN split is what makes these scenarios shardable: co-locating
// each cluster's nodes on one simulation shard leaves only WAN links
// crossing shards, so the parallel engine's epoch (= min cross-shard
// latency) stays wide.
#ifndef THEMIS_WORKLOAD_SCALE_SCENARIO_H_
#define THEMIS_WORKLOAD_SCALE_SCENARIO_H_

#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"
#include "workload/distributions.h"
#include "workload/workloads.h"

namespace themis {

/// Knobs of one federation-scale scenario; defaults give the 64-node
/// WAN/LAN mix used by bench_scale_federation.
struct ScaleScenarioOptions {
  int nodes = 64;              ///< processing nodes (64-256 typical)
  int clusters = 8;            ///< LAN clusters (contiguous node blocks)
  SimDuration lan_latency = Millis(5);    ///< intra-cluster links
  SimDuration wan_latency = Millis(50);   ///< inter-cluster links (§7.4 WAN)
  SimDuration source_link_latency = Millis(5);

  int queries = 96;
  /// Arrivals are staggered: `arrival_wave` queries deploy together every
  /// `arrival_interval` of simulated time (§5: queries arrive and depart
  /// over a federation's lifetime).
  int arrival_wave = 16;
  SimDuration arrival_interval = Seconds(2);
  /// Fraction of multi-fragment queries that span two clusters, so part of
  /// their data plane crosses WAN links (and shards, when sharded).
  double wan_query_ratio = 0.25;

  int fragments_min = 1;
  int fragments_max = 3;
  int sources_per_fragment = 3;
  double source_rate = 60.0;   ///< tuples/sec per source
  int batches_per_sec = 3;
  Dataset dataset = Dataset::kPlanetLab;
  /// Window range of every query's operators (ComplexQueryOptions::window).
  /// The default keeps the historical 1 s windows byte-identical; the
  /// checkpoint-recovery bench widens it so a crash mid-pane loses visible
  /// amounts of accumulated state.
  SimDuration window = Seconds(1);
  /// §7.4 burstiness of every source: probability that any given second
  /// runs at `burst_multiplier` times the base rate. 0 (default) keeps the
  /// historical constant-rate streams byte-identical; the churn+burst
  /// scenario raises it so load spikes land on partially failed clusters.
  double burst_prob = 0.0;
  double burst_multiplier = 10.0;
  /// Diurnal modulation of every source (see SourceModel): a triangle wave
  /// scaling the base rate in [1 - amplitude, 1 + amplitude]. 0 (default)
  /// keeps constant-rate streams byte-identical; the elastic scenario raises
  /// it so the autoscaler has a slow load swing to track under bursts.
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = Seconds(60);

  /// Aggregate-load / cluster-capacity target once all queries arrived
  /// (>1 = permanent overload; shedding decisions are exercised).
  double overload_factor = 2.0;

  uint64_t seed = 42;
};

/// One query arrival in the scenario.
struct ScaleQuerySpec {
  QueryId id = 0;
  ComplexKind kind = ComplexKind::kAvgAll;
  int fragments = 1;
  SimTime arrival = 0;
  /// Cluster hosting the query (fragments round-robin over its nodes).
  int home_cluster = 0;
  /// Second cluster for WAN-spanning queries (-1: stays in home_cluster);
  /// fragments alternate between the two clusters.
  int peer_cluster = -1;
};

/// \brief A fully materialised scenario (pure data, seed-deterministic).
struct ScaleScenario {
  ScaleScenarioOptions options;
  std::vector<int> cluster_of_node;   ///< cluster of each node id
  std::vector<ScaleQuerySpec> queries;
  /// Aggregate source rate (tuples/sec) with every query deployed; the
  /// federation builder derives node cpu_speed from it and the overload
  /// target.
  double total_source_rate = 0.0;
};

/// Builds the scenario from `options` (deterministic in `options.seed`).
ScaleScenario MakeScaleScenario(const ScaleScenarioOptions& options = {});

/// Per-fragment source count of `kind` (the Table 1 10/20/2 heterogeneity
/// at scenario scale): kCov pins 2, kTop5 doubles `sources_per_fragment`.
int ScaleSourcesPerFragment(ComplexKind kind, int sources_per_fragment);

}  // namespace themis

#endif  // THEMIS_WORKLOAD_SCALE_SCENARIO_H_
