#include "workload/workloads.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "runtime/operators/aggregates.h"
#include "runtime/operators/covariance.h"
#include "runtime/operators/filter_map.h"
#include "runtime/operators/join.h"
#include "runtime/operators/receiver.h"
#include "runtime/operators/topk.h"

namespace themis {

std::string ComplexKindName(ComplexKind k) {
  switch (k) {
    case ComplexKind::kAvgAll:
      return "AVG-all";
    case ComplexKind::kTop5:
      return "TOP-5";
    case ComplexKind::kCov:
      return "COV";
  }
  return "?";
}

namespace {

// Payload builder producing (id, value) pairs from a shared value generator.
PayloadFn IdValuePayload(int64_t id, std::shared_ptr<ValueGenerator> gen) {
  return [id, gen](SimTime now) -> ValueList {
    return {Value(id), Value(gen->Next(now))};
  };
}

}  // namespace

BuiltQuery WorkloadFactory::MakeAggregate(QueryId q, AggregateKind kind,
                                          const AggregateQueryOptions& opts) {
  QueryBuilder b(q, AggregateKindName(kind));
  const FragmentId frag = 0;
  OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), frag);
  std::function<bool(const Tuple&)> having;
  if (kind == AggregateKind::kCount) {
    double threshold = opts.count_threshold;
    having = [threshold](const Tuple& t) {
      return !t.values.empty() && AsDouble(t.values[0]) >= threshold;
    };
  }
  OperatorId agg = b.Add(
      std::make_unique<AggregateOp>(kind, /*field=*/0,
                                    WindowSpec::TumblingTime(opts.window),
                                    std::move(having)),
      frag);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), frag);
  b.Connect(recv, agg).Connect(agg, out).SetRoot(out);

  BuiltQuery built;
  SourceId src = AllocateSourceId();
  b.BindSource(src, recv);
  auto graph = b.Build();
  THEMIS_CHECK(graph.ok());
  built.graph = std::move(graph).TakeValue();

  SourceModel model;
  model.tuples_per_sec = opts.source_rate;
  model.batches_per_sec = opts.batches_per_sec;
  model.dataset = opts.dataset;
  built.sources[src] = model;
  return built;
}

BuiltQuery WorkloadFactory::MakeAvg(QueryId q, const AggregateQueryOptions& o) {
  return MakeAggregate(q, AggregateKind::kAvg, o);
}

BuiltQuery WorkloadFactory::MakeMax(QueryId q, const AggregateQueryOptions& o) {
  return MakeAggregate(q, AggregateKind::kMax, o);
}

BuiltQuery WorkloadFactory::MakeCount(QueryId q,
                                      const AggregateQueryOptions& o) {
  return MakeAggregate(q, AggregateKind::kCount, o);
}

BuiltQuery WorkloadFactory::MakeAvgAll(QueryId q,
                                       const ComplexQueryOptions& opts) {
  // Tree layout: every fragment computes a partial average of its own
  // sources; fragment 0 (root) additionally averages the partials and emits
  // the result. 13 operators per fragment at the paper's 10 sources.
  QueryBuilder b(q, "AVG-all");
  BuiltQuery built;
  WindowSpec win = WindowSpec::TumblingTime(opts.window);

  const FragmentId root_frag = 0;
  OperatorId final_avg = b.Add(
      std::make_unique<AggregateOp>(AggregateKind::kAvg, 0, win), root_frag);
  OperatorId out = b.Add(std::make_unique<OutputOp>(), root_frag);
  b.Connect(final_avg, out).SetRoot(out);

  for (int f = 0; f < opts.fragments; ++f) {
    FragmentId frag = static_cast<FragmentId>(f);
    OperatorId merge = b.Add(std::make_unique<UnionOp>(), frag);
    OperatorId partial_avg = b.Add(
        std::make_unique<AggregateOp>(AggregateKind::kAvg, 0, win), frag);
    OperatorId forward = b.Add(std::make_unique<UnionOp>(), frag);
    b.Connect(merge, partial_avg).Connect(partial_avg, forward);
    b.Connect(forward, final_avg);

    for (int s = 0; s < opts.sources_per_fragment; ++s) {
      OperatorId recv = b.Add(std::make_unique<ReceiverOp>(), frag);
      b.Connect(recv, merge);
      SourceId src = AllocateSourceId();
      b.BindSource(src, recv);
      SourceModel model;
      model.tuples_per_sec = opts.source_rate;
      model.batches_per_sec = opts.batches_per_sec;
      model.dataset = opts.dataset;
      model.burst_prob = opts.burst_prob;
      model.burst_multiplier = opts.burst_multiplier;
      model.diurnal_amplitude = opts.diurnal_amplitude;
      model.diurnal_period = opts.diurnal_period;
      built.sources[src] = model;
    }
  }

  auto graph = b.Build();
  THEMIS_CHECK(graph.ok());
  built.graph = std::move(graph).TakeValue();
  return built;
}

BuiltQuery WorkloadFactory::MakeTop5(QueryId q,
                                     const ComplexQueryOptions& opts) {
  // Chain layout: each fragment monitors its own CPU/memory source pairs,
  // joins the per-node averages, merges with the upstream fragment's top-k
  // and forwards its own top-k downstream; the last fragment emits the
  // result.
  QueryBuilder b(q, "TOP-5");
  BuiltQuery built;
  WindowSpec win = WindowSpec::TumblingTime(opts.window);
  int pairs = std::max(opts.sources_per_fragment / 2, 1);
  double mem_threshold = opts.mem_threshold_kb;

  OperatorId prev_topk = kInvalidId;
  int64_t next_monitored_id = 0;
  for (int f = 0; f < opts.fragments; ++f) {
    FragmentId frag = static_cast<FragmentId>(f);
    OperatorId cpu_merge = b.Add(std::make_unique<UnionOp>(), frag);
    OperatorId mem_merge = b.Add(std::make_unique<UnionOp>(), frag);
    OperatorId mem_filter = b.Add(
        std::make_unique<FilterOp>(
            [mem_threshold](const Tuple& t) {
              return t.values.size() > 1 &&
                     AsDouble(t.values[1]) >= mem_threshold;
            },
            win),
        frag);
    OperatorId cpu_avg = b.Add(std::make_unique<GroupByAggregateOp>(
                                   AggregateKind::kAvg, 0, 1, win),
                               frag);
    OperatorId mem_avg = b.Add(std::make_unique<GroupByAggregateOp>(
                                   AggregateKind::kAvg, 0, 1, win),
                               frag);
    OperatorId join =
        b.Add(std::make_unique<HashJoinOp>(/*left_key=*/0, /*right_key=*/0,
                                           win),
              frag);
    OperatorId topk = b.Add(
        std::make_unique<TopKOp>(opts.top_k, /*value_field=*/1, /*key_field=*/0,
                                 win),
        frag);

    b.Connect(cpu_merge, cpu_avg)
        .Connect(mem_merge, mem_filter)
        .Connect(mem_filter, mem_avg)
        .Connect(cpu_avg, join, /*port=*/0)
        .Connect(mem_avg, join, /*port=*/1)
        .Connect(join, topk);
    if (prev_topk != kInvalidId) b.Connect(prev_topk, topk);
    prev_topk = topk;

    for (int p = 0; p < pairs; ++p) {
      int64_t monitored = next_monitored_id++;
      OperatorId cpu_recv = b.Add(std::make_unique<ReceiverOp>(), frag);
      OperatorId mem_recv = b.Add(std::make_unique<ReceiverOp>(), frag);
      b.Connect(cpu_recv, cpu_merge).Connect(mem_recv, mem_merge);

      SourceId cpu_src = AllocateSourceId();
      SourceId mem_src = AllocateSourceId();
      b.BindSource(cpu_src, cpu_recv).BindSource(mem_src, mem_recv);

      std::shared_ptr<ValueGenerator> cpu_gen =
          ValueGenerator::Make(opts.dataset, rng_.Fork(), /*mean=*/50.0);
      // Free memory in KB, centred so that the >= 100 MB filter passes for
      // roughly two thirds of the readings.
      std::shared_ptr<ValueGenerator> mem_gen =
          ValueGenerator::Make(opts.dataset, rng_.Fork(), /*mean=*/60.0);

      SourceModel cpu_model;
      cpu_model.tuples_per_sec = opts.source_rate;
      cpu_model.batches_per_sec = opts.batches_per_sec;
      cpu_model.burst_prob = opts.burst_prob;
      cpu_model.burst_multiplier = opts.burst_multiplier;
      cpu_model.diurnal_amplitude = opts.diurnal_amplitude;
      cpu_model.diurnal_period = opts.diurnal_period;
      cpu_model.payload = IdValuePayload(monitored, cpu_gen);
      built.sources[cpu_src] = cpu_model;

      SourceModel mem_model = cpu_model;
      mem_model.payload =
          [monitored, mem_gen](SimTime now) -> ValueList {
        return {Value(monitored), Value(2000.0 * mem_gen->Next(now))};
      };
      built.sources[mem_src] = mem_model;
    }
  }

  OperatorId out = b.Add(std::make_unique<OutputOp>(),
                         static_cast<FragmentId>(opts.fragments - 1));
  b.Connect(prev_topk, out).SetRoot(out);

  auto graph = b.Build();
  THEMIS_CHECK(graph.ok());
  built.graph = std::move(graph).TakeValue();
  return built;
}

BuiltQuery WorkloadFactory::MakeCov(QueryId q,
                                    const ComplexQueryOptions& opts) {
  // Chain layout: each fragment computes the covariance of its two CPU
  // streams and merges it with the covariances flowing down the chain
  // (5 operators per fragment, matching Table 1).
  QueryBuilder b(q, "COV");
  BuiltQuery built;
  WindowSpec win = WindowSpec::TumblingTime(opts.window);

  OperatorId prev_forward = kInvalidId;
  for (int f = 0; f < opts.fragments; ++f) {
    FragmentId frag = static_cast<FragmentId>(f);
    OperatorId recv1 = b.Add(std::make_unique<ReceiverOp>(), frag);
    OperatorId recv2 = b.Add(std::make_unique<ReceiverOp>(), frag);
    OperatorId cov = b.Add(std::make_unique<CovarianceOp>(0, 0, win), frag);
    OperatorId merge = b.Add(std::make_unique<UnionOp>(), frag);
    OperatorId forward = b.Add(std::make_unique<UnionOp>(), frag);
    b.Connect(recv1, cov, /*port=*/0)
        .Connect(recv2, cov, /*port=*/1)
        .Connect(cov, merge)
        .Connect(merge, forward);
    if (prev_forward != kInvalidId) b.Connect(prev_forward, merge);
    prev_forward = forward;

    SourceModel model;
    model.tuples_per_sec = opts.source_rate;
    model.batches_per_sec = opts.batches_per_sec;
    model.dataset = opts.dataset;
    model.burst_prob = opts.burst_prob;
    model.burst_multiplier = opts.burst_multiplier;
    model.diurnal_amplitude = opts.diurnal_amplitude;
    model.diurnal_period = opts.diurnal_period;
    SourceId s1 = AllocateSourceId();
    SourceId s2 = AllocateSourceId();
    built.sources[s1] = model;
    built.sources[s2] = model;
    b.BindSource(s1, recv1).BindSource(s2, recv2);
  }

  OperatorId out = b.Add(std::make_unique<OutputOp>(),
                         static_cast<FragmentId>(opts.fragments - 1));
  b.Connect(prev_forward, out).SetRoot(out);

  auto graph = b.Build();
  THEMIS_CHECK(graph.ok());
  built.graph = std::move(graph).TakeValue();
  return built;
}

BuiltQuery WorkloadFactory::MakeComplex(ComplexKind kind, QueryId q,
                                        const ComplexQueryOptions& opts) {
  switch (kind) {
    case ComplexKind::kAvgAll:
      return MakeAvgAll(q, opts);
    case ComplexKind::kTop5:
      return MakeTop5(q, opts);
    case ComplexKind::kCov:
      return MakeCov(q, opts);
  }
  return {};
}

BuiltQuery WorkloadFactory::MakeRandomComplex(QueryId q,
                                              const ComplexQueryOptions& opts) {
  switch (rng_.UniformInt(0, 2)) {
    case 0:
      return MakeAvgAll(q, opts);
    case 1:
      return MakeTop5(q, opts);
    default:
      return MakeCov(q, opts);
  }
}

}  // namespace themis
