#include "workload/planetlab.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace themis {

PlanetLabTrace::PlanetLabTrace(Rng rng, PlanetLabTraceOptions options)
    : rng_(rng), options_(options), state_(options.mean) {}

double PlanetLabTrace::Next(SimTime now) {
  // Slow diurnal drift of the process mean (cached per `now`: all tuples of
  // one batch share their generation time).
  if (now != level_now_) {
    double phase = 2.0 * std::numbers::pi * static_cast<double>(now) /
                   static_cast<double>(options_.diurnal_period);
    level_now_ = now;
    level_ = options_.mean + options_.diurnal_amp * std::sin(phase);
  }
  double level = level_;

  // AR(1) step around the drifting level.
  state_ = level + options_.phi * (state_ - level) +
           rng_.Gaussian(0.0, options_.sigma);

  double v = state_;
  // Heavy-tailed spikes: short bursts of high utilisation.
  if (rng_.Bernoulli(options_.spike_prob)) {
    v += rng_.Exponential(options_.spike_mag);
  }
  return std::clamp(v, options_.min_value, options_.max_value);
}

}  // namespace themis
