// Table 1 workload factory: the aggregate workload (AVG, MAX, COUNT over one
// source) and the complex data-centre monitoring workload (AVG-all, TOP-5,
// COV) split into fragments for multi-site deployment exactly as §7
// describes:
//   * AVG-all: every fragment connects its own sources and computes a
//     partial average; a root fragment aggregates partials (tree).
//   * TOP-5 / COV: fragments form a chain, each processing its own sources
//     incrementally and merging with the upstream fragment's output; the
//     last fragment emits the query result.
#ifndef THEMIS_WORKLOAD_WORKLOADS_H_
#define THEMIS_WORKLOAD_WORKLOADS_H_

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "runtime/operators/aggregates.h"
#include "runtime/query_graph.h"
#include "workload/sources.h"

namespace themis {

/// A query graph plus the source models to attach when deploying it.
struct BuiltQuery {
  std::unique_ptr<QueryGraph> graph;
  std::map<SourceId, SourceModel> sources;
};

/// Options for the single-fragment aggregate workload.
struct AggregateQueryOptions {
  SimDuration window = Seconds(1);      ///< `[Range 1 sec]`
  Dataset dataset = Dataset::kGaussian;
  double source_rate = 400.0;           ///< Table 2 local test-bed
  int batches_per_sec = 5;
  double count_threshold = 50.0;        ///< COUNT `Having t.v >= 50`
};

/// Options for the complex (data-centre monitoring) workload.
struct ComplexQueryOptions {
  int fragments = 1;
  /// Sources per fragment: AVG-all uses this directly (paper: 10); TOP-5
  /// uses it as the total of CPU+memory streams (paper: 20, i.e. 10 pairs);
  /// COV always uses 2 per fragment.
  int sources_per_fragment = 10;
  SimDuration window = Seconds(1);
  Dataset dataset = Dataset::kPlanetLab;
  double source_rate = 150.0;           ///< Table 2 Emulab test-bed
  int batches_per_sec = 3;
  double burst_prob = 0.0;              ///< §7.4 burstiness
  double burst_multiplier = 10.0;
  /// Diurnal modulation of every source (see SourceModel); 0 = off.
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = Seconds(60);
  size_t top_k = 5;
  double mem_threshold_kb = 100000.0;   ///< TOP-5 `mem.free >= 100,000`
};

/// Complex-workload query kinds (used by the mixed deployments of §7.2/7.3).
enum class ComplexKind { kAvgAll, kTop5, kCov };
std::string ComplexKindName(ComplexKind k);

/// \brief Builds Table 1 queries with globally unique source ids.
///
/// The factory owns a source-id allocator and an RNG; queries built by one
/// factory can be co-deployed in one Fsps without id collisions.
class WorkloadFactory {
 public:
  explicit WorkloadFactory(uint64_t seed = 1) : rng_(seed) {}

  // Aggregate workload (single fragment, one source).
  BuiltQuery MakeAvg(QueryId q, const AggregateQueryOptions& opts = {});
  BuiltQuery MakeMax(QueryId q, const AggregateQueryOptions& opts = {});
  BuiltQuery MakeCount(QueryId q, const AggregateQueryOptions& opts = {});

  // Complex workload (multi-fragment).
  BuiltQuery MakeAvgAll(QueryId q, const ComplexQueryOptions& opts = {});
  BuiltQuery MakeTop5(QueryId q, const ComplexQueryOptions& opts = {});
  BuiltQuery MakeCov(QueryId q, const ComplexQueryOptions& opts = {});
  /// One of the three complex kinds, chosen uniformly.
  BuiltQuery MakeRandomComplex(QueryId q, const ComplexQueryOptions& opts);
  BuiltQuery MakeComplex(ComplexKind kind, QueryId q,
                         const ComplexQueryOptions& opts);

  SourceId AllocateSourceId() { return next_source_++; }
  Rng* rng() { return &rng_; }

 private:
  BuiltQuery MakeAggregate(QueryId q, AggregateKind kind,
                           const AggregateQueryOptions& opts);

  SourceId next_source_ = 0;
  Rng rng_;
};

}  // namespace themis

#endif  // THEMIS_WORKLOAD_WORKLOADS_H_
