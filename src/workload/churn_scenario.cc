#include "workload/churn_scenario.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace themis {

namespace {

// Triangle wave in [-1, 1] with period `period`, evaluated at `t + phase`.
// Pure integer/rational arithmetic — bit-identical on every platform,
// unlike libm sin.
double TriangleWave(SimTime t, SimDuration period, SimDuration phase) {
  SimTime pos = (t + phase) % period;
  double frac = static_cast<double>(pos) / static_cast<double>(period);
  // 0 -> -1, 0.25 -> 0, 0.5 -> +1, 0.75 -> 0, 1 -> -1.
  return frac < 0.5 ? 4.0 * frac - 1.0 : 3.0 - 4.0 * frac;
}

// Draws a WAN pair (nodes in different clusters) not yet in `used`.
// Deterministic in the rng stream; gives up after a bounded number of
// re-draws (tiny federations) and then allows a duplicate. Requires at
// least two clusters, so a valid fallback pair always exists.
std::pair<NodeId, NodeId> DrawWanPair(
    const ScaleScenario& base, Rng* rng,
    std::set<std::pair<NodeId, NodeId>>* used) {
  int nodes = base.options.nodes;
  // Fallback: node 0 and the first node of the next cluster (clusters are
  // contiguous id blocks).
  std::pair<NodeId, NodeId> pair{0, 0};
  for (int n = 1; n < nodes; ++n) {
    if (base.cluster_of_node[n] != base.cluster_of_node[0]) {
      pair.second = n;
      break;
    }
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    NodeId a = static_cast<NodeId>(rng->UniformInt(0, nodes - 1));
    NodeId b = static_cast<NodeId>(rng->UniformInt(0, nodes - 1));
    if (a == b) continue;
    if (base.cluster_of_node[a] == base.cluster_of_node[b]) continue;
    if (a > b) std::swap(a, b);
    pair = {a, b};
    if (used->insert(pair).second) return pair;
  }
  return pair;
}

}  // namespace

ChurnScenario MakeChurnScenario(const ChurnScenarioOptions& options) {
  THEMIS_CHECK(options.downtime > 0 && options.crash_interval > 0);
  THEMIS_CHECK(options.flap_period > 0 && options.drift_step > 0);
  THEMIS_CHECK(options.drift_period > 0);
  THEMIS_CHECK(options.drift_amplitude >= 0.0 &&
               options.drift_amplitude < 1.0);

  ChurnScenario scenario;
  scenario.options = options;
  scenario.base = MakeScaleScenario(options.scale);
  const ScaleScenario& base = scenario.base;
  const int nodes = options.scale.nodes;
  const int clusters = options.scale.clusters;

  // Churn schedule rng: forked off the scenario seed with a fixed tag so
  // adding churn never perturbs the base scenario's query stream.
  Rng rng(options.scale.seed ^ 0xc4a27fb1u);

  // --- crash waves ---------------------------------------------------------
  std::vector<int> cluster_size(clusters, 0);
  for (int n = 0; n < nodes; ++n) cluster_size[base.cluster_of_node[n]] += 1;
  std::vector<int> min_alive(clusters);
  for (int c = 0; c < clusters; ++c) {
    int floor_alive = static_cast<int>(
        cluster_size[c] * options.min_cluster_alive_fraction + 0.999999);
    min_alive[c] = std::max(floor_alive, 1);
  }
  // Liveness at generation time: node n is down at time t iff
  // dead_until[n] > t (a crash at t makes it down through t + downtime).
  std::vector<SimTime> dead_until(nodes, -1);

  for (int wave = 0; wave < options.crash_waves; ++wave) {
    SimTime t = options.churn_start + wave * options.crash_interval;
    if (t > options.churn_horizon) break;
    std::vector<int> cluster_alive(clusters, 0);
    for (int n = 0; n < nodes; ++n) {
      if (dead_until[n] <= t) cluster_alive[base.cluster_of_node[n]] += 1;
    }
    int crashed = 0;
    for (int attempt = 0; attempt < nodes * 4; ++attempt) {
      if (crashed >= options.crashes_per_wave) break;
      NodeId victim = static_cast<NodeId>(rng.UniformInt(0, nodes - 1));
      int c = base.cluster_of_node[victim];
      if (dead_until[victim] > t || cluster_alive[c] <= min_alive[c]) continue;
      dead_until[victim] = t + options.downtime;
      cluster_alive[c] -= 1;
      scenario.events.push_back({t, ChurnEventKind::kCrash, victim});
      scenario.events.push_back(
          {t + options.downtime, ChurnEventKind::kRestore, victim});
      ++crashed;
    }
  }

  // --- link dynamics -------------------------------------------------------
  // Drifting latencies stay strictly positive: amplitude < 1 bounds the
  // triangle wave above zero, and the floor below adds a hard clamp. A
  // single-cluster federation has no WAN links to perturb.
  const int flapping = clusters < 2 ? 0 : options.flapping_links;
  const int drifting = clusters < 2 ? 0 : options.drifting_links;
  const SimDuration wan = options.scale.wan_latency;
  const SimDuration lat_floor = std::max<SimDuration>(wan / 4, kMillisecond);
  std::set<std::pair<NodeId, NodeId>> used_links;

  for (int l = 0; l < flapping; ++l) {
    auto [a, b] = DrawWanPair(base, &rng, &used_links);
    SimDuration high = static_cast<SimDuration>(
        static_cast<double>(wan) * options.flap_multiplier);
    int toggle = 0;
    for (SimTime t = options.churn_start + options.flap_period;
         t <= options.churn_horizon; t += options.flap_period) {
      SimDuration lat = (toggle % 2 == 0) ? high : wan;
      scenario.events.push_back(
          {t, ChurnEventKind::kSetLinkLatency, a, b, lat});
      ++toggle;
    }
  }

  for (int l = 0; l < drifting; ++l) {
    auto [a, b] = DrawWanPair(base, &rng, &used_links);
    SimDuration phase = static_cast<SimDuration>(
        rng.UniformInt(0, options.drift_period - 1));
    for (SimTime t = options.churn_start; t <= options.churn_horizon;
         t += options.drift_step) {
      double wave = TriangleWave(t, options.drift_period, phase);
      double factor = 1.0 + options.drift_amplitude * wave;
      SimDuration lat =
          static_cast<SimDuration>(static_cast<double>(wan) * factor);
      scenario.events.push_back({t, ChurnEventKind::kSetLinkLatency, a, b,
                                 std::max(lat, lat_floor)});
    }
  }

  // Time-sorted replay order; equal-time events keep generation order
  // (crashes and their wave-mates first, then link updates), which the
  // stable sort preserves deterministically.
  std::stable_sort(scenario.events.begin(), scenario.events.end(),
                   [](const ChurnEvent& x, const ChurnEvent& y) {
                     return x.time < y.time;
                   });
  return scenario;
}

ChurnScenario MakeChurnBurstScenario(ChurnScenarioOptions options,
                                     double burst_prob,
                                     double burst_multiplier) {
  THEMIS_CHECK(burst_prob >= 0.0 && burst_prob <= 1.0);
  THEMIS_CHECK(burst_multiplier >= 1.0);
  options.scale.burst_prob = burst_prob;
  options.scale.burst_multiplier = burst_multiplier;
  return MakeChurnScenario(options);
}

}  // namespace themis
