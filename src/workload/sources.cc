#include "workload/sources.h"

#include <algorithm>
#include <cmath>

namespace themis {

SourceDriver::SourceDriver(SourceId source, QueryId query, OperatorId target_op,
                           int target_port, SourceModel model,
                           EventQueue* queue, Rng rng,
                           std::function<void(Batch)> deliver, BatchPool* pool)
    : source_(source),
      query_(query),
      target_op_(target_op),
      target_port_(target_port),
      model_(model),
      queue_(queue),
      rng_(rng),
      deliver_(std::move(deliver)),
      pool_(pool) {
  if (!model_.payload) {
    value_gen_ = ValueGenerator::Make(model_.dataset, rng_.Fork(), model_.mean);
  }
  int bps = std::max(model_.batches_per_sec, 1);
  period_ = kSecond / bps;
  base_batch_size_ = static_cast<size_t>(
      std::llround(std::max(model_.tuples_per_sec / bps, 1.0)));
}

void SourceDriver::ArmGenerate(SimTime at) {
  next_generate_at_ = at;
  queue_->Schedule(at, [this, gen = generation_] { GenerateBatch(gen); });
}

void SourceDriver::Start() {
  if (started_) return;
  started_ = true;
  // Stagger the first emission so sources do not fire in lockstep.
  SimDuration offset =
      static_cast<SimDuration>(rng_.UniformInt(0, period_ - 1));
  ArmGenerate(queue_->now() + offset);
}

void SourceDriver::Rehome(EventQueue* queue, BatchPool* pool) {
  pool_ = pool;  // cross-pool Release is fine: batches recycle where they land
  if (queue == queue_) return;
  queue_ = queue;
  ++generation_;  // neuter the emission still queued on the old shard
  if (started_ && !stopped_) {
    ArmGenerate(next_generate_at_);
  }
}

size_t SourceDriver::CurrentBatchSize() {
  if (model_.burst_prob > 0.0) {
    SimTime second = queue_->now() / kSecond;
    if (second > burst_rolled_until_) {
      burst_rolled_until_ = second;
      bursting_ = rng_.Bernoulli(model_.burst_prob);
    }
  }
  // Diurnal factor: a pure-integer-phase triangle wave in
  // [1 - amplitude, 1 + amplitude] (phase 0 -> trough, period/2 -> peak).
  // 1.0 exactly when the knob is off, so the historical arithmetic below is
  // untouched byte-for-byte.
  double diurnal = 1.0;
  if (model_.diurnal_amplitude > 0.0 && model_.diurnal_period > 0) {
    SimTime phase = queue_->now() % model_.diurnal_period;
    SimTime half = model_.diurnal_period / 2;
    double tri = phase <= half
                     ? -1.0 + 2.0 * static_cast<double>(phase) /
                                  static_cast<double>(half)
                     : 1.0 - 2.0 * static_cast<double>(phase - half) /
                                 static_cast<double>(half);
    diurnal = 1.0 + model_.diurnal_amplitude * tri;
  }
  if (!bursting_) {
    if (diurnal == 1.0) return base_batch_size_;  // precomputed constant rate
    double scaled = static_cast<double>(base_batch_size_) * diurnal;
    return static_cast<size_t>(std::llround(std::max(scaled, 1.0)));
  }
  double per_batch = model_.tuples_per_sec * model_.burst_multiplier /
                     std::max(model_.batches_per_sec, 1) * diurnal;
  return static_cast<size_t>(std::llround(std::max(per_batch, 1.0)));
}

void SourceDriver::GenerateBatch(uint64_t gen) {
  if (gen != generation_) return;  // stale event from before a re-homing
  if (stopped_) return;
  SimTime now = queue_->now();
  size_t n = CurrentBatchSize();

  // Generate straight into a (pooled) batch buffer; source tuples carry
  // sic == 0 until Eq. (1) stamping at node ingress.
  const bool columnar = model_.columnar && columnar_ok_;
  Batch b;
  if (columnar) {
    b = pool_ != nullptr ? pool_->AcquireColumnar() : Batch{};
    if (b.columnar == nullptr) b.columnar = std::make_unique<ColumnarBlock>();
    b.columnar->ReserveRows(n);
  } else {
    b = pool_ != nullptr ? pool_->Acquire() : Batch{};
    b.tuples.reserve(n);
  }
  b.header.query_id = query_;
  b.header.dest_op = target_op_;
  b.header.dest_port = target_port_;
  b.header.created = now;
  b.header.source = source_;
  Tuple scratch;
  for (size_t i = 0; i < n; ++i) {
    if (b.is_columnar()) {
      if (!model_.payload) {
        // Same generator call in the same sequence as the row loop — the
        // emitted value bits are identical in either representation.
        b.columnar->AppendRow(now, 0.0, value_gen_->Next(now));
        continue;
      }
      scratch.timestamp = now;
      scratch.sic = 0.0;
      scratch.values = model_.payload(now);
      if (b.columnar->AppendTuple(scratch)) continue;
      // Field-kind clash: this payload cannot go columnar. Demote the batch
      // to rows mid-flight (AppendTuple left the block untouched) and stop
      // attempting columnar generation for this source.
      b.columnar->MaterializeInto(&b.tuples);
      if (pool_ != nullptr) {
        pool_->ReleaseBlock(std::move(b.columnar));
      } else {
        b.columnar.reset();
      }
      columnar_ok_ = false;
      b.tuples.push_back(std::move(scratch));
      continue;
    }
    Tuple& t = b.tuples.emplace_back();
    t.timestamp = now;
    if (model_.payload) {
      t.values = model_.payload(now);
    } else {
      t.values.push_back(value_gen_->Next(now));
    }
  }
  tuples_generated_ += n;
  b.RefreshHeaderSic();
  deliver_(std::move(b));

  ArmGenerate(queue_->now() + period_);
}

}  // namespace themis
