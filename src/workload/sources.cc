#include "workload/sources.h"

#include <algorithm>
#include <cmath>

namespace themis {

SourceDriver::SourceDriver(SourceId source, QueryId query, OperatorId target_op,
                           int target_port, SourceModel model,
                           EventQueue* queue, Rng rng,
                           std::function<void(Batch)> deliver)
    : source_(source),
      query_(query),
      target_op_(target_op),
      target_port_(target_port),
      model_(model),
      queue_(queue),
      rng_(rng),
      deliver_(std::move(deliver)) {
  if (!model_.payload) {
    value_gen_ = ValueGenerator::Make(model_.dataset, rng_.Fork(), model_.mean);
  }
  int bps = std::max(model_.batches_per_sec, 1);
  period_ = kSecond / bps;
}

void SourceDriver::Start() {
  if (started_) return;
  started_ = true;
  // Stagger the first emission so sources do not fire in lockstep.
  SimDuration offset =
      static_cast<SimDuration>(rng_.UniformInt(0, period_ - 1));
  queue_->ScheduleAfter(offset, [this] { GenerateBatch(); });
}

size_t SourceDriver::CurrentBatchSize() {
  SimTime now = queue_->now();
  if (model_.burst_prob > 0.0) {
    SimTime second = now / kSecond;
    if (second > burst_rolled_until_) {
      burst_rolled_until_ = second;
      bursting_ = rng_.Bernoulli(model_.burst_prob);
    }
  }
  double rate = model_.tuples_per_sec;
  if (bursting_) rate *= model_.burst_multiplier;
  double per_batch = rate / std::max(model_.batches_per_sec, 1);
  return static_cast<size_t>(std::llround(std::max(per_batch, 1.0)));
}

void SourceDriver::GenerateBatch() {
  if (stopped_) return;
  SimTime now = queue_->now();
  size_t n = CurrentBatchSize();

  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.timestamp = now;
    t.sic = 0.0;  // stamped per Eq. (1) at node ingress
    if (model_.payload) {
      t.values = model_.payload(now);
    } else {
      t.values.push_back(value_gen_->Next(now));
    }
    tuples.push_back(std::move(t));
  }
  tuples_generated_ += n;

  Batch b = MakeBatch(query_, target_op_, target_port_, now, std::move(tuples));
  b.header.source = source_;
  deliver_(std::move(b));

  queue_->ScheduleAfter(period_, [this] { GenerateBatch(); });
}

}  // namespace themis
