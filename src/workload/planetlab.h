// Synthetic PlanetLab-like utilisation traces.
//
// The paper replays CPU/memory measurements from PlanetLab nodes (CoTop
// [36]). That dataset is not redistributable, so we substitute an AR(1)
// process with heavy-tailed load spikes and slow diurnal drift — the
// properties that make the real-world dataset behave differently from the
// i.i.d. synthetic ones in Fig. 6/7 (shedding visibly changes MAX/COV
// results because the signal is non-stationary and autocorrelated). See
// DESIGN.md §2.
#ifndef THEMIS_WORKLOAD_PLANETLAB_H_
#define THEMIS_WORKLOAD_PLANETLAB_H_

#include "common/rng.h"
#include "common/time_types.h"
#include "workload/distributions.h"

namespace themis {

/// Tuning parameters of the synthetic trace.
struct PlanetLabTraceOptions {
  double mean = 50.0;        ///< long-run CPU utilisation level (%)
  double phi = 0.95;         ///< AR(1) autocorrelation per step
  double sigma = 4.0;        ///< innovation std-dev
  double spike_prob = 0.01;  ///< per-sample probability of a load spike
  double spike_mag = 40.0;   ///< mean spike magnitude (exponential)
  SimDuration diurnal_period = Seconds(120);  ///< compressed "day" length
  double diurnal_amp = 10.0;                  ///< drift amplitude
  double min_value = 0.0;
  double max_value = 100.0;
};

/// \brief AR(1)+spikes+drift utilisation trace generator.
class PlanetLabTrace : public ValueGenerator {
 public:
  PlanetLabTrace(Rng rng, PlanetLabTraceOptions options = {});

  double Next(SimTime now) override;

 private:
  Rng rng_;
  PlanetLabTraceOptions options_;
  double state_;
  // The diurnal level depends only on `now`, and every tuple of a batch is
  // generated at the same `now` — cache it so sin() runs once per batch.
  SimTime level_now_ = -1;
  double level_ = 0.0;
};

}  // namespace themis

#endif  // THEMIS_WORKLOAD_PLANETLAB_H_
