// Source model and driver. A SourceDriver is a simulated data source: it
// emits fixed-size batches at a configurable rate (Table 2: e.g. 400
// tuples/sec in 5 batches/sec of 80 tuples each), optionally with bursts
// (§7.4: 10% of the time at 10x the normal rate), and delivers them to the
// FSPS node hosting the bound receiver operator.
#ifndef THEMIS_WORKLOAD_SOURCES_H_
#define THEMIS_WORKLOAD_SOURCES_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time_types.h"
#include "runtime/batch.h"
#include "runtime/batch_pool.h"
#include "sim/event_queue.h"
#include "workload/distributions.h"

namespace themis {

/// Builds the payload of one tuple at generation time.
using PayloadFn = std::function<ValueList(SimTime now)>;

/// Declarative description of one source.
struct SourceModel {
  double tuples_per_sec = 400.0;
  int batches_per_sec = 5;
  /// Payload builder; if null, emits a single-field payload drawn from
  /// `dataset`.
  PayloadFn payload = nullptr;
  Dataset dataset = Dataset::kGaussian;
  double mean = 50.0;
  /// Burstiness (§7.4): probability that any given second runs at
  /// `burst_multiplier` times the base rate.
  double burst_prob = 0.0;
  double burst_multiplier = 10.0;
  /// Diurnal rate modulation: the base rate is scaled by a triangle wave in
  /// [1 - amplitude, 1 + amplitude] of period `diurnal_period` (a pure-
  /// integer waveform, bit-identical across platforms — same idea as the
  /// churn scenario's latency drift). 0 (default) leaves the constant-rate
  /// path untouched, byte-for-byte. Bursts multiply on top, so a burst at
  /// the diurnal peak is the autoscaler's worst case.
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = Seconds(60);
  /// Emit batches in columnar (SoA) representation instead of row tuples.
  /// Payload values and delivery order are identical either way (the value
  /// generator is consumed in the same sequence); a payload whose field
  /// kinds vary between tuples demotes the driver back to rows.
  bool columnar = false;
};

/// \brief Event-driven batch generator for one source.
class SourceDriver {
 public:
  /// \param deliver sink receiving the generated batches (typically
  ///        Fsps-provided, shipping them over the simulated network)
  /// \param pool optional free-list (usually the destination node's) that
  ///        generated batches draw their tuple buffers from
  SourceDriver(SourceId source, QueryId query, OperatorId target_op,
               int target_port, SourceModel model, EventQueue* queue, Rng rng,
               std::function<void(Batch)> deliver, BatchPool* pool = nullptr);

  /// Starts periodic generation; emits `batches_per_sec` batches per second.
  void Start();

  /// Stops generation after the currently scheduled batch (idempotent). The
  /// driver object stays alive so pending timer events remain valid.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  /// Moves the driver to another shard's queue and batch pool (elastic
  /// re-balance: a driver follows its destination node's shard so its
  /// deliveries stay shard-local). Only legal between engine runs. The
  /// generation chain re-arms on the new queue at its original deadline —
  /// the emission schedule is unchanged — and the event left on the old
  /// queue is neutered by a generation bump.
  void Rehome(EventQueue* queue, BatchPool* pool);
  EventQueue* queue() const { return queue_; }

  SourceId source_id() const { return source_; }
  QueryId query_id() const { return query_; }
  OperatorId target_op() const { return target_op_; }
  uint64_t tuples_generated() const { return tuples_generated_; }

 private:
  /// `gen` guards against stale events after Rehome: an emission armed
  /// before a migration may fire on the old shard's thread and must return
  /// after the generation check without touching other members.
  void GenerateBatch(uint64_t gen);
  /// Arms the next emission at `at` on the current queue.
  void ArmGenerate(SimTime at);
  size_t CurrentBatchSize();

  SourceId source_;
  QueryId query_;
  OperatorId target_op_;
  int target_port_;
  SourceModel model_;
  EventQueue* queue_;
  Rng rng_;
  std::function<void(Batch)> deliver_;
  BatchPool* pool_;
  std::unique_ptr<ValueGenerator> value_gen_;
  SimDuration period_;
  size_t base_batch_size_ = 1;  ///< batch size at the non-burst rate
  // Burst state: whether the current second is bursty, re-rolled per second.
  SimTime burst_rolled_until_ = -1;
  bool bursting_ = false;
  uint64_t tuples_generated_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  // Cleared after a payload kind-clash: this source's payloads cannot be
  // stored columnar, so later batches skip the attempt.
  bool columnar_ok_ = true;
  // Elastic migration state (see Node's counterpart).
  uint64_t generation_ = 0;
  SimTime next_generate_at_ = 0;
};

}  // namespace themis

#endif  // THEMIS_WORKLOAD_SOURCES_H_
