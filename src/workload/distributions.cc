#include "workload/distributions.h"

#include "workload/planetlab.h"

namespace themis {

std::string DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kGaussian:
      return "gaussian";
    case Dataset::kUniform:
      return "uniform";
    case Dataset::kExponential:
      return "exponential";
    case Dataset::kMixed:
      return "mixed";
    case Dataset::kPlanetLab:
      return "planetlab";
  }
  return "?";
}

namespace {

class GaussianGen : public ValueGenerator {
 public:
  GaussianGen(Rng rng, double mean) : rng_(rng), mean_(mean) {}
  double Next(SimTime) override { return rng_.Gaussian(mean_, mean_ / 5.0); }

 private:
  Rng rng_;
  double mean_;
};

class UniformGen : public ValueGenerator {
 public:
  UniformGen(Rng rng, double mean) : rng_(rng), mean_(mean) {}
  double Next(SimTime) override { return rng_.Uniform(0.0, 2.0 * mean_); }

 private:
  Rng rng_;
  double mean_;
};

class ExponentialGen : public ValueGenerator {
 public:
  ExponentialGen(Rng rng, double mean) : rng_(rng), mean_(mean) {}
  double Next(SimTime) override { return rng_.Exponential(mean_); }

 private:
  Rng rng_;
  double mean_;
};

// "values randomly chosen from any of the previous distributions" (§7).
class MixedGen : public ValueGenerator {
 public:
  MixedGen(Rng rng, double mean)
      : rng_(rng),
        gaussian_(rng_.Fork(), mean),
        uniform_(rng_.Fork(), mean),
        exponential_(rng_.Fork(), mean) {}

  double Next(SimTime now) override {
    switch (rng_.UniformInt(0, 2)) {
      case 0:
        return gaussian_.Next(now);
      case 1:
        return uniform_.Next(now);
      default:
        return exponential_.Next(now);
    }
  }

 private:
  Rng rng_;
  GaussianGen gaussian_;
  UniformGen uniform_;
  ExponentialGen exponential_;
};

}  // namespace

std::unique_ptr<ValueGenerator> ValueGenerator::Make(Dataset d, Rng rng,
                                                     double mean) {
  switch (d) {
    case Dataset::kGaussian:
      return std::make_unique<GaussianGen>(rng, mean);
    case Dataset::kUniform:
      return std::make_unique<UniformGen>(rng, mean);
    case Dataset::kExponential:
      return std::make_unique<ExponentialGen>(rng, mean);
    case Dataset::kMixed:
      return std::make_unique<MixedGen>(rng, mean);
    case Dataset::kPlanetLab: {
      PlanetLabTraceOptions opts;
      opts.mean = mean;
      return std::make_unique<PlanetLabTrace>(rng, opts);
    }
  }
  return nullptr;
}

}  // namespace themis
