// Churn scenario generator: the dynamic-topology counterpart of
// workload/scale_scenario.h. A ChurnScenario is a ScaleScenario (WAN-of-LANs
// federation plus staggered query arrivals) overlaid with a deterministic,
// seed-derived schedule of topology events — crash waves with later
// restores, flapping WAN links, and a slow diurnal-style latency drift —
// the PlanetLab conditions the paper's static experiments abstract away.
//
// Like the scale scenario, this is pure data: the federation layer
// (federation/churn_federation.h) replays the schedule through the Fsps
// churn control plane (CrashNode / RestoreNode / SetLinkLatency) between
// run segments. The generator enforces the invariants the runtime needs:
// every cluster keeps a live majority through every wave (so orphaned
// fragments always find a same-shard home), every emitted latency is
// strictly positive (so the sharded engine's epoch width never collapses),
// and the drift waveform is a pure-integer triangle wave, not libm sin, so
// the schedule is bit-identical across platforms.
#ifndef THEMIS_WORKLOAD_CHURN_SCENARIO_H_
#define THEMIS_WORKLOAD_CHURN_SCENARIO_H_

#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"
#include "workload/scale_scenario.h"

namespace themis {

/// Knobs of the churn overlay; defaults give the mix used by
/// bench_churn_federation. `scale.seed` also seeds the churn schedule.
struct ChurnScenarioOptions {
  ScaleScenarioOptions scale;  ///< base federation + query arrivals

  /// First churn event; leave some quiet ramp-up so queries deploy and
  /// rates estimate before the first failure.
  SimTime churn_start = Seconds(4);
  /// Schedule horizon: no churn event is generated past this point.
  SimTime churn_horizon = Seconds(24);

  // Crash waves: every `crash_interval`, `crashes_per_wave` live nodes
  // fail together and rejoin `downtime` later.
  int crash_waves = 3;
  int crashes_per_wave = 2;
  SimDuration crash_interval = Seconds(5);
  SimDuration downtime = Seconds(3);
  /// Every cluster keeps at least this fraction of its nodes alive at all
  /// times (rounded up, minimum 1): re-placement always has a same-shard
  /// candidate.
  double min_cluster_alive_fraction = 0.5;

  // Flapping links: WAN links that bounce between their base latency and
  // `flap_multiplier` times it, every `flap_period`.
  int flapping_links = 3;
  SimDuration flap_period = Seconds(3);
  double flap_multiplier = 4.0;

  // Diurnal-style drift: WAN links whose latency follows a triangle wave
  // of relative amplitude `drift_amplitude` and period `drift_period`,
  // re-sampled every `drift_step`.
  int drifting_links = 6;
  SimDuration drift_step = Seconds(2);
  SimDuration drift_period = Seconds(16);
  double drift_amplitude = 0.5;
};

enum class ChurnEventKind {
  kCrash,           ///< node `a` fails
  kRestore,         ///< node `a` rejoins
  kSetLinkLatency,  ///< link (a, b) moves to `latency`
};

/// One scheduled topology event.
struct ChurnEvent {
  SimTime time = 0;
  ChurnEventKind kind = ChurnEventKind::kCrash;
  NodeId a = kInvalidId;
  NodeId b = kInvalidId;
  SimDuration latency = 0;  ///< kSetLinkLatency only
};

/// \brief A fully materialised churn scenario (pure data, seed-
/// deterministic). `events` is sorted by time; ties keep generation order.
struct ChurnScenario {
  ChurnScenarioOptions options;
  ScaleScenario base;
  std::vector<ChurnEvent> events;
};

/// Builds the scenario from `options` (deterministic in
/// `options.scale.seed`).
ChurnScenario MakeChurnScenario(const ChurnScenarioOptions& options = {});

/// \brief The churn + burst interaction scenario (§7.4 under partial
/// outage): the same seed-derived churn schedule with bursty sources
/// layered onto the base federation, so crash waves land while the
/// survivors are already absorbing 10x load spikes and the shedders are
/// stressed hardest.
///
/// Equivalent to MakeChurnScenario with `options.scale.burst_*` set
/// (`burst_prob` / `burst_multiplier` override whatever the caller left
/// there); kept as its own entry point so benches and tests name the
/// composed stress scenario explicitly. Deterministic in
/// `options.scale.seed` — the burst overlay draws from each source
/// driver's own stream, never from the schedule rng, so the topology
/// events are identical to the burst-free scenario's.
ChurnScenario MakeChurnBurstScenario(ChurnScenarioOptions options = {},
                                     double burst_prob = 0.10,
                                     double burst_multiplier = 10.0);

}  // namespace themis

#endif  // THEMIS_WORKLOAD_CHURN_SCENARIO_H_
