#include "workload/scale_scenario.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace themis {

int ScaleSourcesPerFragment(ComplexKind kind, int sources_per_fragment) {
  switch (kind) {
    case ComplexKind::kCov:
      return 2;
    case ComplexKind::kTop5:
      return 2 * sources_per_fragment;
    default:
      return sources_per_fragment;
  }
}

ScaleScenario MakeScaleScenario(const ScaleScenarioOptions& options) {
  THEMIS_CHECK(options.nodes >= 1);
  THEMIS_CHECK(options.clusters >= 1 && options.clusters <= options.nodes);
  THEMIS_CHECK(options.queries >= 1 && options.arrival_wave >= 1);
  THEMIS_CHECK(options.fragments_min >= 1 &&
               options.fragments_max >= options.fragments_min);

  ScaleScenario scenario;
  scenario.options = options;

  // Contiguous node blocks per cluster: nodes of one LAN stay adjacent, so
  // cluster -> shard maps cleanly onto contiguous id ranges.
  scenario.cluster_of_node.resize(options.nodes);
  for (int n = 0; n < options.nodes; ++n) {
    scenario.cluster_of_node[n] =
        static_cast<int>(static_cast<int64_t>(n) * options.clusters /
                         options.nodes);
  }

  Rng rng(options.seed);
  scenario.queries.reserve(options.queries);
  for (int q = 0; q < options.queries; ++q) {
    ScaleQuerySpec spec;
    spec.id = q;
    spec.kind = static_cast<ComplexKind>(rng.UniformInt(0, 2));
    spec.fragments = static_cast<int>(
        rng.UniformInt(options.fragments_min, options.fragments_max));
    spec.arrival = (q / options.arrival_wave) * options.arrival_interval;
    // Round-robin home clusters keep per-cluster load (and therefore
    // per-shard work) balanced.
    spec.home_cluster = q % options.clusters;
    if (options.clusters > 1 && spec.fragments > 1 &&
        rng.NextDouble() < options.wan_query_ratio) {
      spec.peer_cluster =
          static_cast<int>((spec.home_cluster + 1 +
                            rng.UniformInt(0, options.clusters - 2)) %
                           options.clusters);
    }
    scenario.queries.push_back(spec);

    scenario.total_source_rate +=
        static_cast<double>(
            ScaleSourcesPerFragment(spec.kind, options.sources_per_fragment)) *
        spec.fragments * options.source_rate;
  }
  return scenario;
}

}  // namespace themis
