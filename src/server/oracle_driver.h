// Deterministic driver for oracle runs: advances a ManualClock through the
// merged timeline of arrivals, paced admissions and shed ticks, quiescing
// the pipeline at every instant — reproducing the discrete-event schedule on
// the server machinery (0 workers: caller-driven; >=1 workers: real threads
// synchronized at each instant).
#ifndef THEMIS_SERVER_ORACLE_DRIVER_H_
#define THEMIS_SERVER_ORACLE_DRIVER_H_

#include <vector>

#include "runtime/clock.h"
#include "server/server_pipeline.h"

namespace themis {

/// A source batch to Push at an absolute time.
struct TimedBatch {
  SimTime at = 0;
  Batch batch;
};

/// Drives `pipeline` (started, pace_admission + kModeled accounting, on
/// `clock`) through `arrivals` (sorted ascending by `at`; same-time order
/// is the injection order) until simulated time `until` inclusive. Ticks
/// win ties against arrivals and admissions, like the event queue schedules
/// them. Consumes the arrival batches.
void DriveDeterministic(ServerPipeline* pipeline, ManualClock* clock,
                        std::vector<TimedBatch>* arrivals, SimTime until);

}  // namespace themis

#endif  // THEMIS_SERVER_ORACLE_DRIVER_H_
