#include "server/server_pipeline.h"

#include <algorithm>
#include <utility>

#include "runtime/operator.h"

namespace themis {

class ServerPipeline::IngressTask : public Task {
 public:
  explicit IngressTask(ServerPipeline* owner) : owner_(owner) {}
  RunStatus RunSlice() override { return owner_->IngressSlice(); }

 private:
  ServerPipeline* owner_;
};

ServerPipeline::ServerPipeline(ServerOptions options, Clock* clock,
                               std::unique_ptr<Shedder> shedder)
    : options_(options),
      clock_(clock),
      shedder_(std::move(shedder)),
      sched_(options.workers),
      stamper_(options.stw),
      detector_(options.headroom),
      ingress_(std::make_unique<IngressTask>(this)) {
  ib_.set_pool(&pool_);
}

ServerPipeline::~ServerPipeline() { Stop(); }

void ServerPipeline::AddQuery(const QueryGraph* graph) {
  QueryId q = graph->id();
  HostedQuery& hq = queries_[q];
  hq.graph = graph;
  hq.by_op.resize(graph->num_operators());
  hq.pump.clear();
  // Pump order mirrors Node::HostFragment: fragments ascending, topological
  // order within a fragment — the order window pumps visit operators.
  for (size_t frag = 0; frag < graph->num_fragments(); ++frag) {
    for (OperatorId op :
         graph->fragment_ops(static_cast<FragmentId>(frag))) {
      hq.by_op[op] = std::make_unique<ExecNode>(static_cast<ServerSite*>(this),
                                                &sched_, graph, op,
                                                options_.channel_capacity);
      hq.pump.push_back(hq.by_op[op].get());
    }
  }
  std::vector<ExecNode*> peers(hq.by_op.size(), nullptr);
  for (size_t i = 0; i < hq.by_op.size(); ++i) peers[i] = hq.by_op[i].get();
  for (auto& node : hq.by_op) {
    if (node != nullptr) node->set_peers(peers);
  }
}

void ServerPipeline::Start() {
  if (started_) return;
  started_ = true;
  stop_flag_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_tick_ = clock_->NowMicros() + options_.shed_interval;
  }
  if (options_.workers > 0) {
    sched_.Start();
    // Paced (oracle) runs are tick-driven by the caller via DriveTick; a
    // free-running ticker would race the deterministic schedule.
    if (!options_.pace_admission) {
      ticker_ = std::thread([this] { TickerLoop(); });
    }
  }
}

void ServerPipeline::Stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_release);
  clock_->Interrupt();
  {
    std::lock_guard<std::mutex> lock(mu_);
    source_cv_.notify_all();
  }
  if (ticker_.joinable()) ticker_.join();
  sched_.Stop();
  started_ = false;
}

bool ServerPipeline::Push(Batch batch) {
  // Ingest/stamp stage timing (kMeasured only: oracle runs on a manual
  // clock and must not read the wall clock on the data path).
  telemetry::Telemetry* tel = telemetry::Get();
  const bool timed = tel != nullptr && measured_accounting();
  uint64_t ingest_t0 = timed ? tel->tracer().NowMicros() : 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.ib_high_watermark > 0) {
    // Hysteresis: a full IB closes the gate for every source until the
    // ingress (or the shedder) drains it to the low watermark.
    if (ib_.num_tuples() >= options_.ib_high_watermark) {
      source_gate_closed_ = true;
    }
    source_cv_.wait(lock, [this] {
      return stop_flag_.load(std::memory_order_acquire) ||
             !source_gate_closed_;
    });
  }
  if (stop_flag_.load(std::memory_order_acquire)) {
    pool_.Release(std::move(batch));
    return false;
  }
  SimTime now = clock_->NowMicros();
  stats_.batches_received += 1;
  stats_.tuples_received += batch.size();
  auto it = queries_.find(batch.header.query_id);
  if (it == queries_.end()) {
    // Unknown query: drop at ingress, recycling the buffer (as the DES
    // node does).
    pool_.Release(std::move(batch));
    return true;
  }
  if (timed) {
    uint64_t stamp_t0 = tel->tracer().NowMicros();
    stamper_.StampSourceBatch(&batch, now, it->second.graph->num_sources());
    uint64_t stamp_t1 = tel->tracer().NowMicros();
    telemetry::MetricRegistry& m = tel->metrics();
    m.GetHistogram("infra.server.stamp_us")
        ->Observe(static_cast<double>(stamp_t1 - stamp_t0));
    m.GetHistogram("infra.server.ingest_us")
        ->Observe(static_cast<double>(stamp_t1 - ingest_t0));
  } else {
    stamper_.StampSourceBatch(&batch, now, it->second.graph->num_sources());
  }
  ib_.Push(std::move(batch));
  lock.unlock();
  sched_.Notify(ingress_.get());
  return true;
}

RunStatus ServerPipeline::IngressSlice() {
  // Bounded slice: admit up to a fistful of batches, then yield so peers
  // (and, with one worker, execution nodes) interleave.
  for (int budget = 0; budget < 64; ++budget) {
    QueryId q;
    double sic;
    size_t n;
    OperatorId dest_op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!staged_) {
        SimTime now = clock_->NowMicros();
        // Oracle pacing: one batch per modeled busy period, exactly like
        // ProcessNext scheduled at max(now, busy_until).
        if (options_.pace_admission && now < busy_until_) {
          return RunStatus::kIdle;
        }
        std::optional<Batch> b = ib_.Pop();
        WakeSourcesIfDrainedLocked();
        if (!b) return RunStatus::kIdle;
        staged_ = std::move(*b);
      }
      q = staged_->header.query_id;
      sic = staged_->header.sic;
      n = staged_->size();
      dest_op = staged_->header.dest_op;
    }
    // queries_ is immutable after Start; safe to read without the lock.
    auto it = queries_.find(q);
    if (it == queries_.end()) {
      std::lock_guard<std::mutex> lock(mu_);
      pool_.Release(std::move(*staged_));
      staged_.reset();
      continue;
    }
    ExecNode* dest = it->second.by_op[dest_op].get();
    if (!dest->input()->TryPush(&*staged_, ingress_.get(), &sched_)) {
      // Downstream full: stay paused with the batch staged. Admission
      // accounting happens only when it actually lands.
      if (telemetry::Telemetry* tel = telemetry::Get()) {
        tel->metrics().GetCounter("infra.server.credit_stalls")->Add(1);
      }
      return RunStatus::kBlocked;
    }
    staged_.reset();
    {
      std::lock_guard<std::mutex> lock(mu_);
      SimTime now = clock_->NowMicros();
      auto acc = accepted_.find(q);
      if (acc == accepted_.end()) {
        acc = accepted_.emplace(q, Account(options_.stw)).first;
      }
      acc->second.tracker.AddResultSic(now, sic);
      acc->second.total_sic += sic;
      acc->second.total_tuples += n;
      if (telemetry::Telemetry* tel = telemetry::Get()) {
        // Same seam as Node::ProcessNext's admission accounting, so a
        // kModeled snapshot matches the DES snapshot bit for bit.
        query_telemetry_.RecordAccepted(tel, q, sic, n);
      }
      stats_.batches_processed += 1;
      stats_.tuples_processed += n;
      interval_tuples_ += n;
      if (options_.accounting == CostAccounting::kModeled) {
        ChargeModeledLocked(static_cast<double>(n) *
                            it->second.graph->op(dest_op)
                                ->cost_us_per_tuple() /
                            options_.cpu_speed);
      }
    }
    // Charged wakeups in pump order, mirroring ExecuteBatch's Ingest +
    // PumpGraph pass over the admitted batch's query.
    for (ExecNode* e : it->second.pump) e->NotifyCharged();
  }
  return RunStatus::kMoreWork;
}

void ServerPipeline::ChargeModeledLocked(double work_us) {
  // Per-piece truncation; the DES truncates the per-admission sum once.
  // Identical only when each piece is integral — oracle scenarios pin
  // operator costs and cpu_speed so that holds.
  SimDuration w = static_cast<SimDuration>(work_us);
  SimTime now = clock_->NowMicros();
  if (busy_until_ < now) busy_until_ = now;
  busy_until_ += w;
  interval_busy_ += w;
  stats_.busy_time += w;
}

SimTime ServerPipeline::Watermark() const {
  std::lock_guard<std::mutex> lock(mu_);
  SimTime wm = clock_->NowMicros() - options_.window_grace;
  if (!ib_.empty()) {
    wm = std::min(wm, ib_.batches().front().header.created);
  }
  return wm;
}

void ServerPipeline::ChargeModeled(double work_us) {
  if (options_.accounting != CostAccounting::kModeled) return;
  std::lock_guard<std::mutex> lock(mu_);
  ChargeModeledLocked(work_us);
}

void ServerPipeline::RecordMeasuredBusy(SimDuration busy_us) {
  if (options_.accounting != CostAccounting::kMeasured) return;
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    // Operator-execute stage: the slice already measured its own busy
    // time, so this costs no extra clock read.
    tel->metrics()
        .GetHistogram("infra.server.execute_us")
        ->Observe(static_cast<double>(busy_us));
  }
  std::lock_guard<std::mutex> lock(mu_);
  interval_busy_ += busy_us;
  stats_.busy_time += busy_us;
}

void ServerPipeline::DeliverResult(QueryId query,
                                   const std::vector<Tuple>& results,
                                   SimTime now) {
  double sum = 0.0;
  for (const Tuple& t : results) sum += t.sic;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(query);
  if (it == results_.end()) {
    it = results_.emplace(query, Account(options_.stw)).first;
  }
  it->second.tracker.AddResultSic(now, sum);
  it->second.total_sic += sum;
  it->second.total_tuples += results.size();
}

Batch ServerPipeline::AcquireBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_.Acquire();
}

void ServerPipeline::ReleaseBatch(Batch b) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_.Release(std::move(b));
}

void ServerPipeline::TickPhase1() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.detector_invocations += 1;
    cost_model_.RecordInterval(interval_tuples_, interval_busy_);
    interval_tuples_ = 0;
    interval_busy_ = 0;
  }
  // Uncharged window pump, ascending queries, pump order within a query —
  // the same order Node::OnShedTimer runs PumpGraph(hs, nullptr).
  for (auto& [q, hq] : queries_) {
    for (ExecNode* e : hq.pump) e->NotifyUncharged();
  }
}

void ServerPipeline::TickPhase2() {
  telemetry::Telemetry* tel = telemetry::Get();
  const bool timed = tel != nullptr && measured_accounting();
  uint64_t shed_t0 = timed ? tel->tracer().NowMicros() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SimTime now = clock_->NowMicros();
    size_t capacity = cost_model_.EstimateCapacity(options_.shed_interval);
    if (options_.accounting == CostAccounting::kMeasured) {
      // Busy time is summed across workers; capacity scales with them.
      capacity *= std::max<size_t>(options_.workers, 1);
    }
    stats_.last_capacity = capacity;

    // Local stand-in for coordinator dissemination (§5.2): feed the result
    // sinks' trailing-STW SIC back into the shedder's query_sic view.
    if (options_.disseminate_sic) {
      for (auto& [q, acc] : results_) {
        query_sic_[q] = acc.tracker.QuerySic(now);
      }
    }

    // Per-query efficiency EWMA, exactly as Node::OnShedTimer.
    for (auto& [q, acc] : accepted_) {
      double accepted = acc.tracker.QuerySic(now);
      if (accepted > 0.02) {
        if (auto it = query_sic_.find(q); it != query_sic_.end()) {
          double ratio = std::clamp(it->second / accepted, 0.0, 1.2);
          auto [eff_it, ins] = efficiency_.try_emplace(q, Ewma(0.05));
          eff_it->second.Update(ratio);
        }
      }
    }

    bool overloaded = detector_.IsOverloaded(ib_.num_tuples(), capacity);
    if (tel != nullptr) {
      // Same seam and inputs as Node::OnShedTimer's verdict record.
      RecordShedTick(tel, ib_.num_tuples(), capacity, overloaded);
      pool_telemetry_.Publish(tel, pool_.stats());
    }
    if (overloaded) {
      size_t max_qid =
          queries_.empty()
              ? 0
              : static_cast<size_t>(queries_.rbegin()->first) + 1;
      accepted_snapshot_.assign(max_qid, 0.0);
      for (auto& [q, acc] : accepted_) {
        double eff = 1.0;
        if (auto it = efficiency_.find(q); it != efficiency_.end()) {
          if (it->second.has_value()) eff = std::max(it->second.value(), 0.05);
        }
        if (static_cast<size_t>(q) >= accepted_snapshot_.size()) {
          accepted_snapshot_.resize(q + 1, 0.0);
        }
        accepted_snapshot_[q] = acc.tracker.QuerySic(now) * eff;
      }
      ShedContext ctx;
      ctx.capacity_tuples = capacity;
      ctx.now = now;
      ctx.query_sic = &query_sic_;
      ctx.local_accepted_sic = &accepted_snapshot_;
      std::vector<size_t> keep =
          shedder_->SelectBatchesToKeep(ib_.batches(), ctx);
      if (tel != nullptr) {
        RecordShedDrops(tel, &query_telemetry_, ib_.batches(), keep);
      }
      size_t before_batches = ib_.num_batches();
      size_t dropped = ib_.RetainIndices(keep);
      if (dropped > 0) {
        stats_.shed_invocations += 1;
        stats_.tuples_shed += dropped;
        stats_.batches_shed += before_batches - ib_.num_batches();
      }
      WakeSourcesIfDrainedLocked();
    }
  }
  if (timed) {
    telemetry::MetricRegistry& m = tel->metrics();
    m.GetHistogram("infra.server.shed_us")
        ->Observe(static_cast<double>(tel->tracer().NowMicros() - shed_t0));
    m.GetGauge("infra.server.queue_depth")
        ->Set(static_cast<double>(sched_.queue_depth()));
  }
  sched_.Notify(ingress_.get());
}

void ServerPipeline::TickerLoop() {
  SimTime next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next = next_tick_;
  }
  while (!stop_flag_.load(std::memory_order_acquire)) {
    clock_->WaitUntil(next, stop_flag_);
    if (stop_flag_.load(std::memory_order_acquire)) return;
    if (clock_->NowMicros() < next) continue;  // spurious wakeup
    // Real-time ticks run both phases back to back: the window pump
    // quiesces concurrently with detection, an accepted approximation of
    // the oracle's pump-then-shed barrier (see EXPERIMENTS.md).
    TickPhase1();
    TickPhase2();
    next += options_.shed_interval;
    std::lock_guard<std::mutex> lock(mu_);
    next_tick_ = next;
  }
}

void ServerPipeline::WakeSourcesIfDrainedLocked() {
  if (options_.ib_high_watermark == 0) return;
  if (source_gate_closed_ &&
      ib_.num_tuples() <= options_.ib_low_watermark) {
    source_gate_closed_ = false;
    source_cv_.notify_all();
  }
}

void ServerPipeline::NotifyIngress() { sched_.Notify(ingress_.get()); }

void ServerPipeline::RunUntilIdle() { sched_.RunUntilIdle(); }

void ServerPipeline::WaitIdle() { sched_.WaitIdle(); }

SimTime ServerPipeline::NextAdmissionTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  SimTime now = clock_->NowMicros();
  if (staged_.has_value()) return now;
  if (ib_.empty()) return kNever;
  if (!options_.pace_admission) return now;
  return std::max(busy_until_, now);
}

SimTime ServerPipeline::NextTickTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_tick_;
}

void ServerPipeline::DriveTick() {
  auto barrier = [this] {
    if (options_.workers > 0) {
      sched_.WaitIdle();
    } else {
      sched_.RunUntilIdle();
    }
  };
  TickPhase1();
  barrier();  // window pump quiesces before detection
  MaybeCaptureCheckpoints();
  TickPhase2();
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_tick_ += options_.shed_interval;
  }
  barrier();
}

void ServerPipeline::EnableCheckpoints(CheckpointStore* store,
                                       CheckpointConfig config) {
  ckpt_store_ = store;
  ckpt_config_ = config;
  ckpt_next_ = 0;
}

void ServerPipeline::RestoreHostedFromStore() {
  if (ckpt_store_ == nullptr) return;
  for (auto& [q, hq] : queries_) {
    for (size_t frag = 0; frag < hq.graph->num_fragments(); ++frag) {
      for (OperatorId oid :
           hq.graph->fragment_ops(static_cast<FragmentId>(frag))) {
        RestoreOrResetOperator(hq.graph->op(oid), q, ckpt_store_);
      }
    }
  }
}

void ServerPipeline::MaybeCaptureCheckpoints() {
  if (ckpt_store_ == nullptr || !ckpt_config_.enabled) return;
  SimTime now = clock_->NowMicros();
  if (now < ckpt_next_) return;
  ckpt_next_ = now + ckpt_config_.cadence;
  for (auto& [q, hq] : queries_) {
    for (size_t frag = 0; frag < hq.graph->num_fragments(); ++frag) {
      for (OperatorId oid :
           hq.graph->fragment_ops(static_cast<FragmentId>(frag))) {
        MaybeCheckpointOperator(hq.graph->op(oid), q, now,
                                ckpt_config_.error_bound, ckpt_store_);
      }
    }
  }
}

size_t ServerPipeline::CurrentCapacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.last_capacity;
}

size_t ServerPipeline::ib_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ib_.num_tuples();
}

double ServerPipeline::AcceptedSic(QueryId q, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accepted_.find(q);
  return it == accepted_.end() ? 0.0 : it->second.tracker.QuerySic(now);
}

double ServerPipeline::AcceptedSicTotal(QueryId q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accepted_.find(q);
  return it == accepted_.end() ? 0.0 : it->second.total_sic;
}

uint64_t ServerPipeline::AcceptedTuplesTotal(QueryId q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accepted_.find(q);
  return it == accepted_.end() ? 0 : it->second.total_tuples;
}

double ServerPipeline::ResultSicTotal(QueryId q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(q);
  return it == results_.end() ? 0.0 : it->second.total_sic;
}

uint64_t ServerPipeline::ResultTuplesTotal(QueryId q) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(q);
  return it == results_.end() ? 0 : it->second.total_tuples;
}

}  // namespace themis
