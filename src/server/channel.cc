#include "server/channel.h"

#include <algorithm>
#include <utility>

namespace themis {

bool BatchChannel::TryPush(Batch* b, Task* waiter, Scheduler* sched) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (credits_ == 0) {
      if (waiter != nullptr &&
          std::find(waiters_.begin(), waiters_.end(), waiter) ==
              waiters_.end()) {
        waiters_.push_back(waiter);
      }
      return false;
    }
    --credits_;
    q_.push_back(std::move(*b));
  }
  // Notify outside the channel lock; the batch is already visible, so the
  // consumer cannot observe the wakeup without the data.
  sched->Notify(consumer_);
  return true;
}

std::optional<Batch> BatchChannel::TryPop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return std::nullopt;
  Batch b = std::move(q_.front());
  q_.pop_front();
  return b;
}

void BatchChannel::GrantCredit(Scheduler* sched) {
  std::vector<Task*> to_wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++credits_;
    to_wake.swap(waiters_);
  }
  for (Task* t : to_wake) sched->Notify(t);
}

size_t BatchChannel::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

size_t BatchChannel::credits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return credits_;
}

}  // namespace themis
