#include "server/oracle_driver.h"

#include <utility>

namespace themis {

void DriveDeterministic(ServerPipeline* pipeline, ManualClock* clock,
                        std::vector<TimedBatch>* arrivals, SimTime until) {
  const bool threaded = pipeline->options().workers > 0;
  auto barrier = [&] {
    if (threaded) {
      pipeline->WaitIdle();
    } else {
      pipeline->RunUntilIdle();
    }
  };
  size_t next_arrival = 0;
  for (;;) {
    constexpr SimTime kNever = ServerPipeline::kNever;
    SimTime t_arr = next_arrival < arrivals->size()
                        ? (*arrivals)[next_arrival].at
                        : kNever;
    SimTime t_adm = pipeline->NextAdmissionTime();
    SimTime t_tick = pipeline->NextTickTime();

    SimTime next = kNever;
    if (t_arr != kNever) next = t_arr;
    if (t_adm != kNever && (next == kNever || t_adm < next)) next = t_adm;
    if (next == kNever) {
      // Nothing queued and no arrivals left: only ticks remain (they still
      // close windows and flush late panes until the horizon).
      next = t_tick;
    }
    if (t_tick <= next) next = t_tick;  // ticks win ties, like the DES
    if (next > until) break;

    clock->AdvanceTo(next);
    if (next == t_tick) {
      pipeline->DriveTick();
      continue;  // same-time arrivals/admissions run on the next pass
    }
    while (next_arrival < arrivals->size() &&
           (*arrivals)[next_arrival].at == next) {
      pipeline->Push(std::move((*arrivals)[next_arrival].batch));
      ++next_arrival;
    }
    pipeline->NotifyIngress();
    barrier();
  }
}

}  // namespace themis
