// Worker-thread scheduler of the real-time runtime: tasks (execution nodes,
// the site ingress) park until notified, then run bounded slices from a FIFO
// runnable queue. With zero workers the caller pumps the queue itself
// (RunUntilIdle), which is how the deterministic oracle mode reproduces the
// discrete-event execution order on the threaded machinery.
#ifndef THEMIS_SERVER_SCHEDULER_H_
#define THEMIS_SERVER_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace themis {

class Scheduler;

/// What a task slice reports back to the scheduler.
enum class RunStatus {
  /// Nothing left to do; park until the next Notify.
  kIdle,
  /// More work is immediately available; requeue behind the other runnables.
  kMoreWork,
  /// Paused on a full downstream buffer; the credit grant will Notify.
  kBlocked,
};

/// \brief A schedulable unit of work (execution node, ingress).
///
/// RunSlice must never block: a task that cannot make progress returns
/// kBlocked (or kIdle) and relies on a later Notify to resume.
class Task {
 public:
  virtual ~Task() = default;
  virtual RunStatus RunSlice() = 0;

 private:
  friend class Scheduler;
  enum class State { kIdle, kQueued, kRunning, kRunningDirty };
  State state_ = State::kIdle;
};

/// \brief FIFO runnable queue drained by worker threads (or by the caller).
///
/// Notify is level-triggered and collapsing: notifying a queued task is a
/// no-op, notifying a running task marks it dirty so it requeues after the
/// current slice — a task can therefore never miss work signalled while it
/// runs, and never occupies the queue twice.
class Scheduler {
 public:
  /// \param workers worker threads; 0 = caller-driven via RunUntilIdle
  explicit Scheduler(size_t workers) : workers_(workers) {}
  ~Scheduler() { Stop(); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Spawns the worker threads (no-op with 0 workers).
  void Start();
  /// Stops and joins the workers; queued tasks stay queued. Idempotent.
  void Stop();

  /// Marks `t` runnable (thread-safe; callable from inside slices).
  void Notify(Task* t);

  /// Drains the runnable queue on the calling thread until nothing is
  /// runnable. Only meaningful with 0 workers.
  void RunUntilIdle();

  /// Blocks until the queue is empty and no slice is in flight. Tasks may
  /// become runnable again immediately after (e.g. via concurrent pushes);
  /// quiescence is the caller's protocol to ensure.
  void WaitIdle();

  size_t workers() const { return workers_; }

  /// Tasks currently runnable (queued, not in a running slice). A
  /// point-in-time reading for telemetry; stale by the time it returns.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runnable_.size();
  }

 private:
  void WorkerLoop();
  /// Runs `t`'s slice with the lock dropped, then applies the requeue
  /// decision. Returns with `lock` held.
  void RunOne(Task* t, std::unique_lock<std::mutex>& lock);

  const size_t workers_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Task*> runnable_;
  size_t running_ = 0;
  bool stop_ = false;
  bool started_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace themis

#endif  // THEMIS_SERVER_SCHEDULER_H_
