// Execution node: one operator of a hosted query running as a scheduler
// task. Batches arrive on a bounded input channel (credits flow back once
// ingested); emissions route to downstream execution nodes' channels or, at
// the root, to the site's result sink. A full downstream channel pauses the
// node (pending emissions are stashed, kBlocked) until the credit grant
// wakes it.
#ifndef THEMIS_SERVER_EXEC_NODE_H_
#define THEMIS_SERVER_EXEC_NODE_H_

#include <atomic>
#include <deque>
#include <vector>

#include "common/time_types.h"
#include "runtime/batch.h"
#include "runtime/query_graph.h"
#include "server/channel.h"
#include "server/scheduler.h"

namespace themis {

/// Services an execution node needs from the site that hosts it. Implemented
/// by ServerPipeline; all methods are thread-safe.
class ServerSite {
 public:
  virtual ~ServerSite() = default;
  /// Current time on the site clock (microseconds).
  virtual SimTime Now() const = 0;
  /// Window-closing watermark: min(now - grace, oldest queued IB batch).
  virtual SimTime Watermark() const = 0;
  /// Adds modeled work (already divided by cpu_speed) to the site's busy
  /// accounting. No-op under measured accounting.
  virtual void ChargeModeled(double work_us) = 0;
  /// Adds measured busy time from a task slice. No-op under modeled
  /// accounting.
  virtual void RecordMeasuredBusy(SimDuration busy_us) = 0;
  /// Delivers root-operator emissions to the query's result sink.
  virtual void DeliverResult(QueryId query, const std::vector<Tuple>& results,
                             SimTime now) = 0;
  virtual Batch AcquireBatch() = 0;
  virtual void ReleaseBatch(Batch b) = 0;
  /// True when busy time is measured from the wall clock (real runs) rather
  /// than modeled from operator costs (oracle runs).
  virtual bool measured_accounting() const = 0;
  virtual double cpu_speed() const = 0;
};

/// \brief One operator of one query as a schedulable task.
class ExecNode : public Task {
 public:
  ExecNode(ServerSite* site, Scheduler* sched, const QueryGraph* graph,
           OperatorId op, size_t channel_capacity);

  /// Wires downstream edges; `by_op[op_id]` maps every operator of the same
  /// query to its execution node. Must be called before Start.
  void set_peers(const std::vector<ExecNode*>& by_op) { peers_ = by_op; }

  BatchChannel* input() { return &input_; }
  OperatorId op_id() const { return op_id_; }

  /// Wakes the node for a cost-charged run (batch admission propagated work;
  /// mirrors the DES charging consumer ingests during ExecuteBatch).
  void NotifyCharged();
  /// Wakes the node for an uncharged run (shed-tick window pump; mirrors the
  /// DES PumpGraph(hs, nullptr)).
  void NotifyUncharged();

  RunStatus RunSlice() override;

 private:
  /// Re-pushes stashed emissions; false while still blocked.
  bool FlushPending();
  /// Routes `outputs` along the operator's out-edges (or to the result
  /// sink at the root); false if any push blocked (remainder stashed).
  bool RouteOutputs(const std::vector<Tuple>& outputs, bool charged);

  ServerSite* site_;
  Scheduler* sched_;
  const QueryGraph* graph_;
  OperatorId op_id_;
  BatchChannel input_;
  std::vector<ExecNode*> peers_;
  // Set by NotifyCharged, consumed by the next slice. Charged and uncharged
  // wakeups never race in oracle runs (the driver serializes instants); in
  // real runs the flag only affects modeled accounting, which is off.
  std::atomic<bool> next_charged_{false};
  // Emissions that found a full downstream channel, in push order.
  struct PendingPush {
    BatchChannel* channel;
    Batch batch;
  };
  std::deque<PendingPush> pending_;
  std::vector<Tuple> scratch_;
};

}  // namespace themis

#endif  // THEMIS_SERVER_EXEC_NODE_H_
