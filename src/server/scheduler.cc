#include "server/scheduler.h"

namespace themis {

void Scheduler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  threads_.reserve(workers_);
  for (size_t i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void Scheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

void Scheduler::Notify(Task* t) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (t->state_) {
    case Task::State::kIdle:
      t->state_ = Task::State::kQueued;
      runnable_.push_back(t);
      cv_.notify_one();
      break;
    case Task::State::kRunning:
      t->state_ = Task::State::kRunningDirty;
      break;
    case Task::State::kQueued:
    case Task::State::kRunningDirty:
      break;  // already signalled
  }
}

void Scheduler::RunOne(Task* t, std::unique_lock<std::mutex>& lock) {
  t->state_ = Task::State::kRunning;
  ++running_;
  lock.unlock();
  RunStatus status = t->RunSlice();
  lock.lock();
  --running_;
  if (t->state_ == Task::State::kRunningDirty ||
      status == RunStatus::kMoreWork) {
    t->state_ = Task::State::kQueued;
    runnable_.push_back(t);
    cv_.notify_one();
  } else {
    t->state_ = Task::State::kIdle;
  }
  if (runnable_.empty() && running_ == 0) idle_cv_.notify_all();
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !runnable_.empty(); });
    if (stop_) return;
    Task* t = runnable_.front();
    runnable_.pop_front();
    RunOne(t, lock);
  }
}

void Scheduler::RunUntilIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!runnable_.empty()) {
    Task* t = runnable_.front();
    runnable_.pop_front();
    RunOne(t, lock);
  }
}

void Scheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return runnable_.empty() && running_ == 0; });
}

}  // namespace themis
