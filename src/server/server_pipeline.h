// The real-time THEMIS runtime: one site running hosted queries as a live
// multi-threaded pipeline, driving the same SIC stamping, cost model,
// overload detector and shedder as the discrete-event Node — but off a real
// (or manually advanced) clock. Sources Push() batches from any thread; the
// ingress task stamps, buffers and admits them; execution nodes process
// them under credit-based backpressure; a shed-timer tick prunes the input
// buffer exactly as §6 prescribes.
//
// Two accounting modes:
//  - kMeasured (real runs): busy time is measured per task slice on the
//    wall clock, capacity scales with the worker count, and admission is
//    unpaced (the CPU itself is the pacer).
//  - kModeled (oracle runs): busy time is computed from operator costs
//    exactly as the DES does, and admission is paced on the modeled
//    busy-until — with a ManualClock and 0 workers the pipeline reproduces
//    the DES schedule, which tests exploit to compare accepted-SIC totals
//    bit for bit.
#ifndef THEMIS_SERVER_SERVER_PIPELINE_H_
#define THEMIS_SERVER_SERVER_PIPELINE_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/time_types.h"
#include "node/input_buffer.h"
#include "node/sic_stamper.h"
#include "node/telemetry_hooks.h"
#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"
#include "runtime/clock.h"
#include "runtime/query_graph.h"
#include "server/exec_node.h"
#include "shedding/cost_model.h"
#include "shedding/overload_detector.h"
#include "shedding/shedder.h"
#include "sic/stw_tracker.h"

namespace themis {

/// How the cost model's busy time is obtained.
enum class CostAccounting {
  /// Wall-clock measured per task slice (real runs).
  kMeasured,
  /// Computed from operator costs like the DES (oracle runs).
  kModeled,
};

/// Server configuration; shedding defaults match NodeOptions (§7).
struct ServerOptions {
  SimDuration shed_interval = Millis(250);
  SimDuration stw = Seconds(10);
  double cpu_speed = 1.0;
  SimDuration window_grace = Millis(200);
  double headroom = 1.0;
  /// Worker threads; 0 = caller-driven deterministic mode (RunUntilIdle).
  size_t workers = 4;
  /// Credits per execution-node input channel.
  size_t channel_capacity = 64;
  CostAccounting accounting = CostAccounting::kMeasured;
  /// Gate admission on the modeled busy-until (oracle mode only).
  bool pace_admission = false;
  /// Feed result SIC back into the shedder at ticks (local stand-in for
  /// coordinator dissemination, §5.2). Off in oracle mode: the DES twin has
  /// no coordinator either.
  bool disseminate_sic = true;
  /// Source backpressure: Push() blocks while the input buffer holds >=
  /// `ib_high_watermark` tuples until it drains to <= `ib_low_watermark`.
  /// 0 disables blocking (overload lands in the IB and the shedder).
  size_t ib_high_watermark = 0;
  size_t ib_low_watermark = 0;
};

/// Per-server counters (mirrors NodeStats where the semantics coincide).
struct ServerStats {
  uint64_t tuples_received = 0;
  uint64_t tuples_processed = 0;  ///< admitted to execution
  uint64_t tuples_shed = 0;
  uint64_t batches_received = 0;
  uint64_t batches_processed = 0;
  uint64_t batches_shed = 0;
  uint64_t shed_invocations = 0;
  uint64_t detector_invocations = 0;
  SimDuration busy_time = 0;
  size_t last_capacity = 0;
};

/// \brief A live single-site pipeline hosting whole queries.
class ServerPipeline : private ServerSite {
 public:
  /// \param clock not owned; must outlive the pipeline
  /// \param shedder shedding policy (BALANCE-SIC or random); owned
  ServerPipeline(ServerOptions options, Clock* clock,
                 std::unique_ptr<Shedder> shedder);
  ~ServerPipeline() override;

  /// Hosts every fragment of `graph` on this site. Call before Start; the
  /// graph must outlive the pipeline.
  void AddQuery(const QueryGraph* graph);

  /// Spawns workers and the shed ticker (with workers > 0); arms the first
  /// tick at clock + shed_interval either way.
  void Start();
  /// Stops ticker and workers, wakes blocked sources. Idempotent.
  void Stop();

  /// Source ingress from any thread: stamps Eq. (1) SIC, buffers in the IB,
  /// wakes the ingress task. Blocks per the IB watermarks when configured.
  /// Returns false (dropping the batch) after Stop.
  bool Push(Batch batch);

  // --- Deterministic driving (workers == 0) ---------------------------
  /// Sentinel for "no pending admission".
  static constexpr SimTime kNever = -1;
  /// Wakes the ingress task (e.g. after advancing a ManualClock).
  void NotifyIngress();
  /// Drains the runnable queue on the calling thread.
  void RunUntilIdle();
  /// Blocks until workers drained the runnable queue (workers > 0). With
  /// pace_admission the ticker is not spawned, so a driver can alternate
  /// Push/NotifyIngress/WaitIdle with ManualClock advances and DriveTick
  /// for a deterministic run on real worker threads.
  void WaitIdle();
  /// Time the next batch admission may happen (kNever if the IB is empty
  /// and nothing is staged).
  SimTime NextAdmissionTime() const;
  /// Time of the next shed tick.
  SimTime NextTickTime() const;
  /// Runs one shed tick on the calling thread: interval accounting, window
  /// pump (drained to idle), then detection/shedding — the same order as
  /// Node::OnShedTimer, split so the pump can quiesce in between.
  void DriveTick();

  // --- Checkpointing ----------------------------------------------------
  /// Shares the simulator's checkpoint seam: each DriveTick, once the
  /// window pump has quiesced, captures images of every hosted operator
  /// into `store` (not owned; must outlive the pipeline) at the configured
  /// cadence, skipping operators whose accumulated dirt is within
  /// `config.error_bound`. Caller-driven deterministic mode only
  /// (workers == 0, DriveTick on the driving thread): operator state is
  /// mutated by ExecNode slices outside mu_, so capture is safe only when
  /// no worker can be mid-slice.
  void EnableCheckpoints(CheckpointStore* store, CheckpointConfig config);
  /// The process-restart model: restores every hosted operator from the
  /// enabled store (operators without an image reset). Call before Start,
  /// after AddQuery — a fresh pipeline hosting the same graphs resumes
  /// from the last captured images.
  void RestoreHostedFromStore();

  // --- Introspection ---------------------------------------------------
  /// Snapshot of the counters, taken under the site lock (safe to call
  /// from any thread while the pipeline runs).
  ServerStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  const ServerOptions& options() const { return options_; }
  size_t CurrentCapacity() const;
  size_t ib_tuples() const;
  /// Trailing-STW accepted SIC (diagnostics; shedder sees it scaled).
  double AcceptedSic(QueryId q, SimTime now);
  /// Cumulative admitted SIC/tuples since Start (oracle comparisons).
  double AcceptedSicTotal(QueryId q) const;
  uint64_t AcceptedTuplesTotal(QueryId q) const;
  /// Cumulative result SIC/tuples delivered by the root operator.
  double ResultSicTotal(QueryId q) const;
  uint64_t ResultTuplesTotal(QueryId q) const;

 private:
  class IngressTask;

  struct Account {
    explicit Account(SimDuration stw) : tracker(stw) {}
    StwTracker tracker;
    double total_sic = 0.0;
    uint64_t total_tuples = 0;
  };
  struct HostedQuery {
    const QueryGraph* graph = nullptr;
    /// Execution nodes indexed by OperatorId.
    std::vector<std::unique_ptr<ExecNode>> by_op;
    /// Pump order: fragments ascending, topological within a fragment
    /// (matches Node::HostFragment).
    std::vector<ExecNode*> pump;
  };

  // ServerSite interface (thread-safe; called from task slices).
  SimTime Now() const override { return clock_->NowMicros(); }
  SimTime Watermark() const override;
  void ChargeModeled(double work_us) override;
  void RecordMeasuredBusy(SimDuration busy_us) override;
  void DeliverResult(QueryId query, const std::vector<Tuple>& results,
                     SimTime now) override;
  Batch AcquireBatch() override;
  void ReleaseBatch(Batch b) override;
  bool measured_accounting() const override {
    return options_.accounting == CostAccounting::kMeasured;
  }
  double cpu_speed() const override { return options_.cpu_speed; }

  RunStatus IngressSlice();
  /// Capture pass behind EnableCheckpoints (DriveTick, pump quiesced).
  void MaybeCaptureCheckpoints();
  /// Adds modeled work to busy-until / interval accounting (mu_ held).
  void ChargeModeledLocked(double work_us);
  /// Phase 1: cost-model interval rollover + uncharged window-pump wakeups.
  void TickPhase1();
  /// Phase 2: capacity, efficiency EWMA, dissemination, detect + shed.
  void TickPhase2();
  void TickerLoop();
  void WakeSourcesIfDrainedLocked();

  ServerOptions options_;
  Clock* clock_;
  std::unique_ptr<Shedder> shedder_;
  Scheduler sched_;

  mutable std::mutex mu_;  // site lock (IB, pool, accounting, stamping)
  std::condition_variable source_cv_;
  SicStamper stamper_;
  InputBuffer ib_;
  BatchPool pool_;
  CostModel cost_model_;
  OverloadDetector detector_;
  std::map<QueryId, double> query_sic_;
  std::map<QueryId, Account> accepted_;
  std::map<QueryId, Account> results_;
  std::map<QueryId, Ewma> efficiency_;
  std::vector<double> accepted_snapshot_;
  /// Cached per-query telemetry counters; all writers hold mu_.
  QueryTelemetry query_telemetry_;
  /// Batch-pool occupancy export, published per shed tick under mu_.
  PoolTelemetry pool_telemetry_;
  SimTime busy_until_ = 0;
  uint64_t interval_tuples_ = 0;
  SimDuration interval_busy_ = 0;
  bool source_gate_closed_ = false;
  /// Batch popped from the IB whose downstream push blocked; admission
  /// accounting happens only once it lands.
  std::optional<Batch> staged_;
  ServerStats stats_;

  std::map<QueryId, HostedQuery> queries_;
  std::unique_ptr<IngressTask> ingress_;

  /// Checkpoint seam (EnableCheckpoints); null = off, the default.
  CheckpointStore* ckpt_store_ = nullptr;
  CheckpointConfig ckpt_config_;
  SimTime ckpt_next_ = 0;

  std::atomic<bool> stop_flag_{false};
  bool started_ = false;
  SimTime next_tick_ = 0;
  std::thread ticker_;
};

}  // namespace themis

#endif  // THEMIS_SERVER_SERVER_PIPELINE_H_
