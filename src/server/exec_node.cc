#include "server/exec_node.h"

#include <chrono>
#include <utility>

#include "runtime/operator.h"

namespace themis {

ExecNode::ExecNode(ServerSite* site, Scheduler* sched,
                   const QueryGraph* graph, OperatorId op,
                   size_t channel_capacity)
    : site_(site),
      sched_(sched),
      graph_(graph),
      op_id_(op),
      input_(channel_capacity, this) {}

void ExecNode::NotifyCharged() {
  next_charged_.store(true, std::memory_order_release);
  sched_->Notify(this);
}

void ExecNode::NotifyUncharged() { sched_->Notify(this); }

bool ExecNode::FlushPending() {
  while (!pending_.empty()) {
    PendingPush& p = pending_.front();
    if (!p.channel->TryPush(&p.batch, this, sched_)) return false;
    pending_.pop_front();
  }
  return true;
}

bool ExecNode::RouteOutputs(const std::vector<Tuple>& outputs, bool charged) {
  if (op_id_ == graph_->root()) {
    site_->DeliverResult(graph_->id(), outputs, site_->Now());
    return true;
  }
  SimTime now = site_->Now();
  bool all_pushed = true;
  for (const Edge& e : graph_->out_edges(op_id_)) {
    ExecNode* consumer = peers_[e.to];
    // Mirror the DES: the consumer's ingest cost is charged by the producer
    // at emission time (Node::RouteOutputs), even if the push then parks in
    // the channel for a while.
    if (charged) {
      site_->ChargeModeled(static_cast<double>(outputs.size()) *
                           graph_->op(e.to)->cost_us_per_tuple() /
                           site_->cpu_speed());
    }
    Batch b = site_->AcquireBatch();
    b.header.query_id = graph_->id();
    b.header.dest_op = e.to;
    b.header.dest_port = e.port;
    b.header.created = now;
    b.tuples.assign(outputs.begin(), outputs.end());
    b.RefreshHeaderSic();
    if (!consumer->input_.TryPush(&b, this, sched_)) {
      pending_.push_back(PendingPush{&consumer->input_, std::move(b)});
      all_pushed = false;
    }
  }
  return all_pushed;
}

RunStatus ExecNode::RunSlice() {
  bool charged = next_charged_.exchange(false, std::memory_order_acq_rel);
  bool measured = site_->measured_accounting();
  auto t0 = measured ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{};

  // Backpressure: while stashed emissions cannot be delivered downstream,
  // do not consume upstream input either — that pause is what propagates
  // the full buffer toward the sources.
  if (!FlushPending()) {
    if (charged) next_charged_.store(true, std::memory_order_release);
    return RunStatus::kBlocked;
  }

  Operator* op = graph_->op(op_id_);
  while (std::optional<Batch> b = input_.TryPop()) {
    if (b->is_columnar()) {
      op->IngestColumnar(*b->columnar, b->header.dest_port);
    } else {
      op->Ingest(b->tuples, b->header.dest_port);
    }
    site_->ReleaseBatch(std::move(*b));
    input_.GrantCredit(sched_);
  }

  scratch_.clear();
  op->Advance(site_->Watermark(), &scratch_);
  bool ok = scratch_.empty() || RouteOutputs(scratch_, charged);

  if (measured) {
    site_->RecordMeasuredBusy(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  return ok ? RunStatus::kIdle : RunStatus::kBlocked;
}

}  // namespace themis
