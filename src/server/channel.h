// Credit-based bounded batch buffer between execution nodes (Volcano with
// buffers, SNIPPETS #1–2): the consumer starts with `capacity` credits, a
// push consumes one, and the consumer grants it back once the batch is fully
// ingested. A producer that finds no credit registers itself as a waiter and
// pauses (kBlocked); the next grant wakes every waiter through the scheduler.
#ifndef THEMIS_SERVER_CHANNEL_H_
#define THEMIS_SERVER_CHANNEL_H_

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "runtime/batch.h"
#include "server/scheduler.h"

namespace themis {

/// \brief Bounded SPSC/MPSC batch queue with credit flow control.
class BatchChannel {
 public:
  /// \param capacity credits = maximum batches in flight (queued or popped
  ///        but not yet granted back); must be >= 1
  /// \param consumer task notified on every successful push
  BatchChannel(size_t capacity, Task* consumer)
      : credits_(capacity), consumer_(consumer) {}

  BatchChannel(const BatchChannel&) = delete;
  BatchChannel& operator=(const BatchChannel&) = delete;

  /// Pushes `*b` if a credit is available (consuming it, moving from `b`,
  /// and notifying the consumer). Otherwise leaves `*b` intact, registers
  /// `waiter` for the next credit grant (if non-null), and returns false.
  bool TryPush(Batch* b, Task* waiter, Scheduler* sched);

  /// Removes and returns the oldest queued batch; nullopt when empty.
  /// Popping does NOT return the credit — call GrantCredit when done.
  std::optional<Batch> TryPop();

  /// Returns one credit and wakes every registered waiter.
  void GrantCredit(Scheduler* sched);

  size_t queued() const;
  size_t credits() const;

 private:
  mutable std::mutex mu_;
  std::deque<Batch> q_;
  size_t credits_;
  Task* consumer_;
  std::vector<Task*> waiters_;
};

}  // namespace themis

#endif  // THEMIS_SERVER_CHANNEL_H_
