#include "runtime/query_graph.h"

#include <algorithm>
#include <set>

namespace themis {

const std::vector<OperatorId>& QueryGraph::fragment_ops(FragmentId frag) const {
  static const std::vector<OperatorId> kEmpty;
  auto it = fragments_.find(frag);
  return it == fragments_.end() ? kEmpty : it->second;
}

std::vector<FragmentId> QueryGraph::fragment_ids() const {
  std::vector<FragmentId> ids;
  ids.reserve(fragments_.size());
  for (const auto& [frag, ops] : fragments_) ids.push_back(frag);
  return ids;
}

std::vector<OperatorId> QueryGraph::FragmentIngressOps(FragmentId frag) const {
  std::set<OperatorId> ingress;
  for (const SourceBinding& sb : sources_) {
    if (fragment_of(sb.target) == frag) ingress.insert(sb.target);
  }
  for (size_t from = 0; from < out_edges_.size(); ++from) {
    for (const Edge& e : out_edges_[from]) {
      if (fragment_of(e.to) == frag &&
          fragment_of(static_cast<OperatorId>(from)) != frag) {
        ingress.insert(e.to);
      }
    }
  }
  return std::vector<OperatorId>(ingress.begin(), ingress.end());
}

QueryBuilder::QueryBuilder(QueryId id, std::string label)
    : graph_(new QueryGraph()) {
  graph_->id_ = id;
  graph_->label_ = std::move(label);
}

OperatorId QueryBuilder::Add(std::unique_ptr<Operator> op,
                             FragmentId fragment) {
  OperatorId id = static_cast<OperatorId>(graph_->ops_.size());
  op->set_id(id);
  graph_->ops_.push_back(std::move(op));
  graph_->out_edges_.emplace_back();
  graph_->op_fragment_.push_back(fragment);
  return id;
}

QueryBuilder& QueryBuilder::Connect(OperatorId from, OperatorId to, int port) {
  size_t n = graph_->ops_.size();
  if (from < 0 || to < 0 || static_cast<size_t>(from) >= n ||
      static_cast<size_t>(to) >= n) {
    deferred_error_ =
        Status::InvalidArgument("Connect: operator id out of range");
    return *this;
  }
  if (port < 0 || port >= graph_->ops_[to]->num_ports()) {
    deferred_error_ = Status::InvalidArgument("Connect: bad input port");
    return *this;
  }
  graph_->out_edges_[from].push_back({from, to, port});
  return *this;
}

QueryBuilder& QueryBuilder::BindSource(SourceId source, OperatorId target,
                                       int port) {
  if (target < 0 || static_cast<size_t>(target) >= graph_->ops_.size()) {
    deferred_error_ =
        Status::InvalidArgument("BindSource: bad target operator");
    return *this;
  }
  graph_->sources_.push_back({source, target, port});
  return *this;
}

QueryBuilder& QueryBuilder::SetRoot(OperatorId root) {
  graph_->root_ = root;
  return *this;
}

Result<std::unique_ptr<QueryGraph>> QueryBuilder::Build() {
  if (!deferred_error_.ok()) return deferred_error_;
  if (!graph_ || graph_->ops_.empty()) {
    return Status::InvalidArgument("query has no operators");
  }
  if (graph_->root_ < 0 ||
      static_cast<size_t>(graph_->root_) >= graph_->ops_.size()) {
    return Status::InvalidArgument("query root not set");
  }

  // Kahn's algorithm: topological order + cycle detection.
  size_t n = graph_->ops_.size();
  std::vector<int> in_degree(n, 0);
  for (const auto& edges : graph_->out_edges_) {
    for (const Edge& e : edges) ++in_degree[e.to];
  }
  graph_->in_degree_ = in_degree;  // Kahn consumes the working copy below
  std::vector<OperatorId> order;
  std::vector<OperatorId> frontier;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) frontier.push_back(static_cast<OperatorId>(i));
  }
  while (!frontier.empty()) {
    OperatorId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (const Edge& e : graph_->out_edges_[v]) {
      if (--in_degree[e.to] == 0) frontier.push_back(e.to);
    }
  }
  if (order.size() != n) {
    return Status::InvalidArgument("query graph has a cycle");
  }

  // Fragment operator lists in topological order.
  graph_->fragments_.clear();
  for (OperatorId id : order) {
    graph_->fragments_[graph_->op_fragment_[id]].push_back(id);
  }

  return std::move(graph_);
}

}  // namespace themis
