// Window model of §3: every operator processes input atomically through a
// time or count window. WindowBuffer assembles input tuples into panes and
// releases a pane once the watermark passes its end (time windows) or once it
// is full (count windows).
#ifndef THEMIS_RUNTIME_WINDOW_H_
#define THEMIS_RUNTIME_WINDOW_H_

#include <deque>
#include <map>
#include <vector>

#include "common/time_types.h"
#include "runtime/tuple.h"

namespace themis {

class BatchPool;
class CheckpointReader;
class CheckpointWriter;

enum class WindowKind { kTumblingTime, kSlidingTime, kCount };

/// \brief Declarative window description attached to an operator.
struct WindowSpec {
  WindowKind kind = WindowKind::kTumblingTime;
  SimDuration range = kSecond;
  SimDuration slide = kSecond;  ///< only for kSlidingTime
  size_t count = 0;             ///< only for kCount

  /// `[k*range, (k+1)*range)` panes, e.g. the paper's `[Range 1 sec]`.
  static WindowSpec TumblingTime(SimDuration range);
  /// Overlapping panes of length `range`, one per `slide`.
  static WindowSpec SlidingTime(SimDuration range, SimDuration slide);
  /// Atomic emission every `n` tuples.
  static WindowSpec Count(size_t n);
};

/// \brief One closed window pane: the atomic input set T_in of an operator.
struct Pane {
  SimTime start = 0;
  SimTime end = 0;
  std::vector<Tuple> tuples;

  /// Sum of tuple SIC values, i.e. the numerator of Eq. (3).
  double TotalSic() const;
};

/// \brief Assembles tuples into panes according to a WindowSpec.
///
/// For sliding windows, a tuple logically belongs to `range/slide` panes; per
/// §6 ("SIC maintenance") its SIC value is divided across those panes so that
/// SIC mass is conserved.
class WindowBuffer {
 public:
  explicit WindowBuffer(WindowSpec spec);

  /// Adds a tuple. Tuples older than the last released watermark are folded
  /// into the earliest still-open pane (late-data policy).
  void Add(const Tuple& t);

  /// Releases every pane whose end is <= `watermark` (time windows) or that
  /// became full (count windows), in order.
  std::vector<Pane> Advance(SimTime watermark);

  /// Hands a consumed pane's tuple buffer back for reuse by future panes,
  /// keeping pane assembly allocation-free in steady state. Callers pass the
  /// buffers of panes they got from Advance() once done with them.
  void Recycle(std::vector<Tuple>&& tuples);

  const WindowSpec& spec() const { return spec_; }
  /// Number of buffered (not yet released) tuples.
  size_t buffered() const;

  /// Tumbling only: removes and returns every open pane in ascending index
  /// order (the order AdvanceTumbling would eventually release them),
  /// leaving the release watermark untouched. Used by operators switching
  /// from row buffering to incremental columnar accumulation mid-stream.
  std::vector<Pane> DrainOpenTumbling();
  /// End of the last released pane (the late-data clamp).
  SimTime released_up_to() const { return released_up_to_; }

  /// Serializes the complete buffer state — open/ready panes, sliding and
  /// count buffers, the release watermark — into `w` (checkpoint seam).
  void Checkpoint(CheckpointWriter* w) const;
  /// Replaces the buffer state with an image written by Checkpoint().
  /// Fully resets first; the release watermark rewinds to the image's, so
  /// panes released after capture are re-assembled and re-emitted.
  void RestoreFrom(CheckpointReader* r);
  /// Drops every buffered tuple and rewinds the release watermark, as a
  /// freshly constructed buffer would start. Spare recycled buffers keep
  /// their capacity.
  void ResetState();
  /// ResetState() that returns all tuple buffers (open/ready panes, the
  /// count fill, recycled spares) to `pool` instead of freeing them.
  void ReleaseState(BatchPool* pool);

 private:
  static constexpr size_t kMaxRecycled = 8;

  std::vector<Pane> AdvanceTumbling(SimTime watermark);
  std::vector<Pane> AdvanceSliding(SimTime watermark);
  /// A cleared tuple buffer, recycled when one is available.
  std::vector<Tuple> TakeBuffer();

  WindowSpec spec_;
  std::vector<std::vector<Tuple>> recycled_;
  // Tumbling: open panes keyed by pane index (timestamp / range).
  std::map<int64_t, Pane> open_;
  // Most batches land in the pane of the previous tuple; cache it to skip
  // the map lookup (map nodes are stable, Advance invalidates the cache).
  int64_t cached_idx_ = -1;
  Pane* cached_pane_ = nullptr;
  SimTime released_up_to_ = 0;
  // Sliding: time-ordered buffer; panes are cut at slide boundaries.
  std::deque<Tuple> sliding_buf_;
  SimTime next_slide_end_ = 0;
  bool slide_initialized_ = false;
  // Count: current fill + panes completed during Add().
  std::vector<Tuple> count_buf_;
  std::vector<Pane> ready_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_WINDOW_H_
