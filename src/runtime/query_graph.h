// Query graph model of §3: a query is a DAG of operators partitioned into
// fragments, each fragment deployed on a different FSPS node.
#ifndef THEMIS_RUNTIME_QUERY_GRAPH_H_
#define THEMIS_RUNTIME_QUERY_GRAPH_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/ids.h"
#include "runtime/operator.h"

namespace themis {

/// A directed edge in the query graph; `port` selects the input port at `to`.
struct Edge {
  OperatorId from = kInvalidId;
  OperatorId to = kInvalidId;
  int port = 0;
};

/// Binds an external source to the operator that receives its tuples.
struct SourceBinding {
  SourceId source = kInvalidId;
  OperatorId target = kInvalidId;
  int port = 0;
};

/// \brief A deployed query instance: operators (with state), edges, fragment
/// assignment, source bindings and the root operator.
///
/// Instances are created through QueryBuilder; the graph is immutable after
/// Build() but the contained operators are stateful.
class QueryGraph {
 public:
  QueryId id() const { return id_; }
  const std::string& label() const { return label_; }

  size_t num_operators() const { return ops_.size(); }
  size_t num_fragments() const { return fragments_.size(); }
  size_t num_sources() const { return sources_.size(); }

  // The three accessors below are on the per-batch hot path (ExecuteBatch /
  // RouteOutputs); they are defined inline for that reason.
  Operator* op(OperatorId id) const {
    if (id < 0 || static_cast<size_t>(id) >= ops_.size()) return nullptr;
    return ops_[id].get();
  }
  /// Edges leaving `id` (empty vector if none).
  const std::vector<Edge>& out_edges(OperatorId id) const {
    if (id < 0 || static_cast<size_t>(id) >= out_edges_.size()) {
      return no_edges_;
    }
    return out_edges_[id];
  }
  /// Number of graph edges into `id` (0 for sources-only operators). Used by
  /// the columnar short-circuit walk: a pass-through may only be skipped when
  /// its consumer has a single producer, so ingestion order is unobservable.
  int in_degree(OperatorId id) const {
    if (id < 0 || static_cast<size_t>(id) >= in_degree_.size()) return 0;
    return in_degree_[id];
  }
  FragmentId fragment_of(OperatorId id) const {
    if (id < 0 || static_cast<size_t>(id) >= op_fragment_.size()) {
      return kInvalidId;
    }
    return op_fragment_[id];
  }
  /// Operator ids of one fragment, in topological order.
  const std::vector<OperatorId>& fragment_ops(FragmentId frag) const;
  /// All fragment ids, ascending.
  std::vector<FragmentId> fragment_ids() const;
  const std::vector<SourceBinding>& sources() const { return sources_; }
  OperatorId root() const { return root_; }
  FragmentId root_fragment() const { return fragment_of(root_); }

  /// Operators of `frag` whose inputs come from sources or other fragments.
  std::vector<OperatorId> FragmentIngressOps(FragmentId frag) const;

 private:
  friend class QueryBuilder;
  QueryGraph() = default;

  QueryId id_ = kInvalidId;
  std::string label_;
  std::vector<std::unique_ptr<Operator>> ops_;  // index == OperatorId
  std::vector<std::vector<Edge>> out_edges_;    // index == OperatorId
  std::vector<int> in_degree_;                  // index == OperatorId
  std::vector<FragmentId> op_fragment_;         // index == OperatorId
  std::map<FragmentId, std::vector<OperatorId>> fragments_;  // topo-ordered
  std::vector<SourceBinding> sources_;
  OperatorId root_ = kInvalidId;
  std::vector<Edge> no_edges_;
};

/// \brief Fluent constructor for QueryGraph with DAG validation.
class QueryBuilder {
 public:
  QueryBuilder(QueryId id, std::string label);

  /// Adds an operator to `fragment` and returns its id.
  OperatorId Add(std::unique_ptr<Operator> op, FragmentId fragment);
  /// Connects `from` to input `port` of `to`.
  QueryBuilder& Connect(OperatorId from, OperatorId to, int port = 0);
  /// Declares that source `source` feeds `target`.
  QueryBuilder& BindSource(SourceId source, OperatorId target, int port = 0);
  /// Declares the root (result-emitting) operator.
  QueryBuilder& SetRoot(OperatorId root);

  /// Validates (ids in range, acyclic, root set, every operator reaches the
  /// root or is the root) and returns the finished graph.
  Result<std::unique_ptr<QueryGraph>> Build();

 private:
  std::unique_ptr<QueryGraph> graph_;
  Status deferred_error_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_QUERY_GRAPH_H_
