// Relational schema for tuple payloads.
#ifndef THEMIS_RUNTIME_SCHEMA_H_
#define THEMIS_RUNTIME_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace themis {

/// Field data types supported by the payload model.
enum class FieldType { kInt64, kDouble, kString };

/// One named, typed field.
struct Field {
  std::string name;
  FieldType type;
};

/// \brief Ordered field list describing a tuple payload.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Index of the field with the given name, or NotFound.
  Result<int> IndexOf(const std::string& name) const;

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Renders "name:type, ..." for debugging.
  std::string ToString() const;

  /// Common schemas used by the Table 1 workloads.
  static Schema SingleValue();  ///< (v: double)
  static Schema IdValue();      ///< (id: int64, v: double)
  static Schema IdCpuMem();     ///< (id: int64, cpu: double, mem: double)

 private:
  std::vector<Field> fields_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_SCHEMA_H_
