// Relational schema for tuple payloads.
#ifndef THEMIS_RUNTIME_SCHEMA_H_
#define THEMIS_RUNTIME_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "runtime/string_pool.h"

namespace themis {

/// Field data types supported by the payload model.
enum class FieldType { kInt64, kDouble, kString };

/// One named, typed field.
struct Field {
  std::string name;
  FieldType type;
};

/// \brief Ordered field list describing a tuple payload.
///
/// Field-name resolution happens once, at query-compile time; the resolved
/// integer indices are what operators carry, so the tuple hot path never
/// compares strings. IndexOf is backed by a hash map built on construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
    index_.reserve(fields_.size());
    for (size_t i = 0; i < fields_.size(); ++i) {
      index_.emplace(fields_[i].name, static_cast<int>(i));
    }
  }

  /// Index of the field with the given name, or NotFound. O(1).
  Result<int> IndexOf(const std::string& name) const;

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Interning pool for string-typed payload values of this schema's stream.
  /// Created with the schema, so every copy — whenever taken — shares it.
  StringPool& pool() const { return *pool_; }

  /// Renders "name:type, ..." for debugging.
  std::string ToString() const;

  /// Common schemas used by the Table 1 workloads.
  static Schema SingleValue();  ///< (v: double)
  static Schema IdValue();      ///< (id: int64, v: double)
  static Schema IdCpuMem();     ///< (id: int64, cpu: double, mem: double)

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
  std::shared_ptr<StringPool> pool_ = std::make_shared<StringPool>();
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_SCHEMA_H_
