#include "runtime/schema.h"

namespace themis {

namespace {
const char* TypeName(FieldType t) {
  switch (t) {
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kString:
      return "string";
  }
  return "?";
}
}  // namespace

Result<int> Schema::IndexOf(const std::string& name) const {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  return Status::NotFound("no field named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeName(fields_[i].type);
  }
  return out;
}

Schema Schema::SingleValue() { return Schema({{"v", FieldType::kDouble}}); }

Schema Schema::IdValue() {
  return Schema({{"id", FieldType::kInt64}, {"v", FieldType::kDouble}});
}

Schema Schema::IdCpuMem() {
  return Schema({{"id", FieldType::kInt64},
                 {"cpu", FieldType::kDouble},
                 {"mem", FieldType::kDouble}});
}

}  // namespace themis
