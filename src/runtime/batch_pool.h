// Free-list of batch buffers. Batches are the unit of transfer on the
// data plane: a node receives, processes, drops (sheds) and re-emits
// thousands of batches per simulated second, and without recycling every one
// of them costs an allocation. BatchPool keeps the tuple buffers and the
// columnar blocks of retired batches and hands their capacity to the next
// Acquire()/AcquireColumnar(), so batch churn is allocation-free in steady
// state for both representations.
#ifndef THEMIS_RUNTIME_BATCH_POOL_H_
#define THEMIS_RUNTIME_BATCH_POOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/batch.h"

namespace themis {

/// \brief Recycles Batch buffers. Single-threaded, like the simulator.
class BatchPool {
 public:
  /// Free-list occupancy and recycle counters, exported as `infra.pool.*`
  /// telemetry (see PoolTelemetry in node/telemetry_hooks.h). `*_hits` /
  /// `*_misses` count Acquire calls served from / past the free list;
  /// `*_released` buffers returned; `*_evicted` returns dropped because the
  /// list was full; `*_pooled` / `*_peak` current and high-water occupancy.
  struct Stats {
    uint64_t row_hits = 0;
    uint64_t row_misses = 0;
    uint64_t row_released = 0;
    uint64_t row_evicted = 0;
    uint64_t columnar_hits = 0;
    uint64_t columnar_misses = 0;
    uint64_t columnar_released = 0;
    uint64_t columnar_evicted = 0;
    size_t row_pooled = 0;
    size_t row_peak = 0;
    size_t columnar_pooled = 0;
    size_t columnar_peak = 0;
  };

  /// \param max_pooled retired buffers kept at most per representation
  ///        (excess ones are freed)
  explicit BatchPool(size_t max_pooled = 4096) : max_pooled_(max_pooled) {}

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// Returns an empty row batch with a default header. Its tuple buffer
  /// reuses the capacity of a previously released batch when one is
  /// available.
  Batch Acquire() {
    Batch b;
    if (!free_.empty()) {
      b.tuples = std::move(free_.back());
      free_.pop_back();
      ++stats_.row_hits;
    } else {
      ++stats_.row_misses;
    }
    return b;
  }

  /// Returns an empty columnar batch: `columnar` holds a cleared
  /// ColumnarBlock whose arrays reuse a previously released block's
  /// capacity when one is available.
  Batch AcquireColumnar() {
    Batch b;
    if (!free_blocks_.empty()) {
      b.columnar = std::move(free_blocks_.back());
      free_blocks_.pop_back();
      ++stats_.columnar_hits;
    } else {
      b.columnar = std::make_unique<ColumnarBlock>();
      ++stats_.columnar_misses;
    }
    return b;
  }

  /// Retires `b`, keeping its buffers (tuple vector and/or columnar block)
  /// for future Acquire calls. Buffers are cleared but keep their capacity.
  void Release(Batch&& b) {
    if (b.columnar != nullptr) ReleaseBlock(std::move(b.columnar));
    ReleaseTuples(std::move(b.tuples));
  }

  /// Same, for a bare tuple buffer.
  void ReleaseTuples(std::vector<Tuple>&& tuples) {
    if (tuples.capacity() == 0) return;
    if (free_.size() >= max_pooled_) {
      ++stats_.row_evicted;
      return;
    }
    tuples.clear();
    free_.push_back(std::move(tuples));
    ++stats_.row_released;
    if (free_.size() > stats_.row_peak) stats_.row_peak = free_.size();
  }

  /// Same, for a bare columnar block.
  void ReleaseBlock(std::unique_ptr<ColumnarBlock> block) {
    if (block == nullptr) return;
    if (free_blocks_.size() >= max_pooled_) {
      ++stats_.columnar_evicted;
      return;
    }
    block->Clear();
    free_blocks_.push_back(std::move(block));
    ++stats_.columnar_released;
    if (free_blocks_.size() > stats_.columnar_peak) {
      stats_.columnar_peak = free_blocks_.size();
    }
  }

  /// Snapshot of the recycle counters with current occupancy filled in.
  Stats stats() const {
    Stats s = stats_;
    s.row_pooled = free_.size();
    s.columnar_pooled = free_blocks_.size();
    return s;
  }

  size_t pooled() const { return free_.size(); }
  size_t pooled_blocks() const { return free_blocks_.size(); }
  /// Acquire() calls served from the free list / from the allocator.
  uint64_t hits() const { return stats_.row_hits; }
  uint64_t misses() const { return stats_.row_misses; }

 private:
  std::vector<std::vector<Tuple>> free_;
  std::vector<std::unique_ptr<ColumnarBlock>> free_blocks_;
  size_t max_pooled_;
  Stats stats_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_BATCH_POOL_H_
