// Free-list of batch tuple buffers. Batches are the unit of transfer on the
// data plane: a node receives, processes, drops (sheds) and re-emits
// thousands of batches per simulated second, and without recycling every one
// of them costs a vector allocation. BatchPool keeps the tuple buffers of
// retired batches and hands their capacity to the next Acquire(), so batch
// churn is allocation-free in steady state.
#ifndef THEMIS_RUNTIME_BATCH_POOL_H_
#define THEMIS_RUNTIME_BATCH_POOL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/batch.h"

namespace themis {

/// \brief Recycles Batch tuple buffers. Single-threaded, like the simulator.
class BatchPool {
 public:
  /// \param max_pooled retired buffers kept at most (excess ones are freed)
  explicit BatchPool(size_t max_pooled = 4096) : max_pooled_(max_pooled) {}

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// Returns an empty batch with a default header. Its tuple buffer reuses
  /// the capacity of a previously released batch when one is available.
  Batch Acquire() {
    Batch b;
    if (!free_.empty()) {
      b.tuples = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
    return b;
  }

  /// Retires `b`, keeping its tuple buffer for a future Acquire(). The
  /// buffer is cleared (tuples destroyed, spilled payloads freed) but its
  /// vector capacity is retained.
  void Release(Batch&& b) { ReleaseTuples(std::move(b.tuples)); }

  /// Same, for a bare tuple buffer.
  void ReleaseTuples(std::vector<Tuple>&& tuples) {
    if (tuples.capacity() == 0 || free_.size() >= max_pooled_) return;
    tuples.clear();
    free_.push_back(std::move(tuples));
  }

  size_t pooled() const { return free_.size(); }
  /// Acquire() calls served from the free list / from the allocator.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<std::vector<Tuple>> free_;
  size_t max_pooled_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_BATCH_POOL_H_
