// Operator abstraction. Queries are black boxes to the shedding machinery
// (§4); operators only interact with SIC through the generic Eq. (3)
// propagation implemented once in WindowedOperator / BinaryWindowedOperator.
#ifndef THEMIS_RUNTIME_OPERATOR_H_
#define THEMIS_RUNTIME_OPERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"
#include "runtime/tuple.h"
#include "runtime/window.h"

namespace themis {

class BatchPool;
class CheckpointReader;
class CheckpointWriter;
class ColumnarBlock;

/// \brief Base class of all stream operators.
///
/// Lifecycle at a node: `Ingest()` is called for every delivered batch of
/// tuples; `Advance(now)` is called periodically (and after ingestion) to
/// close windows and emit derived tuples. Emitted tuples already carry their
/// Eq. (3) SIC values; routing them to downstream operators is the caller's
/// responsibility.
class Operator {
 public:
  /// \param name operator type name (diagnostics only)
  /// \param cost_us_per_tuple simulated CPU cost of ingesting one tuple
  Operator(std::string name, double cost_us_per_tuple)
      : name_(std::move(name)), cost_us_per_tuple_(cost_us_per_tuple) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Number of input ports (1 for most operators, 2 for join/covariance).
  virtual int num_ports() const { return 1; }

  /// Feeds tuples into the operator's window state.
  virtual void Ingest(const std::vector<Tuple>& tuples, int port) = 0;

  /// Feeds a columnar block. Operators with a native columnar kernel
  /// (AggregateOp, FilterOp with a FieldPredicate) override this (and
  /// AcceptsColumnar); the default materializes rows into a scratch buffer
  /// and forwards to Ingest(), so every operator consumes either
  /// representation with identical results.
  virtual void IngestColumnar(const ColumnarBlock& block, int port);

  /// True when IngestColumnar avoids row materialization for `port` in the
  /// operator's current configuration (diagnostics / tests).
  virtual bool AcceptsColumnar(int port) const {
    (void)port;
    return false;
  }

  /// True for stateless forwarders (receiver/union/output): a node may
  /// short-circuit a columnar batch past them on a linear chain, charging
  /// their cost without materializing rows (see Node::ExecuteBatch).
  virtual bool IsStatelessPassThrough() const { return false; }

  /// Closes windows up to `watermark` and appends derived tuples to `out`.
  virtual void Advance(SimTime watermark, std::vector<Tuple>* out) = 0;

  // --- checkpoint seam (runtime/checkpoint.h) -------------------------------
  // Every stateful subclass overrides all three so that
  // RestoreFrom(Checkpoint(x)) reproduces x's mutable state bit for bit and
  // ResetState() matches a freshly constructed operator. The base class has
  // no mutable state (columnar_scratch_ is per-call scratch), so the
  // defaults write/read/reset nothing.

  /// Serializes all mutable state (windows, accumulators, cross-pane
  /// scalars) into `w`.
  virtual void Checkpoint(CheckpointWriter* w) const { (void)w; }
  /// Replaces all mutable state with the image in `r`. The operator may be
  /// in any state beforehand — implementations fully reset first, then
  /// adopt the image's mode (e.g. a row image restores into row mode even
  /// if the operator had promoted to columnar since capture).
  virtual void RestoreFrom(CheckpointReader* r) {
    (void)r;
    clear_checkpoint_dirt();
  }
  /// Drops all mutable state, as a fresh instance would start.
  virtual void ResetState() { clear_checkpoint_dirt(); }
  /// ResetState() that hands recyclable tuple buffers back to `pool`
  /// (query retirement; see Fsps::Undeploy). Default: plain reset.
  virtual void ReleaseState(BatchPool* pool) {
    (void)pool;
    ResetState();
  }

  /// Ingested SIC mass since the last Checkpoint/RestoreFrom/ResetState —
  /// the divergence proxy the approximate mode thresholds on.
  double checkpoint_dirt() const { return ckpt_dirt_; }
  void clear_checkpoint_dirt() { ckpt_dirt_ = 0.0; }

  const std::string& name() const { return name_; }
  double cost_us_per_tuple() const { return cost_us_per_tuple_; }
  void set_cost_us_per_tuple(double c) { cost_us_per_tuple_ = c; }

  OperatorId id() const { return id_; }
  void set_id(OperatorId id) { id_ = id; }

 protected:
  /// Accumulates checkpoint dirt; ingest paths call this with the SIC mass
  /// of what they consumed. Mode switches (row -> columnar migration) must
  /// not: they change representation, not state.
  void AddDirt(double sic) { ckpt_dirt_ += sic; }

 private:
  std::string name_;
  double cost_us_per_tuple_;
  double ckpt_dirt_ = 0.0;
  OperatorId id_ = kInvalidId;
  // Scratch for the default IngestColumnar materialization; reused across
  // batches so the row fallback stays allocation-free in steady state.
  std::vector<Tuple> columnar_scratch_;
};

/// \brief Single-input operator that processes one window pane at a time.
///
/// Subclasses implement `ProcessPane()` producing payload-only tuples; this
/// base assigns each produced tuple the Eq. (3) SIC share
/// `pane.TotalSic() / |T_out|` and the pane-end timestamp.
class WindowedOperator : public Operator {
 public:
  WindowedOperator(std::string name, WindowSpec spec, double cost_us_per_tuple)
      : Operator(std::move(name), cost_us_per_tuple), window_(spec) {}

  void Ingest(const std::vector<Tuple>& tuples, int port) override;
  void Advance(SimTime watermark, std::vector<Tuple>* out) override;
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  /// Computes derived payloads for one atomic input set. Implementations must
  /// not set `sic`; timestamps default to the pane end if left at 0.
  virtual void ProcessPane(const Pane& pane, std::vector<Tuple>* out) = 0;

  /// Window state access for subclasses with a columnar fast path that
  /// migrates open row panes into incremental accumulators.
  WindowBuffer& window() { return window_; }
  const WindowBuffer& window() const { return window_; }

 private:
  WindowBuffer window_;
};

/// \brief Two-input operator (join, covariance) with per-port windows.
///
/// Panes from the two ports are matched by window end; a pane is processed
/// once the watermark passes its end, with an empty stand-in if the other
/// port produced nothing for that window. Eq. (3) applies with T_in the union
/// of both panes.
class BinaryWindowedOperator : public Operator {
 public:
  BinaryWindowedOperator(std::string name, WindowSpec spec,
                         double cost_us_per_tuple)
      : Operator(std::move(name), cost_us_per_tuple),
        left_(spec),
        right_(spec) {}

  int num_ports() const override { return 2; }
  void Ingest(const std::vector<Tuple>& tuples, int port) override;
  void Advance(SimTime watermark, std::vector<Tuple>* out) override;
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  virtual void ProcessPanes(const Pane& left, const Pane& right,
                            std::vector<Tuple>* out) = 0;

 private:
  WindowBuffer left_;
  WindowBuffer right_;
  std::map<SimTime, Pane> pending_left_;
  std::map<SimTime, Pane> pending_right_;
};

/// \brief Stateless pass-through used for stream merge points.
class PassThroughOperator : public Operator {
 public:
  explicit PassThroughOperator(std::string name, double cost_us_per_tuple = 0.5)
      : Operator(std::move(name), cost_us_per_tuple) {}

  void Ingest(const std::vector<Tuple>& tuples, int port) override;
  void Advance(SimTime watermark, std::vector<Tuple>* out) override;
  bool IsStatelessPassThrough() const override { return true; }
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 private:
  std::vector<Tuple> pending_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATOR_H_
