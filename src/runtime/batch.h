// Batch model of §6 ("SIC maintenance"): operators emit tuples grouped into
// batches; a batch carries a single header with the SIC value, the query id
// and a creation timestamp. Batches are also the unit of shedding.
#ifndef THEMIS_RUNTIME_BATCH_H_
#define THEMIS_RUNTIME_BATCH_H_

#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"
#include "runtime/tuple.h"

namespace themis {

/// \brief Batch header (the paper's 10-byte per-batch meta-data).
struct BatchHeader {
  /// Query these tuples belong to.
  QueryId query_id = kInvalidId;
  /// Operator that must process this batch at the destination node.
  OperatorId dest_op = kInvalidId;
  /// Input port at the destination operator (joins have two ports).
  int dest_port = 0;
  /// For source batches: the originating source; kInvalidId for derived
  /// batches. Source batches get Eq. (1) SIC stamping at node ingress.
  SourceId source = kInvalidId;
  /// Creation time: source time for source batches, emission time otherwise.
  SimTime created = 0;
  /// Aggregate SIC value of the contained tuples.
  double sic = 0.0;
};

/// \brief A batch of tuples plus its SIC header.
struct Batch {
  BatchHeader header;
  std::vector<Tuple> tuples;

  /// Number of tuples; this is what counts against node capacity `c`.
  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }

  /// Recomputes the header SIC as the sum of tuple SIC values.
  void RefreshHeaderSic();

  /// Sum of tuple SIC values (does not touch the header).
  double TotalSic() const;
};

/// Builds a batch addressed to `(query, op, port)` from the given tuples,
/// refreshing the header SIC.
Batch MakeBatch(QueryId query, OperatorId op, int port, SimTime created,
                std::vector<Tuple> tuples);

}  // namespace themis

#endif  // THEMIS_RUNTIME_BATCH_H_
