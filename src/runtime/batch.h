// Batch model of §6 ("SIC maintenance"): operators emit tuples grouped into
// batches; a batch carries a single header with the SIC value, the query id
// and a creation timestamp. Batches are also the unit of shedding.
#ifndef THEMIS_RUNTIME_BATCH_H_
#define THEMIS_RUNTIME_BATCH_H_

#include <memory>
#include <vector>

#include "common/time_types.h"
#include "runtime/columnar.h"
#include "runtime/ids.h"
#include "runtime/tuple.h"

namespace themis {

/// \brief Batch header (the paper's 10-byte per-batch meta-data).
struct BatchHeader {
  /// Query these tuples belong to.
  QueryId query_id = kInvalidId;
  /// Operator that must process this batch at the destination node.
  OperatorId dest_op = kInvalidId;
  /// Input port at the destination operator (joins have two ports).
  int dest_port = 0;
  /// For source batches: the originating source; kInvalidId for derived
  /// batches. Source batches get Eq. (1) SIC stamping at node ingress.
  SourceId source = kInvalidId;
  /// Creation time: source time for source batches, emission time otherwise.
  SimTime created = 0;
  /// Aggregate SIC value of the contained tuples.
  double sic = 0.0;
};

/// \brief A batch of tuples plus its SIC header.
///
/// Dual representation: a batch carries its tuples either row-oriented (in
/// `tuples`) or columnar (in `columnar`, SoA arrays), never both. Everything
/// header-level (size, SIC mass, shedding decisions) is representation-
/// agnostic; consumers that need rows materialize at the seam (see
/// Operator::IngestColumnar's default). Holding the block by unique_ptr
/// keeps Batch moves cheap and makes Batch move-only, so no code path can
/// silently deep-copy a batch.
struct Batch {
  BatchHeader header;
  std::vector<Tuple> tuples;
  std::unique_ptr<ColumnarBlock> columnar;

  bool is_columnar() const { return columnar != nullptr; }

  /// Number of tuples; this is what counts against node capacity `c`.
  size_t size() const {
    return columnar != nullptr ? columnar->rows() : tuples.size();
  }
  bool empty() const { return size() == 0; }

  /// Recomputes the header SIC as the sum of tuple SIC values.
  void RefreshHeaderSic();

  /// Sum of tuple SIC values (does not touch the header).
  double TotalSic() const;
};

/// Builds a batch addressed to `(query, op, port)` from the given tuples,
/// refreshing the header SIC.
Batch MakeBatch(QueryId query, OperatorId op, int port, SimTime created,
                std::vector<Tuple> tuples);

}  // namespace themis

#endif  // THEMIS_RUNTIME_BATCH_H_
