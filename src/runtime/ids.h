// Identifier vocabulary shared across the runtime, the node layer and the
// federation layer.
#ifndef THEMIS_RUNTIME_IDS_H_
#define THEMIS_RUNTIME_IDS_H_

#include <cstdint>

namespace themis {

/// Identifies a query across the whole FSPS.
using QueryId = int32_t;
/// Identifies an operator within one query graph.
using OperatorId = int32_t;
/// Identifies a fragment within one query graph.
using FragmentId = int32_t;
/// Identifies an FSPS node (= one autonomous site, §3 of the paper).
using NodeId = int32_t;
/// Identifies a data source across the whole FSPS.
using SourceId = int32_t;

inline constexpr int32_t kInvalidId = -1;

}  // namespace themis

#endif  // THEMIS_RUNTIME_IDS_H_
