// Vectorizable kernels over ColumnarBlock arrays. Each kernel is a plain
// sequential loop over contiguous data: floating-point accumulation order is
// part of the determinism contract (columnar results must equal the row path
// bit-for-bit), so none of these may be reordered — the compiler keeps the
// serial FP chains, and the speedup comes from the contiguous layout, not
// from re-associating sums.
#ifndef THEMIS_RUNTIME_COLUMNAR_KERNELS_H_
#define THEMIS_RUNTIME_COLUMNAR_KERNELS_H_

#include <cstddef>

#include "runtime/columnar.h"

namespace themis {
namespace columnar {

/// Eq. (1) stamping: writes `sic` to every slot and returns the ordered sum
/// — the same `sum += sic` loop SicStamper runs over row tuples, so the
/// resulting batch header matches the row path to the last ulp.
inline double StampSics(double* sics, size_t n, double sic) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sics[i] = sic;
    sum += sic;
  }
  return sum;
}

/// Appends the indices of elements satisfying `pred` to `sel` (ascending).
template <typename T, typename Pred>
inline void SelectWhere(const T* x, size_t n, Pred pred,
                        SelectionVector* sel) {
  for (size_t i = 0; i < n; ++i) {
    if (pred(x[i])) sel->push_back(static_cast<uint32_t>(i));
  }
}

/// Ordered sum of a double array (row-path accumulation order).
inline double SumDoubles(const double* x, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += x[i];
  return sum;
}

}  // namespace columnar
}  // namespace themis

#endif  // THEMIS_RUNTIME_COLUMNAR_KERNELS_H_
