// Time-source abstraction shared by the discrete-event simulator and the
// real-time server runtime (themis_server). Both express time as SimTime
// microseconds since an epoch, so RateEstimator, StwTracker, CostModel and
// the shedders run unchanged whether `now` comes from an EventQueue or from
// the machine's monotonic clock.
#ifndef THEMIS_RUNTIME_CLOCK_H_
#define THEMIS_RUNTIME_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/time_types.h"

namespace themis {

/// \brief Monotonic microsecond time source with interruptible waits.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the clock's epoch.
  virtual SimTime NowMicros() const = 0;

  /// Blocks until NowMicros() >= t or `cancel` becomes true (whichever is
  /// first). Callers must re-check `cancel` on return; spurious early
  /// returns after Interrupt() are allowed.
  virtual void WaitUntil(SimTime t, const std::atomic<bool>& cancel) = 0;

  /// Wakes every thread blocked in WaitUntil (typically after setting the
  /// cancel flag). Must be safe to call from any thread.
  virtual void Interrupt() = 0;
};

/// \brief Real time: microseconds since construction on the monotonic clock.
class WallClock : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  SimTime NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void WaitUntil(SimTime t, const std::atomic<bool>& cancel) override;
  void Interrupt() override;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// \brief Test- and oracle-driven time: stands still until advanced.
///
/// A deterministic server run pairs a ManualClock with a 0-worker scheduler:
/// the driver advances the clock to the next event time, pumps the runnable
/// queue to idle, and repeats — reproducing the discrete-event execution
/// order on the threaded machinery.
class ManualClock : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}

  SimTime NowMicros() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  /// Moves time forward (monotonic; earlier times are ignored) and wakes
  /// waiters whose deadline passed.
  void AdvanceTo(SimTime t);

  void WaitUntil(SimTime t, const std::atomic<bool>& cancel) override;
  void Interrupt() override;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  SimTime now_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_CLOCK_H_
