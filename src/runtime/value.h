// Payload value model. Tuples carry a small vector of variant values typed by
// a Schema (relational streaming model, Arasu et al. [8]).
#ifndef THEMIS_RUNTIME_VALUE_H_
#define THEMIS_RUNTIME_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace themis {

/// A single field value.
using Value = std::variant<int64_t, double, std::string>;

/// Numeric view of a value; strings coerce to 0.
inline double AsDouble(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

/// Integer view of a value; doubles truncate, strings coerce to 0.
inline int64_t AsInt(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<int64_t>(*d);
  return 0;
}

/// Renders a value for debugging and report output.
inline std::string ValueToString(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* d = std::get_if<double>(&v)) return std::to_string(*d);
  return std::to_string(std::get<int64_t>(v));
}

}  // namespace themis

#endif  // THEMIS_RUNTIME_VALUE_H_
