// Payload value model. Tuples carry a small list of tagged scalar values
// typed by a Schema (relational streaming model, Arasu et al. [8]).
//
// Value is a 16-byte trivially-copyable tagged scalar: int64 and double are
// stored inline; strings are interned in a StringPool and carried as a
// 32-bit id, so copying values on the data plane never touches the heap.
#ifndef THEMIS_RUNTIME_VALUE_H_
#define THEMIS_RUNTIME_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "runtime/string_pool.h"

namespace themis {

/// \brief A single field value: int64, double, or interned string.
class Value {
 public:
  enum class Kind : uint8_t { kInt64, kDouble, kString };

  /// Trivial on purpose: ValueList's inline buffer default-constructs four
  /// Values per tuple, and zeroing them would cost 64 bytes of writes per
  /// generated tuple only to be overwritten. A default-constructed Value is
  /// indeterminate; containers never read past their size.
  Value() = default;
  constexpr Value(int64_t v) : i_(v), kind_(Kind::kInt64) {}  // NOLINT
  constexpr Value(int v) : Value(static_cast<int64_t>(v)) {}  // NOLINT
  constexpr Value(double v) : d_(v), kind_(Kind::kDouble) {}  // NOLINT
  /// Interns `s` into `pool` (default: the process-wide pool).
  explicit Value(std::string_view s, StringPool* pool = nullptr)
      : kind_(Kind::kString) {
    s_ = (pool != nullptr ? *pool : StringPool::Default()).Intern(s);
  }
  explicit Value(const std::string& s) : Value(std::string_view(s)) {}
  explicit Value(const char* s) : Value(std::string_view(s)) {}

  /// Rebuilds a string value from an already-interned pool id (columnar
  /// string columns store dictionary codes; materializing a row must not
  /// re-intern, so the id round-trips verbatim).
  static Value FromInterned(uint32_t id) {
    Value v;
    v.s_ = id;
    v.kind_ = Kind::kString;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_int() const { return kind_ == Kind::kInt64; }
  bool is_double() const { return kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Raw accessors; only valid for the matching kind.
  int64_t int_value() const { return i_; }
  double double_value() const { return d_; }
  uint32_t string_id() const { return s_; }

  /// Kind-aware equality (int 7 != double 7.0, matching the old variant).
  /// String values compare by interned id: content equality holds ONLY for
  /// values interned into the same pool. A Value does not know its pool
  /// (that would break the 16-byte layout), so comparing string Values from
  /// different pools — e.g. a schema pool vs the process default — is
  /// meaningless; keep each stream's strings in one pool.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::kInt64:
        return a.i_ == b.i_;
      case Kind::kDouble:
        return a.d_ == b.d_;
      case Kind::kString:
        return a.s_ == b.s_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  union {
    int64_t i_;
    double d_;
    uint32_t s_;
  };
  Kind kind_;
};

static_assert(sizeof(Value) == 16, "Value must stay a 16-byte scalar");
static_assert(std::is_trivially_copyable_v<Value>,
              "Value copies must be memcpy-able");

/// Numeric view of a value; strings coerce to 0.
inline double AsDouble(const Value& v) {
  if (v.is_double()) return v.double_value();
  if (v.is_int()) return static_cast<double>(v.int_value());
  return 0.0;
}

/// Integer view of a value; doubles truncate, strings coerce to 0.
inline int64_t AsInt(const Value& v) {
  if (v.is_int()) return v.int_value();
  if (v.is_double()) return static_cast<int64_t>(v.double_value());
  return 0;
}

/// String view of a value; resolves string ids against `pool` (default: the
/// process-wide pool). Non-strings return an empty view.
inline std::string_view AsStringView(const Value& v,
                                     const StringPool* pool = nullptr) {
  if (!v.is_string()) return {};
  return (pool != nullptr ? *pool : StringPool::Default()).Get(v.string_id());
}

/// Renders a value for debugging and report output.
inline std::string ValueToString(const Value& v) {
  if (v.is_string()) return std::string(AsStringView(v));
  if (v.is_double()) return std::to_string(v.double_value());
  return std::to_string(v.int_value());
}

}  // namespace themis

#endif  // THEMIS_RUNTIME_VALUE_H_
