// The tuple model of §3: t = (timestamp, SIC, payload values).
#ifndef THEMIS_RUNTIME_TUPLE_H_
#define THEMIS_RUNTIME_TUPLE_H_

#include <utility>
#include <vector>

#include "common/time_types.h"
#include "runtime/value.h"

namespace themis {

/// \brief One stream tuple: logical timestamp, SIC meta-data and payload.
///
/// The SIC field implements the source information content meta-data of §4:
/// for a source tuple it is assigned per Eq. (1); for a derived tuple it is
/// assigned by the producing operator per Eq. (3).
struct Tuple {
  SimTime timestamp = 0;
  double sic = 0.0;
  std::vector<Value> values;

  Tuple() = default;
  Tuple(SimTime ts, double sic_value, std::vector<Value> vals)
      : timestamp(ts), sic(sic_value), values(std::move(vals)) {}
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_TUPLE_H_
