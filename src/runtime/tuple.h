// The tuple model of §3: t = (timestamp, SIC, payload values).
//
// Payloads use a small-buffer ValueList: up to kInlineCapacity values live
// inside the tuple itself (all Table 1 schemas fit), so creating or copying
// a tuple is allocation-free and a Batch's tuple vector is one contiguous
// block. Wider payloads (joins) spill to a heap block transparently.
#ifndef THEMIS_RUNTIME_TUPLE_H_
#define THEMIS_RUNTIME_TUPLE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <utility>

#include "common/time_types.h"
#include "runtime/value.h"

namespace themis {

/// \brief Vector-like payload container with a 4-value inline buffer.
///
/// Values are trivially copyable, so all element moves are memcpy; only
/// payloads wider than kInlineCapacity ever allocate (one heap block that
/// doubles geometrically, like std::vector).
class ValueList {
 public:
  static constexpr uint32_t kInlineCapacity = 4;

  ValueList() = default;
  ValueList(std::initializer_list<Value> init) {
    for (const Value& v : init) push_back(v);
  }
  ValueList(const ValueList& other) { CopyFrom(other); }
  ValueList(ValueList&& other) noexcept { MoveFrom(std::move(other)); }
  ValueList& operator=(const ValueList& other) {
    if (this != &other) {
      size_ = 0;
      CopyFrom(other);
    }
    return *this;
  }
  ValueList& operator=(ValueList&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  ~ValueList() { FreeHeap(); }

  void push_back(const Value& v) {
    if (size_ == capacity()) Grow(size_ + 1);
    data()[size_++] = v;
  }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(Value(std::forward<Args>(args)...));
  }

  /// Drops all values; spilled capacity is kept for reuse.
  void clear() { size_ = 0; }
  void reserve(size_t n) {
    if (n > capacity()) Grow(static_cast<uint32_t>(n));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True when the payload lives in a heap block rather than inline.
  bool spilled() const { return heap_ != nullptr; }

  Value& operator[](size_t i) { return data()[i]; }
  const Value& operator[](size_t i) const { return data()[i]; }
  Value* data() { return heap_ != nullptr ? heap_ : inline_; }
  const Value* data() const { return heap_ != nullptr ? heap_ : inline_; }
  Value* begin() { return data(); }
  Value* end() { return data() + size_; }
  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  friend bool operator==(const ValueList& a, const ValueList& b) {
    if (a.size_ != b.size_) return false;
    for (uint32_t i = 0; i < a.size_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  uint32_t capacity() const {
    return heap_ != nullptr ? heap_capacity_ : kInlineCapacity;
  }

  void Grow(uint32_t min_capacity) {
    uint32_t cap = capacity() * 2;
    if (cap < min_capacity) cap = min_capacity;
    Value* block = new Value[cap];
    std::memcpy(block, data(), size_ * sizeof(Value));
    FreeHeap();
    heap_ = block;
    heap_capacity_ = cap;
  }

  void CopyFrom(const ValueList& other) {
    if (other.size_ > capacity()) Grow(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(Value));
    size_ = other.size_;
  }

  void MoveFrom(ValueList&& other) noexcept {
    heap_ = other.heap_;
    heap_capacity_ = other.heap_capacity_;
    size_ = other.size_;
    if (heap_ == nullptr) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(Value));
    }
    other.heap_ = nullptr;
    other.heap_capacity_ = 0;
    other.size_ = 0;
  }

  void FreeHeap() {
    delete[] heap_;
    heap_ = nullptr;
    heap_capacity_ = 0;
  }

  Value inline_[kInlineCapacity];
  Value* heap_ = nullptr;
  uint32_t heap_capacity_ = 0;
  uint32_t size_ = 0;
};

/// \brief One stream tuple: logical timestamp, SIC meta-data and payload.
///
/// The SIC field implements the source information content meta-data of §4:
/// for a source tuple it is assigned per Eq. (1); for a derived tuple it is
/// assigned by the producing operator per Eq. (3).
struct Tuple {
  SimTime timestamp = 0;
  double sic = 0.0;
  ValueList values;

  Tuple() = default;
  Tuple(SimTime ts, double sic_value, ValueList vals)
      : timestamp(ts), sic(sic_value), values(std::move(vals)) {}
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_TUPLE_H_
