#include "runtime/checkpoint.h"

#include "runtime/operator.h"

namespace themis {

namespace {

// Values serialize canonically per kind — kind tag plus the active union
// member only. Copying a Value need not preserve its 7 padding bytes (or
// the union bytes beyond a 4-byte string id), so a raw 16-byte memcpy
// image would differ after a restore + re-capture round trip even though
// the value is identical; the canonical form makes images byte-stable.
void PutValue(CheckpointWriter* w, const Value& v) {
  w->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case Value::Kind::kInt64:
      w->PutI64(v.int_value());
      break;
    case Value::Kind::kDouble:
      w->PutDouble(v.double_value());
      break;
    case Value::Kind::kString:
      w->PutU32(v.string_id());
      break;
  }
}

Value GetValue(CheckpointReader* r) {
  switch (static_cast<Value::Kind>(r->GetU8())) {
    case Value::Kind::kInt64:
      return Value(r->GetI64());
    case Value::Kind::kDouble:
      return Value(r->GetDouble());
    case Value::Kind::kString:
      return Value::FromInterned(r->GetU32());
  }
  return Value(int64_t{0});  // unreachable on well-formed images
}

}  // namespace

void CheckpointWriter::PutTuple(const Tuple& t) {
  PutI64(t.timestamp);
  PutDouble(t.sic);
  PutU32(static_cast<uint32_t>(t.values.size()));
  for (size_t i = 0; i < t.values.size(); ++i) PutValue(this, t.values[i]);
}

void CheckpointWriter::PutTuples(const std::vector<Tuple>& tuples) {
  PutU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) PutTuple(t);
}

Tuple CheckpointReader::GetTuple() {
  Tuple t;
  t.timestamp = GetI64();
  t.sic = GetDouble();
  uint32_t n = GetU32();
  t.values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    t.values.push_back(GetValue(this));
  }
  return t;
}

void CheckpointReader::GetTuples(std::vector<Tuple>* out) {
  uint32_t n = GetU32();
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n && ok_; ++i) {
    out->push_back(GetTuple());
  }
}

bool MaybeCheckpointOperator(Operator* op, QueryId q, SimTime now,
                             double error_bound, CheckpointStore* store) {
  // An existing image within the divergence bound stays; the extra state
  // lost on restore is at most the un-captured dirt. A first image is
  // always taken so a restore never has to guess at initial state.
  if (op->checkpoint_dirt() <= error_bound &&
      store->Find(q, op->id()) != nullptr) {
    store->mutable_stats()->skipped_clean += 1;
    return false;
  }
  CheckpointWriter w;
  op->Checkpoint(&w);
  store->Put(q, op->id(), w.Take(), now);
  op->clear_checkpoint_dirt();
  return true;
}

bool RestoreOrResetOperator(Operator* op, QueryId q, CheckpointStore* store) {
  const CheckpointStore::Entry* e = store->Find(q, op->id());
  if (e == nullptr) {
    op->ResetState();
    store->mutable_stats()->missed += 1;
    return false;
  }
  CheckpointReader r(e->bytes);
  op->RestoreFrom(&r);
  store->mutable_stats()->restores += 1;
  return true;
}

}  // namespace themis
