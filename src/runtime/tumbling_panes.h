// Pane-keyed state map for operators that fold input incrementally instead
// of buffering row tuples. TumblingPanes mirrors WindowBuffer's tumbling
// semantics exactly — same pane index computation, same late-tuple clamp to
// the release watermark, same ascending release order, same watermark
// update — which is what makes an incremental (columnar-mode) operator
// bit-identical to its row-buffered counterpart (see tests/columnar_test.cc).
#ifndef THEMIS_RUNTIME_TUMBLING_PANES_H_
#define THEMIS_RUNTIME_TUMBLING_PANES_H_

#include <cstdint>
#include <map>

#include "common/time_types.h"

namespace themis {

template <typename State>
class TumblingPanes {
 public:
  explicit TumblingPanes(SimDuration range) : range_(range) {}

  /// State of the pane covering `ts` (late timestamps clamp to the earliest
  /// still-open pane, like WindowBuffer::Add). The returned pointer stays
  /// valid until Release() erases the pane (map nodes are stable).
  State* At(SimTime ts) {
    SimTime clamped = ts > released_up_to_ ? ts : released_up_to_;
    int64_t idx = clamped / range_;
    if (idx != cached_idx_ || cached_ == nullptr) {
      auto [it, inserted] = open_.try_emplace(idx);
      (void)inserted;
      cached_idx_ = idx;
      cached_ = &it->second;
    }
    return cached_;
  }

  /// Calls `emit(pane_end, state)` for every pane with end <= `watermark`,
  /// in ascending pane order, erasing them and advancing the clamp — the
  /// incremental analogue of WindowBuffer::AdvanceTumbling.
  template <typename Emit>
  void Release(SimTime watermark, Emit&& emit) {
    auto it = open_.begin();
    if (it != open_.end() && PaneEnd(it->first) <= watermark) {
      cached_idx_ = -1;
      cached_ = nullptr;
    }
    SimTime last_end = released_up_to_;
    while (it != open_.end() && PaneEnd(it->first) <= watermark) {
      last_end = PaneEnd(it->first);
      emit(last_end, it->second);
      it = open_.erase(it);
    }
    if (last_end > released_up_to_) released_up_to_ = last_end;
  }

  /// Adopts the release watermark of the WindowBuffer this accumulator
  /// replaces (mode switch mid-stream).
  void SeedReleasedUpTo(SimTime t) { released_up_to_ = t; }
  SimTime released_up_to() const { return released_up_to_; }
  bool empty() const { return open_.empty(); }
  size_t size() const { return open_.size(); }

  /// Calls `fn(pane_index, state)` for every open pane in ascending pane
  /// order (checkpoint serialization).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [idx, state] : open_) fn(idx, state);
  }
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& [idx, state] : open_) fn(idx, state);
  }

  /// Inserts (or overwrites) pane `idx`, bypassing the late-tuple clamp
  /// (checkpoint restore: indices come from a serialized image).
  State* Insert(int64_t idx) {
    cached_idx_ = -1;
    cached_ = nullptr;
    return &open_[idx];
  }

  /// Drops every open pane and rewinds the release watermark to zero, as a
  /// freshly constructed instance would start.
  void Reset() {
    open_.clear();
    cached_idx_ = -1;
    cached_ = nullptr;
    released_up_to_ = 0;
  }

 private:
  SimTime PaneEnd(int64_t idx) const { return (idx + 1) * range_; }

  SimDuration range_;
  std::map<int64_t, State> open_;
  int64_t cached_idx_ = -1;
  State* cached_ = nullptr;
  SimTime released_up_to_ = 0;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_TUMBLING_PANES_H_
