// Operator-state checkpointing: the serialization seam behind
// Operator::Checkpoint()/RestoreFrom() plus the per-node image store the
// federation restores re-placed fragments from (ROADMAP item 4, after
// Cheng, Huang & Lee's approximate fault tolerance).
//
// Semantics: a checkpoint is a byte-exact image of an operator's mutable
// state (window panes, incremental accumulators, cross-pane scalars) at
// capture time. Restoring an image taken at time T after panes in
// (T, crash] were already released re-emits those panes — there is no
// source replay — so the duplication/loss divergence is bounded by the
// checkpoint cadence plus the window range. The approximate mode shrinks
// capture cost further: an operator whose accumulated ingested SIC mass
// since its last image ("dirt") is at or below `error_bound` keeps the old
// image, bounding the extra divergence by that mass.
//
// Images are in-process byte buffers (Value is 16 bytes and trivially
// copyable, and interned string ids stay valid for the process lifetime),
// standing in for a durable backup store: Node keeps its CheckpointStore
// across Crash()/Restore(), which is exactly the upstream-backup model.
// Capture does zero *simulated* work, like telemetry, so enabling
// checkpoints never perturbs the event schedule — sequential == parsim@1
// and run-to-run bit-identity hold with the feature on.
#ifndef THEMIS_RUNTIME_CHECKPOINT_H_
#define THEMIS_RUNTIME_CHECKPOINT_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"
#include "runtime/tuple.h"

namespace themis {

class Operator;

/// \brief Append-only byte sink an operator serializes its state into.
///
/// All scalars are written by memcpy of their in-memory representation
/// (doubles bit-exact); Tuples write timestamp, sic and each Value in a
/// canonical kind-tagged form (copies need not preserve a Value's padding
/// bytes, so raw 16-byte images would not survive a restore + re-capture
/// byte-identically). Images never leave the process, so no endianness or
/// versioning concerns apply.
class CheckpointWriter {
 public:
  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutRaw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  void PutTuple(const Tuple& t);
  void PutTuples(const std::vector<Tuple>& tuples);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// \brief Cursor over a checkpoint image. Overruns set ok() to false and
/// return zero values instead of reading past the end, so a malformed
/// image degrades to empty state rather than undefined behaviour.
class CheckpointReader {
 public:
  explicit CheckpointReader(const std::vector<uint8_t>& bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  uint8_t GetU8() { return Get<uint8_t>(); }
  uint32_t GetU32() { return Get<uint32_t>(); }
  uint64_t GetU64() { return Get<uint64_t>(); }
  int64_t GetI64() { return Get<int64_t>(); }
  double GetDouble() { return Get<double>(); }
  Tuple GetTuple();
  void GetTuples(std::vector<Tuple>* out);

  bool AtEnd() const { return p_ == end_; }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  T Get() {
    T v{};
    if (static_cast<size_t>(end_ - p_) < sizeof(T)) {
      ok_ = false;
      p_ = end_;
      return v;
    }
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

/// Checkpointing knobs, shared by the DES Node and the realtime
/// ServerPipeline. Off by default: zero captures, zero stored bytes, every
/// pre-existing figure byte-identical.
struct CheckpointConfig {
  bool enabled = false;
  /// Minimum time between capture sweeps of a node's hosted operators.
  /// Captures ride the shed tick (they run right after the window pump, when
  /// state is freshest), so the effective cadence is this rounded up to the
  /// next tick.
  SimDuration cadence = Millis(500);
  /// Approximate mode (> 0): an operator whose ingested SIC mass since its
  /// last image is <= this keeps the old image instead of re-serializing.
  /// 0 re-captures on any new input (exact-at-cadence).
  double error_bound = 0.0;
};

/// \brief Per-node map of the latest image per (query, operator).
class CheckpointStore {
 public:
  struct Entry {
    std::vector<uint8_t> bytes;
    SimTime taken_at = 0;
  };
  /// Capture/restore counters, exported as `infra.ckpt.*` telemetry.
  struct Stats {
    uint64_t taken = 0;          ///< images (re)written
    uint64_t skipped_clean = 0;  ///< capture skipped: dirt <= error_bound
    uint64_t restores = 0;       ///< operators restored from an image
    uint64_t missed = 0;         ///< restore requested but no image: reset
    uint64_t bytes_written = 0;  ///< cumulative serialized bytes
  };

  void Put(QueryId q, OperatorId op, std::vector<uint8_t> bytes, SimTime now) {
    Entry& e = entries_[Key(q, op)];
    stats_.bytes_written += bytes.size();
    stats_.taken += 1;
    e.bytes = std::move(bytes);
    e.taken_at = now;
  }

  const Entry* Find(QueryId q, OperatorId op) const {
    auto it = entries_.find(Key(q, op));
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Hands operator `op`'s image over to `dst` (fragment re-placement moves
  /// the backup with the fragment). No-op when there is none.
  void MoveEntry(QueryId q, OperatorId op, CheckpointStore* dst) {
    auto it = entries_.find(Key(q, op));
    if (it == entries_.end()) return;
    dst->entries_[it->first] = std::move(it->second);
    entries_.erase(it);
  }

  /// Drops every image of query `q` (undeploy).
  void EraseQuery(QueryId q) {
    entries_.erase(entries_.lower_bound(Key(q, 0)),
                   entries_.upper_bound(Key(q, INT32_MAX)));
  }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }
  /// Bytes currently resident across all images.
  size_t resident_bytes() const {
    size_t n = 0;
    for (const auto& [k, e] : entries_) n += e.bytes.size();
    return n;
  }

  const Stats& stats() const { return stats_; }
  Stats* mutable_stats() { return &stats_; }

 private:
  static std::pair<QueryId, OperatorId> Key(QueryId q, OperatorId op) {
    return {q, op};
  }

  std::map<std::pair<QueryId, OperatorId>, Entry> entries_;
  Stats stats_;
};

/// Captures `op` into `store` unless its dirt is within `error_bound` of
/// the existing image (approximate mode; a first image is always taken).
/// Returns true when an image was (re)written. Does zero simulated work.
bool MaybeCheckpointOperator(Operator* op, QueryId q, SimTime now,
                             double error_bound, CheckpointStore* store);

/// Restores `op` from its image in `store`, or resets it when none exists
/// (counted as `missed`). Returns true when an image was found.
bool RestoreOrResetOperator(Operator* op, QueryId q, CheckpointStore* store);

}  // namespace themis

#endif  // THEMIS_RUNTIME_CHECKPOINT_H_
