#include "runtime/operator.h"

#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"
#include "runtime/columnar.h"

namespace themis {

namespace {

double TotalSicOf(const std::vector<Tuple>& tuples) {
  double sum = 0.0;
  for (const Tuple& t : tuples) sum += t.sic;
  return sum;
}

}  // namespace

void Operator::IngestColumnar(const ColumnarBlock& block, int port) {
  columnar_scratch_.clear();
  block.MaterializeInto(&columnar_scratch_);
  Ingest(columnar_scratch_, port);
}

namespace {

// Applies Eq. (3): every derived tuple receives an equal share of the SIC
// mass of its atomic input set. Produced tuples with no timestamp inherit the
// pane end (the emission time).
void FinalizeOutputs(double input_sic, SimTime pane_end, size_t first,
                     std::vector<Tuple>* out) {
  size_t produced = out->size() - first;
  if (produced == 0) return;
  double share = input_sic / static_cast<double>(produced);
  for (size_t i = first; i < out->size(); ++i) {
    (*out)[i].sic = share;
    if ((*out)[i].timestamp == 0) (*out)[i].timestamp = pane_end;
  }
}

}  // namespace

void WindowedOperator::Ingest(const std::vector<Tuple>& tuples, int port) {
  (void)port;
  AddDirt(TotalSicOf(tuples));
  for (const Tuple& t : tuples) window_.Add(t);
}

void WindowedOperator::Checkpoint(CheckpointWriter* w) const {
  window_.Checkpoint(w);
}

void WindowedOperator::RestoreFrom(CheckpointReader* r) {
  window_.RestoreFrom(r);
  clear_checkpoint_dirt();
}

void WindowedOperator::ResetState() {
  window_.ResetState();
  clear_checkpoint_dirt();
}

void WindowedOperator::ReleaseState(BatchPool* pool) {
  window_.ReleaseState(pool);
  clear_checkpoint_dirt();
}

void WindowedOperator::Advance(SimTime watermark, std::vector<Tuple>* out) {
  for (Pane& pane : window_.Advance(watermark)) {
    size_t first = out->size();
    ProcessPane(pane, out);
    FinalizeOutputs(pane.TotalSic(), pane.end, first, out);
    window_.Recycle(std::move(pane.tuples));
  }
}

void BinaryWindowedOperator::Ingest(const std::vector<Tuple>& tuples,
                                    int port) {
  AddDirt(TotalSicOf(tuples));
  WindowBuffer& w = (port == 0) ? left_ : right_;
  for (const Tuple& t : tuples) w.Add(t);
}

void BinaryWindowedOperator::Checkpoint(CheckpointWriter* w) const {
  left_.Checkpoint(w);
  right_.Checkpoint(w);
  for (const auto* pending : {&pending_left_, &pending_right_}) {
    w->PutU32(static_cast<uint32_t>(pending->size()));
    for (const auto& [end, pane] : *pending) {
      w->PutI64(end);
      w->PutI64(pane.start);
      w->PutI64(pane.end);
      w->PutTuples(pane.tuples);
    }
  }
}

void BinaryWindowedOperator::RestoreFrom(CheckpointReader* r) {
  left_.RestoreFrom(r);
  right_.RestoreFrom(r);
  for (auto* pending : {&pending_left_, &pending_right_}) {
    pending->clear();
    uint32_t n = r->GetU32();
    for (uint32_t i = 0; i < n && r->ok(); ++i) {
      SimTime end = r->GetI64();
      Pane& pane = (*pending)[end];
      pane.start = r->GetI64();
      pane.end = r->GetI64();
      r->GetTuples(&pane.tuples);
    }
  }
  clear_checkpoint_dirt();
}

void BinaryWindowedOperator::ResetState() {
  left_.ResetState();
  right_.ResetState();
  pending_left_.clear();
  pending_right_.clear();
  clear_checkpoint_dirt();
}

void BinaryWindowedOperator::ReleaseState(BatchPool* pool) {
  left_.ReleaseState(pool);
  right_.ReleaseState(pool);
  for (auto* pending : {&pending_left_, &pending_right_}) {
    for (auto& [end, pane] : *pending) {
      pool->ReleaseTuples(std::move(pane.tuples));
    }
    pending->clear();
  }
  clear_checkpoint_dirt();
}

void BinaryWindowedOperator::Advance(SimTime watermark,
                                     std::vector<Tuple>* out) {
  for (Pane& p : left_.Advance(watermark)) pending_left_[p.end] = std::move(p);
  for (Pane& p : right_.Advance(watermark)) {
    pending_right_[p.end] = std::move(p);
  }

  // Process every window end that the watermark has passed, pairing panes and
  // substituting an empty pane when one side is silent.
  while (!pending_left_.empty() || !pending_right_.empty()) {
    SimTime end;
    if (pending_left_.empty()) {
      end = pending_right_.begin()->first;
    } else if (pending_right_.empty()) {
      end = pending_left_.begin()->first;
    } else {
      end = std::min(pending_left_.begin()->first,
                     pending_right_.begin()->first);
    }
    if (end > watermark) break;

    Pane left, right;
    left.end = right.end = end;
    if (auto it = pending_left_.find(end); it != pending_left_.end()) {
      left = std::move(it->second);
      pending_left_.erase(it);
    }
    if (auto it = pending_right_.find(end); it != pending_right_.end()) {
      right = std::move(it->second);
      pending_right_.erase(it);
    }

    size_t first = out->size();
    ProcessPanes(left, right, out);
    FinalizeOutputs(left.TotalSic() + right.TotalSic(), end, first, out);
    left_.Recycle(std::move(left.tuples));
    right_.Recycle(std::move(right.tuples));
  }
}

void PassThroughOperator::Ingest(const std::vector<Tuple>& tuples, int port) {
  (void)port;
  AddDirt(TotalSicOf(tuples));
  pending_.insert(pending_.end(), tuples.begin(), tuples.end());
}

void PassThroughOperator::Checkpoint(CheckpointWriter* w) const {
  w->PutTuples(pending_);
}

void PassThroughOperator::RestoreFrom(CheckpointReader* r) {
  r->GetTuples(&pending_);
  clear_checkpoint_dirt();
}

void PassThroughOperator::ResetState() {
  pending_.clear();
  clear_checkpoint_dirt();
}

void PassThroughOperator::ReleaseState(BatchPool* pool) {
  pool->ReleaseTuples(std::move(pending_));
  pending_.clear();
  clear_checkpoint_dirt();
}

void PassThroughOperator::Advance(SimTime watermark, std::vector<Tuple>* out) {
  (void)watermark;
  out->insert(out->end(), pending_.begin(), pending_.end());
  pending_.clear();
}

}  // namespace themis
