#include "runtime/clock.h"

namespace themis {

void WallClock::WaitUntil(SimTime t, const std::atomic<bool>& cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_until(lock, epoch_ + std::chrono::microseconds(t), [&] {
    return cancel.load(std::memory_order_acquire) || NowMicros() >= t;
  });
}

void WallClock::Interrupt() {
  // Take the lock so a waiter between its predicate check and its wait
  // cannot miss the notification.
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

void ManualClock::AdvanceTo(SimTime t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (t > now_) {
    now_ = t;
    cv_.notify_all();
  }
}

void ManualClock::WaitUntil(SimTime t, const std::atomic<bool>& cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return cancel.load(std::memory_order_acquire) || now_ >= t;
  });
}

void ManualClock::Interrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

}  // namespace themis
