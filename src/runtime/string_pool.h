// String interning for the data plane. Tuple payloads never carry owned
// strings: a string-typed Value stores a 32-bit id into a StringPool, so
// Values stay 16 bytes and copying a tuple never allocates.
#ifndef THEMIS_RUNTIME_STRING_POOL_H_
#define THEMIS_RUNTIME_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace themis {

/// \brief Append-only deduplicating string table.
///
/// Interning the same string twice yields the same id, so string equality on
/// the hot path is an integer compare. Ids are dense and never invalidated.
/// Each Schema owns a pool for its stream's payloads; `Default()` is the
/// process-wide pool used when no schema is in scope (tests, ad-hoc values).
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id of `s`, inserting it on first sight.
  uint32_t Intern(std::string_view s);

  /// The string for `id`; `id` must come from this pool.
  const std::string& Get(uint32_t id) const { return strings_[id]; }

  /// Number of distinct interned strings.
  size_t size() const { return strings_.size(); }

  /// Process-wide pool backing Value's string constructors.
  static StringPool& Default();

 private:
  // deque: stable references, so index_ keys can view into stored strings.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_STRING_POOL_H_
