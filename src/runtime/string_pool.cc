#include "runtime/string_pool.h"

namespace themis {

uint32_t StringPool::Intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return id;
}

StringPool& StringPool::Default() {
  static StringPool pool;
  return pool;
}

}  // namespace themis
