// Columnar (SoA) batch storage. A ColumnarBlock holds the same logical
// content as a row-oriented tuple vector — per-tuple timestamp, SIC and
// payload — but laid out as contiguous per-field arrays so the hot kernels
// (Eq. (1) stamping, selection, windowed aggregation) run as tight
// auto-vectorizable loops instead of striding over 80-byte Tuples.
//
// Layout per block:
//  - `timestamps()` / `sics()`: one entry per row.
//  - one `Column` per payload field: a typed array (int64 / double /
//    StringPool dictionary codes, mirroring Value's three kinds) plus a
//    validity bitmap. Payloads are prefix-dense (ValueList has no holes), so
//    row `r` carries field `c` iff `c < width(r)`; the bitmap encodes that
//    prefix and `MaterializeInto()` reconstructs every row bit-for-bit.
//
// Conversion in either direction is exact: values keep their Value bits
// (doubles are never re-rounded, string ids are carried verbatim), which is
// what lets the columnar data plane guarantee byte-identical results vs the
// row path (see tests/columnar_test.cc and the CI parity byte-diff).
#ifndef THEMIS_RUNTIME_COLUMNAR_H_
#define THEMIS_RUNTIME_COLUMNAR_H_

#include <cstdint>
#include <vector>

#include "common/time_types.h"
#include "runtime/tuple.h"

namespace themis {

/// Row indices selected by a vectorized predicate, ascending. The columnar
/// analogue of InputBuffer::RetainIndices' keep list, at tuple granularity.
using SelectionVector = std::vector<uint32_t>;

/// \brief Structure-of-arrays storage for one batch of tuples.
class ColumnarBlock {
 public:
  /// One payload field: a typed contiguous array plus a validity bitmap.
  /// Only the array matching `kind` is populated. While `dense` the bitmap
  /// is not materialized (every row so far carries the field); the first
  /// missing value materializes it.
  struct Column {
    Value::Kind kind = Value::Kind::kDouble;
    std::vector<int64_t> i64;
    std::vector<double> f64;
    std::vector<uint32_t> str;  ///< StringPool dictionary codes
    std::vector<uint64_t> valid;
    bool dense = true;

    bool IsValid(size_t row) const {
      return dense || ((valid[row >> 6] >> (row & 63)) & 1u) != 0;
    }
    /// Field value of `row` as a Value (exact bits; row must be valid).
    Value ValueAt(size_t row) const;
    /// Numeric view (AsDouble semantics: ints widen, strings coerce to 0).
    double DoubleAt(size_t row) const {
      switch (kind) {
        case Value::Kind::kDouble:
          return f64[row];
        case Value::Kind::kInt64:
          return static_cast<double>(i64[row]);
        case Value::Kind::kString:
          return 0.0;
      }
      return 0.0;
    }
  };

  size_t rows() const { return timestamps_.size(); }
  /// Number of active columns (the widest payload appended so far).
  size_t width() const { return width_; }

  std::vector<SimTime>& timestamps() { return timestamps_; }
  const std::vector<SimTime>& timestamps() const { return timestamps_; }
  std::vector<double>& sics() { return sics_; }
  const std::vector<double>& sics() const { return sics_; }
  const Column& col(size_t c) const { return columns_[c]; }

  /// Drops all rows but keeps every array's capacity (BatchPool recycling).
  void Clear();
  void ReserveRows(size_t n);

  /// Appends one tuple. Returns false — without mutating the block — when
  /// the payload cannot be stored columnar (a field's kind differs from the
  /// column's established kind); the caller then falls back to rows.
  bool AppendTuple(const Tuple& t);

  /// Fast path for generated single-double payloads (the source hot loop).
  /// Equivalent to AppendTuple({ts, sic, {v}}); false on column-kind clash.
  /// Inline: the source generation loop calls this once per tuple.
  bool AppendRow(SimTime ts, double sic, double v) {
    if (width_ == 0) Activate(0, Value::Kind::kDouble);
    Column& c0 = columns_[0];
    if (c0.kind != Value::Kind::kDouble) return false;
    const size_t row = rows();
    if (c0.dense && width_ == 1) {  // hot case: single dense double column
      timestamps_.push_back(ts);
      sics_.push_back(sic);
      c0.f64.push_back(v);
      return true;
    }
    return AppendRowSlow(ts, sic, v, row);
  }

  /// Appends every row to `out` as Tuples, reconstructing each payload
  /// exactly (same widths, same Value bits) as the rows that were appended.
  void MaterializeInto(std::vector<Tuple>* out) const;
  /// Same for a single row; `t`'s payload is cleared first.
  void MaterializeRow(size_t r, Tuple* t) const;

  /// Ordered sum of the SIC array — same accumulation order as the row
  /// path's Batch::TotalSic(), so headers match bit-for-bit.
  double SumSics() const;

  /// Copies the selected rows (ascending `sel` indices) into `out`,
  /// preserving column types and validity. `out` is cleared first.
  void GatherInto(const SelectionVector& sel, ColumnarBlock* out) const;

 private:
  Column& Activate(size_t c, Value::Kind kind);
  bool AppendRowSlow(SimTime ts, double sic, double v, size_t row);
  static void AppendMissing(Column* col, size_t row);
  static void AppendValue(Column* col, size_t row, const Value& v);

  std::vector<SimTime> timestamps_;
  std::vector<double> sics_;
  std::vector<Column> columns_;  // storage kept across Clear() for reuse
  size_t width_ = 0;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_COLUMNAR_H_
