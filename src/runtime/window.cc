#include "runtime/window.h"

#include <algorithm>
#include <utility>

#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"

namespace themis {

WindowSpec WindowSpec::TumblingTime(SimDuration range) {
  WindowSpec s;
  s.kind = WindowKind::kTumblingTime;
  s.range = range;
  s.slide = range;
  return s;
}

WindowSpec WindowSpec::SlidingTime(SimDuration range, SimDuration slide) {
  WindowSpec s;
  s.kind = WindowKind::kSlidingTime;
  s.range = range;
  s.slide = slide;
  return s;
}

WindowSpec WindowSpec::Count(size_t n) {
  WindowSpec s;
  s.kind = WindowKind::kCount;
  s.count = n;
  return s;
}

double Pane::TotalSic() const {
  double sum = 0.0;
  for (const Tuple& t : tuples) sum += t.sic;
  return sum;
}

WindowBuffer::WindowBuffer(WindowSpec spec) : spec_(spec) {}

void WindowBuffer::Recycle(std::vector<Tuple>&& tuples) {
  if (tuples.capacity() == 0 || recycled_.size() >= kMaxRecycled) return;
  tuples.clear();
  recycled_.push_back(std::move(tuples));
}

std::vector<Tuple> WindowBuffer::TakeBuffer() {
  if (recycled_.empty()) return {};
  std::vector<Tuple> buf = std::move(recycled_.back());
  recycled_.pop_back();
  return buf;
}

void WindowBuffer::Add(const Tuple& t) {
  switch (spec_.kind) {
    case WindowKind::kTumblingTime: {
      SimTime ts = std::max(t.timestamp, released_up_to_);
      int64_t idx = ts / spec_.range;
      Pane* p = cached_pane_;
      if (idx != cached_idx_ || p == nullptr) {
        auto [it, inserted] = open_.try_emplace(idx);
        p = &it->second;
        if (inserted) {
          p->start = idx * spec_.range;
          p->end = p->start + spec_.range;
          p->tuples = TakeBuffer();
        }
        cached_idx_ = idx;
        cached_pane_ = p;
      }
      p->tuples.push_back(t);
      if (p->tuples.back().timestamp < released_up_to_) {
        p->tuples.back().timestamp = released_up_to_;
      }
      break;
    }
    case WindowKind::kSlidingTime: {
      sliding_buf_.push_back(t);
      break;
    }
    case WindowKind::kCount: {
      count_buf_.push_back(t);
      if (count_buf_.size() >= spec_.count && spec_.count > 0) {
        Pane p;
        p.start = count_buf_.front().timestamp;
        p.end = count_buf_.back().timestamp;
        p.tuples = std::move(count_buf_);
        count_buf_ = TakeBuffer();
        ready_.push_back(std::move(p));
      }
      break;
    }
  }
}

std::vector<Pane> WindowBuffer::Advance(SimTime watermark) {
  switch (spec_.kind) {
    case WindowKind::kTumblingTime:
      return AdvanceTumbling(watermark);
    case WindowKind::kSlidingTime:
      return AdvanceSliding(watermark);
    case WindowKind::kCount: {
      std::vector<Pane> out = std::move(ready_);
      ready_.clear();
      return out;
    }
  }
  return {};
}

std::vector<Pane> WindowBuffer::AdvanceTumbling(SimTime watermark) {
  std::vector<Pane> out;
  auto it = open_.begin();
  if (it != open_.end() && it->second.end <= watermark) {
    cached_idx_ = -1;
    cached_pane_ = nullptr;
  }
  while (it != open_.end() && it->second.end <= watermark) {
    out.push_back(std::move(it->second));
    it = open_.erase(it);
  }
  if (!out.empty()) released_up_to_ = std::max(released_up_to_, out.back().end);
  return out;
}

std::vector<Pane> WindowBuffer::AdvanceSliding(SimTime watermark) {
  std::vector<Pane> out;
  if (!slide_initialized_) {
    if (sliding_buf_.empty()) return out;
    // Align the first pane end on a slide boundary past the earliest tuple.
    SimTime first = sliding_buf_.front().timestamp;
    next_slide_end_ = ((first / spec_.slide) + 1) * spec_.slide;
    slide_initialized_ = true;
  }
  // A tuple participates in `overlap` consecutive panes; divide its SIC so
  // that the total SIC mass emitted over time equals the mass ingested (§6).
  const double overlap =
      std::max<double>(1.0, static_cast<double>(spec_.range) /
                                static_cast<double>(spec_.slide));
  while (next_slide_end_ <= watermark) {
    SimTime end = next_slide_end_;
    SimTime start = end - spec_.range;
    Pane p;
    p.start = start;
    p.end = end;
    p.tuples = TakeBuffer();
    for (const Tuple& t : sliding_buf_) {
      if (t.timestamp >= start && t.timestamp < end) {
        Tuple copy = t;
        copy.sic = t.sic / overlap;
        p.tuples.push_back(std::move(copy));
      }
    }
    // Tuples that will never appear in a future pane can be dropped.
    SimTime horizon = end + spec_.slide - spec_.range;
    while (!sliding_buf_.empty() && sliding_buf_.front().timestamp < horizon) {
      sliding_buf_.pop_front();
    }
    out.push_back(std::move(p));
    next_slide_end_ += spec_.slide;
  }
  return out;
}

std::vector<Pane> WindowBuffer::DrainOpenTumbling() {
  std::vector<Pane> out;
  out.reserve(open_.size());
  for (auto& [idx, pane] : open_) out.push_back(std::move(pane));
  open_.clear();
  cached_idx_ = -1;
  cached_pane_ = nullptr;
  return out;
}

void WindowBuffer::Checkpoint(CheckpointWriter* w) const {
  w->PutI64(released_up_to_);
  w->PutU32(static_cast<uint32_t>(open_.size()));
  for (const auto& [idx, pane] : open_) {
    w->PutI64(idx);
    w->PutI64(pane.start);
    w->PutI64(pane.end);
    w->PutTuples(pane.tuples);
  }
  w->PutU32(static_cast<uint32_t>(sliding_buf_.size()));
  for (const Tuple& t : sliding_buf_) w->PutTuple(t);
  w->PutI64(next_slide_end_);
  w->PutU8(slide_initialized_ ? 1 : 0);
  w->PutTuples(count_buf_);
  w->PutU32(static_cast<uint32_t>(ready_.size()));
  for (const Pane& pane : ready_) {
    w->PutI64(pane.start);
    w->PutI64(pane.end);
    w->PutTuples(pane.tuples);
  }
}

void WindowBuffer::RestoreFrom(CheckpointReader* r) {
  ResetState();
  released_up_to_ = r->GetI64();
  uint32_t n_open = r->GetU32();
  for (uint32_t i = 0; i < n_open && r->ok(); ++i) {
    int64_t idx = r->GetI64();
    Pane& pane = open_[idx];
    pane.start = r->GetI64();
    pane.end = r->GetI64();
    pane.tuples = TakeBuffer();
    r->GetTuples(&pane.tuples);
  }
  uint32_t n_sliding = r->GetU32();
  for (uint32_t i = 0; i < n_sliding && r->ok(); ++i) {
    sliding_buf_.push_back(r->GetTuple());
  }
  next_slide_end_ = r->GetI64();
  slide_initialized_ = r->GetU8() != 0;
  r->GetTuples(&count_buf_);
  uint32_t n_ready = r->GetU32();
  for (uint32_t i = 0; i < n_ready && r->ok(); ++i) {
    Pane pane;
    pane.start = r->GetI64();
    pane.end = r->GetI64();
    pane.tuples = TakeBuffer();
    r->GetTuples(&pane.tuples);
    ready_.push_back(std::move(pane));
  }
}

void WindowBuffer::ResetState() {
  for (auto& [idx, pane] : open_) Recycle(std::move(pane.tuples));
  open_.clear();
  cached_idx_ = -1;
  cached_pane_ = nullptr;
  released_up_to_ = 0;
  sliding_buf_.clear();
  next_slide_end_ = 0;
  slide_initialized_ = false;
  Recycle(std::move(count_buf_));
  count_buf_.clear();
  for (Pane& pane : ready_) Recycle(std::move(pane.tuples));
  ready_.clear();
}

void WindowBuffer::ReleaseState(BatchPool* pool) {
  for (auto& [idx, pane] : open_) pool->ReleaseTuples(std::move(pane.tuples));
  open_.clear();
  cached_idx_ = -1;
  cached_pane_ = nullptr;
  released_up_to_ = 0;
  sliding_buf_.clear();
  sliding_buf_.shrink_to_fit();
  next_slide_end_ = 0;
  slide_initialized_ = false;
  pool->ReleaseTuples(std::move(count_buf_));
  count_buf_.clear();
  for (Pane& pane : ready_) pool->ReleaseTuples(std::move(pane.tuples));
  ready_.clear();
  for (std::vector<Tuple>& buf : recycled_) pool->ReleaseTuples(std::move(buf));
  recycled_.clear();
  recycled_.shrink_to_fit();
}

size_t WindowBuffer::buffered() const {
  switch (spec_.kind) {
    case WindowKind::kTumblingTime: {
      size_t n = 0;
      for (const auto& [idx, pane] : open_) n += pane.tuples.size();
      return n;
    }
    case WindowKind::kSlidingTime:
      return sliding_buf_.size();
    case WindowKind::kCount:
      return count_buf_.size();
  }
  return 0;
}

}  // namespace themis
