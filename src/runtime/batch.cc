#include "runtime/batch.h"

namespace themis {

void Batch::RefreshHeaderSic() { header.sic = TotalSic(); }

double Batch::TotalSic() const {
  if (columnar != nullptr) return columnar->SumSics();
  double sum = 0.0;
  for (const Tuple& t : tuples) sum += t.sic;
  return sum;
}

Batch MakeBatch(QueryId query, OperatorId op, int port, SimTime created,
                std::vector<Tuple> tuples) {
  Batch b;
  b.header.query_id = query;
  b.header.dest_op = op;
  b.header.dest_port = port;
  b.header.created = created;
  b.tuples = std::move(tuples);
  b.RefreshHeaderSic();
  return b;
}

}  // namespace themis
