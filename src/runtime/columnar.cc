#include "runtime/columnar.h"

namespace themis {

namespace {

size_t Words(size_t bits) { return (bits + 63) / 64; }

void SetBit(std::vector<uint64_t>* bits, size_t i) {
  if (bits->size() < Words(i + 1)) bits->resize(Words(i + 1), 0);
  (*bits)[i >> 6] |= uint64_t{1} << (i & 63);
}

// Materializes an all-valid bitmap for the first `nrows` rows; called when a
// dense column sees its first missing value.
void MakeSparse(ColumnarBlock::Column* col, size_t nrows) {
  col->dense = false;
  col->valid.assign(Words(nrows), ~uint64_t{0});
  if (nrows % 64 != 0 && !col->valid.empty()) {
    col->valid.back() = ~uint64_t{0} >> (64 - nrows % 64);
  }
}

}  // namespace

Value ColumnarBlock::Column::ValueAt(size_t row) const {
  switch (kind) {
    case Value::Kind::kInt64:
      return Value(i64[row]);
    case Value::Kind::kDouble:
      return Value(f64[row]);
    case Value::Kind::kString:
      return Value::FromInterned(str[row]);
  }
  return Value(0.0);
}

void ColumnarBlock::Clear() {
  timestamps_.clear();
  sics_.clear();
  for (Column& c : columns_) {
    c.i64.clear();
    c.f64.clear();
    c.str.clear();
    c.valid.clear();
    c.dense = true;
  }
  width_ = 0;
}

void ColumnarBlock::ReserveRows(size_t n) {
  timestamps_.reserve(n);
  sics_.reserve(n);
  for (size_t c = 0; c < width_; ++c) {
    Column& col = columns_[c];
    switch (col.kind) {
      case Value::Kind::kInt64:
        col.i64.reserve(n);
        break;
      case Value::Kind::kDouble:
        col.f64.reserve(n);
        break;
      case Value::Kind::kString:
        col.str.reserve(n);
        break;
    }
  }
}

ColumnarBlock::Column& ColumnarBlock::Activate(size_t c, Value::Kind kind) {
  if (c >= columns_.size()) columns_.resize(c + 1);
  Column& col = columns_[c];
  col.kind = kind;
  col.i64.clear();
  col.f64.clear();
  col.str.clear();
  const size_t nrows = rows();
  // Rows appended before this column existed do not carry the field.
  if (nrows > 0) {
    col.dense = false;
    col.valid.assign(Words(nrows), 0);
    switch (kind) {
      case Value::Kind::kInt64:
        col.i64.resize(nrows, 0);
        break;
      case Value::Kind::kDouble:
        col.f64.resize(nrows, 0.0);
        break;
      case Value::Kind::kString:
        col.str.resize(nrows, 0);
        break;
    }
  } else {
    col.dense = true;
    col.valid.clear();
  }
  width_ = c + 1;
  return col;
}

void ColumnarBlock::AppendValue(Column* col, size_t row, const Value& v) {
  if (!col->dense) SetBit(&col->valid, row);
  switch (col->kind) {
    case Value::Kind::kInt64:
      col->i64.push_back(v.int_value());
      break;
    case Value::Kind::kDouble:
      col->f64.push_back(v.double_value());
      break;
    case Value::Kind::kString:
      col->str.push_back(v.string_id());
      break;
  }
}

void ColumnarBlock::AppendMissing(Column* col, size_t row) {
  if (col->dense) MakeSparse(col, row);
  if (col->valid.size() < Words(row + 1)) col->valid.resize(Words(row + 1), 0);
  // Keep the typed array row-aligned with a zero slot (never read: the
  // validity bit stays clear).
  switch (col->kind) {
    case Value::Kind::kInt64:
      col->i64.push_back(0);
      break;
    case Value::Kind::kDouble:
      col->f64.push_back(0.0);
      break;
    case Value::Kind::kString:
      col->str.push_back(0);
      break;
  }
}

bool ColumnarBlock::AppendTuple(const Tuple& t) {
  const size_t w = t.values.size();
  // Validate before mutating: a failed append must leave the block intact so
  // the caller can fall back to the row representation wholesale.
  for (size_t c = 0; c < w && c < width_; ++c) {
    if (columns_[c].kind != t.values[c].kind()) return false;
  }
  // Fill columns before growing the row spine: Activate() back-fills a
  // lazily-created column for rows() existing rows, which must not include
  // the row being appended here.
  const size_t row = rows();
  for (size_t c = 0; c < w; ++c) {
    Column& col =
        c < width_ ? columns_[c] : Activate(c, t.values[c].kind());
    AppendValue(&col, row, t.values[c]);
  }
  for (size_t c = w; c < width_; ++c) AppendMissing(&columns_[c], row);
  timestamps_.push_back(t.timestamp);
  sics_.push_back(t.sic);
  return true;
}

bool ColumnarBlock::AppendRowSlow(SimTime ts, double sic, double v,
                                  size_t row) {
  Column& c0 = columns_[0];
  timestamps_.push_back(ts);
  sics_.push_back(sic);
  if (!c0.dense) SetBit(&c0.valid, row);
  c0.f64.push_back(v);
  for (size_t c = 1; c < width_; ++c) AppendMissing(&columns_[c], row);
  return true;
}

void ColumnarBlock::MaterializeRow(size_t r, Tuple* t) const {
  t->timestamp = timestamps_[r];
  t->sic = sics_[r];
  t->values.clear();
  // Payloads are prefix-dense: the row's width is the length of its valid
  // column prefix.
  for (size_t c = 0; c < width_; ++c) {
    const Column& col = columns_[c];
    if (!col.IsValid(r)) break;
    t->values.push_back(col.ValueAt(r));
  }
}

void ColumnarBlock::MaterializeInto(std::vector<Tuple>* out) const {
  const size_t n = rows();
  out->reserve(out->size() + n);
  for (size_t r = 0; r < n; ++r) {
    MaterializeRow(r, &out->emplace_back());
  }
}

double ColumnarBlock::SumSics() const {
  double sum = 0.0;
  for (double s : sics_) sum += s;
  return sum;
}

void ColumnarBlock::GatherInto(const SelectionVector& sel,
                               ColumnarBlock* out) const {
  out->Clear();
  out->timestamps_.reserve(sel.size());
  out->sics_.reserve(sel.size());
  for (size_t c = 0; c < width_; ++c) {
    out->Activate(c, columns_[c].kind);
  }
  for (size_t i = 0; i < sel.size(); ++i) {
    const size_t r = sel[i];
    out->timestamps_.push_back(timestamps_[r]);
    out->sics_.push_back(sics_[r]);
    for (size_t c = 0; c < width_; ++c) {
      const Column& src = columns_[c];
      Column& dst = out->columns_[c];
      if (src.IsValid(r)) {
        if (!dst.dense) SetBit(&dst.valid, i);
        switch (src.kind) {
          case Value::Kind::kInt64:
            dst.i64.push_back(src.i64[r]);
            break;
          case Value::Kind::kDouble:
            dst.f64.push_back(src.f64[r]);
            break;
          case Value::Kind::kString:
            dst.str.push_back(src.str[r]);
            break;
        }
      } else {
        AppendMissing(&dst, i);
      }
    }
  }
}

}  // namespace themis
