// Ingress and egress operators. A ReceiverOp is the operator a source binds
// to (§3: "every source is connected to a single operator"); an OutputOp is
// the root operator that emits the query result stream.
#ifndef THEMIS_RUNTIME_OPERATORS_RECEIVER_H_
#define THEMIS_RUNTIME_OPERATORS_RECEIVER_H_

#include "runtime/operator.h"

namespace themis {

/// \brief Source data receiver; forwards source tuples unchanged.
///
/// SIC stamping of source tuples (Eq. 1) happens at node ingress, before the
/// input buffer, so that the shedder sees correct batch SIC values; the
/// receiver therefore only models the ingestion cost.
class ReceiverOp : public PassThroughOperator {
 public:
  explicit ReceiverOp(double cost_us_per_tuple = 0.5)
      : PassThroughOperator("receiver", cost_us_per_tuple) {}
};

/// \brief Root operator emitting result tuples to the user.
class OutputOp : public PassThroughOperator {
 public:
  explicit OutputOp(double cost_us_per_tuple = 0.2)
      : PassThroughOperator("output", cost_us_per_tuple) {}
};

/// \brief Stream merge point (the paper's union of AllSrc streams).
class UnionOp : public PassThroughOperator {
 public:
  explicit UnionOp(double cost_us_per_tuple = 0.2)
      : PassThroughOperator("union", cost_us_per_tuple) {}
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_RECEIVER_H_
