#include "runtime/operators/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "runtime/checkpoint.h"

namespace themis {

namespace {

// Collects the numeric values of `field` over a pane; skips short payloads.
std::vector<double> FieldValues(const Pane& pane, int field) {
  std::vector<double> xs;
  xs.reserve(pane.tuples.size());
  for (const Tuple& t : pane.tuples) {
    if (static_cast<size_t>(field) < t.values.size()) {
      xs.push_back(AsDouble(t.values[field]));
    }
  }
  return xs;
}

// Builds the operator name ("q50", "q99", ...) via append rather than
// `const char* + std::string&&`, whose libstdc++ insert path trips a GCC 12
// -Wrestrict false positive at -O2 (GCC PR 105329).
std::string QuantileOpName(double q) {
  std::string name = "q";
  name += std::to_string(static_cast<int>(q * 100));
  return name;
}

}  // namespace

VarianceOp::VarianceOp(int field, WindowSpec spec, double cost_us_per_tuple)
    : WindowedOperator("variance", spec, cost_us_per_tuple), field_(field) {}

void VarianceOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  std::vector<double> xs = FieldValues(pane, field_);
  if (xs.empty()) return;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  Tuple result;
  result.values.push_back(var);
  out->push_back(std::move(result));
}

QuantileOp::QuantileOp(double q, int field, WindowSpec spec,
                       double cost_us_per_tuple)
    : WindowedOperator(QuantileOpName(q), spec, cost_us_per_tuple),
      q_(q),
      field_(field) {}

void QuantileOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  std::vector<double> xs = FieldValues(pane, field_);
  if (xs.empty()) return;
  // Nearest-rank definition: the ceil(q*n)-th smallest value.
  size_t rank = static_cast<size_t>(
      std::ceil(q_ * static_cast<double>(xs.size())));
  rank = std::clamp<size_t>(rank, 1, xs.size());
  std::nth_element(xs.begin(), xs.begin() + (rank - 1), xs.end());
  Tuple result;
  result.values.push_back(xs[rank - 1]);
  out->push_back(std::move(result));
}

DistinctCountOp::DistinctCountOp(int key_field, WindowSpec spec,
                                 double cost_us_per_tuple)
    : WindowedOperator("distinct", spec, cost_us_per_tuple),
      key_field_(key_field) {}

void DistinctCountOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  if (pane.tuples.empty()) return;
  std::unordered_set<int64_t> keys;
  for (const Tuple& t : pane.tuples) {
    if (static_cast<size_t>(key_field_) < t.values.size()) {
      keys.insert(AsInt(t.values[key_field_]));
    }
  }
  Tuple result;
  result.values.push_back(static_cast<int64_t>(keys.size()));
  out->push_back(std::move(result));
}

EwmaOp::EwmaOp(double alpha, int field, WindowSpec spec,
               double cost_us_per_tuple)
    : WindowedOperator("ewma", spec, cost_us_per_tuple),
      alpha_(alpha),
      field_(field) {}

void EwmaOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  std::vector<double> xs = FieldValues(pane, field_);
  if (xs.empty()) return;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  if (!initialised_) {
    state_ = mean;
    initialised_ = true;
  } else {
    state_ = alpha_ * mean + (1.0 - alpha_) * state_;
  }
  Tuple result;
  result.values.push_back(state_);
  out->push_back(std::move(result));
}

void EwmaOp::Checkpoint(CheckpointWriter* w) const {
  WindowedOperator::Checkpoint(w);
  w->PutDouble(state_);
  w->PutU8(initialised_ ? 1 : 0);
}

void EwmaOp::RestoreFrom(CheckpointReader* r) {
  WindowedOperator::RestoreFrom(r);
  state_ = r->GetDouble();
  initialised_ = r->GetU8() != 0;
}

void EwmaOp::ResetState() {
  WindowedOperator::ResetState();
  state_ = 0.0;
  initialised_ = false;
}

void EwmaOp::ReleaseState(BatchPool* pool) {
  WindowedOperator::ReleaseState(pool);
  state_ = 0.0;
  initialised_ = false;
}

DeltaOp::DeltaOp(int field, WindowSpec spec, double cost_us_per_tuple)
    : WindowedOperator("delta", spec, cost_us_per_tuple), field_(field) {}

void DeltaOp::Checkpoint(CheckpointWriter* w) const {
  WindowedOperator::Checkpoint(w);
  w->PutDouble(previous_);
  w->PutU8(has_previous_ ? 1 : 0);
}

void DeltaOp::RestoreFrom(CheckpointReader* r) {
  WindowedOperator::RestoreFrom(r);
  previous_ = r->GetDouble();
  has_previous_ = r->GetU8() != 0;
}

void DeltaOp::ResetState() {
  WindowedOperator::ResetState();
  previous_ = 0.0;
  has_previous_ = false;
}

void DeltaOp::ReleaseState(BatchPool* pool) {
  WindowedOperator::ReleaseState(pool);
  previous_ = 0.0;
  has_previous_ = false;
}

void DeltaOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  std::vector<double> xs = FieldValues(pane, field_);
  if (xs.empty()) return;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  if (has_previous_) {
    Tuple result;
    result.values.push_back(mean - previous_);
    out->push_back(std::move(result));
  }
  previous_ = mean;
  has_previous_ = true;
}

}  // namespace themis
