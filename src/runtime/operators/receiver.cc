// ReceiverOp, OutputOp and UnionOp are thin PassThroughOperator aliases; all
// behaviour lives in the base class. This file exists so each operator header
// has a translation unit and stays linkable if behaviour is added later.
#include "runtime/operators/receiver.h"
