#include "runtime/operators/covariance.h"

#include <algorithm>

#include "common/stats.h"

namespace themis {

CovarianceOp::CovarianceOp(int left_field, int right_field, WindowSpec spec,
                           double cost_us_per_tuple)
    : BinaryWindowedOperator("cov", spec, cost_us_per_tuple),
      left_field_(left_field),
      right_field_(right_field) {}

void CovarianceOp::ProcessPanes(const Pane& left, const Pane& right,
                                std::vector<Tuple>* out) {
  size_t n = std::min(left.tuples.size(), right.tuples.size());
  if (n < 2) return;
  std::vector<double> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Tuple& l = left.tuples[i];
    const Tuple& r = right.tuples[i];
    if (static_cast<size_t>(left_field_) >= l.values.size() ||
        static_cast<size_t>(right_field_) >= r.values.size()) {
      continue;
    }
    xs.push_back(AsDouble(l.values[left_field_]));
    ys.push_back(AsDouble(r.values[right_field_]));
  }
  if (xs.size() < 2) return;
  Tuple result;
  result.values.push_back(Covariance(xs, ys));
  out->push_back(std::move(result));
}

}  // namespace themis
