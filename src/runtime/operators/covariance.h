// Covariance of two streams (the COV query of Table 1).
#ifndef THEMIS_RUNTIME_OPERATORS_COVARIANCE_H_
#define THEMIS_RUNTIME_OPERATORS_COVARIANCE_H_

#include "runtime/operator.h"

namespace themis {

/// \brief Per-pane sample covariance of two input streams' value fields.
///
/// The two panes are aligned by arrival order (the streams sample the same
/// instants at the same rate, per the paper's workload); the shorter pane
/// truncates the pairing. Emits a single tuple with the covariance.
class CovarianceOp : public BinaryWindowedOperator {
 public:
  CovarianceOp(int left_field, int right_field, WindowSpec spec,
               double cost_us_per_tuple = 1.5);

 protected:
  void ProcessPanes(const Pane& left, const Pane& right,
                    std::vector<Tuple>* out) override;

 private:
  int left_field_;
  int right_field_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_COVARIANCE_H_
