// Statistical operators beyond the basic aggregates: variance, quantiles,
// distinct counts, EWMA smoothing and deltas. These extend the black-box
// operator library the fairness machinery is exercised against (the paper's
// motivation explicitly includes "customised, user-defined" operators).
#ifndef THEMIS_RUNTIME_OPERATORS_STATISTICS_H_
#define THEMIS_RUNTIME_OPERATORS_STATISTICS_H_

#include "runtime/operator.h"

namespace themis {

/// \brief Per-pane population variance of one field; emits a single tuple.
class VarianceOp : public WindowedOperator {
 public:
  VarianceOp(int field, WindowSpec spec, double cost_us_per_tuple = 1.2);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  int field_;
};

/// \brief Per-pane quantile (nearest-rank) of one field.
class QuantileOp : public WindowedOperator {
 public:
  /// \param q quantile in [0, 1]; 0.5 = median
  QuantileOp(double q, int field, WindowSpec spec,
             double cost_us_per_tuple = 1.8);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  double q_;
  int field_;
};

/// \brief Per-pane count of distinct integer keys.
class DistinctCountOp : public WindowedOperator {
 public:
  DistinctCountOp(int key_field, WindowSpec spec,
                  double cost_us_per_tuple = 1.2);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  int key_field_;
};

/// \brief Exponentially weighted moving average of per-pane means.
///
/// Stateful across panes: emits one tuple per pane carrying the updated
/// EWMA. A pane with no tuples emits nothing and leaves the state untouched.
class EwmaOp : public WindowedOperator {
 public:
  EwmaOp(double alpha, int field, WindowSpec spec,
         double cost_us_per_tuple = 0.8);

  // Checkpoint seam: the EWMA scalar crosses panes, so it rides the image
  // after the base window state.
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  double alpha_;
  int field_;
  double state_ = 0.0;
  bool initialised_ = false;
};

/// \brief Difference between consecutive pane means (discrete derivative).
///
/// Emits nothing for the first non-empty pane (no predecessor).
class DeltaOp : public WindowedOperator {
 public:
  DeltaOp(int field, WindowSpec spec, double cost_us_per_tuple = 0.8);

  // Checkpoint seam: the previous-pane mean crosses panes (see EwmaOp).
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  int field_;
  double previous_ = 0.0;
  bool has_previous_ = false;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_STATISTICS_H_
