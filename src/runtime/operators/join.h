// Windowed equi-join (the TOP-5 query joins per-node CPU and memory streams
// on the node id).
#ifndef THEMIS_RUNTIME_OPERATORS_JOIN_H_
#define THEMIS_RUNTIME_OPERATORS_JOIN_H_

#include "runtime/operator.h"

namespace themis {

/// \brief Per-pane hash equi-join of two input streams.
///
/// Output payload: (key, left fields..., right fields...) with the key field
/// removed from both sides. Eq. (3) applies with T_in the union of both
/// panes, so unmatched tuples' SIC is redistributed over the join output.
class HashJoinOp : public BinaryWindowedOperator {
 public:
  /// \param left_key index of the join key in left payloads
  /// \param right_key index of the join key in right payloads
  HashJoinOp(int left_key, int right_key, WindowSpec spec,
             double cost_us_per_tuple = 2.0);

 protected:
  void ProcessPanes(const Pane& left, const Pane& right,
                    std::vector<Tuple>* out) override;

 private:
  int left_key_;
  int right_key_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_JOIN_H_
