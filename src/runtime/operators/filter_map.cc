#include "runtime/operators/filter_map.h"

namespace themis {

FilterOp::FilterOp(std::function<bool(const Tuple&)> predicate, WindowSpec spec,
                   double cost_us_per_tuple)
    : WindowedOperator("filter", spec, cost_us_per_tuple),
      predicate_(std::move(predicate)) {}

void FilterOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  for (const Tuple& t : pane.tuples) {
    if (predicate_(t)) {
      Tuple copy = t;
      copy.timestamp = 0;  // base assigns pane end + Eq. (3) SIC share
      out->push_back(std::move(copy));
    }
  }
}

MapOp::MapOp(std::function<ValueList(const Tuple&)> fn, WindowSpec spec,
             double cost_us_per_tuple)
    : WindowedOperator("map", spec, cost_us_per_tuple), fn_(std::move(fn)) {}

void MapOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  for (const Tuple& t : pane.tuples) {
    Tuple derived;
    derived.values = fn_(t);
    out->push_back(std::move(derived));
  }
}

}  // namespace themis
