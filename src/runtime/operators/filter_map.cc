#include "runtime/operators/filter_map.h"

#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"
#include "runtime/columnar.h"
#include "runtime/columnar_kernels.h"
#include "runtime/tumbling_panes.h"

namespace themis {

// Incremental per-pane state for columnar mode: the pane's SIC mass
// (accumulated in arrival order, matching Pane::TotalSic()) plus the tuples
// that passed the predicate, in arrival order. Released panes emit the
// passing tuples with share `sic_sum / |passing|` — exactly what
// ProcessPane + FinalizeOutputs produce on the row path.
struct FilterOp::Columnar {
  struct PaneState {
    double sic_sum = 0.0;
    std::vector<Tuple> passing;
  };
  explicit Columnar(SimDuration range) : panes(range) {}
  TumblingPanes<PaneState> panes;
  SelectionVector sel;  // scratch, reused across blocks
};

FilterOp::FilterOp(std::function<bool(const Tuple&)> predicate, WindowSpec spec,
                   double cost_us_per_tuple)
    : WindowedOperator("filter", spec, cost_us_per_tuple),
      predicate_(std::move(predicate)) {}

FilterOp::FilterOp(FieldPredicate predicate, WindowSpec spec,
                   double cost_us_per_tuple)
    : WindowedOperator("filter", spec, cost_us_per_tuple),
      predicate_([predicate](const Tuple& t) { return predicate.Matches(t); }),
      vec_pred_(predicate) {}

FilterOp::~FilterOp() = default;

bool FilterOp::FastEligible() const {
  return vec_pred_.has_value() &&
         window().spec().kind == WindowKind::kTumblingTime;
}

bool FilterOp::AcceptsColumnar(int port) const {
  (void)port;
  return col_ != nullptr || FastEligible();
}

void FilterOp::AccumulateRow(const Tuple& t) {
  Columnar::PaneState* ps = col_->panes.At(t.timestamp);
  ps->sic_sum += t.sic;
  if (predicate_(t)) ps->passing.push_back(t);
}

void FilterOp::EnsureColumnarMode() {
  if (col_) return;
  col_ = std::make_unique<Columnar>(window().spec().range);
  col_->panes.SeedReleasedUpTo(window().released_up_to());
  for (Pane& pane : window().DrainOpenTumbling()) {
    for (const Tuple& t : pane.tuples) AccumulateRow(t);
    window().Recycle(std::move(pane.tuples));
  }
}

void FilterOp::Ingest(const std::vector<Tuple>& tuples, int port) {
  if (col_) {
    for (const Tuple& t : tuples) {
      AddDirt(t.sic);
      AccumulateRow(t);
    }
    return;
  }
  WindowedOperator::Ingest(tuples, port);
}

void FilterOp::IngestColumnar(const ColumnarBlock& block, int port) {
  if (!col_ && !FastEligible()) {
    Operator::IngestColumnar(block, port);
    return;
  }
  EnsureColumnarMode();
  const size_t n = block.rows();
  if (n == 0) return;
  const SimTime* ts = block.timestamps().data();
  const double* sics = block.sics().data();

  // Pass 1: per-pane SIC accounting, arrival order.
  {
    double block_sic = 0.0;
    Columnar::PaneState* ps = col_->panes.At(ts[0]);
    SimTime prev = ts[0];
    for (size_t i = 0; i < n; ++i) {
      if (ts[i] != prev) {
        ps = col_->panes.At(ts[i]);
        prev = ts[i];
      }
      ps->sic_sum += sics[i];
      block_sic += sics[i];
    }
    AddDirt(block_sic);
  }

  // Pass 2: vectorized selection into the scratch SelectionVector.
  const FieldPredicate& p = *vec_pred_;
  col_->sel.clear();
  if (static_cast<size_t>(p.field) < block.width()) {
    const ColumnarBlock::Column& c = block.col(p.field);
    if (c.kind == Value::Kind::kDouble && c.dense) {
      columnar::SelectWhere(c.f64.data(), n,
                            [&p](double v) { return p.Compare(v); },
                            &col_->sel);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (c.IsValid(i) && p.Compare(c.DoubleAt(i))) {
          col_->sel.push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }

  // Pass 3: materialize the selected rows into their panes, arrival order.
  Columnar::PaneState* ps = nullptr;
  SimTime prev = 0;
  for (uint32_t i : col_->sel) {
    if (ps == nullptr || ts[i] != prev) {
      ps = col_->panes.At(ts[i]);
      prev = ts[i];
    }
    ps->passing.emplace_back();
    block.MaterializeRow(i, &ps->passing.back());
  }
}

void FilterOp::Advance(SimTime watermark, std::vector<Tuple>* out) {
  if (!col_) {
    WindowedOperator::Advance(watermark, out);
    return;
  }
  col_->panes.Release(watermark, [&](SimTime end, Columnar::PaneState& ps) {
    if (ps.passing.empty()) return;  // FinalizeOutputs no-op: SIC mass lost
    double share = ps.sic_sum / static_cast<double>(ps.passing.size());
    for (Tuple& t : ps.passing) {
      t.sic = share;
      t.timestamp = end;
      out->push_back(std::move(t));
    }
  });
}

void FilterOp::Checkpoint(CheckpointWriter* w) const {
  if (!col_) {
    w->PutU8(0);
    WindowedOperator::Checkpoint(w);
    return;
  }
  w->PutU8(1);
  w->PutI64(col_->panes.released_up_to());
  w->PutU32(static_cast<uint32_t>(col_->panes.size()));
  const Columnar& col = *col_;
  col.panes.ForEach([&](int64_t idx, const Columnar::PaneState& ps) {
    w->PutI64(idx);
    w->PutDouble(ps.sic_sum);
    w->PutTuples(ps.passing);
  });
}

void FilterOp::RestoreFrom(CheckpointReader* r) {
  ResetState();
  if (r->GetU8() == 0) {
    WindowedOperator::RestoreFrom(r);
    return;
  }
  col_ = std::make_unique<Columnar>(window().spec().range);
  col_->panes.SeedReleasedUpTo(r->GetI64());
  uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    int64_t idx = r->GetI64();
    Columnar::PaneState* ps = col_->panes.Insert(idx);
    ps->sic_sum = r->GetDouble();
    r->GetTuples(&ps->passing);
  }
}

void FilterOp::ResetState() {
  col_.reset();
  WindowedOperator::ResetState();
}

void FilterOp::ReleaseState(BatchPool* pool) {
  if (col_) {
    col_->panes.ForEach([pool](int64_t, Columnar::PaneState& ps) {
      pool->ReleaseTuples(std::move(ps.passing));
    });
    col_.reset();
  }
  WindowedOperator::ReleaseState(pool);
}

void FilterOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  for (const Tuple& t : pane.tuples) {
    if (predicate_(t)) {
      Tuple copy = t;
      copy.timestamp = 0;  // base assigns pane end + Eq. (3) SIC share
      out->push_back(std::move(copy));
    }
  }
}

MapOp::MapOp(std::function<ValueList(const Tuple&)> fn, WindowSpec spec,
             double cost_us_per_tuple)
    : WindowedOperator("map", spec, cost_us_per_tuple), fn_(std::move(fn)) {}

void MapOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  for (const Tuple& t : pane.tuples) {
    Tuple derived;
    derived.values = fn_(t);
    out->push_back(std::move(derived));
  }
}

}  // namespace themis
