// Tuple-level selection and transformation operators.
#ifndef THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_
#define THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_

#include <functional>

#include "runtime/operator.h"

namespace themis {

/// \brief Windowed selection: passes the pane tuples matching a predicate.
///
/// Per Eq. (3) the SIC mass of the whole pane is redistributed over the
/// passing tuples — a semantic drop is not a shed, the dropped tuples *were*
/// processed. If nothing passes, the pane's SIC mass is lost to the result
/// (qSIC < 1 even without shedding), which is inherent to the metric.
class FilterOp : public WindowedOperator {
 public:
  FilterOp(std::function<bool(const Tuple&)> predicate, WindowSpec spec,
           double cost_us_per_tuple = 0.6);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  std::function<bool(const Tuple&)> predicate_;
};

/// \brief Per-tuple payload transformation (projection, arithmetic, rename).
class MapOp : public WindowedOperator {
 public:
  /// \param fn transformation applied to each pane tuple's payload; the
  ///        returned payload replaces the tuple's values.
  MapOp(std::function<ValueList(const Tuple&)> fn, WindowSpec spec,
        double cost_us_per_tuple = 0.6);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  std::function<ValueList(const Tuple&)> fn_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_
