// Tuple-level selection and transformation operators.
#ifndef THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_
#define THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_

#include <functional>
#include <memory>
#include <optional>

#include "runtime/operator.h"

namespace themis {

/// \brief Structured field-vs-threshold predicate (`t.values[field] CMP x`).
///
/// A FilterOp built from one of these can evaluate selection column-wise
/// with the vectorized SelectWhere kernel instead of calling an opaque
/// std::function per row. Matches() reproduces the row convention exactly:
/// a tuple whose payload lacks `field` never matches.
struct FieldPredicate {
  enum class Cmp { kLt, kLe, kGt, kGe, kEq, kNe };

  int field = 0;
  Cmp cmp = Cmp::kGe;
  double threshold = 0.0;

  bool Compare(double v) const {
    switch (cmp) {
      case Cmp::kLt:
        return v < threshold;
      case Cmp::kLe:
        return v <= threshold;
      case Cmp::kGt:
        return v > threshold;
      case Cmp::kGe:
        return v >= threshold;
      case Cmp::kEq:
        return v == threshold;
      case Cmp::kNe:
        return v != threshold;
    }
    return false;
  }
  bool Matches(const Tuple& t) const {
    if (static_cast<size_t>(field) >= t.values.size()) return false;
    return Compare(AsDouble(t.values[field]));
  }
};

/// \brief Windowed selection: passes the pane tuples matching a predicate.
///
/// Per Eq. (3) the SIC mass of the whole pane is redistributed over the
/// passing tuples — a semantic drop is not a shed, the dropped tuples *were*
/// processed. If nothing passes, the pane's SIC mass is lost to the result
/// (qSIC < 1 even without shedding), which is inherent to the metric.
class FilterOp : public WindowedOperator {
 public:
  FilterOp(std::function<bool(const Tuple&)> predicate, WindowSpec spec,
           double cost_us_per_tuple = 0.6);
  /// Structured-predicate constructor; enables the columnar selection fast
  /// path (tumbling windows only — sliding/count fall back to rows).
  FilterOp(FieldPredicate predicate, WindowSpec spec,
           double cost_us_per_tuple = 0.6);
  ~FilterOp() override;

  // Columnar fast path: selection via SelectionVector over the predicate
  // column; per-pane SIC accounting mirrors Pane::TotalSic() bit-for-bit.
  bool AcceptsColumnar(int port) const override;
  void IngestColumnar(const ColumnarBlock& block, int port) override;
  void Ingest(const std::vector<Tuple>& tuples, int port) override;
  void Advance(SimTime watermark, std::vector<Tuple>* out) override;

  // Checkpoint seam, mode-tagged like AggregateOp (see aggregates.h).
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  struct Columnar;  // per-pane selection state (defined in the .cc)

  bool FastEligible() const;
  void EnsureColumnarMode();
  void AccumulateRow(const Tuple& t);

  std::function<bool(const Tuple&)> predicate_;
  std::optional<FieldPredicate> vec_pred_;
  std::unique_ptr<Columnar> col_;
};

/// \brief Per-tuple payload transformation (projection, arithmetic, rename).
class MapOp : public WindowedOperator {
 public:
  /// \param fn transformation applied to each pane tuple's payload; the
  ///        returned payload replaces the tuple's values.
  MapOp(std::function<ValueList(const Tuple&)> fn, WindowSpec spec,
        double cost_us_per_tuple = 0.6);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  std::function<ValueList(const Tuple&)> fn_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_FILTER_MAP_H_
