#include "runtime/operators/topk.h"

#include <algorithm>

namespace themis {

TopKOp::TopKOp(size_t k, int value_field, int key_field, WindowSpec spec,
               double cost_us_per_tuple)
    : WindowedOperator("top" + std::to_string(k), spec, cost_us_per_tuple),
      k_(k),
      value_field_(value_field),
      key_field_(key_field) {}

void TopKOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  std::vector<const Tuple*> sorted;
  sorted.reserve(pane.tuples.size());
  for (const Tuple& t : pane.tuples) {
    if (static_cast<size_t>(value_field_) >= t.values.size()) continue;
    sorted.push_back(&t);
  }
  std::sort(sorted.begin(), sorted.end(),
            [this](const Tuple* a, const Tuple* b) {
              double va = AsDouble(a->values[value_field_]);
              double vb = AsDouble(b->values[value_field_]);
              if (va != vb) return va > vb;
              return AsInt(a->values[key_field_]) <
                     AsInt(b->values[key_field_]);
            });
  size_t take = std::min(k_, sorted.size());
  for (size_t i = 0; i < take; ++i) {
    Tuple copy = *sorted[i];
    copy.timestamp = 0;
    out->push_back(std::move(copy));
  }
}

}  // namespace themis
