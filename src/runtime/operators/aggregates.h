// Windowed aggregate operators: AVG, MAX, MIN, SUM, COUNT (with optional
// HAVING predicate) and GROUP-BY aggregation — the operator set of the
// Table 1 workloads.
#ifndef THEMIS_RUNTIME_OPERATORS_AGGREGATES_H_
#define THEMIS_RUNTIME_OPERATORS_AGGREGATES_H_

#include <functional>
#include <memory>
#include <string>

#include "runtime/operator.h"

namespace themis {

/// Aggregate function selector shared by AggregateOp and GroupByAggregateOp.
enum class AggregateKind { kAvg, kMax, kMin, kSum, kCount };

/// \brief Single-field windowed aggregate producing one tuple per pane.
///
/// Output payload: a single double (the aggregate). Per Eq. (3) the output
/// tuple carries the full SIC mass of the pane.
class AggregateOp : public WindowedOperator {
 public:
  /// \param kind aggregate function
  /// \param field index of the aggregated field in the input payload
  /// \param spec window specification
  /// \param having optional predicate applied to input tuples before
  ///        aggregation (the paper's `Having t.v >= 50` COUNT query)
  AggregateOp(AggregateKind kind, int field, WindowSpec spec,
              std::function<bool(const Tuple&)> having = nullptr,
              double cost_us_per_tuple = 1.0);
  ~AggregateOp() override;

  AggregateKind kind() const { return kind_; }

  // Columnar fast path (tumbling windows without HAVING): the first
  // columnar block switches the operator from row buffering to per-pane
  // incremental accumulators — open row panes migrate in arrival order, so
  // the switch (and any later row input) stays bit-identical to the row
  // path. Ineligible configurations materialize via the base default.
  bool AcceptsColumnar(int port) const override;
  void IngestColumnar(const ColumnarBlock& block, int port) override;
  void Ingest(const std::vector<Tuple>& tuples, int port) override;
  void Advance(SimTime watermark, std::vector<Tuple>* out) override;

  // Checkpoint seam: images are mode-tagged (row window vs columnar pane
  // accumulators) and RestoreFrom adopts the image's mode after a full
  // reset, so a row image restores a row operator even if the live twin had
  // promoted to columnar since capture (and vice versa).
  void Checkpoint(CheckpointWriter* w) const override;
  void RestoreFrom(CheckpointReader* r) override;
  void ResetState() override;
  void ReleaseState(BatchPool* pool) override;

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  struct Columnar;  // per-pane accumulator state (defined in the .cc)

  bool FastEligible() const;
  void EnsureColumnarMode();
  void AccumulateRow(const Tuple& t);

  AggregateKind kind_;
  int field_;
  std::function<bool(const Tuple&)> having_;
  std::unique_ptr<Columnar> col_;
};

/// \brief Per-group windowed aggregate producing one tuple per group.
///
/// Output payload: (group key, aggregate value). Used inside the TOP-5
/// fragments to compute per-node CPU/memory averages.
class GroupByAggregateOp : public WindowedOperator {
 public:
  /// \param key_field index of the grouping key (int64) in the input payload
  /// \param value_field index of the aggregated field
  GroupByAggregateOp(AggregateKind kind, int key_field, int value_field,
                     WindowSpec spec, double cost_us_per_tuple = 1.5);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  AggregateKind kind_;
  int key_field_;
  int value_field_;
};

/// Human-readable name ("avg", "max", ...) for diagnostics.
std::string AggregateKindName(AggregateKind kind);

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_AGGREGATES_H_
