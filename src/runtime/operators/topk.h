// Top-k selection (the TOP-5 query of Table 1).
#ifndef THEMIS_RUNTIME_OPERATORS_TOPK_H_
#define THEMIS_RUNTIME_OPERATORS_TOPK_H_

#include "runtime/operator.h"

namespace themis {

/// \brief Emits the k pane tuples with the largest value field, descending.
///
/// Ties break on the smaller key to keep output deterministic. Output
/// payloads are copies of the selected input payloads; an output rank field
/// is not added (result comparisons use Kendall's distance over the id
/// order, matching §7.1).
class TopKOp : public WindowedOperator {
 public:
  /// \param k number of tuples to keep
  /// \param value_field index of the ranking value in input payloads
  /// \param key_field index of the id used for deterministic tie-breaks
  TopKOp(size_t k, int value_field, int key_field, WindowSpec spec,
         double cost_us_per_tuple = 1.5);

 protected:
  void ProcessPane(const Pane& pane, std::vector<Tuple>* out) override;

 private:
  size_t k_;
  int value_field_;
  int key_field_;
};

}  // namespace themis

#endif  // THEMIS_RUNTIME_OPERATORS_TOPK_H_
