#include "runtime/operators/aggregates.h"

#include <algorithm>
#include <limits>
#include <map>

namespace themis {

namespace {

struct Accumulator {
  double sum = 0.0;
  double mx = std::numeric_limits<double>::lowest();
  double mn = std::numeric_limits<double>::max();
  size_t n = 0;

  void Add(double v) {
    sum += v;
    mx = std::max(mx, v);
    mn = std::min(mn, v);
    ++n;
  }

  double Finish(AggregateKind kind) const {
    switch (kind) {
      case AggregateKind::kAvg:
        return n ? sum / static_cast<double>(n) : 0.0;
      case AggregateKind::kMax:
        return n ? mx : 0.0;
      case AggregateKind::kMin:
        return n ? mn : 0.0;
      case AggregateKind::kSum:
        return sum;
      case AggregateKind::kCount:
        return static_cast<double>(n);
    }
    return 0.0;
  }
};

}  // namespace

std::string AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
  }
  return "?";
}

AggregateOp::AggregateOp(AggregateKind kind, int field, WindowSpec spec,
                         std::function<bool(const Tuple&)> having,
                         double cost_us_per_tuple)
    : WindowedOperator(AggregateKindName(kind), spec, cost_us_per_tuple),
      kind_(kind),
      field_(field),
      having_(std::move(having)) {}

void AggregateOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  Accumulator acc;
  for (const Tuple& t : pane.tuples) {
    if (having_ && !having_(t)) continue;
    if (static_cast<size_t>(field_) >= t.values.size()) continue;
    acc.Add(AsDouble(t.values[field_]));
  }
  // COUNT emits even for an all-filtered pane (count 0 is a valid result);
  // other aggregates emit only when at least one tuple was aggregated.
  if (acc.n == 0 && kind_ != AggregateKind::kCount) {
    if (pane.tuples.empty()) return;
  }
  Tuple result;
  result.values.push_back(acc.Finish(kind_));
  out->push_back(std::move(result));
}

GroupByAggregateOp::GroupByAggregateOp(AggregateKind kind, int key_field,
                                       int value_field, WindowSpec spec,
                                       double cost_us_per_tuple)
    : WindowedOperator("groupby-" + AggregateKindName(kind), spec,
                       cost_us_per_tuple),
      kind_(kind),
      key_field_(key_field),
      value_field_(value_field) {}

void GroupByAggregateOp::ProcessPane(const Pane& pane,
                                     std::vector<Tuple>* out) {
  std::map<int64_t, Accumulator> groups;
  for (const Tuple& t : pane.tuples) {
    if (static_cast<size_t>(key_field_) >= t.values.size() ||
        static_cast<size_t>(value_field_) >= t.values.size()) {
      continue;
    }
    groups[AsInt(t.values[key_field_])].Add(AsDouble(t.values[value_field_]));
  }
  for (const auto& [key, acc] : groups) {
    Tuple result;
    result.values.push_back(key);
    result.values.push_back(acc.Finish(kind_));
    out->push_back(std::move(result));
  }
}

}  // namespace themis
