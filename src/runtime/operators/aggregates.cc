#include "runtime/operators/aggregates.h"

#include <algorithm>
#include <limits>
#include <map>

#include "runtime/checkpoint.h"
#include "runtime/columnar.h"
#include "runtime/tumbling_panes.h"

namespace themis {

namespace {

struct Accumulator {
  double sum = 0.0;
  double mx = std::numeric_limits<double>::lowest();
  double mn = std::numeric_limits<double>::max();
  size_t n = 0;

  void Add(double v) {
    sum += v;
    mx = std::max(mx, v);
    mn = std::min(mn, v);
    ++n;
  }

  double Finish(AggregateKind kind) const {
    switch (kind) {
      case AggregateKind::kAvg:
        return n ? sum / static_cast<double>(n) : 0.0;
      case AggregateKind::kMax:
        return n ? mx : 0.0;
      case AggregateKind::kMin:
        return n ? mn : 0.0;
      case AggregateKind::kSum:
        return sum;
      case AggregateKind::kCount:
        return static_cast<double>(n);
    }
    return 0.0;
  }
};

}  // namespace

std::string AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kAvg:
      return "avg";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kCount:
      return "count";
  }
  return "?";
}

// Incremental per-pane state used once the operator switches to columnar
// mode. `sic_sum` accumulates tuple SIC in arrival order — the same addition
// sequence Pane::TotalSic() performs at release time — so Eq. (3) shares stay
// bit-identical to the row path.
struct AggregateOp::Columnar {
  struct PaneAcc {
    Accumulator acc;
    double sic_sum = 0.0;
  };
  explicit Columnar(SimDuration range) : panes(range) {}
  TumblingPanes<PaneAcc> panes;
};

AggregateOp::AggregateOp(AggregateKind kind, int field, WindowSpec spec,
                         std::function<bool(const Tuple&)> having,
                         double cost_us_per_tuple)
    : WindowedOperator(AggregateKindName(kind), spec, cost_us_per_tuple),
      kind_(kind),
      field_(field),
      having_(std::move(having)) {}

AggregateOp::~AggregateOp() = default;

bool AggregateOp::FastEligible() const {
  return window().spec().kind == WindowKind::kTumblingTime && !having_;
}

bool AggregateOp::AcceptsColumnar(int port) const {
  (void)port;
  return col_ != nullptr || FastEligible();
}

void AggregateOp::AccumulateRow(const Tuple& t) {
  Columnar::PaneAcc* pa = col_->panes.At(t.timestamp);
  pa->sic_sum += t.sic;
  if (having_ && !having_(t)) return;
  if (static_cast<size_t>(field_) < t.values.size()) {
    pa->acc.Add(AsDouble(t.values[field_]));
  }
}

void AggregateOp::EnsureColumnarMode() {
  if (col_) return;
  col_ = std::make_unique<Columnar>(window().spec().range);
  // Adopt the row buffer's release watermark, then migrate its open panes in
  // ascending order (tuples keep their within-pane arrival order, which is
  // the only order the per-pane sums observe).
  col_->panes.SeedReleasedUpTo(window().released_up_to());
  for (Pane& pane : window().DrainOpenTumbling()) {
    for (const Tuple& t : pane.tuples) AccumulateRow(t);
    window().Recycle(std::move(pane.tuples));
  }
}

void AggregateOp::Ingest(const std::vector<Tuple>& tuples, int port) {
  if (col_) {
    for (const Tuple& t : tuples) {
      AddDirt(t.sic);
      AccumulateRow(t);
    }
    return;
  }
  WindowedOperator::Ingest(tuples, port);
}

void AggregateOp::IngestColumnar(const ColumnarBlock& block, int port) {
  if (!col_ && !FastEligible()) {
    Operator::IngestColumnar(block, port);
    return;
  }
  EnsureColumnarMode();
  const size_t n = block.rows();
  if (n == 0) return;
  const SimTime* ts = block.timestamps().data();
  const double* sics = block.sics().data();
  double block_sic = 0.0;
  for (size_t i = 0; i < n; ++i) block_sic += sics[i];
  AddDirt(block_sic);
  const bool in_range = static_cast<size_t>(field_) < block.width();
  if (in_range) {
    const ColumnarBlock::Column& c = block.col(field_);
    if (c.kind == Value::Kind::kDouble && c.dense) {
      // Hot kernel: dense double column, contiguous reads, one pane lookup
      // per timestamp change. The fold is specialized per aggregate kind —
      // Finish() only reads the fields each kind maintains, so skipping the
      // others changes no emitted bit.
      const double* x = c.f64.data();
      auto run = [&](auto&& fold) {
        Columnar::PaneAcc* pa = col_->panes.At(ts[0]);
        SimTime prev = ts[0];
        for (size_t i = 0; i < n; ++i) {
          if (ts[i] != prev) {
            pa = col_->panes.At(ts[i]);
            prev = ts[i];
          }
          pa->sic_sum += sics[i];
          fold(pa->acc, x[i]);
        }
      };
      switch (kind_) {
        case AggregateKind::kAvg:
        case AggregateKind::kSum:
          run([](Accumulator& a, double v) {
            a.sum += v;
            ++a.n;
          });
          break;
        case AggregateKind::kCount:
          run([](Accumulator& a, double) { ++a.n; });
          break;
        case AggregateKind::kMax:
          run([](Accumulator& a, double v) {
            a.mx = std::max(a.mx, v);
            ++a.n;
          });
          break;
        case AggregateKind::kMin:
          run([](Accumulator& a, double v) {
            a.mn = std::min(a.mn, v);
            ++a.n;
          });
          break;
      }
      return;
    }
  }
  // Generic path: per-row validity + kind dispatch, same skip rule as the
  // row loop (`field out of range` == column missing for that row).
  Columnar::PaneAcc* pa = col_->panes.At(ts[0]);
  SimTime prev = ts[0];
  for (size_t i = 0; i < n; ++i) {
    if (ts[i] != prev) {
      pa = col_->panes.At(ts[i]);
      prev = ts[i];
    }
    pa->sic_sum += sics[i];
    if (in_range && block.col(field_).IsValid(i)) {
      pa->acc.Add(block.col(field_).DoubleAt(i));
    }
  }
}

void AggregateOp::Advance(SimTime watermark, std::vector<Tuple>* out) {
  if (!col_) {
    WindowedOperator::Advance(watermark, out);
    return;
  }
  col_->panes.Release(watermark, [&](SimTime end, Columnar::PaneAcc& pa) {
    // Panes exist only if at least one tuple arrived, so the row path's
    // ProcessPane always emits exactly one tuple per released pane; Eq. (3)
    // then assigns it the full pane SIC mass and the pane-end timestamp.
    Tuple result;
    result.values.push_back(pa.acc.Finish(kind_));
    result.sic = pa.sic_sum;
    result.timestamp = end;
    out->push_back(std::move(result));
  });
}

void AggregateOp::Checkpoint(CheckpointWriter* w) const {
  if (!col_) {
    w->PutU8(0);
    WindowedOperator::Checkpoint(w);
    return;
  }
  w->PutU8(1);
  w->PutI64(col_->panes.released_up_to());
  w->PutU32(static_cast<uint32_t>(col_->panes.size()));
  const Columnar& col = *col_;
  col.panes.ForEach([&](int64_t idx, const Columnar::PaneAcc& pa) {
    w->PutI64(idx);
    w->PutDouble(pa.acc.sum);
    w->PutDouble(pa.acc.mx);
    w->PutDouble(pa.acc.mn);
    w->PutU64(static_cast<uint64_t>(pa.acc.n));
    w->PutDouble(pa.sic_sum);
  });
}

void AggregateOp::RestoreFrom(CheckpointReader* r) {
  ResetState();
  if (r->GetU8() == 0) {
    WindowedOperator::RestoreFrom(r);
    return;
  }
  col_ = std::make_unique<Columnar>(window().spec().range);
  col_->panes.SeedReleasedUpTo(r->GetI64());
  uint32_t n = r->GetU32();
  for (uint32_t i = 0; i < n && r->ok(); ++i) {
    int64_t idx = r->GetI64();
    Columnar::PaneAcc* pa = col_->panes.Insert(idx);
    pa->acc.sum = r->GetDouble();
    pa->acc.mx = r->GetDouble();
    pa->acc.mn = r->GetDouble();
    pa->acc.n = static_cast<size_t>(r->GetU64());
    pa->sic_sum = r->GetDouble();
  }
}

void AggregateOp::ResetState() {
  col_.reset();
  WindowedOperator::ResetState();
}

void AggregateOp::ReleaseState(BatchPool* pool) {
  col_.reset();  // accumulators only, no tuple buffers to return
  WindowedOperator::ReleaseState(pool);
}

void AggregateOp::ProcessPane(const Pane& pane, std::vector<Tuple>* out) {
  Accumulator acc;
  for (const Tuple& t : pane.tuples) {
    if (having_ && !having_(t)) continue;
    if (static_cast<size_t>(field_) >= t.values.size()) continue;
    acc.Add(AsDouble(t.values[field_]));
  }
  // COUNT emits even for an all-filtered pane (count 0 is a valid result);
  // other aggregates emit only when at least one tuple was aggregated.
  if (acc.n == 0 && kind_ != AggregateKind::kCount) {
    if (pane.tuples.empty()) return;
  }
  Tuple result;
  result.values.push_back(acc.Finish(kind_));
  out->push_back(std::move(result));
}

GroupByAggregateOp::GroupByAggregateOp(AggregateKind kind, int key_field,
                                       int value_field, WindowSpec spec,
                                       double cost_us_per_tuple)
    : WindowedOperator("groupby-" + AggregateKindName(kind), spec,
                       cost_us_per_tuple),
      kind_(kind),
      key_field_(key_field),
      value_field_(value_field) {}

void GroupByAggregateOp::ProcessPane(const Pane& pane,
                                     std::vector<Tuple>* out) {
  std::map<int64_t, Accumulator> groups;
  for (const Tuple& t : pane.tuples) {
    if (static_cast<size_t>(key_field_) >= t.values.size() ||
        static_cast<size_t>(value_field_) >= t.values.size()) {
      continue;
    }
    groups[AsInt(t.values[key_field_])].Add(AsDouble(t.values[value_field_]));
  }
  for (const auto& [key, acc] : groups) {
    Tuple result;
    result.values.push_back(key);
    result.values.push_back(acc.Finish(kind_));
    out->push_back(std::move(result));
  }
}

}  // namespace themis
