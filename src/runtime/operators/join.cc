#include "runtime/operators/join.h"

#include <unordered_map>

namespace themis {

HashJoinOp::HashJoinOp(int left_key, int right_key, WindowSpec spec,
                       double cost_us_per_tuple)
    : BinaryWindowedOperator("join", spec, cost_us_per_tuple),
      left_key_(left_key),
      right_key_(right_key) {}

void HashJoinOp::ProcessPanes(const Pane& left, const Pane& right,
                              std::vector<Tuple>* out) {
  std::unordered_multimap<int64_t, const Tuple*> build;
  build.reserve(left.tuples.size());
  for (const Tuple& t : left.tuples) {
    if (static_cast<size_t>(left_key_) >= t.values.size()) continue;
    build.emplace(AsInt(t.values[left_key_]), &t);
  }
  for (const Tuple& probe : right.tuples) {
    if (static_cast<size_t>(right_key_) >= probe.values.size()) continue;
    int64_t key = AsInt(probe.values[right_key_]);
    auto [lo, hi] = build.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      Tuple joined;
      joined.values.push_back(key);
      const Tuple& l = *it->second;
      for (size_t i = 0; i < l.values.size(); ++i) {
        if (static_cast<int>(i) == left_key_) continue;
        joined.values.push_back(l.values[i]);
      }
      for (size_t i = 0; i < probe.values.size(); ++i) {
        if (static_cast<int>(i) == right_key_) continue;
        joined.values.push_back(probe.values[i]);
      }
      out->push_back(std::move(joined));
    }
  }
}

}  // namespace themis
