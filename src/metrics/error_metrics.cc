#include "metrics/error_metrics.h"

#include <cmath>
#include <map>

namespace themis {

double MeanAbsoluteError(const std::vector<std::pair<double, double>>& pairs) {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& [degraded, perfect] : pairs) {
    if (perfect == 0.0) continue;
    sum += std::abs((degraded - perfect) / perfect);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

std::vector<std::pair<double, double>> AlignByTime(
    const std::vector<TimedValue>& degraded,
    const std::vector<TimedValue>& perfect) {
  std::map<SimTime, double> perfect_by_time;
  for (const TimedValue& tv : perfect) perfect_by_time[tv.time] = tv.value;

  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(degraded.size());
  for (const TimedValue& tv : degraded) {
    auto it = perfect_by_time.find(tv.time);
    if (it != perfect_by_time.end()) pairs.emplace_back(tv.value, it->second);
  }
  return pairs;
}

}  // namespace themis
