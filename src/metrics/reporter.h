// Plain-text table/series printer shared by the bench binaries so every
// figure is regenerated in a uniform, diff-friendly format.
#ifndef THEMIS_METRICS_REPORTER_H_
#define THEMIS_METRICS_REPORTER_H_

#include <string>
#include <vector>

namespace themis {

/// \brief Collects rows and prints an aligned table to stdout.
class Reporter {
 public:
  /// \param title experiment id, e.g. "Figure 8: single-node fairness"
  /// \param columns column headers; the first is the x-axis
  Reporter(std::string title, std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void AddRow(const std::vector<double>& values);
  /// Appends a row with a string x value (e.g. the "mixed" fragment config).
  void AddRow(const std::string& x, const std::vector<double>& values);

  /// Prints the table.
  void Print() const;

  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace themis

#endif  // THEMIS_METRICS_REPORTER_H_
