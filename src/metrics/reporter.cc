#include "metrics/reporter.h"

#include <algorithm>
#include <cstdio>

namespace themis {

namespace {
std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}
}  // namespace

Reporter::Reporter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Reporter::AddRow(const std::vector<double>& values) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(FormatValue(v));
  rows_.push_back(std::move(row));
}

void Reporter::AddRow(const std::string& x, const std::vector<double>& values) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(x);
  for (double v : values) row.push_back(FormatValue(v));
  rows_.push_back(std::move(row));
}

void Reporter::Print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  // Column widths.
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      size_t w = i < widths.size() ? widths[i] : row[i].size();
      std::printf("%-*s  ", static_cast<int>(w), row[i].c_str());
    }
    std::printf("\n");
  }
}

}  // namespace themis
