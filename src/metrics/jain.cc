#include "metrics/jain.h"

namespace themis {

double JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace themis
