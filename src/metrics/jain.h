// Jain's Fairness Index [25] — the fairness metric of the whole evaluation:
//   J(x) = (sum x_i)^2 / (n * sum x_i^2),  J in [1/n, 1].
#ifndef THEMIS_METRICS_JAIN_H_
#define THEMIS_METRICS_JAIN_H_

#include <vector>

namespace themis {

/// Jain's Fairness Index of `xs`. Returns 1.0 for empty or all-zero input
/// (a degenerate allocation is trivially balanced).
double JainIndex(const std::vector<double>& xs);

}  // namespace themis

#endif  // THEMIS_METRICS_JAIN_H_
