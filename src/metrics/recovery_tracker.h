// Recovery observability: turns the per-query SIC snapshot into a
// time-series discipline. A RecoveryTracker samples every deployed query's
// result SIC at a fixed cadence into ring-buffered series (plus the
// federation-wide Jain index over the same instants) and, for every
// control-plane disturbance it is told about — a crash wave, a restore, a
// batch of applied link edits — measures how the fault cut into each
// query's SIC: dip depth below the pre-fault baseline, time to recover back
// to p% of that baseline (the fault-tolerance literature's MTTR view), and
// the area under the dip (SIC-seconds of service lost). Dips that never
// close stay open in the report ("unrecovered"), and overlapping
// disturbances are tracked independently, each against its own baseline.
//
// The tracker is pure bookkeeping over values it is fed: it knows nothing
// about engines, nodes or coordinators, so its output is bit-identical
// whenever its inputs are — which is exactly what the federation layer
// guarantees between run segments at any shard count.
#ifndef THEMIS_METRICS_RECOVERY_TRACKER_H_
#define THEMIS_METRICS_RECOVERY_TRACKER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time_types.h"
#include "runtime/ids.h"

namespace themis {

/// Knobs of the recovery tracker; defaults match the paper's control-plane
/// cadence (the 250 ms shedding/dissemination interval) and the common
/// "recovered to 90% of pre-fault service" MTTR threshold.
struct RecoveryTrackerOptions {
  /// Master switch: a disabled tracker records nothing and adds no RunFor
  /// segmentation (Fsps only samples when this is set), keeping every
  /// pre-existing figure byte-identical.
  bool enabled = false;
  /// SIC sampling cadence (also the resolution of every MTTR reading).
  SimDuration sample_interval = Millis(250);
  /// A query counts as recovered from a disturbance once its SIC climbs
  /// back to this fraction of its pre-fault baseline.
  double recover_fraction = 0.9;
  /// Fairness recovery: the federation counts as fairness-recovered once
  /// the Jain index regains this fraction of its pre-fault value.
  double jain_recover_fraction = 0.95;
  /// How long after a disturbance a query's SIC may take to fall below the
  /// recovery threshold before the query is settled as unaffected. SIC is
  /// an STW-smoothed signal: a crash at t dents it over the following
  /// seconds, not at the next sample — so the dip window must stay armed
  /// while the dent develops. Defaults to the paper's 10 s STW.
  SimDuration dip_onset_window = Seconds(10);
  /// Samples retained per ring series (per query, and for the Jain series).
  /// Dip statistics accumulate online, so eviction never corrupts them.
  size_t ring_capacity = 4096;
};

/// One (time, value) sample of a ring series.
struct SicSample {
  SimTime time = 0;
  double value = 0.0;
};

/// \brief Fixed-capacity ring of SicSamples (oldest evicted first).
class SicRing {
 public:
  explicit SicRing(size_t capacity) : capacity_(capacity) {}

  void Push(SimTime time, double value);
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  /// i = 0 is the oldest retained sample, size() - 1 the newest.
  const SicSample& At(size_t i) const;
  const SicSample& back() const { return At(size() - 1); }
  /// Total samples ever pushed (>= size() once eviction starts).
  uint64_t pushed() const { return pushed_; }

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< index of the oldest sample once full
  uint64_t pushed_ = 0;
  std::vector<SicSample> samples_;
};

/// What kind of control-plane event opened a disturbance window.
enum class DisturbanceKind {
  kCrashWave,   ///< one or more CrashNode calls at the same instant
  kRestore,     ///< RestoreNode (rejoin churn also perturbs placement)
  kLinkChange,  ///< a batch of link-latency edits applied at a run boundary
  kRebalance,   ///< an elastic shard re-balance migrated entities
};

std::string DisturbanceKindName(DisturbanceKind kind);

/// Per-query recovery record of one disturbance. Lifecycle: armed (waiting
/// for the STW-smoothed SIC to dent) -> dipped (below the threshold) ->
/// recovered (back at/above it); queries whose SIC never crosses below the
/// threshold within the onset window settle as unaffected, and dips still
/// below threshold at end of run stay open ("unrecovered").
struct QueryDip {
  QueryId query = kInvalidId;
  double baseline = 0.0;   ///< pre-fault SIC (last sample at/before the fault)
  double threshold = 0.0;  ///< recover_fraction * baseline
  double dip_depth = 0.0;  ///< max(baseline - sic) observed before recovery
  double area_under_dip = 0.0;  ///< integral of (baseline - sic)+ dt, seconds
  bool dipped = false;      ///< SIC fell below the threshold at least once
  bool recovered = false;   ///< SIC came back to >= threshold after dipping
  bool settled = false;     ///< no longer tracked (recovered or unaffected)
  SimTime recover_time = -1;  ///< absolute time of recovery (-1 while open)
  /// Time from the disturbance to recovery; -1 while unrecovered.
  SimDuration time_to_recover = -1;
};

/// One disturbance window: the dip bookkeeping of every query that was
/// deployed when the fault landed.
struct Disturbance {
  SimTime time = 0;
  DisturbanceKind kind = DisturbanceKind::kCrashWave;
  int events = 1;  ///< coalesced control-plane calls at this (time, kind)
  std::vector<QueryDip> dips;  ///< query-id order
  bool open = true;  ///< at least one dip (or the Jain dip) not settled
  /// Fairness dip: the federation-wide Jain index tracked through the
  /// same armed -> dipped -> recovered lifecycle as a QueryDip, against
  /// jain_recover_fraction * the pre-fault Jain value.
  double jain_baseline = 0.0;
  double jain_threshold = 0.0;
  bool jain_dipped = false;
  bool jain_recovered = false;
  bool jain_settled = false;
  SimDuration jain_time_to_recover = -1;  ///< -1 while unrecovered
};

/// Aggregate recovery statistics over a set of disturbances.
struct RecoverySummary {
  int disturbances = 0;
  int affected = 0;     ///< (disturbance, query) pairs that dipped
  int unrecovered = 0;  ///< affected pairs still open at end of run
  double max_dip_depth = 0.0;
  double mean_dip_depth = 0.0;   ///< over affected pairs
  double mean_area_under_dip = 0.0;  ///< over affected pairs, SIC-seconds
  /// MTTR: mean/max time-to-recover over affected pairs that recovered, ms.
  double mean_ttr_ms = 0.0;
  double max_ttr_ms = 0.0;
  /// Censored MTTR over *all* affected pairs: an unrecovered pair counts
  /// its elapsed open time (end of run - fault time), so a policy that
  /// never recovers cannot look fast by dropping pairs from the mean. This
  /// is the number the CI fairness gate compares across policies.
  double mean_censored_ttr_ms = 0.0;
  /// Federation-wide Jain-over-time extremes (whole run, all samples).
  double min_jain = 1.0;
  double final_jain = 1.0;
  /// Fairness recovery: disturbances whose Jain index dipped below
  /// jain_recover_fraction * pre-fault Jain, how many never regained it,
  /// and the censored mean time for Jain to regain it (unrecovered
  /// disturbances count their elapsed open time, as mean_censored_ttr_ms
  /// does for queries).
  int jain_dips = 0;
  int jain_unrecovered = 0;
  double mean_jain_ttr_ms = 0.0;
};

/// \brief Samples per-query SIC over time and measures recovery from
/// control-plane disturbances.
class RecoveryTracker {
 public:
  explicit RecoveryTracker(RecoveryTrackerOptions options = {});

  const RecoveryTrackerOptions& options() const { return options_; }

  /// Feeds one sampling instant. `sics` holds every deployed query's
  /// current result SIC in ascending query-id order. Time must be monotone
  /// non-decreasing; a repeated call at the same instant is a no-op (the
  /// first reading of an instant wins), so cadence samples and
  /// disturbance-time samples compose without double counting.
  void Sample(SimTime now,
              const std::vector<std::pair<QueryId, double>>& sics);

  /// Opens a disturbance window at `now`, baselined at each query's latest
  /// sampled SIC (callers sample first, then mark). A repeated call at the
  /// same (time, kind) coalesces — a wave of CrashNode calls at one instant
  /// is one disturbance with `events` incremented.
  void MarkDisturbance(SimTime now, DisturbanceKind kind);

  /// Time of the latest accepted sample (-1 before the first).
  SimTime last_sample_time() const { return last_sample_time_; }
  uint64_t samples() const { return samples_; }

  /// Ring series of query `q`'s sampled SIC (null when never sampled).
  const SicRing* query_series(QueryId q) const;
  /// Ring series of the federation-wide Jain index over the same instants.
  const SicRing& jain_series() const { return jain_series_; }
  double min_jain() const { return min_jain_; }

  const std::vector<Disturbance>& disturbances() const {
    return disturbances_;
  }

  /// Aggregates over the disturbances of `kind`.
  RecoverySummary Summarize(DisturbanceKind kind) const;
  /// Aggregates over every disturbance regardless of kind.
  RecoverySummary SummarizeAll() const;

  /// Deterministic text dump of the full tracker state (disturbances, dips,
  /// Jain extremes): two runs fed identical inputs produce identical
  /// strings, which is what the determinism tests and the CI byte-diff
  /// compare.
  std::string DebugString() const;

 private:
  RecoverySummary SummarizeMatching(bool any_kind, DisturbanceKind kind) const;
  void UpdateDisturbance(
      SimTime now, SimTime prev_sample_time, double jain, Disturbance* d,
      const std::vector<std::pair<QueryId, double>>& sics) const;

  RecoveryTrackerOptions options_;
  SimTime last_sample_time_ = -1;
  uint64_t samples_ = 0;
  std::map<QueryId, SicRing> query_series_;
  SicRing jain_series_;
  double min_jain_ = 1.0;
  std::vector<Disturbance> disturbances_;
};

}  // namespace themis

#endif  // THEMIS_METRICS_RECOVERY_TRACKER_H_
