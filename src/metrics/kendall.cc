#include "metrics/kendall.h"

#include <algorithm>
#include <map>

namespace themis {

double KendallTopKDistance(const std::vector<int64_t>& a,
                           const std::vector<int64_t>& b) {
  if (a.empty() && b.empty()) return 0.0;

  std::map<int64_t, int> rank_a, rank_b;
  for (size_t i = 0; i < a.size(); ++i) {
    rank_a.emplace(a[i], static_cast<int>(i));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    rank_b.emplace(b[i], static_cast<int>(i));
  }

  // Union of elements appearing in either list.
  std::vector<int64_t> all;
  for (const auto& [id, r] : rank_a) all.push_back(id);
  for (const auto& [id, r] : rank_b) {
    if (rank_a.find(id) == rank_a.end()) all.push_back(id);
  }
  if (all.size() < 2) return 0.0;

  // Case analysis of Fagin et al. [18], K^(0):
  //  (i)   both elements in both lists: cost 1 iff the order disagrees.
  //  (ii)  both in one list, exactly one of them in the other: the element
  //        missing from a top-k list implicitly ranks below its end, so the
  //        order is determined in both lists; cost 1 iff they disagree.
  //  (iii) both in one list, neither in the other: undetermined in the other
  //        list; the optimistic K^(0) assigns cost 0 (not counted).
  //  (iv)  i only in A and j only in B: A ranks i above j (j absent), B
  //        ranks j above i — a definite disagreement, cost 1.
  uint64_t disagreements = 0;
  uint64_t comparable = 0;
  for (size_t x = 0; x < all.size(); ++x) {
    for (size_t y = x + 1; y < all.size(); ++y) {
      int64_t i = all[x], j = all[y];
      bool i_in_a = rank_a.count(i) > 0, i_in_b = rank_b.count(i) > 0;
      bool j_in_a = rank_a.count(j) > 0, j_in_b = rank_b.count(j) > 0;
      bool both_in_a = i_in_a && j_in_a;
      bool both_in_b = i_in_b && j_in_b;

      if (both_in_a && both_in_b) {  // case (i)
        ++comparable;
        if ((rank_a[i] < rank_a[j]) != (rank_b[i] < rank_b[j])) ++disagreements;
      } else if (both_in_a && (i_in_b || j_in_b)) {  // case (ii), A complete
        ++comparable;
        bool a_says_i_first = rank_a[i] < rank_a[j];
        if (a_says_i_first != i_in_b) ++disagreements;
      } else if (both_in_b && (i_in_a || j_in_a)) {  // case (ii), B complete
        ++comparable;
        bool b_says_i_first = rank_b[i] < rank_b[j];
        if (b_says_i_first != i_in_a) ++disagreements;
      } else if ((i_in_a && !i_in_b && j_in_b && !j_in_a) ||
                 (i_in_b && !i_in_a && j_in_a && !j_in_b)) {  // case (iv)
        ++comparable;
        ++disagreements;
      }
      // case (iii): undetermined, cost 0 under K^(0), not counted.
    }
  }
  if (comparable == 0) return 1.0;  // nothing determinable at all
  return static_cast<double>(disagreements) / static_cast<double>(comparable);
}

}  // namespace themis
