// Normalised Kendall's distance between two top-k lists (Fagin, Kumar,
// Sivakumar [18]) — the TOP-5 correctness metric of §7.1. Counts pairwise
// disagreements (inversions) plus, with the optimistic-penalty variant,
// pairs involving elements present in only one list.
#ifndef THEMIS_METRICS_KENDALL_H_
#define THEMIS_METRICS_KENDALL_H_

#include <cstdint>
#include <vector>

namespace themis {

/// \brief Normalised Kendall distance in [0, 1]; 0 = identical rankings,
/// 1 = maximally different.
///
/// `a` and `b` are ranked id lists (best first). Uses the K^(0) variant of
/// [18]: pairs ordered oppositely in the two lists cost 1; pairs where one
/// element is missing from one list cost 1 when the comparison is forced,
/// 0 when it is undetermined.
double KendallTopKDistance(const std::vector<int64_t>& a,
                           const std::vector<int64_t>& b);

}  // namespace themis

#endif  // THEMIS_METRICS_KENDALL_H_
