// Result-correctness metrics of §7.1: the mean absolute (relative) error
// between degraded and perfect result series, plus series alignment helpers.
#ifndef THEMIS_METRICS_ERROR_METRICS_H_
#define THEMIS_METRICS_ERROR_METRICS_H_

#include <utility>
#include <vector>

#include "common/time_types.h"

namespace themis {

/// One scalar result keyed by its emission time (window end).
struct TimedValue {
  SimTime time = 0;
  double value = 0.0;
};

/// \brief Mean absolute relative error between paired results:
///   (1/n) * sum |degraded_i - perfect_i| / |perfect_i|.
/// Pairs whose perfect value is 0 are skipped (the relative distance is
/// undefined there). Returns 0 for no valid pairs.
double MeanAbsoluteError(const std::vector<std::pair<double, double>>& pairs);

/// Aligns two result series by emission time (exact match on window ends)
/// and returns (degraded, perfect) value pairs.
std::vector<std::pair<double, double>> AlignByTime(
    const std::vector<TimedValue>& degraded,
    const std::vector<TimedValue>& perfect);

}  // namespace themis

#endif  // THEMIS_METRICS_ERROR_METRICS_H_
