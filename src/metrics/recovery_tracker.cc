#include "metrics/recovery_tracker.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "metrics/jain.h"

namespace themis {

void SicRing::Push(SimTime time, double value) {
  if (capacity_ == 0) return;
  if (samples_.size() < capacity_) {
    samples_.push_back({time, value});
  } else {
    samples_[head_] = {time, value};
    head_ = (head_ + 1) % capacity_;
  }
  pushed_ += 1;
}

const SicSample& SicRing::At(size_t i) const {
  THEMIS_CHECK(i < samples_.size());
  return samples_[(head_ + i) % samples_.size()];
}

std::string DisturbanceKindName(DisturbanceKind kind) {
  switch (kind) {
    case DisturbanceKind::kCrashWave:
      return "crash-wave";
    case DisturbanceKind::kRestore:
      return "restore";
    case DisturbanceKind::kLinkChange:
      return "link-change";
    case DisturbanceKind::kRebalance:
      return "rebalance";
  }
  return "?";
}

RecoveryTracker::RecoveryTracker(RecoveryTrackerOptions options)
    : options_(options), jain_series_(options.ring_capacity) {
  THEMIS_CHECK(options_.sample_interval > 0);
  THEMIS_CHECK(options_.recover_fraction > 0.0 &&
               options_.recover_fraction <= 1.0);
}

void RecoveryTracker::Sample(
    SimTime now, const std::vector<std::pair<QueryId, double>>& sics) {
  THEMIS_CHECK(now >= last_sample_time_);  // monotone sample clock
  if (now == last_sample_time_) return;    // first reading of an instant wins
  SimTime prev = last_sample_time_;
  last_sample_time_ = now;
  samples_ += 1;

  std::vector<double> values;
  values.reserve(sics.size());
  for (const auto& [q, sic] : sics) {
    auto it = query_series_.find(q);
    if (it == query_series_.end()) {
      it = query_series_.emplace(q, SicRing(options_.ring_capacity)).first;
    }
    it->second.Push(now, sic);
    values.push_back(sic);
  }
  double jain = JainIndex(values);
  jain_series_.Push(now, jain);
  min_jain_ = std::min(min_jain_, jain);

  for (Disturbance& d : disturbances_) {
    if (d.open) UpdateDisturbance(now, prev, jain, &d, sics);
  }
}

void RecoveryTracker::UpdateDisturbance(
    SimTime now, SimTime prev_sample_time, double jain, Disturbance* d,
    const std::vector<std::pair<QueryId, double>>& sics) const {
  // The integration step starts at the later of the disturbance instant and
  // the previous sample (overlapping dips must not double count the time
  // before the fault landed).
  SimTime step_start = std::max(d->time, prev_sample_time);
  double dt = ToSeconds(now - step_start);

  bool any_open = false;
  auto sit = sics.begin();
  for (QueryDip& dip : d->dips) {
    if (dip.settled) continue;
    // Both sequences are in ascending query-id order: advance the sample
    // cursor to this dip's query.
    while (sit != sics.end() && sit->first < dip.query) ++sit;
    if (sit == sics.end() || sit->first != dip.query) {
      // The query departed (force-undeploy). An armed dip settles as
      // unaffected; a developed dip stays open forever ("unrecovered").
      if (!dip.dipped) dip.settled = true;
      if (!dip.settled) any_open = true;
      continue;
    }
    double sic = sit->second;
    if (sic < dip.baseline) {
      dip.dip_depth = std::max(dip.dip_depth, dip.baseline - sic);
      dip.area_under_dip += (dip.baseline - sic) * dt;
    }
    if (!dip.dipped) {
      // Armed: waiting for the STW-smoothed dent to cross the threshold.
      if (sic < dip.threshold) {
        dip.dipped = true;
      } else if (now - d->time > options_.dip_onset_window) {
        dip.settled = true;  // the fault never touched this query
      }
    } else if (sic >= dip.threshold) {
      dip.recovered = true;
      dip.settled = true;
      dip.recover_time = now;
      dip.time_to_recover = now - d->time;
    }
    if (!dip.settled) any_open = true;
  }
  // The Jain fairness dip follows the same lifecycle at the federation
  // level: armed until it dents within the onset window, then open until
  // the index regains jain_recover_fraction of its pre-fault value.
  if (!d->jain_settled) {
    if (!d->jain_dipped) {
      if (jain < d->jain_threshold) {
        d->jain_dipped = true;
      } else if (now - d->time > options_.dip_onset_window) {
        d->jain_settled = true;  // fairness never dented
      }
    } else if (jain >= d->jain_threshold) {
      d->jain_recovered = true;
      d->jain_settled = true;
      d->jain_time_to_recover = now - d->time;
    }
    if (!d->jain_settled) any_open = true;
  }
  d->open = any_open;
}

void RecoveryTracker::MarkDisturbance(SimTime now, DisturbanceKind kind) {
  THEMIS_CHECK(now >= last_sample_time_);
  for (Disturbance& d : disturbances_) {
    THEMIS_CHECK(d.time <= now);  // monotone disturbance clock
    if (d.time == now && d.kind == kind) {
      d.events += 1;  // coalesce: one wave, many control-plane calls
      return;
    }
  }
  Disturbance d;
  d.time = now;
  d.kind = kind;
  if (!jain_series_.empty()) {
    d.jain_baseline = jain_series_.back().value;
    d.jain_threshold = options_.jain_recover_fraction * d.jain_baseline;
  } else {
    // A mark before the first sample has no pre-fault fairness level.
    d.jain_settled = true;
  }
  // Baseline every query at its latest sampled SIC. Queries never sampled
  // yet (a mark before the first cadence tick) get no dip record: there is
  // no pre-fault level to measure a dip against.
  for (const auto& [q, ring] : query_series_) {
    if (ring.empty()) continue;
    QueryDip dip;
    dip.query = q;
    dip.baseline = ring.back().value;
    dip.threshold = options_.recover_fraction * dip.baseline;
    d.dips.push_back(dip);
  }
  disturbances_.push_back(std::move(d));
}

const SicRing* RecoveryTracker::query_series(QueryId q) const {
  auto it = query_series_.find(q);
  return it == query_series_.end() ? nullptr : &it->second;
}

RecoverySummary RecoveryTracker::Summarize(DisturbanceKind kind) const {
  return SummarizeMatching(false, kind);
}

RecoverySummary RecoveryTracker::SummarizeAll() const {
  return SummarizeMatching(true, DisturbanceKind::kCrashWave);
}

RecoverySummary RecoveryTracker::SummarizeMatching(bool any_kind,
                                                   DisturbanceKind kind) const {
  RecoverySummary s;
  s.min_jain = min_jain_;
  s.final_jain = jain_series_.empty() ? 1.0 : jain_series_.back().value;
  double sum_dip = 0.0, sum_area = 0.0, sum_ttr_ms = 0.0;
  double sum_censored_ttr_ms = 0.0;
  double sum_jain_ttr_ms = 0.0;
  int recovered = 0;
  // Censoring floor. An unrecovered dip contributes the time it has been
  // open at the last sample — but a disturbance armed in the final
  // dip_onset_window of a run has had almost no elapsed open time, so its
  // near-zero contribution would *deflate* the censored mean below what the
  // recovered dips alone show. Such a dip is known to be open for at least
  // the onset window (the dent is still developing when the run ends), so
  // its contribution is floored there instead of excluding it outright.
  const double censor_floor_ms =
      static_cast<double>(options_.dip_onset_window) / kMillisecond;
  for (const Disturbance& d : disturbances_) {
    if (!any_kind && d.kind != kind) continue;
    s.disturbances += 1;
    if (d.jain_dipped) {
      s.jain_dips += 1;
      if (d.jain_recovered) {
        sum_jain_ttr_ms +=
            static_cast<double>(d.jain_time_to_recover) / kMillisecond;
      } else {
        s.jain_unrecovered += 1;
        double open_ms =
            static_cast<double>(last_sample_time_ - d.time) / kMillisecond;
        sum_jain_ttr_ms += std::max(open_ms, censor_floor_ms);
      }
    }
    for (const QueryDip& dip : d.dips) {
      if (!dip.dipped) continue;
      s.affected += 1;
      s.max_dip_depth = std::max(s.max_dip_depth, dip.dip_depth);
      sum_dip += dip.dip_depth;
      sum_area += dip.area_under_dip;
      if (dip.recovered) {
        double ttr_ms =
            static_cast<double>(dip.time_to_recover) / kMillisecond;
        sum_ttr_ms += ttr_ms;
        sum_censored_ttr_ms += ttr_ms;
        s.max_ttr_ms = std::max(s.max_ttr_ms, ttr_ms);
        recovered += 1;
      } else {
        s.unrecovered += 1;
        double open_ms =
            static_cast<double>(last_sample_time_ - d.time) / kMillisecond;
        sum_censored_ttr_ms += std::max(open_ms, censor_floor_ms);
      }
    }
  }
  if (s.affected > 0) {
    s.mean_dip_depth = sum_dip / s.affected;
    s.mean_area_under_dip = sum_area / s.affected;
    s.mean_censored_ttr_ms = sum_censored_ttr_ms / s.affected;
  }
  if (recovered > 0) s.mean_ttr_ms = sum_ttr_ms / recovered;
  if (s.jain_dips > 0) s.mean_jain_ttr_ms = sum_jain_ttr_ms / s.jain_dips;
  return s;
}

std::string RecoveryTracker::DebugString() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "recovery samples=%llu last_sample_us=%lld min_jain=%.9f "
                "final_jain=%.9f\n",
                static_cast<unsigned long long>(samples_),
                static_cast<long long>(last_sample_time_), min_jain_,
                jain_series_.empty() ? 1.0 : jain_series_.back().value);
  out << buf;
  for (const Disturbance& d : disturbances_) {
    std::snprintf(buf, sizeof(buf),
                  "disturbance t_us=%lld kind=%s events=%d open=%d\n",
                  static_cast<long long>(d.time),
                  DisturbanceKindName(d.kind).c_str(), d.events,
                  d.open ? 1 : 0);
    out << buf;
    for (const QueryDip& dip : d.dips) {
      if (!dip.dipped && dip.dip_depth == 0.0) continue;  // untouched query
      std::snprintf(
          buf, sizeof(buf),
          "  q=%d baseline=%.9f dip=%.9f area=%.9f ttr_ms=%lld dipped=%d "
          "recovered=%d\n",
          dip.query, dip.baseline, dip.dip_depth, dip.area_under_dip,
          static_cast<long long>(
              dip.time_to_recover < 0 ? -1 : dip.time_to_recover /
                                                 kMillisecond),
          dip.dipped ? 1 : 0, dip.recovered ? 1 : 0);
      out << buf;
    }
  }
  return out.str();
}

}  // namespace themis
