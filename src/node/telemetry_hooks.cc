#include "node/telemetry_hooks.h"

#include <cstdio>
#include <string>

namespace themis {
namespace {

telemetry::Counter* QueryCounter(telemetry::Telemetry* t, QueryId q,
                                 const char* suffix) {
  char name[64];
  std::snprintf(name, sizeof(name), "query.%lld.%s",
                static_cast<long long>(q), suffix);
  return t->metrics().GetCounter(name);
}

}  // namespace

QueryTelemetry::PerQuery* QueryTelemetry::Resolve(telemetry::Telemetry* t,
                                                  QueryId q) {
  if (owner_ != t) {
    by_query_.clear();
    owner_ = t;
  }
  size_t idx = static_cast<size_t>(q);
  if (idx >= by_query_.size()) by_query_.resize(idx + 1);
  PerQuery& pq = by_query_[idx];
  if (pq.accepted_sic == nullptr) {
    pq.accepted_sic = QueryCounter(t, q, "accepted_sic_fp");
    pq.accepted_tuples = QueryCounter(t, q, "accepted_tuples");
    pq.dropped_sic = QueryCounter(t, q, "dropped_sic_fp");
    pq.dropped_tuples = QueryCounter(t, q, "dropped_tuples");
  }
  return &pq;
}

void QueryTelemetry::RecordAccepted(telemetry::Telemetry* t, QueryId q,
                                    double sic, uint64_t tuples) {
  PerQuery* pq = Resolve(t, q);
  pq->accepted_sic->Add(
      static_cast<uint64_t>(telemetry::FixedFromDouble(sic)));
  pq->accepted_tuples->Add(tuples);
}

void QueryTelemetry::RecordDropped(telemetry::Telemetry* t, QueryId q,
                                   double sic, uint64_t tuples) {
  PerQuery* pq = Resolve(t, q);
  pq->dropped_sic->Add(
      static_cast<uint64_t>(telemetry::FixedFromDouble(sic)));
  pq->dropped_tuples->Add(tuples);
}

void RecordShedTick(telemetry::Telemetry* t, uint64_t ib_tuples,
                    uint64_t capacity, bool overloaded) {
  telemetry::MetricRegistry& m = t->metrics();
  m.GetCounter("shed.ticks")->Add(1);
  if (overloaded) m.GetCounter("shed.overloaded_ticks")->Add(1);
  m.GetHistogram("shed.ib_tuples")->Observe(static_cast<double>(ib_tuples));
  m.GetHistogram("shed.capacity")->Observe(static_cast<double>(capacity));
}

void RecordShedDrops(telemetry::Telemetry* t, QueryTelemetry* queries,
                     const std::deque<Batch>& ib,
                     const std::vector<size_t>& keep) {
  uint64_t total_tuples = 0;
  uint64_t dropped_tuples = 0;
  uint64_t dropped_batches = 0;
  size_t next_keep = 0;
  for (size_t i = 0; i < ib.size(); ++i) {
    const Batch& b = ib[i];
    total_tuples += b.size();
    if (next_keep < keep.size() && keep[next_keep] == i) {
      ++next_keep;
      continue;
    }
    dropped_tuples += b.size();
    dropped_batches += 1;
    queries->RecordDropped(t, b.header.query_id, b.header.sic, b.size());
  }
  if (dropped_batches == 0) return;
  telemetry::MetricRegistry& m = t->metrics();
  m.GetCounter("shed.dropped_tuples")->Add(dropped_tuples);
  m.GetCounter("shed.dropped_batches")->Add(dropped_batches);
  m.GetHistogram("shed.fraction")
      ->Observe(static_cast<double>(dropped_tuples) /
                static_cast<double>(total_tuples));
}

}  // namespace themis
