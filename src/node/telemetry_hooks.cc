#include "node/telemetry_hooks.h"

#include <cstdio>
#include <string>

namespace themis {
namespace {

telemetry::Counter* QueryCounter(telemetry::Telemetry* t, QueryId q,
                                 const char* suffix) {
  char name[64];
  std::snprintf(name, sizeof(name), "query.%lld.%s",
                static_cast<long long>(q), suffix);
  return t->metrics().GetCounter(name);
}

}  // namespace

QueryTelemetry::PerQuery* QueryTelemetry::Resolve(telemetry::Telemetry* t,
                                                  QueryId q) {
  if (owner_ != t) {
    by_query_.clear();
    owner_ = t;
  }
  size_t idx = static_cast<size_t>(q);
  if (idx >= by_query_.size()) by_query_.resize(idx + 1);
  PerQuery& pq = by_query_[idx];
  if (pq.accepted_sic == nullptr) {
    pq.accepted_sic = QueryCounter(t, q, "accepted_sic_fp");
    pq.accepted_tuples = QueryCounter(t, q, "accepted_tuples");
    pq.dropped_sic = QueryCounter(t, q, "dropped_sic_fp");
    pq.dropped_tuples = QueryCounter(t, q, "dropped_tuples");
  }
  return &pq;
}

void QueryTelemetry::RecordAccepted(telemetry::Telemetry* t, QueryId q,
                                    double sic, uint64_t tuples) {
  PerQuery* pq = Resolve(t, q);
  pq->accepted_sic->Add(
      static_cast<uint64_t>(telemetry::FixedFromDouble(sic)));
  pq->accepted_tuples->Add(tuples);
}

void QueryTelemetry::RecordDropped(telemetry::Telemetry* t, QueryId q,
                                   double sic, uint64_t tuples) {
  PerQuery* pq = Resolve(t, q);
  pq->dropped_sic->Add(
      static_cast<uint64_t>(telemetry::FixedFromDouble(sic)));
  pq->dropped_tuples->Add(tuples);
}

void PoolTelemetry::Publish(telemetry::Telemetry* t,
                            const BatchPool::Stats& s) {
  if (owner_ != t) {
    telemetry::MetricRegistry& m = t->metrics();
    h_.row_hits = m.GetCounter("infra.pool.row_hits");
    h_.row_misses = m.GetCounter("infra.pool.row_misses");
    h_.row_released = m.GetCounter("infra.pool.row_released");
    h_.row_evicted = m.GetCounter("infra.pool.row_evicted");
    h_.columnar_hits = m.GetCounter("infra.pool.columnar_hits");
    h_.columnar_misses = m.GetCounter("infra.pool.columnar_misses");
    h_.columnar_released = m.GetCounter("infra.pool.columnar_released");
    h_.columnar_evicted = m.GetCounter("infra.pool.columnar_evicted");
    h_.row_pooled = m.GetGauge("infra.pool.row_pooled");
    h_.row_peak = m.GetGauge("infra.pool.row_peak");
    h_.columnar_pooled = m.GetGauge("infra.pool.columnar_pooled");
    h_.columnar_peak = m.GetGauge("infra.pool.columnar_peak");
    owner_ = t;
    last_ = BatchPool::Stats{};  // new registry: counters restart from zero
  }
  h_.row_hits->Add(s.row_hits - last_.row_hits);
  h_.row_misses->Add(s.row_misses - last_.row_misses);
  h_.row_released->Add(s.row_released - last_.row_released);
  h_.row_evicted->Add(s.row_evicted - last_.row_evicted);
  h_.columnar_hits->Add(s.columnar_hits - last_.columnar_hits);
  h_.columnar_misses->Add(s.columnar_misses - last_.columnar_misses);
  h_.columnar_released->Add(s.columnar_released - last_.columnar_released);
  h_.columnar_evicted->Add(s.columnar_evicted - last_.columnar_evicted);
  h_.row_pooled->SetRaw(static_cast<int64_t>(s.row_pooled));
  h_.row_peak->SetRaw(static_cast<int64_t>(s.row_peak));
  h_.columnar_pooled->SetRaw(static_cast<int64_t>(s.columnar_pooled));
  h_.columnar_peak->SetRaw(static_cast<int64_t>(s.columnar_peak));
  last_ = s;
}

void CheckpointTelemetry::Publish(telemetry::Telemetry* t,
                                  const CheckpointStore& store) {
  if (owner_ != t) {
    telemetry::MetricRegistry& m = t->metrics();
    h_.taken = m.GetCounter("infra.ckpt.taken");
    h_.skipped_clean = m.GetCounter("infra.ckpt.skipped_clean");
    h_.restores = m.GetCounter("infra.ckpt.restores");
    h_.missed = m.GetCounter("infra.ckpt.missed");
    h_.bytes_written = m.GetCounter("infra.ckpt.bytes_written");
    h_.images = m.GetGauge("infra.ckpt.images");
    h_.resident_bytes = m.GetGauge("infra.ckpt.resident_bytes");
    owner_ = t;
    last_ = CheckpointStore::Stats{};
  }
  const CheckpointStore::Stats& s = store.stats();
  h_.taken->Add(s.taken - last_.taken);
  h_.skipped_clean->Add(s.skipped_clean - last_.skipped_clean);
  h_.restores->Add(s.restores - last_.restores);
  h_.missed->Add(s.missed - last_.missed);
  h_.bytes_written->Add(s.bytes_written - last_.bytes_written);
  h_.images->SetRaw(static_cast<int64_t>(store.size()));
  h_.resident_bytes->SetRaw(static_cast<int64_t>(store.resident_bytes()));
  last_ = s;
}

void RecordShedTick(telemetry::Telemetry* t, uint64_t ib_tuples,
                    uint64_t capacity, bool overloaded) {
  telemetry::MetricRegistry& m = t->metrics();
  m.GetCounter("shed.ticks")->Add(1);
  if (overloaded) m.GetCounter("shed.overloaded_ticks")->Add(1);
  m.GetHistogram("shed.ib_tuples")->Observe(static_cast<double>(ib_tuples));
  m.GetHistogram("shed.capacity")->Observe(static_cast<double>(capacity));
}

void RecordShedDrops(telemetry::Telemetry* t, QueryTelemetry* queries,
                     const std::deque<Batch>& ib,
                     const std::vector<size_t>& keep) {
  uint64_t total_tuples = 0;
  uint64_t dropped_tuples = 0;
  uint64_t dropped_batches = 0;
  size_t next_keep = 0;
  for (size_t i = 0; i < ib.size(); ++i) {
    const Batch& b = ib[i];
    total_tuples += b.size();
    if (next_keep < keep.size() && keep[next_keep] == i) {
      ++next_keep;
      continue;
    }
    dropped_tuples += b.size();
    dropped_batches += 1;
    queries->RecordDropped(t, b.header.query_id, b.header.sic, b.size());
  }
  if (dropped_batches == 0) return;
  telemetry::MetricRegistry& m = t->metrics();
  m.GetCounter("shed.dropped_tuples")->Add(dropped_tuples);
  m.GetCounter("shed.dropped_batches")->Add(dropped_batches);
  m.GetHistogram("shed.fraction")
      ->Observe(static_cast<double>(dropped_tuples) /
                static_cast<double>(total_tuples));
}

}  // namespace themis
