// Eq. (1) SIC stamping of source batches (§6 "SIC maintenance"), shared by
// the discrete-event Node and the real-time server ingress: one online rate
// estimate per (query, source) pair, fed on every batch arrival, assigns
// each unstamped source tuple its per-tuple SIC value.
#ifndef THEMIS_NODE_SIC_STAMPER_H_
#define THEMIS_NODE_SIC_STAMPER_H_

#include <utility>
#include <vector>

#include "common/time_types.h"
#include "runtime/batch.h"
#include "sic/rate_estimator.h"

namespace themis {

/// \brief Stamps source batches with Eq. (1) SIC values.
///
/// Not thread-safe; the server guards it with the site lock, the Node runs
/// it from single-threaded event callbacks.
class SicStamper {
 public:
  /// \param stw source time window the rate estimates are expressed in
  explicit SicStamper(SimDuration stw) : stw_(stw) {}

  /// Observes the arrival and stamps `batch`'s tuples in place (tuple SIC
  /// and header SIC). No-op for derived batches (header.source invalid).
  /// \param num_sources |S| of the batch's query (Eq. 1 denominator)
  void StampSourceBatch(Batch* batch, SimTime now, size_t num_sources);

  /// Drops the estimators of query `q` (query undeployment).
  void RemoveQuery(QueryId q);

 private:
  SimDuration stw_;
  // Indexed by SourceId (globally dense). A slot holds (query, estimator)
  // pairs: source ids are globally unique in practice, so the inner vector
  // has one entry, but two queries binding the same source id still get
  // independent estimates.
  std::vector<std::vector<std::pair<QueryId, RateEstimator>>> estimators_;
};

}  // namespace themis

#endif  // THEMIS_NODE_SIC_STAMPER_H_
