// A THEMIS node (Fig. 5): input buffer, operator executor, overload detector
// and tuple shedder, driven by the discrete-event queue. One Node models one
// autonomous FSPS site (§3).
#ifndef THEMIS_NODE_NODE_H_
#define THEMIS_NODE_NODE_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/time_types.h"
#include "node/input_buffer.h"
#include "runtime/query_graph.h"
#include "shedding/cost_model.h"
#include "shedding/overload_detector.h"
#include "shedding/shedder.h"
#include "sic/rate_estimator.h"
#include "sic/stw_tracker.h"
#include "sim/event_queue.h"

namespace themis {

/// Routing callbacks a node uses to hand batches and results back to the
/// federation layer (which owns the network and the query coordinators).
class BatchRouter {
 public:
  virtual ~BatchRouter() = default;
  /// Ships a derived batch produced on `from` to the node hosting
  /// `(query, to_fragment)`.
  virtual void RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                          Batch batch) = 0;
  /// Delivers result tuples emitted by the query's root operator.
  virtual void DeliverResult(QueryId query, SimTime now,
                             const std::vector<Tuple>& results) = 0;
};

/// Node configuration; defaults reproduce the paper's settings (§7).
struct NodeOptions {
  /// Tuple shedder invocation period (paper default: 250 ms).
  SimDuration shed_interval = Millis(250);
  /// Source time window used for Eq. (1) SIC stamping (paper default: 10 s).
  SimDuration stw = Seconds(10);
  /// Relative CPU speed; operator costs divide by this (heterogeneity).
  double cpu_speed = 1.0;
  /// Watermark lag for window closing (late-data tolerance).
  SimDuration window_grace = Millis(200);
  /// Overload detector headroom multiplier (1.0 = paper behaviour).
  double headroom = 1.0;
  /// §6 local projection of result SIC in the shedder (see BalanceSicOptions;
  /// also exposed here so FSPS presets can toggle it globally).
  bool project_local_shedding = true;
};

/// Per-node counters exposed to experiments and tests.
struct NodeStats {
  uint64_t tuples_received = 0;
  uint64_t tuples_processed = 0;
  uint64_t tuples_shed = 0;
  uint64_t batches_received = 0;
  uint64_t batches_processed = 0;
  uint64_t batches_shed = 0;
  uint64_t shed_invocations = 0;     ///< timer ticks that shed something
  uint64_t detector_invocations = 0; ///< all timer ticks
  SimDuration busy_time = 0;
  size_t last_capacity = 0;
};

/// \brief One simulated FSPS node hosting query fragments.
class Node {
 public:
  /// \param shedder shedding policy (BALANCE-SIC or random); owned
  Node(NodeId id, NodeOptions options, EventQueue* queue, BatchRouter* router,
       std::unique_ptr<Shedder> shedder);

  /// Registers a fragment of `graph` as hosted here. The graph must outlive
  /// the node (or be removed first with UnhostQuery).
  void HostFragment(const QueryGraph* graph, FragmentId fragment);

  /// Removes every fragment of query `q` hosted here: drops its buffered
  /// batches and all per-query state. Safe to call for unknown queries.
  void UnhostQuery(QueryId q);

  /// Starts the periodic overload-detector/shedder timer.
  void Start();

  /// Ingress for both source batches and derived batches from other nodes.
  /// Source batches (tuples with sic == 0 destined to a source-bound
  /// operator) are stamped with Eq. (1) SIC values before buffering.
  void Receive(Batch batch);

  /// Coordinator dissemination of a query's current result SIC (§5.2).
  void UpdateQuerySic(QueryId query, double sic);

  NodeId id() const { return id_; }
  const NodeStats& stats() const { return stats_; }
  const NodeOptions& options() const { return options_; }
  const InputBuffer& input_buffer() const { return ib_; }
  /// Latest capacity estimate c (tuples per shedding interval).
  size_t CurrentCapacity() const;
  /// Queries with at least one hosted fragment.
  std::vector<QueryId> HostedQueries() const;
  const std::map<QueryId, double>& known_query_sic() const {
    return query_sic_;
  }
  /// SIC mass accepted for processing for query `q` over the trailing STW
  /// (diagnostics; the shedder sees this scaled by the efficiency estimate).
  double AcceptedSic(QueryId q, SimTime now);

 private:
  void ScheduleProcessing();
  void ProcessNext();
  /// Executes one admitted batch through the hosted part of its query graph.
  /// Returns the simulated work in microseconds.
  double ExecuteBatch(const Batch& batch);
  /// Advances windows of all hosted operators of `graph`'s hosted fragments,
  /// routing any emissions. Adds incurred work to `*work_us` if non-null.
  void PumpGraph(const QueryGraph* graph, double* work_us);
  /// Routes tuples emitted by `op` of `graph` along its out-edges; local
  /// consumers ingest immediately (cost added to *work_us), remote fragments
  /// go through the router, root emissions become results.
  void RouteOutputs(const QueryGraph* graph, OperatorId op,
                    const std::vector<Tuple>& outputs, double* work_us);
  void OnShedTimer();
  SimTime Watermark() const;

  NodeId id_;
  NodeOptions options_;
  EventQueue* queue_;
  BatchRouter* router_;
  std::unique_ptr<Shedder> shedder_;

  InputBuffer ib_;
  CostModel cost_model_;
  OverloadDetector detector_;

  // Hosted state.
  std::map<QueryId, const QueryGraph*> graphs_;
  std::map<QueryId, std::set<FragmentId>> hosted_fragments_;
  std::map<QueryId, std::set<OperatorId>> hosted_ops_;

  // Eq. (1) stamping state.
  std::map<std::pair<QueryId, SourceId>, RateEstimator> rate_estimators_;

  // Latest disseminated result SIC per hosted query.
  std::map<QueryId, double> query_sic_;

  // SIC mass accepted for processing per query over the trailing STW
  // (lag-free local signal for the shedder; see ShedContext), scaled by a
  // slow per-query efficiency estimate so it predicts *result* SIC: queries
  // lose SIC mass semantically (filters dropping whole panes, join windows
  // with one side missing), and equalising raw accepted mass would leave
  // low-efficiency queries permanently below the water level.
  std::map<QueryId, StwTracker> accepted_sic_;
  std::map<QueryId, Ewma> efficiency_;
  std::map<QueryId, double> accepted_snapshot_;

  // Processing bookkeeping.
  bool processing_scheduled_ = false;
  SimTime busy_until_ = 0;
  bool started_ = false;

  // Cost-model interval accounting.
  uint64_t interval_tuples_ = 0;
  SimDuration interval_busy_ = 0;

  NodeStats stats_;
};

}  // namespace themis

#endif  // THEMIS_NODE_NODE_H_
