// A THEMIS node (Fig. 5): input buffer, operator executor, overload detector
// and tuple shedder, driven by the discrete-event queue. One Node models one
// autonomous FSPS site (§3).
#ifndef THEMIS_NODE_NODE_H_
#define THEMIS_NODE_NODE_H_

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/time_types.h"
#include "node/input_buffer.h"
#include "node/sic_stamper.h"
#include "node/telemetry_hooks.h"
#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"
#include "runtime/query_graph.h"
#include "shedding/cost_model.h"
#include "shedding/overload_detector.h"
#include "shedding/shedder.h"
#include "sic/stw_tracker.h"
#include "sim/event_queue.h"

namespace themis {

/// Routing callbacks a node uses to hand batches and results back to the
/// federation layer (which owns the network and the query coordinators).
class BatchRouter {
 public:
  virtual ~BatchRouter() = default;
  /// Ships a derived batch produced on `from` to the node hosting
  /// `(query, to_fragment)`.
  virtual void RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                          Batch batch) = 0;
  /// Delivers result tuples emitted by the query's root operator.
  virtual void DeliverResult(QueryId query, SimTime now,
                             const std::vector<Tuple>& results) = 0;
};

/// Node configuration; defaults reproduce the paper's settings (§7).
struct NodeOptions {
  /// Tuple shedder invocation period (paper default: 250 ms).
  SimDuration shed_interval = Millis(250);
  /// Source time window used for Eq. (1) SIC stamping (paper default: 10 s).
  SimDuration stw = Seconds(10);
  /// Relative CPU speed; operator costs divide by this (heterogeneity).
  double cpu_speed = 1.0;
  /// Watermark lag for window closing (late-data tolerance).
  SimDuration window_grace = Millis(200);
  /// Overload detector headroom multiplier (1.0 = paper behaviour).
  double headroom = 1.0;
  /// §6 local projection of result SIC in the shedder (see BalanceSicOptions;
  /// also exposed here so FSPS presets can toggle it globally).
  bool project_local_shedding = true;
  /// Track per-query tuple arrival rates at ingress (feeds OfferedLoadUs —
  /// the forward-looking placement/autoscaler signal). Off by default: the
  /// tracker allocates on the data-plane hot path, and the historical
  /// benches pin allocs/tuple. Fsps enables it when the configured load
  /// signal (or elastic mode) needs it.
  bool track_arrivals = false;
};

/// Per-node counters exposed to experiments and tests.
struct NodeStats {
  uint64_t tuples_received = 0;
  uint64_t tuples_processed = 0;
  uint64_t tuples_shed = 0;
  uint64_t batches_received = 0;
  uint64_t batches_processed = 0;
  uint64_t batches_shed = 0;
  uint64_t shed_invocations = 0;     ///< timer ticks that shed something
  uint64_t detector_invocations = 0; ///< all timer ticks
  uint64_t batches_dropped_dead = 0; ///< in-flight arrivals while crashed
  uint64_t tuples_dropped_dead = 0;  ///< incl. the buffer drained at crash
  SimDuration busy_time = 0;
  size_t last_capacity = 0;
};

/// \brief One simulated FSPS node hosting query fragments.
class Node {
 public:
  /// \param shedder shedding policy (BALANCE-SIC or random); owned
  Node(NodeId id, NodeOptions options, EventQueue* queue, BatchRouter* router,
       std::unique_ptr<Shedder> shedder);

  /// Registers a fragment of `graph` as hosted here. The graph must outlive
  /// the node (or be removed first with UnhostQuery).
  void HostFragment(const QueryGraph* graph, FragmentId fragment);

  /// Removes every fragment of query `q` hosted here: drops its buffered
  /// batches and all per-query state. Safe to call for unknown queries.
  void UnhostQuery(QueryId q);

  /// Starts the periodic overload-detector/shedder timer.
  void Start();

  /// Moves the node to another shard's event queue (elastic re-balance; see
  /// Engine::EnableElastic for the protocol). Only legal between engine
  /// runs. Live timer chains (shed timer, pending processing event) re-arm
  /// on the new queue at their original deadlines — the phase is kept —
  /// and the events still queued on the old shard are neutered by a
  /// generation bump, so they no-op when that shard fires them.
  void MigrateQueue(EventQueue* queue);
  EventQueue* queue() const { return queue_; }

  /// Simulates a node failure: every buffered batch drains back to the
  /// batch pool, further arrivals are dropped at ingress (in-flight batches
  /// addressed here die on the wire), and the shedder timer goes quiet.
  /// The object stays alive — already-scheduled events fire harmlessly —
  /// and Restore() brings the node back empty.
  void Crash();
  /// Rejoins a crashed node: arrivals are accepted again and the shedder
  /// timer is re-armed (phase restarts at restore time). Hosted fragments
  /// do not return automatically; the federation re-places them.
  void Restore();
  bool alive() const { return alive_; }

  /// Ingress for both source batches and derived batches from other nodes.
  /// Source batches (tuples with sic == 0 destined to a source-bound
  /// operator) are stamped with Eq. (1) SIC values before buffering.
  void Receive(Batch batch);

  /// Coordinator dissemination of a query's current result SIC (§5.2).
  void UpdateQuerySic(QueryId query, double sic);

  /// Enables (or re-tunes) periodic operator-state checkpoints: every
  /// `config.cadence` the shed tick captures each hosted operator whose
  /// dirt exceeds `config.error_bound` into this node's store. Capture does
  /// zero simulated work, so the event schedule is unchanged. Call before
  /// Start() for a regular capture grid.
  void ConfigureCheckpoints(const CheckpointConfig& config) {
    ckpt_config_ = config;
  }
  /// This node's image store. Deliberately survives Crash()/Restore() —
  /// it models a durable backup, which is what re-placement restores from.
  CheckpointStore* checkpoint_store() { return &ckpt_store_; }

  NodeId id() const { return id_; }
  const NodeStats& stats() const { return stats_; }
  const NodeOptions& options() const { return options_; }
  const InputBuffer& input_buffer() const { return ib_; }
  /// Batch free-list of this node. Producers targeting this node (sources,
  /// upstream fragments) may Acquire() from it so batch churn recycles.
  BatchPool* batch_pool() { return &pool_; }
  /// Latest capacity estimate c (tuples per shedding interval).
  size_t CurrentCapacity() const;
  /// Queries with at least one hosted fragment.
  std::vector<QueryId> HostedQueries() const;
  const std::map<QueryId, double>& known_query_sic() const {
    return query_sic_;
  }
  /// SIC mass accepted for processing for query `q` over the trailing STW
  /// (diagnostics; the shedder sees this scaled by the efficiency estimate).
  double AcceptedSic(QueryId q, SimTime now);
  /// Tuples that arrived for query `q` over the trailing STW — the *offered*
  /// load, counted at ingress before admission or shedding (so an overloaded
  /// node's signal reflects demand, not what survived the shedder). 0 for
  /// unknown queries and while crashed (a dead node observes nothing).
  double ArrivalTuplesStw(QueryId q, SimTime now);
  /// Forward-looking load signal (LoadSignalKind::kArrivalCost): the work in
  /// simulated µs the trailing-STW arrival mass of query `q` implies at the
  /// measured per-tuple cost (which already reflects this node's CPU speed).
  double OfferedLoadUs(QueryId q, SimTime now);
  /// OfferedLoadUs summed over every query with recent arrivals.
  double OfferedLoadUs(SimTime now);
  /// Cumulative SIC mass admitted for query `q` since the node started.
  /// Used by the server oracle tests/bench to compare the live runtime
  /// against this discrete-event execution.
  double AcceptedSicTotal(QueryId q) const;
  /// Cumulative tuples admitted for query `q` since the node started.
  uint64_t AcceptedTuplesTotal(QueryId q) const;

 private:
  void ScheduleProcessing();
  /// `gen` guards against stale events after MigrateQueue: an event armed
  /// before a migration carries the old generation and must no-op — it may
  /// fire on the *old* shard's worker thread, so it must return after the
  /// generation check without touching any other member (generations are
  /// only written between runs, making the check itself race-free).
  void ProcessNext(uint64_t gen);
  /// Executes one admitted batch through the hosted part of its query graph.
  /// Returns the simulated work in microseconds.
  double ExecuteBatch(const Batch& batch);
  /// Per-query hosted state, flattened for O(1) per-batch access (query and
  /// operator ids are small dense ints). `graph == nullptr` means the query
  /// is not hosted here.
  struct HostedState {
    const QueryGraph* graph = nullptr;
    /// Operators of hosted fragments in pump order (fragments ascending,
    /// topologically sorted within a fragment).
    std::vector<OperatorId> pump_ops;
    /// hosted_op[op] != 0 iff `op` runs on this node; indexed by OperatorId.
    std::vector<char> hosted_op;
  };

  const HostedState* hosted_state(QueryId q) const {
    if (q < 0 || static_cast<size_t>(q) >= hosted_.size()) return nullptr;
    return hosted_[q].graph != nullptr ? &hosted_[q] : nullptr;
  }

  /// Advances windows of all hosted operators of `hs`'s hosted fragments,
  /// routing any emissions. Adds incurred work to `*work_us` if non-null.
  void PumpGraph(const HostedState& hs, double* work_us);
  /// Routes tuples emitted by `op` along its out-edges; local consumers
  /// ingest immediately (cost added to *work_us), remote fragments go
  /// through the router, root emissions become results.
  void RouteOutputs(const HostedState& hs, OperatorId op,
                    const std::vector<Tuple>& outputs, double* work_us);
  /// Builds a pooled batch addressed to `(query, op, port)` from `tuples`.
  Batch BuildBatch(QueryId query, OperatorId op, int port, SimTime created,
                   const std::vector<Tuple>& tuples);
  void OnShedTimer(uint64_t gen);
  /// Arms the shed-timer tick at `at` on the current queue.
  void ArmShedTimer(SimTime at);
  SimTime Watermark() const;

  NodeId id_;
  NodeOptions options_;
  EventQueue* queue_;
  BatchRouter* router_;
  std::unique_ptr<Shedder> shedder_;

  InputBuffer ib_;
  BatchPool pool_;
  CostModel cost_model_;
  OverloadDetector detector_;
  // Scratch buffer reused by PumpGraph for operator emissions; never holds
  // data across events, only avoids a fresh vector per pumped operator.
  std::vector<Tuple> scratch_outputs_;

  // Hosted state, indexed by QueryId (dense; entries with a null graph are
  // not hosted). Iteration in index order matches the former std::map's
  // ascending-query order, which the deterministic event sequence relies on.
  std::vector<HostedState> hosted_;
  std::map<QueryId, std::set<FragmentId>> hosted_fragments_;

  // Eq. (1) stamping state (per-(query, source) rate estimates), shared
  // with the real-time server ingress via SicStamper.
  SicStamper stamper_;

  // Latest disseminated result SIC per hosted query.
  std::map<QueryId, double> query_sic_;

  // Per-query admission accounting: the trailing-STW tracker is the
  // lag-free local signal for the shedder (see ShedContext), scaled by a
  // slow per-query efficiency estimate so it predicts *result* SIC: queries
  // lose SIC mass semantically (filters dropping whole panes, join windows
  // with one side missing), and equalising raw accepted mass would leave
  // low-efficiency queries permanently below the water level. The running
  // totals feed the server oracle comparison.
  struct AcceptedAccount {
    explicit AcceptedAccount(SimDuration stw) : tracker(stw) {}
    StwTracker tracker;
    double total_sic = 0.0;
    uint64_t total_tuples = 0;
  };
  std::map<QueryId, AcceptedAccount> accepted_sic_;
  // Trailing-STW arrival (offered-load) mass per query, fed at ingress
  // before admission; the arrival-rate x cost placement signal reads it.
  std::map<QueryId, StwTracker> arrival_tuples_;
  std::map<QueryId, Ewma> efficiency_;
  // Reused per shed tick; indexed by QueryId (see ShedContext).
  std::vector<double> accepted_snapshot_;
  // Cached per-query telemetry counters (no-op unless installed).
  QueryTelemetry query_telemetry_;
  // Batch-pool occupancy/recycle export, published once per shed tick.
  PoolTelemetry pool_telemetry_;
  // Operator-state checkpointing (inert while !ckpt_config_.enabled).
  CheckpointConfig ckpt_config_;
  CheckpointStore ckpt_store_;
  CheckpointTelemetry ckpt_telemetry_;
  SimTime ckpt_next_due_ = 0;

  // Processing bookkeeping.
  bool processing_scheduled_ = false;
  SimTime busy_until_ = 0;
  bool started_ = false;
  bool alive_ = true;
  // Whether a shed-timer event chain is live: the timer stops rescheduling
  // itself while crashed, and Restore() must not start a second chain when
  // the last pre-crash tick is still queued.
  bool shed_timer_armed_ = false;
  // Elastic migration state: the generation stamps every armed timer event;
  // MigrateQueue bumps it (neutering events left on the old queue) and
  // re-arms live chains at these recorded deadlines, preserving phase.
  uint64_t generation_ = 0;
  SimTime shed_next_at_ = 0;
  SimTime processing_at_ = 0;

  // Cost-model interval accounting.
  uint64_t interval_tuples_ = 0;
  SimDuration interval_busy_ = 0;

  NodeStats stats_;
};

}  // namespace themis

#endif  // THEMIS_NODE_NODE_H_
