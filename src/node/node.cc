#include "node/node.h"

#include <algorithm>
#include <iterator>

#include "common/logging.h"

namespace themis {

Node::Node(NodeId id, NodeOptions options, EventQueue* queue,
           BatchRouter* router, std::unique_ptr<Shedder> shedder)
    : id_(id),
      options_(options),
      queue_(queue),
      router_(router),
      shedder_(std::move(shedder)),
      detector_(options.headroom),
      stamper_(options.stw) {
  ib_.set_pool(&pool_);
}

void Node::HostFragment(const QueryGraph* graph, FragmentId fragment) {
  QueryId q = graph->id();
  if (static_cast<size_t>(q) >= hosted_.size()) {
    hosted_.resize(q + 1);
  }
  hosted_fragments_[q].insert(fragment);

  // Rebuild the flattened pump order and hosted-operator flags from the
  // fragment set (ascending fragments, topo order within a fragment).
  HostedState& hs = hosted_[q];
  hs.graph = graph;
  hs.pump_ops.clear();
  hs.hosted_op.assign(graph->num_operators(), 0);
  for (FragmentId frag : hosted_fragments_[q]) {
    for (OperatorId op : graph->fragment_ops(frag)) {
      hs.pump_ops.push_back(op);
      hs.hosted_op[op] = 1;
    }
  }
}

void Node::UnhostQuery(QueryId q) {
  if (q >= 0 && static_cast<size_t>(q) < hosted_.size()) {
    hosted_[q] = HostedState{};
  }
  hosted_fragments_.erase(q);
  query_sic_.erase(q);
  accepted_sic_.erase(q);
  arrival_tuples_.erase(q);
  efficiency_.erase(q);
  stamper_.RemoveQuery(q);
  ib_.RemoveQuery(q);
}

void Node::ArmShedTimer(SimTime at) {
  shed_timer_armed_ = true;
  shed_next_at_ = at;
  queue_->Schedule(at, [this, gen = generation_] { OnShedTimer(gen); });
}

void Node::Start() {
  if (started_) return;
  started_ = true;
  if (alive_) {
    ArmShedTimer(queue_->now() + options_.shed_interval);
  }
}

void Node::MigrateQueue(EventQueue* queue) {
  if (queue == queue_) return;
  queue_ = queue;
  // Neuter every timer event still queued on the old shard, then re-arm the
  // live chains here at their original deadlines: the tick sequence is the
  // same as if the node had always lived on this shard.
  ++generation_;
  if (shed_timer_armed_) {
    // Re-armed even while crashed: the pending pre-crash tick owns the
    // armed flag, and its re-homed copy clears it exactly like the stale
    // original would have (Restore then re-arms as usual).
    queue_->Schedule(shed_next_at_,
                     [this, gen = generation_] { OnShedTimer(gen); });
  }
  if (processing_scheduled_) {
    queue_->Schedule(processing_at_,
                     [this, gen = generation_] { ProcessNext(gen); });
  }
}

void Node::Crash() {
  if (!alive_) return;
  alive_ = false;
  // The input buffer drains straight back to the pool: in-flight state dies
  // with the node, but its buffers recycle (nothing leaks, nothing is
  // double-released — a popped batch is never in the buffer).
  stats_.tuples_dropped_dead += ib_.Clear();
}

void Node::Restore() {
  if (alive_) return;
  alive_ = true;
  if (started_ && !shed_timer_armed_) {
    ArmShedTimer(queue_->now() + options_.shed_interval);
  }
}

SimTime Node::Watermark() const {
  // Windows may close `window_grace` behind the clock, but never past the
  // creation time of the oldest batch still queued: under overload the
  // input buffer holds up to a couple of shedding intervals of data, and
  // closing a window while one input stream's batches for it are still
  // queued would systematically starve multi-input operators.
  SimTime wm = queue_->now() - options_.window_grace;
  if (!ib_.empty()) {
    wm = std::min(wm, ib_.batches().front().header.created);
  }
  return wm;
}

void Node::Receive(Batch batch) {
  if (!alive_) {
    // Crashed: the delivery dies on the doorstep. Not counted as received —
    // a dead node observes nothing — but the buffer still recycles.
    stats_.batches_dropped_dead += 1;
    stats_.tuples_dropped_dead += batch.size();
    pool_.Release(std::move(batch));
    return;
  }
  SimTime now = queue_->now();
  stats_.batches_received += 1;
  stats_.tuples_received += batch.size();

  const HostedState* hs = hosted_state(batch.header.query_id);
  if (hs == nullptr) {
    // Unknown query: either never hosted here or undeployed while this
    // batch was in flight. Drop at ingress (recycling the buffer).
    pool_.Release(std::move(batch));
    return;
  }

  // Source batches carry unstamped tuples; apply Eq. (1) using the online
  // rate estimate for this (query, source) pair (§6 "SIC maintenance").
  stamper_.StampSourceBatch(&batch, now, hs->graph->num_sources());

  // Offered-load accounting (before admission: shed tuples still count —
  // the placement signal should see demand, not the shedder's verdict).
  if (options_.track_arrivals) {
    auto arr_it = arrival_tuples_.find(batch.header.query_id);
    if (arr_it == arrival_tuples_.end()) {
      arr_it = arrival_tuples_
                   .emplace(batch.header.query_id, StwTracker(options_.stw))
                   .first;
    }
    arr_it->second.AddResultSic(now, static_cast<double>(batch.size()));
  }

  ib_.Push(std::move(batch));
  ScheduleProcessing();
}

void Node::UpdateQuerySic(QueryId query, double sic) {
  query_sic_[query] = sic;
}

size_t Node::CurrentCapacity() const {
  return cost_model_.EstimateCapacity(options_.shed_interval);
}

double Node::AcceptedSic(QueryId q, SimTime now) {
  auto it = accepted_sic_.find(q);
  return it == accepted_sic_.end() ? 0.0 : it->second.tracker.QuerySic(now);
}

double Node::ArrivalTuplesStw(QueryId q, SimTime now) {
  auto it = arrival_tuples_.find(q);
  return it == arrival_tuples_.end() ? 0.0 : it->second.RawSum(now);
}

double Node::OfferedLoadUs(QueryId q, SimTime now) {
  // PerTupleUs() is measured from interval busy time, which already folds
  // in cpu_speed — the product is simulated processing-µs directly.
  return ArrivalTuplesStw(q, now) * cost_model_.PerTupleUs();
}

double Node::OfferedLoadUs(SimTime now) {
  double total = 0.0;
  for (auto& [q, tracker] : arrival_tuples_) {
    total += tracker.RawSum(now);
  }
  return total * cost_model_.PerTupleUs();
}

double Node::AcceptedSicTotal(QueryId q) const {
  auto it = accepted_sic_.find(q);
  return it == accepted_sic_.end() ? 0.0 : it->second.total_sic;
}

uint64_t Node::AcceptedTuplesTotal(QueryId q) const {
  auto it = accepted_sic_.find(q);
  return it == accepted_sic_.end() ? 0 : it->second.total_tuples;
}

std::vector<QueryId> Node::HostedQueries() const {
  std::vector<QueryId> out;
  for (size_t q = 0; q < hosted_.size(); ++q) {
    if (hosted_[q].graph != nullptr) out.push_back(static_cast<QueryId>(q));
  }
  return out;
}

void Node::ScheduleProcessing() {
  if (processing_scheduled_ || ib_.empty()) return;
  processing_scheduled_ = true;
  SimTime at = std::max(queue_->now(), busy_until_);
  processing_at_ = at;
  queue_->Schedule(at, [this, gen = generation_] { ProcessNext(gen); });
}

void Node::ProcessNext(uint64_t gen) {
  if (gen != generation_) return;  // stale event from before a migration
  processing_scheduled_ = false;
  SimTime now = queue_->now();
  if (now < busy_until_) {
    // A shed pass or re-schedule raced us; resume when the CPU frees up.
    ScheduleProcessing();
    return;
  }
  std::optional<Batch> batch = ib_.Pop();
  if (!batch) return;

  QueryId batch_query = batch->header.query_id;
  auto acc_it = accepted_sic_.find(batch_query);
  if (acc_it == accepted_sic_.end()) {
    acc_it = accepted_sic_
                 .emplace(batch_query, AcceptedAccount(options_.stw))
                 .first;
  }
  acc_it->second.tracker.AddResultSic(now, batch->header.sic);
  acc_it->second.total_sic += batch->header.sic;
  acc_it->second.total_tuples += batch->size();
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    query_telemetry_.RecordAccepted(tel, batch_query, batch->header.sic,
                                    batch->size());
  }

  double work_us = ExecuteBatch(*batch);
  SimDuration work = static_cast<SimDuration>(work_us);
  busy_until_ = now + work;
  stats_.busy_time += work;
  interval_busy_ += work;
  stats_.batches_processed += 1;
  stats_.tuples_processed += batch->size();
  interval_tuples_ += batch->size();
  pool_.Release(std::move(*batch));

  ScheduleProcessing();
}

double Node::ExecuteBatch(const Batch& batch) {
  const HostedState* hs = hosted_state(batch.header.query_id);
  if (hs == nullptr) {
    THEMIS_LOG(Warn) << "node " << id_ << ": batch for unknown query "
                     << batch.header.query_id;
    return 0.0;
  }
  Operator* target = hs->graph->op(batch.header.dest_op);
  if (target == nullptr) return 0.0;

  double work_us =
      static_cast<double>(batch.size()) * target->cost_us_per_tuple() /
      options_.cpu_speed;
  if (batch.is_columnar()) {
    const ColumnarBlock& block = *batch.columnar;
    // Short-circuit the block past stateless pass-throughs on a linear
    // chain: a pass-through's pending buffer is always empty here (PumpGraph
    // flushes it in topo order every event), and requiring the consumer to
    // have in-degree 1 means no other producer could observe the skipped
    // hop's timing — so handing the block straight to the first stateful
    // operator is unobservable. Each skipped hop still charges its ingest
    // cost with the same arithmetic the row path performs.
    Operator* op = target;
    int port = batch.header.dest_port;
    while (op->IsStatelessPassThrough() && op->id() != hs->graph->root()) {
      const std::vector<Edge>& edges = hs->graph->out_edges(op->id());
      if (edges.size() != 1) break;
      const Edge& e = edges[0];
      if (hs->hosted_op[e.to] == 0 || hs->graph->in_degree(e.to) != 1) break;
      Operator* next = hs->graph->op(e.to);
      work_us += static_cast<double>(block.rows()) *
                 next->cost_us_per_tuple() / options_.cpu_speed;
      op = next;
      port = e.port;
    }
    op->IngestColumnar(block, port);
  } else {
    target->Ingest(batch.tuples, batch.header.dest_port);
  }
  PumpGraph(*hs, &work_us);
  return work_us;
}

void Node::PumpGraph(const HostedState& hs, double* work_us) {
  const QueryGraph* graph = hs.graph;
  SimTime wm = Watermark();
  // pump_ops stores hosted fragments' operators topologically, so one pass
  // suffices for chains within a fragment: upstream emissions are ingested
  // (and re-advanced) before downstream operators are visited.
  for (OperatorId op_id : hs.pump_ops) {
    Operator* op = graph->op(op_id);
    // Reuse one scratch buffer for all pumped operators: RouteOutputs
    // finishes synchronously (consumers copy on Ingest) before the next
    // operator overwrites it.
    scratch_outputs_.clear();
    op->Advance(wm, &scratch_outputs_);
    if (!scratch_outputs_.empty()) {
      RouteOutputs(hs, op_id, scratch_outputs_, work_us);
    }
  }
}

void Node::RouteOutputs(const HostedState& hs, OperatorId op,
                        const std::vector<Tuple>& outputs, double* work_us) {
  SimTime now = queue_->now();
  const QueryGraph* graph = hs.graph;

  if (op == graph->root()) {
    router_->DeliverResult(graph->id(), now, outputs);
    return;
  }

  for (const Edge& e : graph->out_edges(op)) {
    if (hs.hosted_op[e.to] != 0) {
      Operator* consumer = graph->op(e.to);
      if (work_us != nullptr) {
        *work_us += static_cast<double>(outputs.size()) *
                    consumer->cost_us_per_tuple() / options_.cpu_speed;
      }
      consumer->Ingest(outputs, e.port);
    } else {
      Batch b = BuildBatch(graph->id(), e.to, e.port, now, outputs);
      router_->RouteBatch(id_, graph->id(), graph->fragment_of(e.to),
                          std::move(b));
    }
  }
}

Batch Node::BuildBatch(QueryId query, OperatorId op, int port, SimTime created,
                       const std::vector<Tuple>& tuples) {
  Batch b = pool_.Acquire();
  b.header.query_id = query;
  b.header.dest_op = op;
  b.header.dest_port = port;
  b.header.created = created;
  b.tuples.assign(tuples.begin(), tuples.end());
  b.RefreshHeaderSic();
  return b;
}

void Node::OnShedTimer(uint64_t gen) {
  if (gen != generation_) return;  // stale event from before a migration
  if (!alive_) {
    // Crashed between ticks: let the timer chain die (Restore re-arms it).
    shed_timer_armed_ = false;
    return;
  }
  SimTime now = queue_->now();
  stats_.detector_invocations += 1;
  telemetry::Telemetry* tel = telemetry::Get();
  telemetry::TraceScope span("node.shed_tick");

  // Feed the cost model with the last interval's measurements (§6).
  cost_model_.RecordInterval(interval_tuples_, interval_busy_);
  interval_tuples_ = 0;
  interval_busy_ = 0;

  // Close windows that became due even if no batch arrived lately.
  // (Ascending query order, as the former map iteration did.)
  for (const HostedState& hs : hosted_) {
    if (hs.graph != nullptr) PumpGraph(hs, nullptr);
  }

  // Capture operator checkpoints right after the pump, when released panes
  // have left the state (minimal re-emission on restore). Zero simulated
  // cost, like telemetry: the event schedule is identical with the feature
  // on or off, so seq == parsim@1 and run-to-run identity still hold.
  if (ckpt_config_.enabled && now >= ckpt_next_due_) {
    ckpt_next_due_ = now + ckpt_config_.cadence;
    for (const HostedState& hs : hosted_) {
      if (hs.graph == nullptr) continue;
      for (OperatorId oid : hs.pump_ops) {
        MaybeCheckpointOperator(hs.graph->op(oid), hs.graph->id(), now,
                                ckpt_config_.error_bound, &ckpt_store_);
      }
    }
  }

  size_t capacity = cost_model_.EstimateCapacity(options_.shed_interval);
  stats_.last_capacity = capacity;

  // Refresh per-query efficiency estimates (result SIC per accepted SIC).
  // The disseminated value lags the accept level by the operator pipeline
  // latency, so the ratio is smoothed with a slow EWMA.
  for (auto& [q, acc] : accepted_sic_) {
    double accepted = acc.tracker.QuerySic(now);
    if (accepted > 0.02) {
      if (auto it = query_sic_.find(q); it != query_sic_.end()) {
        double ratio = std::clamp(it->second / accepted, 0.0, 1.2);
        auto [eff_it, ins] = efficiency_.try_emplace(q, Ewma(0.05));
        eff_it->second.Update(ratio);
      }
    }
  }

  bool overloaded = detector_.IsOverloaded(ib_.num_tuples(), capacity);
  if (tel != nullptr) {
    RecordShedTick(tel, ib_.num_tuples(), capacity, overloaded);
    pool_telemetry_.Publish(tel, pool_.stats());
    if (ckpt_config_.enabled) ckpt_telemetry_.Publish(tel, ckpt_store_);
  }
  if (overloaded) {
    accepted_snapshot_.assign(hosted_.size(), 0.0);
    for (auto& [q, acc] : accepted_sic_) {
      double eff = 1.0;
      if (auto it = efficiency_.find(q); it != efficiency_.end()) {
        if (it->second.has_value()) eff = std::max(it->second.value(), 0.05);
      }
      if (static_cast<size_t>(q) >= accepted_snapshot_.size()) {
        accepted_snapshot_.resize(q + 1, 0.0);
      }
      accepted_snapshot_[q] = acc.tracker.QuerySic(now) * eff;
    }
    ShedContext ctx;
    ctx.capacity_tuples = capacity;
    ctx.now = now;
    ctx.query_sic = &query_sic_;
    ctx.local_accepted_sic = &accepted_snapshot_;
    std::vector<size_t> keep =
        shedder_->SelectBatchesToKeep(ib_.batches(), ctx);
    if (tel != nullptr) {
      RecordShedDrops(tel, &query_telemetry_, ib_.batches(), keep);
    }
    size_t before_batches = ib_.num_batches();
    size_t dropped = ib_.RetainIndices(keep);
    if (dropped > 0) {
      stats_.shed_invocations += 1;
      stats_.tuples_shed += dropped;
      stats_.batches_shed += before_batches - ib_.num_batches();
    }
  }

  ArmShedTimer(now + options_.shed_interval);
}

}  // namespace themis
