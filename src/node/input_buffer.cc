#include "node/input_buffer.h"

#include <utility>

namespace themis {

void InputBuffer::Push(Batch b) {
  num_tuples_ += b.size();
  batches_.push_back(std::move(b));
}

std::optional<Batch> InputBuffer::Pop() {
  if (batches_.empty()) return std::nullopt;
  Batch b = std::move(batches_.front());
  batches_.pop_front();
  num_tuples_ -= b.size();
  return b;
}

size_t InputBuffer::RetainIndices(const std::vector<size_t>& keep_indices) {
  // Compact in place: the write position only ever trails the read
  // position (keep_indices is ascending), so kept batches move forward and
  // dropped ones are released to the pool before their slot is reused.
  size_t kept_tuples = 0;
  size_t cursor = 0;
  size_t write = 0;
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (cursor < keep_indices.size() && keep_indices[cursor] == i) {
      kept_tuples += batches_[i].size();
      if (write != i) batches_[write] = std::move(batches_[i]);
      ++write;
      ++cursor;
    } else if (pool_ != nullptr) {
      pool_->Release(std::move(batches_[i]));
    }
  }
  size_t dropped = num_tuples_ - kept_tuples;
  batches_.resize(write);
  num_tuples_ = kept_tuples;
  return dropped;
}

size_t InputBuffer::RemoveQuery(QueryId q) {
  std::deque<Batch> kept;
  size_t kept_tuples = 0;
  for (Batch& b : batches_) {
    if (b.header.query_id == q) {
      if (pool_ != nullptr) pool_->Release(std::move(b));
      continue;
    }
    kept_tuples += b.size();
    kept.push_back(std::move(b));
  }
  size_t dropped = num_tuples_ - kept_tuples;
  batches_ = std::move(kept);
  num_tuples_ = kept_tuples;
  return dropped;
}

size_t InputBuffer::Clear() {
  size_t dropped = num_tuples_;
  for (Batch& b : batches_) {
    if (pool_ != nullptr) pool_->Release(std::move(b));
  }
  batches_.clear();
  num_tuples_ = 0;
  return dropped;
}

double InputBuffer::SicOfQuery(QueryId q) const {
  double sum = 0.0;
  for (const Batch& b : batches_) {
    if (b.header.query_id == q) sum += b.header.sic;
  }
  return sum;
}

}  // namespace themis
