// Input buffer (IB) of a THEMIS node (Fig. 5): all incoming batches queue
// here before processing; the shedder prunes it under overload.
#ifndef THEMIS_NODE_INPUT_BUFFER_H_
#define THEMIS_NODE_INPUT_BUFFER_H_

#include <deque>
#include <optional>
#include <vector>

#include "runtime/batch.h"
#include "runtime/batch_pool.h"

namespace themis {

/// \brief FIFO batch queue with tuple-count accounting and shedder support.
class InputBuffer {
 public:
  /// Dropped batches (shedding, query removal) are released to `pool` so
  /// their buffers recycle instead of churning the allocator. May be null.
  void set_pool(BatchPool* pool) { pool_ = pool; }

  void Push(Batch b);
  /// Removes and returns the oldest batch; nullopt when empty.
  std::optional<Batch> Pop();

  size_t num_batches() const { return batches_.size(); }
  size_t num_tuples() const { return num_tuples_; }
  bool empty() const { return batches_.empty(); }

  /// Read-only view for shedders.
  const std::deque<Batch>& batches() const { return batches_; }

  /// Keeps exactly the batches at `keep_indices` (ascending, deduplicated by
  /// the caller) and drops the rest. Returns the number of dropped tuples.
  size_t RetainIndices(const std::vector<size_t>& keep_indices);

  /// SIC mass of all buffered batches of query `q` (used by the projection
  /// heuristic and by tests).
  double SicOfQuery(QueryId q) const;

  /// Drops all buffered batches of query `q` (query undeployment). Returns
  /// the number of dropped tuples.
  size_t RemoveQuery(QueryId q);

  /// Drops every buffered batch (node crash), releasing their buffers to
  /// the pool. Returns the number of dropped tuples.
  size_t Clear();

 private:
  std::deque<Batch> batches_;
  size_t num_tuples_ = 0;
  BatchPool* pool_ = nullptr;
};

}  // namespace themis

#endif  // THEMIS_NODE_INPUT_BUFFER_H_
