// Shared telemetry hooks for the shed tick / admission seams.
//
// Node::OnShedTimer (DES) and ServerPipeline::TickPhase2 (realtime) run
// the same detector -> shedder -> RetainIndices sequence; both call these
// helpers at the same points with the same simulated-state inputs, which
// is what makes a server kModeled metric snapshot match the DES snapshot
// bit for bit (telemetry_test's oracle test pins this).
//
// Every helper takes the installed `Telemetry*` from the caller (which
// already branched on it), so a disabled run pays nothing here.
#ifndef THEMIS_NODE_TELEMETRY_HOOKS_H_
#define THEMIS_NODE_TELEMETRY_HOOKS_H_

#include <deque>
#include <vector>

#include "runtime/batch.h"
#include "runtime/batch_pool.h"
#include "runtime/checkpoint.h"
#include "telemetry/telemetry.h"

namespace themis {

/// \brief Cached per-query counter handles
/// (`query.<q>.{accepted,dropped}_{sic_fp,tuples}`), re-resolved whenever
/// the installed Telemetry changes. Not thread-safe: use one instance per
/// single-threaded writer context.
class QueryTelemetry {
 public:
  /// SIC mass accumulates into the `*_sic_fp` counters as Q44.20 fixed
  /// point (telemetry::FixedFromDouble) so merges stay deterministic.
  void RecordAccepted(telemetry::Telemetry* t, QueryId q, double sic,
                      uint64_t tuples);
  void RecordDropped(telemetry::Telemetry* t, QueryId q, double sic,
                     uint64_t tuples);

 private:
  struct PerQuery {
    telemetry::Counter* accepted_sic = nullptr;
    telemetry::Counter* accepted_tuples = nullptr;
    telemetry::Counter* dropped_sic = nullptr;
    telemetry::Counter* dropped_tuples = nullptr;
  };

  PerQuery* Resolve(telemetry::Telemetry* t, QueryId q);

  telemetry::Telemetry* owner_ = nullptr;
  std::vector<PerQuery> by_query_;
};

/// \brief Publishes BatchPool recycling statistics as `infra.pool.*`
/// metrics (infra.* is the wall-clock/environment namespace excluded from
/// determinism byte-diffs). Counters
/// `infra.pool.{row,columnar}_{hits,misses,released,evicted}` advance by the
/// delta since the last publish; gauges `infra.pool.{row,columnar}_pooled`
/// and `..._peak` carry the current free-list occupancy / high-water mark.
/// Call from the shed tick (one publish per interval is plenty).
class PoolTelemetry {
 public:
  void Publish(telemetry::Telemetry* t, const BatchPool::Stats& s);

 private:
  struct Handles {
    telemetry::Counter* row_hits = nullptr;
    telemetry::Counter* row_misses = nullptr;
    telemetry::Counter* row_released = nullptr;
    telemetry::Counter* row_evicted = nullptr;
    telemetry::Counter* columnar_hits = nullptr;
    telemetry::Counter* columnar_misses = nullptr;
    telemetry::Counter* columnar_released = nullptr;
    telemetry::Counter* columnar_evicted = nullptr;
    telemetry::Gauge* row_pooled = nullptr;
    telemetry::Gauge* row_peak = nullptr;
    telemetry::Gauge* columnar_pooled = nullptr;
    telemetry::Gauge* columnar_peak = nullptr;
  };

  telemetry::Telemetry* owner_ = nullptr;
  Handles h_;
  BatchPool::Stats last_;
};

/// \brief Publishes CheckpointStore capture/restore statistics as
/// `infra.ckpt.*` metrics (like PoolTelemetry, in the wall-clock namespace
/// excluded from determinism byte-diffs). Counters
/// `infra.ckpt.{taken,skipped_clean,restores,missed,bytes_written}` advance
/// by the delta since the last publish; gauges `infra.ckpt.images` /
/// `infra.ckpt.resident_bytes` carry the store's current occupancy. Call
/// from the shed tick.
class CheckpointTelemetry {
 public:
  void Publish(telemetry::Telemetry* t, const CheckpointStore& store);

 private:
  struct Handles {
    telemetry::Counter* taken = nullptr;
    telemetry::Counter* skipped_clean = nullptr;
    telemetry::Counter* restores = nullptr;
    telemetry::Counter* missed = nullptr;
    telemetry::Counter* bytes_written = nullptr;
    telemetry::Gauge* images = nullptr;
    telemetry::Gauge* resident_bytes = nullptr;
  };

  telemetry::Telemetry* owner_ = nullptr;
  Handles h_;
  CheckpointStore::Stats last_;
};

/// Records one overload-detector verdict: counters `shed.ticks` /
/// `shed.overloaded_ticks`, histograms `shed.ib_tuples` / `shed.capacity`.
/// Call right after OverloadDetector::IsOverloaded with the same inputs.
void RecordShedTick(telemetry::Telemetry* t, uint64_t ib_tuples,
                    uint64_t capacity, bool overloaded);

/// Records one shed decision: per-query dropped SIC/tuple mass (through
/// `queries`), counters `shed.dropped_tuples` / `shed.dropped_batches`,
/// and the `shed.fraction` histogram (dropped tuples / buffered tuples).
/// Call after SelectBatchesToKeep and before RetainIndices; `keep` holds
/// ascending indices into `ib` of the batches that survive.
void RecordShedDrops(telemetry::Telemetry* t, QueryTelemetry* queries,
                     const std::deque<Batch>& ib,
                     const std::vector<size_t>& keep);

}  // namespace themis

#endif  // THEMIS_NODE_TELEMETRY_HOOKS_H_
