#include "node/sic_stamper.h"

#include <algorithm>

#include "runtime/columnar_kernels.h"
#include "sic/sic.h"

namespace themis {

void SicStamper::StampSourceBatch(Batch* batch, SimTime now,
                                  size_t num_sources) {
  if (batch->header.source == kInvalidId) return;
  SourceId src = batch->header.source;
  if (static_cast<size_t>(src) >= estimators_.size()) {
    estimators_.resize(src + 1);
  }
  auto& slot = estimators_[src];
  RateEstimator* est = nullptr;
  for (auto& [q, e] : slot) {
    if (q == batch->header.query_id) {
      est = &e;
      break;
    }
  }
  if (est == nullptr) {
    slot.emplace_back(batch->header.query_id, RateEstimator(stw_));
    est = &slot.back().second;
  }
  est->Observe(now, batch->size());
  double per_stw = est->TuplesPerStw(now);
  double sic = SourceTupleSic(per_stw, num_sources);
  // Stamp and refresh the header in one pass. The sum loop (rather than
  // sic * n) reproduces RefreshHeaderSic()'s exact rounding so shedding
  // decisions — and therefore figure outputs — stay bit-identical; the
  // columnar kernel performs the identical addition sequence over the
  // contiguous SIC array.
  if (batch->is_columnar()) {
    auto& sics = batch->columnar->sics();
    batch->header.sic = columnar::StampSics(sics.data(), sics.size(), sic);
    return;
  }
  double sum = 0.0;
  for (Tuple& t : batch->tuples) {
    t.sic = sic;
    sum += sic;
  }
  batch->header.sic = sum;
}

void SicStamper::RemoveQuery(QueryId q) {
  for (auto& slot : estimators_) {
    std::erase_if(slot, [q](const auto& entry) { return entry.first == q; });
  }
}

}  // namespace themis
