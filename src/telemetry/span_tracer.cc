#include "telemetry/span_tracer.h"

#include <atomic>
#include <cstdio>

namespace themis {
namespace telemetry {
namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local cache of the calling thread's ring for one tracer. Keyed
// by the tracer's process-unique id (never an address, which could be
// reused by a later tracer).
thread_local uint64_t tls_tracer_id = 0;
thread_local void* tls_log = nullptr;

}  // namespace

SpanTracer::SpanTracer(size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(NextTracerId()),
      origin_(std::chrono::steady_clock::now()) {}

uint64_t SpanTracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

SpanTracer::ThreadLog* SpanTracer::RegisterThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  auto log = std::make_unique<ThreadLog>();
  log->ring.reserve(capacity_);
  log->tid = static_cast<int>(logs_.size());
  ThreadLog* raw = log.get();
  logs_.push_back(std::move(log));
  return raw;
}

void SpanTracer::Record(const char* name, uint64_t start_us,
                        uint64_t dur_us) {
  if (tls_tracer_id != id_) {
    tls_log = RegisterThisThread();
    tls_tracer_id = id_;
  }
  ThreadLog* log = static_cast<ThreadLog*>(tls_log);
  SpanEvent event{name, start_us, dur_us};
  if (log->ring.size() < capacity_) {
    log->ring.push_back(event);
  } else {
    log->ring[log->next] = event;
    log->next = (log->next + 1) % capacity_;
  }
  ++log->recorded;
}

uint64_t SpanTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& log : logs_) total += log->recorded;
  return total;
}

void SpanTracer::ExportChromeTrace(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"traceEvents\":[");
  bool first = true;
  char buf[160];
  for (const auto& log : logs_) {
    // Oldest-first: the overwrite cursor marks the oldest retained span.
    const size_t n = log->ring.size();
    for (size_t i = 0; i < n; ++i) {
      const SpanEvent& e = log->ring[(log->next + i) % n];
      if (!first) out->push_back(',');
      first = false;
      out->append("{\"name\":\"");
      out->append(e.name);
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"cat\":\"themis\",\"ts\":%llu,"
                    "\"dur\":%llu,\"pid\":1,\"tid\":%d}",
                    static_cast<unsigned long long>(e.start_us),
                    static_cast<unsigned long long>(e.dur_us), log->tid);
      out->append(buf);
    }
  }
  out->append("],\"displayTimeUnit\":\"ms\"}");
}

}  // namespace telemetry
}  // namespace themis
