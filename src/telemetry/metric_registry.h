// Lock-free, per-shard-laned metric registry: monotonic counters, gauges,
// log2-bucketed value histograms and time series, with deterministic merge
// and deterministic Prometheus-style / JSON export.
//
// Determinism contract: metric *values* must be derived from simulated
// state only, so that a snapshot is bit-identical run-to-run and across
// shard counts. Two mechanisms make that hold under the parallel engine:
//
//  - Every hot-path slot is a per-lane relaxed atomic (lanes are cache-line
//    padded; parsim workers call telemetry::SetLane(shard)). Integer adds
//    commute, so the merged value is independent of thread interleaving.
//  - Sums of fractional quantities (SIC mass, shed fractions) accumulate
//    as Q44.20 fixed point (`FixedFromDouble`), never as floats, so the
//    merge is associative bit for bit.
//
// Metrics whose values are inherently shard-count-dependent or wall-clock
// derived (epoch busy/wait time, server stage latencies) must be named
// with the reserved `infra.` prefix; exporters can exclude them
// (`include_infra = false`, or `grep -v '^infra\.'` on the text snapshot)
// so the remaining snapshot stays part of the determinism contract.
#ifndef THEMIS_TELEMETRY_METRIC_REGISTRY_H_
#define THEMIS_TELEMETRY_METRIC_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace themis {
namespace telemetry {

/// Max concurrent writer lanes (parsim shards). Writes from lanes >= this
/// clamp into the last lane; correctness is unaffected, only contention.
inline constexpr int kMaxLanes = 16;

/// Fractional quantities accumulate as Q44.20 fixed point.
inline constexpr int kFixedPointBits = 20;

/// Nearest fixed-point representation of `v` (ties away from zero).
int64_t FixedFromDouble(double v);
/// Exact double of a fixed-point value (Q44.20 fits double's mantissa for
/// every magnitude this codebase produces).
double FixedToDouble(int64_t fp);

/// One cache-line-padded accumulator cell.
struct alignas(64) LaneCell {
  std::atomic<uint64_t> value{0};
};

/// \brief Monotonic counter; per-lane relaxed adds, merged on read.
class Counter {
 public:
  /// Adds `n` on the calling thread's lane. Relaxed: counts commute.
  void Add(uint64_t n);
  /// Sum over lanes. Exact once writers have quiesced; approximate
  /// (but never torn) while they run.
  uint64_t Value() const;

 private:
  LaneCell lanes_[kMaxLanes];
};

/// \brief Point-in-time value, stored as fixed point. Single atomic slot:
/// gauges are set from control-plane code (one writer at a time), not
/// from data-plane lanes.
class Gauge {
 public:
  void Set(double v);
  void SetRaw(int64_t fp);
  int64_t Raw() const;
  double Value() const;

 private:
  std::atomic<int64_t> fp_{0};
};

/// \brief Log2-bucketed histogram of a nonnegative quantity.
///
/// Bucket b holds values v with 2^(b-kBucketBias-1) <= v < 2^(b-kBucketBias)
/// (frexp exponent + bias; exact powers of two sit at the bottom of their
/// bucket); v <= 0 lands in bucket 0. The covered range, 2^-32 .. 2^31,
/// spans everything observed here (microseconds, tuple counts, shed
/// fractions). The sum accumulates as fixed point so merged snapshots are
/// bit-identical regardless of lane interleaving.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kBucketBias = 32;

  /// Bucket index for `v`; pure function, pinned by telemetry_test.
  static int BucketOf(double v);

  void Observe(double v);
  uint64_t Count() const;
  /// Sum of observed values, fixed point.
  int64_t SumRaw() const;
  double Sum() const;
  /// Merged count of bucket `b`.
  uint64_t BucketCount(int b) const;

 private:
  struct alignas(64) Lane {
    std::atomic<uint64_t> buckets[kBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> sum_fp{0};
  };
  Lane lanes_[kMaxLanes];
};

/// \brief Append-only (time, value) series — low-rate control-plane
/// appends (e.g. one Jain sample per 250 ms), guarded by a mutex.
class Series {
 public:
  struct Point {
    int64_t time_us = 0;
    int64_t value_fp = 0;
  };

  void Append(int64_t time_us, double value);
  std::vector<Point> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<Point> points_;
};

/// \brief Named-metric owner. Get* interns the name on first use and
/// returns a stable pointer; lookups take a mutex (instrument hot loops by
/// caching the returned pointer), the returned handles are lock-free.
class MetricRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);
  Series* GetSeries(std::string_view name);

  /// Appends a Prometheus-style text snapshot: one `name value` line per
  /// counter/gauge, `name_count` / `name_sum` / non-empty
  /// `name_bucket{pow2="e"}` lines per histogram, and
  /// `name{t_us="..."} value` lines per series point. Names are emitted
  /// in sorted order; `include_infra = false` drops metrics whose name
  /// starts with `infra.`.
  void ExportProm(std::string* out, bool include_infra = true) const;

  /// Appends one JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...},"series":{...}} with the same content and
  /// filtering as ExportProm.
  void ExportJson(std::string* out, bool include_infra = true) const;

 private:
  mutable std::mutex mu_;
  // std::map: stable pointers + deterministic (sorted) export order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> series_;
};

/// Calling thread's writer lane; clamped to [0, kMaxLanes).
void SetLane(int lane);
int Lane();

}  // namespace telemetry
}  // namespace themis

#endif  // THEMIS_TELEMETRY_METRIC_REGISTRY_H_
