#include "telemetry/telemetry.h"

namespace themis {
namespace telemetry {

namespace internal {
std::atomic<Telemetry*> g_telemetry{nullptr};
}  // namespace internal

void Install(Telemetry* t) {
  internal::g_telemetry.store(t, std::memory_order_release);
}

void Uninstall() {
  internal::g_telemetry.store(nullptr, std::memory_order_release);
}

}  // namespace telemetry
}  // namespace themis
