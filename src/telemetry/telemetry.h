// themis_telemetry entry point: one `Telemetry` object bundles a
// MetricRegistry and a SpanTracer; `Install` publishes it through a global
// atomic pointer and every instrumentation site branches on `Get()`.
//
// Zero-cost when disabled: with no Telemetry installed, an instrumented
// seam costs one relaxed atomic load and a predicted-not-taken branch —
// no allocation, no clock read, no lock. That is what keeps the 18 bench
// outputs byte-identical with telemetry off.
//
// Ownership: the installer keeps the Telemetry alive and must Uninstall
// before destroying it. Install/Uninstall are control-plane operations
// (process start / end of a bench run), not hot-path ones.
#ifndef THEMIS_TELEMETRY_TELEMETRY_H_
#define THEMIS_TELEMETRY_TELEMETRY_H_

#include <atomic>

#include "telemetry/metric_registry.h"
#include "telemetry/span_tracer.h"

namespace themis {
namespace telemetry {

struct TelemetryOptions {
  size_t trace_ring_capacity = SpanTracer::kDefaultRingCapacity;
};

/// \brief A metric registry plus a span tracer, installed as a unit.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : tracer_(options.trace_ring_capacity) {}

  MetricRegistry& metrics() { return metrics_; }
  SpanTracer& tracer() { return tracer_; }

 private:
  MetricRegistry metrics_;
  SpanTracer tracer_;
};

namespace internal {
extern std::atomic<Telemetry*> g_telemetry;
}  // namespace internal

/// Installed Telemetry, or nullptr when disabled. The single hot-path
/// check of the whole layer.
inline Telemetry* Get() {
  return internal::g_telemetry.load(std::memory_order_acquire);
}

/// Publishes `t` (replacing any previous install). Pointers cached
/// against the previous install (QueryTelemetry, hot-loop handles) key on
/// the Telemetry address and re-resolve.
void Install(Telemetry* t);
/// Disables telemetry; in-flight readers of the old pointer must be
/// quiesced by the caller before destroying the object.
void Uninstall();

/// \brief RAII timed scope; records into the installed tracer, reads no
/// clock when telemetry is disabled. `name` must be a string literal.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    Telemetry* t = Get();
    if (t != nullptr) {
      tracer_ = &t->tracer();
      name_ = name;
      start_us_ = tracer_->NowMicros();
    }
  }
  ~TraceScope() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_us_, tracer_->NowMicros() - start_us_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  SpanTracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace telemetry
}  // namespace themis

#endif  // THEMIS_TELEMETRY_TELEMETRY_H_
