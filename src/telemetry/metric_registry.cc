#include "telemetry/metric_registry.h"

#include <cmath>
#include <cstdio>

namespace themis {
namespace telemetry {
namespace {

thread_local int tls_lane = 0;

/// Formats a fixed-point value as a plain decimal with 6 fractional
/// digits — enough to round-trip Q44.20 exactly for display purposes and
/// deterministic across platforms (no float-to-shortest ambiguity).
void AppendFixed(std::string* out, int64_t fp) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", FixedToDouble(fp));
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

bool IsInfra(std::string_view name) {
  return name.size() >= 6 && name.substr(0, 6) == "infra.";
}

}  // namespace

int64_t FixedFromDouble(double v) {
  return static_cast<int64_t>(
      std::llround(std::ldexp(v, kFixedPointBits)));
}

double FixedToDouble(int64_t fp) {
  return std::ldexp(static_cast<double>(fp), -kFixedPointBits);
}

void SetLane(int lane) {
  if (lane < 0) lane = 0;
  if (lane >= kMaxLanes) lane = kMaxLanes - 1;
  tls_lane = lane;
}

int Lane() { return tls_lane; }

void Counter::Add(uint64_t n) {
  lanes_[tls_lane].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const LaneCell& lane : lanes_) {
    sum += lane.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Gauge::Set(double v) {
  fp_.store(FixedFromDouble(v), std::memory_order_relaxed);
}

void Gauge::SetRaw(int64_t fp) { fp_.store(fp, std::memory_order_relaxed); }

int64_t Gauge::Raw() const { return fp_.load(std::memory_order_relaxed); }

double Gauge::Value() const { return FixedToDouble(Raw()); }

int Histogram::BucketOf(double v) {
  if (!(v > 0.0)) return 0;
  int exp = 0;
  (void)std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  int b = exp + kBucketBias;
  if (b < 0) b = 0;
  if (b >= kBuckets) b = kBuckets - 1;
  return b;
}

void Histogram::Observe(double v) {
  Lane& lane = lanes_[tls_lane];
  lane.buckets[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  lane.count.fetch_add(1, std::memory_order_relaxed);
  lane.sum_fp.fetch_add(FixedFromDouble(v), std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t sum = 0;
  for (const Lane& lane : lanes_) {
    sum += lane.count.load(std::memory_order_relaxed);
  }
  return sum;
}

int64_t Histogram::SumRaw() const {
  int64_t sum = 0;
  for (const Lane& lane : lanes_) {
    sum += lane.sum_fp.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::Sum() const { return FixedToDouble(SumRaw()); }

uint64_t Histogram::BucketCount(int b) const {
  uint64_t sum = 0;
  for (const Lane& lane : lanes_) {
    sum += lane.buckets[b].load(std::memory_order_relaxed);
  }
  return sum;
}

void Series::Append(int64_t time_us, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(Point{time_us, FixedFromDouble(value)});
}

std::vector<Series::Point> Series::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

size_t Series::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

namespace {

template <typename Map, typename T>
T* GetOrCreate(std::mutex* mu, Map* map, std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricRegistry::GetCounter(std::string_view name) {
  return GetOrCreate<decltype(counters_), Counter>(&mu_, &counters_, name);
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  return GetOrCreate<decltype(gauges_), Gauge>(&mu_, &gauges_, name);
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate<decltype(histograms_), Histogram>(&mu_, &histograms_,
                                                       name);
}

Series* MetricRegistry::GetSeries(std::string_view name) {
  return GetOrCreate<decltype(series_), Series>(&mu_, &series_, name);
}

void MetricRegistry::ExportProm(std::string* out, bool include_infra) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    if (!include_infra && IsInfra(name)) continue;
    out->append(name);
    out->push_back(' ');
    AppendU64(out, counter->Value());
    out->push_back('\n');
  }
  for (const auto& [name, gauge] : gauges_) {
    if (!include_infra && IsInfra(name)) continue;
    out->append(name);
    out->push_back(' ');
    AppendFixed(out, gauge->Raw());
    out->push_back('\n');
  }
  for (const auto& [name, hist] : histograms_) {
    if (!include_infra && IsInfra(name)) continue;
    out->append(name);
    out->append("_count ");
    AppendU64(out, hist->Count());
    out->push_back('\n');
    out->append(name);
    out->append("_sum ");
    AppendFixed(out, hist->SumRaw());
    out->push_back('\n');
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = hist->BucketCount(b);
      if (n == 0) continue;
      out->append(name);
      out->append("_bucket{pow2=\"");
      AppendI64(out, b - Histogram::kBucketBias);
      out->append("\"} ");
      AppendU64(out, n);
      out->push_back('\n');
    }
  }
  for (const auto& [name, series] : series_) {
    if (!include_infra && IsInfra(name)) continue;
    for (const Series::Point& p : series->Snapshot()) {
      out->append(name);
      out->append("{t_us=\"");
      AppendI64(out, p.time_us);
      out->append("\"} ");
      AppendFixed(out, p.value_fp);
      out->push_back('\n');
    }
  }
}

void MetricRegistry::ExportJson(std::string* out, bool include_infra) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!include_infra && IsInfra(name)) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    out->append(name);
    out->append("\":");
    AppendU64(out, counter->Value());
  }
  out->append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!include_infra && IsInfra(name)) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    out->append(name);
    out->append("\":");
    AppendFixed(out, gauge->Raw());
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!include_infra && IsInfra(name)) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    out->append(name);
    out->append("\":{\"count\":");
    AppendU64(out, hist->Count());
    out->append(",\"sum\":");
    AppendFixed(out, hist->SumRaw());
    out->append(",\"buckets\":{");
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = hist->BucketCount(b);
      if (n == 0) continue;
      if (!first_bucket) out->push_back(',');
      first_bucket = false;
      out->push_back('"');
      AppendI64(out, b - Histogram::kBucketBias);
      out->append("\":");
      AppendU64(out, n);
    }
    out->append("}}");
  }
  out->append("},\"series\":{");
  first = true;
  for (const auto& [name, series] : series_) {
    if (!include_infra && IsInfra(name)) continue;
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    out->append(name);
    out->append("\":[");
    bool first_point = true;
    for (const Series::Point& p : series->Snapshot()) {
      if (!first_point) out->push_back(',');
      first_point = false;
      out->push_back('[');
      AppendI64(out, p.time_us);
      out->push_back(',');
      AppendFixed(out, p.value_fp);
      out->push_back(']');
    }
    out->push_back(']');
  }
  out->append("}}");
}

}  // namespace telemetry
}  // namespace themis
