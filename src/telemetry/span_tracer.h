// Span tracer: timed scopes recorded into per-thread ring buffers and
// exported as Chrome-trace JSON (load in Perfetto / chrome://tracing).
//
// Recording is wait-free after a thread's first span (one mutex-guarded
// ring registration per thread, then plain writes into that thread's own
// ring). Timestamps are wall-clock microseconds since tracer construction
// — spans are a profiling aid and explicitly outside the determinism
// contract; export only runs after worker threads have quiesced
// (PerfRecorder's destructor, end of themis_sim).
#ifndef THEMIS_TELEMETRY_SPAN_TRACER_H_
#define THEMIS_TELEMETRY_SPAN_TRACER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace themis {
namespace telemetry {

/// One completed span. `name` must be a string literal (stored by
/// pointer; never freed before export).
struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
};

/// \brief Per-thread ring-buffer span recorder with Chrome-trace export.
class SpanTracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 16;

  explicit SpanTracer(size_t ring_capacity = kDefaultRingCapacity);

  /// Wall-clock microseconds since construction.
  uint64_t NowMicros() const;

  /// Records one span on the calling thread's ring; once the ring is
  /// full the oldest span is overwritten.
  void Record(const char* name, uint64_t start_us, uint64_t dur_us);

  /// Spans ever recorded across threads (including overwritten ones).
  /// Exact only after writers have quiesced.
  uint64_t recorded() const;
  size_t ring_capacity() const { return capacity_; }

  /// Appends `{"traceEvents":[...],"displayTimeUnit":"ms"}` — one
  /// complete ("ph":"X") event per retained span, tid = ring
  /// registration order. Call only after recording threads quiesced.
  void ExportChromeTrace(std::string* out) const;

 private:
  struct ThreadLog {
    std::vector<SpanEvent> ring;
    size_t next = 0;        ///< overwrite cursor once ring is full
    uint64_t recorded = 0;  ///< total spans this thread ever recorded
    int tid = 0;
  };

  ThreadLog* RegisterThisThread();

  const size_t capacity_;
  const uint64_t id_;  ///< process-unique, guards tls cache reuse
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

}  // namespace telemetry
}  // namespace themis

#endif  // THEMIS_TELEMETRY_SPAN_TRACER_H_
