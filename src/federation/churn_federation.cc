#include "federation/churn_federation.h"

#include <utility>

#include "common/logging.h"

namespace themis {

std::unique_ptr<Fsps> MakeChurnFederation(const ChurnScenario& scenario,
                                          FspsOptions base) {
  return MakeScaleFederation(scenario.base, std::move(base));
}

ChurnRunResult RunChurnScenario(Fsps* fsps, const ChurnScenario& scenario,
                                SimDuration measure) {
  ScaleDeployer deployer(fsps, scenario.base);

  // Two sorted streams — query arrivals and topology events — replayed in
  // timestamp order; events win ties so a query arriving at a crash
  // instant deploys onto the post-crash topology instead of landing on
  // the victim and immediately re-placing. Same-timestamp events batch
  // into one TopologyPlan: the schedule generator emits waves, and a wave
  // is one atomic transition.
  size_t next_query = 0;
  size_t next_event = 0;
  const auto& queries = scenario.base.queries;
  const auto& events = scenario.events;

  while (next_query < queries.size() || next_event < events.size()) {
    bool take_query =
        next_event >= events.size() ||
        (next_query < queries.size() &&
         queries[next_query].arrival < events[next_event].time);
    SimTime at = take_query ? queries[next_query].arrival
                            : events[next_event].time;
    if (at > fsps->now()) fsps->RunFor(at - fsps->now());

    if (take_query) {
      deployer.DeployQuery(queries[next_query]);
      ++next_query;
      continue;
    }
    TopologyPlan plan = fsps->PlanTopology();
    uint64_t crashes = 0;
    uint64_t restores = 0;
    uint64_t link_updates = 0;
    while (next_event < events.size() && events[next_event].time == at) {
      const ChurnEvent& ev = events[next_event];
      ++next_event;
      switch (ev.kind) {
        case ChurnEventKind::kCrash:
          plan.Crash(ev.a);
          ++crashes;
          break;
        case ChurnEventKind::kRestore:
          plan.Restore(ev.a);
          ++restores;
          break;
        case ChurnEventKind::kSetLinkLatency:
          plan.SetLinkLatency(ev.a, ev.b, ev.latency);
          ++link_updates;
          break;
      }
    }
    THEMIS_LOG(Info) << "churn wave t_us=" << at << " crashes=" << crashes
                     << " restores=" << restores
                     << " link_updates=" << link_updates
                     << " plan_ops=" << plan.size();
    THEMIS_CHECK(plan.Apply().ok());
  }
  fsps->RunFor(measure);

  ChurnRunResult result;
  result.scale = CollectScaleResult(fsps);
  const FspsChurnStats& churn = fsps->churn_stats();
  result.crashes = churn.crashes;
  result.restores = churn.restores;
  result.latency_updates = churn.latency_updates;
  result.replaced_fragments = churn.replaced_fragments;
  result.dropped_queries = churn.dropped_queries;
  result.skipped_arrivals = deployer.skipped_arrivals();
  NodeStats stats = fsps->TotalNodeStats();
  result.batches_dropped_dead = stats.batches_dropped_dead;
  result.tuples_dropped_dead = stats.tuples_dropped_dead;
  return result;
}

}  // namespace themis
