#include "federation/churn_federation.h"

#include <utility>

#include "common/logging.h"

namespace themis {

std::unique_ptr<Fsps> MakeChurnFederation(const ChurnScenario& scenario,
                                          FspsOptions base) {
  return MakeScaleFederation(scenario.base, std::move(base));
}

ChurnRunResult RunChurnScenario(Fsps* fsps, const ChurnScenario& scenario,
                                SimDuration measure) {
  ScaleDeployer deployer(fsps, scenario.base);

  // Two sorted streams — query arrivals and topology events — replayed in
  // timestamp order; events win ties so a query arriving at a crash
  // instant deploys onto the post-crash topology instead of landing on
  // the victim and immediately re-placing.
  size_t next_query = 0;
  size_t next_event = 0;
  const auto& queries = scenario.base.queries;
  const auto& events = scenario.events;

  while (next_query < queries.size() || next_event < events.size()) {
    bool take_query =
        next_event >= events.size() ||
        (next_query < queries.size() &&
         queries[next_query].arrival < events[next_event].time);
    SimTime at = take_query ? queries[next_query].arrival
                            : events[next_event].time;
    if (at > fsps->now()) fsps->RunFor(at - fsps->now());

    if (take_query) {
      deployer.DeployQuery(queries[next_query]);
      ++next_query;
      continue;
    }
    const ChurnEvent& ev = events[next_event];
    ++next_event;
    switch (ev.kind) {
      case ChurnEventKind::kCrash:
        THEMIS_CHECK(fsps->CrashNode(ev.a).ok());
        break;
      case ChurnEventKind::kRestore:
        THEMIS_CHECK(fsps->RestoreNode(ev.a).ok());
        break;
      case ChurnEventKind::kSetLinkLatency:
        THEMIS_CHECK(fsps->SetLinkLatency(ev.a, ev.b, ev.latency).ok());
        break;
    }
  }
  fsps->RunFor(measure);

  ChurnRunResult result;
  result.scale = CollectScaleResult(fsps);
  const FspsChurnStats& churn = fsps->churn_stats();
  result.crashes = churn.crashes;
  result.restores = churn.restores;
  result.latency_updates = churn.latency_updates;
  result.replaced_fragments = churn.replaced_fragments;
  result.dropped_queries = churn.dropped_queries;
  result.skipped_arrivals = deployer.skipped_arrivals();
  NodeStats stats = fsps->TotalNodeStats();
  result.batches_dropped_dead = stats.batches_dropped_dead;
  result.tuples_dropped_dead = stats.tuples_dropped_dead;
  return result;
}

}  // namespace themis
