#include "federation/autoscaler.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.h"
#include "telemetry/telemetry.h"

namespace themis {

Autoscaler::Autoscaler(Fsps* fsps, const ScaleScenario& scenario,
                       AutoscalerOptions options)
    : fsps_(fsps),
      options_(options),
      clusters_(scenario.options.clusters),
      lan_latency_(scenario.options.lan_latency),
      stw_(fsps->options().node.stw),
      cluster_of_node_(scenario.cluster_of_node) {
  THEMIS_CHECK(options_.hysteresis_ticks >= 1);
  THEMIS_CHECK(stw_ > 0);
}

double Autoscaler::Utilization(SimTime now) {
  // Offered busy-microseconds over the trailing STW, against the live
  // capacity over the same window (each node contributes stw_ microseconds
  // of processing time; cpu_speed is already folded into OfferedLoadUs).
  std::vector<NodeId> live = fsps_->live_node_ids();
  if (live.empty()) return 0.0;
  double offered = 0.0;
  for (NodeId id : live) offered += fsps_->node(id)->OfferedLoadUs(now);
  return offered /
         (static_cast<double>(live.size()) * static_cast<double>(stw_));
}

int Autoscaler::BusiestCluster(SimTime now) {
  std::vector<double> load(clusters_, 0.0);
  for (NodeId id : fsps_->live_node_ids()) {
    load[cluster_of_node_[id]] += fsps_->node(id)->OfferedLoadUs(now);
  }
  int best = 0;
  for (int c = 1; c < clusters_; ++c) {
    if (load[c] > load[best]) best = c;  // strict >: ties keep the lowest id
  }
  return best;
}

double Autoscaler::ShardSkew(SimTime now) {
  int shards = fsps_->engine()->num_shards();
  if (shards <= 1) return 1.0;
  std::vector<double> load(shards, 0.0);
  for (NodeId id : fsps_->live_node_ids()) {
    load[fsps_->shard_of(id)] += fsps_->node(id)->OfferedLoadUs(now);
  }
  double total = 0.0, max = 0.0;
  for (double l : load) {
    total += l;
    max = std::max(max, l);
  }
  if (total == 0.0) return 0.0;
  return max / (total / static_cast<double>(shards));
}

Status Autoscaler::Tick() {
  SimTime now = fsps_->now();
  stats_.ticks += 1;
  double util = Utilization(now);
  last_utilization_ = util;

  if (util > options_.grow_utilization) {
    ++grow_streak_;
    shrink_streak_ = 0;
  } else if (util < options_.shrink_utilization) {
    ++shrink_streak_;
    grow_streak_ = 0;
  } else {
    grow_streak_ = 0;
    shrink_streak_ = 0;
  }
  // Decision inputs, captured before acting resets the streaks: the audit
  // log must show the values the decision was made on.
  const int grow_streak = grow_streak_;
  const int shrink_streak = shrink_streak_;
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    tel->metrics().GetCounter("autoscaler.ticks")->Add(1);
    tel->metrics().GetGauge("autoscaler.utilization")->Set(util);
  }

  // Stage the whole decision on one plan; bookkeeping (added_ /
  // decommissioned_ / cluster map / stats) commits only if the plan does.
  TopologyPlan plan = fsps_->PlanTopology();
  struct PendingAdd {
    NodeId id;
    int cluster;
  };
  std::vector<PendingAdd> pending_adds;
  std::vector<NodeId> pending_restores;
  std::vector<NodeId> pending_decoms;
  bool acted = false;

  if (grow_streak_ >= options_.hysteresis_ticks) {
    grow_streak_ = 0;
    int cluster = BusiestCluster(now);
    int shards = fsps_->engine()->num_shards();
    size_t restorable = decommissioned_.size();
    for (int i = 0; i < options_.grow_step; ++i) {
      if (pending_restores.size() < restorable) {
        // Re-grow from the decommission pool first: the node object, its
        // links and its shard pinning are all still there.
        pending_restores.push_back(
            decommissioned_[restorable - 1 - pending_restores.size()]);
        plan.Restore(pending_restores.back());
        continue;
      }
      if (options_.max_added_nodes > 0 &&
          static_cast<int>(added_.size() + pending_adds.size()) >=
              options_.max_added_nodes) {
        break;
      }
      // A fresh join lands in the busiest cluster, pinned to that
      // cluster's shard (the cluster-aligned map keeps LAN links
      // shard-local, so the epoch width stays WAN-wide), wired with LAN
      // links to every current member — including joins staged earlier in
      // this same plan.
      int shard = shards > 1 ? static_cast<int>(static_cast<int64_t>(cluster) *
                                                shards / clusters_)
                             : 0;
      NodeId id = plan.AddNode(fsps_->options().node, shard);
      for (size_t n = 0; n < cluster_of_node_.size(); ++n) {
        if (cluster_of_node_[n] == cluster) {
          plan.SetLinkLatency(id, static_cast<NodeId>(n), lan_latency_);
        }
      }
      for (const PendingAdd& prev : pending_adds) {
        if (prev.cluster == cluster) {
          plan.SetLinkLatency(id, prev.id, lan_latency_);
        }
      }
      pending_adds.push_back({id, cluster});
    }
    acted = !pending_adds.empty() || !pending_restores.empty();
  } else if (shrink_streak_ >= options_.hysteresis_ticks) {
    shrink_streak_ = 0;
    // Decommission the least-loaded of the nodes this autoscaler added
    // (the base federation never shrinks); ties break by ascending id.
    std::vector<std::pair<double, NodeId>> candidates;
    for (NodeId id : added_) {
      if (!fsps_->node_alive(id)) continue;
      candidates.push_back({fsps_->node(id)->OfferedLoadUs(now), id});
    }
    std::sort(candidates.begin(), candidates.end());
    int take = std::min<int>(options_.shrink_step,
                             static_cast<int>(candidates.size()));
    for (int i = 0; i < take; ++i) {
      pending_decoms.push_back(candidates[i].second);
      plan.Crash(pending_decoms.back());
    }
    acted = !pending_decoms.empty();
  }

  bool want_rebalance = acted && options_.rebalance_on_action;
  if (!want_rebalance && options_.rebalance_skew > 0.0 &&
      ShardSkew(now) > options_.rebalance_skew) {
    want_rebalance = true;
  }
  bool staged_rebalance = false;
  if (want_rebalance && fsps_->engine()->num_shards() > 1) {
    std::vector<int> groups = cluster_of_node_;
    for (const PendingAdd& a : pending_adds) groups.push_back(a.cluster);
    plan.Rebalance(std::move(groups));
    staged_rebalance = true;
  }

  // Structured decision audit log: one key=value line per tick with the
  // signal, the thresholds and streaks it was judged against, and the
  // committed action. "hold" ticks log at Debug, actions at Info; tests
  // capture these through Logging::SetSink (ScopedLogCapture).
  const char* action = "hold";
  if (!pending_adds.empty() || !pending_restores.empty()) {
    action = "grow";
  } else if (!pending_decoms.empty()) {
    action = "shrink";
  } else if (staged_rebalance) {
    action = "rebalance";
  }
  {
    internal::LogMessage line(
        acted || staged_rebalance ? LogLevel::kInfo : LogLevel::kDebug,
        __FILE__, __LINE__);
    char util_buf[32];
    std::snprintf(util_buf, sizeof(util_buf), "%.4f", util);
    line << "autoscaler decision t_us=" << now << " util=" << util_buf
         << " grow_util=" << options_.grow_utilization
         << " shrink_util=" << options_.shrink_utilization
         << " grow_streak=" << grow_streak
         << " shrink_streak=" << shrink_streak << " action=" << action
         << " adds=" << pending_adds.size()
         << " restores=" << pending_restores.size()
         << " decoms=" << pending_decoms.size()
         << " rebalance=" << (staged_rebalance ? 1 : 0);
  }

  if (plan.size() == 0) return Status::OK();
  THEMIS_RETURN_NOT_OK(plan.Apply());

  // The plan committed: fold the decision into our books.
  if (!pending_restores.empty() || !pending_adds.empty()) {
    stats_.grow_actions += 1;
  }
  for (size_t i = 0; i < pending_restores.size(); ++i) {
    decommissioned_.pop_back();
    stats_.nodes_restored += 1;
  }
  for (const PendingAdd& a : pending_adds) {
    cluster_of_node_.push_back(a.cluster);
    added_.push_back(a.id);
    stats_.nodes_added += 1;
  }
  if (!pending_decoms.empty()) stats_.shrink_actions += 1;
  for (NodeId id : pending_decoms) {
    decommissioned_.push_back(id);
    stats_.nodes_decommissioned += 1;
  }
  if (staged_rebalance) stats_.rebalances_requested += 1;
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    telemetry::MetricRegistry& m = tel->metrics();
    if (!pending_restores.empty() || !pending_adds.empty()) {
      m.GetCounter("autoscaler.grow_actions")->Add(1);
    }
    if (!pending_decoms.empty()) {
      m.GetCounter("autoscaler.shrink_actions")->Add(1);
    }
    m.GetCounter("autoscaler.nodes_added")->Add(pending_adds.size());
    m.GetCounter("autoscaler.nodes_restored")->Add(pending_restores.size());
    m.GetCounter("autoscaler.nodes_decommissioned")
        ->Add(pending_decoms.size());
    if (staged_rebalance) m.GetCounter("autoscaler.rebalances")->Add(1);
  }
  return Status::OK();
}

}  // namespace themis
