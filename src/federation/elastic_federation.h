// Drives the full elastic stack end to end: a churn + burst scenario
// (crash waves, flapping and drifting WAN links, 10x load spikes) with
// diurnal source modulation layered on top, an autoscaler ticking between
// run segments, and every topology mutation — the scenario's schedule and
// the autoscaler's decisions alike — flowing through the TopologyPlan
// control plane. This is the workload bench_elastic_federation measures:
// the federation must track a load curve that swings through both
// autoscaler thresholds per diurnal period while the churn schedule keeps
// knocking nodes out from under it.
//
// Determinism: the run is bit-identical run-to-run at any fixed shard
// count, and byte-identical between the sequential engine and the parallel
// engine at one shard. Unlike the non-elastic benches, different shard
// counts may diverge from each other (re-balances re-forward in-flight
// messages, and the landing epoch's width depends on the shard count); the
// determinism contract's elastic exception is documented at
// Engine::EnableElastic.
#ifndef THEMIS_FEDERATION_ELASTIC_FEDERATION_H_
#define THEMIS_FEDERATION_ELASTIC_FEDERATION_H_

#include <memory>

#include "federation/autoscaler.h"
#include "federation/churn_federation.h"
#include "workload/churn_scenario.h"

namespace themis {

/// Knobs of the composed elastic scenario.
struct ElasticScenarioOptions {
  /// Base churn overlay (crash waves, link flaps/drift) over the scale
  /// federation; `churn.scale.seed` seeds everything.
  ChurnScenarioOptions churn;
  /// Burst overlay (MakeChurnBurstScenario): probability that any given
  /// second runs at `burst_multiplier` times the base rate.
  double burst_prob = 0.10;
  double burst_multiplier = 10.0;
  /// Diurnal source modulation: triangle wave scaling every source's rate
  /// in [1 - amplitude, 1 + amplitude]. The period should span several
  /// autoscaler ticks so the loop can track the swing.
  double diurnal_amplitude = 0.5;
  SimDuration diurnal_period = Seconds(16);
  /// The control loop under test.
  AutoscalerOptions autoscaler;
  /// First autoscaler tick (leave ramp-up for rate estimation).
  SimTime autoscaler_start = Seconds(4);
};

/// \brief A fully materialised elastic scenario (pure data plus the
/// autoscaler configuration; seed-deterministic).
struct ElasticScenario {
  ElasticScenarioOptions options;
  /// Churn scenario with burst + diurnal knobs folded into the scale
  /// options (so every generated source model carries them).
  ChurnScenario churn;
};

/// Builds the composed scenario (deterministic in
/// `options.churn.scale.seed`).
ElasticScenario MakeElasticScenario(const ElasticScenarioOptions& options = {});

/// Aggregate outcome of one elastic run.
struct ElasticRunResult {
  ChurnRunResult churn;        ///< scale result + churn counters
  AutoscalerStats autoscaler;
  uint64_t nodes_added = 0;    ///< Fsps counter: mid-run joins committed
  uint64_t rebalances = 0;     ///< Fsps counter: re-balances committed
  uint64_t migrated_nodes = 0; ///< nodes whose shard changed, summed
  double final_utilization = 0.0;
  int final_live_nodes = 0;
};

/// Builds the Fsps for the scenario: MakeChurnFederation with the elastic
/// control plane on (FspsOptions::elastic) and the forward-looking
/// arrival-cost load signal. `base.shards` selects the engine.
std::unique_ptr<Fsps> MakeElasticFederation(const ElasticScenario& scenario,
                                            FspsOptions base = {});

/// Replays query arrivals, topology events and autoscaler ticks in
/// timestamp order (events before arrivals at a tie, ticks after both: the
/// controller reacts to a state change, never races it), runs `measure`
/// more simulated time past the schedule, and returns the aggregate
/// result. `fsps` must come from MakeElasticFederation for the same
/// scenario and not have run yet.
ElasticRunResult RunElasticScenario(Fsps* fsps, const ElasticScenario& scenario,
                                    SimDuration measure = Seconds(10));

}  // namespace themis

#endif  // THEMIS_FEDERATION_ELASTIC_FEDERATION_H_
