// Drives a churn scenario (workload/churn_scenario.h) on an Fsps: the
// scale scenario's staggered query arrivals interleaved with the
// seed-derived topology schedule — crash waves, restores, link flaps and
// drift — all replayed through the TopologyPlan control plane
// (Fsps::PlanTopology, one plan per wave) between run segments, the only
// legal place for control-plane mutation on a sharded engine. The result is
// deterministic: bit-identical run-to-run at any shard count, and
// byte-identical between the sequential engine and the parallel engine at
// one shard — bench_churn_federation checks the latter in-process and CI
// byte-diffs the former.
#ifndef THEMIS_FEDERATION_CHURN_FEDERATION_H_
#define THEMIS_FEDERATION_CHURN_FEDERATION_H_

#include <memory>

#include "federation/scale_federation.h"
#include "workload/churn_scenario.h"

namespace themis {

/// Deterministic aggregate outcome of one churn run: the scale result plus
/// the dynamic-topology counters.
struct ChurnRunResult {
  ScaleRunResult scale;
  uint64_t crashes = 0;
  uint64_t restores = 0;
  uint64_t latency_updates = 0;
  uint64_t replaced_fragments = 0;
  uint64_t dropped_queries = 0;    ///< force-undeployed at crash time
  uint64_t skipped_arrivals = 0;   ///< arrivals with no live host
  uint64_t batches_dropped_dead = 0;
  uint64_t tuples_dropped_dead = 0;
};

/// Builds the Fsps for the scenario's base federation (cluster-aligned
/// shard pinning, LAN/WAN latencies, derived cpu speeds); `base.shards`
/// selects the engine.
std::unique_ptr<Fsps> MakeChurnFederation(const ChurnScenario& scenario,
                                          FspsOptions base = {});

/// Replays arrivals and topology events in timestamp order, runs `measure`
/// more simulated time past the last of either, and returns the aggregate
/// result. `fsps` must come from MakeChurnFederation for the same scenario
/// and not have run yet.
ChurnRunResult RunChurnScenario(Fsps* fsps, const ChurnScenario& scenario,
                                SimDuration measure = Seconds(10));

}  // namespace themis

#endif  // THEMIS_FEDERATION_CHURN_FEDERATION_H_
