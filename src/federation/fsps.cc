#include "federation/fsps.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "parsim/parallel_engine.h"
#include "telemetry/telemetry.h"
#include "shedding/baseline_shedders.h"
#include "shedding/random_shedder.h"

namespace themis {

namespace {

std::unique_ptr<Engine> MakeEngine(int shards, bool force_parsim) {
  if (shards <= 1 && !force_parsim) {
    return std::make_unique<SequentialEngine>();
  }
  return std::make_unique<ParallelEngine>(std::max(shards, 1));
}

// The jitter stream is derived from the run seed so two Fsps instances with
// different seeds do not share a stream. XORing with (42 ^ 7) maps the
// default seed 42 to the historical hardcoded jitter seed 7, keeping every
// seed-42 figure output byte-identical.
uint64_t DeriveJitterSeed(uint64_t seed) {
  return seed ^ (42ULL ^ Network::kDefaultJitterSeed);
}

}  // namespace

std::string SheddingPolicyName(SheddingPolicy policy) {
  switch (policy) {
    case SheddingPolicy::kBalanceSic:
      return "balance-sic";
    case SheddingPolicy::kRandom:
      return "random";
    case SheddingPolicy::kDropNewest:
      return "drop-newest";
    case SheddingPolicy::kDropOldest:
      return "drop-oldest";
    case SheddingPolicy::kProportional:
      return "proportional";
  }
  return "?";
}

Fsps::Fsps(FspsOptions options)
    : options_(options),
      rng_(options.seed),
      engine_(MakeEngine(options.shards, options.force_parsim_engine)),
      network_(engine_->queue(0), options.default_link_latency,
               DeriveJitterSeed(options.seed)),
      recovery_(options.recovery) {
  if (options_.elastic) {
    // Elastic runs wrap every sharded delivery in the re-forwarding
    // trampoline and relax the engine's lookahead invariant for stale
    // re-forwards; both are opt-in because the wrapper costs an allocation
    // per message. No-ops on a single-shard run.
    engine_->EnableElastic();
    network_.EnableElastic();
  }
}

Fsps::~Fsps() = default;

NodeId Fsps::AddNode() {
  Result<NodeId> id = AddNode(options_.node, kAutoShard);
  THEMIS_CHECK(id.ok());
  return *id;
}

NodeId Fsps::AddNode(NodeOptions node_options) {
  Result<NodeId> id = AddNode(node_options, kAutoShard);
  THEMIS_CHECK(id.ok());
  return *id;
}

Result<NodeId> Fsps::AddNode(NodeOptions node_options, int shard) {
  int shards = engine_->num_shards();
  if (shard != kAutoShard && (shard < 0 || shard >= shards)) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " out of range [0, " +
                                   std::to_string(shards) + ")");
  }
  if (started_ && shards > 1 && !options_.elastic) {
    return Status::FailedPrecondition(
        "adding a node to a started sharded engine requires "
        "FspsOptions::elastic (the non-elastic shard plan freezes the node "
        "set at Start)");
  }
  return AddNodeNow(node_options, shard);
}

NodeId Fsps::AddNodeNow(NodeOptions node_options, int shard) {
  // The offered-load tracker only runs when something reads it — the
  // arrival-cost placement signal or the elastic control plane (its
  // autoscaler and re-balancer weigh nodes by OfferedLoadUs). Keeping it
  // off otherwise preserves the historical data-plane allocation counts.
  if (options_.load_signal == LoadSignalKind::kArrivalCost ||
      options_.elastic) {
    node_options.track_arrivals = true;
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  int shards = engine_->num_shards();
  int s = shard == kAutoShard ? id % shards : shard;
  shard_of_node_.push_back(s);
  nodes_.push_back(std::make_unique<Node>(id, node_options, engine_->queue(s),
                                          this, MakeShedder()));
  if (options_.checkpoint.enabled) {
    nodes_.back()->ConfigureCheckpoints(options_.checkpoint);
  }
  if (started_) {
    // Mid-run join. Pre-Start nodes get their source link and Start() call
    // from Fsps::Start; a joiner does both here, at the control-plane
    // boundary. On a sharded engine the link edit is queued (the matrix is
    // frozen mid-run) and lands at the next RunFor boundary — before any
    // source can target the node, since deployment is also boundary-only —
    // and the shard map grows in place so deliveries route to the new
    // node's shard immediately.
    if (shards > 1) {
      network_.QueueSetLatency(kInvalidId, id, options_.source_link_latency);
      network_.UpdateShardMap(shard_of_node_);
      topology_dirty_ = true;  // links to the joiner constrain the epoch
    } else {
      Status st =
          network_.SetLatency(kInvalidId, id, options_.source_link_latency);
      THEMIS_CHECK(st.ok());
    }
    nodes_.back()->Start();
    churn_stats_.nodes_added += 1;
  }
  return id;
}

std::unique_ptr<Shedder> Fsps::MakeShedder() {
  switch (options_.policy) {
    case SheddingPolicy::kBalanceSic:
      return std::make_unique<BalanceSicShedder>(rng_.Fork(), options_.balance);
    case SheddingPolicy::kRandom:
      return std::make_unique<RandomShedder>(rng_.Fork());
    case SheddingPolicy::kDropNewest:
      return std::make_unique<DropNewestShedder>();
    case SheddingPolicy::kDropOldest:
      return std::make_unique<DropOldestShedder>();
    case SheddingPolicy::kProportional:
      return std::make_unique<ProportionalShedder>();
  }
  return nullptr;
}

Node* Fsps::node(NodeId id) {
  if (id < 0 || static_cast<size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[id].get();
}

std::vector<NodeId> Fsps::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    ids.push_back(static_cast<NodeId>(i));
  }
  return ids;
}

std::vector<NodeId> Fsps::live_node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->alive()) ids.push_back(static_cast<NodeId>(i));
  }
  return ids;
}

bool Fsps::node_alive(NodeId id) const {
  return id >= 0 && static_cast<size_t>(id) < nodes_.size() &&
         nodes_[id]->alive();
}

Status Fsps::Deploy(std::unique_ptr<QueryGraph> graph,
                    const std::map<FragmentId, NodeId>& placement) {
  if (!graph) return Status::InvalidArgument("null query graph");
  QueryId q = graph->id();
  if (graphs_.count(q) > 0) {
    return Status::AlreadyExists("query " + std::to_string(q) +
                                 " already deployed");
  }
  for (FragmentId frag : graph->fragment_ids()) {
    auto it = placement.find(frag);
    if (it == placement.end()) {
      return Status::InvalidArgument("fragment " + std::to_string(frag) +
                                     " of query " + std::to_string(q) +
                                     " has no placement");
    }
    if (node(it->second) == nullptr) {
      return Status::InvalidArgument("fragment placed on unknown node " +
                                     std::to_string(it->second));
    }
    if (!node(it->second)->alive()) {
      return Status::InvalidArgument("fragment placed on crashed node " +
                                     std::to_string(it->second));
    }
  }

  // The coordinator is co-located with the root fragment's node: it runs on
  // that node's shard queue, and result delivery (a direct call from the
  // root operator's host) therefore stays shard-local.
  NodeId home = placement.at(graph->root_fragment());
  QueryCoordinator::Options copts = options_.coordinator;
  auto coordinator = std::make_unique<QueryCoordinator>(
      graph.get(), copts, engine_->queue(shard_of_node_[home]), &network_);
  coordinator->SetHome(home);

  for (FragmentId frag : graph->fragment_ids()) {
    NodeId nid = placement.at(frag);
    nodes_[nid]->HostFragment(graph.get(), frag);
    coordinator->AddHost(nid, nodes_[nid].get());
  }

  placements_[q] = placement;
  coordinators_[q] = std::move(coordinator);
  graphs_[q] = std::move(graph);
  if (started_) coordinators_[q]->Start();
  return Status::OK();
}

Status Fsps::AttachSources(QueryId q,
                           const std::map<SourceId, SourceModel>& models,
                           const SourceModel& fallback) {
  auto git = graphs_.find(q);
  if (git == graphs_.end()) {
    return Status::NotFound("query " + std::to_string(q) + " not deployed");
  }
  const QueryGraph* graph = git->second.get();
  const auto& placement = placements_.at(q);

  for (const SourceBinding& sb : graph->sources()) {
    SourceModel model = fallback;
    if (auto it = models.find(sb.source); it != models.end()) {
      model = it->second;
    }
    if (options_.columnar) model.columnar = true;

    NodeId dest = placement.at(graph->fragment_of(sb.target));
    Node* dest_node = nodes_[dest].get();
    // Delivery resolves the receiver's placement per batch, so generated
    // traffic follows the fragment when a crash re-places it.
    auto deliver = [this, q, target = sb.target](Batch b) {
      RouteSourceBatch(q, target, std::move(b));
    };
    // The driver is pinned to its *initial* destination node's shard: it
    // draws from that node's batch pool at generation time, and its
    // deliveries stay shard-local (Network::Send maps kInvalidId senders
    // to the destination's shard, and crash re-placement never moves a
    // fragment across shards).
    sources_.push_back(std::make_unique<SourceDriver>(
        sb.source, q, sb.target, sb.port, model,
        engine_->queue(shard_of_node_[dest]), rng_.Fork(), std::move(deliver),
        dest_node->batch_pool()));
    if (started_) sources_.back()->Start();
  }
  return Status::OK();
}

void Fsps::RouteSourceBatch(QueryId q, OperatorId target, Batch batch) {
  auto git = graphs_.find(q);
  if (git == graphs_.end()) return;
  // kInvalidId sender: Network::Send routes on the destination's shard,
  // which is the source driver's own (drivers are destination-pinned).
  RouteBatch(kInvalidId, q, git->second->fragment_of(target),
             std::move(batch));
}

Status Fsps::Undeploy(QueryId q) {
  auto git = graphs_.find(q);
  if (git == graphs_.end()) {
    return Status::NotFound("query " + std::to_string(q) + " not deployed");
  }
  for (auto& src : sources_) {
    if (src->query_id() == q) src->Stop();
  }
  for (const auto& [frag, node_id] : placements_.at(q)) {
    // The graph below is retired, not destroyed — without this, every
    // undeployed query's window panes and batch buffers would stay resident
    // for the rest of the run. Hand them back to the hosting node's pool
    // before the fragment is unhosted.
    for (OperatorId oid : git->second->fragment_ops(frag)) {
      git->second->op(oid)->ReleaseState(nodes_[node_id]->batch_pool());
    }
    nodes_[node_id]->UnhostQuery(q);
  }
  // Checkpoint images of a departed query are dead weight; drop them.
  for (auto& n : nodes_) n->checkpoint_store()->EraseQuery(q);
  auto cit = coordinators_.find(q);
  if (cit != coordinators_.end()) {
    cit->second->Stop();
    retired_coordinators_.push_back(std::move(cit->second));
    coordinators_.erase(cit);
  }
  retired_graphs_.push_back(std::move(git->second));
  graphs_.erase(git);
  placements_.erase(q);
  return Status::OK();
}

void Fsps::Start() {
  if (started_) return;
  started_ = true;
  // Source links may differ from inter-node links (Table 2 has dedicated
  // source nodes); model that with the pseudo source node kInvalidId.
  for (const auto& n : nodes_) {
    Status st = network_.SetLatency(kInvalidId, n->id(),
                                    options_.source_link_latency);
    THEMIS_CHECK(st.ok());  // the shard plan is installed below, never before
  }
  if (engine_->num_shards() > 1) {
    // Freeze the shard plan and derive the conservative epoch width: the
    // minimum latency of any link whose endpoints live on different shards
    // (sources and coordinators are pinned, so node-node links are the only
    // cross-shard edges). Direct topology edits are rejected from here on;
    // dynamic runs queue them for the next RunFor boundary, where
    // ApplyTopologyMutations re-derives the epoch width.
    ShardPlan plan;
    plan.shard_of_node = shard_of_node_;
    for (int s = 0; s < engine_->num_shards(); ++s) {
      plan.queues.push_back(engine_->queue(s));
    }
    plan.sink = engine_->sink();
    network_.InstallShardPlan(std::move(plan));
    SimDuration lookahead =
        network_.MinCrossShardLatency(shard_of_node_, AliveMask());
    // A zero-latency cross-shard link admits no conservative parallel
    // schedule; keep such nodes on one shard instead.
    THEMIS_CHECK(lookahead != 0);
    engine_->SetLookahead(lookahead);
  }
  for (const auto& n : nodes_) n->Start();
  for (auto& [q, coord] : coordinators_) coord->Start();
  for (auto& src : sources_) src->Start();
}

std::vector<char> Fsps::AliveMask() const {
  std::vector<char> alive(nodes_.size(), 1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    alive[i] = nodes_[i]->alive() ? 1 : 0;
  }
  return alive;
}

void Fsps::ApplyTopologyMutations() {
  size_t applied = network_.ApplyQueuedMutations();
  if (applied > 0 && options_.recovery.enabled) {
    // Link edits land here, at the run boundary — this is where the
    // latency change starts perturbing traffic, so this is the instant the
    // recovery tracker should baseline against.
    MarkRecoveryDisturbance(DisturbanceKind::kLinkChange);
  }
  if (applied == 0 && !topology_dirty_) return;
  topology_dirty_ = false;
  if (engine_->num_shards() > 1) {
    // Every shard clock is synchronized here (between RunUntil calls) and
    // the cross-shard inboxes are drained, so widening or narrowing the
    // epoch cannot reorder or miss a delivery. Links touching crashed
    // nodes carry no future traffic (placements and dissemination hosts
    // were updated when the crash landed) and are excluded, so a dead
    // node's links never narrow the epoch.
    SimDuration lookahead =
        network_.MinCrossShardLatency(shard_of_node_, AliveMask());
    // Unreachable through the Status-validated APIs (SetLinkLatency
    // rejects non-positive latencies on a sharded engine); kept as the
    // last-resort guard for direct Network access.
    THEMIS_CHECK(lookahead != 0);
    engine_->SetLookahead(lookahead);
  }
}

void Fsps::RunFor(SimDuration d) {
  telemetry::TraceScope span("fsps.run_for");
  Start();
  ApplyTopologyMutations();
  SimTime end = engine_->now() + d;
  if (!options_.recovery.enabled) {
    engine_->RunUntil(end);
    return;
  }
  // Split the run at the sampling cadence: every shard clock is
  // synchronized at each RunUntil return, so reading the coordinators there
  // is race-free and deterministic at any shard count. The grid stays
  // regular across RunFor segmentation (a segment ending between samples
  // leaves next_sample_due_ untouched), and disturbance-time samples from
  // the control plane are off-grid extras the tracker de-duplicates.
  while (true) {
    if (next_sample_due_ <= engine_->now()) {
      SampleRecovery();
      next_sample_due_ = engine_->now() + options_.recovery.sample_interval;
    }
    if (engine_->now() >= end) break;
    engine_->RunUntil(std::min(end, next_sample_due_));
  }
}

void Fsps::SampleRecovery() {
  std::vector<std::pair<QueryId, double>> sics;
  sics.reserve(coordinators_.size());
  for (auto& [q, coord] : coordinators_) {
    sics.emplace_back(q, coord->CurrentSic());
  }
  uint64_t before = recovery_.jain_series().pushed();
  recovery_.Sample(engine_->now(), sics);
  if (recovery_.jain_series().pushed() != before) {
    // Mirror the accepted Jain sample into the telemetry snapshot path
    // (the tracker de-duplicates repeated instants, so gate on `pushed`).
    if (telemetry::Telemetry* tel = telemetry::Get()) {
      tel->metrics()
          .GetSeries("recovery.jain")
          ->Append(static_cast<int64_t>(engine_->now()),
                   recovery_.jain_series().back().value);
    }
  }
}

void Fsps::MarkRecoveryDisturbance(DisturbanceKind kind) {
  // Sample first so every deployed query has a pre-fault baseline at the
  // disturbance instant itself (the tracker ignores the duplicate when a
  // cadence sample already landed here).
  SampleRecovery();
  recovery_.MarkDisturbance(engine_->now(), kind);
}

Status Fsps::CrashNode(NodeId id) {
  return PlanTopology().Crash(id).Apply();
}

Status Fsps::RestoreNode(NodeId id) {
  return PlanTopology().Restore(id).Apply();
}

Status Fsps::SetLinkLatency(NodeId a, NodeId b, SimDuration latency) {
  return PlanTopology().SetLinkLatency(a, b, latency).Apply();
}

Status Fsps::ValidatePlanOp(const TopologyPlan::Op& op,
                            std::vector<char>* scratch_alive) const {
  // `scratch_alive` carries the liveness/existence state the plan's earlier
  // ops promise: one entry per existing or staged node, 1 = alive. It is
  // the only state the validator mutates.
  std::vector<char>& alive = *scratch_alive;
  auto known = [&alive](NodeId x) {
    return x >= 0 && static_cast<size_t>(x) < alive.size();
  };
  switch (op.kind) {
    case TopologyPlan::OpKind::kCrash:
      if (!known(op.a)) {
        return Status::NotFound("unknown node " + std::to_string(op.a));
      }
      if (!alive[op.a]) {
        return Status::FailedPrecondition("node " + std::to_string(op.a) +
                                          " is already crashed");
      }
      alive[op.a] = 0;
      return Status::OK();
    case TopologyPlan::OpKind::kRestore:
      if (!known(op.a)) {
        return Status::NotFound("unknown node " + std::to_string(op.a));
      }
      if (alive[op.a]) {
        return Status::FailedPrecondition("node " + std::to_string(op.a) +
                                          " is not crashed");
      }
      alive[op.a] = 1;
      return Status::OK();
    case TopologyPlan::OpKind::kSetLink: {
      if (op.a == op.b) {
        return Status::InvalidArgument("self-links have fixed zero latency");
      }
      if ((op.a != kInvalidId && !known(op.a)) ||
          (op.b != kInvalidId && !known(op.b))) {
        return Status::InvalidArgument("unknown node in link (" +
                                       std::to_string(op.a) + ", " +
                                       std::to_string(op.b) + ")");
      }
      if (op.latency < 0) {
        return Status::InvalidArgument("negative link latency");
      }
      if (engine_->num_shards() > 1 && op.latency == 0) {
        return Status::InvalidArgument(
            "zero-latency links admit no conservative parallel schedule on a "
            "sharded engine");
      }
      return Status::OK();
    }
    case TopologyPlan::OpKind::kAddNode: {
      int shards = engine_->num_shards();
      if (op.shard != kAutoShard && (op.shard < 0 || op.shard >= shards)) {
        return Status::InvalidArgument("shard " + std::to_string(op.shard) +
                                       " out of range [0, " +
                                       std::to_string(shards) + ")");
      }
      if (started_ && shards > 1 && !options_.elastic) {
        return Status::FailedPrecondition(
            "adding a node to a started sharded engine requires "
            "FspsOptions::elastic (the non-elastic shard plan freezes the "
            "node set at Start)");
      }
      alive.push_back(1);
      return Status::OK();
    }
    case TopologyPlan::OpKind::kRebalance:
      if (engine_->num_shards() <= 1) return Status::OK();  // no-op
      if (!options_.elastic) {
        return Status::FailedPrecondition(
            "re-balancing a sharded engine requires FspsOptions::elastic");
      }
      if (!started_) {
        return Status::FailedPrecondition(
            "re-balance before Start(): assign shards at AddNode instead");
      }
      if (!op.group_of_node.empty() &&
          op.group_of_node.size() != alive.size()) {
        return Status::InvalidArgument(
            "group map covers " + std::to_string(op.group_of_node.size()) +
            " nodes, federation has " + std::to_string(alive.size()));
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown plan op");
}

Status Fsps::ApplyPlan(const TopologyPlan& plan) {
  telemetry::TraceScope span("plan.apply");
  telemetry::Telemetry* tel = telemetry::Get();
  // Phase 1: validate every op against scratch state, so a bad op halfway
  // through the batch fails the plan before anything mutates.
  {
    telemetry::TraceScope validate_span("plan.validate");
    std::vector<char> scratch_alive = AliveMask();
    for (const TopologyPlan::Op& op : plan.ops_) {
      Status s = ValidatePlanOp(op, &scratch_alive);
      if (!s.ok()) {
        if (tel != nullptr) tel->metrics().GetCounter("plan.rejected")->Add(1);
        return s;
      }
    }
  }
  // Phase 2: commit in order. The only Status left is Rebalance's
  // commit-time epoch-width check (see topology_plan.h).
  telemetry::TraceScope commit_span("plan.commit");
  for (const TopologyPlan::Op& op : plan.ops_) {
    switch (op.kind) {
      case TopologyPlan::OpKind::kCrash:
        if (tel != nullptr) tel->metrics().GetCounter("plan.ops.crash")->Add(1);
        CrashNodeNow(op.a);
        break;
      case TopologyPlan::OpKind::kRestore:
        if (tel != nullptr) {
          tel->metrics().GetCounter("plan.ops.restore")->Add(1);
        }
        RestoreNodeNow(op.a);
        break;
      case TopologyPlan::OpKind::kSetLink:
        if (tel != nullptr) {
          tel->metrics().GetCounter("plan.ops.set_link")->Add(1);
        }
        SetLinkLatencyNow(op.a, op.b, op.latency);
        break;
      case TopologyPlan::OpKind::kAddNode:
        if (tel != nullptr) {
          tel->metrics().GetCounter("plan.ops.add_node")->Add(1);
        }
        AddNodeNow(op.node_options, op.shard);
        break;
      case TopologyPlan::OpKind::kRebalance:
        if (tel != nullptr) {
          tel->metrics().GetCounter("plan.ops.rebalance")->Add(1);
        }
        THEMIS_RETURN_NOT_OK(RebalanceNow(op.group_of_node));
        break;
    }
  }
  if (tel != nullptr) tel->metrics().GetCounter("plan.applied")->Add(1);
  return Status::OK();
}

void Fsps::CrashNodeNow(NodeId id) {
  Node* n = node(id);
  if (options_.recovery.enabled) {
    // Baseline the dip before the crash mutates anything: a wave of
    // CrashNode calls at one instant coalesces into one disturbance.
    MarkRecoveryDisturbance(DisturbanceKind::kCrashWave);
  }
  n->Crash();
  churn_stats_.crashes += 1;
  topology_dirty_ = true;
  // Re-place the orphaned fragments query by query, in ascending query-id
  // order (placements_ is an ordered map) for determinism. Collect first:
  // ReplaceOrphans mutates placements_ (force-undeploy erases entries).
  std::vector<QueryId> affected;
  for (const auto& [q, placement] : placements_) {
    for (const auto& [frag, nid] : placement) {
      if (nid == id) {
        affected.push_back(q);
        break;
      }
    }
  }
  for (QueryId q : affected) ReplaceOrphans(q, id);
}

void Fsps::RestoreNodeNow(NodeId id) {
  if (options_.recovery.enabled) {
    MarkRecoveryDisturbance(DisturbanceKind::kRestore);
  }
  nodes_[id]->Restore();
  churn_stats_.restores += 1;
  // Links to the rejoined node constrain the epoch again.
  topology_dirty_ = true;
}

void Fsps::SetLinkLatencyNow(NodeId a, NodeId b, SimDuration latency) {
  network_.QueueSetLatency(a, b, latency);
  churn_stats_.latency_updates += 1;
  topology_dirty_ = true;
}

Status Fsps::RebalanceNow(const std::vector<int>& group_of_node) {
  const int shards = engine_->num_shards();
  if (shards <= 1) {
    // Trivially balanced — but still counted, so a sequential run and a
    // parsim@1 run of the same elastic scenario report identical stats.
    churn_stats_.rebalances += 1;
    return Status::OK();
  }
  const size_t n = nodes_.size();
  std::vector<int> groups(group_of_node);
  if (groups.empty()) {
    groups.resize(n);
    for (size_t i = 0; i < n; ++i) groups[i] = static_cast<int>(i);
  }

  // Group loads under the configured signal; crashed nodes carry none.
  // Ordered maps keep the walk deterministic in group id.
  SimTime now = engine_->now();
  std::map<int, double> load;
  std::map<int, std::vector<NodeId>> members;
  for (size_t i = 0; i < n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    members[groups[i]].push_back(id);
    load[groups[i]] += nodes_[i]->alive() ? NodeLoadSignal(id, now) : 0.0;
  }

  // Nothing to balance yet (e.g. a control tick before the first arrival):
  // keep the current map rather than letting the zero-load LPT collapse
  // every group onto shard 0.
  double total_load = 0.0;
  for (const auto& [g, l] : load) total_load += l;
  if (total_load == 0.0) {
    churn_stats_.rebalances += 1;
    return Status::OK();
  }

  // LPT greedy: heaviest group first onto the least-loaded shard. Ties —
  // equal group loads, equal shard loads — break by ascending id, so the
  // packing is a pure function of the load vector.
  std::vector<std::pair<double, int>> order;
  order.reserve(load.size());
  for (const auto& [g, l] : load) order.push_back({l, g});
  std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<double> shard_load(shards, 0.0);
  std::vector<int> new_map = shard_of_node_;
  for (const auto& [l, g] : order) {
    int best = 0;
    for (int s = 1; s < shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_load[best] += l;
    for (NodeId id : members[g]) new_map[id] = best;
  }

  if (new_map == shard_of_node_) {
    churn_stats_.rebalances += 1;
    return Status::OK();
  }
  // Commit-time feasibility: the re-derived epoch width must stay positive
  // (a zero-latency pair split across shards admits no conservative
  // schedule). Checked before anything migrates — a refusal leaves the
  // federation exactly as it was.
  SimDuration lookahead = network_.MinCrossShardLatency(new_map, AliveMask());
  if (lookahead == 0) {
    return Status::InvalidArgument(
        "re-balance would place a zero-latency link across shards");
  }
  if (lookahead < 0) {
    // Every live node on one shard: no cross-shard link bounds the epoch.
    // A one-group map on a multi-shard engine gets here; refuse rather
    // than hand the engine an unbounded epoch.
    return Status::InvalidArgument(
        "re-balance would leave no cross-shard links (single group?)");
  }
  if (options_.recovery.enabled) {
    MarkRecoveryDisturbance(DisturbanceKind::kRebalance);
  }

  // Migration, in entity order (see Engine::EnableElastic for the
  // protocol): nodes re-point their timer chains, the network's map swaps
  // in place (jitter lanes stay with their shards), coordinators follow
  // their home node, and source drivers follow their destination host so
  // generated traffic stays shard-local.
  uint64_t migrated = 0;
  for (size_t i = 0; i < n; ++i) {
    if (new_map[i] == shard_of_node_[i]) continue;
    nodes_[i]->MigrateQueue(engine_->queue(new_map[i]));
    ++migrated;
  }
  shard_of_node_ = new_map;
  network_.UpdateShardMap(shard_of_node_);
  for (auto& [q, coord] : coordinators_) {
    coord->MigrateQueue(engine_->queue(shard_of_node_[coord->home()]));
  }
  for (auto& src : sources_) {
    if (src->stopped()) continue;
    auto git = graphs_.find(src->query_id());
    if (git == graphs_.end()) continue;
    NodeId dest = placements_.at(src->query_id())
                      .at(git->second->fragment_of(src->target_op()));
    src->Rehome(engine_->queue(shard_of_node_[dest]),
                nodes_[dest]->batch_pool());
  }
  topology_dirty_ = true;  // the epoch width re-derives at the next RunFor
  churn_stats_.rebalances += 1;
  churn_stats_.migrated_nodes += migrated;
  if (telemetry::Telemetry* tel = telemetry::Get()) {
    tel->metrics().GetCounter("plan.migrated_nodes")->Add(migrated);
  }
  return Status::OK();
}

void Fsps::ReplaceOrphans(QueryId q, NodeId crashed) {
  auto& placement = placements_.at(q);
  const QueryGraph* graph = graphs_.at(q).get();
  QueryCoordinator* coord = coordinators_.at(q).get();

  // Candidates: live nodes — restricted to the crashed node's simulation
  // shard when sharded, because the query's source drivers and coordinator
  // run on that shard's queue and entities never migrate across shards.
  const bool sharded = engine_->num_shards() > 1;
  const int shard = shard_of(crashed);
  std::vector<NodeId> candidates;
  for (const auto& n : nodes_) {
    if (!n->alive()) continue;
    if (sharded && shard_of(n->id()) != shard) continue;
    candidates.push_back(n->id());
  }
  if (candidates.empty()) {
    // Nowhere to run: the query departs (the paper's FSPS admits arrivals
    // and departures at any time; a cluster-wide failure forces one).
    THEMIS_CHECK(Undeploy(q).ok());
    churn_stats_.dropped_queries += 1;
    return;
  }

  // Nodes already hosting surviving fragments of this query: the
  // distinct-node guarantee is re-established against the live set, and
  // co-location is a last resort when every candidate already hosts one.
  std::set<NodeId> occupied;
  for (const auto& [frag, nid] : placement) {
    if (nid != crashed) occupied.insert(nid);
  }

  // kSicAware: rank the candidates by their live overload signal plus the
  // load already projected onto them at this control-plane instant
  // (candidates are in ascending id order, giving the chooser its
  // deterministic tie-break). Each placed orphan then projects its own
  // carried mass — the crashed node's accepted SIC for this query, split
  // over its orphans — onto its new host, so a whole wave of crashes
  // spreads by expected load instead of herding onto the instant's
  // least-loaded node.
  std::vector<ReplacementCandidate> loads;
  double orphan_mass = 0.0;
  if (options_.replacement == ReplacementPolicy::kSicAware) {
    SimTime now = engine_->now();
    if (inflight_load_at_ != now) {
      inflight_load_at_ = now;
      inflight_load_.clear();
    }
    loads.reserve(candidates.size());
    for (NodeId c : candidates) {
      double inflight = 0.0;
      if (auto it = inflight_load_.find(c); it != inflight_load_.end()) {
        inflight = it->second;
      }
      loads.push_back({c, NodeLoadSignal(c, now) + inflight});
    }
    size_t orphans = 0;
    for (const auto& [frag, nid] : placement) {
      if (nid == crashed) ++orphans;
    }
    if (orphans > 0) {
      // The projected mass must be in the same unit as the ranking signal.
      double carried =
          options_.load_signal == LoadSignalKind::kArrivalCost
              ? nodes_[crashed]->OfferedLoadUs(q, now)
              : nodes_[crashed]->AcceptedSic(q, now);
      orphan_mass = carried / static_cast<double>(orphans);
    }
  }

  for (auto& [frag, nid] : placement) {
    if (nid != crashed) continue;
    NodeId target = kInvalidId;
    if (options_.replacement == ReplacementPolicy::kSicAware) {
      target = ChooseLeastLoaded(loads, occupied);
      inflight_load_[target] += orphan_mass;
      for (ReplacementCandidate& c : loads) {
        if (c.id == target) {
          c.load += orphan_mass;
          break;
        }
      }
    } else {
      for (size_t step = 0; step < candidates.size(); ++step) {
        NodeId c =
            candidates[(replacement_cursor_ + step) % candidates.size()];
        if (occupied.count(c) == 0) {
          target = c;
          replacement_cursor_ =
              (replacement_cursor_ + step + 1) % candidates.size();
          break;
        }
      }
      if (target == kInvalidId) {
        target = candidates[replacement_cursor_ % candidates.size()];
        replacement_cursor_ = (replacement_cursor_ + 1) % candidates.size();
      }
    }
    nid = target;
    occupied.insert(target);
    // Crash-time state semantics. Operator state (windows, panes) lives in
    // the shared QueryGraph, so hosting the fragment elsewhere would
    // silently resume it with the crashed node's live state — a simulation
    // artifact no real runtime has. kLegacyShared keeps that inheritance
    // byte-for-byte; kReset deliberately clears the fragment's operators;
    // kCheckpoint restores each from its last image in the crashed node's
    // store (which models a durable backup and survives the crash), then
    // moves the image to the new host so a second crash there restores the
    // right state.
    switch (options_.crash_state) {
      case CrashStateMode::kLegacyShared:
        break;
      case CrashStateMode::kReset:
        for (OperatorId oid : graph->fragment_ops(frag)) {
          graph->op(oid)->ResetState();
        }
        break;
      case CrashStateMode::kCheckpoint: {
        CheckpointStore* src = nodes_[crashed]->checkpoint_store();
        CheckpointStore* dst = nodes_[target]->checkpoint_store();
        for (OperatorId oid : graph->fragment_ops(frag)) {
          RestoreOrResetOperator(graph->op(oid), q, src);
          src->MoveEntry(q, oid, dst);
        }
        break;
      }
    }
    nodes_[target]->HostFragment(graph, frag);
    coord->AddHost(target, nodes_[target].get());
    churn_stats_.replaced_fragments += 1;
  }

  nodes_[crashed]->UnhostQuery(q);
  coord->RemoveHost(crashed);
  if (coord->home() == crashed) {
    // The root fragment moved with the rest; dissemination latencies now
    // originate from its new host (same shard, so the coordinator's event
    // queue stays valid).
    coord->SetHome(placement.at(graph->root_fragment()));
  }
}

double Fsps::NodeLoadSignal(NodeId id, SimTime now) {
  Node* n = nodes_[id].get();
  if (options_.load_signal == LoadSignalKind::kArrivalCost) {
    return n->OfferedLoadUs(now);
  }
  double accepted = 0.0;
  for (QueryId q : n->HostedQueries()) {
    accepted += n->AcceptedSic(q, now);
  }
  return accepted;
}

std::vector<QueryId> Fsps::query_ids() const {
  std::vector<QueryId> ids;
  ids.reserve(graphs_.size());
  for (const auto& [q, graph] : graphs_) ids.push_back(q);
  return ids;
}

const QueryGraph* Fsps::graph(QueryId q) const {
  auto it = graphs_.find(q);
  return it == graphs_.end() ? nullptr : it->second.get();
}

QueryCoordinator* Fsps::coordinator(QueryId q) {
  auto it = coordinators_.find(q);
  return it == coordinators_.end() ? nullptr : it->second.get();
}

double Fsps::QuerySic(QueryId q) {
  QueryCoordinator* c = coordinator(q);
  return c == nullptr ? 0.0 : c->CurrentSic();
}

std::vector<double> Fsps::AllQuerySics() {
  std::vector<double> sics;
  sics.reserve(coordinators_.size());
  for (auto& [q, coord] : coordinators_) sics.push_back(coord->CurrentSic());
  return sics;
}

NodeStats Fsps::TotalNodeStats() const {
  NodeStats total;
  for (const auto& n : nodes_) {
    const NodeStats& s = n->stats();
    total.tuples_received += s.tuples_received;
    total.tuples_processed += s.tuples_processed;
    total.tuples_shed += s.tuples_shed;
    total.batches_received += s.batches_received;
    total.batches_processed += s.batches_processed;
    total.batches_shed += s.batches_shed;
    total.shed_invocations += s.shed_invocations;
    total.detector_invocations += s.detector_invocations;
    total.batches_dropped_dead += s.batches_dropped_dead;
    total.tuples_dropped_dead += s.tuples_dropped_dead;
    total.busy_time += s.busy_time;
  }
  return total;
}

size_t Fsps::BatchBytes(const Batch& b) {
  // 10-byte SIC header (§7.6) + a flat 16 bytes per tuple payload estimate.
  return 10 + 16 * b.size();
}

void Fsps::RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                      Batch batch) {
  auto pit = placements_.find(query);
  if (pit == placements_.end()) return;
  auto fit = pit->second.find(to_fragment);
  if (fit == pit->second.end()) return;
  NodeId dest = fit->second;
  Node* dest_node = nodes_[dest].get();
  size_t bytes = BatchBytes(batch);
  network_.Send(from, dest, bytes, [dest_node, b = std::move(batch)]() mutable {
    dest_node->Receive(std::move(b));
  });
}

void Fsps::DeliverResult(QueryId query, SimTime now,
                         const std::vector<Tuple>& results) {
  auto it = coordinators_.find(query);
  if (it != coordinators_.end()) it->second->OnResult(now, results);
}

}  // namespace themis
