#include "federation/testbeds.h"

namespace themis {

TestbedSpec LocalTestbed() {
  TestbedSpec spec;
  spec.name = "local";
  spec.processing_nodes = 1;
  spec.source_rate = 400.0;
  spec.batches_per_sec = 5;
  spec.link_latency = Millis(1);
  spec.cpu_speed = 0.6;  // 1.8 GHz vs the Emulab 3 GHz baseline
  return spec;
}

TestbedSpec EmulabTestbed(int processing_nodes) {
  TestbedSpec spec;
  spec.name = "emulab";
  spec.processing_nodes = processing_nodes;
  spec.source_rate = 150.0;
  spec.batches_per_sec = 3;
  spec.link_latency = Millis(5);
  spec.cpu_speed = 1.0;
  return spec;
}

std::unique_ptr<Fsps> MakeTestbed(const TestbedSpec& spec,
                                  FspsOptions options) {
  options.default_link_latency = spec.link_latency;
  options.source_link_latency = spec.link_latency;
  options.node.cpu_speed = spec.cpu_speed;
  auto fsps = std::make_unique<Fsps>(options);
  for (int i = 0; i < spec.processing_nodes; ++i) fsps->AddNode();
  return fsps;
}

SourceModel ApplyTestbedRates(const TestbedSpec& spec, SourceModel model) {
  model.tuples_per_sec = spec.source_rate;
  model.batches_per_sec = spec.batches_per_sec;
  return model;
}

}  // namespace themis
