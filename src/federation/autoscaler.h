// Autoscaler control loop for an elastic federation: every tick it reads
// the forward-looking load signal (per-node offered load — arrival rate x
// measured per-tuple cost), compares federation utilization against grow /
// shrink thresholds with hysteresis, and commits its decision through one
// TopologyPlan — node joins wired with LAN links to their cluster's peers,
// decommissions of its own previously-added nodes, and a shard re-balance
// whenever the action (or plain load skew) warrants one.
//
// The loop is deliberately simple — threshold + hysteresis, the shape every
// production autoscaler starts from — because the interesting part is what
// it exercises underneath: mid-run AddNode, crash-as-decommission,
// restore-as-regrow and group-aware re-balancing, all through the same
// control-plane API a human operator would script.
#ifndef THEMIS_FEDERATION_AUTOSCALER_H_
#define THEMIS_FEDERATION_AUTOSCALER_H_

#include <vector>

#include "common/status.h"
#include "federation/fsps.h"
#include "workload/scale_scenario.h"

namespace themis {

/// Control-loop knobs; the elastic bench tunes the thresholds so its
/// diurnal + burst load swings through both per diurnal period.
struct AutoscalerOptions {
  /// Decision cadence; ticks run between RunFor segments.
  SimDuration tick_interval = Seconds(2);
  /// Grow when utilization (offered busy-time / live capacity over the
  /// trailing STW) stays above this for `hysteresis_ticks` ticks...
  double grow_utilization = 0.85;
  /// ...and shrink when it stays below this.
  double shrink_utilization = 0.35;
  /// Consecutive out-of-band ticks required before acting: one bursty
  /// second must not trigger a join wave.
  int hysteresis_ticks = 2;
  /// Nodes added per grow action (decommissioned nodes restore first).
  int grow_step = 2;
  /// Nodes decommissioned per shrink action (only nodes this autoscaler
  /// added; the base federation is never shrunk below its initial size).
  int shrink_step = 1;
  /// Hard ceiling on autoscaler-added nodes (0 = unlimited).
  int max_added_nodes = 0;
  /// Stage a shard re-balance in the same plan as any grow/shrink action.
  bool rebalance_on_action = true;
  /// Also re-balance when max shard load exceeds mean shard load by this
  /// factor (load skew from churn or uneven arrivals); 0 disables.
  double rebalance_skew = 1.5;
};

/// Counters of one autoscaler's lifetime (reported by the elastic bench).
struct AutoscalerStats {
  uint64_t ticks = 0;
  uint64_t grow_actions = 0;
  uint64_t shrink_actions = 0;
  uint64_t nodes_added = 0;         ///< fresh joins (AddNode)
  uint64_t nodes_restored = 0;      ///< re-grown from the decommission pool
  uint64_t nodes_decommissioned = 0;
  uint64_t rebalances_requested = 0;
};

/// \brief Threshold + hysteresis autoscaler over one Fsps.
class Autoscaler {
 public:
  /// `scenario` supplies the topology template: cluster membership (group
  /// map for re-balances, joins go to the loaded cluster), LAN latency for
  /// wiring joins, and the node-count floor. The Fsps must be elastic
  /// (FspsOptions::elastic) for grow/re-balance to commit on a sharded
  /// engine.
  Autoscaler(Fsps* fsps, const ScaleScenario& scenario,
             AutoscalerOptions options = {});

  /// One control decision; call between RunFor segments. Reads the load
  /// signal, updates hysteresis, and commits at most one TopologyPlan.
  Status Tick();

  const AutoscalerStats& stats() const { return stats_; }
  /// Utilization the last Tick() observed.
  double last_utilization() const { return last_utilization_; }
  /// Cluster of every node, base + autoscaler-added (the re-balance group
  /// map; also used by tests to pin join placement).
  const std::vector<int>& cluster_of_node() const { return cluster_of_node_; }

 private:
  /// Offered busy-time of live nodes / their capacity, over the STW.
  double Utilization(SimTime now);
  /// Cluster with the highest live offered load (joins go where demand is).
  int BusiestCluster(SimTime now);
  /// Max-shard-load / mean-shard-load (1 when balanced; 0 when idle).
  double ShardSkew(SimTime now);

  Fsps* fsps_;
  AutoscalerOptions options_;
  int clusters_;
  SimDuration lan_latency_;
  SimDuration stw_;
  std::vector<int> cluster_of_node_;
  /// Nodes this autoscaler added, in add order. Shrink decommissions from
  /// this pool only (never the base federation) and grow restores from its
  /// crashed members before adding fresh nodes.
  std::vector<NodeId> added_;
  std::vector<NodeId> decommissioned_;  ///< stack: most recent first out
  int grow_streak_ = 0;
  int shrink_streak_ = 0;
  double last_utilization_ = 0.0;
  AutoscalerStats stats_;
};

}  // namespace themis

#endif  // THEMIS_FEDERATION_AUTOSCALER_H_
