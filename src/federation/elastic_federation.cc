#include "federation/elastic_federation.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/logging.h"

namespace themis {

ElasticScenario MakeElasticScenario(const ElasticScenarioOptions& options) {
  ElasticScenario scenario;
  scenario.options = options;
  ChurnScenarioOptions churn = options.churn;
  // Fold the diurnal knobs into the scale options before generation so
  // every source model the deployer draws carries them; the burst overlay
  // goes through MakeChurnBurstScenario, which keeps the topology schedule
  // identical to the burst-free scenario's.
  churn.scale.diurnal_amplitude = options.diurnal_amplitude;
  churn.scale.diurnal_period = options.diurnal_period;
  scenario.churn = MakeChurnBurstScenario(std::move(churn), options.burst_prob,
                                          options.burst_multiplier);
  return scenario;
}

std::unique_ptr<Fsps> MakeElasticFederation(const ElasticScenario& scenario,
                                            FspsOptions base) {
  base.elastic = true;
  base.load_signal = LoadSignalKind::kArrivalCost;
  // Orphan re-placement should use the same forward-looking ranking the
  // autoscaler trusts (a shedding-saturated node must not look idle).
  base.replacement = ReplacementPolicy::kSicAware;
  return MakeChurnFederation(scenario.churn, std::move(base));
}

ElasticRunResult RunElasticScenario(Fsps* fsps, const ElasticScenario& scenario,
                                    SimDuration measure) {
  ScaleDeployer deployer(fsps, scenario.churn.base);
  Autoscaler autoscaler(fsps, scenario.churn.base,
                        scenario.options.autoscaler);

  const auto& queries = scenario.churn.base.queries;
  const auto& events = scenario.churn.events;
  size_t next_query = 0;
  size_t next_event = 0;
  SimTime next_tick = scenario.options.autoscaler_start;
  const SimDuration tick_interval = scenario.options.autoscaler.tick_interval;
  THEMIS_CHECK(tick_interval > 0);
  // The control loop keeps ticking through the measure window — the
  // post-schedule stretch is where the diurnal trough lands, i.e. where
  // the shrink side of the loop earns its keep.
  SimTime last_scheduled = 0;
  for (const auto& q : queries) {
    last_scheduled = std::max(last_scheduled, q.arrival);
  }
  for (const auto& e : events) {
    last_scheduled = std::max(last_scheduled, e.time);
  }
  last_scheduled += measure;

  // Three deterministic streams replayed in timestamp order. At one
  // instant: topology events first (a query arriving at a crash instant
  // deploys onto the post-crash topology), then arrivals, then the
  // autoscaler tick (the controller reacts to the instant's state). Same-
  // timestamp topology events batch into one TopologyPlan — the schedule
  // generator emits waves, and a wave is one transition.
  while (next_query < queries.size() || next_event < events.size() ||
         next_tick <= last_scheduled) {
    SimTime at = next_tick <= last_scheduled ? next_tick : INT64_MAX;
    if (next_query < queries.size()) {
      at = std::min(at, queries[next_query].arrival);
    }
    if (next_event < events.size()) at = std::min(at, events[next_event].time);
    if (at > fsps->now()) fsps->RunFor(at - fsps->now());

    if (next_event < events.size() && events[next_event].time == at) {
      TopologyPlan plan = fsps->PlanTopology();
      while (next_event < events.size() && events[next_event].time == at) {
        const ChurnEvent& ev = events[next_event];
        ++next_event;
        switch (ev.kind) {
          case ChurnEventKind::kCrash:
            plan.Crash(ev.a);
            break;
          case ChurnEventKind::kRestore:
            plan.Restore(ev.a);
            break;
          case ChurnEventKind::kSetLinkLatency:
            plan.SetLinkLatency(ev.a, ev.b, ev.latency);
            break;
        }
      }
      THEMIS_CHECK(plan.Apply().ok());
    }
    while (next_query < queries.size() && queries[next_query].arrival == at) {
      deployer.DeployQuery(queries[next_query]);
      ++next_query;
    }
    if (next_tick <= last_scheduled && next_tick == at) {
      THEMIS_CHECK(autoscaler.Tick().ok());
      next_tick += tick_interval;
    }
  }
  SimTime end = last_scheduled;
  if (end > fsps->now()) fsps->RunFor(end - fsps->now());

  ElasticRunResult result;
  result.churn.scale = CollectScaleResult(fsps);
  const FspsChurnStats& churn = fsps->churn_stats();
  result.churn.crashes = churn.crashes;
  result.churn.restores = churn.restores;
  result.churn.latency_updates = churn.latency_updates;
  result.churn.replaced_fragments = churn.replaced_fragments;
  result.churn.dropped_queries = churn.dropped_queries;
  result.churn.skipped_arrivals = deployer.skipped_arrivals();
  NodeStats stats = fsps->TotalNodeStats();
  result.churn.batches_dropped_dead = stats.batches_dropped_dead;
  result.churn.tuples_dropped_dead = stats.tuples_dropped_dead;
  result.autoscaler = autoscaler.stats();
  result.nodes_added = churn.nodes_added;
  result.rebalances = churn.rebalances;
  result.migrated_nodes = churn.migrated_nodes;
  std::vector<NodeId> live = fsps->live_node_ids();
  result.final_live_nodes = static_cast<int>(live.size());
  double offered = 0.0;
  SimTime now = fsps->now();
  for (NodeId id : live) offered += fsps->node(id)->OfferedLoadUs(now);
  SimDuration stw = fsps->options().node.stw;
  if (!live.empty() && stw > 0) {
    result.final_utilization =
        offered / (static_cast<double>(live.size()) * static_cast<double>(stw));
  }
  return result;
}

}  // namespace themis
