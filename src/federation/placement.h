// Fragment-to-node placement policies. In an FSPS the placement is chosen by
// the query user and fixed for the query's lifetime (§3); experiments use
// these policies to generate realistic deployments, including the skewed
// Zipf placement of the scalability experiments (§7.3).
#ifndef THEMIS_FEDERATION_PLACEMENT_H_
#define THEMIS_FEDERATION_PLACEMENT_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "runtime/ids.h"
#include "runtime/query_graph.h"

namespace themis {

enum class PlacementPolicy {
  kRoundRobin,      ///< spread fragments evenly, deterministic
  kUniformRandom,   ///< uniform random node per fragment
  kZipf,            ///< skewed load: low-rank nodes attract more fragments (C1)
};

/// \brief Maps each fragment of `graph` to a node.
///
/// Fragments of the same query land on distinct nodes (the paper deploys
/// each fragment of a query on a different FSPS node) as long as enough
/// nodes exist; otherwise assignment wraps around in rounds that stay
/// maximally spread (no node takes a k+1-th fragment while another still
/// has k-1). `nodes` should be the *live* node set — on a dynamic
/// federation, pass Fsps::live_node_ids() rather than node_ids(), or the
/// distinct-node guarantee silently weakens to "distinct including crashed
/// nodes".
///
/// \param zipf_s skew parameter for kZipf (1.0 is a typical skew; 0 = uniform)
std::map<FragmentId, NodeId> PlaceFragments(const QueryGraph& graph,
                                            const std::vector<NodeId>& nodes,
                                            PlacementPolicy policy,
                                            double zipf_s, Rng* rng);

}  // namespace themis

#endif  // THEMIS_FEDERATION_PLACEMENT_H_
