// Fragment-to-node placement policies. In an FSPS the placement is chosen by
// the query user and fixed for the query's lifetime (§3); experiments use
// these policies to generate realistic deployments, including the skewed
// Zipf placement of the scalability experiments (§7.3).
#ifndef THEMIS_FEDERATION_PLACEMENT_H_
#define THEMIS_FEDERATION_PLACEMENT_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/ids.h"
#include "runtime/query_graph.h"

namespace themis {

enum class PlacementPolicy {
  kRoundRobin,      ///< spread fragments evenly, deterministic
  kUniformRandom,   ///< uniform random node per fragment
  kZipf,            ///< skewed load: low-rank nodes attract more fragments (C1)
};

/// \brief Maps each fragment of `graph` to a node.
///
/// Fragments of the same query land on distinct nodes (the paper deploys
/// each fragment of a query on a different FSPS node) as long as enough
/// nodes exist; otherwise assignment wraps around in rounds that stay
/// maximally spread (no node takes a k+1-th fragment while another still
/// has k-1). `nodes` should be the *live* node set — on a dynamic
/// federation, pass Fsps::live_node_ids() rather than node_ids(), or the
/// distinct-node guarantee silently weakens to "distinct including crashed
/// nodes".
///
/// \param zipf_s skew parameter for kZipf (1.0 is a typical skew; 0 = uniform)
std::map<FragmentId, NodeId> PlaceFragments(const QueryGraph& graph,
                                            const std::vector<NodeId>& nodes,
                                            PlacementPolicy policy,
                                            double zipf_s, Rng* rng);

/// How Fsps::CrashNode re-places a crashed node's orphaned fragments onto
/// the live candidate set.
enum class ReplacementPolicy {
  /// PR 4 behaviour, byte-for-byte: a round-robin cursor spreads orphans
  /// evenly over the candidates, blind to how loaded each one is.
  kRoundRobin,
  /// Move each orphan to the least-overloaded live candidate, judged by the
  /// node's live SIC readings (the SIC mass it currently admits over the
  /// trailing STW); deterministic tie-break by ascending node id. Recovers
  /// post-crash fairness faster than the blind cursor because orphans land
  /// where spare capacity actually is.
  kSicAware,
};

/// Policy name as printed in reports ("round-robin", "sic-aware").
std::string ReplacementPolicyName(ReplacementPolicy policy);

/// What per-node quantity feeds the kSicAware chooser (and the elastic
/// re-balancer's group loads).
enum class LoadSignalKind {
  /// PR 5 behaviour, byte-for-byte: the SIC mass the node *admitted* over
  /// the trailing STW. Backward-looking — a node that sheds hard reports a
  /// low signal exactly because it is overloaded, so a crash wave can herd
  /// orphans onto the most saturated host.
  kAcceptedSic,
  /// Forward-looking offered load: tuple arrival rate over the trailing STW
  /// times the measured per-tuple cost, which already folds in the node's
  /// cpu_speed (an estimate of the busy-microseconds the node's current
  /// intake demands).
  /// Measured at ingress, before admission control, so shedding cannot mask
  /// overload. The elastic federation defaults to this.
  kArrivalCost,
};

/// Signal name as printed in reports ("accepted-sic", "arrival-cost").
std::string LoadSignalName(LoadSignalKind kind);

/// What happens to a re-placed fragment's operator state at crash time.
///
/// Historically operator state "survived" a crash only because windows live
/// in the shared QueryGraph — a simulation artifact a real runtime does not
/// have. This knob makes the semantics explicit.
enum class CrashStateMode {
  /// Pre-PR-10 behaviour, byte-for-byte: the re-placed fragment silently
  /// resumes with the crashed node's live window state through the shared
  /// graph. Optimistic (a real deployment loses that state); kept as the
  /// default for byte-compatibility with every earlier figure.
  kLegacyShared,
  /// The honest baseline: a re-placed fragment starts from empty operator
  /// state, like a fresh deployment on the new host would.
  kReset,
  /// Bounded-error recovery: the fragment restores from its last image in
  /// the crashed node's CheckpointStore (which models a durable backup and
  /// survives the crash); operators without an image reset. Requires
  /// checkpointing to be enabled for images to exist.
  kCheckpoint,
};

/// Mode name as printed in reports ("legacy-shared", "reset", "checkpoint").
std::string CrashStateModeName(CrashStateMode mode);

/// One re-placement candidate: a live node and its overload signal
/// (smaller = less loaded; the federation layer feeds accepted-SIC mass).
struct ReplacementCandidate {
  NodeId id = kInvalidId;
  double load = 0.0;
};

/// \brief The kSicAware chooser: least-loaded candidate, distinct-node
/// guarantee first.
///
/// Picks the candidate with the smallest load among those not in
/// `occupied` (nodes already hosting a fragment of the query being
/// re-placed); when every candidate is occupied, co-location is the last
/// resort and the least-loaded candidate overall wins. Ties break by
/// ascending node id, so the choice is a pure function of its inputs.
/// Returns kInvalidId on an empty candidate set.
NodeId ChooseLeastLoaded(const std::vector<ReplacementCandidate>& candidates,
                         const std::set<NodeId>& occupied);

}  // namespace themis

#endif  // THEMIS_FEDERATION_PLACEMENT_H_
