// The THEMIS federated stream processing system: owns the simulated cluster
// (event queue, network, nodes), deployed query graphs, per-query
// coordinators and source drivers. This is the main entry point of the
// library — see examples/quickstart.cc.
#ifndef THEMIS_FEDERATION_FSPS_H_
#define THEMIS_FEDERATION_FSPS_H_

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "federation/coordinator.h"
#include "node/node.h"
#include "runtime/query_graph.h"
#include "shedding/balance_sic_shedder.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "workload/sources.h"

namespace themis {

/// Which shedder every node runs. kBalanceSic is the paper's contribution,
/// kRandom its baseline; the rest are extended baselines for the comparison
/// bench (see shedding/baseline_shedders.h).
enum class SheddingPolicy {
  kBalanceSic,
  kRandom,
  kDropNewest,
  kDropOldest,
  kProportional,
};

/// Policy name as printed in reports ("balance-sic", "random", ...).
std::string SheddingPolicyName(SheddingPolicy policy);

/// System-wide configuration; defaults reproduce the paper's set-up (§7).
struct FspsOptions {
  SheddingPolicy policy = SheddingPolicy::kBalanceSic;
  BalanceSicOptions balance;               ///< BALANCE-SIC knobs (ablations)
  NodeOptions node;                        ///< template for AddNode()
  QueryCoordinator::Options coordinator;   ///< STW, update interval, ...
  SimDuration default_link_latency = Millis(5);  ///< Table 2 LAN star
  SimDuration source_link_latency = Millis(5);   ///< source -> ingest node
  uint64_t seed = 42;
};

/// \brief A complete simulated FSPS deployment.
class Fsps : public BatchRouter {
 public:
  explicit Fsps(FspsOptions options = {});
  ~Fsps() override;

  // --- cluster construction -------------------------------------------------

  /// Adds a processing node using the options template; returns its id.
  NodeId AddNode();
  /// Adds a node with explicit options (heterogeneous capacities).
  NodeId AddNode(NodeOptions options);

  Node* node(NodeId id);
  std::vector<NodeId> node_ids() const;
  Network* network() { return &network_; }
  EventQueue* queue() { return &queue_; }
  Rng* rng() { return &rng_; }

  // --- query deployment -----------------------------------------------------

  /// Deploys `graph` with the given fragment placement. Every fragment must
  /// be mapped to an existing node.
  Status Deploy(std::unique_ptr<QueryGraph> graph,
                const std::map<FragmentId, NodeId>& placement);

  /// Creates a SourceDriver for every source binding of query `q`. `models`
  /// maps source ids to their models; bindings without an entry use
  /// `fallback`.
  Status AttachSources(QueryId q, const std::map<SourceId, SourceModel>& models,
                       const SourceModel& fallback = {});

  /// Removes a deployed query: stops its sources, drops its buffered batches
  /// on every hosting node and retires its coordinator. Queries can depart
  /// mid-run (§5: "queries' arrivals and departures").
  Status Undeploy(QueryId q);

  // --- execution ------------------------------------------------------------

  /// Starts nodes, coordinators and sources (idempotent).
  void Start();
  /// Runs the simulation for `d` more simulated time.
  void RunFor(SimDuration d);

  // --- observation ----------------------------------------------------------

  std::vector<QueryId> query_ids() const;
  const QueryGraph* graph(QueryId q) const;
  QueryCoordinator* coordinator(QueryId q);
  /// Current result SIC of query `q` (Eq. 4 over the trailing STW).
  double QuerySic(QueryId q);
  /// Current result SIC of all deployed queries, in query-id order.
  std::vector<double> AllQuerySics();
  /// Aggregate shed/processed counters over all nodes.
  NodeStats TotalNodeStats() const;

  // BatchRouter:
  void RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                  Batch batch) override;
  void DeliverResult(QueryId query, SimTime now,
                     const std::vector<Tuple>& results) override;

 private:
  std::unique_ptr<Shedder> MakeShedder();
  /// Estimated wire size of a batch (tuple payloads + the 10-byte header).
  static size_t BatchBytes(const Batch& b);

  FspsOptions options_;
  Rng rng_;
  EventQueue queue_;
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<QueryId, std::unique_ptr<QueryGraph>> graphs_;
  std::map<QueryId, std::map<FragmentId, NodeId>> placements_;
  std::map<QueryId, std::unique_ptr<QueryCoordinator>> coordinators_;
  // Undeployed queries' coordinators and graphs are retired, not destroyed:
  // already-scheduled timer events and in-flight batches may still hold
  // pointers into them until the event queue drains past them.
  std::vector<std::unique_ptr<QueryCoordinator>> retired_coordinators_;
  std::vector<std::unique_ptr<QueryGraph>> retired_graphs_;
  std::vector<std::unique_ptr<SourceDriver>> sources_;
  bool started_ = false;
};

}  // namespace themis

#endif  // THEMIS_FEDERATION_FSPS_H_
