// The THEMIS federated stream processing system: owns the simulated cluster
// (event queue, network, nodes), deployed query graphs, per-query
// coordinators and source drivers. This is the main entry point of the
// library — see examples/quickstart.cc.
#ifndef THEMIS_FEDERATION_FSPS_H_
#define THEMIS_FEDERATION_FSPS_H_

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "federation/coordinator.h"
#include "federation/placement.h"
#include "federation/topology_plan.h"
#include "metrics/recovery_tracker.h"
#include "node/node.h"
#include "runtime/checkpoint.h"
#include "runtime/query_graph.h"
#include "shedding/balance_sic_shedder.h"
#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "workload/sources.h"

namespace themis {

/// Which shedder every node runs. kBalanceSic is the paper's contribution,
/// kRandom its baseline; the rest are extended baselines for the comparison
/// bench (see shedding/baseline_shedders.h).
enum class SheddingPolicy {
  kBalanceSic,
  kRandom,
  kDropNewest,
  kDropOldest,
  kProportional,
};

/// Policy name as printed in reports ("balance-sic", "random", ...).
std::string SheddingPolicyName(SheddingPolicy policy);

/// System-wide configuration; defaults reproduce the paper's set-up (§7).
struct FspsOptions {
  SheddingPolicy policy = SheddingPolicy::kBalanceSic;
  BalanceSicOptions balance;               ///< BALANCE-SIC knobs (ablations)
  NodeOptions node;                        ///< template for AddNode()
  QueryCoordinator::Options coordinator;   ///< STW, update interval, ...
  SimDuration default_link_latency = Millis(5);  ///< Table 2 LAN star
  SimDuration source_link_latency = Millis(5);   ///< source -> ingest node
  uint64_t seed = 42;
  /// Simulation shards. 1 (default) runs the single-threaded
  /// SequentialEngine — the historical behaviour, byte-for-byte. >1 runs
  /// the conservative parallel engine (themis_parsim): nodes are
  /// partitioned across `shards` worker threads synchronized in barrier
  /// epochs of the minimum cross-shard link latency. Results are
  /// deterministic run-to-run at any shard count. Multi-shard runs freeze
  /// the *node set* at Start(): add all nodes first. All control-plane
  /// mutation — deploy/undeploy, CrashNode/RestoreNode, SetLinkLatency —
  /// stays between RunFor calls; link edits queue and apply at the next
  /// run boundary, where the epoch width is re-derived.
  int shards = 1;
  /// Runs the parallel engine even at shards == 1 (its single-shard fast
  /// path, which must be byte-identical to SequentialEngine). Used by the
  /// determinism tests and the CI identity byte-diff; no reason to set it
  /// otherwise.
  bool force_parsim_engine = false;
  /// How CrashNode re-places orphaned fragments. The default keeps the
  /// PR 4 round-robin cursor byte-for-byte; kSicAware moves orphans to the
  /// least-overloaded live candidate (see federation/placement.h).
  ReplacementPolicy replacement = ReplacementPolicy::kRoundRobin;
  /// What per-node signal ranks the kSicAware candidates and weighs the
  /// elastic re-balancer's groups. The default keeps the PR 5/6 trailing
  /// accepted-SIC figures byte-identical; kArrivalCost is forward-looking
  /// (arrival rate x measured per-tuple cost) and is what the elastic
  /// federation uses — an overloaded node that sheds hard no longer looks
  /// idle to the placer.
  LoadSignalKind load_signal = LoadSignalKind::kAcceptedSic;
  /// Elastic mode: the sharded engine admits mid-run topology growth
  /// (AddNode after Start) and shard re-balancing (TopologyPlan::Rebalance)
  /// by wrapping every sharded delivery in a re-forwarding trampoline (see
  /// Engine::EnableElastic for the migration protocol). Off by default: the
  /// wrapper costs one allocation per message, and elastic runs at
  /// different shard counts may diverge from each other (run-to-run
  /// determinism at a fixed count, and sequential == parsim@1, still hold
  /// exactly). Irrelevant at shards == 1.
  bool elastic = false;
  /// Recovery observability (metrics/recovery_tracker.h). When
  /// `recovery.enabled`, RunFor splits its run at the sampling cadence and
  /// feeds every deployed query's SIC into the tracker, and the churn
  /// control plane (CrashNode / RestoreNode / applied link edits) marks
  /// disturbances so dip depth and time-to-recover are measured per query.
  /// Disabled by default: zero overhead, zero RunFor re-segmentation, every
  /// pre-existing figure byte-identical.
  RecoveryTrackerOptions recovery;
  /// Columnar data plane: sources emit SoA batches (see SourceModel::
  /// columnar) and operators with columnar kernels consume them without row
  /// materialization. Results are byte-identical either way — the flag
  /// trades layout, not semantics (tests/columnar_test.cc and the CI parity
  /// byte-diff pin this). Off by default.
  bool columnar = false;
  /// What a re-placed fragment's operator state looks like after CrashNode.
  /// The default keeps the pre-PR-10 shared-graph inheritance byte-for-byte;
  /// kReset deliberately clears it, kCheckpoint restores from the crashed
  /// node's checkpoint store (see federation/placement.h).
  CrashStateMode crash_state = CrashStateMode::kLegacyShared;
  /// Operator-state checkpointing (runtime/checkpoint.h). When enabled,
  /// every node captures images of its hosted operators' state at the
  /// configured cadence (right after the shed-tick pump, so capture does
  /// zero simulated work and the event schedule is untouched), and
  /// crash_state = kCheckpoint restores re-placed fragments from those
  /// images. `error_bound` > 0 turns on approximate checkpointing: an
  /// operator whose accumulated ingested SIC since its last image is below
  /// the bound skips capture, trading bounded divergence for overhead.
  /// Off by default: zero captures, every pre-existing figure
  /// byte-identical.
  CheckpointConfig checkpoint;
};

/// Counters of the dynamic-topology control plane (node churn, link drift,
/// fragment re-placement); reported by the churn bench.
struct FspsChurnStats {
  uint64_t crashes = 0;
  uint64_t restores = 0;
  uint64_t latency_updates = 0;    ///< queued SetLinkLatency edits
  uint64_t replaced_fragments = 0; ///< orphans moved to live nodes
  uint64_t dropped_queries = 0;    ///< force-undeployed: no live candidates
  uint64_t nodes_added = 0;        ///< mid-run joins (AddNode after Start)
  uint64_t rebalances = 0;         ///< committed TopologyPlan::Rebalance ops
  uint64_t migrated_nodes = 0;     ///< nodes whose shard changed, summed
};

/// \brief A complete simulated FSPS deployment.
class Fsps : public BatchRouter {
 public:
  explicit Fsps(FspsOptions options = {});
  ~Fsps() override;

  // --- cluster construction -------------------------------------------------

  /// Auto shard assignment (round-robin over the engine's shards).
  static constexpr int kAutoShard = -1;

  /// Adds a processing node using the options template; returns its id.
  /// Convenience wrapper over the Result overload (aborts on the errors
  /// that overload reports; they are unreachable before Start()).
  NodeId AddNode();
  /// Adds a node with explicit options (heterogeneous capacities).
  NodeId AddNode(NodeOptions options);
  /// Adds a node pinned to simulation shard `shard` (multi-shard runs;
  /// topology-aware callers co-locate LAN clusters on one shard so only
  /// long WAN links cross shards and the epoch stays wide). `kAutoShard`
  /// round-robins node id over the shards.
  ///
  /// Before Start() this always succeeds. After Start() the node joins the
  /// running federation: it starts immediately, its source link is queued
  /// for the next RunFor boundary, and on a sharded engine the shard map
  /// grows in place — which requires FspsOptions::elastic
  /// (FailedPrecondition otherwise; the non-elastic sharded contract
  /// freezes the node set at Start). InvalidArgument for an out-of-range
  /// shard. Prefer staging joins on a TopologyPlan so they validate and
  /// commit with the rest of a transition.
  Result<NodeId> AddNode(NodeOptions options, int shard);

  Node* node(NodeId id);
  std::vector<NodeId> node_ids() const;
  /// Node ids currently alive (excludes crashed nodes); placement decisions
  /// on a dynamic federation should draw from this set.
  std::vector<NodeId> live_node_ids() const;
  bool node_alive(NodeId id) const;
  /// Simulation shard hosting node `id` (always 0 with shards == 1;
  /// unknown ids resolve to 0, mirroring ShardPlan::ShardOf).
  int shard_of(NodeId id) const {
    if (id < 0 || static_cast<size_t>(id) >= shard_of_node_.size()) return 0;
    return shard_of_node_[id];
  }
  Network* network() { return &network_; }
  /// Shard 0's event queue. With shards > 1, use engine() for the others;
  /// manual scheduling is only legal between RunFor calls.
  EventQueue* queue() { return engine_->queue(0); }
  Engine* engine() { return engine_.get(); }
  /// Current simulated time (all shards agree between RunFor calls).
  SimTime now() const { return engine_->now(); }
  Rng* rng() { return &rng_; }
  /// The configuration this federation was built with (read-only).
  const FspsOptions& options() const { return options_; }

  // --- query deployment -----------------------------------------------------

  /// Deploys `graph` with the given fragment placement. Every fragment must
  /// be mapped to an existing node.
  Status Deploy(std::unique_ptr<QueryGraph> graph,
                const std::map<FragmentId, NodeId>& placement);

  /// Creates a SourceDriver for every source binding of query `q`. `models`
  /// maps source ids to their models; bindings without an entry use
  /// `fallback`.
  Status AttachSources(QueryId q, const std::map<SourceId, SourceModel>& models,
                       const SourceModel& fallback = {});

  /// Removes a deployed query: stops its sources, drops its buffered batches
  /// on every hosting node and retires its coordinator. Queries can depart
  /// mid-run (§5: "queries' arrivals and departures").
  Status Undeploy(QueryId q);

  // --- dynamic topology (control plane; call between RunFor calls) ----------

  /// Returns a fresh mutation batch against this federation. Stage ops on
  /// it and commit with Apply(); see federation/topology_plan.h. This is
  /// the control-plane entry point — the per-call methods below are
  /// single-op shims kept for source compatibility.
  TopologyPlan PlanTopology() { return TopologyPlan(this); }

  /// DEPRECATED shim for PlanTopology().Crash(id).Apply().
  ///
  /// Fails node `id`: its input buffer drains back to the batch pool,
  /// in-flight batches addressed to it die at ingress, and every fragment
  /// it hosted is re-placed onto live nodes (on the crashed node's
  /// simulation shard when sharded — source drivers and the coordinator are
  /// shard-pinned). Operator state lives in the shared QueryGraph, so
  /// window contents migrate with the fragment. Queries with no live
  /// candidate host are force-undeployed. Errors: NotFound for unknown
  /// ids, FailedPrecondition if already crashed.
  Status CrashNode(NodeId id);

  /// DEPRECATED shim for PlanTopology().Restore(id).Apply().
  ///
  /// Rejoins a crashed node, empty: it accepts traffic and deployments
  /// again (fragments do not move back automatically). Errors: NotFound,
  /// FailedPrecondition if not crashed.
  Status RestoreNode(NodeId id);

  /// DEPRECATED shim for PlanTopology().SetLinkLatency(a, b, l).Apply().
  ///
  /// Queues a link-latency change ((a, b), both directions; kInvalidId is
  /// the source pseudo-node). The edit — and the re-derived epoch width on
  /// a sharded engine — takes effect at the next RunFor boundary, never
  /// mid-epoch. On a sharded engine the latency must stay positive (a
  /// zero-latency cross-shard link admits no conservative schedule).
  Status SetLinkLatency(NodeId a, NodeId b, SimDuration latency);

  const FspsChurnStats& churn_stats() const { return churn_stats_; }

  /// Recovery tracker (inert unless options.recovery.enabled). Read it
  /// between RunFor calls for per-disturbance dip/MTTR reports.
  const RecoveryTracker& recovery_tracker() const { return recovery_; }

  // --- execution ------------------------------------------------------------

  /// Starts nodes, coordinators and sources (idempotent).
  void Start();
  /// Runs the simulation for `d` more simulated time.
  void RunFor(SimDuration d);

  // --- observation ----------------------------------------------------------

  std::vector<QueryId> query_ids() const;
  const QueryGraph* graph(QueryId q) const;
  QueryCoordinator* coordinator(QueryId q);
  /// Current result SIC of query `q` (Eq. 4 over the trailing STW).
  double QuerySic(QueryId q);
  /// Current result SIC of all deployed queries, in query-id order.
  std::vector<double> AllQuerySics();
  /// Aggregate shed/processed counters over all nodes.
  NodeStats TotalNodeStats() const;

  // BatchRouter:
  void RouteBatch(NodeId from, QueryId query, FragmentId to_fragment,
                  Batch batch) override;
  void DeliverResult(QueryId query, SimTime now,
                     const std::vector<Tuple>& results) override;

 private:
  friend class TopologyPlan;

  std::unique_ptr<Shedder> MakeShedder();
  /// Validates `plan`'s ops in order against a scratch topology (node
  /// count + liveness), then commits them in order via the *Now internals.
  /// See TopologyPlan for the atomicity contract.
  Status ApplyPlan(const TopologyPlan& plan);
  /// Validation half of ApplyPlan; mutates only the scratch vectors.
  Status ValidatePlanOp(const TopologyPlan::Op& op,
                        std::vector<char>* scratch_alive) const;
  // Commit internals: the single-op bodies behind both TopologyPlan and the
  // deprecated per-call shims. Preconditions were validated; the remaining
  // Status returns are the commit-time checks (see topology_plan.h).
  void CrashNodeNow(NodeId id);
  void RestoreNodeNow(NodeId id);
  void SetLinkLatencyNow(NodeId a, NodeId b, SimDuration latency);
  NodeId AddNodeNow(NodeOptions node_options, int shard);
  /// Elastic shard re-balance (TopologyPlan::Rebalance). Computes group
  /// loads from the configured load signal, packs groups onto shards with
  /// an LPT greedy (heaviest group first onto the least-loaded shard; ties
  /// break by ascending id, so the map is a pure function of the loads),
  /// checks the new map still admits a conservative schedule, then migrates
  /// every entity whose shard changed and swaps the network's map in place.
  Status RebalanceNow(const std::vector<int>& group_of_node);
  /// Estimated wire size of a batch (tuple payloads + the 10-byte header).
  static size_t BatchBytes(const Batch& b);
  /// Source-batch delivery with a placement lookup per batch, so sources
  /// follow their receiver fragment when it is re-placed after a crash.
  void RouteSourceBatch(QueryId q, OperatorId target, Batch batch);
  /// Moves query `q`'s fragments off `crashed` onto live nodes (same shard
  /// when sharded), or force-undeploys `q` when none exist.
  void ReplaceOrphans(QueryId q, NodeId crashed);
  /// Overload signal of node `id` for the kSicAware re-placement chooser
  /// and the re-balancer's group loads, per options_.load_signal: admitted
  /// SIC mass over the trailing STW (kAcceptedSic) or offered load in
  /// busy-us (kArrivalCost). 0 for an idle or freshly restored node.
  double NodeLoadSignal(NodeId id, SimTime now);
  /// Feeds the current per-query SICs into the recovery tracker (no-op at a
  /// repeated instant; only called when options_.recovery.enabled).
  void SampleRecovery();
  /// Samples, then opens/coalesces a disturbance window in the tracker.
  void MarkRecoveryDisturbance(DisturbanceKind kind);
  /// Drains the network mutation queue and re-derives the sharded engine's
  /// lookahead over the live node set. Runs at every RunFor boundary.
  void ApplyTopologyMutations();
  /// 1/0 liveness flags indexed by NodeId (Network::MinCrossShardLatency).
  std::vector<char> AliveMask() const;

  FspsOptions options_;
  Rng rng_;
  // The engine owns the shard event queues; nodes, coordinators and sources
  // hold pointers into them, so it is declared first (destroyed last).
  std::unique_ptr<Engine> engine_;
  Network network_;
  std::vector<int> shard_of_node_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<QueryId, std::unique_ptr<QueryGraph>> graphs_;
  std::map<QueryId, std::map<FragmentId, NodeId>> placements_;
  std::map<QueryId, std::unique_ptr<QueryCoordinator>> coordinators_;
  // Undeployed queries' coordinators and graphs are retired, not destroyed:
  // already-scheduled timer events and in-flight batches may still hold
  // pointers into them until the event queue drains past them.
  std::vector<std::unique_ptr<QueryCoordinator>> retired_coordinators_;
  std::vector<std::unique_ptr<QueryGraph>> retired_graphs_;
  std::vector<std::unique_ptr<SourceDriver>> sources_;
  bool started_ = false;
  // Dynamic-topology state: set by crash/restore/link edits, consumed by
  // ApplyTopologyMutations at the next RunFor boundary.
  bool topology_dirty_ = false;
  // Round-robin cursor spreading re-placed orphans over candidate nodes.
  size_t replacement_cursor_ = 0;
  // kSicAware projection: accepted-SIC load the orphans re-placed at the
  // current control-plane instant will bring to their new hosts. The live
  // signal lags by the STW smoothing, so without this projection every
  // orphan of a crash wave would herd onto the same least-loaded node.
  // Keyed to the instant: it resets as soon as simulated time advances and
  // the real signal starts catching up.
  SimTime inflight_load_at_ = -1;
  std::map<NodeId, double> inflight_load_;
  FspsChurnStats churn_stats_;
  // Recovery observability (inert when !options_.recovery.enabled).
  RecoveryTracker recovery_;
  // Next cadence sample instant; RunFor splits its run at these times so
  // the sampling grid is regular regardless of run segmentation.
  SimTime next_sample_due_ = 0;
};

}  // namespace themis

#endif  // THEMIS_FEDERATION_FSPS_H_
