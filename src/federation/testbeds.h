// Table 2 test-bed presets. The paper runs a 3-server local test-bed and a
// 25-server Emulab deployment; we reproduce both as simulator
// configurations (DESIGN.md §2 substitution). Dedicated source and
// query-submission nodes of the paper are folded into the simulator's
// source drivers and deployment calls; `processing_nodes` below counts only
// processing nodes, as the paper's experiments do.
#ifndef THEMIS_FEDERATION_TESTBEDS_H_
#define THEMIS_FEDERATION_TESTBEDS_H_

#include <memory>
#include <string>

#include "federation/fsps.h"

namespace themis {

/// One Table 2 row.
struct TestbedSpec {
  std::string name;
  int processing_nodes = 1;
  double source_rate = 400.0;   ///< tuples/sec per source
  int batches_per_sec = 5;      ///< 5 x 80-tuple batches (local test-bed)
  SimDuration link_latency = Millis(5);
  /// Relative CPU speed of the simulated servers (local test-bed servers are
  /// 1.8 GHz vs Emulab's 3 GHz; the ratio is what matters).
  double cpu_speed = 1.0;
};

/// Local test-bed: 1 processing node, 400 t/s in 5 batches/sec per source.
TestbedSpec LocalTestbed();

/// Emulab test-bed: up to 18 processing nodes, 150 t/s in 3 batches/sec,
/// 5 ms star LAN.
TestbedSpec EmulabTestbed(int processing_nodes = 18);

/// Builds an Fsps with `spec.processing_nodes` nodes and the spec's link
/// latency applied, on top of the caller's options.
std::unique_ptr<Fsps> MakeTestbed(const TestbedSpec& spec, FspsOptions options);

/// Applies the spec's per-source parameters to a SourceModel template.
SourceModel ApplyTestbedRates(const TestbedSpec& spec, SourceModel model);

}  // namespace themis

#endif  // THEMIS_FEDERATION_TESTBEDS_H_
