#include "federation/topology_plan.h"

#include <utility>

#include "federation/fsps.h"

namespace themis {

TopologyPlan::TopologyPlan(Fsps* fsps)
    : fsps_(fsps), promised_nodes_(fsps->node_ids().size()) {}

TopologyPlan& TopologyPlan::Crash(NodeId id) {
  Op op;
  op.kind = OpKind::kCrash;
  op.a = id;
  ops_.push_back(std::move(op));
  return *this;
}

TopologyPlan& TopologyPlan::Restore(NodeId id) {
  Op op;
  op.kind = OpKind::kRestore;
  op.a = id;
  ops_.push_back(std::move(op));
  return *this;
}

TopologyPlan& TopologyPlan::SetLinkLatency(NodeId a, NodeId b,
                                           SimDuration latency) {
  Op op;
  op.kind = OpKind::kSetLink;
  op.a = a;
  op.b = b;
  op.latency = latency;
  ops_.push_back(std::move(op));
  return *this;
}

NodeId TopologyPlan::AddNode(NodeOptions options, int shard) {
  Op op;
  op.kind = OpKind::kAddNode;
  op.node_options = options;
  op.shard = shard;
  ops_.push_back(std::move(op));
  // The id is deterministic — node ids are dense and allocated in call
  // order — so the builder can promise it before validation. If the plan
  // never applies (or fails validation), the id is never allocated.
  return static_cast<NodeId>(promised_nodes_++);
}

TopologyPlan& TopologyPlan::Rebalance(std::vector<int> group_of_node) {
  Op op;
  op.kind = OpKind::kRebalance;
  op.group_of_node = std::move(group_of_node);
  ops_.push_back(std::move(op));
  return *this;
}

Status TopologyPlan::Apply() {
  if (applied_) {
    return Status::FailedPrecondition("topology plan already applied");
  }
  applied_ = true;
  return fsps_->ApplyPlan(*this);
}

}  // namespace themis
