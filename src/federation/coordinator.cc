#include "federation/coordinator.h"

namespace themis {

QueryCoordinator::QueryCoordinator(const QueryGraph* graph, Options options,
                                   EventQueue* queue, Network* network)
    : graph_(graph),
      options_(options),
      queue_(queue),
      network_(network),
      tracker_(options.stw) {}

void QueryCoordinator::AddHost(NodeId node_id, Node* node) {
  hosts_[node_id] = node;
}

void QueryCoordinator::RemoveHost(NodeId node_id) { hosts_.erase(node_id); }

void QueryCoordinator::Start() {
  if (started_) return;
  started_ = true;
  if (options_.disseminate) {
    queue_->ScheduleAfter(options_.update_interval, [this] { Disseminate(); });
  }
}

void QueryCoordinator::OnResult(SimTime now,
                                const std::vector<Tuple>& results) {
  if (stopped_) return;
  double sic = 0.0;
  for (const Tuple& t : results) sic += t.sic;
  tracker_.AddResultSic(now, sic);
  result_tuples_ += results.size();
  if (options_.record_results) {
    for (const Tuple& t : results) {
      results_.push_back({t.timestamp, t.sic, t.values});
    }
  }
}

double QueryCoordinator::CurrentSic() {
  return tracker_.QuerySic(queue_->now());
}

void QueryCoordinator::Disseminate() {
  if (stopped_) return;  // do not reschedule: the query was undeployed
  double sic = CurrentSic();
  QueryId q = graph_->id();
  for (auto& [node_id, node] : hosts_) {
    network_->Send(home_, node_id, options_.update_message_bytes,
                   [node, q, sic] { node->UpdateQuerySic(q, sic); });
  }
  queue_->ScheduleAfter(options_.update_interval, [this] { Disseminate(); });
}

}  // namespace themis
