#include "federation/coordinator.h"

namespace themis {

QueryCoordinator::QueryCoordinator(const QueryGraph* graph, Options options,
                                   EventQueue* queue, Network* network)
    : graph_(graph),
      options_(options),
      queue_(queue),
      network_(network),
      tracker_(options.stw) {}

void QueryCoordinator::AddHost(NodeId node_id, Node* node) {
  hosts_[node_id] = node;
}

void QueryCoordinator::RemoveHost(NodeId node_id) { hosts_.erase(node_id); }

void QueryCoordinator::ArmDisseminate(SimTime at) {
  next_disseminate_at_ = at;
  queue_->Schedule(at, [this, gen = generation_] { Disseminate(gen); });
}

void QueryCoordinator::Start() {
  if (started_) return;
  started_ = true;
  if (options_.disseminate) {
    ArmDisseminate(queue_->now() + options_.update_interval);
  }
}

void QueryCoordinator::MigrateQueue(EventQueue* queue) {
  if (queue == queue_) return;
  queue_ = queue;
  ++generation_;  // neuter the tick still queued on the old shard
  if (started_ && !stopped_ && options_.disseminate) {
    ArmDisseminate(next_disseminate_at_);
  }
}

void QueryCoordinator::OnResult(SimTime now,
                                const std::vector<Tuple>& results) {
  if (stopped_) return;
  double sic = 0.0;
  for (const Tuple& t : results) sic += t.sic;
  tracker_.AddResultSic(now, sic);
  result_tuples_ += results.size();
  if (options_.record_results) {
    for (const Tuple& t : results) {
      results_.push_back({t.timestamp, t.sic, t.values});
    }
  }
}

double QueryCoordinator::CurrentSic() {
  return tracker_.QuerySic(queue_->now());
}

void QueryCoordinator::Disseminate(uint64_t gen) {
  if (gen != generation_) return;  // stale event from before a migration
  if (stopped_) return;  // do not reschedule: the query was undeployed
  double sic = CurrentSic();
  QueryId q = graph_->id();
  for (auto& [node_id, node] : hosts_) {
    network_->Send(home_, node_id, options_.update_message_bytes,
                   [node, q, sic] { node->UpdateQuerySic(q, sic); });
  }
  ArmDisseminate(queue_->now() + options_.update_interval);
}

}  // namespace themis
