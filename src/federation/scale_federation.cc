#include "federation/scale_federation.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "workload/workloads.h"

namespace themis {

namespace {

// Estimated simulated cost (us) of one source tuple through a complex
// pipeline at cpu_speed 1 — same constant the bench harness uses to turn an
// overload target into a node speed; the online cost model measures the
// true value during the run.
constexpr double kPipelineCostUs = 1.6;

double CpuSpeedForScenario(const ScaleScenario& scenario) {
  const ScaleScenarioOptions& o = scenario.options;
  double needed_us_per_sec = scenario.total_source_rate * kPipelineCostUs;
  double available_us_per_sec = 1e6 * o.nodes * o.overload_factor;
  return needed_us_per_sec / available_us_per_sec;
}

}  // namespace

std::unique_ptr<Fsps> MakeScaleFederation(const ScaleScenario& scenario,
                                          FspsOptions base) {
  const ScaleScenarioOptions& o = scenario.options;
  base.seed = o.seed;
  base.default_link_latency = o.wan_latency;  // inter-cluster default
  base.source_link_latency = o.source_link_latency;
  base.node.cpu_speed = CpuSpeedForScenario(scenario);

  auto fsps = std::make_unique<Fsps>(base);
  int shards = fsps->engine()->num_shards();
  for (int n = 0; n < o.nodes; ++n) {
    // Whole clusters map to one shard: LAN links stay shard-local, so the
    // conservative lookahead is the WAN latency, not the LAN one.
    int cluster = scenario.cluster_of_node[n];
    int shard = static_cast<int>(static_cast<int64_t>(cluster) * shards /
                                 o.clusters);
    THEMIS_CHECK(fsps->AddNode(base.node, shard).ok());
  }
  // Intra-cluster links run at LAN latency (default covers the WAN pairs).
  for (int a = 0; a < o.nodes; ++a) {
    for (int b = a + 1; b < o.nodes; ++b) {
      if (scenario.cluster_of_node[a] == scenario.cluster_of_node[b]) {
        fsps->network()->SetLatency(a, b, o.lan_latency);
      }
    }
  }
  return fsps;
}

ScaleDeployer::ScaleDeployer(Fsps* fsps, const ScaleScenario& scenario)
    : fsps_(fsps),
      factory_(scenario.options.seed + 1),
      options_(scenario.options),
      cluster_nodes_(options_.clusters),
      cursor_(options_.clusters, 0) {
  // Nodes of each cluster, in id order, with a round-robin cursor for
  // fragment placement.
  for (int n = 0; n < options_.nodes; ++n) {
    cluster_nodes_[scenario.cluster_of_node[n]].push_back(n);
  }
}

NodeId ScaleDeployer::NextLiveNode(int cluster) {
  const std::vector<NodeId>& nodes = cluster_nodes_[cluster];
  THEMIS_CHECK(!nodes.empty());
  // One full lap at most: on a static federation the first candidate is
  // live and the cursor advances exactly once, reproducing the historical
  // placement byte-for-byte.
  for (size_t lap = 0; lap < nodes.size(); ++lap) {
    NodeId id = nodes[cursor_[cluster] % nodes.size()];
    ++cursor_[cluster];
    if (fsps_->node_alive(id)) return id;
  }
  return kInvalidId;
}

bool ScaleDeployer::DeployQuery(const ScaleQuerySpec& spec) {
  ComplexQueryOptions co;
  co.fragments = spec.fragments;
  co.sources_per_fragment =
      ScaleSourcesPerFragment(spec.kind, options_.sources_per_fragment);
  co.source_rate = options_.source_rate;
  co.batches_per_sec = options_.batches_per_sec;
  co.dataset = options_.dataset;
  co.window = options_.window;
  co.burst_prob = options_.burst_prob;
  co.burst_multiplier = options_.burst_multiplier;
  co.diurnal_amplitude = options_.diurnal_amplitude;
  co.diurnal_period = options_.diurnal_period;
  BuiltQuery built = factory_.MakeComplex(spec.kind, spec.id, co);

  std::map<FragmentId, NodeId> placement;
  std::vector<FragmentId> frags = built.graph->fragment_ids();
  std::sort(frags.begin(), frags.end());
  for (size_t i = 0; i < frags.size(); ++i) {
    // WAN-spanning queries alternate fragments between the two clusters;
    // others stay in the home cluster.
    int cluster = (spec.peer_cluster >= 0 && i % 2 == 1)
                      ? spec.peer_cluster
                      : spec.home_cluster;
    NodeId target = NextLiveNode(cluster);
    if (target == kInvalidId) {
      // Whole cluster down: the arrival bounces. The query factory stream
      // stays aligned (the graph was already drawn), so later arrivals are
      // unaffected.
      skipped_arrivals_ += 1;
      return false;
    }
    placement[frags[i]] = target;
  }
  THEMIS_CHECK(fsps_->Deploy(std::move(built.graph), placement).ok());
  THEMIS_CHECK(fsps_->AttachSources(spec.id, built.sources).ok());
  return true;
}

ScaleRunResult RunScaleScenario(Fsps* fsps, const ScaleScenario& scenario,
                                SimDuration measure) {
  ScaleDeployer deployer(fsps, scenario);
  for (const ScaleQuerySpec& spec : scenario.queries) {
    // Advance the simulation to this arrival (waves share arrival times, so
    // this is a no-op within a wave). Deployment happens between run
    // segments — the only legal place on a sharded engine.
    if (spec.arrival > fsps->now()) {
      fsps->RunFor(spec.arrival - fsps->now());
    }
    deployer.DeployQuery(spec);
  }
  fsps->RunFor(measure);
  return CollectScaleResult(fsps);
}

ScaleRunResult CollectScaleResult(Fsps* fsps) {
  ScaleRunResult result;
  NodeStats stats = fsps->TotalNodeStats();
  result.tuples_received = stats.tuples_received;
  result.tuples_processed = stats.tuples_processed;
  result.tuples_shed = stats.tuples_shed;
  result.messages = fsps->network()->messages_sent();
  result.bytes = fsps->network()->bytes_sent();
  result.events = fsps->engine()->executed();
  result.final_sics = fsps->AllQuerySics();

  double sum = 0.0, sum_sq = 0.0;
  for (double sic : result.final_sics) {
    sum += sic;
    sum_sq += sic * sic;
  }
  size_t n = result.final_sics.size();
  if (n > 0) {
    result.mean_sic = sum / static_cast<double>(n);
    if (sum_sq > 0.0) {
      result.jain = (sum * sum) / (static_cast<double>(n) * sum_sq);
    }
  }
  return result;
}

}  // namespace themis
